/**
 * @file
 * Tests for the differential fuzz harness itself: case
 * serialization, deterministic generation, the shrinker, and replay
 * of the checked-in regression corpus (tests/corpus/*.srfuzz).
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <vector>

#include "fuzz/differential.hh"
#include "fuzz/fuzz_case.hh"
#include "fuzz/generator.hh"
#include "fuzz/shrink.hh"
#include "topology/factory.hh"

namespace srsim {
namespace {

TEST(FuzzCaseTest, RoundTripsThroughText)
{
    const fuzz::FuzzCase c = fuzz::generateCase(42);
    std::ostringstream os;
    fuzz::writeFuzzCase(os, c);
    std::istringstream is(os.str());
    const fuzz::FuzzCase d = fuzz::readFuzzCase(is);

    EXPECT_EQ(d.seed, c.seed);
    EXPECT_EQ(d.topoSpec, c.topoSpec);
    EXPECT_EQ(d.g.numTasks(), c.g.numTasks());
    EXPECT_EQ(d.g.numMessages(), c.g.numMessages());
    EXPECT_EQ(d.taskNode, c.taskNode);
    EXPECT_DOUBLE_EQ(d.tm.apSpeed, c.tm.apSpeed);
    EXPECT_DOUBLE_EQ(d.tm.bandwidth, c.tm.bandwidth);
    EXPECT_DOUBLE_EQ(d.tm.packetBytes, c.tm.packetBytes);
    EXPECT_DOUBLE_EQ(d.inputPeriod, c.inputPeriod);
    EXPECT_DOUBLE_EQ(d.guardTime, c.guardTime);
    EXPECT_EQ(d.allocMethod, c.allocMethod);
    EXPECT_EQ(d.schedMethod, c.schedMethod);
    EXPECT_EQ(d.exactPacketMip, c.exactPacketMip);
    EXPECT_EQ(d.useAssignPaths, c.useAssignPaths);
    EXPECT_EQ(d.assignSeed, c.assignSeed);
    EXPECT_EQ(d.maxRestarts, c.maxRestarts);
    EXPECT_EQ(d.feedbackRounds, c.feedbackRounds);
    EXPECT_EQ(d.faultSpec, c.faultSpec);

    // The round-tripped case must run to the same verdict.
    fuzz::RunOptions opts;
    opts.invocations = 8;
    opts.warmup = 2;
    EXPECT_EQ(fuzz::runCase(c, opts).verdict,
              fuzz::runCase(d, opts).verdict);
}

TEST(FuzzCaseTest, MalformedDocumentIsFatal)
{
    std::istringstream is("not-a-fuzz-case\n");
    EXPECT_THROW(fuzz::readFuzzCase(is), FatalError);
}

TEST(FuzzGeneratorTest, SameSeedSameCase)
{
    const fuzz::FuzzCase a = fuzz::generateCase(7);
    const fuzz::FuzzCase b = fuzz::generateCase(7);
    std::ostringstream oa, ob;
    fuzz::writeFuzzCase(oa, a);
    fuzz::writeFuzzCase(ob, b);
    EXPECT_EQ(oa.str(), ob.str());
}

TEST(FuzzGeneratorTest, PlacementIsInjective)
{
    // The differential oracles only agree under the dedicated-AP
    // premise, so the generator must never co-locate two tasks.
    for (std::uint64_t seed = 0; seed < 30; ++seed) {
        const fuzz::FuzzCase c = fuzz::generateCase(seed);
        std::vector<NodeId> nodes = c.taskNode;
        std::sort(nodes.begin(), nodes.end());
        EXPECT_TRUE(std::adjacent_find(nodes.begin(), nodes.end()) ==
                    nodes.end())
            << "seed " << seed << " co-locates tasks";
        const auto topo = makeTopology(c.topoSpec);
        for (NodeId n : nodes) {
            EXPECT_GE(n, 0);
            EXPECT_LT(n, topo->numNodes());
        }
    }
}

TEST(FuzzShrinkTest, RemovesIrrelevantStructure)
{
    // Predicate: "fails" whenever message 'keep' is present. The
    // shrinker must strip everything else and keep its endpoints.
    fuzz::FuzzCase c = fuzz::generateCase(3);
    const TaskId a = c.g.addTask("sentinel-a", 100.0);
    const TaskId b = c.g.addTask("sentinel-b", 100.0);
    c.g.addMessage("keep", a, b, 64.0);
    c.taskNode.push_back(0);
    c.taskNode.push_back(1);

    const auto stillFails = [](const fuzz::FuzzCase &cand) {
        for (MessageId m = 0; m < cand.g.numMessages(); ++m)
            if (cand.g.message(m).name == "keep")
                return true;
        return false;
    };
    fuzz::ShrinkStats st;
    const fuzz::FuzzCase min =
        fuzz::shrinkCase(c, stillFails, 400, &st);
    EXPECT_EQ(min.g.numMessages(), 1);
    EXPECT_EQ(min.g.numTasks(), 2);
    EXPECT_TRUE(stillFails(min));
    EXPECT_GT(st.evaluations, 0u);
    EXPECT_EQ(min.taskNode.size(),
              static_cast<std::size_t>(min.g.numTasks()));
}

TEST(FuzzShrinkTest, ClearsFaultSpecWhenFaultsAreIrrelevant)
{
    // Predicate ignores the fault spec entirely, so the shrinker's
    // fault pass must strip it from the minimized case.
    fuzz::FuzzCase c = fuzz::generateCase(3);
    c.faultSpec = "link:#0;derate:#1=0.5";
    const fuzz::FuzzCase min = fuzz::shrinkCase(
        c, [](const fuzz::FuzzCase &) { return true; }, 400);
    EXPECT_TRUE(min.faultSpec.empty())
        << "kept fault spec: " << min.faultSpec;
}

TEST(FuzzGeneratorTest, SomeSeedsCarryFaultSpecs)
{
    // The fault dimension must actually be exercised: over a window
    // of seeds, some cases inject faults and some stay healthy.
    std::size_t faulty = 0, healthy = 0;
    for (std::uint64_t seed = 0; seed < 40; ++seed) {
        if (fuzz::generateCase(seed).faultSpec.empty())
            ++healthy;
        else
            ++faulty;
    }
    EXPECT_GT(faulty, 0u);
    EXPECT_GT(healthy, 0u);
}

TEST(FuzzShrinkTest, ReturnsOriginalWhenNothingRemovable)
{
    const fuzz::FuzzCase c = fuzz::generateCase(5);
    // Nothing "fails": the shrinker must hand back the case as-is.
    const fuzz::FuzzCase min = fuzz::shrinkCase(
        c, [](const fuzz::FuzzCase &) { return false; }, 50);
    EXPECT_EQ(min.g.numTasks(), c.g.numTasks());
    EXPECT_EQ(min.g.numMessages(), c.g.numMessages());
}

TEST(FuzzGeneratorTest, SomeSeedsCarryChurnOps)
{
    // The churn dimension must actually be exercised: over a window
    // of seeds, some cases carry admit/remove sequences and the ops
    // are well-formed request lines.
    std::size_t churny = 0, batch = 0;
    for (std::uint64_t seed = 0; seed < 40; ++seed) {
        const fuzz::FuzzCase c = fuzz::generateCase(seed);
        if (c.churnOps.empty()) {
            ++batch;
            continue;
        }
        ++churny;
        for (const std::string &op : c.churnOps)
            EXPECT_TRUE(op.rfind("admit ", 0) == 0 ||
                        op.rfind("remove ", 0) == 0)
                << "seed " << seed << ": odd churn op '" << op
                << "'";
    }
    EXPECT_GT(churny, 0u);
    EXPECT_GT(batch, 0u);
}

TEST(FuzzCaseTest, ChurnOpsRoundTripThroughText)
{
    // Find a seed whose case carries churn ops and round-trip it.
    fuzz::FuzzCase c;
    for (std::uint64_t seed = 0;; ++seed) {
        ASSERT_LT(seed, 200u) << "no churny seed in range";
        c = fuzz::generateCase(seed);
        if (!c.churnOps.empty())
            break;
    }
    std::ostringstream os;
    fuzz::writeFuzzCase(os, c);
    std::istringstream is(os.str());
    const fuzz::FuzzCase d = fuzz::readFuzzCase(is);
    EXPECT_EQ(d.churnOps, c.churnOps);
}

TEST(FuzzChurnTest, ChurnSeedsReplayClean)
{
    // A window of churny seeds through the online-vs-oracle
    // differential runner: zero disagreements. (CI's srfuzz_smoke
    // and the acceptance sweep run far more seeds; this is the
    // always-on regression floor.)
    fuzz::RunOptions opts;
    opts.invocations = 8;
    opts.warmup = 2;
    std::size_t ran = 0;
    for (std::uint64_t seed = 0; seed < 60 && ran < 12; ++seed) {
        const fuzz::FuzzCase c = fuzz::generateCase(seed);
        if (c.churnOps.empty())
            continue;
        ++ran;
        const fuzz::RunResult r = fuzz::runCase(c, opts);
        EXPECT_FALSE(r.failed())
            << "seed " << seed << ": " << r.report;
    }
    EXPECT_GE(ran, 5u) << "churn dimension under-exercised";
}

TEST(FuzzShrinkTest, DropsIrrelevantChurnOps)
{
    // Predicate: "fails" whenever the op admitting 'zkeep' is
    // present. The shrinker's churn pass must drop every other op.
    fuzz::FuzzCase c = fuzz::generateCase(3);
    c.churnOps = {"admit zdrop1 t0 t1 64",
                  "admit zkeep t0 t1 64", "remove zdrop1",
                  "admit zdrop2 t0 t1 64"};
    const auto stillFails = [](const fuzz::FuzzCase &cand) {
        for (const std::string &op : cand.churnOps)
            if (op.find("zkeep") != std::string::npos)
                return true;
        return false;
    };
    fuzz::ShrinkStats st;
    const fuzz::FuzzCase min =
        fuzz::shrinkCase(c, stillFails, 400, &st);
    ASSERT_EQ(min.churnOps.size(), 1u);
    EXPECT_EQ(min.churnOps[0], "admit zkeep t0 t1 64");
    EXPECT_GT(st.churnOpsRemoved, 0);
}

TEST(FuzzShrinkTest, ClearsChurnWhenChurnIsIrrelevant)
{
    // Predicate ignores churn entirely: the whole-sequence drop
    // must fire, degrading the case to a batch run.
    fuzz::FuzzCase c = fuzz::generateCase(3);
    c.churnOps = {"admit z0 t0 t1 64", "remove z0"};
    const fuzz::FuzzCase min = fuzz::shrinkCase(
        c, [](const fuzz::FuzzCase &) { return true; }, 400);
    EXPECT_TRUE(min.churnOps.empty());
}

TEST(FuzzGeneratorTest, MultiCasesAreWellFormed)
{
    for (std::uint64_t seed = 0; seed < 20; ++seed) {
        const fuzz::FuzzCase c = fuzz::generateMultiCase(seed);
        EXPECT_GE(c.numSessions, 2) << "seed " << seed;
        EXPECT_LE(c.numSessions, 4) << "seed " << seed;
        // The daemon lines run on the healthy fabric with no
        // packet grid (see fuzz/multi.hh).
        EXPECT_TRUE(c.faultSpec.empty()) << "seed " << seed;
        EXPECT_TRUE(c.churnOps.empty()) << "seed " << seed;
        EXPECT_EQ(c.tm.packetBytes, 0.0) << "seed " << seed;
        EXPECT_FALSE(c.multiOps.empty()) << "seed " << seed;
        for (const auto &[k, op] : c.multiOps) {
            EXPECT_GE(k, 0) << "seed " << seed;
            EXPECT_LT(k, c.numSessions) << "seed " << seed;
            EXPECT_TRUE(op.rfind("admit ", 0) == 0 ||
                        op.rfind("remove ", 0) == 0)
                << "seed " << seed << ": odd multi op '" << op
                << "'";
        }
    }
}

TEST(FuzzCaseTest, MultiOpsRoundTripThroughText)
{
    const fuzz::FuzzCase c = fuzz::generateMultiCase(1);
    std::ostringstream os;
    fuzz::writeFuzzCase(os, c);
    std::istringstream is(os.str());
    const fuzz::FuzzCase d = fuzz::readFuzzCase(is);
    EXPECT_EQ(d.numSessions, c.numSessions);
    EXPECT_EQ(d.multiOps, c.multiOps);
}

TEST(FuzzMultiTest, MultiSeedsReplayClean)
{
    // A few seeds through the daemon crash-recovery oracle: zero
    // divergences. (CI's srfuzz_smoke --multi runs far more.)
    for (std::uint64_t seed = 0; seed < 3; ++seed) {
        const fuzz::RunResult r =
            fuzz::runCase(fuzz::generateMultiCase(seed));
        EXPECT_FALSE(r.failed())
            << "multi seed " << seed << ": " << r.report;
    }
}

TEST(FuzzShrinkTest, DropsIrrelevantMultiOps)
{
    // Predicate: "fails" whenever the op admitting 'zkeep' is
    // present. The multi pass must drop every other op and shed
    // the sessions nothing references.
    fuzz::FuzzCase c = fuzz::generateCase(3);
    c.numSessions = 3;
    c.multiOps = {{1, "admit zdrop1 t0 t1 64"},
                  {0, "admit zkeep t0 t1 64"},
                  {2, "remove zdrop1"},
                  {0, "admit zdrop2 t0 t1 64"}};
    const auto stillFails = [](const fuzz::FuzzCase &cand) {
        for (const auto &[k, op] : cand.multiOps)
            if (op.find("zkeep") != std::string::npos)
                return true;
        return false;
    };
    fuzz::ShrinkStats st;
    const fuzz::FuzzCase min =
        fuzz::shrinkCase(c, stillFails, 400, &st);
    ASSERT_EQ(min.multiOps.size(), 1u);
    EXPECT_EQ(min.multiOps[0].second, "admit zkeep t0 t1 64");
    EXPECT_EQ(min.numSessions, 1);
    EXPECT_GT(st.multiOpsRemoved, 0);
}

TEST(FuzzShrinkTest, ClearsMultiWhenTheDaemonIsIrrelevant)
{
    // Predicate ignores the daemon dimension entirely: the
    // whole-dimension drop must fire, degrading the case to a
    // batch run.
    fuzz::FuzzCase c = fuzz::generateMultiCase(3);
    const fuzz::FuzzCase min = fuzz::shrinkCase(
        c, [](const fuzz::FuzzCase &) { return true; }, 400);
    EXPECT_EQ(min.numSessions, 0);
    EXPECT_TRUE(min.multiOps.empty());
}

TEST(FuzzCorpusTest, EveryCorpusCaseReplaysClean)
{
    const std::filesystem::path dir(SRSIM_CORPUS_DIR);
    ASSERT_TRUE(std::filesystem::is_directory(dir))
        << "corpus directory missing: " << dir;
    std::size_t replayed = 0;
    for (const auto &e : std::filesystem::directory_iterator(dir)) {
        if (e.path().extension() != ".srfuzz")
            continue;
        std::ifstream in(e.path());
        ASSERT_TRUE(in.good()) << e.path();
        const fuzz::FuzzCase c = fuzz::readFuzzCase(in);
        const fuzz::RunResult r = fuzz::runCase(c);
        EXPECT_FALSE(r.failed())
            << e.path().filename().string() << ": " << r.report;
        ++replayed;
    }
    EXPECT_GT(replayed, 0u) << "corpus is empty";
}

} // namespace
} // namespace srsim
