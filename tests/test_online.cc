/**
 * @file
 * Online scheduling service suite (label: online).
 *
 * Pins the golden churn scenarios byte-for-byte against
 * tests/golden/churn-*.sched, then asserts the *mechanics* the
 * bytes cannot show: single admissions re-solve only the touched
 * maximal related subsets (>= 80% copied verbatim on the 4x4x4
 * torus figure config), re-admissions hit the schedule cache,
 * removals round-trip to the original schedule, every published
 * schedule is verifier-certified at the original period, the
 * online.* / repair.* counters account for the work, rejections
 * carry structured reasons, and the whole request pipeline is
 * deterministic.
 */

#include <fstream>
#include <map>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "golden_churn.hh"
#include "metrics/metrics.hh"

namespace srsim {
namespace {

using online::AdmitSpec;
using online::RejectReason;
using online::Request;
using online::RequestKind;
using online::RequestResult;

std::string
goldenPath(const golden::ChurnCase &cc)
{
    return std::string(SRSIM_GOLDEN_DIR) + "/" + cc.name +
           ".sched";
}

std::string
readFileOrEmpty(const std::string &path)
{
    std::ifstream in(path);
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

const golden::ChurnCase &
churnCase(const std::string &name)
{
    for (const auto &cc : golden::churnCases())
        if (name == cc.name)
            return cc;
    ADD_FAILURE() << "no churn case named " << name;
    static const golden::ChurnCase none{"", ""};
    return none;
}

class GoldenChurn
    : public ::testing::TestWithParam<golden::ChurnCase>
{};

TEST_P(GoldenChurn, MatchesPinnedBytes)
{
    const golden::ChurnCase cc = GetParam();
    const std::string want = readFileOrEmpty(goldenPath(cc));
    ASSERT_FALSE(want.empty())
        << "missing golden file " << goldenPath(cc)
        << " — run tools/regen_golden and commit the corpus";
    const golden::ChurnRun run = golden::runChurnCase(cc);
    EXPECT_EQ(want, run.scheduleText)
        << "churn case '" << cc.name
        << "' diverged; if intentional, refresh with "
           "tools/regen_golden.";
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, GoldenChurn,
    ::testing::ValuesIn(golden::churnCases()),
    [](const ::testing::TestParamInfo<golden::ChurnCase> &info) {
        std::string n = info.param.name;
        for (char &c : n)
            if (c == '-')
                c = '_';
        return n;
    });

/**
 * The tentpole claim: one admission on the figure config re-solves
 * only the subsets the new message lands in — at least 80% of the
 * maximal related subsets are copied verbatim — and the published
 * schedule is verifier-certified at the original period.
 */
TEST(OnlineAdmission, SingleAdmitResolvesOnlyTouchedSubsets)
{
    const golden::ChurnRun run =
        golden::runChurnCase(churnCase("churn-admit"));
    ASSERT_EQ(run.results.size(), 1u);
    const RequestResult &r = run.results[0];
    EXPECT_TRUE(r.usedIncremental);
    EXPECT_FALSE(r.usedFullCompile);
    ASSERT_GT(r.subsetsTotal, 0u);
    EXPECT_GE(r.subsetsResolved, 1u);
    EXPECT_EQ(r.subsetsCopied + r.subsetsResolved,
              r.subsetsTotal);
    // >= 80% copied verbatim.
    EXPECT_GE(r.subsetsCopied * 5, r.subsetsTotal * 4)
        << "copied " << r.subsetsCopied << "/" << r.subsetsTotal;
    // Published at the original period, certified.
    EXPECT_EQ(run.final->omega.period, run.start.period);
    EXPECT_TRUE(run.final->verification.ok);
    EXPECT_EQ(run.final->version, 2u);
}

/** Admit + remove round-trips to the original schedule, by cache. */
TEST(OnlineAdmission, RemoveRoundTripsViaCache)
{
    const golden::ChurnRun run =
        golden::runChurnCase(churnCase("churn-remove"));
    ASSERT_EQ(run.results.size(), 2u);
    EXPECT_TRUE(run.results[1].usedCache);
    // The end state is byte-identical to the healthy fig10 golden.
    const std::string fig10 = readFileOrEmpty(
        std::string(SRSIM_GOLDEN_DIR) +
        "/fig10-torus444-b128.sched");
    ASSERT_FALSE(fig10.empty());
    EXPECT_EQ(run.scheduleText, fig10);
}

/** Re-admitting a removed message is a cache hit, not a re-solve. */
TEST(OnlineAdmission, ReadmitHitsCache)
{
    const golden::ChurnRun run =
        golden::runChurnCase(churnCase("churn-readmit"));
    ASSERT_EQ(run.results.size(), 3u);
    EXPECT_TRUE(run.results[2].usedCache);
    EXPECT_EQ(run.results[2].subsetsResolved, 0u);
    EXPECT_GE(run.cacheHits, 2u); // remove + readmit
    // Same end state as admitting once.
    const golden::ChurnRun once =
        golden::runChurnCase(churnCase("churn-admit"));
    EXPECT_EQ(run.scheduleText, once.scheduleText);
}

/** A batch is one coalesced re-solve, not five. */
TEST(OnlineAdmission, BatchCoalescesIntoOneResolve)
{
    const golden::ChurnRun run =
        golden::runChurnCase(churnCase("churn-batch5"));
    ASSERT_EQ(run.results.size(), 1u);
    const RequestResult &r = run.results[0];
    EXPECT_TRUE(r.usedIncremental || r.usedFullCompile);
    EXPECT_TRUE(run.final->verification.ok);
    EXPECT_EQ(run.final->omega.period, run.start.period);
    EXPECT_EQ(run.final->bounds.messages.size(),
              golden::runChurnCase(churnCase("churn-admit"))
                      .final->bounds.messages.size() +
                  4);
}

/** The whole request pipeline is a deterministic function. */
TEST(OnlineAdmission, Deterministic)
{
    const golden::ChurnRun a =
        golden::runChurnCase(churnCase("churn-batch5"));
    const golden::ChurnRun b =
        golden::runChurnCase(churnCase("churn-batch5"));
    EXPECT_EQ(a.scheduleText, b.scheduleText);
    ASSERT_EQ(a.results.size(), b.results.size());
    for (std::size_t i = 0; i < a.results.size(); ++i) {
        EXPECT_EQ(a.results[i].subsetsResolved,
                  b.results[i].subsetsResolved);
        EXPECT_EQ(a.results[i].subsetsCopied,
                  b.results[i].subsetsCopied);
    }
}

/** online.* counters account for the churn work. */
TEST(OnlineMetrics, CountersAccountForChurn)
{
    metrics::Registry::global().clear();
    metrics::Registry::setEnabled(true);
    const golden::ChurnRun run =
        golden::runChurnCase(churnCase("churn-readmit"));
    metrics::Registry::setEnabled(false);

    std::map<std::string, std::uint64_t> c;
    for (const auto &[name, value] :
         metrics::Registry::global().counterSnapshot())
        c[name] = value;
    metrics::Registry::global().clear();

    EXPECT_EQ(c["online.requests"], 4u); // start + 3 requests
    EXPECT_EQ(c["online.admitted"], 2u);
    EXPECT_EQ(c["online.removed"], 1u);
    EXPECT_EQ(c["online.rejected"], 0u);
    EXPECT_GE(c["online.incremental"], 1u);
    EXPECT_GE(c["online.cache_hits"], 2u);
    EXPECT_GE(c["online.subsets_copied"],
              c["online.subsets_resolved"]);
    (void)run;
}

/** InjectFault drives fault::repairSchedule: repair.* counters. */
TEST(OnlineMetrics, FaultRequestBumpsRepairCounters)
{
    const auto svc = golden::makeChurnService();
    ASSERT_TRUE(svc->start().accepted);

    metrics::Registry::global().clear();
    metrics::Registry::setEnabled(true);
    const RequestResult r = svc->injectFault("link:0-1");
    metrics::Registry::setEnabled(false);

    std::map<std::string, std::uint64_t> c;
    for (const auto &[name, value] :
         metrics::Registry::global().counterSnapshot())
        c[name] = value;
    metrics::Registry::global().clear();

    ASSERT_TRUE(r.accepted) << r.detail;
    EXPECT_EQ(c["online.faults_injected"], 1u);
    if (r.usedIncremental) {
        EXPECT_EQ(c["repair.incremental"], 1u);
        EXPECT_EQ(c["repair.subsets_resolved"],
                  r.subsetsResolved);
        EXPECT_EQ(c["repair.subsets_reused"], r.subsetsCopied);
    } else {
        EXPECT_GE(c["repair.full_recompiles"], 1u);
    }
    EXPECT_TRUE(svc->published()->verification.ok);
}

/** Rejections carry structured reasons, and reject atomically. */
TEST(OnlineRejection, StructuredReasons)
{
    const auto svc = golden::makeChurnService();
    AdmitSpec spec{"x0", "probe", "verify", 256.0};

    // Not started yet.
    EXPECT_EQ(svc->admit(spec).reason,
              RejectReason::InvalidRequest);

    ASSERT_TRUE(svc->start().accepted);
    const std::uint64_t v0 = svc->published()->version;

    // Unknown task.
    AdmitSpec bad = spec;
    bad.dst = "nonesuch";
    RequestResult r = svc->admit(bad);
    EXPECT_FALSE(r.accepted);
    EXPECT_EQ(r.reason, RejectReason::InvalidRequest);
    EXPECT_NE(r.detail.find("nonesuch"), std::string::npos);

    // Duplicate of an existing message.
    bad = spec;
    bad.name = "c"; // DVB chain message
    EXPECT_EQ(svc->admit(bad).reason,
              RejectReason::InvalidRequest);

    // Duplicate within one batch: all-or-nothing.
    EXPECT_EQ(svc->admitBatch({spec, spec}).reason,
              RejectReason::InvalidRequest);

    // Nonpositive size.
    bad = spec;
    bad.bytes = 0.0;
    EXPECT_EQ(svc->admit(bad).reason,
              RejectReason::InvalidRequest);

    // Remove of an unknown message.
    EXPECT_EQ(svc->remove("nonesuch").reason,
              RejectReason::InvalidRequest);

    // Bad period.
    EXPECT_EQ(svc->updatePeriod(-1.0).reason,
              RejectReason::InvalidRequest);

    // Malformed and timed fault specs.
    EXPECT_EQ(svc->injectFault("garbage!").reason,
              RejectReason::InvalidRequest);
    EXPECT_EQ(svc->injectFault("link:0-1@5").reason,
              RejectReason::InvalidRequest);

    // None of the rejections published anything.
    EXPECT_EQ(svc->published()->version, v0);
}

/**
 * An infeasible admission is classified, and when a stretched
 * period would fit, the caller learns the period.
 */
TEST(OnlineRejection, InfeasibleAdmissionIsClassified)
{
    const auto svc = golden::makeChurnService();
    ASSERT_TRUE(svc->start().accepted);
    const std::uint64_t v0 = svc->published()->version;

    // A message three orders of magnitude above the whole DVB
    // budget cannot fit at the current period.
    const RequestResult r =
        svc->admit({"huge", "input", "result", 5.0e6});
    ASSERT_FALSE(r.accepted);
    EXPECT_TRUE(r.reason == RejectReason::UtilizationCeiling ||
                r.reason == RejectReason::InfeasibleSubset ||
                r.reason == RejectReason::PeriodStretchRequired ||
                r.reason == RejectReason::InvalidRequest)
        << online::rejectReasonName(r.reason);
    if (r.reason == RejectReason::PeriodStretchRequired) {
        EXPECT_GT(r.requiredPeriod, r.period);
    }
    EXPECT_FALSE(r.detail.empty());
    EXPECT_EQ(svc->published()->version, v0);
    EXPECT_TRUE(svc->published()->verification.ok);
}

/** The script parser: structured errors, line numbers, batching. */
TEST(OnlineScript, ParsesAndRejectsStructurally)
{
    {
        std::istringstream is("# comment\n"
                              "admit a t1 t2 64\n"
                              "\n"
                              "batch 2\n"
                              "admit b t1 t2 64\n"
                              "admit c t2 t3 64\n"
                              "remove a\n"
                              "period 123.5\n"
                              "fault link:0-1;derate:#3=0.5\n");
        const online::ScriptParseResult r =
            online::parseRequestScript(is);
        ASSERT_TRUE(r.ok) << r.error;
        ASSERT_EQ(r.requests.size(), 5u);
        EXPECT_EQ(r.requests[0].kind, RequestKind::AdmitMessage);
        EXPECT_EQ(r.requests[1].admits.size(), 2u);
        EXPECT_EQ(r.requests[2].name, "a");
        EXPECT_EQ(r.requests[3].period, 123.5);
        EXPECT_EQ(r.requests[4].faultSpec,
                  "link:0-1;derate:#3=0.5");
    }
    {
        std::istringstream is("admit a t1 t2\n");
        const online::ScriptParseResult r =
            online::parseRequestScript(is);
        EXPECT_FALSE(r.ok);
        EXPECT_EQ(r.errorLine, 1);
    }
    {
        std::istringstream is("admit a t1 t2 64\nfrobnicate\n");
        const online::ScriptParseResult r =
            online::parseRequestScript(is);
        EXPECT_FALSE(r.ok);
        EXPECT_EQ(r.errorLine, 2);
    }
    {
        std::istringstream is("batch 3\nadmit a t1 t2 64\n");
        const online::ScriptParseResult r =
            online::parseRequestScript(is);
        EXPECT_FALSE(r.ok); // truncated batch group
    }
    {
        std::istringstream is("batch 2\nremove a\n");
        const online::ScriptParseResult r =
            online::parseRequestScript(is);
        EXPECT_FALSE(r.ok);
        EXPECT_EQ(r.errorLine, 2);
    }
}

/** The canonical key identifies workloads, not construction order. */
TEST(OnlineCache, CanonicalKeyAndLru)
{
    const auto svc = golden::makeChurnService();
    ASSERT_TRUE(svc->start().accepted);
    // Admit/remove three distinct messages: six states, all cached.
    for (const char *n : {"k0", "k1", "k2"}) {
        ASSERT_TRUE(svc->admit({n, "probe", "verify", 256.0})
                        .accepted);
        ASSERT_TRUE(svc->remove(n).accepted);
    }
    // Every removal returns to the base workload: cache hits.
    EXPECT_GE(svc->cache().hits(), 3u);

    // LRU bound: capacity 1 keeps exactly one entry.
    online::ScheduleCache tiny(1);
    online::ScheduleCache::Entry e;
    tiny.insert("a", e);
    tiny.insert("b", e);
    EXPECT_EQ(tiny.size(), 1u);
    EXPECT_EQ(tiny.evictions(), 1u);
    EXPECT_EQ(tiny.lookup("a"), nullptr);
    EXPECT_NE(tiny.lookup("b"), nullptr);

    // The key covers the fault mask: degrading a link changes it.
    const DvbParams dvb;
    const TaskFlowGraph g = buildDvbTfg(dvb);
    const auto topo = makeTopology("torus:4,4,4");
    TimingModel tm;
    tm.apSpeed = dvb.matchedApSpeed();
    tm.bandwidth = 128.0;
    const TaskAllocation alloc = alloc::roundRobin(g, *topo, 13);
    SrCompilerConfig cfg;
    cfg.inputPeriod = 2.4 * tm.tauC(g);
    const std::string k1 =
        online::canonicalWorkloadKey(g, *topo, alloc, tm, cfg);
    topo->failLink(0);
    const std::string k2 =
        online::canonicalWorkloadKey(g, *topo, alloc, tm, cfg);
    EXPECT_NE(k1, k2);
    EXPECT_NE(online::fnv1a64(k1), online::fnv1a64(k2));
}

/**
 * The key covers the fabric wiring, not just its name: two fabrics
 * that share a name but wire their nodes differently route (and so
 * schedule) differently, and must not collide in the cache.
 */
TEST(OnlineCache, KeyCoversFabricWiring)
{
    class TwinFabric : public Topology
    {
      public:
        explicit TwinFabric(bool ring)
        {
            setNumNodes(4);
            if (ring) {
                addLink(0, 1);
                addLink(1, 2);
                addLink(2, 3);
                addLink(3, 0);
            } else {
                addLink(0, 1);
                addLink(0, 2);
                addLink(0, 3);
                addLink(1, 2);
            }
        }
        std::string name() const override { return "twin"; }

      protected:
        std::vector<Path>
        minimalPathsImpl(NodeId, NodeId, std::size_t) const override
        {
            return {};
        }
        Path
        routeLsdToMsdImpl(NodeId, NodeId) const override
        {
            return {};
        }
    };

    const DvbParams dvb;
    const TaskFlowGraph g = buildDvbTfg(dvb);
    TimingModel tm;
    tm.apSpeed = dvb.matchedApSpeed();
    tm.bandwidth = 128.0;
    SrCompilerConfig cfg;
    cfg.inputPeriod = 2.4 * tm.tauC(g);

    const TwinFabric ring(true);
    const TwinFabric star(false);
    ASSERT_EQ(ring.name(), star.name());
    ASSERT_EQ(ring.numNodes(), star.numNodes());
    ASSERT_EQ(ring.numLinks(), star.numLinks());

    const TaskAllocation alloc = alloc::roundRobin(g, ring, 13);
    const std::string kr =
        online::canonicalWorkloadKey(g, ring, alloc, tm, cfg);
    const std::string ks =
        online::canonicalWorkloadKey(g, star, alloc, tm, cfg);
    EXPECT_NE(kr, ks);
    EXPECT_NE(online::fnv1a64(kr), online::fnv1a64(ks));
}

/** UpdatePeriod republishes at the new period, certified. */
TEST(OnlinePeriod, UpdatePeriodRepublishes)
{
    const auto svc = golden::makeChurnService();
    ASSERT_TRUE(svc->start().accepted);
    const Time p0 = svc->currentPeriod();
    const RequestResult r = svc->updatePeriod(p0 * 1.5);
    ASSERT_TRUE(r.accepted) << r.detail;
    EXPECT_EQ(svc->published()->omega.period, p0 * 1.5);
    EXPECT_TRUE(svc->published()->verification.ok);
    // And back — this state was cached by start().
    const RequestResult back = svc->updatePeriod(p0);
    ASSERT_TRUE(back.accepted) << back.detail;
    EXPECT_TRUE(back.usedCache);
}

} // namespace
} // namespace srsim
