/**
 * @file
 * End-to-end tests of the scheduled-routing compiler and executor:
 * the Fig. 3 pipeline, feasibility gating, and the constant-
 * throughput guarantee, across fabrics, bandwidths, and loads.
 */

#include <memory>

#include <gtest/gtest.h>

#include "core/sr_compiler.hh"
#include "core/sr_executor.hh"
#include "mapping/allocation.hh"
#include "tfg/dvb.hh"
#include "tfg/random_tfg.hh"
#include "tfg/timing.hh"
#include "topology/generalized_hypercube.hh"
#include "topology/torus.hh"
#include "wormhole/wormhole.hh"

namespace srsim {
namespace {

TEST(SrCompilerTest, AllCoLocatedIsTriviallyFeasible)
{
    TaskFlowGraph g;
    const TaskId a = g.addTask("A", 100.0);
    const TaskId b = g.addTask("B", 100.0);
    g.addMessage("ab", a, b, 640.0);
    TimingModel tm;
    tm.apSpeed = 10.0;
    tm.bandwidth = 64.0;
    const auto cube = GeneralizedHypercube::binaryCube(3);
    TaskAllocation alloc(2, 8);
    alloc.assign(0, 4);
    alloc.assign(1, 4);
    SrCompilerConfig cfg;
    cfg.inputPeriod = 20.0;
    const SrCompileResult r =
        compileScheduledRouting(g, cube, alloc, tm, cfg);
    EXPECT_TRUE(r.feasible);
    EXPECT_TRUE(r.bounds.messages.empty());
}

TEST(SrCompilerTest, PeriodBelowTauCIsInvalidInput)
{
    const TaskFlowGraph g = buildDvbTfg({});
    const auto cube = GeneralizedHypercube::binaryCube(6);
    DvbParams dp;
    TimingModel tm;
    tm.apSpeed = dp.matchedApSpeed();
    tm.bandwidth = 64.0;
    const TaskAllocation alloc = alloc::roundRobin(g, cube, 13);
    SrCompilerConfig cfg;
    cfg.inputPeriod = 0.5 * tm.tauC(g);
    const SrCompileResult r =
        compileScheduledRouting(g, cube, alloc, tm, cfg);
    EXPECT_FALSE(r.feasible);
    EXPECT_EQ(r.stage, SrFailureStage::InvalidInput);
    EXPECT_EQ(r.error.stage, SrFailureStage::InvalidInput);
    EXPECT_FALSE(r.detail.empty());
}

TEST(SrCompilerTest, UtilizationGateReportsStage)
{
    // DVB on the 6-cube at B = 64 and maximum load: U > 1.
    const TaskFlowGraph g = buildDvbTfg({});
    const auto cube = GeneralizedHypercube::binaryCube(6);
    DvbParams dp;
    TimingModel tm;
    tm.apSpeed = dp.matchedApSpeed();
    tm.bandwidth = 64.0;
    const TaskAllocation alloc = alloc::roundRobin(g, cube, 13);
    SrCompilerConfig cfg;
    cfg.inputPeriod = tm.tauC(g);
    const SrCompileResult r =
        compileScheduledRouting(g, cube, alloc, tm, cfg);
    EXPECT_FALSE(r.feasible);
    EXPECT_EQ(r.stage, SrFailureStage::Utilization);
    EXPECT_GT(r.utilization.peak, 1.0);
    EXPECT_FALSE(r.detail.empty());
}

TEST(SrCompilerTest, FeasibleScheduleIsVerifiedAndExecutes)
{
    const TaskFlowGraph g = buildDvbTfg({});
    const auto cube = GeneralizedHypercube::binaryCube(6);
    DvbParams dp;
    TimingModel tm;
    tm.apSpeed = dp.matchedApSpeed();
    tm.bandwidth = 128.0;
    const TaskAllocation alloc = alloc::roundRobin(g, cube, 13);
    SrCompilerConfig cfg;
    cfg.inputPeriod = tm.tauC(g); // maximum load
    const SrCompileResult r =
        compileScheduledRouting(g, cube, alloc, tm, cfg);
    ASSERT_TRUE(r.feasible) << r.detail;
    EXPECT_TRUE(r.verification.ok);
    EXPECT_LE(r.utilization.peak, 1.0 + 1e-9);

    const SrExecutionResult ex =
        executeSchedule(g, alloc, tm, r.bounds, r.omega, 50);
    EXPECT_TRUE(ex.consistent(10));
    const SeriesStats s = ex.outputIntervals(10);
    EXPECT_NEAR(s.mean(), cfg.inputPeriod, 1e-6);
    EXPECT_NEAR(s.spread(), 0.0, 1e-6);
}

TEST(SrCompilerTest, ExecutorLatencyMatchesWindowSchedule)
{
    const TaskFlowGraph g = buildDvbTfg({});
    const Torus torus({4, 4, 4});
    DvbParams dp;
    TimingModel tm;
    tm.apSpeed = dp.matchedApSpeed();
    tm.bandwidth = 128.0;
    const TaskAllocation alloc = alloc::roundRobin(g, torus, 13);
    SrCompilerConfig cfg;
    cfg.inputPeriod = 2.0 * tm.tauC(g);
    const SrCompileResult r =
        compileScheduledRouting(g, torus, alloc, tm, cfg);
    ASSERT_TRUE(r.feasible) << r.detail;
    const SrExecutionResult ex =
        executeSchedule(g, alloc, tm, r.bounds, r.omega, 30);
    const SeriesStats lat = ex.latencies(5);
    // Latency is at least the critical path and at most the
    // canonical tau_c-window latency.
    EXPECT_GE(lat.min() + 1e-6, r.bounds.criticalPath);
    EXPECT_LE(lat.max(), r.bounds.windowLatency + 1e-6);
}

TEST(SrCompilerTest, LsdBaselinePathsAlsoCompile)
{
    // With the deterministic routing-function paths, feasibility is
    // rarer, but whenever the compiler says feasible the verifier
    // must agree.
    const TaskFlowGraph g = buildDvbTfg({});
    const auto ghc = GeneralizedHypercube({4, 4, 4});
    DvbParams dp;
    TimingModel tm;
    tm.apSpeed = dp.matchedApSpeed();
    tm.bandwidth = 128.0;
    const TaskAllocation alloc = alloc::roundRobin(g, ghc, 13);
    SrCompilerConfig cfg;
    cfg.inputPeriod = 4.0 * tm.tauC(g);
    cfg.useAssignPaths = false;
    const SrCompileResult r =
        compileScheduledRouting(g, ghc, alloc, tm, cfg);
    if (r.feasible) {
        EXPECT_TRUE(r.verification.ok);
    } else {
        EXPECT_NE(r.stage, SrFailureStage::None);
    }
}

TEST(SrCompilerTest, GreedyMethodsCompileToo)
{
    const TaskFlowGraph g = buildDvbTfg({});
    const auto cube = GeneralizedHypercube::binaryCube(6);
    DvbParams dp;
    TimingModel tm;
    tm.apSpeed = dp.matchedApSpeed();
    tm.bandwidth = 128.0;
    const TaskAllocation alloc = alloc::roundRobin(g, cube, 13);
    SrCompilerConfig cfg;
    cfg.inputPeriod = 2.5 * tm.tauC(g);
    cfg.allocMethod = AllocationMethod::Greedy;
    cfg.scheduling.method = SchedulingMethod::ListScheduling;
    const SrCompileResult r =
        compileScheduledRouting(g, cube, alloc, tm, cfg);
    if (r.feasible) {
        EXPECT_TRUE(r.verification.ok);
        const SrExecutionResult ex =
            executeSchedule(g, alloc, tm, r.bounds, r.omega, 30);
        EXPECT_TRUE(ex.consistent(5));
    }
}

TEST(SrCompilerTest, SrRemovesWormholeInconsistency)
{
    // The headline comparison at one load point: DVB on a 4x4x4
    // torus at B = 128 and maximum load. WR is inconsistent (or
    // deadlocked); SR is feasible and constant.
    const TaskFlowGraph g = buildDvbTfg({});
    const Torus torus({4, 4, 4});
    DvbParams dp;
    TimingModel tm;
    tm.apSpeed = dp.matchedApSpeed();
    tm.bandwidth = 128.0;
    const TaskAllocation alloc = alloc::roundRobin(g, torus, 13);
    const Time period = tm.tauC(g);

    WormholeSimulator wsim(g, torus, alloc, tm);
    WormholeConfig wcfg;
    wcfg.inputPeriod = period;
    const WormholeResult wr = wsim.run(wcfg);
    EXPECT_TRUE(wr.outputInconsistent(wcfg.warmup));

    SrCompilerConfig cfg;
    cfg.inputPeriod = period;
    const SrCompileResult r =
        compileScheduledRouting(g, torus, alloc, tm, cfg);
    ASSERT_TRUE(r.feasible) << r.detail;
    const SrExecutionResult ex =
        executeSchedule(g, alloc, tm, r.bounds, r.omega, 40);
    EXPECT_TRUE(ex.consistent(10));
}

/**
 * Property sweep: random TFGs on random fabrics at random loads.
 * Whenever the compiler reports feasible, the independent verifier
 * must accept the schedule and the executor must observe constant
 * throughput with no premise violations.
 */
struct SweepCase
{
    int seed;
    const char *fabric;
};

class SrCompilerSweep
    : public ::testing::TestWithParam<SweepCase>
{
  protected:
    std::unique_ptr<Topology>
    makeFabric(const std::string &which) const
    {
        if (which == "cube4")
            return std::make_unique<GeneralizedHypercube>(
                GeneralizedHypercube::binaryCube(4));
        if (which == "ghc44")
            return std::make_unique<GeneralizedHypercube>(
                std::vector<int>{4, 4});
        if (which == "torus44")
            return std::make_unique<Torus>(std::vector<int>{4, 4});
        return std::make_unique<Torus>(std::vector<int>{8});
    }
};

TEST_P(SrCompilerSweep, FeasibleImpliesVerifiedAndConsistent)
{
    const SweepCase param = GetParam();
    Rng rng(static_cast<std::uint64_t>(param.seed));
    const auto topo = makeFabric(param.fabric);

    RandomTfgParams rp;
    rp.layers = rng.uniformInt(2, 4);
    rp.maxWidth = rng.uniformInt(1, 4);
    rp.minOps = 400.0;
    rp.maxOps = 2000.0;
    rp.minBytes = 64.0;
    // Keep tau_m <= tau_c: max message time = 2048/64 = 32 us; at
    // speed >= 12.5 ops/us, min task time = 400/12.5 = 32 us.
    rp.maxBytes = 2048.0;
    const TaskFlowGraph g = buildRandomTfg(rp, rng);
    TimingModel tm;
    tm.apSpeed = 12.5;
    tm.bandwidth = 64.0;

    TaskAllocation alloc = alloc::random(g, *topo, rng);
    SrCompilerConfig cfg;
    cfg.inputPeriod =
        tm.tauC(g) * rng.uniformReal(1.0, 4.0);
    cfg.assign.seed = static_cast<std::uint64_t>(param.seed);
    const SrCompileResult r =
        compileScheduledRouting(g, *topo, alloc, tm, cfg);

    if (!r.feasible) {
        EXPECT_NE(r.stage, SrFailureStage::None);
        // The verifier stage must never be the failure reason: the
        // compiler must only emit schedules that verify.
        EXPECT_NE(r.stage, SrFailureStage::Verification)
            << r.detail;
        return;
    }
    EXPECT_TRUE(r.verification.ok);
    const SrExecutionResult ex =
        executeSchedule(g, alloc, tm, r.bounds, r.omega, 30);
    EXPECT_TRUE(ex.consistent(5))
        << (ex.notes.empty() ? "" : ex.notes.front());
    EXPECT_NEAR(ex.outputIntervals(5).mean(), cfg.inputPeriod,
                1e-6);
}

std::vector<SweepCase>
sweepCases()
{
    std::vector<SweepCase> out;
    const char *fabrics[] = {"cube4", "ghc44", "torus44", "ring8"};
    for (int seed = 1; seed <= 10; ++seed)
        for (const char *f : fabrics)
            out.push_back(SweepCase{seed, f});
    return out;
}

INSTANTIATE_TEST_SUITE_P(RandomWorkloads, SrCompilerSweep,
                         ::testing::ValuesIn(sweepCases()));

} // namespace
} // namespace srsim
