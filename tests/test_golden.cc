/**
 * @file
 * Golden conformance suite (label: golden).
 *
 * Every case of the conformance table is recompiled from scratch and
 * byte-diffed against its checked-in tests/golden/<name>.sched file.
 * Any divergence — routing order, LP pivoting, subset merging,
 * repair decisions, serialization — fails here with a unified-style
 * context diff. After an *intentional* output change, refresh the
 * corpus with tools/regen_golden and review the diff.
 *
 * One repair-heavy case additionally recompiles at 1, 2, and 8
 * worker threads: the golden bytes must not depend on the thread
 * count (the parallel compiler merges deterministically).
 */

#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "golden_cases.hh"
#include "solver/lp.hh"
#include "util/thread_pool.hh"

namespace srsim {
namespace {

std::string
goldenPath(const golden::GoldenCase &gc)
{
    return std::string(SRSIM_GOLDEN_DIR) + "/" + gc.name +
           ".sched";
}

std::string
readFileOrEmpty(const std::string &path)
{
    std::ifstream in(path);
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

/** First line where the two texts diverge, with context. */
std::string
firstDiff(const std::string &want, const std::string &got)
{
    std::istringstream a(want), b(got);
    std::string la, lb;
    for (std::size_t line = 1;; ++line) {
        const bool ha = static_cast<bool>(std::getline(a, la));
        const bool hb = static_cast<bool>(std::getline(b, lb));
        if (!ha && !hb)
            return "(no difference found line-wise)";
        if (!ha || !hb || la != lb) {
            std::ostringstream os;
            os << "first divergence at line " << line << ":\n"
               << "  golden: "
               << (ha ? la : std::string("<eof>")) << "\n"
               << "  actual: "
               << (hb ? lb : std::string("<eof>"));
            return os.str();
        }
    }
}

class Golden : public ::testing::TestWithParam<golden::GoldenCase>
{};

TEST_P(Golden, MatchesPinnedBytes)
{
    const golden::GoldenCase gc = GetParam();
    const std::string want = readFileOrEmpty(goldenPath(gc));
    ASSERT_FALSE(want.empty())
        << "missing golden file " << goldenPath(gc)
        << " — run tools/regen_golden and commit the corpus";
    const std::string got = golden::compileGoldenCase(gc);
    EXPECT_EQ(want, got)
        << "golden case '" << gc.name << "' diverged; "
        << firstDiff(want, got)
        << "\nIf the change is intentional, refresh with "
           "tools/regen_golden.";
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, Golden, ::testing::ValuesIn(golden::goldenCases()),
    [](const ::testing::TestParamInfo<golden::GoldenCase> &info) {
        std::string n = info.param.name;
        for (char &c : n)
            if (c == '-')
                c = '_';
        return n;
    });

/**
 * The pinned bytes are thread-count independent: the repair-heavy
 * mixed-fault case compiles identically at 1, 2, and 8 workers.
 */
TEST(GoldenDeterminism, ThreadCountInvariant)
{
    const golden::GoldenCase *mixed = nullptr;
    for (const auto &gc : golden::goldenCases())
        if (std::string(gc.name) == "fault-mixed")
            mixed = &gc;
    ASSERT_NE(mixed, nullptr);

    const std::string want =
        readFileOrEmpty(goldenPath(*mixed));
    ASSERT_FALSE(want.empty())
        << "missing golden file — run tools/regen_golden";
    for (std::size_t threads : {1u, 2u, 8u}) {
        ThreadPool::setGlobalSize(threads);
        EXPECT_EQ(want, golden::compileGoldenCase(*mixed))
            << "fault-mixed diverged at " << threads
            << " thread(s)";
    }
    ThreadPool::setGlobalSize(ThreadPool::configuredSize());
}

/**
 * The pinned bytes are solver-kind independent: cold compiles route
 * through the identical tableau arithmetic under both SolverKind
 * values (see lp::SolverKind), so forcing SRSIM_SOLVER=dense must
 * reproduce the corpus byte-for-byte — proving the warm-start
 * machinery never leaks into a cold pipeline.
 */
TEST(GoldenDeterminism, SolverKindInvariant)
{
    // Solver kind is context state now, not process state: pin each
    // kind in a child context instead of flipping a global.
    engine::ChildOptions denseOpts, sparseOpts;
    denseOpts.name = "golden.dense";
    denseOpts.solverKind = lp::SolverKind::Dense;
    sparseOpts.name = "golden.sparse";
    sparseOpts.solverKind = lp::SolverKind::Sparse;
    const auto denseCtx =
        engine::EngineContext::processDefault().createChild(
            denseOpts);
    const auto sparseCtx =
        engine::EngineContext::processDefault().createChild(
            sparseOpts);
    for (const auto &gc : golden::goldenCases()) {
        const std::string want = readFileOrEmpty(goldenPath(gc));
        ASSERT_FALSE(want.empty())
            << "missing golden file — run tools/regen_golden";
        const std::string dense =
            golden::compileGoldenCase(gc, denseCtx.get());
        const std::string sparse =
            golden::compileGoldenCase(gc, sparseCtx.get());
        EXPECT_EQ(want, dense)
            << "case '" << gc.name
            << "' diverged under SRSIM_SOLVER=dense; "
            << firstDiff(want, dense);
        EXPECT_EQ(want, sparse)
            << "case '" << gc.name
            << "' diverged under SRSIM_SOLVER=sparse; "
            << firstDiff(want, sparse);
    }
}

} // namespace
} // namespace srsim
