/**
 * @file
 * Tests for the TFG pattern builders and for packet-granularity
 * scheduling (Sec. 4.1's packet time base).
 */

#include <gtest/gtest.h>

#include "core/sr_compiler.hh"
#include "core/sr_executor.hh"
#include "mapping/allocation.hh"
#include "tfg/patterns.hh"
#include "tfg/timing.hh"
#include "topology/generalized_hypercube.hh"
#include "topology/torus.hh"

namespace srsim {
namespace {

TEST(PatternsTest, ChainShape)
{
    const TaskFlowGraph g = patterns::chain(5, 100.0, 64.0);
    EXPECT_EQ(g.numTasks(), 5);
    EXPECT_EQ(g.numMessages(), 4);
    EXPECT_EQ(g.inputTasks().size(), 1u);
    EXPECT_EQ(g.outputTasks().size(), 1u);
    EXPECT_TRUE(g.isAcyclic());
    EXPECT_THROW(patterns::chain(0, 1.0, 1.0), FatalError);
}

TEST(PatternsTest, ForkJoinShape)
{
    const TaskFlowGraph g =
        patterns::forkJoin(6, 100.0, 80.0, 120.0, 64.0);
    EXPECT_EQ(g.numTasks(), 8);
    EXPECT_EQ(g.numMessages(), 12);
    EXPECT_EQ(g.inputTasks().size(), 1u);
    EXPECT_EQ(g.outputTasks().size(), 1u);
    EXPECT_TRUE(g.isAcyclic());
}

TEST(PatternsTest, ButterflyShape)
{
    const TaskFlowGraph g =
        patterns::butterfly(3, 4, 100.0, 64.0);
    // 1 source + 3 layers x 4.
    EXPECT_EQ(g.numTasks(), 13);
    EXPECT_TRUE(g.isAcyclic());
    EXPECT_EQ(g.inputTasks().size(), 1u);
    // Each non-final layer task sends 2 messages (i != twiddle
    // for width 4 at stages 0 and 1).
    EXPECT_EQ(g.numMessages(), 4 + 2 * 4 + 2 * 4);
}

TEST(PatternsTest, ReductionShape)
{
    const TaskFlowGraph g = patterns::reduction(8, 100.0, 64.0);
    // scatter + 8 leaves + 4 + 2 + 1 reducers.
    EXPECT_EQ(g.numTasks(), 1 + 8 + 7);
    EXPECT_EQ(g.outputTasks().size(), 1u);
    EXPECT_TRUE(g.isAcyclic());
}

TEST(PatternsTest, ReductionHandlesOddLeafCounts)
{
    const TaskFlowGraph g = patterns::reduction(5, 100.0, 64.0);
    EXPECT_EQ(g.outputTasks().size(), 1u);
    EXPECT_TRUE(g.isAcyclic());
}

TEST(PatternsTest, PatternsCompileEndToEnd)
{
    // Every pattern should be schedulable on a roomy fabric at a
    // relaxed period.
    const auto cube = GeneralizedHypercube::binaryCube(4);
    TimingModel tm;
    tm.apSpeed = 10.0;
    tm.bandwidth = 64.0;
    const std::vector<TaskFlowGraph> graphs = {
        patterns::chain(6, 200.0, 512.0),
        patterns::forkJoin(5, 300.0, 200.0, 300.0, 512.0),
        patterns::butterfly(2, 4, 250.0, 512.0),
        patterns::reduction(6, 250.0, 512.0),
    };
    for (const TaskFlowGraph &g : graphs) {
        const TaskAllocation alloc = alloc::greedy(g, cube);
        SrCompilerConfig cfg;
        cfg.inputPeriod = 2.0 * tm.tauC(g);
        cfg.feedbackRounds = 1;
        const SrCompileResult r =
            compileScheduledRouting(g, cube, alloc, tm, cfg);
        ASSERT_TRUE(r.feasible) << r.detail;
        EXPECT_TRUE(r.verification.ok);
    }
}

/**
 * Packet-granularity scheduling: with task times, message times,
 * and the period all integer microseconds and a 1 us packet time
 * (64-byte packets at 64 bytes/us), every segment boundary must
 * land on the packet grid and the schedule must still verify and
 * execute with constant throughput.
 */
TEST(PacketTest, AlignedWorkloadProducesGridSchedule)
{
    // All ops multiples of 25 -> task times integer at speed 25;
    // all bytes multiples of 64 -> message times integer at B=64.
    TaskFlowGraph g = patterns::forkJoin(4, 1925.0, 1000.0,
                                         1925.0, 1536.0);
    TimingModel tm;
    tm.apSpeed = 25.0;   // 77 us and 40 us tasks
    tm.bandwidth = 64.0; // 24 us messages
    const auto cube = GeneralizedHypercube::binaryCube(4);
    const TaskAllocation alloc = alloc::roundRobin(g, cube, 5);

    SrCompilerConfig cfg;
    cfg.inputPeriod = 2 * 77.0; // integer period
    cfg.scheduling.packetTime = 1.0;
    cfg.feedbackRounds = 1;
    const SrCompileResult r =
        compileScheduledRouting(g, cube, alloc, tm, cfg);
    ASSERT_TRUE(r.feasible) << r.detail;
    EXPECT_TRUE(r.verification.ok);
    EXPECT_TRUE(isPacketAligned(r.omega, 1.0));

    const SrExecutionResult ex =
        executeSchedule(g, alloc, tm, r.bounds, r.omega, 25);
    EXPECT_TRUE(ex.consistent(5));
}

TEST(PacketTest, ContinuousScheduleIsUsuallyOffGrid)
{
    // Same workload without quantization: the LP lands on vertex
    // solutions that are not packet multiples in general; the
    // helper must detect that (it may occasionally still align, so
    // only check the helper agrees with a manual scan).
    TaskFlowGraph g = patterns::forkJoin(4, 1925.0, 1000.0,
                                         1925.0, 1590.0);
    TimingModel tm;
    tm.apSpeed = 25.0;
    tm.bandwidth = 64.0; // 1590/64 is not an integer
    const auto cube = GeneralizedHypercube::binaryCube(4);
    const TaskAllocation alloc = alloc::roundRobin(g, cube, 5);
    SrCompilerConfig cfg;
    cfg.inputPeriod = 2 * 77.0;
    const SrCompileResult r =
        compileScheduledRouting(g, cube, alloc, tm, cfg);
    ASSERT_TRUE(r.feasible) << r.detail;
    // 1590/64 = 24.84 us durations cannot sit on a 1 us grid.
    EXPECT_FALSE(isPacketAligned(r.omega, 1.0));
}

TEST(PacketTest, PacketBytesRoundMessageTimesUp)
{
    TaskFlowGraph g = patterns::chain(2, 100.0, 1111.0);
    TimingModel tm;
    tm.apSpeed = 1.0;
    tm.bandwidth = 64.0;
    // Continuous: 1111/64 us.
    EXPECT_NEAR(tm.messageTime(g, 0), 1111.0 / 64.0, 1e-9);
    // 64-byte packets: 18 packets = 1152 bytes of link time.
    tm.packetBytes = 64.0;
    EXPECT_NEAR(tm.messageTime(g, 0), 1152.0 / 64.0, 1e-9);
    EXPECT_NEAR(tm.packetTime(), 1.0, 1e-12);
    EXPECT_NEAR(tm.tauM(g), 18.0, 1e-9);
}

TEST(PacketTest, UnalignedWorkloadsCompileWithPacketBytes)
{
    // With TimingModel::packetBytes set, awkward byte counts round
    // to whole packets and quantized compilation goes through; the
    // schedule lands on the grid whenever releases do.
    TaskFlowGraph g = patterns::butterfly(2, 4, 997.0, 1111.0);
    TimingModel tm;
    tm.apSpeed = 13.0;
    tm.bandwidth = 64.0;
    tm.packetBytes = 64.0; // compiler derives packetTime = 1 us
    const Torus torus({4, 4});
    const TaskAllocation alloc = alloc::greedy(g, torus);
    SrCompilerConfig cfg;
    cfg.inputPeriod = 3.0 * tm.tauC(g);
    cfg.feedbackRounds = 1;
    const SrCompileResult r =
        compileScheduledRouting(g, torus, alloc, tm, cfg);
    ASSERT_TRUE(r.feasible) << r.detail;
    EXPECT_TRUE(r.verification.ok);
    const SrExecutionResult ex =
        executeSchedule(g, alloc, tm, r.bounds, r.omega, 20);
    EXPECT_TRUE(ex.consistent(4));
}

TEST(PacketTest, NonPacketDurationsAreRejected)
{
    // Asking for a packet grid without rounding message times must
    // be refused as invalid input, not produce a broken schedule.
    TaskFlowGraph g = patterns::chain(3, 100.0, 400.0);
    TimingModel tm;
    tm.apSpeed = 10.0;
    tm.bandwidth = 64.0; // 6.25 us messages, not packet-aligned
    const Torus torus({4, 4});
    const TaskAllocation alloc = alloc::greedy(g, torus);
    SrCompilerConfig cfg;
    cfg.inputPeriod = 4.0 * tm.tauC(g);
    cfg.scheduling.packetTime = 1.0;
    const SrCompileResult r =
        compileScheduledRouting(g, torus, alloc, tm, cfg);
    EXPECT_FALSE(r.feasible);
    EXPECT_EQ(r.stage, SrFailureStage::InvalidInput);
    EXPECT_NE(r.error.message, kInvalidMessage);
    EXPECT_NE(r.detail.find("whole number of packets"),
              std::string::npos);
}

} // namespace
} // namespace srsim
