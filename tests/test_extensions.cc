/**
 * @file
 * Tests for the paper's suggested extensions implemented by srsim:
 * the virtual-channel wormhole model (Sec. 6's stricter model),
 * feedback between the Fig. 3 compiler steps, CP-synchronization
 * guard margins, allocation-path coupling, and schedule
 * serialization.
 */

#include <sstream>

#include <gtest/gtest.h>

#include "core/coupled_allocation.hh"
#include "core/schedule_io.hh"
#include "core/sr_compiler.hh"
#include "core/sr_executor.hh"
#include "mapping/allocation.hh"
#include "tfg/dvb.hh"
#include "tfg/timing.hh"
#include "topology/generalized_hypercube.hh"
#include "topology/torus.hh"
#include "wormhole/wormhole.hh"

namespace srsim {
namespace {

// ---------------------------------------------------------------
// Virtual-channel wormhole model.
// ---------------------------------------------------------------

TEST(VirtualChannelTest, HalvedBandwidthDoublesTransmission)
{
    TaskFlowGraph g;
    const TaskId a = g.addTask("a", 100.0);
    const TaskId b = g.addTask("b", 100.0);
    g.addMessage("ab", a, b, 640.0); // 10 us at full bandwidth
    TimingModel tm;
    tm.apSpeed = 10.0;
    tm.bandwidth = 64.0;
    const auto cube = GeneralizedHypercube::binaryCube(3);
    TaskAllocation alloc(2, 8);
    alloc.assign(0, 0);
    alloc.assign(1, 1);
    WormholeSimulator sim(g, cube, alloc, tm);
    WormholeConfig cfg;
    cfg.inputPeriod = 100.0;
    cfg.invocations = 4;
    cfg.warmup = 1;

    const WormholeResult plain = sim.run(cfg);
    EXPECT_DOUBLE_EQ(plain.records[0].latency(), 30.0);

    cfg.virtualChannels = 2;
    const WormholeResult vc = sim.run(cfg);
    // 10 us task + 20 us transfer + 10 us task.
    EXPECT_DOUBLE_EQ(vc.records[0].latency(), 40.0);
}

TEST(VirtualChannelTest, TwoMessagesShareALink)
{
    // Two messages over the same single link, same release: with
    // 2 VCs they ride together at half bandwidth instead of
    // serializing at full bandwidth. Same finish time here (20 us
    // either way), but the second message's *start* is immediate.
    TaskFlowGraph g;
    const TaskId s1 = g.addTask("s1", 100.0);
    const TaskId s2 = g.addTask("s2", 100.0);
    const TaskId d1 = g.addTask("d1", 100.0);
    const TaskId d2 = g.addTask("d2", 100.0);
    g.addMessage("m1", s1, d1, 640.0);
    g.addMessage("m2", s2, d2, 640.0);
    TimingModel tm;
    tm.apSpeed = 10.0;
    tm.bandwidth = 64.0;
    const Torus ring({4});
    TaskAllocation a(4, 4);
    a.assign(0, 0);
    a.assign(1, 0);
    a.assign(2, 1);
    a.assign(3, 1);
    WormholeSimulator sim(g, ring, a, tm);
    WormholeConfig cfg;
    cfg.inputPeriod = 200.0;
    cfg.invocations = 3;
    cfg.warmup = 0;

    // Plain capture: serialization -> slower destination ends at
    // 10 + 10 + 10 + 10 = 40.
    const WormholeResult plain = sim.run(cfg);
    EXPECT_DOUBLE_EQ(plain.records[0].latency(), 40.0);

    // 2 VCs: both transmit [10, 30] concurrently at half
    // bandwidth; both arrive at node 1 at t=30, whose single AP
    // then serializes d1 [30,40] and d2 [40,50].
    cfg.virtualChannels = 2;
    const WormholeResult vc = sim.run(cfg);
    EXPECT_DOUBLE_EQ(vc.records[0].latency(), 50.0);
    EXPECT_FALSE(vc.deadlocked);
}

TEST(VirtualChannelTest, ResolvesPlainModelDeadlock)
{
    // The 6-ring deadlock scenario of the wormhole tests: with two
    // virtual channels per link the wait-for cycle cannot close.
    TaskFlowGraph g;
    const TaskId blk_s = g.addTask("blk_s", 80.0);
    const TaskId blk_d = g.addTask("blk_d", 10.0);
    const TaskId mb_s = g.addTask("mb_s", 100.0);
    const TaskId mb_d = g.addTask("mb_d", 10.0);
    const TaskId ma_s = g.addTask("ma_s", 120.0);
    const TaskId ma_d = g.addTask("ma_d", 10.0);
    g.addMessage("blk", blk_s, blk_d, 640.0);
    g.addMessage("mB", mb_s, mb_d, 640.0);
    g.addMessage("mA", ma_s, ma_d, 640.0);
    TimingModel tm;
    tm.apSpeed = 10.0;
    tm.bandwidth = 64.0;
    const Torus ring({6});
    TaskAllocation a(g.numTasks(), ring.numNodes());
    a.assign(blk_s, 2);
    a.assign(blk_d, 3);
    a.assign(mb_s, 1);
    a.assign(mb_d, 4);
    a.assign(ma_s, 4);
    a.assign(ma_d, 2);
    WormholeSimulator sim(g, ring, a, tm);
    WormholeConfig cfg;
    cfg.inputPeriod = 1000.0;
    cfg.invocations = 2;
    cfg.warmup = 0;

    EXPECT_TRUE(sim.run(cfg).deadlocked);
    cfg.virtualChannels = 2;
    EXPECT_FALSE(sim.run(cfg).deadlocked);
}

TEST(VirtualChannelTest, ZeroChannelsRejected)
{
    TaskFlowGraph g;
    g.addTask("only", 10.0);
    TimingModel tm;
    const auto cube = GeneralizedHypercube::binaryCube(2);
    TaskAllocation a(1, 4);
    a.assign(0, 0);
    WormholeSimulator sim(g, cube, a, tm);
    WormholeConfig cfg;
    cfg.inputPeriod = 10.0;
    cfg.virtualChannels = 0;
    EXPECT_THROW(sim.run(cfg), FatalError);
}

// ---------------------------------------------------------------
// Compiler feedback.
// ---------------------------------------------------------------

TEST(FeedbackTest, RoundsUsedStaysZeroOnFirstTrySuccess)
{
    const TaskFlowGraph g = buildDvbTfg({});
    const auto cube = GeneralizedHypercube::binaryCube(6);
    DvbParams dp;
    TimingModel tm;
    tm.apSpeed = dp.matchedApSpeed();
    tm.bandwidth = 128.0;
    const TaskAllocation alloc = alloc::roundRobin(g, cube, 13);
    SrCompilerConfig cfg;
    cfg.inputPeriod = 3.0 * tm.tauC(g);
    cfg.feedbackRounds = 3;
    const SrCompileResult r =
        compileScheduledRouting(g, cube, alloc, tm, cfg);
    ASSERT_TRUE(r.feasible);
    EXPECT_EQ(r.feedbackRoundsUsed, 0);
}

TEST(FeedbackTest, NeverHurtsFeasibility)
{
    // Across the load sweep, enabling feedback can only turn
    // failures into successes, never the reverse (round 0 uses the
    // same seed as the no-feedback compile).
    const TaskFlowGraph g = buildDvbTfg({});
    const Torus torus({8, 8});
    DvbParams dp;
    TimingModel tm;
    tm.apSpeed = dp.matchedApSpeed();
    tm.bandwidth = 128.0;
    const TaskAllocation alloc = alloc::roundRobin(g, torus, 13);
    for (double f : {1.0, 1.5, 2.2, 3.0}) {
        SrCompilerConfig base;
        base.inputPeriod = f * tm.tauC(g);
        const bool without =
            compileScheduledRouting(g, torus, alloc, tm, base)
                .feasible;
        SrCompilerConfig fb = base;
        fb.feedbackRounds = 2;
        const SrCompileResult with_fb =
            compileScheduledRouting(g, torus, alloc, tm, fb);
        if (without) {
            EXPECT_TRUE(with_fb.feasible) << "factor " << f;
        }
    }
}

TEST(FeedbackTest, LsdPathsDoNotLoop)
{
    const TaskFlowGraph g = buildDvbTfg({});
    const Torus torus({8, 8});
    DvbParams dp;
    TimingModel tm;
    tm.apSpeed = dp.matchedApSpeed();
    tm.bandwidth = 64.0;
    const TaskAllocation alloc = alloc::roundRobin(g, torus, 13);
    SrCompilerConfig cfg;
    cfg.inputPeriod = 5.0 * tm.tauC(g);
    cfg.useAssignPaths = false;
    cfg.feedbackRounds = 5;
    const SrCompileResult r =
        compileScheduledRouting(g, torus, alloc, tm, cfg);
    // Deterministic paths: feedback must stop after round 0.
    EXPECT_EQ(r.feedbackRoundsUsed, 0);
    EXPECT_FALSE(r.feasible); // torus at B=64 is over capacity
}

// ---------------------------------------------------------------
// Guard margins.
// ---------------------------------------------------------------

TEST(GuardTimeTest, ScheduleStillVerifiesWithGuard)
{
    const TaskFlowGraph g = buildDvbTfg({});
    const auto cube = GeneralizedHypercube::binaryCube(6);
    DvbParams dp;
    TimingModel tm;
    tm.apSpeed = dp.matchedApSpeed();
    tm.bandwidth = 128.0;
    const TaskAllocation alloc = alloc::roundRobin(g, cube, 13);
    SrCompilerConfig cfg;
    cfg.inputPeriod = 3.0 * tm.tauC(g);
    cfg.scheduling.guardTime = 0.25;
    const SrCompileResult r =
        compileScheduledRouting(g, cube, alloc, tm, cfg);
    ASSERT_TRUE(r.feasible) << r.detail;
    EXPECT_TRUE(r.verification.ok);
    // Guard gaps do not change total transmission time.
    for (std::size_t i = 0; i < r.bounds.messages.size(); ++i) {
        EXPECT_NEAR(r.omega.scheduledTime(i),
                    r.bounds.messages[i].duration, 1e-6);
    }
    const SrExecutionResult ex =
        executeSchedule(g, alloc, tm, r.bounds, r.omega, 30);
    EXPECT_TRUE(ex.consistent(5));
}

TEST(GuardTimeTest, LargeGuardCausesSchedulingFailure)
{
    const TaskFlowGraph g = buildDvbTfg({});
    const auto cube = GeneralizedHypercube::binaryCube(6);
    DvbParams dp;
    TimingModel tm;
    tm.apSpeed = dp.matchedApSpeed();
    tm.bandwidth = 128.0;
    const TaskAllocation alloc = alloc::roundRobin(g, cube, 13);
    SrCompilerConfig cfg;
    cfg.inputPeriod = tm.tauC(g); // maximum load, no slack left
    cfg.scheduling.guardTime = 20.0; // huge vs tau_c = 50
    const SrCompileResult r =
        compileScheduledRouting(g, cube, alloc, tm, cfg);
    EXPECT_FALSE(r.feasible);
}

TEST(GuardTimeTest, GuardMonotonicallyShrinksFeasibility)
{
    const TaskFlowGraph g = buildDvbTfg({});
    const auto cube = GeneralizedHypercube::binaryCube(6);
    DvbParams dp;
    TimingModel tm;
    tm.apSpeed = dp.matchedApSpeed();
    tm.bandwidth = 128.0;
    const TaskAllocation alloc = alloc::roundRobin(g, cube, 13);
    bool prev_feasible = true;
    for (double guard : {0.0, 0.5, 2.0, 10.0, 30.0}) {
        SrCompilerConfig cfg;
        cfg.inputPeriod = 1.2 * tm.tauC(g);
        cfg.scheduling.guardTime = guard;
        const bool feas =
            compileScheduledRouting(g, cube, alloc, tm, cfg)
                .feasible;
        // Once infeasible, larger guards must stay infeasible.
        if (!prev_feasible) {
            EXPECT_FALSE(feas) << "guard " << guard;
        }
        prev_feasible = feas;
    }
}

// ---------------------------------------------------------------
// Coupled allocation.
// ---------------------------------------------------------------

TEST(CoupledAllocationTest, NeverWorseThanSeed)
{
    const TaskFlowGraph g = buildDvbTfg({});
    const auto cube = GeneralizedHypercube::binaryCube(6);
    DvbParams dp;
    TimingModel tm;
    tm.apSpeed = dp.matchedApSpeed();
    tm.bandwidth = 64.0;
    const Time period = 2.0 * tm.tauC(g);

    const TaskAllocation seed = alloc::greedy(g, cube);
    Rng rng(11);
    const CoupledAllocationResult res = coupleAllocationWithPaths(
        g, cube, tm, period, seed, rng);
    EXPECT_TRUE(res.allocation.complete());

    // Score both with the same short AssignPaths effort.
    CoupledAllocationOptions opts;
    const TimeBounds tb_seed =
        computeTimeBounds(g, seed, tm, period);
    const IntervalSet ivs_seed(tb_seed);
    const double seed_u =
        assignPaths(g, cube, seed, tb_seed, ivs_seed, opts.scoring)
            .report.peak;
    EXPECT_LE(res.peakUtilization, seed_u + 1e-6);
}

TEST(CoupledAllocationTest, RecoversInfeasibleGreedySeed)
{
    // The greedy allocation pins the DVB fan-in to four cube
    // dimensions (U stuck at 1.44 at B = 64); the coupled search
    // must find an allocation that the compiler can schedule at a
    // low load.
    const TaskFlowGraph g = buildDvbTfg({});
    const auto cube = GeneralizedHypercube::binaryCube(6);
    DvbParams dp;
    TimingModel tm;
    tm.apSpeed = dp.matchedApSpeed();
    tm.bandwidth = 64.0;
    const Time period = 4.0 * tm.tauC(g);

    const TaskAllocation seed = alloc::greedy(g, cube);
    SrCompilerConfig cfg;
    cfg.inputPeriod = period;
    ASSERT_FALSE(
        compileScheduledRouting(g, cube, seed, tm, cfg).feasible);

    Rng rng(3);
    const CoupledAllocationResult res = coupleAllocationWithPaths(
        g, cube, tm, period, seed, rng);
    // U <= 1 is necessary but not sufficient for the allocation
    // stage; give the compiler its Fig. 3 feedback rounds (the
    // production recovery path) so a low-U allocation whose first
    // path assignment trips the interval LP still schedules.
    SrCompilerConfig final_cfg = cfg;
    final_cfg.feedbackRounds = 6;
    const SrCompileResult r = compileScheduledRouting(
        g, cube, res.allocation, tm, final_cfg);
    EXPECT_TRUE(r.feasible)
        << "coupled U = " << res.peakUtilization << ", "
        << r.detail;
}

TEST(CoupledAllocationTest, IncompleteSeedIsStructuredFailure)
{
    const TaskFlowGraph g = buildDvbTfg({});
    const auto cube = GeneralizedHypercube::binaryCube(6);
    TimingModel tm;
    tm.apSpeed = 38.5;
    TaskAllocation seed(g.numTasks(), cube.numNodes());
    Rng rng(1);
    const CoupledAllocationResult res =
        coupleAllocationWithPaths(g, cube, tm, 100.0, seed, rng);
    EXPECT_FALSE(res.ok);
    EXPECT_FALSE(res.error.empty());
    EXPECT_EQ(res.accepted, 0);
}

// ---------------------------------------------------------------
// Schedule serialization.
// ---------------------------------------------------------------

TEST(ScheduleIoTest, RoundTripPreservesSchedule)
{
    const TaskFlowGraph g = buildDvbTfg({});
    const auto cube = GeneralizedHypercube::binaryCube(6);
    DvbParams dp;
    TimingModel tm;
    tm.apSpeed = dp.matchedApSpeed();
    tm.bandwidth = 128.0;
    const TaskAllocation alloc = alloc::roundRobin(g, cube, 13);
    SrCompilerConfig cfg;
    cfg.inputPeriod = 1.5 * tm.tauC(g);
    const SrCompileResult r =
        compileScheduledRouting(g, cube, alloc, tm, cfg);
    ASSERT_TRUE(r.feasible);

    std::stringstream ss;
    writeSchedule(ss, r.omega);
    const GlobalSchedule back = readSchedule(ss, cube);

    EXPECT_DOUBLE_EQ(back.period, r.omega.period);
    ASSERT_EQ(back.segments.size(), r.omega.segments.size());
    for (std::size_t i = 0; i < back.segments.size(); ++i) {
        EXPECT_EQ(back.paths.pathFor(i), r.omega.paths.pathFor(i));
        ASSERT_EQ(back.segments[i].size(),
                  r.omega.segments[i].size());
        for (std::size_t s = 0; s < back.segments[i].size(); ++s)
            EXPECT_TRUE(back.segments[i][s] ==
                        r.omega.segments[i][s]);
    }

    // The reloaded schedule must still verify.
    const VerifyResult v =
        verifySchedule(g, cube, alloc, r.bounds, back);
    EXPECT_TRUE(v.ok);
}

TEST(ScheduleIoTest, RejectsBadMagic)
{
    std::stringstream ss;
    ss << "not a schedule\n";
    const auto cube = GeneralizedHypercube::binaryCube(2);
    EXPECT_THROW(readSchedule(ss, cube), FatalError);
}

TEST(ScheduleIoTest, RejectsTruncatedFile)
{
    std::stringstream ss;
    ss << "srsim-schedule v1\nperiod 100\nmessages 2\n";
    const auto cube = GeneralizedHypercube::binaryCube(2);
    EXPECT_THROW(readSchedule(ss, cube), FatalError);
}

TEST(ScheduleIoTest, RejectsNonAdjacentPath)
{
    std::stringstream ss;
    ss << "srsim-schedule v1\n"
       << "period 100\n"
       << "messages 1\n"
       << "message 0 path 0 3\n" // 0 and 3 not adjacent in a 2-cube
       << "segments 1\n"
       << "  0 10\n"
       << "end\n";
    const auto cube = GeneralizedHypercube::binaryCube(2);
    // A bad file is user input, not an internal invariant: it must
    // fail loudly as a structured FatalError, never a panic/assert.
    EXPECT_THROW(readSchedule(ss, cube), FatalError);
}

} // namespace
} // namespace srsim
