/**
 * @file
 * Tests for the progressive-filling (fair-share) virtual-channel
 * wormhole model: with flit-level multiplexing, the bandwidth of a
 * link is split evenly among the messages currently crossing it,
 * and a message's rate is set by its most-contended link. Unlike
 * the static model (bandwidth divided by the channel count
 * unconditionally), an uncontended message still runs at full
 * bandwidth.
 */

#include <gtest/gtest.h>

#include "mapping/allocation.hh"
#include "tfg/tfg.hh"
#include "tfg/timing.hh"
#include "topology/generalized_hypercube.hh"
#include "topology/torus.hh"
#include "wormhole/wormhole.hh"

namespace srsim {
namespace {

TEST(FairShareTest, UncontendedMessageKeepsFullBandwidth)
{
    TaskFlowGraph g;
    const TaskId a = g.addTask("a", 100.0);
    const TaskId b = g.addTask("b", 100.0);
    g.addMessage("ab", a, b, 640.0); // 10 us at full bandwidth
    TimingModel tm;
    tm.apSpeed = 10.0;
    tm.bandwidth = 64.0;
    const auto cube = GeneralizedHypercube::binaryCube(3);
    TaskAllocation alloc(2, 8);
    alloc.assign(0, 0);
    alloc.assign(1, 1);
    WormholeSimulator sim(g, cube, alloc, tm);
    WormholeConfig cfg;
    cfg.inputPeriod = 100.0;
    cfg.invocations = 3;
    cfg.warmup = 0;
    cfg.virtualChannels = 2;
    cfg.fairShare = true;

    const WormholeResult r = sim.run(cfg);
    ASSERT_FALSE(r.deadlocked);
    // Static model would give 40 (halved bandwidth); fair sharing
    // keeps the lone message at full rate: 10 + 10 + 10.
    EXPECT_NEAR(r.records[0].latency(), 30.0, 1e-6);
}

TEST(FairShareTest, TwoSharersSplitTheLink)
{
    // m1: 0 -> 1 and m2: 3 -> 0 -> 1 share link 0-1 from t=10
    // (sources on different nodes so both inject simultaneously);
    // 640 bytes each at B/2 apiece completes together at t=30.
    TaskFlowGraph g;
    const TaskId s1 = g.addTask("s1", 100.0);
    const TaskId s2 = g.addTask("s2", 100.0);
    const TaskId d1 = g.addTask("d1", 100.0);
    const TaskId d2 = g.addTask("d2", 100.0);
    g.addMessage("m1", s1, d1, 640.0);
    g.addMessage("m2", s2, d2, 640.0);
    TimingModel tm;
    tm.apSpeed = 10.0;
    tm.bandwidth = 64.0;
    const Torus ring({4});
    TaskAllocation a(4, 4);
    a.assign(0, 0);
    a.assign(1, 3); // s2 on its own node: injects at t=10 too
    a.assign(2, 1);
    a.assign(3, 1);
    WormholeSimulator sim(g, ring, a, tm);
    ASSERT_EQ(sim.pathOf(1).nodes, (std::vector<NodeId>{3, 0, 1}));
    WormholeConfig cfg;
    cfg.inputPeriod = 200.0;
    cfg.invocations = 3;
    cfg.warmup = 0;
    cfg.virtualChannels = 2;
    cfg.fairShare = true;
    const WormholeResult r = sim.run(cfg);
    ASSERT_FALSE(r.deadlocked);
    // Both arrive at t=30; the shared destination AP serializes
    // d1 [30,40], d2 [40,50].
    EXPECT_NEAR(r.records[0].latency(), 50.0, 1e-6);
}

TEST(FairShareTest, RateRecomputedWhenASharerLeaves)
{
    // m1 (0 -> 1, 960 B) and m2 (3 -> 0 -> 1, 320 B) share link
    // 0-1 from t=10.
    //  [10, 20): both at 32 B/us -> m2 done at t=20 (320 B),
    //            m1 has moved 320 of 960.
    //  [20, 30): m1 alone at 64 B/us -> remaining 640 B done at 30.
    TaskFlowGraph g;
    const TaskId s1 = g.addTask("s1", 100.0);
    const TaskId s2 = g.addTask("s2", 100.0);
    const TaskId d1 = g.addTask("d1", 100.0);
    const TaskId d2 = g.addTask("d2", 100.0);
    g.addMessage("m1", s1, d1, 960.0);
    g.addMessage("m2", s2, d2, 320.0);
    TimingModel tm;
    tm.apSpeed = 10.0;
    tm.bandwidth = 64.0;
    const Torus ring({4});
    TaskAllocation a(4, 4);
    a.assign(0, 0);
    a.assign(1, 3); // s2 on its own node
    a.assign(2, 1);
    a.assign(3, 1);
    WormholeSimulator sim(g, ring, a, tm);
    ASSERT_EQ(sim.pathOf(1).nodes, (std::vector<NodeId>{3, 0, 1}));
    WormholeConfig cfg;
    cfg.inputPeriod = 500.0;
    cfg.invocations = 2;
    cfg.warmup = 0;
    cfg.virtualChannels = 2;
    cfg.fairShare = true;
    const WormholeResult r = sim.run(cfg);
    ASSERT_FALSE(r.deadlocked);
    // m2 delivered at 20: d2 runs [20, 30] on node 1's AP; m1
    // delivered at 30: d1 runs [30, 40]. Completion = 40.
    EXPECT_NEAR(r.records[0].latency(), 40.0, 1e-6);
}

TEST(FairShareTest, ThroughputConservedUnderSaturation)
{
    // The Sec. 3 scenario under fair sharing with the shared link
    // near saturation: whatever the contention pattern, the mean
    // output interval must track the input period (no unbounded
    // accumulation).
    TaskFlowGraph g;
    const TaskId A = g.addTask("A", 500.0);
    const TaskId B = g.addTask("B", 500.0);
    const TaskId C = g.addTask("C", 500.0);
    g.addMessage("M1", A, B, 3200.0);
    g.addMessage("M2", B, C, 3200.0);
    TimingModel tm;
    tm.apSpeed = 10.0;    // 50 us tasks; node 0 runs A and C
    tm.bandwidth = 128.0; // 25 us messages
    const Torus ring({4});
    TaskAllocation a(3, 4);
    a.assign(A, 0);
    a.assign(B, 1);
    a.assign(C, 0);
    WormholeSimulator sim(g, ring, a, tm);
    WormholeConfig cfg;
    // Node 0's AP carries 100 us of work per period and the shared
    // link 50 us, so 104 us is just above saturation.
    cfg.inputPeriod = 104.0;
    cfg.invocations = 50;
    cfg.warmup = 10;
    cfg.virtualChannels = 2;
    cfg.fairShare = true;
    const WormholeResult r = sim.run(cfg);
    ASSERT_FALSE(r.deadlocked);
    const SeriesStats s = r.outputIntervals(cfg.warmup);
    // Mean interval still tracks the input period (no unbounded
    // queueing): demand on the shared link is 50 us per 55 us.
    EXPECT_NEAR(s.mean(), cfg.inputPeriod,
                0.1 * cfg.inputPeriod);
}

TEST(FairShareTest, FairShareRequiresMultipleChannels)
{
    TaskFlowGraph g;
    g.addTask("only", 10.0);
    TimingModel tm;
    const auto cube = GeneralizedHypercube::binaryCube(2);
    TaskAllocation a(1, 4);
    a.assign(0, 0);
    WormholeSimulator sim(g, cube, a, tm);
    WormholeConfig cfg;
    cfg.inputPeriod = 10.0;
    cfg.virtualChannels = 1;
    cfg.fairShare = true; // meaningless without VCs
    EXPECT_THROW(sim.run(cfg), FatalError);
}

} // namespace
} // namespace srsim
