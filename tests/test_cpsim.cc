/**
 * @file
 * Tests for the CP-level discrete-event simulator: verified
 * schedules must execute cleanly with constant throughput, and
 * injected schedule corruptions must be caught dynamically.
 */

#include <gtest/gtest.h>

#include "cpsim/cp_simulator.hh"
#include "core/sr_compiler.hh"
#include "core/sr_executor.hh"
#include "mapping/allocation.hh"
#include "tfg/dvb.hh"
#include "tfg/timing.hh"
#include "topology/generalized_hypercube.hh"
#include "topology/torus.hh"

namespace srsim {
namespace {

/** Compile a feasible DVB schedule to execute / corrupt. */
struct CpSimFixture : public ::testing::Test
{
    TaskFlowGraph g = buildDvbTfg({});
    GeneralizedHypercube cube = GeneralizedHypercube::binaryCube(6);
    TimingModel tm;
    TaskAllocation alloc{1, 1};
    SrCompileResult sr;

    CpSimFixture() : alloc(alloc::roundRobin(g, cube, 13))
    {
        DvbParams dp;
        tm.apSpeed = dp.matchedApSpeed();
        tm.bandwidth = 128.0;
    }

    void
    SetUp() override
    {
        SrCompilerConfig cfg;
        cfg.inputPeriod = 2.0 * tm.tauC(g);
        sr = compileScheduledRouting(g, cube, alloc, tm, cfg);
        ASSERT_TRUE(sr.feasible) << sr.detail;
    }
};

TEST_F(CpSimFixture, VerifiedScheduleRunsClean)
{
    const CpSimResult r =
        simulateCps(g, cube, alloc, tm, sr.bounds, sr.omega);
    EXPECT_TRUE(r.ok()) << (r.violations.empty()
                                ? ""
                                : r.violations.front());
    EXPECT_GT(r.commandsExecuted, 0u);
}

TEST_F(CpSimFixture, ThroughputIsConstantAndEqualsPeriod)
{
    CpSimConfig cfg;
    cfg.invocations = 40;
    cfg.warmup = 8;
    const CpSimResult r =
        simulateCps(g, cube, alloc, tm, sr.bounds, sr.omega, cfg);
    ASSERT_TRUE(r.ok());
    const SeriesStats s = r.outputIntervals(cfg.warmup);
    EXPECT_NEAR(s.mean(), sr.omega.period, 1e-6);
    EXPECT_NEAR(s.spread(), 0.0, 1e-6);
}

TEST_F(CpSimFixture, AgreesWithAnalyticExecutor)
{
    CpSimConfig cfg;
    cfg.invocations = 25;
    cfg.warmup = 5;
    const CpSimResult dyn =
        simulateCps(g, cube, alloc, tm, sr.bounds, sr.omega, cfg);
    ASSERT_TRUE(dyn.ok());
    const SrExecutionResult ana = executeSchedule(
        g, alloc, tm, sr.bounds, sr.omega, cfg.invocations);
    ASSERT_EQ(dyn.completions.size(), ana.completions.size());
    for (std::size_t j = 0; j < dyn.completions.size(); ++j)
        EXPECT_NEAR(dyn.completions[j], ana.completions[j], 1e-6)
            << "invocation " << j;
}

TEST_F(CpSimFixture, DetectsInjectedLinkContention)
{
    GlobalSchedule bad = sr.omega;
    // Give message 1 message 0's path and windows: every shared
    // link is double-booked.
    bad.paths.paths[1] = bad.paths.paths[0];
    bad.segments[1] = bad.segments[0];
    const CpSimResult r =
        simulateCps(g, cube, alloc, tm, sr.bounds, bad);
    ASSERT_FALSE(r.ok());
    bool found = false;
    for (const std::string &v : r.violations)
        found = found ||
                v.find("double-booked") != std::string::npos;
    EXPECT_TRUE(found);
}

TEST_F(CpSimFixture, DetectsPrematureTransmission)
{
    GlobalSchedule bad = sr.omega;
    // Shift one message's first window well before its release:
    // the CP would transmit data the AP has not produced yet.
    const std::size_t victim = 0;
    const MessageBounds &b = sr.bounds.messages[victim];
    const Time len = bad.segments[victim].front().length();
    Time new_start = b.release - sr.bounds.tauC * 0.5;
    if (new_start < 0.0)
        new_start += sr.omega.period;
    bad.segments[victim].front() =
        TimeWindow{new_start, new_start + len};
    const CpSimResult r =
        simulateCps(g, cube, alloc, tm, sr.bounds, bad);
    ASSERT_FALSE(r.ok());
    bool found = false;
    for (const std::string &v : r.violations)
        found = found || v.find("before its data") !=
                             std::string::npos;
    EXPECT_TRUE(found);
}

TEST_F(CpSimFixture, DetectsShortDelivery)
{
    GlobalSchedule bad = sr.omega;
    bad.segments[2].back().end -= 0.5; // drop half a microsecond
    const CpSimResult r =
        simulateCps(g, cube, alloc, tm, sr.bounds, bad);
    ASSERT_FALSE(r.ok());
    bool found = false;
    for (const std::string &v : r.violations)
        found = found ||
                v.find("delivered") != std::string::npos;
    EXPECT_TRUE(found);
}

TEST_F(CpSimFixture, DetectsDeadlineMiss)
{
    GlobalSchedule bad = sr.omega;
    // Push a message's last window past its deadline.
    const std::size_t victim = 3;
    TimeWindow &w = bad.segments[victim].back();
    const Time shift = sr.bounds.tauC; // one whole window late
    w.start += shift;
    w.end += shift;
    const CpSimResult r =
        simulateCps(g, cube, alloc, tm, sr.bounds, bad);
    ASSERT_FALSE(r.ok());
    bool found = false;
    for (const std::string &v : r.violations)
        found = found ||
                v.find("deadline") != std::string::npos;
    EXPECT_TRUE(found);
}

TEST_F(CpSimFixture, RepeatedViolationsAreDeduplicated)
{
    GlobalSchedule bad = sr.omega;
    // The same double-booking recurs every invocation; the report
    // must collapse the repeats into one line with a count instead
    // of flooding one line per invocation.
    bad.paths.paths[1] = bad.paths.paths[0];
    bad.segments[1] = bad.segments[0];
    CpSimConfig cfg;
    cfg.invocations = 20;
    const CpSimResult r =
        simulateCps(g, cube, alloc, tm, sr.bounds, bad, cfg);
    ASSERT_FALSE(r.ok());
    ASSERT_EQ(r.violations.size(), r.violationRepeats.size());
    EXPECT_LT(r.violations.size(), r.totalViolations);
    std::uint64_t repeats = 0;
    bool suffixed = false;
    for (std::size_t i = 0; i < r.violations.size(); ++i) {
        repeats += r.violationRepeats[i];
        if (r.violationRepeats[i] > 1) {
            EXPECT_NE(r.violations[i].find(
                          " [x" +
                          std::to_string(r.violationRepeats[i]) +
                          "]"),
                      std::string::npos)
                << r.violations[i];
            suffixed = true;
        }
    }
    EXPECT_EQ(repeats, r.totalViolations);
    EXPECT_TRUE(suffixed);
}

TEST_F(CpSimFixture, StopOnViolationAborts)
{
    GlobalSchedule bad = sr.omega;
    bad.paths.paths[1] = bad.paths.paths[0];
    bad.segments[1] = bad.segments[0];
    CpSimConfig cfg;
    cfg.stopOnViolation = true;
    const CpSimResult r =
        simulateCps(g, cube, alloc, tm, sr.bounds, bad, cfg);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.violations.size(), 1u);
}

TEST(CpSimTest, WorksOnTorusSchedules)
{
    const TaskFlowGraph g = buildDvbTfg({});
    const Torus torus({4, 4, 4});
    DvbParams dp;
    TimingModel tm;
    tm.apSpeed = dp.matchedApSpeed();
    tm.bandwidth = 128.0;
    const TaskAllocation alloc = alloc::roundRobin(g, torus, 13);
    SrCompilerConfig cfg;
    cfg.inputPeriod = tm.tauC(g); // maximum load
    const SrCompileResult sr =
        compileScheduledRouting(g, torus, alloc, tm, cfg);
    ASSERT_TRUE(sr.feasible) << sr.detail;
    const CpSimResult r =
        simulateCps(g, torus, alloc, tm, sr.bounds, sr.omega);
    EXPECT_TRUE(r.ok()) << (r.violations.empty()
                                ? ""
                                : r.violations.front());
    EXPECT_NEAR(r.outputIntervals(5).mean(), sr.omega.period,
                1e-6);
}

TEST(CpSimTest, MismatchedScheduleIsFatal)
{
    const TaskFlowGraph g = buildDvbTfg({});
    const auto cube = GeneralizedHypercube::binaryCube(6);
    DvbParams dp;
    TimingModel tm;
    tm.apSpeed = dp.matchedApSpeed();
    tm.bandwidth = 128.0;
    const TaskAllocation alloc = alloc::roundRobin(g, cube, 13);
    const TimeBounds tb =
        computeTimeBounds(g, alloc, tm, 2.0 * tm.tauC(g));
    GlobalSchedule empty;
    empty.period = tb.inputPeriod;
    EXPECT_THROW(simulateCps(g, cube, alloc, tm, tb, empty),
                 FatalError);
}

} // namespace
} // namespace srsim
