/**
 * @file
 * Tests for the fixed-size thread pool: construction/teardown,
 * exactly-once parallelFor coverage, exception propagation, the
 * serial pool-of-1 degenerate case, submit() futures, nesting, and
 * the SRSIM_THREADS-driven global pool.
 */

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "util/rng.hh"
#include "util/thread_pool.hh"

namespace srsim {
namespace {

TEST(ThreadPoolTest, ConstructionAndTeardown)
{
    for (std::size_t n : {1u, 2u, 4u, 8u}) {
        ThreadPool pool(n);
        EXPECT_EQ(pool.size(), n);
    }
    // Size is clamped to at least one.
    ThreadPool zero(0);
    EXPECT_EQ(zero.size(), 1u);
    // Idle teardown (no work ever submitted) must not hang: the
    // destructors above already exercise it; an explicit scope too.
    {
        ThreadPool idle(4);
    }
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce)
{
    for (std::size_t threads : {1u, 2u, 5u}) {
        ThreadPool pool(threads);
        for (std::size_t n : {0u, 1u, 7u, 64u, 1000u}) {
            std::vector<std::atomic<int>> hits(n);
            for (auto &h : hits)
                h = 0;
            pool.parallelFor(n, [&](std::size_t i) {
                ASSERT_LT(i, n);
                ++hits[i];
            });
            for (std::size_t i = 0; i < n; ++i)
                EXPECT_EQ(hits[i].load(), 1)
                    << "threads=" << threads << " n=" << n
                    << " index=" << i;
        }
    }
}

TEST(ThreadPoolTest, ParallelForPropagatesWorkerExceptions)
{
    for (std::size_t threads : {1u, 4u}) {
        ThreadPool pool(threads);
        EXPECT_THROW(
            pool.parallelFor(16,
                             [](std::size_t i) {
                                 if (i == 11)
                                     throw std::runtime_error("boom");
                             }),
            std::runtime_error);
    }
}

TEST(ThreadPoolTest, LowestThrowingIndexWinsForEveryPoolSize)
{
    // Indices 3 and 9 both throw; the propagated exception must be
    // index 3's regardless of scheduling.
    for (std::size_t threads : {1u, 2u, 8u}) {
        ThreadPool pool(threads);
        for (int round = 0; round < 10; ++round) {
            try {
                pool.parallelFor(12, [](std::size_t i) {
                    if (i == 3)
                        throw std::runtime_error("low");
                    if (i == 9)
                        throw std::runtime_error("high");
                });
                FAIL() << "expected an exception";
            } catch (const std::runtime_error &e) {
                EXPECT_STREQ(e.what(), "low")
                    << "threads=" << threads;
            }
        }
    }
}

TEST(ThreadPoolTest, PoolOfOneDegeneratesToSerial)
{
    ThreadPool pool(1);
    const std::thread::id caller = std::this_thread::get_id();
    std::vector<std::size_t> order;
    pool.parallelFor(20, [&](std::size_t i) {
        EXPECT_EQ(std::this_thread::get_id(), caller);
        order.push_back(i); // safe: everything runs on the caller
    });
    ASSERT_EQ(order.size(), 20u);
    for (std::size_t i = 0; i < order.size(); ++i)
        EXPECT_EQ(order[i], i) << "serial pool must run in order";

    // submit() also runs inline and its future is immediately ready.
    auto fut = pool.submit([caller]() {
        EXPECT_EQ(std::this_thread::get_id(), caller);
        return 42;
    });
    EXPECT_EQ(fut.wait_for(std::chrono::seconds(0)),
              std::future_status::ready);
    EXPECT_EQ(fut.get(), 42);
}

TEST(ThreadPoolTest, SubmitReturnsValuesAndExceptions)
{
    ThreadPool pool(3);
    std::vector<std::future<int>> futs;
    for (int i = 0; i < 20; ++i)
        futs.push_back(pool.submit([i]() { return i * i; }));
    for (int i = 0; i < 20; ++i)
        EXPECT_EQ(futs[static_cast<std::size_t>(i)].get(), i * i);

    auto bad = pool.submit(
        []() -> int { throw std::logic_error("nope"); });
    EXPECT_THROW(bad.get(), std::logic_error);
}

TEST(ThreadPoolTest, NestedParallelForDoesNotDeadlock)
{
    // More outer items than threads, each spawning an inner loop:
    // the caller-participates design must make progress even when
    // every worker is busy with an outer item.
    ThreadPool pool(4);
    std::atomic<int> total{0};
    pool.parallelFor(8, [&](std::size_t) {
        pool.parallelFor(8, [&](std::size_t) { ++total; });
    });
    EXPECT_EQ(total.load(), 64);
}

TEST(ThreadPoolTest, GlobalPoolSizeIsConfigurable)
{
    ThreadPool::setGlobalSize(3);
    EXPECT_EQ(ThreadPool::global().size(), 3u);
    std::atomic<int> count{0};
    ThreadPool::global().parallelFor(10,
                                     [&](std::size_t) { ++count; });
    EXPECT_EQ(count.load(), 10);
    ThreadPool::setGlobalSize(1);
    EXPECT_EQ(ThreadPool::global().size(), 1u);
}

TEST(ThreadPoolTest, ConfiguredSizeParsesEnvironment)
{
    ::setenv("SRSIM_THREADS", "6", 1);
    EXPECT_EQ(ThreadPool::configuredSize(), 6u);
    ::setenv("SRSIM_THREADS", "1", 1);
    EXPECT_EQ(ThreadPool::configuredSize(), 1u);
    ::setenv("SRSIM_THREADS", "banana", 1);
    EXPECT_GE(ThreadPool::configuredSize(), 1u);
    ::setenv("SRSIM_THREADS", "0", 1);
    EXPECT_GE(ThreadPool::configuredSize(), 1u);
    ::unsetenv("SRSIM_THREADS");
    EXPECT_GE(ThreadPool::configuredSize(), 1u);
}

TEST(ThreadPoolTest, DeriveSeedGivesDistinctIndependentStreams)
{
    std::set<std::uint64_t> seeds;
    for (std::uint64_t base : {0ull, 1ull, 12345ull})
        for (std::uint64_t r = 0; r < 64; ++r)
            seeds.insert(deriveSeed(base, r));
    // No collisions across 3 bases x 64 streams.
    EXPECT_EQ(seeds.size(), 3u * 64u);
    // And the derivation is a pure function.
    EXPECT_EQ(deriveSeed(42, 7), deriveSeed(42, 7));
    EXPECT_NE(deriveSeed(42, 7), deriveSeed(42, 8));
}

} // namespace
} // namespace srsim
