/**
 * @file
 * Unit and property tests for the topology substrate: generalized
 * hypercubes, tori, meshes, path enumeration, and the LSD-to-MSD
 * routing function.
 */

#include <algorithm>
#include <memory>
#include <set>

#include <gtest/gtest.h>

#include "topology/generalized_hypercube.hh"
#include "topology/mesh.hh"
#include "topology/mixed_radix.hh"
#include "topology/torus.hh"
#include "util/rng.hh"

namespace srsim {
namespace {

TEST(MixedRadixTest, RoundTrip)
{
    MixedRadix mr({4, 4, 4});
    EXPECT_EQ(mr.size(), 64);
    for (NodeId id = 0; id < mr.size(); ++id)
        EXPECT_EQ(mr.toId(mr.toDigits(id)), id);
}

TEST(MixedRadixTest, MixedRadices)
{
    MixedRadix mr({2, 3, 4});
    EXPECT_EQ(mr.size(), 24);
    const auto d = mr.toDigits(23);
    EXPECT_EQ(d[0], 1);
    EXPECT_EQ(d[1], 2);
    EXPECT_EQ(d[2], 3);
}

TEST(MixedRadixTest, RejectsBadRadix)
{
    EXPECT_THROW(MixedRadix({1, 4}), PanicError);
}

TEST(GhcTest, BinaryCubeCounts)
{
    const auto c = GeneralizedHypercube::binaryCube(6);
    EXPECT_EQ(c.numNodes(), 64);
    EXPECT_EQ(c.numLinks(), 64 * 6 / 2);
    for (NodeId n = 0; n < c.numNodes(); ++n)
        EXPECT_EQ(c.degree(n), 6);
    EXPECT_EQ(c.name(), "binary 6-cube");
}

TEST(GhcTest, Ghc444Counts)
{
    const GeneralizedHypercube g({4, 4, 4});
    EXPECT_EQ(g.numNodes(), 64);
    // Degree: 3 dims x (4-1) neighbours = 9.
    for (NodeId n = 0; n < g.numNodes(); ++n)
        EXPECT_EQ(g.degree(n), 9);
    EXPECT_EQ(g.numLinks(), 64 * 9 / 2);
    EXPECT_EQ(g.name(), "GHC(4,4,4)");
}

TEST(GhcTest, DistanceIsDifferingDigits)
{
    const GeneralizedHypercube g({4, 4, 4});
    // 0 = (0,0,0); 21 = (1,1,1): three digits differ.
    EXPECT_EQ(g.distance(0, 21), 3);
    EXPECT_EQ(g.distance(0, 1), 1);
    EXPECT_EQ(g.distance(0, 0), 0);
    // GHC: any digit change is ONE hop, even 0 -> 3.
    EXPECT_EQ(g.distance(0, 3), 1);
}

TEST(GhcTest, MinimalPathCountIsFactorialOfDistance)
{
    const auto c = GeneralizedHypercube::binaryCube(6);
    // Nodes differing in 4 bits: 4! = 24 minimal paths.
    const auto paths = c.minimalPaths(0, 0b1111);
    EXPECT_EQ(paths.size(), 24u);
    std::set<std::vector<NodeId>> uniq;
    for (const Path &p : paths) {
        EXPECT_TRUE(c.validPath(p));
        EXPECT_EQ(p.hops(), 4u);
        EXPECT_EQ(p.source(), 0);
        EXPECT_EQ(p.destination(), 0b1111);
        uniq.insert(p.nodes);
    }
    EXPECT_EQ(uniq.size(), paths.size()) << "paths must be distinct";
}

TEST(GhcTest, MinimalPathCapRespected)
{
    const auto c = GeneralizedHypercube::binaryCube(6);
    EXPECT_EQ(c.minimalPaths(0, 63, 10).size(), 10u);
}

TEST(GhcTest, LsdToMsdCorrectsLowDimensionFirst)
{
    const auto c = GeneralizedHypercube::binaryCube(4);
    const Path p = c.routeLsdToMsd(0b0000, 0b1010);
    ASSERT_EQ(p.nodes.size(), 3u);
    EXPECT_EQ(p.nodes[0], 0b0000);
    EXPECT_EQ(p.nodes[1], 0b0010); // bit 1 first (lowest differing)
    EXPECT_EQ(p.nodes[2], 0b1010);
    EXPECT_TRUE(c.validPath(p));
}

TEST(TorusTest, Counts8x8)
{
    const Torus t({8, 8});
    EXPECT_EQ(t.numNodes(), 64);
    EXPECT_EQ(t.numLinks(), 64 * 4 / 2);
    for (NodeId n = 0; n < t.numNodes(); ++n)
        EXPECT_EQ(t.degree(n), 4);
    EXPECT_EQ(t.name(), "8x8 torus");
}

TEST(TorusTest, Counts444)
{
    const Torus t({4, 4, 4});
    EXPECT_EQ(t.numNodes(), 64);
    EXPECT_EQ(t.numLinks(), 64 * 6 / 2);
    EXPECT_EQ(t.name(), "4x4x4 torus");
}

TEST(TorusTest, Radix2CollapsesToSingleLink)
{
    // In a 2-ary dimension, +1 and -1 reach the same neighbour; the
    // duplicate link must be coalesced.
    const Torus t({2, 2});
    EXPECT_EQ(t.numNodes(), 4);
    EXPECT_EQ(t.numLinks(), 4); // square, not multigraph
    for (NodeId n = 0; n < t.numNodes(); ++n)
        EXPECT_EQ(t.degree(n), 2);
}

TEST(TorusTest, WraparoundDistance)
{
    const Torus t({8, 8});
    // (0,0) to (7,0): one wraparound hop.
    EXPECT_EQ(t.distance(0, 7), 1);
    // (0,0) to (4,0): half the ring, 4 hops either way.
    EXPECT_EQ(t.distance(0, 4), 4);
    // (0,0) to (3,2): 3 + 2.
    EXPECT_EQ(t.distance(0, 3 + 2 * 8), 5);
}

TEST(TorusTest, MinimalPathCountMatchesMultinomial)
{
    const Torus t({8, 8});
    // Offsets (2, 3) with no ties: C(5,2) = 10 interleavings.
    const NodeId dst = 2 + 3 * 8;
    const auto paths = t.minimalPaths(0, dst);
    EXPECT_EQ(paths.size(), 10u);
    for (const Path &p : paths) {
        EXPECT_TRUE(t.validPath(p));
        EXPECT_EQ(p.hops(), 5u);
    }
}

TEST(TorusTest, TieDimensionDoublesDirections)
{
    const Torus t({8, 8});
    // Offset (4, 0): exactly half the ring; both directions minimal.
    const auto paths = t.minimalPaths(0, 4);
    EXPECT_EQ(paths.size(), 2u);
    for (const Path &p : paths)
        EXPECT_EQ(p.hops(), 4u);
}

TEST(TorusTest, LsdToMsdWalksRingStepwise)
{
    const Torus t({8, 8});
    const Path p = t.routeLsdToMsd(0, 3 + 8);
    // Dimension 0 first: 0 -> 1 -> 2 -> 3, then 3 -> 3+8.
    ASSERT_EQ(p.nodes.size(), 5u);
    EXPECT_EQ(p.nodes[1], 1);
    EXPECT_EQ(p.nodes[2], 2);
    EXPECT_EQ(p.nodes[3], 3);
    EXPECT_EQ(p.nodes[4], 3 + 8);
}

TEST(TorusTest, LsdToMsdUsesShortWrapDirection)
{
    const Torus t({8, 8});
    const Path p = t.routeLsdToMsd(0, 6);
    // 0 -> 7 -> 6 (2 hops backwards) beats 6 hops forwards.
    ASSERT_EQ(p.hops(), 2u);
    EXPECT_EQ(p.nodes[1], 7);
}

TEST(MeshTest, CountsAndEdges)
{
    const Mesh m({4, 4});
    EXPECT_EQ(m.numNodes(), 16);
    EXPECT_EQ(m.numLinks(), 2 * 4 * 3); // 24 in a 4x4 grid
    EXPECT_EQ(m.name(), "4x4 mesh");
    // Corner degree 2, edge degree 3, interior degree 4.
    EXPECT_EQ(m.degree(0), 2);
    EXPECT_EQ(m.degree(1), 3);
    EXPECT_EQ(m.degree(5), 4);
}

TEST(MeshTest, NoWraparound)
{
    const Mesh m({4, 4});
    EXPECT_EQ(m.distance(0, 3), 3); // no ring shortcut
    EXPECT_FALSE(m.adjacent(0, 3));
}

TEST(MeshTest, MinimalPathsManhattan)
{
    const Mesh m({4, 4});
    // (0,0) to (2,1): C(3,1) = 3 interleavings.
    const auto paths = m.minimalPaths(0, 2 + 4);
    EXPECT_EQ(paths.size(), 3u);
}

TEST(TopologyTest, LinkBetweenAndNeighbors)
{
    const auto c = GeneralizedHypercube::binaryCube(3);
    EXPECT_NE(c.linkBetween(0, 1), kInvalidLink);
    EXPECT_EQ(c.linkBetween(0, 3), kInvalidLink);
    const auto nbrs = c.neighborsOf(0);
    EXPECT_EQ(nbrs.size(), 3u);
    EXPECT_TRUE(std::find(nbrs.begin(), nbrs.end(), 4) != nbrs.end());
}

TEST(TopologyTest, MakePathRejectsNonAdjacent)
{
    const auto c = GeneralizedHypercube::binaryCube(3);
    EXPECT_THROW(c.makePath({0, 3}), PanicError);
    EXPECT_TRUE(c.validPath(c.makePath({0, 1, 3})));
}

TEST(TopologyTest, ValidPathRejectsBrokenLinkIds)
{
    const auto c = GeneralizedHypercube::binaryCube(3);
    Path p = c.makePath({0, 1});
    p.links[0] = 9999;
    EXPECT_FALSE(c.validPath(p));
    Path q = c.makePath({0, 1});
    q.nodes.push_back(5); // node list longer than links + 1
    EXPECT_FALSE(c.validPath(q));
}

/**
 * Property suite over all four evaluation fabrics: declared
 * distances agree with BFS, minimal paths are valid/minimal/
 * endpoint-correct, and the LSD-to-MSD route is itself minimal.
 */
class TopologyProperty
    : public ::testing::TestWithParam<const char *>
{
  protected:
    std::unique_ptr<Topology>
    make() const
    {
        const std::string which = GetParam();
        if (which == "cube6")
            return std::make_unique<GeneralizedHypercube>(
                GeneralizedHypercube::binaryCube(6));
        if (which == "ghc444")
            return std::make_unique<GeneralizedHypercube>(
                std::vector<int>{4, 4, 4});
        if (which == "torus88")
            return std::make_unique<Torus>(std::vector<int>{8, 8});
        if (which == "torus444")
            return std::make_unique<Torus>(
                std::vector<int>{4, 4, 4});
        if (which == "mesh44")
            return std::make_unique<Mesh>(std::vector<int>{4, 4});
        return nullptr;
    }
};

TEST_P(TopologyProperty, DistanceMatchesBfs)
{
    const auto topo = make();
    Rng rng(7);
    for (int trial = 0; trial < 60; ++trial) {
        const NodeId a = static_cast<NodeId>(
            rng.index(static_cast<std::size_t>(topo->numNodes())));
        const NodeId b = static_cast<NodeId>(
            rng.index(static_cast<std::size_t>(topo->numNodes())));
        EXPECT_EQ(topo->distance(a, b), topo->Topology::distance(a, b))
            << topo->name() << " " << a << "->" << b;
    }
}

TEST_P(TopologyProperty, MinimalPathsAreMinimalAndValid)
{
    const auto topo = make();
    Rng rng(13);
    for (int trial = 0; trial < 30; ++trial) {
        const NodeId a = static_cast<NodeId>(
            rng.index(static_cast<std::size_t>(topo->numNodes())));
        const NodeId b = static_cast<NodeId>(
            rng.index(static_cast<std::size_t>(topo->numNodes())));
        const int d = topo->distance(a, b);
        const auto paths = topo->minimalPaths(a, b, 64);
        ASSERT_FALSE(paths.empty());
        std::set<std::vector<NodeId>> uniq;
        for (const Path &p : paths) {
            EXPECT_TRUE(topo->validPath(p));
            EXPECT_EQ(static_cast<int>(p.hops()), d);
            EXPECT_EQ(p.source(), a);
            EXPECT_EQ(p.destination(), b);
            uniq.insert(p.nodes);
        }
        EXPECT_EQ(uniq.size(), paths.size());
    }
}

TEST_P(TopologyProperty, LsdToMsdRouteIsMinimal)
{
    const auto topo = make();
    Rng rng(29);
    for (int trial = 0; trial < 60; ++trial) {
        const NodeId a = static_cast<NodeId>(
            rng.index(static_cast<std::size_t>(topo->numNodes())));
        const NodeId b = static_cast<NodeId>(
            rng.index(static_cast<std::size_t>(topo->numNodes())));
        const Path p = topo->routeLsdToMsd(a, b);
        EXPECT_TRUE(topo->validPath(p));
        EXPECT_EQ(static_cast<int>(p.hops()), topo->distance(a, b));
    }
}

TEST_P(TopologyProperty, AdjacencyIsSymmetricAndIrreflexive)
{
    const auto topo = make();
    for (LinkId l = 0; l < topo->numLinks(); ++l) {
        const Link &lk = topo->link(l);
        EXPECT_NE(lk.a, lk.b);
        EXPECT_TRUE(topo->adjacent(lk.a, lk.b));
        EXPECT_TRUE(topo->adjacent(lk.b, lk.a));
        EXPECT_EQ(topo->linkBetween(lk.a, lk.b), l);
    }
}

INSTANTIATE_TEST_SUITE_P(Fabrics, TopologyProperty,
                         ::testing::Values("cube6", "ghc444",
                                           "torus88", "torus444",
                                           "mesh44"));

} // namespace
} // namespace srsim
