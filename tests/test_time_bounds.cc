/**
 * @file
 * Tests for message time bounds (Sec. 4) and the frame interval
 * decomposition / activity matrix (Sec. 5.1).
 */

#include <gtest/gtest.h>

#include "core/intervals.hh"
#include "core/time_bounds.hh"
#include "mapping/allocation.hh"
#include "tfg/dvb.hh"
#include "topology/generalized_hypercube.hh"

namespace srsim {
namespace {

/** A -> B -> C chain, 10 us tasks, 10 us messages, on a 3-cube. */
struct ChainFixture
{
    TaskFlowGraph g;
    GeneralizedHypercube cube = GeneralizedHypercube::binaryCube(3);
    TimingModel tm;
    TaskAllocation alloc{3, 8};

    ChainFixture()
    {
        const TaskId a = g.addTask("A", 100.0);
        const TaskId b = g.addTask("B", 100.0);
        const TaskId c = g.addTask("C", 100.0);
        g.addMessage("m1", a, b, 640.0);
        g.addMessage("m2", b, c, 640.0);
        tm.apSpeed = 10.0;
        tm.bandwidth = 64.0;
        alloc.assign(0, 0);
        alloc.assign(1, 1);
        alloc.assign(2, 3);
    }
};

TEST(TimeBoundsTest, ReleaseAndDeadlineWithoutWrap)
{
    ChainFixture f;
    // tau_c = 10; period 40. Window schedule: A [0,10]; B [20,30];
    // C [40,50]. m1 released at 10, deadline 20. m2 released at
    // 30, deadline 40.
    const TimeBounds tb =
        computeTimeBounds(f.g, f.alloc, f.tm, 40.0);
    ASSERT_EQ(tb.messages.size(), 2u);
    EXPECT_DOUBLE_EQ(tb.tauC, 10.0);
    const MessageBounds &m1 = tb.messages[0];
    EXPECT_DOUBLE_EQ(m1.release, 10.0);
    EXPECT_DOUBLE_EQ(m1.deadline, 20.0);
    EXPECT_DOUBLE_EQ(m1.duration, 10.0);
    ASSERT_EQ(m1.windows.size(), 1u);
    EXPECT_TRUE(m1.noSlack()); // duration == window length
    const MessageBounds &m2 = tb.messages[1];
    EXPECT_DOUBLE_EQ(m2.release, 30.0);
    EXPECT_DOUBLE_EQ(m2.deadline, 40.0);
}

TEST(TimeBoundsTest, WrappedWindowSplitsIntoTwo)
{
    ChainFixture f;
    // Period 35: m2 absolute release 30 -> window [30, 40] wraps:
    // [30, 35) and [0, 5).
    const TimeBounds tb =
        computeTimeBounds(f.g, f.alloc, f.tm, 35.0);
    const MessageBounds &m2 = tb.messages[1];
    EXPECT_DOUBLE_EQ(m2.release, 30.0);
    EXPECT_DOUBLE_EQ(m2.deadline, 5.0);
    ASSERT_EQ(m2.windows.size(), 2u);
    EXPECT_DOUBLE_EQ(m2.windows[0].start, 30.0);
    EXPECT_DOUBLE_EQ(m2.windows[0].end, 35.0);
    EXPECT_DOUBLE_EQ(m2.windows[1].start, 0.0);
    EXPECT_DOUBLE_EQ(m2.windows[1].end, 5.0);
    EXPECT_DOUBLE_EQ(m2.activeTime(), 10.0);
}

TEST(TimeBoundsTest, ReleaseFoldsModuloPeriod)
{
    ChainFixture f;
    // Period 25: m2 absolute release 30 folds to 5.
    const TimeBounds tb =
        computeTimeBounds(f.g, f.alloc, f.tm, 25.0);
    const MessageBounds &m2 = tb.messages[1];
    EXPECT_DOUBLE_EQ(m2.absoluteRelease, 30.0);
    EXPECT_DOUBLE_EQ(m2.release, 5.0);
    EXPECT_DOUBLE_EQ(m2.deadline, 15.0);
    ASSERT_EQ(m2.windows.size(), 1u);
}

TEST(TimeBoundsTest, CoLocatedMessagesExcluded)
{
    ChainFixture f;
    f.alloc.assign(1, 0); // B with A: m1 local
    const TimeBounds tb =
        computeTimeBounds(f.g, f.alloc, f.tm, 40.0);
    ASSERT_EQ(tb.messages.size(), 1u);
    EXPECT_EQ(tb.messages[0].msg, 1);
    EXPECT_EQ(tb.indexOf[0], -1);
    EXPECT_EQ(tb.indexOf[1], 0);
    EXPECT_EQ(tb.boundsFor(0), nullptr);
    EXPECT_NE(tb.boundsFor(1), nullptr);
}

TEST(TimeBoundsTest, PeriodBelowTauCIsFatal)
{
    ChainFixture f;
    EXPECT_THROW(computeTimeBounds(f.g, f.alloc, f.tm, 5.0),
                 FatalError);
}

TEST(TimeBoundsTest, MessageLongerThanTauCIsFatal)
{
    TaskFlowGraph g;
    const TaskId a = g.addTask("A", 10.0); // 1 us at speed 10
    const TaskId b = g.addTask("B", 10.0);
    g.addMessage("huge", a, b, 6400.0); // 100 us >> tau_c
    TimingModel tm;
    tm.apSpeed = 10.0;
    tm.bandwidth = 64.0;
    TaskAllocation alloc(2, 8);
    alloc.assign(0, 0);
    alloc.assign(1, 1);
    EXPECT_THROW(computeTimeBounds(g, alloc, tm, 200.0), FatalError);
}

TEST(TimeBoundsTest, ActiveAtRespectsWindows)
{
    ChainFixture f;
    const TimeBounds tb =
        computeTimeBounds(f.g, f.alloc, f.tm, 35.0);
    const MessageBounds &m2 = tb.messages[1]; // [30,35) + [0,5)
    EXPECT_TRUE(m2.activeAt(31.0));
    EXPECT_TRUE(m2.activeAt(2.0));
    EXPECT_FALSE(m2.activeAt(10.0));
    EXPECT_FALSE(m2.activeAt(29.0));
}

TEST(TimeBoundsTest, CriticalPathAndWindowLatencyExported)
{
    ChainFixture f;
    const TimeBounds tb =
        computeTimeBounds(f.g, f.alloc, f.tm, 40.0);
    // Eager: A[0,10], m1 +10, B[20,30], m2 +10, C[40,50].
    EXPECT_DOUBLE_EQ(tb.criticalPath, 50.0);
    EXPECT_DOUBLE_EQ(tb.windowLatency, 50.0); // tau_c == msg time
}

TEST(IntervalSetTest, EndpointsPartitionTheFrame)
{
    ChainFixture f;
    const TimeBounds tb =
        computeTimeBounds(f.g, f.alloc, f.tm, 40.0);
    const IntervalSet ivs(tb);
    // Endpoints {0, 10, 20, 30, 40}: four intervals.
    ASSERT_EQ(ivs.size(), 4u);
    Time total = 0.0;
    for (std::size_t k = 0; k < ivs.size(); ++k) {
        EXPECT_GT(ivs.interval(k).length(), 0.0);
        if (k > 0) {
            EXPECT_DOUBLE_EQ(ivs.interval(k).start,
                             ivs.interval(k - 1).end);
        }
        total += ivs.interval(k).length();
    }
    EXPECT_DOUBLE_EQ(total, 40.0);
}

TEST(IntervalSetTest, ActivityMatrixMatchesWindows)
{
    ChainFixture f;
    const TimeBounds tb =
        computeTimeBounds(f.g, f.alloc, f.tm, 40.0);
    const IntervalSet ivs(tb);
    // m1 active exactly in [10,20) = interval 1; m2 in [30,40) =
    // interval 3.
    EXPECT_FALSE(ivs.active(0, 0));
    EXPECT_TRUE(ivs.active(0, 1));
    EXPECT_FALSE(ivs.active(0, 2));
    EXPECT_FALSE(ivs.active(0, 3));
    EXPECT_TRUE(ivs.active(1, 3));
    EXPECT_EQ(ivs.activeIntervals(0), std::vector<std::size_t>{1});
    EXPECT_EQ(ivs.activeMessages(3), std::vector<std::size_t>{1});
}

TEST(IntervalSetTest, WrappedWindowActivity)
{
    ChainFixture f;
    const TimeBounds tb =
        computeTimeBounds(f.g, f.alloc, f.tm, 35.0);
    const IntervalSet ivs(tb);
    // m2 windows [30,35) and [0,5): active in first and last
    // intervals.
    const auto active = ivs.activeIntervals(1);
    ASSERT_EQ(active.size(), 2u);
    EXPECT_EQ(active.front(), 0u);
    EXPECT_EQ(active.back(), ivs.size() - 1);
}

TEST(IntervalSetTest, IntervalAtLookup)
{
    ChainFixture f;
    const TimeBounds tb =
        computeTimeBounds(f.g, f.alloc, f.tm, 40.0);
    const IntervalSet ivs(tb);
    EXPECT_EQ(ivs.intervalAt(0.0), 0u);
    EXPECT_EQ(ivs.intervalAt(15.0), 1u);
    EXPECT_EQ(ivs.intervalAt(39.9), 3u);
    EXPECT_EQ(ivs.intervalAt(40.0), 3u); // frame end
    EXPECT_THROW(ivs.intervalAt(41.0), PanicError);
}

TEST(IntervalSetTest, DvbFrameCoverageProperty)
{
    const TaskFlowGraph g = buildDvbTfg({});
    const auto cube = GeneralizedHypercube::binaryCube(6);
    DvbParams dp;
    TimingModel tm;
    tm.apSpeed = dp.matchedApSpeed();
    tm.bandwidth = 64.0;
    TaskAllocation alloc = alloc::roundRobin(g, cube, 13);
    for (double factor : {1.0, 1.7, 3.1, 5.0}) {
        const Time period = tm.tauC(g) * factor;
        const TimeBounds tb = computeTimeBounds(g, alloc, tm, period);
        const IntervalSet ivs(tb);
        Time total = 0.0;
        for (std::size_t k = 0; k < ivs.size(); ++k)
            total += ivs.interval(k).length();
        EXPECT_NEAR(total, period, 1e-6);
        // Every message is active exactly where its windows say.
        for (std::size_t i = 0; i < tb.messages.size(); ++i) {
            Time active_len = 0.0;
            for (std::size_t k : ivs.activeIntervals(i))
                active_len += ivs.interval(k).length();
            EXPECT_NEAR(active_len, tb.messages[i].activeTime(),
                        1e-6);
        }
    }
}

} // namespace
} // namespace srsim
