/**
 * @file
 * Unit tests for the util substrate: time comparisons, windows,
 * union-find, matrix, RNG, table printing, logging.
 */

#include <sstream>

#include <gtest/gtest.h>

#include "util/logging.hh"
#include "util/matrix.hh"
#include "util/rng.hh"
#include "util/table.hh"
#include "util/time.hh"
#include "util/union_find.hh"

namespace srsim {
namespace {

TEST(TimeTest, EqualityWithinEps)
{
    EXPECT_TRUE(timeEq(1.0, 1.0 + kTimeEps / 2));
    EXPECT_FALSE(timeEq(1.0, 1.0 + 10 * kTimeEps));
}

TEST(TimeTest, OrderingRespectsEps)
{
    EXPECT_TRUE(timeLe(1.0, 1.0));
    EXPECT_TRUE(timeLe(1.0 + kTimeEps / 2, 1.0));
    EXPECT_FALSE(timeLt(1.0, 1.0));
    EXPECT_TRUE(timeLt(1.0, 1.1));
    EXPECT_TRUE(timeGe(1.0, 1.0));
    EXPECT_TRUE(timeGt(1.1, 1.0));
}

TEST(TimeTest, ClampStaysInRange)
{
    EXPECT_DOUBLE_EQ(timeClamp(5.0, 0.0, 3.0), 3.0);
    EXPECT_DOUBLE_EQ(timeClamp(-1.0, 0.0, 3.0), 0.0);
    EXPECT_DOUBLE_EQ(timeClamp(2.0, 0.0, 3.0), 2.0);
}

TEST(TimeWindowTest, LengthAndEmptiness)
{
    TimeWindow w{2.0, 5.0};
    EXPECT_DOUBLE_EQ(w.length(), 3.0);
    EXPECT_FALSE(w.empty());
    TimeWindow e{5.0, 5.0};
    EXPECT_TRUE(e.empty());
    EXPECT_DOUBLE_EQ(e.length(), 0.0);
}

TEST(TimeWindowTest, ContainsIsHalfOpen)
{
    TimeWindow w{2.0, 5.0};
    EXPECT_TRUE(w.contains(2.0));
    EXPECT_TRUE(w.contains(4.999));
    EXPECT_FALSE(w.contains(5.0));
    EXPECT_FALSE(w.contains(1.999));
}

TEST(TimeWindowTest, CoversSubranges)
{
    TimeWindow w{2.0, 5.0};
    EXPECT_TRUE(w.covers(2.0, 5.0));
    EXPECT_TRUE(w.covers(3.0, 4.0));
    EXPECT_FALSE(w.covers(1.0, 3.0));
    EXPECT_FALSE(w.covers(4.0, 6.0));
}

TEST(TimeWindowTest, OverlapDetection)
{
    TimeWindow a{0.0, 2.0};
    TimeWindow b{2.0, 4.0};
    TimeWindow c{1.0, 3.0};
    EXPECT_FALSE(a.overlaps(b)); // half-open abutment
    EXPECT_TRUE(a.overlaps(c));
    EXPECT_TRUE(c.overlaps(b));
}

TEST(LoggingTest, FatalThrowsFatalError)
{
    EXPECT_THROW(fatal("bad config ", 42), FatalError);
}

TEST(LoggingTest, PanicThrowsPanicError)
{
    EXPECT_THROW(panic("bug ", 7), PanicError);
}

TEST(LoggingTest, AssertMacroFiresOnFalse)
{
    EXPECT_THROW(SRSIM_ASSERT(1 == 2, "oops"), PanicError);
    EXPECT_NO_THROW(SRSIM_ASSERT(1 == 1, "fine"));
}

TEST(UnionFindTest, InitiallyDisjoint)
{
    UnionFind uf(4);
    EXPECT_EQ(uf.numSets(), 4u);
    EXPECT_FALSE(uf.same(0, 1));
}

TEST(UnionFindTest, UniteAndFind)
{
    UnionFind uf(5);
    EXPECT_TRUE(uf.unite(0, 1));
    EXPECT_TRUE(uf.unite(1, 2));
    EXPECT_FALSE(uf.unite(0, 2)); // already together
    EXPECT_TRUE(uf.same(0, 2));
    EXPECT_FALSE(uf.same(0, 3));
    EXPECT_EQ(uf.numSets(), 3u);
}

TEST(UnionFindTest, GroupsPartitionElements)
{
    UnionFind uf(6);
    uf.unite(0, 2);
    uf.unite(2, 4);
    uf.unite(1, 5);
    auto groups = uf.groups();
    EXPECT_EQ(groups.size(), 3u);
    std::size_t total = 0;
    for (const auto &g : groups)
        total += g.size();
    EXPECT_EQ(total, 6u);
}

TEST(MatrixTest, FillAndSums)
{
    Matrix<double> m(2, 3, 1.0);
    EXPECT_DOUBLE_EQ(m.rowSum(0), 3.0);
    EXPECT_DOUBLE_EQ(m.colSum(2), 2.0);
    m.at(1, 2) = 5.0;
    EXPECT_DOUBLE_EQ(m.colSum(2), 6.0);
    m.fill(0.0);
    EXPECT_DOUBLE_EQ(m.rowSum(1), 0.0);
}

TEST(MatrixTest, OutOfRangePanics)
{
    Matrix<int> m(2, 2);
    EXPECT_THROW(m.at(2, 0), PanicError);
    EXPECT_THROW(m.at(0, 2), PanicError);
}

TEST(RngTest, Deterministic)
{
    Rng a(42), b(42);
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(a.uniformInt(0, 1000), b.uniformInt(0, 1000));
}

TEST(RngTest, RangesRespected)
{
    Rng rng(7);
    for (int i = 0; i < 200; ++i) {
        const int v = rng.uniformInt(3, 9);
        EXPECT_GE(v, 3);
        EXPECT_LE(v, 9);
        const double r = rng.uniformReal(0.5, 2.5);
        EXPECT_GE(r, 0.5);
        EXPECT_LT(r, 2.5);
        const std::size_t idx = rng.index(5);
        EXPECT_LT(idx, 5u);
    }
}

TEST(TableTest, AlignedAndCsvOutput)
{
    Table t({"a", "bb"});
    t.addRow({"1", "2"});
    t.addRow({"333", "4"});
    std::ostringstream human, csv;
    t.print(human);
    t.printCsv(csv);
    EXPECT_NE(human.str().find("333"), std::string::npos);
    EXPECT_EQ(csv.str(), "a,bb\n1,2\n333,4\n");
    EXPECT_EQ(t.numRows(), 2u);
    EXPECT_EQ(t.numCols(), 2u);
}

TEST(TableTest, RowArityChecked)
{
    Table t({"a", "b"});
    EXPECT_THROW(t.addRow({"only-one"}), PanicError);
}

} // namespace
} // namespace srsim
