/**
 * @file
 * Tests for the TFG file format and the topology factory.
 */

#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "core/schedule_io.hh"
#include "core/sr_compiler.hh"
#include "core/verifier.hh"
#include "mapping/allocation.hh"
#include "tfg/dvb.hh"
#include "tfg/tfg_io.hh"
#include "topology/factory.hh"
#include "topology/generalized_hypercube.hh"

namespace srsim {
namespace {

TEST(TfgIoTest, RoundTripPreservesGraph)
{
    const TaskFlowGraph g = buildDvbTfg({});
    std::stringstream ss;
    writeTfg(ss, g);
    const TaskFlowGraph back = readTfg(ss);

    ASSERT_EQ(back.numTasks(), g.numTasks());
    ASSERT_EQ(back.numMessages(), g.numMessages());
    for (TaskId t = 0; t < g.numTasks(); ++t) {
        EXPECT_EQ(back.task(t).name, g.task(t).name);
        EXPECT_DOUBLE_EQ(back.task(t).operations,
                         g.task(t).operations);
    }
    for (MessageId m = 0; m < g.numMessages(); ++m) {
        EXPECT_EQ(back.message(m).name, g.message(m).name);
        EXPECT_EQ(back.message(m).src, g.message(m).src);
        EXPECT_EQ(back.message(m).dst, g.message(m).dst);
        EXPECT_DOUBLE_EQ(back.message(m).bytes,
                         g.message(m).bytes);
    }
}

TEST(TfgIoTest, CommentsAndBlankLinesIgnored)
{
    std::stringstream ss;
    ss << "srsim-tfg v1\n"
       << "# a comment\n"
       << "\n"
       << "task a 100\n"
       << "task b 200\n"
       << "message m a b 64\n"
       << "end\n";
    const TaskFlowGraph g = readTfg(ss);
    EXPECT_EQ(g.numTasks(), 2);
    EXPECT_EQ(g.numMessages(), 1);
}

TEST(TfgIoTest, RejectsBadInputs)
{
    auto parse = [](const std::string &body) {
        std::stringstream ss;
        ss << body;
        return readTfg(ss);
    };
    EXPECT_THROW(parse("bogus\n"), FatalError);
    EXPECT_THROW(parse("srsim-tfg v1\ntask a 1\n"), FatalError);
    EXPECT_THROW(parse("srsim-tfg v1\ntask a 1\ntask a 2\nend\n"),
                 FatalError);
    EXPECT_THROW(
        parse("srsim-tfg v1\ntask a 1\nmessage m a zz 5\nend\n"),
        FatalError);
    EXPECT_THROW(parse("srsim-tfg v1\nfrobnicate\nend\n"),
                 FatalError);
    EXPECT_THROW(parse("srsim-tfg v1\nend\n"), FatalError);
    // Cycle.
    EXPECT_THROW(
        parse("srsim-tfg v1\ntask a 1\ntask b 1\n"
              "message m1 a b 5\nmessage m2 b a 5\nend\n"),
        FatalError);
}

/**
 * Golden round-trip: a compiled Omega serialized with schedule_io,
 * re-parsed, must (a) re-serialize byte-identically, (b) satisfy the
 * independent verifier, and (c) equal the original segment for
 * segment. Guards the on-disk format against drift now that
 * schedules are produced on worker threads.
 */
TEST(ScheduleIoTest, GoldenRoundTripVerifiesAndMatches)
{
    const TaskFlowGraph g = buildDvbTfg({});
    const auto cube = GeneralizedHypercube::binaryCube(6);
    DvbParams dp;
    TimingModel tm;
    tm.apSpeed = dp.matchedApSpeed();
    tm.bandwidth = 128.0;
    const TaskAllocation alloc = alloc::roundRobin(g, cube, 13);
    SrCompilerConfig cfg;
    cfg.inputPeriod = 2.0 * tm.tauC(g);
    const SrCompileResult r =
        compileScheduledRouting(g, cube, alloc, tm, cfg);
    ASSERT_TRUE(r.feasible) << r.detail;

    std::stringstream first;
    writeSchedule(first, r.omega);
    const std::string golden = first.str();

    const GlobalSchedule back = readSchedule(first, cube);

    // (a) format stability: write(read(write(x))) == write(x).
    std::stringstream second;
    writeSchedule(second, back);
    EXPECT_EQ(second.str(), golden);

    // (b) the re-parsed schedule is still a valid Omega.
    const VerifyResult v =
        verifySchedule(g, cube, alloc, r.bounds, back);
    EXPECT_TRUE(v.ok) << (v.violations.empty()
                              ? "?"
                              : v.violations.front());

    // (c) structural equality with the original.
    EXPECT_DOUBLE_EQ(back.period, r.omega.period);
    ASSERT_EQ(back.segments.size(), r.omega.segments.size());
    ASSERT_EQ(back.paths.paths.size(), r.omega.paths.paths.size());
    for (std::size_t i = 0; i < back.segments.size(); ++i) {
        EXPECT_EQ(back.paths.paths[i], r.omega.paths.paths[i])
            << "message " << i;
        ASSERT_EQ(back.segments[i].size(),
                  r.omega.segments[i].size())
            << "message " << i;
        for (std::size_t w = 0; w < back.segments[i].size(); ++w) {
            EXPECT_NEAR(back.segments[i][w].start,
                        r.omega.segments[i][w].start, 1e-9);
            EXPECT_NEAR(back.segments[i][w].end,
                        r.omega.segments[i][w].end, 1e-9);
        }
    }
}

/**
 * Malformed-input corpus: tryReadSchedule must be total on arbitrary
 * bytes — every corrupt file under tests/corpus/io/ comes back as a
 * structured error naming the defect, never an assert, abort, or
 * uncaught exception. A long-lived service preloading schedules from
 * disk (`srsimc serve --preload`) depends on exactly this contract.
 */
TEST(ScheduleIoTest, MalformedCorpusReturnsStructuredErrors)
{
    const auto topo = makeTopology("torus:4,4,4");
    struct BadCase
    {
        const char *file;
        const char *errorNeedle;
    };
    const BadCase cases[] = {
        {"empty.sched", "truncated while reading magic"},
        {"bad-magic.sched", "not an srsim-schedule"},
        {"truncated-header.sched", "truncated while reading"},
        {"bad-period.sched", "bad period line"},
        {"count-bomb.sched", "implausible message count"},
        {"negative-count.sched", "bad messages line"},
        {"bad-path-node.sched", "outside the 64-node fabric"},
        {"nonadjacent-path.sched", "not adjacent"},
        {"truncated-segments.sched",
         "truncated while reading segment"},
        {"inverted-segment.sched", "bad segment"},
        {"missing-end.sched", "missing end marker"},
        {"v2-bad-degraded.sched", "bad degraded-from line"},
        {"v2-unknown-header.sched", "unknown schedule header"},
        {"v1-faults-line.sched", "bad messages line"},
    };
    for (const BadCase &c : cases) {
        const std::string path =
            std::string(SRSIM_IO_CORPUS_DIR) + "/" + c.file;
        std::ifstream in(path);
        ASSERT_TRUE(in.is_open()) << "missing corpus file " << path;
        const ScheduleReadResult r = tryReadSchedule(in, *topo);
        EXPECT_FALSE(r.ok) << c.file;
        EXPECT_NE(r.error.find(c.errorNeedle), std::string::npos)
            << c.file << ": got error '" << r.error << "'";
        // A failed parse leaves no partial schedule behind.
        EXPECT_TRUE(r.omega.segments.empty()) << c.file;
    }
}

/** The valid corpus files parse, including v2 provenance. */
TEST(ScheduleIoTest, ValidCorpusParses)
{
    const auto topo = makeTopology("torus:4,4,4");
    {
        std::ifstream in(std::string(SRSIM_IO_CORPUS_DIR) +
                         "/valid-v1.sched");
        ASSERT_TRUE(in.is_open());
        const ScheduleReadResult r = tryReadSchedule(in, *topo);
        ASSERT_TRUE(r.ok) << r.error;
        EXPECT_EQ(r.omega.segments.size(), 1u);
        EXPECT_TRUE(r.omega.faultSpec.empty());
    }
    {
        std::ifstream in(std::string(SRSIM_IO_CORPUS_DIR) +
                         "/valid-v2.sched");
        ASSERT_TRUE(in.is_open());
        const ScheduleReadResult r = tryReadSchedule(in, *topo);
        ASSERT_TRUE(r.ok) << r.error;
        EXPECT_EQ(r.omega.faultSpec, "link:0-1");
        EXPECT_DOUBLE_EQ(r.omega.degradedFrom, 120.0);
    }
}

/** The throwing wrapper surfaces the same structured message. */
TEST(ScheduleIoTest, ReadScheduleFatalsOnCorruptInput)
{
    const auto topo = makeTopology("torus:4,4,4");
    std::istringstream in("srsim-schedule v1\nperiod 0\n");
    EXPECT_THROW(readSchedule(in, *topo), FatalError);
}

TEST(TopologyFactoryTest, BuildsAllKinds)
{
    EXPECT_EQ(makeTopology("cube:6")->name(), "binary 6-cube");
    EXPECT_EQ(makeTopology("ghc:4,4,4")->name(), "GHC(4,4,4)");
    EXPECT_EQ(makeTopology("torus:8,8")->name(), "8x8 torus");
    EXPECT_EQ(makeTopology("mesh:4,4")->name(), "4x4 mesh");
    EXPECT_EQ(makeTopology("torus:8,8")->numNodes(), 64);
}

TEST(TopologyFactoryTest, SpecOrderIsMsdFirst)
{
    // "ghc:2,4" = GHC(2,4): 2 is the most significant dimension.
    const auto t = makeTopology("ghc:2,4");
    EXPECT_EQ(t->name(), "GHC(2,4)");
    EXPECT_EQ(t->numNodes(), 8);
}

TEST(TopologyFactoryTest, RejectsBadSpecs)
{
    EXPECT_THROW(makeTopology("cube6"), FatalError);
    EXPECT_THROW(makeTopology("blimp:3,3"), FatalError);
    EXPECT_THROW(makeTopology("torus:"), FatalError);
    EXPECT_THROW(makeTopology("torus:8,x"), FatalError);
    EXPECT_THROW(makeTopology("torus:8,1"), FatalError);
    EXPECT_THROW(makeTopology("cube:0"), FatalError);
}

} // namespace
} // namespace srsim
