/**
 * @file
 * Tests for the structured event tracer: the disabled path records
 * nothing and changes nothing, and the Chrome trace-event export of
 * a real DVB run is structurally valid — parseable JSON, per-link
 * tracks with metadata, per-track monotonic timestamps, balanced
 * B/E nesting, and (the paper's core guarantee) no overlapping
 * occupancy windows on any half-duplex link under a verified SR
 * schedule.
 */

#include <algorithm>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/schedule_io.hh"
#include "core/sr_compiler.hh"
#include "cpsim/cp_simulator.hh"
#include "json_mini.hh"
#include "mapping/allocation.hh"
#include "metrics/metrics.hh"
#include "tfg/dvb.hh"
#include "tfg/timing.hh"
#include "topology/generalized_hypercube.hh"
#include "trace/trace.hh"
#include "wormhole/wormhole.hh"

namespace srsim {
namespace {

/** DVB on the binary 6-cube, the paper's primary configuration. */
struct DvbSetup
{
    TaskFlowGraph g = buildDvbTfg({});
    GeneralizedHypercube cube = GeneralizedHypercube::binaryCube(6);
    TimingModel tm;
    TaskAllocation alloc{1, 1};

    DvbSetup() : alloc(alloc::roundRobin(g, cube, 13))
    {
        DvbParams dp;
        tm.apSpeed = dp.matchedApSpeed();
        tm.bandwidth = 128.0;
    }
};

/** Clears global tracer/metrics state around every test. */
class TraceTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        trace::Tracer::setEnabled(false);
        trace::Tracer::instance().clear();
        metrics::Registry::setEnabled(false);
        metrics::Registry::global().clear();
    }

    void
    TearDown() override
    {
        trace::Tracer::setEnabled(false);
        trace::Tracer::instance().clear();
        metrics::Registry::setEnabled(false);
        metrics::Registry::global().clear();
    }
};

TEST_F(TraceTest, DisabledPathRecordsNothing)
{
    ASSERT_FALSE(SRSIM_TRACE_ENABLED());
    // The guard every instrumentation site uses: with tracing off
    // the statement must not run, so nothing is recorded.
    SRSIM_TRACE_IF(trace::linkAcquire(trace::Tracer::instance(), 0,
                                      "m", 0, 0, 1.0));
    SRSIM_TRACE_IF(
        trace::violation(trace::Tracer::instance(), "nope", 2.0));
    EXPECT_EQ(trace::Tracer::instance().size(), 0u);

    // A full instrumented run with tracing off records nothing.
    DvbSetup s;
    SrCompilerConfig cfg;
    cfg.inputPeriod = 2.0 * s.tm.tauC(s.g);
    const SrCompileResult sr = compileScheduledRouting(
        s.g, s.cube, s.alloc, s.tm, cfg);
    ASSERT_TRUE(sr.feasible);
    simulateCps(s.g, s.cube, s.alloc, s.tm, sr.bounds, sr.omega);
    EXPECT_EQ(trace::Tracer::instance().size(), 0u);
}

TEST_F(TraceTest, TracingDoesNotChangeCompileResults)
{
    DvbSetup s;
    SrCompilerConfig cfg;
    cfg.inputPeriod = 2.0 * s.tm.tauC(s.g);

    const SrCompileResult off = compileScheduledRouting(
        s.g, s.cube, s.alloc, s.tm, cfg);
    ASSERT_TRUE(off.feasible);

    trace::Tracer::setEnabled(true);
    metrics::Registry::setEnabled(true);
    const SrCompileResult on = compileScheduledRouting(
        s.g, s.cube, s.alloc, s.tm, cfg);
    trace::Tracer::setEnabled(false);
    metrics::Registry::setEnabled(false);
    ASSERT_TRUE(on.feasible);

    std::ostringstream a, b;
    writeSchedule(a, off.omega);
    writeSchedule(b, on.omega);
    EXPECT_EQ(a.str(), b.str());
}

/** Trace one full SR pipeline (compile + CP-level simulation). */
std::string
traceDvbSrRun()
{
    DvbSetup s;
    trace::Tracer::instance().clear();
    trace::Tracer::setEnabled(true);
    SrCompilerConfig cfg;
    cfg.inputPeriod = 2.0 * s.tm.tauC(s.g);
    const SrCompileResult sr = compileScheduledRouting(
        s.g, s.cube, s.alloc, s.tm, cfg);
    EXPECT_TRUE(sr.feasible);
    const CpSimResult r = simulateCps(s.g, s.cube, s.alloc, s.tm,
                                      sr.bounds, sr.omega);
    EXPECT_TRUE(r.ok());
    trace::Tracer::setEnabled(false);
    std::ostringstream oss;
    trace::Tracer::instance().exportChrome(oss);
    return oss.str();
}

TEST_F(TraceTest, ChromeExportOfSrRunIsStructurallyValid)
{
    const std::string text = traceDvbSrRun();
    const jsonmini::ValuePtr doc = jsonmini::parse(text);

    ASSERT_EQ(doc->kind, jsonmini::Value::Kind::Object);
    ASSERT_TRUE(doc->has("traceEvents"));
    const auto &events = doc->at("traceEvents");
    ASSERT_EQ(events.kind, jsonmini::Value::Kind::Array);
    ASSERT_GT(events.array.size(), 100u);

    // Track bookkeeping: pid -> process name, (pid,tid) -> events.
    std::map<int, std::string> procs;
    std::map<std::pair<int, int>, std::vector<const jsonmini::Value *>>
        tracks;
    for (const auto &ev : events.array) {
        ASSERT_EQ(ev->kind, jsonmini::Value::Kind::Object);
        ASSERT_TRUE(ev->has("ph"));
        ASSERT_TRUE(ev->has("pid"));
        ASSERT_TRUE(ev->has("name"));
        const std::string ph = ev->at("ph").string;
        const int pid = static_cast<int>(ev->at("pid").number);
        if (ph == "M") {
            if (ev->at("name").string == "process_name")
                procs[pid] = ev->at("args").at("name").string;
            continue;
        }
        ASSERT_TRUE(ev->has("ts"));
        ASSERT_TRUE(ev->has("tid"));
        tracks[{pid, static_cast<int>(ev->at("tid").number)}]
            .push_back(ev.get());
    }

    // The run must produce link, CP, AP, message, sim, and
    // compiler tracks, each named by metadata.
    std::map<std::string, int> pidOf;
    for (const auto &[pid, name] : procs)
        pidOf[name] = pid;
    for (const char *kind :
         {"links", "cps", "aps", "messages", "sim", "compiler"})
        EXPECT_TRUE(pidOf.count(kind)) << "missing track " << kind;

    int linkTracks = 0;
    for (const auto &[key, evs] : tracks) {
        if (key.first == pidOf["links"])
            ++linkTracks;

        // Timestamps non-decreasing along every track.
        double prev = -1.0;
        for (const jsonmini::Value *e : evs) {
            const double ts = e->at("ts").number;
            EXPECT_GE(ts, prev) << "ts regression on pid "
                                << key.first << " tid "
                                << key.second;
            prev = ts;
        }

        // B/E events balance and never close an unopened span.
        int depth = 0;
        for (const jsonmini::Value *e : evs) {
            const std::string ph = e->at("ph").string;
            if (ph == "B")
                ++depth;
            else if (ph == "E")
                --depth;
            ASSERT_GE(depth, 0) << "unbalanced E on pid "
                                << key.first << " tid "
                                << key.second;
        }
        EXPECT_EQ(depth, 0) << "unclosed B on pid " << key.first
                            << " tid " << key.second;
    }
    EXPECT_GT(linkTracks, 1) << "expected per-link tracks";

    // The SR guarantee: on every half-duplex link the scheduled
    // occupancy windows (X events) never overlap.
    for (const auto &[key, evs] : tracks) {
        if (key.first != pidOf["links"])
            continue;
        std::vector<std::pair<double, double>> windows;
        for (const jsonmini::Value *e : evs)
            if (e->at("ph").string == "X")
                windows.emplace_back(e->at("ts").number,
                                     e->at("ts").number +
                                         e->at("dur").number);
        std::sort(windows.begin(), windows.end());
        for (std::size_t i = 1; i < windows.size(); ++i) {
            EXPECT_LE(windows[i - 1].second,
                      windows[i].first + 1e-6)
                << "overlapping occupancy on link " << key.second;
        }
    }
}

TEST_F(TraceTest, WormholeTraceBalancesAcquireRelease)
{
    DvbSetup s;
    trace::Tracer::setEnabled(true);
    WormholeConfig cfg;
    cfg.inputPeriod = 2.0 * s.tm.tauC(s.g);
    cfg.invocations = 10;
    cfg.warmup = 2;
    WormholeSimulator sim(s.g, s.cube, s.alloc, s.tm);
    const WormholeResult r = sim.run(cfg);
    trace::Tracer::setEnabled(false);
    ASSERT_FALSE(r.deadlocked);

    // Per link: acquires and releases alternate — a half-duplex
    // link has at most one holder at any time.
    std::map<std::int32_t, int> depth;
    for (const trace::Event &e : trace::Tracer::instance().collect()) {
        if (e.track != trace::TrackKind::Link)
            continue;
        if (e.type == trace::EventType::Begin) {
            EXPECT_EQ(++depth[e.trackId], 1)
                << "double acquire on link " << e.trackId;
        } else if (e.type == trace::EventType::End) {
            EXPECT_EQ(--depth[e.trackId], 0)
                << "release without holder on link " << e.trackId;
        }
    }
    for (const auto &[link, d] : depth)
        EXPECT_EQ(d, 0) << "link " << link << " never released";
}

TEST_F(TraceTest, CsvExportHasHeaderAndOneRowPerEvent)
{
    DvbSetup s;
    trace::Tracer::setEnabled(true);
    WormholeConfig cfg;
    cfg.inputPeriod = 2.0 * s.tm.tauC(s.g);
    cfg.invocations = 3;
    cfg.warmup = 1;
    WormholeSimulator sim(s.g, s.cube, s.alloc, s.tm);
    sim.run(cfg);
    trace::Tracer::setEnabled(false);

    const std::size_t n = trace::Tracer::instance().size();
    ASSERT_GT(n, 0u);
    std::ostringstream oss;
    trace::Tracer::instance().exportCsv(oss);
    std::istringstream in(oss.str());
    std::string line;
    ASSERT_TRUE(std::getline(in, line));
    EXPECT_EQ(line,
              "ts,dur,type,track,track_id,category,name,msg,"
              "invocation,detail");
    std::size_t rows = 0;
    const std::size_t fields =
        static_cast<std::size_t>(
            std::count(line.begin(), line.end(), ',')) + 1;
    while (std::getline(in, line)) {
        ++rows;
        EXPECT_GE(static_cast<std::size_t>(std::count(
                      line.begin(), line.end(), ',')) + 1,
                  fields);
    }
    EXPECT_EQ(rows, n);
}

TEST_F(TraceTest, ScopedPhaseEmitsMatchedPairAndHistogram)
{
    trace::Tracer::setEnabled(true);
    metrics::Registry::setEnabled(true);
    {
        trace::ScopedPhase phase("unit_test_phase",
                                 trace::Tracer::instance(),
                                 metrics::Registry::global());
    }
    trace::Tracer::setEnabled(false);
    metrics::Registry::setEnabled(false);

    const auto events = trace::Tracer::instance().collect();
    ASSERT_EQ(events.size(), 2u);
    EXPECT_EQ(events[0].type, trace::EventType::Begin);
    EXPECT_EQ(events[1].type, trace::EventType::End);
    EXPECT_EQ(events[0].name, "unit_test_phase");
    EXPECT_EQ(events[0].track, trace::TrackKind::Compiler);
    EXPECT_GE(events[1].ts, events[0].ts);

    auto &h = metrics::Registry::global().histogram(
        "sr.phase_ms.unit_test_phase",
        metrics::Histogram::timeBucketsMs());
    EXPECT_EQ(h.count(), 1u);
}

} // namespace
} // namespace srsim
