/**
 * @file
 * Fault injection & degraded-mode rescheduling suite (label: fault).
 *
 * Covers the whole fault pipeline: spec grammar, topology masking,
 * derated capacity, the incremental per-subset repair (the ISSUE's
 * acceptance case: DVB on a 4x4x4 torus with 1 and 2 failed links),
 * the shedding full recompile after a node death, mid-run fault
 * injection + degraded-schedule swap in the CP simulator, the
 * verifier's structured rejection of schedules routed over dead
 * resources, and v1/v2 schedule-file round trips.
 */

#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/schedule_io.hh"
#include "core/sr_compiler.hh"
#include "core/verifier.hh"
#include "cpsim/cp_simulator.hh"
#include "fault/fault.hh"
#include "fault/repair.hh"
#include "mapping/allocation.hh"
#include "metrics/metrics.hh"
#include "tfg/dvb.hh"
#include "tfg/timing.hh"
#include "topology/factory.hh"
#include "topology/torus.hh"
#include "util/logging.hh"

namespace srsim {
namespace {

// ----- the acceptance fixture: DVB on the 4x4x4 torus -------------

struct Dvb444
{
    TaskFlowGraph g;
    std::unique_ptr<Topology> topo;
    TimingModel tm;
    TaskAllocation alloc;
    SrCompilerConfig cfg;
    SrCompileResult healthy;

    Dvb444()
        : g(buildDvbTfg({})), topo(makeTopology("torus:4,4,4")),
          alloc(alloc::roundRobin(g, *topo, 13))
    {
        tm.apSpeed = DvbParams{}.matchedApSpeed();
        tm.bandwidth = 128.0;
        cfg.inputPeriod = 2.4 * tm.tauC(g);
        healthy = compileScheduledRouting(g, *topo, alloc, tm, cfg);
    }

    /** A link id the healthy schedule actually routes over. */
    LinkId
    usedLink(std::size_t nth = 0) const
    {
        std::size_t seen = 0;
        for (const Path &p : healthy.paths.paths)
            for (LinkId l : p.links)
                if (seen++ == nth)
                    return l;
        return kInvalidLink;
    }

    fault::RepairResult
    repair(const std::string &spec)
    {
        fault::applyFaultSpec(spec, *topo);
        fault::RepairOptions opts;
        opts.faultSpec = spec;
        return fault::repairSchedule(g, *topo, alloc, tm, cfg,
                                     healthy, opts);
    }
};

// ----- spec grammar ------------------------------------------------

TEST(FaultSpec, ParsesEveryEventKind)
{
    const fault::FaultSpec fs = fault::parseFaultSpec(
        "link:3-7;link:#12,node:2@150;derate:#5=0.5;rand:3:9");
    ASSERT_EQ(fs.events.size(), 5u);
    EXPECT_EQ(fs.events[0].kind, fault::FaultEvent::Kind::LinkFail);
    EXPECT_EQ(fs.events[0].a, 3);
    EXPECT_EQ(fs.events[0].b, 7);
    EXPECT_EQ(fs.events[1].link, 12);
    EXPECT_EQ(fs.events[2].kind, fault::FaultEvent::Kind::NodeFail);
    EXPECT_EQ(fs.events[2].node, 2);
    EXPECT_TRUE(fs.events[2].timed());
    EXPECT_DOUBLE_EQ(fs.events[2].at, 150.0);
    EXPECT_EQ(fs.events[3].kind,
              fault::FaultEvent::Kind::LinkDerate);
    EXPECT_DOUBLE_EQ(fs.events[3].factor, 0.5);
    EXPECT_EQ(fs.events[4].kind,
              fault::FaultEvent::Kind::RandLinks);
    EXPECT_EQ(fs.events[4].count, 3);
    EXPECT_EQ(fs.events[4].seed, 9u);
    EXPECT_EQ(fs.str(),
              "link:3-7;link:#12,node:2@150;derate:#5=0.5;"
              "rand:3:9");
}

TEST(FaultSpec, RejectsMalformedSpecs)
{
    EXPECT_THROW(fault::parseFaultSpec("link:"), FatalError);
    EXPECT_THROW(fault::parseFaultSpec("link:3"), FatalError);
    EXPECT_THROW(fault::parseFaultSpec("derate:#5=0"), FatalError);
    EXPECT_THROW(fault::parseFaultSpec("derate:#5=1.5"),
                 FatalError);
    EXPECT_THROW(fault::parseFaultSpec("rand:0:4"), FatalError);
    EXPECT_THROW(fault::parseFaultSpec("gremlin:2"), FatalError);
    EXPECT_THROW(fault::parseFaultSpec("link:#4@-3"), FatalError);
}

TEST(FaultSpec, ResolutionBindsAndValidates)
{
    const auto topo = makeTopology("torus:4,4");
    // Non-adjacent endpoint pair and out-of-range ids must fail
    // loudly at resolution, not corrupt the mask.
    EXPECT_THROW(fault::applyFaultSpec("link:0-5", *topo),
                 FatalError);
    EXPECT_THROW(fault::applyFaultSpec("link:#9999", *topo),
                 FatalError);
    EXPECT_THROW(fault::applyFaultSpec("node:400", *topo),
                 FatalError);
    EXPECT_FALSE(topo->degraded());

    // rand draws are deterministic in the seed and count distinct
    // live links.
    const auto r1 = fault::applyFaultSpec("rand:3:7", *topo);
    ASSERT_EQ(r1.size(), 3u);
    EXPECT_TRUE(topo->degraded());
    EXPECT_EQ(topo->numLiveLinks(), topo->numLinks() - 3);
    std::vector<LinkId> drawn;
    for (const auto &f : r1)
        drawn.push_back(f.link);
    topo->clearFaults();
    const auto r2 = fault::applyFaultSpec("rand:3:7", *topo);
    for (std::size_t i = 0; i < 3; ++i)
        EXPECT_EQ(drawn[i], r2[i].link);
    topo->clearFaults();
}

// ----- topology masking --------------------------------------------

TEST(FaultMask, MaskedRoutingAvoidsDeadResources)
{
    Torus topo({4, 4});
    EXPECT_FALSE(topo.degraded());
    const Path healthy = topo.routeLsdToMsd(0, 3);

    // Fail every link on the healthy route; routing must detour.
    for (LinkId l : healthy.links)
        topo.failLink(l);
    EXPECT_TRUE(topo.degraded());
    EXPECT_FALSE(topo.pathAlive(healthy));
    const Path detour = topo.routeLsdToMsd(0, 3);
    ASSERT_FALSE(detour.nodes.empty());
    EXPECT_TRUE(topo.pathAlive(detour));
    for (LinkId l : healthy.links)
        EXPECT_FALSE(topo.linkUp(l));

    // Node failure kills incident links; masked minimal paths
    // never traverse the dead node.
    topo.failNode(5);
    EXPECT_FALSE(topo.nodeUp(5));
    for (const Path &p : topo.minimalPaths(1, 9))
        for (NodeId n : p.nodes)
            EXPECT_NE(n, 5);

    topo.clearFaults();
    EXPECT_FALSE(topo.degraded());
    EXPECT_TRUE(topo.pathAlive(healthy));
    EXPECT_EQ(topo.numLiveLinks(), topo.numLinks());
}

TEST(FaultMask, DerateScalesCapacityNotStructure)
{
    Torus topo({4, 4});
    const LinkId l = 0;
    EXPECT_DOUBLE_EQ(topo.linkCapacity(l), 1.0);
    topo.derateLink(l, 0.5);
    EXPECT_TRUE(topo.degraded());
    EXPECT_TRUE(topo.linkUp(l));
    EXPECT_DOUBLE_EQ(topo.linkCapacity(l), 0.5);
    // Derated links stay routable.
    EXPECT_EQ(topo.numLiveLinks(), topo.numLinks());
    topo.clearFaults();
    EXPECT_DOUBLE_EQ(topo.linkCapacity(l), 1.0);
}

// ----- incremental repair: the acceptance case ---------------------

TEST(FaultRepair, OneFailedLinkRepairsIncrementally)
{
    Dvb444 f;
    ASSERT_TRUE(f.healthy.feasible);
    metrics::Registry::global().clear();
    metrics::Registry::setEnabled(true);

    const LinkId dead = f.usedLink();
    const fault::RepairResult rep =
        f.repair("link:#" + std::to_string(dead));

    ASSERT_TRUE(rep.feasible) << rep.detail;
    EXPECT_TRUE(rep.usedIncremental);
    EXPECT_FALSE(rep.usedFullRecompile);
    EXPECT_TRUE(rep.verification.ok);
    EXPECT_DOUBLE_EQ(rep.degradedPeriod, f.healthy.omega.period);

    // Only the subsets whose members crossed the dead link were
    // re-solved; the healthy majority was copied verbatim.
    EXPECT_GE(rep.subsetsResolved, 1u);
    EXPECT_LT(rep.subsetsResolved, rep.subsetsTotal);
    EXPECT_EQ(rep.subsetsReused + rep.subsetsResolved,
              rep.subsetsTotal);

    // The compiler-phase counters agree.
    auto &reg = metrics::Registry::global();
    EXPECT_EQ(reg.counter("repair.incremental").value(), 1u);
    EXPECT_EQ(reg.counter("repair.subsets_resolved").value(),
              rep.subsetsResolved);
    EXPECT_EQ(reg.counter("repair.subsets_reused").value(),
              rep.subsetsReused);
    metrics::Registry::setEnabled(false);

    // No message was shed or degraded; the dead link is unused.
    for (const Path &p : rep.omega.paths.paths)
        for (LinkId l : p.links)
            EXPECT_NE(l, dead);
    for (fault::MessageFate fate : rep.fates)
        EXPECT_TRUE(fate == fault::MessageFate::Survived ||
                    fate == fault::MessageFate::Rerouted);
}

TEST(FaultRepair, TwoFailedLinksStillCertify)
{
    Dvb444 f;
    ASSERT_TRUE(f.healthy.feasible);
    const LinkId a = f.usedLink(0);
    const LinkId b = f.usedLink(40);
    ASSERT_NE(a, b);
    const fault::RepairResult rep =
        f.repair("link:#" + std::to_string(a) + ";link:#" +
                 std::to_string(b));

    ASSERT_TRUE(rep.feasible) << rep.detail;
    EXPECT_TRUE(rep.verification.ok);
    EXPECT_DOUBLE_EQ(rep.degradedPeriod, f.healthy.omega.period);
    if (rep.usedIncremental)
        EXPECT_LT(rep.subsetsResolved, rep.subsetsTotal);
    for (const Path &p : rep.omega.paths.paths)
        for (LinkId l : p.links) {
            EXPECT_NE(l, a);
            EXPECT_NE(l, b);
        }
}

TEST(FaultRepair, DerateRepairsAndVerifiesDuty)
{
    Dvb444 f;
    ASSERT_TRUE(f.healthy.feasible);
    const LinkId l = f.usedLink();
    const fault::RepairResult rep =
        f.repair("derate:#" + std::to_string(l) + "=0.5");
    ASSERT_TRUE(rep.feasible) << rep.detail;
    EXPECT_TRUE(rep.verification.ok);
    // The duty bound is live in the verifier: the degraded
    // schedule keeps the derated link busy at most half the period.
    Time busy = 0.0;
    for (std::size_t i = 0; i < rep.omega.segments.size(); ++i) {
        const Path &p = rep.omega.paths.pathFor(i);
        for (LinkId pl : p.links)
            if (pl == l)
                for (const TimeWindow &w : rep.omega.segments[i])
                    busy += w.length();
    }
    EXPECT_LE(busy, 0.5 * rep.omega.period + kTimeEps);
}

TEST(FaultRepair, NodeDeathShedsItsMessages)
{
    Dvb444 f;
    ASSERT_TRUE(f.healthy.feasible);
    const fault::RepairResult rep = f.repair("node:13");

    ASSERT_TRUE(rep.feasible) << rep.detail;
    EXPECT_TRUE(rep.usedFullRecompile);
    EXPECT_TRUE(rep.verification.ok);
    EXPECT_FALSE(rep.shedMessages.empty());
    // Exactly the messages with an endpoint on the dead node shed.
    for (MessageId m = 0; m < f.g.numMessages(); ++m) {
        const Message &msg = f.g.message(m);
        const bool endpointDead =
            f.alloc.nodeOf(msg.src) == 13 ||
            f.alloc.nodeOf(msg.dst) == 13;
        EXPECT_EQ(rep.fates[static_cast<std::size_t>(m)] ==
                      fault::MessageFate::Shed,
                  endpointDead)
            << "message " << msg.name;
    }
    // keptMessages maps the reduced problem back to original ids.
    ASSERT_EQ(rep.keptMessages.size() + rep.shedMessages.size(),
              static_cast<std::size_t>(f.g.numMessages()));
    for (MessageId orig : rep.keptMessages)
        EXPECT_NE(rep.fates[static_cast<std::size_t>(orig)],
                  fault::MessageFate::Shed);
}

TEST(FaultRepair, DisconnectionFailsWithFaultStage)
{
    // Sever every link of node 0 on a small ring: task traffic
    // to/from node 0 is unroutable and (with its tasks alive) the
    // compile on the degraded fabric must fail in the Fault stage.
    const auto topo = makeTopology("torus:4");
    TaskFlowGraph g;
    const TaskId t0 = g.addTask("src", 100.0);
    const TaskId t1 = g.addTask("dst", 100.0);
    g.addMessage("m", t0, t1, 64.0);
    TaskAllocation alloc(g.numTasks(), topo->numNodes());
    alloc.assign(t0, 0);
    alloc.assign(t1, 2);
    TimingModel tm;
    tm.apSpeed = 1.0;
    tm.bandwidth = 64.0;
    SrCompilerConfig cfg;
    cfg.inputPeriod = 2.0 * tm.tauC(g);

    for (LinkId l : topo->linksAt(0))
        topo->failLink(l);
    const SrCompileResult r =
        compileScheduledRouting(g, *topo, alloc, tm, cfg);
    EXPECT_FALSE(r.feasible);
    EXPECT_EQ(r.stage, SrFailureStage::Fault);
}

// ----- cpsim: mid-run faults and the degraded-mode swap ------------

TEST(FaultCpsim, MidRunLinkDeathDropsAndSwapsToRepaired)
{
    Dvb444 f;
    ASSERT_TRUE(f.healthy.feasible);
    const LinkId dead = f.usedLink();
    const fault::RepairResult rep =
        f.repair("link:#" + std::to_string(dead));
    ASSERT_TRUE(rep.feasible);
    ASSERT_TRUE(rep.usedIncremental);

    const Time period = f.healthy.omega.period;
    CpSimConfig sim;
    sim.invocations = 20;
    sim.warmup = 2;
    // The link dies mid-run; five periods later the repaired
    // schedule reaches the CPs.
    sim.linkFailures = {{dead, 5.5 * period}};
    sim.degradedOmega = &rep.omega;
    sim.repairAt = 10.0 * period;

    const CpSimResult dyn =
        simulateCps(f.g, *f.topo, f.alloc, f.tm, f.healthy.bounds,
                    f.healthy.omega, sim);

    // Expected damage is accounted as loss, never as violations.
    EXPECT_TRUE(dyn.ok()) << (dyn.violations.empty()
                                  ? std::string()
                                  : dyn.violations.front());
    EXPECT_GT(dyn.droppedSegments, 0u);
    EXPECT_GT(dyn.lostInvocations, 0u);
    EXPECT_FALSE(dyn.faultNotes.empty());
    // After the swap the degraded schedule avoids the dead link,
    // so late invocations complete again.
    EXPECT_GT(dyn.completions.back(), 0.0);
    // And without the swap they keep failing.
    CpSimConfig noswap = sim;
    noswap.degradedOmega = nullptr;
    const CpSimResult broken =
        simulateCps(f.g, *f.topo, f.alloc, f.tm, f.healthy.bounds,
                    f.healthy.omega, noswap);
    EXPECT_TRUE(broken.ok());
    EXPECT_GT(broken.lostInvocations, dyn.lostInvocations);
    EXPECT_LE(broken.completions.back(), 0.0);
}

// ----- verifier: loud structured failures --------------------------

TEST(FaultVerifier, RejectsScheduleOverDeadLink)
{
    Dvb444 f;
    ASSERT_TRUE(f.healthy.feasible);
    const LinkId dead = f.usedLink();
    f.topo->failLink(dead);

    const VerifyResult v =
        verifySchedule(f.g, *f.topo, f.alloc, f.healthy.bounds,
                       f.healthy.omega);
    EXPECT_FALSE(v.ok);
    EXPECT_EQ(v.error.stage, SrFailureStage::Fault);
    EXPECT_NE(v.error.detail.find("failed link"),
              std::string::npos)
        << v.error.detail;
}

TEST(FaultVerifier, RejectsOutOfRangeLinkStructurally)
{
    Dvb444 f;
    ASSERT_TRUE(f.healthy.feasible);
    GlobalSchedule bad = f.healthy.omega;
    ASSERT_FALSE(bad.paths.paths[0].links.empty());
    bad.paths.paths[0].links[0] = f.topo->numLinks() + 7;

    // Structured rejection, not an assertion/crash.
    const VerifyResult v = verifySchedule(
        f.g, *f.topo, f.alloc, f.healthy.bounds, bad);
    EXPECT_FALSE(v.ok);
    EXPECT_EQ(v.error.stage, SrFailureStage::Verification);
    EXPECT_FALSE(v.error.detail.empty());
}

// ----- schedule file format ----------------------------------------

TEST(FaultScheduleIo, V2RoundTripsProvenance)
{
    Dvb444 f;
    ASSERT_TRUE(f.healthy.feasible);
    GlobalSchedule omega = f.healthy.omega;
    omega.faultSpec = "link:#3;derate:#5=0.5";
    omega.degradedFrom = 100.0;

    std::stringstream ss;
    writeSchedule(ss, omega);
    EXPECT_EQ(ss.str().rfind("srsim-schedule v2", 0), 0u);

    const GlobalSchedule back = readSchedule(ss, *f.topo);
    EXPECT_EQ(back.faultSpec, omega.faultSpec);
    EXPECT_DOUBLE_EQ(back.degradedFrom, omega.degradedFrom);
    EXPECT_DOUBLE_EQ(back.period, omega.period);
    ASSERT_EQ(back.segments.size(), omega.segments.size());
}

TEST(FaultScheduleIo, HealthySchedulesStayV1)
{
    Dvb444 f;
    ASSERT_TRUE(f.healthy.feasible);
    std::stringstream ss;
    writeSchedule(ss, f.healthy.omega);
    // Backward compatibility: no provenance -> the v1 bytes of the
    // pre-fault writer, readable by pre-fault readers.
    EXPECT_EQ(ss.str().rfind("srsim-schedule v1", 0), 0u);
    EXPECT_EQ(ss.str().find("faults"), std::string::npos);
    const GlobalSchedule back = readSchedule(ss, *f.topo);
    EXPECT_TRUE(back.faultSpec.empty());
    EXPECT_DOUBLE_EQ(back.degradedFrom, 0.0);
}

TEST(FaultScheduleIo, V1MagicRejectsV2Headers)
{
    Dvb444 f;
    ASSERT_TRUE(f.healthy.feasible);
    GlobalSchedule omega = f.healthy.omega;
    omega.faultSpec = "link:#3";
    std::stringstream ss;
    writeSchedule(ss, omega);
    std::string text = ss.str();
    text.replace(text.find("v2"), 2, "v1");
    std::istringstream in(text);
    EXPECT_THROW(readSchedule(in, *f.topo), FatalError);
}

} // namespace
} // namespace srsim
