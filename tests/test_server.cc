/**
 * @file
 * Scheduling-daemon suite: protocol parsing, WAL + snapshot codecs,
 * daemon/direct-service equivalence, backpressure, deadlines, and
 * crash recovery (the recovered daemon must republish byte-identical
 * schedules). Labeled `server tsan`: the churn stress runs under
 * ThreadSanitizer in the -DSRSIM_SANITIZE=thread CI lane.
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include "core/schedule_io.hh"
#include "engine/context.hh"
#include "metrics/metrics.hh"
#include "online/script.hh"
#include "online/service.hh"
#include "server/daemon.hh"
#include "server/protocol.hh"
#include "server/snapshot.hh"
#include "server/wal.hh"
#include "tfg/dvb.hh"
#include "topology/factory.hh"

namespace srsim {
namespace {

using server::DaemonConfig;
using server::DaemonOp;
using server::DaemonOutcome;
using server::DaemonResponse;
using server::SchedulingDaemon;
using server::SessionConfig;

/**
 * Fresh empty scratch directory, unique per test *and* per process:
 * the same suite may run concurrently from several build trees
 * (plain and sanitizer lanes), and a fixed path would let one run's
 * remove_all() clobber the other's live WAL mid-test.
 */
std::vector<std::filesystem::path> &
scratchDirsMade()
{
    static std::vector<std::filesystem::path> dirs;
    return dirs;
}

std::string
scratchDir(const std::string &name)
{
    const std::filesystem::path dir =
        std::filesystem::temp_directory_path() /
        ("srsim-server-" + name + "-" +
         std::to_string(::getpid()));
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    scratchDirsMade().push_back(dir);
    return dir.string();
}

/**
 * Remove this process's scratch dirs when its tests passed; keep
 * them for post-mortem inspection when something failed.
 */
class ScratchCleanup : public ::testing::Environment
{
    void TearDown() override
    {
        if (!::testing::UnitTest::GetInstance()->Passed())
            return;
        std::error_code ec;
        for (const std::filesystem::path &dir : scratchDirsMade())
            std::filesystem::remove_all(dir, ec);
    }
};

const ::testing::Environment *const scratchCleanup =
    ::testing::AddGlobalTestEnvironment(new ScratchCleanup);

/** The golden-churn figure configuration as a daemon session. */
SessionConfig
figSession(const std::string &name)
{
    SessionConfig sc;
    sc.name = name;
    sc.topo = "torus:4,4,4";
    sc.tfg = "dvb";
    sc.period = 120.0;
    sc.bandwidth = 128.0;
    sc.alloc = "rr:13";
    return sc;
}

std::vector<DaemonOp>
parseOps(const std::string &script)
{
    std::istringstream is(script);
    const server::DaemonScriptParseResult r =
        server::parseDaemonScript(is);
    EXPECT_TRUE(r.ok) << "line " << r.errorLine << ": " << r.error;
    return r.ops;
}

std::string
publishedBytes(const SchedulingDaemon &d, const std::string &name)
{
    const auto st = d.published(name);
    if (!st)
        return {};
    std::ostringstream os;
    writeSchedule(os, st->omega);
    return os.str();
}

/** The same figure recipe driven directly, no daemon. */
std::string
directBytes(const std::string &requestScript)
{
    const DvbParams dvb;
    TaskFlowGraph g = buildDvbTfg(dvb);
    auto topo = makeTopology("torus:4,4,4");
    TimingModel tm;
    tm.apSpeed = dvb.matchedApSpeed();
    tm.bandwidth = 128.0;
    const TaskAllocation alloc = alloc::roundRobin(g, *topo, 13);
    online::OnlineSchedulerConfig cfg;
    cfg.compiler.inputPeriod = 120.0;
    cfg.compiler.assign.seed = 12345;
    online::OnlineScheduler svc(std::move(g), std::move(topo),
                                alloc, tm, cfg);
    EXPECT_TRUE(svc.start().accepted);
    std::istringstream is(requestScript);
    const online::ScriptParseResult script =
        online::parseRequestScript(is);
    EXPECT_TRUE(script.ok);
    for (const online::Request &r : script.requests)
        EXPECT_TRUE(svc.process(r).accepted);
    std::ostringstream os;
    writeSchedule(os, svc.published()->omega);
    return os.str();
}

// -- Protocol -----------------------------------------------------

TEST(ServerProtocol, ParsesOpenRequestsAndClose)
{
    const auto ops = parseOps(
        "# comment\n"
        "open a topo=torus:4,4,4 period=120 tfg=dvb bw=128 "
        "alloc=rr:13 seed=7 cache=0\n"
        "a admit x0 probe verify 256\n"
        "a period 125\n"
        "a fault link:0-1\n"
        "close a\n");
    ASSERT_EQ(ops.size(), 5u);
    EXPECT_EQ(ops[0].kind, DaemonOp::Kind::Open);
    EXPECT_EQ(ops[0].open.name, "a");
    EXPECT_EQ(ops[0].open.bandwidth, 128.0);
    EXPECT_EQ(ops[0].open.seed, 7u);
    EXPECT_FALSE(ops[0].open.cache);
    EXPECT_EQ(ops[1].kind, DaemonOp::Kind::Request);
    EXPECT_EQ(ops[1].request.kind,
              online::RequestKind::AdmitMessage);
    EXPECT_EQ(ops[4].kind, DaemonOp::Kind::Close);
}

TEST(ServerProtocol, BatchCoalescesIntoOneRequest)
{
    const auto ops = parseOps(
        "open a topo=cube:3 period=100 tfg=dvb\n"
        "a batch 2\n"
        "a admit x0 probe verify 256\n"
        "a admit x1 match probe 128\n");
    ASSERT_EQ(ops.size(), 2u);
    EXPECT_EQ(ops[1].request.admits.size(), 2u);
}

TEST(ServerProtocol, RejectsMalformedLines)
{
    const char *bad[] = {
        "open a period=120 tfg=dvb\n",            // missing topo
        "open a topo=cube:3 period=0 tfg=dvb\n",  // bad period
        "open open topo=cube:3 period=1 tfg=dvb\n", // reserved name
        "a admit x0 probe verify 256\n"
        "close a extra\n",
        "a batch 2\n"
        "a admit x0 probe verify 256\n"
        "b admit x1 match probe 128\n", // wrong session in batch
        "frobnicate\n",
    };
    for (const char *script : bad) {
        std::istringstream is(script);
        EXPECT_FALSE(server::parseDaemonScript(is).ok) << script;
    }
}

// -- WAL ----------------------------------------------------------

TEST(ServerWal, RecordsRoundTripThroughTheLog)
{
    const std::string dir = scratchDir("wal-roundtrip");
    const std::string path = dir + "/wal.jsonl";
    {
        server::WriteAheadLog wal;
        std::string err;
        ASSERT_TRUE(wal.open(path, 1, &err)) << err;
        for (const DaemonOp &op : parseOps(
                 "open a topo=torus:4,4,4 period=120 tfg=dvb "
                 "bw=128 alloc=rr:13\n"
                 "a admit x0 probe verify 256\n"
                 "a remove x0\n"
                 "a period 125\n"
                 "a fault link:0-1\n"
                 "close a\n"))
            wal.append(op);
        wal.sync();
        EXPECT_EQ(wal.recordsAppended(), 6u);
        EXPECT_EQ(wal.fsyncs(), 1u);
    }
    const server::WalReadResult r = server::readWal(path);
    ASSERT_TRUE(r.ok);
    EXPECT_FALSE(r.tornTail);
    ASSERT_EQ(r.records.size(), 6u);
    EXPECT_EQ(r.records[0].op.kind, DaemonOp::Kind::Open);
    EXPECT_EQ(r.records[0].op.open.alloc, "rr:13");
    EXPECT_EQ(r.records[1].op.request.admits[0].bytes, 256.0);
    EXPECT_EQ(r.records[3].op.request.period, 125.0);
    EXPECT_EQ(r.records[4].op.request.faultSpec, "link:0-1");
    EXPECT_EQ(r.records[5].op.kind, DaemonOp::Kind::Close);
}

TEST(ServerWal, ExactDoublesAndWideSeedsSurviveReplay)
{
    // Found by the multi-session fuzzer: replay recompiles from the
    // WAL's numbers, so %.12g doubles (periods) and u64-through-
    // double seeds (> 2^53) diverged byte-wise after recovery.
    const std::string dir = scratchDir("wal-precision");
    const std::string path = dir + "/wal.jsonl";
    DaemonOp op;
    op.kind = DaemonOp::Kind::Open;
    op.session = "a";
    op.open.name = "a";
    op.open.topo = "torus:2,7,4";
    op.open.period = 140.64778820468143;
    op.open.apSpeed = 24.63606304888733;
    op.open.alloc = "rr:1";
    op.open.seed = 13546682927695711814ULL;
    {
        server::WriteAheadLog wal;
        std::string err;
        ASSERT_TRUE(wal.open(path, 1, &err)) << err;
        wal.append(op);
        wal.sync();
    }
    const server::WalReadResult r = server::readWal(path);
    ASSERT_TRUE(r.ok);
    ASSERT_EQ(r.records.size(), 1u);
    const SessionConfig &sc = r.records[0].op.open;
    EXPECT_EQ(sc.period, 140.64778820468143);
    EXPECT_EQ(sc.apSpeed, 24.63606304888733);
    EXPECT_EQ(sc.seed, 13546682927695711814ULL);
}

TEST(ServerWal, TornTailEndsReplayCleanly)
{
    const std::string dir = scratchDir("wal-torn");
    const std::string path = dir + "/wal.jsonl";
    {
        server::WriteAheadLog wal;
        std::string err;
        ASSERT_TRUE(wal.open(path, 1, &err)) << err;
        for (const DaemonOp &op : parseOps(
                 "open a topo=cube:3 period=100 tfg=dvb\n"
                 "a admit x0 probe verify 256\n"))
            wal.append(op);
        wal.sync();
    }
    {
        std::ofstream out(path, std::ios::app);
        out << "{\"seq\":3,\"op\":\"adm"; // torn mid-record
    }
    const server::WalReadResult r = server::readWal(path);
    ASSERT_TRUE(r.ok);
    EXPECT_TRUE(r.tornTail);
    EXPECT_EQ(r.records.size(), 2u);
}

TEST(ServerWal, SequenceBreakIsATornTail)
{
    const std::string dir = scratchDir("wal-seqbreak");
    const std::string path = dir + "/wal.jsonl";
    {
        std::ofstream out(path);
        out << R"({"seq":1,"op":"close","session":"a"})" << "\n";
        out << R"({"seq":3,"op":"close","session":"a"})" << "\n";
    }
    const server::WalReadResult r = server::readWal(path);
    ASSERT_TRUE(r.ok);
    EXPECT_TRUE(r.tornTail);
    EXPECT_EQ(r.records.size(), 1u);
}

TEST(ServerWal, MissingFileIsAnEmptyLog)
{
    const server::WalReadResult r =
        server::readWal(scratchDir("wal-missing") + "/nope.jsonl");
    EXPECT_TRUE(r.ok);
    EXPECT_FALSE(r.tornTail);
    EXPECT_TRUE(r.records.empty());
}

TEST(ServerWal, LogBaseMayStartPastOne)
{
    // A log continued after recovery retired its stale predecessor
    // starts at the snapshot's seq + 1, not at 1; continuity is
    // still required from the base onward.
    const std::string dir = scratchDir("wal-base");
    const std::string path = dir + "/wal.jsonl";
    {
        std::ofstream out(path);
        out << R"({"seq":5,"op":"close","session":"a"})" << "\n";
        out << R"({"seq":6,"op":"close","session":"b"})" << "\n";
        out << R"({"seq":8,"op":"close","session":"c"})" << "\n";
    }
    const server::WalReadResult r = server::readWal(path);
    ASSERT_TRUE(r.ok);
    EXPECT_TRUE(r.tornTail); // 6 -> 8 breaks continuity
    ASSERT_EQ(r.records.size(), 2u);
    EXPECT_EQ(r.records[0].seq, 5u);
    EXPECT_EQ(r.records[1].seq, 6u);
}

TEST(ServerWal, ControlCharactersInStringsRoundTrip)
{
    // JsonWriter escapes control bytes as \u00xx; the reader must
    // decode them back or replayed state diverges byte-wise.
    const std::string dir = scratchDir("wal-ctrl");
    const std::string path = dir + "/wal.jsonl";
    DaemonOp op;
    op.kind = DaemonOp::Kind::Request;
    op.session = std::string("a\x01b\x1f", 4);
    op.request.kind = online::RequestKind::InjectFault;
    op.request.faultSpec = std::string("link:0-1\x07", 9);
    {
        server::WriteAheadLog wal;
        std::string err;
        ASSERT_TRUE(wal.open(path, 1, &err)) << err;
        wal.append(op);
        EXPECT_TRUE(wal.sync());
    }
    const server::WalReadResult r = server::readWal(path);
    ASSERT_TRUE(r.ok);
    ASSERT_EQ(r.records.size(), 1u);
    EXPECT_EQ(r.records[0].op.session, op.session);
    EXPECT_EQ(r.records[0].op.request.faultSpec,
              op.request.faultSpec);
}

// -- Snapshots ----------------------------------------------------

server::DaemonSnapshot
sampleSnapshot()
{
    server::DaemonSnapshot snap;
    snap.walSeq = 42;
    server::SessionSnapshot s;
    s.cfg = figSession("a");
    s.period = 123.5;
    s.tasks = {{"probe", 1000.0, 3}, {"verify", 500.0, 7}};
    s.messages = {{"m0", "probe", "verify", 256.0}};
    s.scheduleText = "not a real schedule\nbut raw bytes\n";
    snap.sessions.push_back(std::move(s));
    server::SnapshotCacheEntry e;
    e.key = "topo=cube:3;ap=1;t:probe:1:0;";
    e.scheduleText = "cached schedule\nbytes\n";
    e.numSubsets = 9;
    e.peakUtilization = 0.25;
    snap.cache.push_back(std::move(e));
    return snap;
}

TEST(ServerSnapshot, CodecRoundTrips)
{
    const server::DaemonSnapshot snap = sampleSnapshot();
    const std::string body = server::encodeSnapshot(snap);
    server::DaemonSnapshot back;
    std::string err;
    ASSERT_TRUE(server::decodeSnapshot(body, &back, &err)) << err;
    EXPECT_EQ(back.walSeq, 42u);
    ASSERT_EQ(back.sessions.size(), 1u);
    EXPECT_EQ(back.sessions[0].cfg.topo, "torus:4,4,4");
    EXPECT_EQ(back.sessions[0].period, 123.5);
    ASSERT_EQ(back.sessions[0].tasks.size(), 2u);
    EXPECT_EQ(back.sessions[0].tasks[1].node, 7);
    EXPECT_EQ(back.sessions[0].scheduleText,
              snap.sessions[0].scheduleText);
    ASSERT_EQ(back.cache.size(), 1u);
    EXPECT_EQ(back.cache[0].key, snap.cache[0].key);
    EXPECT_EQ(back.cache[0].scheduleText,
              snap.cache[0].scheduleText);
    EXPECT_EQ(back.cache[0].numSubsets, 9u);
    EXPECT_EQ(back.cache[0].peakUtilization, 0.25);
}

TEST(ServerSnapshot, WideSeedsSurviveTheCodec)
{
    // Same trap as the WAL: the decoder's double-based number
    // parser clips u64 seeds above 2^53.
    server::DaemonSnapshot snap;
    snap.walSeq = 3;
    server::SessionSnapshot s;
    s.cfg.name = "a";
    s.cfg.topo = "cube:3";
    s.cfg.seed = 13546682927695711814ULL;
    s.period = 140.64778820468143;
    snap.sessions.push_back(std::move(s));

    server::DaemonSnapshot out;
    std::string err;
    ASSERT_TRUE(server::decodeSnapshot(
        server::encodeSnapshot(snap), &out, &err))
        << err;
    ASSERT_EQ(out.sessions.size(), 1u);
    EXPECT_EQ(out.sessions[0].cfg.seed, 13546682927695711814ULL);
    EXPECT_EQ(out.sessions[0].period, 140.64778820468143);
}

TEST(ServerSnapshot, DecodeIsTotalOnGarbage)
{
    server::DaemonSnapshot snap;
    std::string err;
    EXPECT_FALSE(server::decodeSnapshot("", &snap, &err));
    EXPECT_FALSE(server::decodeSnapshot("bogus v9\n", &snap, &err));
    std::string body = server::encodeSnapshot(sampleSnapshot());
    EXPECT_FALSE(server::decodeSnapshot(
        body.substr(0, body.size() / 2), &snap, &err));
}

TEST(ServerSnapshot, FilesAreContentAddressedAndVerified)
{
    const std::string dir = scratchDir("snap-files");
    std::string path, err;
    ASSERT_TRUE(server::writeSnapshotFile(dir, sampleSnapshot(),
                                          &path, &err))
        << err;
    auto infos = server::listSnapshots(dir);
    ASSERT_EQ(infos.size(), 1u);
    EXPECT_EQ(infos[0].walSeq, 42u);
    server::DaemonSnapshot back;
    ASSERT_TRUE(server::loadSnapshotFile(infos[0], &back, &err))
        << err;
    EXPECT_EQ(back.sessions.size(), 1u);

    // Flip one byte: the content hash must catch it.
    {
        std::fstream f(path, std::ios::in | std::ios::out);
        f.seekp(10);
        f.put('X');
    }
    EXPECT_FALSE(server::loadSnapshotFile(infos[0], &back, &err));
}

// -- Daemon behavior ----------------------------------------------

TEST(ServerDaemon, MatchesTheDirectServiceByteForByte)
{
    DaemonConfig cfg; // ephemeral, 1 worker
    SchedulingDaemon d(cfg);
    const DaemonResponse opened = d.open(figSession("a"));
    ASSERT_EQ(opened.outcome, DaemonOutcome::Ok);
    ASSERT_TRUE(opened.result.accepted) << opened.result.detail;
    const std::string script = "admit x0 probe verify 256\n"
                               "remove x0\n"
                               "admit x0 probe verify 256\n";
    for (const DaemonOp &op :
         parseOps("a admit x0 probe verify 256\n"
                  "a remove x0\n"
                  "a admit x0 probe verify 256\n")) {
        const DaemonResponse r =
            d.submit("a", op.request).get();
        ASSERT_EQ(r.outcome, DaemonOutcome::Ok);
        ASSERT_TRUE(r.result.accepted) << r.result.detail;
    }
    d.drain();
    EXPECT_EQ(publishedBytes(d, "a"), directBytes(script));
}

TEST(ServerDaemon, UnknownAndDuplicateSessionsAreStructured)
{
    DaemonConfig cfg;
    SchedulingDaemon d(cfg);
    online::Request r;
    r.kind = online::RequestKind::RemoveMessage;
    r.name = "x";
    EXPECT_EQ(d.submit("ghost", r).get().outcome,
              DaemonOutcome::UnknownSession);
    ASSERT_TRUE(d.open(figSession("a")).result.accepted);
    EXPECT_EQ(d.open(figSession("a")).outcome,
              DaemonOutcome::DuplicateSession);
    SessionConfig bad = figSession("b");
    bad.topo = "hypertorus:9";
    EXPECT_EQ(d.open(bad).outcome, DaemonOutcome::InvalidConfig);
    EXPECT_EQ(d.close("ghost").outcome,
              DaemonOutcome::UnknownSession);
}

TEST(ServerDaemon, FullQueueRejectsOverloadedWithoutBlocking)
{
    DaemonConfig cfg;
    cfg.queueCap = 3;
    SchedulingDaemon d(cfg);
    ASSERT_TRUE(d.open(figSession("a")).result.accepted);
    d.pauseForTest();
    online::Request admit;
    admit.kind = online::RequestKind::AdmitMessage;
    admit.admits.push_back({"x0", "probe", "verify", 256.0});
    online::Request remove;
    remove.kind = online::RequestKind::RemoveMessage;
    remove.name = "x0";
    std::vector<std::future<DaemonResponse>> futs;
    futs.push_back(d.submit("a", admit));
    futs.push_back(d.submit("a", remove));
    futs.push_back(d.submit("a", admit));
    // Queue is at cap: these must resolve immediately, not block.
    for (int i = 0; i < 3; ++i) {
        auto f = d.submit("a", remove);
        ASSERT_EQ(f.wait_for(std::chrono::seconds(0)),
                  std::future_status::ready);
        EXPECT_EQ(f.get().outcome, DaemonOutcome::Overloaded);
    }
    EXPECT_EQ(d.queueDepth(), 3u);
    d.resumeForTest();
    for (auto &f : futs) {
        const DaemonResponse r = f.get();
        EXPECT_EQ(r.outcome, DaemonOutcome::Ok);
        EXPECT_TRUE(r.result.accepted) << r.result.detail;
    }
}

TEST(ServerDaemon, StaleRequestsExpireAtPickup)
{
    DaemonConfig cfg;
    cfg.deadlineMs = 5.0;
    SchedulingDaemon d(cfg);
    ASSERT_TRUE(d.open(figSession("a")).result.accepted);
    d.pauseForTest();
    online::Request admit;
    admit.kind = online::RequestKind::AdmitMessage;
    admit.admits.push_back({"x0", "probe", "verify", 256.0});
    auto f = d.submit("a", admit);
    std::this_thread::sleep_for(std::chrono::milliseconds(25));
    d.resumeForTest();
    const DaemonResponse r = f.get();
    EXPECT_EQ(r.outcome, DaemonOutcome::DeadlineExpired);
    // The scheduler never saw it: version is still the initial one.
    EXPECT_EQ(d.published("a")->version, 1u);
}

/**
 * Per-session isolation (the context refactor's acceptance case):
 * two *concurrent* sessions with different solver kinds and thread
 * budgets must land their solver.warmstart.* and online.* counters
 * in their own child registries with zero cross-session bleed,
 * while the daemon root registry holds the exact aggregate.
 * Runs in the plain and TSan lanes (suite is labeled server+tsan).
 */
TEST(ServerDaemon, ConcurrentSessionsIsolatePerSessionMetrics)
{
    metrics::Registry::setEnabled(true);
    // A dedicated root context keeps this test's aggregate clean of
    // whatever earlier tests put in the process-wide registry.
    engine::ChildOptions rootOpts;
    rootOpts.name = "iso-root";
    const auto root =
        engine::EngineContext::processDefault().createChild(
            rootOpts);
    DaemonConfig cfg;
    cfg.ctx = root.get();
    cfg.workers = 2;
    cfg.cacheCapacity = 0; // every request is a real re-solve
    SchedulingDaemon d(cfg);

    SessionConfig warm = figSession("warm");
    warm.solver = "sparse";
    warm.cache = false;
    SessionConfig cold = figSession("cold");
    cold.solver = "dense";
    cold.threads = 2;
    cold.cache = false;
    ASSERT_TRUE(d.open(warm).result.accepted);
    ASSERT_TRUE(d.open(cold).result.accepted);

    // Distinct request counts per session: equal counters in both
    // registries would mask a cross-wiring bug.
    const int warmN = 6, coldN = 4;
    const auto churn = [&](const std::string &session, int n) {
        for (int i = 0; i < n; ++i) {
            online::Request admit;
            admit.kind = online::RequestKind::AdmitMessage;
            admit.admits.push_back(
                {"x" + std::to_string(i), "probe", "verify",
                 256.0});
            EXPECT_TRUE(
                d.submit(session, admit).get().result.accepted);
        }
    };
    std::thread tw([&] { churn("warm", warmN); });
    std::thread tc([&] { churn("cold", coldN); });
    tw.join();
    tc.join();
    d.drain();

    const auto mets = d.sessionMetrics();
    ASSERT_EQ(mets.size(), 2u);
    EXPECT_EQ(mets[0].first, "warm");
    EXPECT_EQ(mets[1].first, "cold");
    const metrics::Registry &warmReg = *mets[0].second;
    const metrics::Registry &coldReg = *mets[1].second;
    const auto count = [](const metrics::Registry &r,
                          const std::string &name) {
        // counterSnapshot, not counter(): the latter would create
        // the metric in a const-cast world; snapshots can't.
        for (const auto &[n, v] : r.counterSnapshot())
            if (n == name)
                return v;
        return std::uint64_t{0};
    };

    // online.* landed in the right child, exactly once per request
    // (+1 each: open()'s initial compile is a counted request too).
    EXPECT_EQ(count(warmReg, "online.requests"),
              static_cast<std::uint64_t>(warmN + 1));
    EXPECT_EQ(count(coldReg, "online.requests"),
              static_cast<std::uint64_t>(coldN + 1));
    // The aggregate is the exact sum — write-through, not copies.
    EXPECT_EQ(count(root->metricsRegistry(), "online.requests"),
              static_cast<std::uint64_t>(warmN + coldN + 2));

    // solver.warmstart.* is a sparse-stack phenomenon: the warm
    // session exercised it, the dense session must show no hits.
    EXPECT_GT(count(warmReg, "solver.warmstart.hits") +
                  count(warmReg, "solver.warmstart.misses"),
              0u);
    EXPECT_EQ(count(coldReg, "solver.warmstart.hits"), 0u);
    EXPECT_EQ(count(root->metricsRegistry(),
                    "solver.warmstart.hits"),
              count(warmReg, "solver.warmstart.hits") +
                  count(coldReg, "solver.warmstart.hits"));

    metrics::Registry::setEnabled(false);
}

TEST(ServerDaemon, SharedCacheServesCrossSessionHits)
{
    DaemonConfig cfg;
    cfg.workers = 2;
    SchedulingDaemon d(cfg);
    ASSERT_TRUE(d.open(figSession("a")).result.accepted);
    const std::uint64_t missesAfterA = d.cache().misses();
    // Identical config: b's initial compile is a shared-cache hit.
    ASSERT_TRUE(d.open(figSession("b")).result.accepted);
    EXPECT_GT(d.cache().hits(), 0u);
    EXPECT_EQ(d.cache().misses(), missesAfterA);
    EXPECT_EQ(publishedBytes(d, "a"), publishedBytes(d, "b"));
    EXPECT_GT(d.cache().bytes(), 0u);
}

TEST(ServerDaemon, CacheEvictionsKeepByteAccounting)
{
    DaemonConfig cfg;
    cfg.cacheCapacity = 1;
    SchedulingDaemon d(cfg);
    ASSERT_TRUE(d.open(figSession("a")).result.accepted);
    online::Request admit;
    admit.kind = online::RequestKind::AdmitMessage;
    admit.admits.push_back({"x0", "probe", "verify", 256.0});
    ASSERT_TRUE(d.submit("a", admit).get().result.accepted);
    EXPECT_GT(d.cache().evictions(), 0u);
    EXPECT_EQ(d.cache().size(), 1u);
    EXPECT_GT(d.cache().bytes(), 0u);
}

// -- Durability ---------------------------------------------------

TEST(ServerDaemon, RecoversByteIdenticalFromWalReplay)
{
    const std::string dir = scratchDir("recover-wal");
    const std::string script = "admit x0 probe verify 256\n"
                               "admit x1 match probe 128\n"
                               "remove x0\n";
    {
        DaemonConfig cfg;
        cfg.stateDir = dir;
        SchedulingDaemon d(cfg);
        ASSERT_TRUE(d.open(figSession("a")).result.accepted);
        for (const DaemonOp &op :
             parseOps("a admit x0 probe verify 256\n"
                      "a admit x1 match probe 128\n"
                      "a remove x0\n"))
            ASSERT_TRUE(
                d.submit("a", op.request).get().result.accepted);
        d.drain();
        d.crashForTest(); // no final snapshot, no graceful close
    }
    DaemonConfig cfg;
    cfg.stateDir = dir;
    SchedulingDaemon d2(cfg);
    EXPECT_TRUE(d2.recovery().snapshotPath.empty());
    EXPECT_EQ(d2.recovery().walRecords, 4u);
    EXPECT_EQ(d2.recovery().replayed, 4u);
    EXPECT_EQ(d2.recovery().replayRejected, 0u);
    ASSERT_EQ(d2.sessionNames(),
              std::vector<std::string>{"a"});
    EXPECT_EQ(publishedBytes(d2, "a"), directBytes(script));
}

TEST(ServerDaemon, RecoversFromSnapshotPlusWalSuffix)
{
    const std::string dir = scratchDir("recover-snap");
    {
        DaemonConfig cfg;
        cfg.stateDir = dir;
        cfg.snapshotEvery = 2;
        SchedulingDaemon d(cfg);
        ASSERT_TRUE(d.open(figSession("a")).result.accepted);
        for (const DaemonOp &op :
             parseOps("a admit x0 probe verify 256\n"
                      "a admit x1 match probe 128\n"
                      "a remove x0\n"))
            ASSERT_TRUE(
                d.submit("a", op.request).get().result.accepted);
        d.drain();
        EXPECT_GT(d.snapshotsWritten(), 0u);
        d.crashForTest();
    }
    DaemonConfig cfg;
    cfg.stateDir = dir;
    SchedulingDaemon d2(cfg);
    EXPECT_FALSE(d2.recovery().snapshotPath.empty());
    EXPECT_LT(d2.recovery().replayed, 4u);
    EXPECT_EQ(d2.recovery().replayRejected, 0u);
    EXPECT_EQ(publishedBytes(d2, "a"),
              directBytes("admit x0 probe verify 256\n"
                          "admit x1 match probe 128\n"
                          "remove x0\n"));
}

TEST(ServerDaemon, CorruptSnapshotFallsBackToOlderState)
{
    const std::string dir = scratchDir("recover-corrupt");
    {
        DaemonConfig cfg;
        cfg.stateDir = dir;
        cfg.snapshotEvery = 1;
        SchedulingDaemon d(cfg);
        ASSERT_TRUE(d.open(figSession("a")).result.accepted);
        for (const DaemonOp &op :
             parseOps("a admit x0 probe verify 256\n"
                      "a remove x0\n"))
            ASSERT_TRUE(
                d.submit("a", op.request).get().result.accepted);
        d.drain();
        d.crashForTest();
    }
    // Corrupt the newest snapshot; recovery must reject it on the
    // content hash and fall back (older snapshot or full replay),
    // converging on the same state.
    auto infos = server::listSnapshots(dir);
    ASSERT_GE(infos.size(), 2u);
    {
        std::fstream f(infos[0].path,
                       std::ios::in | std::ios::out);
        f.seekp(40);
        f.put('!');
    }
    DaemonConfig cfg;
    cfg.stateDir = dir;
    SchedulingDaemon d2(cfg);
    EXPECT_GE(d2.recovery().rejectedSnapshots.size(), 1u);
    EXPECT_EQ(publishedBytes(d2, "a"),
              directBytes("admit x0 probe verify 256\n"
                          "remove x0\n"));
}

TEST(ServerDaemon, UnsyncedTailIsLostOnCrash)
{
    const std::string dir = scratchDir("recover-unsynced");
    {
        DaemonConfig cfg;
        cfg.stateDir = dir;
        cfg.walSyncEvery = 100; // group commit, never reached
        SchedulingDaemon d(cfg);
        ASSERT_TRUE(d.open(figSession("a")).result.accepted);
        online::Request admit;
        admit.kind = online::RequestKind::AdmitMessage;
        admit.admits.push_back({"x0", "probe", "verify", 256.0});
        ASSERT_TRUE(d.submit("a", admit).get().result.accepted);
        d.crashForTest(); // pending WAL bytes dropped
    }
    DaemonConfig cfg;
    cfg.stateDir = dir;
    SchedulingDaemon d2(cfg);
    EXPECT_EQ(d2.recovery().walRecords, 0u);
    EXPECT_TRUE(d2.sessionNames().empty());
}

TEST(ServerDaemon, TornWalTailRecoversTheIntactPrefix)
{
    const std::string dir = scratchDir("recover-torn");
    {
        DaemonConfig cfg;
        cfg.stateDir = dir;
        SchedulingDaemon d(cfg);
        ASSERT_TRUE(d.open(figSession("a")).result.accepted);
        online::Request admit;
        admit.kind = online::RequestKind::AdmitMessage;
        admit.admits.push_back({"x0", "probe", "verify", 256.0});
        ASSERT_TRUE(d.submit("a", admit).get().result.accepted);
        d.drain();
        d.crashForTest();
    }
    {
        std::ofstream out(dir + "/wal.jsonl", std::ios::app);
        out << "{\"seq\":3,\"op\":\"re"; // torn mid-record
    }
    DaemonConfig cfg;
    cfg.stateDir = dir;
    SchedulingDaemon d2(cfg);
    EXPECT_TRUE(d2.recovery().walTornTail);
    EXPECT_EQ(d2.recovery().walRecords, 2u);
    EXPECT_EQ(publishedBytes(d2, "a"),
              directBytes("admit x0 probe verify 256\n"));
    // The rewritten log must append cleanly from here.
    online::Request admit;
    admit.kind = online::RequestKind::AdmitMessage;
    admit.admits.push_back({"x1", "match", "probe", 128.0});
    ASSERT_TRUE(d2.submit("a", admit).get().result.accepted);
    d2.shutdown();
    const server::WalReadResult wr =
        server::readWal(dir + "/wal.jsonl");
    EXPECT_FALSE(wr.tornTail);
    EXPECT_EQ(wr.records.size(), 3u);
}

TEST(ServerDaemon, SnapshotSupersedingALostWalTailLeavesNoGap)
{
    // A snapshot may certify records a damaged state dir's WAL no
    // longer has. Recovery must not reopen the log ahead of its
    // last on-disk record (the gap would make the *next* recovery
    // discard acknowledged records as a torn tail); it retires the
    // stale log and continues from the snapshot's sequence.
    const std::string dir = scratchDir("recover-lost-tail");
    {
        DaemonConfig cfg;
        cfg.stateDir = dir;
        cfg.snapshotEvery = 1;
        SchedulingDaemon d(cfg);
        ASSERT_TRUE(d.open(figSession("a")).result.accepted);
        for (const DaemonOp &op :
             parseOps("a admit x0 probe verify 256\n"
                      "a admit x1 match probe 128\n"
                      "a remove x0\n"))
            ASSERT_TRUE(
                d.submit("a", op.request).get().result.accepted);
        d.shutdown(); // final snapshot certifies seq 4
    }
    // Lose the WAL tail the snapshot certifies (keep seq 1-2).
    {
        const server::WalReadResult wr =
            server::readWal(dir + "/wal.jsonl");
        ASSERT_EQ(wr.records.size(), 4u);
        std::ofstream out(dir + "/wal.jsonl",
                          std::ios::binary | std::ios::trunc);
        for (std::size_t i = 0; i < 2; ++i)
            out << server::encodeWalRecord(wr.records[i]) << "\n";
    }
    std::string afterOneMore;
    {
        DaemonConfig cfg;
        cfg.stateDir = dir;
        SchedulingDaemon d2(cfg);
        EXPECT_FALSE(d2.recovery().snapshotPath.empty());
        EXPECT_EQ(d2.recovery().replayed, 0u);
        EXPECT_EQ(publishedBytes(d2, "a"),
                  directBytes("admit x0 probe verify 256\n"
                              "admit x1 match probe 128\n"
                              "remove x0\n"));
        EXPECT_TRUE(
            std::filesystem::exists(dir + "/wal.jsonl.stale"));
        online::Request admit;
        admit.kind = online::RequestKind::AdmitMessage;
        admit.admits.push_back({"x2", "probe", "verify", 64.0});
        ASSERT_TRUE(d2.submit("a", admit).get().result.accepted);
        d2.drain();
        afterOneMore = publishedBytes(d2, "a");
        d2.crashForTest();
    }
    // The fresh log starts at seq 5 and replays cleanly on top of
    // the snapshot — nothing acknowledged was discarded.
    const server::WalReadResult wr =
        server::readWal(dir + "/wal.jsonl");
    EXPECT_FALSE(wr.tornTail);
    ASSERT_EQ(wr.records.size(), 1u);
    EXPECT_EQ(wr.records[0].seq, 5u);
    DaemonConfig cfg;
    cfg.stateDir = dir;
    SchedulingDaemon d3(cfg);
    EXPECT_EQ(d3.recovery().replayed, 1u);
    EXPECT_EQ(d3.recovery().replayRejected, 0u);
    EXPECT_EQ(publishedBytes(d3, "a"), afterOneMore);
}

// -- Concurrency --------------------------------------------------

TEST(ServerDaemon, SnapshotsTolerateInFlightOpens)
{
    // open() parks a placeholder session (no service yet) while the
    // initial compile runs outside the daemon lock; snapshots taken
    // meanwhile (another session quiescing with snapshotEvery=1)
    // must skip it, not dereference it. Also pins WAL commit order:
    // a session's Open record precedes all its Requests, which
    // precede its Close.
    const std::string dir = scratchDir("snap-inflight-open");
    const std::string script = "admit x0 probe verify 256\n"
                               "remove x0\n"
                               "admit x0 probe verify 256\n"
                               "remove x0\n"
                               "admit x0 probe verify 256\n"
                               "remove x0\n";
    {
        DaemonConfig cfg;
        cfg.stateDir = dir;
        cfg.snapshotEvery = 1;
        cfg.workers = 2;
        SchedulingDaemon d(cfg);
        ASSERT_TRUE(d.open(figSession("a")).result.accepted);
        std::thread opener([&] {
            for (int i = 0; i < 6; ++i) {
                const std::string name = "b" + std::to_string(i);
                EXPECT_TRUE(
                    d.open(figSession(name)).result.accepted);
                EXPECT_EQ(d.close(name).outcome,
                          DaemonOutcome::Ok);
            }
        });
        for (const DaemonOp &op : parseOps(
                 "a admit x0 probe verify 256\n"
                 "a remove x0\n"
                 "a admit x0 probe verify 256\n"
                 "a remove x0\n"
                 "a admit x0 probe verify 256\n"
                 "a remove x0\n"))
            ASSERT_TRUE(
                d.submit("a", op.request).get().result.accepted);
        opener.join();
        d.shutdown();
    }
    // Per-session WAL order: Open < every Request < Close.
    const server::WalReadResult wr =
        server::readWal(dir + "/wal.jsonl");
    ASSERT_TRUE(wr.ok);
    EXPECT_FALSE(wr.tornTail);
    std::map<std::string, std::uint64_t> opened, closed;
    for (const server::WalRecord &rec : wr.records) {
        const std::string &name = rec.op.session;
        switch (rec.op.kind) {
          case DaemonOp::Kind::Open:
              EXPECT_FALSE(opened.count(name)) << name;
              opened[name] = rec.seq;
              break;
          case DaemonOp::Kind::Close:
              ASSERT_TRUE(opened.count(name)) << name;
              EXPECT_GT(rec.seq, opened[name]);
              closed[name] = rec.seq;
              break;
          case DaemonOp::Kind::Request:
              ASSERT_TRUE(opened.count(name)) << name;
              EXPECT_GT(rec.seq, opened[name]);
              EXPECT_FALSE(closed.count(name)) << name;
              break;
        }
    }
    // And the interleaved run recovers byte-identically.
    DaemonConfig cfg;
    cfg.stateDir = dir;
    SchedulingDaemon d2(cfg);
    EXPECT_EQ(d2.recovery().replayRejected, 0u);
    ASSERT_EQ(d2.sessionNames(), std::vector<std::string>{"a"});
    EXPECT_EQ(publishedBytes(d2, "a"), directBytes(script));
}

TEST(ServerDaemon, ChurnStressMatchesSingleWorkerRun)
{
    // 6 sessions x alternating admit/remove churn on 4 workers,
    // submitted from 3 threads, must publish exactly the bytes a
    // serialized 1-worker daemon publishes.
    constexpr int kSessions = 6;
    constexpr int kRounds = 8;
    const auto runAll = [&](std::size_t workers) {
        DaemonConfig cfg;
        cfg.workers = workers;
        cfg.queueCap = 1024;
        SchedulingDaemon d(cfg);
        for (int s = 0; s < kSessions; ++s)
            EXPECT_TRUE(d.open(figSession("s" +
                                          std::to_string(s)))
                            .result.accepted);
        std::vector<std::thread> drivers;
        for (int t = 0; t < 3; ++t) {
            drivers.emplace_back([&, t] {
                for (int s = t; s < kSessions; s += 3) {
                    const std::string name =
                        "s" + std::to_string(s);
                    std::vector<std::future<DaemonResponse>> fs;
                    for (int i = 0; i < kRounds; ++i) {
                        online::Request r;
                        if (i % 2 == 0) {
                            r.kind =
                                online::RequestKind::AdmitMessage;
                            r.admits.push_back({"x0", "probe",
                                                "verify", 256.0});
                        } else {
                            r.kind =
                                online::RequestKind::RemoveMessage;
                            r.name = "x0";
                        }
                        fs.push_back(d.submit(name, std::move(r)));
                    }
                    for (auto &f : fs)
                        EXPECT_TRUE(
                            f.get().result.accepted);
                }
            });
        }
        for (auto &t : drivers)
            t.join();
        d.drain();
        std::vector<std::string> bytes;
        for (int s = 0; s < kSessions; ++s)
            bytes.push_back(
                publishedBytes(d, "s" + std::to_string(s)));
        return bytes;
    };
    EXPECT_EQ(runAll(4), runAll(1));
}

} // namespace
} // namespace srsim
