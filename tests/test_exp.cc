/**
 * @file
 * Tests for the experiment harness (src/exp): the load sweep, the
 * utilization experiment, and the throughput experiment, run on a
 * small fabric so the suite stays fast.
 */

#include <sstream>

#include <gtest/gtest.h>

#include "exp/experiment.hh"
#include "mapping/allocation.hh"
#include "tfg/dvb.hh"
#include "topology/generalized_hypercube.hh"

namespace srsim {
namespace {

TEST(LoadSweepTest, TwelvePeriodsBetweenTauCAndFiveTauC)
{
    ExperimentConfig cfg;
    const auto periods = loadSweepPeriods(50.0, cfg);
    ASSERT_EQ(periods.size(), 12u);
    EXPECT_DOUBLE_EQ(periods.front(), 50.0);
    EXPECT_DOUBLE_EQ(periods.back(), 250.0);
    for (std::size_t i = 1; i < periods.size(); ++i)
        EXPECT_GT(periods[i], periods[i - 1]);
}

TEST(LoadSweepTest, ConfigurablePointCountAndRange)
{
    ExperimentConfig cfg;
    cfg.numLoadPoints = 5;
    cfg.maxPeriodFactor = 3.0;
    const auto periods = loadSweepPeriods(10.0, cfg);
    ASSERT_EQ(periods.size(), 5u);
    EXPECT_DOUBLE_EQ(periods.front(), 10.0);
    EXPECT_DOUBLE_EQ(periods.back(), 30.0);
}

struct SmallExperiment
{
    DvbParams dp;
    TaskFlowGraph g;
    GeneralizedHypercube cube = GeneralizedHypercube::binaryCube(4);
    TimingModel tm;
    TaskAllocation alloc;
    ExperimentConfig cfg;

    SmallExperiment()
        : g((dp.numModels = 4, buildDvbTfg(dp))),
          alloc(alloc::roundRobin(g, cube, 3))
    {
        tm.apSpeed = dp.matchedApSpeed();
        tm.bandwidth = 128.0;
        cfg.numLoadPoints = 5;
        cfg.invocations = 25;
        cfg.warmup = 5;
    }
};

TEST(ExperimentTest, UtilizationSeriesInvariants)
{
    SmallExperiment e;
    const auto pts =
        runUtilizationExperiment(e.g, e.cube, e.alloc, e.tm, e.cfg);
    ASSERT_EQ(pts.size(), 5u);
    for (std::size_t i = 0; i < pts.size(); ++i) {
        // Ascending load.
        if (i > 0) {
            EXPECT_GT(pts[i].load, pts[i - 1].load);
        }
        EXPECT_GT(pts[i].uLsdToMsd, 0.0);
        // AssignPaths never above the routing-function baseline.
        EXPECT_LE(pts[i].uAssignPaths, pts[i].uLsdToMsd + 1e-9);
    }
    EXPECT_NEAR(pts.back().load, 1.0, 1e-9);
    EXPECT_NEAR(pts.front().load, 0.2, 1e-9);
}

TEST(ExperimentTest, ThroughputSeriesInvariants)
{
    SmallExperiment e;
    const auto pts =
        runThroughputExperiment(e.g, e.cube, e.alloc, e.tm, e.cfg);
    ASSERT_EQ(pts.size(), 5u);
    for (const LoadPoint &p : pts) {
        if (p.srFeasible) {
            // The executor-verified guarantee.
            EXPECT_NEAR(p.srThroughput, 1.0, 1e-6);
            EXPECT_GE(p.srLatency, 1.0 - 1e-9);
        } else {
            EXPECT_NE(p.srStage, SrFailureStage::None);
        }
        if (!p.wrDeadlocked) {
            // Spike ordering.
            EXPECT_LE(p.wrThrMin, p.wrThrAvg + 1e-9);
            EXPECT_LE(p.wrThrAvg, p.wrThrMax + 1e-9);
            EXPECT_LE(p.wrLatMin, p.wrLatAvg + 1e-9);
            EXPECT_LE(p.wrLatAvg, p.wrLatMax + 1e-9);
            // Normalized latency is at least 1 (Delta is minimal).
            EXPECT_GE(p.wrLatMin, 1.0 - 1e-6);
        }
        // Consistency of the OI verdict with the spikes.
        if (!p.wrDeadlocked && !p.wrInconsistent) {
            EXPECT_NEAR(p.wrThrMin, p.wrThrMax, 2e-3);
        }
    }
}

TEST(ExperimentTest, PrintersProduceOneRowPerPoint)
{
    SmallExperiment e;
    const auto upts =
        runUtilizationExperiment(e.g, e.cube, e.alloc, e.tm, e.cfg);
    std::ostringstream os;
    printUtilizationSeries(os, "title", upts);
    // Header + rule + one row per point.
    std::size_t lines = 0;
    for (char c : os.str())
        lines += c == '\n';
    EXPECT_EQ(lines, 2 + upts.size() + 2); // title + blank too
}

} // namespace
} // namespace srsim
