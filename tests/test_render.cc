/**
 * @file
 * Tests for the SVG schedule renderer: structural validity, one
 * block per (link, segment), and escaping.
 */

#include <sstream>

#include <gtest/gtest.h>

#include "core/schedule_render.hh"
#include "core/sr_compiler.hh"
#include "mapping/allocation.hh"
#include "tfg/dvb.hh"
#include "tfg/timing.hh"
#include "topology/generalized_hypercube.hh"

namespace srsim {
namespace {

struct RenderFixture : public ::testing::Test
{
    TaskFlowGraph g = buildDvbTfg({});
    GeneralizedHypercube cube = GeneralizedHypercube::binaryCube(6);
    TimingModel tm;
    TaskAllocation alloc{1, 1};
    SrCompileResult sr;

    RenderFixture() : alloc(alloc::roundRobin(g, cube, 13))
    {
        DvbParams dp;
        tm.apSpeed = dp.matchedApSpeed();
        tm.bandwidth = 128.0;
    }

    void
    SetUp() override
    {
        SrCompilerConfig cfg;
        cfg.inputPeriod = 2.0 * tm.tauC(g);
        sr = compileScheduledRouting(g, cube, alloc, tm, cfg);
        ASSERT_TRUE(sr.feasible);
    }

    static std::size_t
    count(const std::string &hay, const std::string &needle)
    {
        std::size_t n = 0;
        for (std::size_t pos = hay.find(needle);
             pos != std::string::npos;
             pos = hay.find(needle, pos + needle.size()))
            ++n;
        return n;
    }
};

TEST_F(RenderFixture, ProducesWellFormedSvgSkeleton)
{
    std::ostringstream os;
    renderScheduleSvg(os, g, cube, sr.bounds, sr.omega);
    const std::string svg = os.str();
    EXPECT_EQ(svg.rfind("<svg", 0), 0u);
    EXPECT_NE(svg.find("</svg>"), std::string::npos);
    EXPECT_EQ(count(svg, "<svg"), count(svg, "</svg>"));
}

TEST_F(RenderFixture, OneTooltipPerLinkSegment)
{
    std::ostringstream os;
    renderScheduleSvg(os, g, cube, sr.bounds, sr.omega);
    const std::string svg = os.str();

    std::size_t expected = 0;
    for (std::size_t i = 0; i < sr.omega.segments.size(); ++i)
        expected += sr.omega.segments[i].size() *
                    sr.omega.paths.pathFor(i).links.size();
    EXPECT_EQ(count(svg, "<title>"), expected);
}

TEST_F(RenderFixture, LegendNamesEveryMessage)
{
    std::ostringstream os;
    renderScheduleSvg(os, g, cube, sr.bounds, sr.omega);
    const std::string svg = os.str();
    for (const MessageBounds &b : sr.bounds.messages)
        EXPECT_NE(svg.find(g.message(b.msg).name),
                  std::string::npos);
}

TEST_F(RenderFixture, CustomTitleEscaped)
{
    RenderOptions opts;
    opts.title = "a < b & c";
    std::ostringstream os;
    renderScheduleSvg(os, g, cube, sr.bounds, sr.omega, opts);
    const std::string svg = os.str();
    EXPECT_NE(svg.find("a &lt; b &amp; c"), std::string::npos);
    EXPECT_EQ(svg.find("a < b"), std::string::npos);
}

} // namespace
} // namespace srsim
