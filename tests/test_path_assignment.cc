/**
 * @file
 * Tests for utilization analysis (Defs. 5.1/5.2) and the
 * AssignPaths heuristic (Fig. 4), plus the maximal related-subset
 * decomposition (Defs. 5.3/5.4).
 */

#include <algorithm>

#include <gtest/gtest.h>

#include "core/intervals.hh"
#include "core/path_assignment.hh"
#include "core/subsets.hh"
#include "core/time_bounds.hh"
#include "mapping/allocation.hh"
#include "tfg/dvb.hh"
#include "topology/generalized_hypercube.hh"
#include "topology/torus.hh"
#include "util/thread_pool.hh"

namespace srsim {
namespace {

/**
 * Two parallel messages released together, both 0 -> 3 on a
 * 2-cube: forcing them onto one path overloads it; splitting onto
 * the two disjoint minimal paths balances it.
 */
struct ParallelFixture
{
    TaskFlowGraph g;
    GeneralizedHypercube cube = GeneralizedHypercube::binaryCube(2);
    TimingModel tm;
    TaskAllocation alloc{4, 4};

    ParallelFixture()
    {
        const TaskId s1 = g.addTask("s1", 100.0);
        const TaskId s2 = g.addTask("s2", 100.0);
        const TaskId d1 = g.addTask("d1", 100.0);
        const TaskId d2 = g.addTask("d2", 100.0);
        g.addMessage("m1", s1, d1, 384.0); // 6 us
        g.addMessage("m2", s2, d2, 384.0); // 6 us
        tm.apSpeed = 10.0;   // tau_c = 10
        tm.bandwidth = 64.0;
        alloc.assign(0, 0);
        alloc.assign(1, 0);
        alloc.assign(2, 3);
        alloc.assign(3, 3);
    }
};

TEST(UtilizationTest, LinkUtilizationDefinition)
{
    ParallelFixture f;
    const TimeBounds tb =
        computeTimeBounds(f.g, f.alloc, f.tm, 40.0);
    const IntervalSet ivs(tb);
    UtilizationAnalyzer ua(tb, ivs, f.cube);

    // Both messages on the same path 0-1-3.
    PathAssignment pa;
    pa.paths.push_back(f.cube.makePath({0, 1, 3}));
    pa.paths.push_back(f.cube.makePath({0, 1, 3}));
    // Each link carries 12 us of demand inside a 10 us window.
    const LinkId l01 = f.cube.linkBetween(0, 1);
    EXPECT_NEAR(ua.linkUtilization(pa, l01), 1.2, 1e-9);
    const UtilizationReport rep = ua.analyze(pa);
    EXPECT_NEAR(rep.peak, 1.2, 1e-9);
    EXPECT_FALSE(rep.position.isSpot);

    // Split onto disjoint paths: 6/10 per link.
    pa.paths[1] = f.cube.makePath({0, 2, 3});
    EXPECT_NEAR(ua.linkUtilization(pa, l01), 0.6, 1e-9);
    EXPECT_NEAR(ua.analyze(pa).peak, 0.6, 1e-9);
}

TEST(UtilizationTest, SpotUtilizationCountsNoSlackMessages)
{
    // Make the two messages no-slack: duration == tau_c.
    ParallelFixture f;
    TaskFlowGraph g2;
    const TaskId s1 = g2.addTask("s1", 100.0);
    const TaskId s2 = g2.addTask("s2", 100.0);
    const TaskId d1 = g2.addTask("d1", 100.0);
    const TaskId d2 = g2.addTask("d2", 100.0);
    g2.addMessage("m1", s1, d1, 640.0); // 10 us == tau_c
    g2.addMessage("m2", s2, d2, 640.0);
    const TimeBounds tb = computeTimeBounds(g2, f.alloc, f.tm, 40.0);
    const IntervalSet ivs(tb);
    UtilizationAnalyzer ua(tb, ivs, f.cube);

    PathAssignment pa;
    pa.paths.push_back(f.cube.makePath({0, 1, 3}));
    pa.paths.push_back(f.cube.makePath({0, 1, 3}));
    const LinkId l01 = f.cube.linkBetween(0, 1);
    const std::size_t k = ivs.intervalAt(tb.messages[0].release);
    EXPECT_DOUBLE_EQ(ua.spotUtilization(pa, l01, k), 2.0);
    const UtilizationReport rep = ua.analyze(pa);
    // Both the link ratio (20 us demand / 10 us window) and the
    // hot-spot count are 2.0 here; the peak must report it either
    // way.
    EXPECT_DOUBLE_EQ(rep.peak, 2.0);

    // Disjoint paths: one no-slack message per spot is *not*
    // contention, so the peak is the link ratio (10/10 = 1).
    pa.paths[1] = f.cube.makePath({0, 2, 3});
    EXPECT_DOUBLE_EQ(ua.spotUtilization(pa, l01, k), 1.0);
    EXPECT_NEAR(ua.analyze(pa).peak, 1.0, 1e-9);
}

TEST(UtilizationTest, UnusedLinkHasZeroUtilization)
{
    ParallelFixture f;
    const TimeBounds tb =
        computeTimeBounds(f.g, f.alloc, f.tm, 40.0);
    const IntervalSet ivs(tb);
    UtilizationAnalyzer ua(tb, ivs, f.cube);
    PathAssignment pa;
    pa.paths.push_back(f.cube.makePath({0, 1, 3}));
    pa.paths.push_back(f.cube.makePath({0, 1, 3}));
    const LinkId l23 = f.cube.linkBetween(2, 3);
    EXPECT_DOUBLE_EQ(ua.linkUtilization(pa, l23), 0.0);
}

TEST(AssignPathsTest, FindsTheBalancedAssignment)
{
    ParallelFixture f;
    const TimeBounds tb =
        computeTimeBounds(f.g, f.alloc, f.tm, 40.0);
    const IntervalSet ivs(tb);
    const AssignPathsResult r =
        assignPaths(f.g, f.cube, f.alloc, tb, ivs);
    // The optimum splits the messages onto disjoint paths: 0.6.
    EXPECT_NEAR(r.report.peak, 0.6, 1e-9);
    EXPECT_NE(r.assignment.paths[0].nodes[1],
              r.assignment.paths[1].nodes[1]);
}

TEST(AssignPathsTest, LsdBaselineUsesRoutingFunction)
{
    ParallelFixture f;
    const TimeBounds tb =
        computeTimeBounds(f.g, f.alloc, f.tm, 40.0);
    const PathAssignment pa =
        lsdToMsdAssignment(f.g, f.cube, f.alloc, tb);
    ASSERT_EQ(pa.paths.size(), 2u);
    for (const Path &p : pa.paths)
        EXPECT_EQ(p.nodes, (std::vector<NodeId>{0, 1, 3}));
}

TEST(AssignPathsTest, AssignedPathsAreValidMinimalAndEndToEnd)
{
    const TaskFlowGraph g = buildDvbTfg({});
    const auto cube = GeneralizedHypercube::binaryCube(6);
    DvbParams dp;
    TimingModel tm;
    tm.apSpeed = dp.matchedApSpeed();
    tm.bandwidth = 64.0;
    const TaskAllocation alloc = alloc::roundRobin(g, cube, 13);
    const TimeBounds tb =
        computeTimeBounds(g, alloc, tm, 3.0 * tm.tauC(g));
    const IntervalSet ivs(tb);
    const AssignPathsResult r =
        assignPaths(g, cube, alloc, tb, ivs);
    ASSERT_EQ(r.assignment.paths.size(), tb.messages.size());
    for (std::size_t i = 0; i < tb.messages.size(); ++i) {
        const Message &m = g.message(tb.messages[i].msg);
        const Path &p = r.assignment.paths[i];
        EXPECT_TRUE(cube.validPath(p));
        EXPECT_EQ(p.source(), alloc.nodeOf(m.src));
        EXPECT_EQ(p.destination(), alloc.nodeOf(m.dst));
        EXPECT_EQ(static_cast<int>(p.hops()),
                  cube.distance(p.source(), p.destination()));
    }
}

/**
 * Property: across fabrics and loads, AssignPaths never ends up
 * above the LSD-to-MSD baseline.
 */
class AssignPathsProperty : public ::testing::TestWithParam<double>
{};

TEST_P(AssignPathsProperty, NeverWorseThanRoutingFunction)
{
    const double factor = GetParam();
    const TaskFlowGraph g = buildDvbTfg({});
    DvbParams dp;
    TimingModel tm;
    tm.apSpeed = dp.matchedApSpeed();

    const auto cube = GeneralizedHypercube::binaryCube(6);
    const Torus torus({8, 8});
    for (const Topology *topo :
         std::initializer_list<const Topology *>{&cube, &torus}) {
        for (double bw : {64.0, 128.0}) {
            tm.bandwidth = bw;
            const TaskAllocation alloc =
                alloc::roundRobin(g, *topo, 13);
            const TimeBounds tb = computeTimeBounds(
                g, alloc, tm, factor * tm.tauC(g));
            const IntervalSet ivs(tb);
            UtilizationAnalyzer ua(tb, ivs, *topo);
            const double lsd =
                ua.analyze(lsdToMsdAssignment(g, *topo, alloc, tb))
                    .peak;
            const double ap =
                assignPaths(g, *topo, alloc, tb, ivs).report.peak;
            EXPECT_LE(ap, lsd + 1e-9)
                << topo->name() << " bw=" << bw
                << " factor=" << factor;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(LoadFactors, AssignPathsProperty,
                         ::testing::Values(1.0, 1.8, 2.7, 5.0));

/**
 * Determinism regression: the parallel restart scheme seeds every
 * restart from its index, so assignPaths must produce the identical
 * PathAssignment and peak U for any thread count. Pins the contract
 * the parallel compiler relies on (DVB on the binary 6-cube and the
 * 8x8 torus).
 */
TEST(AssignPathsTest, DeterministicAcrossThreadCounts)
{
    const TaskFlowGraph g = buildDvbTfg({});
    DvbParams dp;
    TimingModel tm;
    tm.apSpeed = dp.matchedApSpeed();
    tm.bandwidth = 128.0;

    const auto cube = GeneralizedHypercube::binaryCube(6);
    const Torus torus({8, 8});
    AssignPathsOptions opts;
    opts.maxRestarts = 4;
    opts.seed = 987654321;

    for (const Topology *topo :
         std::initializer_list<const Topology *>{&cube, &torus}) {
        const TaskAllocation alloc = alloc::roundRobin(g, *topo, 13);
        const TimeBounds tb =
            computeTimeBounds(g, alloc, tm, 2.0 * tm.tauC(g));
        const IntervalSet ivs(tb);

        ThreadPool::setGlobalSize(1);
        const AssignPathsResult serial =
            assignPaths(g, *topo, alloc, tb, ivs, opts);

        for (std::size_t threads : {2u, 8u}) {
            ThreadPool::setGlobalSize(threads);
            const AssignPathsResult par =
                assignPaths(g, *topo, alloc, tb, ivs, opts);
            EXPECT_DOUBLE_EQ(par.report.peak, serial.report.peak)
                << topo->name() << " threads=" << threads;
            EXPECT_EQ(par.report.position == serial.report.position,
                      true)
                << topo->name() << " threads=" << threads;
            EXPECT_EQ(par.restarts, serial.restarts);
            EXPECT_EQ(par.reroutes, serial.reroutes);
            ASSERT_EQ(par.assignment.paths.size(),
                      serial.assignment.paths.size());
            for (std::size_t i = 0;
                 i < serial.assignment.paths.size(); ++i) {
                EXPECT_EQ(par.assignment.paths[i],
                          serial.assignment.paths[i])
                    << topo->name() << " threads=" << threads
                    << " message " << i;
            }
        }
        ThreadPool::setGlobalSize(1);
    }
}

/** Re-running with the same seed is reproducible (same process). */
TEST(AssignPathsTest, SameSeedSameResult)
{
    ParallelFixture f;
    const TimeBounds tb =
        computeTimeBounds(f.g, f.alloc, f.tm, 40.0);
    const IntervalSet ivs(tb);
    AssignPathsOptions opts;
    opts.seed = 2024;
    const AssignPathsResult a =
        assignPaths(f.g, f.cube, f.alloc, tb, ivs, opts);
    const AssignPathsResult b =
        assignPaths(f.g, f.cube, f.alloc, tb, ivs, opts);
    EXPECT_DOUBLE_EQ(a.report.peak, b.report.peak);
    EXPECT_EQ(a.assignment.paths.size(), b.assignment.paths.size());
    for (std::size_t i = 0; i < a.assignment.paths.size(); ++i)
        EXPECT_EQ(a.assignment.paths[i], b.assignment.paths[i]);
}

TEST(SubsetsTest, SharedLinkAndIntervalRelatesMessages)
{
    ParallelFixture f;
    const TimeBounds tb =
        computeTimeBounds(f.g, f.alloc, f.tm, 40.0);
    const IntervalSet ivs(tb);
    PathAssignment pa;
    pa.paths.push_back(f.cube.makePath({0, 1, 3}));
    pa.paths.push_back(f.cube.makePath({0, 1, 3}));
    const auto subsets = computeMaximalSubsets(tb, ivs, pa);
    ASSERT_EQ(subsets.size(), 1u);
    EXPECT_EQ(subsets[0].members.size(), 2u);
    EXPECT_EQ(subsets[0].links.size(), 2u);
}

TEST(SubsetsTest, DisjointPathsSeparateSubsets)
{
    ParallelFixture f;
    const TimeBounds tb =
        computeTimeBounds(f.g, f.alloc, f.tm, 40.0);
    const IntervalSet ivs(tb);
    PathAssignment pa;
    pa.paths.push_back(f.cube.makePath({0, 1, 3}));
    pa.paths.push_back(f.cube.makePath({0, 2, 3}));
    const auto subsets = computeMaximalSubsets(tb, ivs, pa);
    EXPECT_EQ(subsets.size(), 2u);
}

TEST(SubsetsTest, SharedLinkDifferentIntervalsUnrelated)
{
    // Chain A -> B -> C mapped so both messages use link 0-1 but in
    // different windows: they are NOT related.
    TaskFlowGraph g;
    const TaskId a = g.addTask("A", 100.0);
    const TaskId b = g.addTask("B", 100.0);
    const TaskId c = g.addTask("C", 100.0);
    g.addMessage("m1", a, b, 640.0);
    g.addMessage("m2", b, c, 640.0);
    TimingModel tm;
    tm.apSpeed = 10.0;
    tm.bandwidth = 64.0;
    const Torus ring({4});
    TaskAllocation alloc(3, 4);
    alloc.assign(0, 0);
    alloc.assign(1, 1);
    alloc.assign(2, 0);
    const TimeBounds tb = computeTimeBounds(g, alloc, tm, 40.0);
    const IntervalSet ivs(tb);
    PathAssignment pa;
    pa.paths.push_back(ring.makePath({0, 1})); // [10,20)
    pa.paths.push_back(ring.makePath({1, 0})); // [30,40)
    const auto subsets = computeMaximalSubsets(tb, ivs, pa);
    EXPECT_EQ(subsets.size(), 2u);
}

TEST(SubsetsTest, TransitivityMergesChains)
{
    // m1 shares with m2, m2 shares with m3 => all three together,
    // even if m1 and m3 share nothing.
    TaskFlowGraph g;
    std::vector<TaskId> src, dst;
    for (int i = 0; i < 3; ++i) {
        src.push_back(g.addTask("s" + std::to_string(i), 100.0));
        dst.push_back(g.addTask("d" + std::to_string(i), 100.0));
        g.addMessage("m" + std::to_string(i), src[i], dst[i],
                     320.0);
    }
    TimingModel tm;
    tm.apSpeed = 10.0;
    tm.bandwidth = 64.0;
    const Torus ring({8});
    TaskAllocation alloc(6, 8);
    // m0: 0->2, m1: 1->3, m2: 2->4; consecutive routes overlap.
    alloc.assign(src[0], 0);
    alloc.assign(dst[0], 2);
    alloc.assign(src[1], 1);
    alloc.assign(dst[1], 3);
    alloc.assign(src[2], 2);
    alloc.assign(dst[2], 4);
    const TimeBounds tb = computeTimeBounds(g, alloc, tm, 60.0);
    const IntervalSet ivs(tb);
    PathAssignment pa;
    pa.paths.push_back(ring.makePath({0, 1, 2}));
    pa.paths.push_back(ring.makePath({1, 2, 3}));
    pa.paths.push_back(ring.makePath({2, 3, 4}));
    const auto subsets = computeMaximalSubsets(tb, ivs, pa);
    ASSERT_EQ(subsets.size(), 1u);
    EXPECT_EQ(subsets[0].members.size(), 3u);
}

TEST(SubsetsTest, SubsetsPartitionAllMessages)
{
    const TaskFlowGraph g = buildDvbTfg({});
    const Torus torus({4, 4, 4});
    DvbParams dp;
    TimingModel tm;
    tm.apSpeed = dp.matchedApSpeed();
    tm.bandwidth = 128.0;
    const TaskAllocation alloc = alloc::roundRobin(g, torus, 13);
    const TimeBounds tb =
        computeTimeBounds(g, alloc, tm, 2.0 * tm.tauC(g));
    const IntervalSet ivs(tb);
    const AssignPathsResult r =
        assignPaths(g, torus, alloc, tb, ivs);
    const auto subsets =
        computeMaximalSubsets(tb, ivs, r.assignment);
    std::vector<int> seen(tb.messages.size(), 0);
    for (const MessageSubset &s : subsets)
        for (std::size_t i : s.members)
            ++seen[i];
    for (int c : seen)
        EXPECT_EQ(c, 1);
}

} // namespace
} // namespace srsim
