/**
 * @file
 * Historical alias: the minimal JSON parser started life here as a
 * test-only helper; the daemon's WAL reader promoted it into
 * src/util. Tests keep including this header (and the srsim::
 * jsonmini namespace) unchanged.
 */

#ifndef SRSIM_TESTS_JSON_MINI_HH_
#define SRSIM_TESTS_JSON_MINI_HH_

#include "util/json_read.hh"

#endif // SRSIM_TESTS_JSON_MINI_HH_
