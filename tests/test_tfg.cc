/**
 * @file
 * Tests for the task-flow-graph substrate: graph construction,
 * precedence, timing, the DVB workload, and the random generator.
 */

#include <sstream>

#include <gtest/gtest.h>

#include "tfg/dvb.hh"
#include "tfg/random_tfg.hh"
#include "tfg/tfg.hh"
#include "tfg/timing.hh"
#include "util/rng.hh"

namespace srsim {
namespace {

TaskFlowGraph
diamond()
{
    // a -> b, a -> c, b -> d, c -> d.
    TaskFlowGraph g;
    const TaskId a = g.addTask("a", 100.0);
    const TaskId b = g.addTask("b", 200.0);
    const TaskId c = g.addTask("c", 150.0);
    const TaskId d = g.addTask("d", 120.0);
    g.addMessage("ab", a, b, 64.0);
    g.addMessage("ac", a, c, 128.0);
    g.addMessage("bd", b, d, 64.0);
    g.addMessage("cd", c, d, 256.0);
    return g;
}

TEST(TfgTest, BasicCountsAndAccessors)
{
    const TaskFlowGraph g = diamond();
    EXPECT_EQ(g.numTasks(), 4);
    EXPECT_EQ(g.numMessages(), 4);
    EXPECT_EQ(g.task(1).name, "b");
    EXPECT_EQ(g.message(3).name, "cd");
    EXPECT_EQ(g.incoming(3).size(), 2u);
    EXPECT_EQ(g.outgoing(0).size(), 2u);
}

TEST(TfgTest, InputAndOutputTasks)
{
    const TaskFlowGraph g = diamond();
    EXPECT_EQ(g.inputTasks(), std::vector<TaskId>{0});
    EXPECT_EQ(g.outputTasks(), std::vector<TaskId>{3});
}

TEST(TfgTest, RejectsBadInputs)
{
    TaskFlowGraph g;
    EXPECT_THROW(g.addTask("zero", 0.0), FatalError);
    const TaskId a = g.addTask("a", 1.0);
    const TaskId b = g.addTask("b", 1.0);
    EXPECT_THROW(g.addMessage("self", a, a, 10.0), FatalError);
    EXPECT_THROW(g.addMessage("empty", a, b, 0.0), FatalError);
}

TEST(TfgTest, CycleDetection)
{
    TaskFlowGraph g;
    const TaskId a = g.addTask("a", 1.0);
    const TaskId b = g.addTask("b", 1.0);
    const TaskId c = g.addTask("c", 1.0);
    g.addMessage("ab", a, b, 1.0);
    g.addMessage("bc", b, c, 1.0);
    EXPECT_TRUE(g.isAcyclic());
    g.addMessage("ca", c, a, 1.0);
    EXPECT_FALSE(g.isAcyclic());
    EXPECT_THROW(g.topologicalOrder(), FatalError);
}

TEST(TfgTest, TopologicalOrderRespectsPrecedence)
{
    const TaskFlowGraph g = diamond();
    const auto order = g.topologicalOrder();
    ASSERT_EQ(order.size(), 4u);
    std::vector<int> pos(4);
    for (int i = 0; i < 4; ++i)
        pos[static_cast<std::size_t>(order[
            static_cast<std::size_t>(i)])] = i;
    for (const Message &m : g.messages())
        EXPECT_LT(pos[static_cast<std::size_t>(m.src)],
                  pos[static_cast<std::size_t>(m.dst)]);
}

TEST(TfgTest, MaxWeights)
{
    const TaskFlowGraph g = diamond();
    EXPECT_DOUBLE_EQ(g.maxOperations(), 200.0);
    EXPECT_DOUBLE_EQ(g.maxBytes(), 256.0);
}

TEST(TfgTest, DotOutputMentionsEveryTaskAndMessage)
{
    const TaskFlowGraph g = diamond();
    std::ostringstream oss;
    g.writeDot(oss);
    const std::string s = oss.str();
    for (const Task &t : g.tasks())
        EXPECT_NE(s.find(t.name), std::string::npos);
    for (const Message &m : g.messages())
        EXPECT_NE(s.find(m.name), std::string::npos);
}

TEST(TimingTest, TaskAndMessageTimes)
{
    const TaskFlowGraph g = diamond();
    TimingModel tm;
    tm.apSpeed = 10.0;
    tm.bandwidth = 64.0;
    EXPECT_DOUBLE_EQ(tm.taskTime(g, 0), 10.0);
    EXPECT_DOUBLE_EQ(tm.messageTime(g, 3), 4.0);
    EXPECT_DOUBLE_EQ(tm.tauC(g), 20.0);
    EXPECT_DOUBLE_EQ(tm.tauM(g), 4.0);
}

TEST(TimingTest, EagerScheduleIsCriticalPath)
{
    const TaskFlowGraph g = diamond();
    TimingModel tm;
    tm.apSpeed = 10.0;
    tm.bandwidth = 64.0;
    const InvocationTiming t = computeInvocationTiming(g, tm);
    // a: [0,10]; ab arrives 11 -> b: [11,31]; ac arrives 12 ->
    // c: [12,27]; bd arrives 32, cd arrives 31 -> d: [32,44].
    EXPECT_DOUBLE_EQ(t.eagerStart[1], 11.0);
    EXPECT_DOUBLE_EQ(t.eagerStart[2], 12.0);
    EXPECT_DOUBLE_EQ(t.eagerStart[3], 32.0);
    EXPECT_DOUBLE_EQ(t.criticalPath, 44.0);
}

TEST(TimingTest, WindowScheduleUsesTauCPerMessage)
{
    const TaskFlowGraph g = diamond();
    TimingModel tm;
    tm.apSpeed = 10.0;
    tm.bandwidth = 64.0;
    const InvocationTiming t = computeInvocationTiming(g, tm);
    // tau_c = 20. a: [0,10]; b: [30,50]; c: [30,45]; d starts at
    // max(50,45)+20 = 70, ends 82.
    EXPECT_DOUBLE_EQ(t.windowStart[1], 30.0);
    EXPECT_DOUBLE_EQ(t.windowStart[3], 70.0);
    EXPECT_DOUBLE_EQ(t.windowLatency, 82.0);
    EXPECT_GE(t.windowLatency, t.criticalPath);
}

TEST(DvbTest, StructureMatchesFigure1)
{
    DvbParams params;
    const TaskFlowGraph g = buildDvbTfg(params);
    // 1 input + n models + 8 chain tasks.
    EXPECT_EQ(g.numTasks(), 1 + params.numModels + 8);
    // n a-messages + n b-messages + 7 chain messages.
    EXPECT_EQ(g.numMessages(), 2 * params.numModels + 7);
    EXPECT_TRUE(g.isAcyclic());
    EXPECT_EQ(g.inputTasks().size(), 1u);
    EXPECT_EQ(g.outputTasks().size(), 1u);
    EXPECT_DOUBLE_EQ(g.maxOperations(), params.inputOps);
    EXPECT_DOUBLE_EQ(g.maxBytes(), params.bytesC);
}

TEST(DvbTest, LegibleConstantsOfFigure1)
{
    const DvbParams p;
    EXPECT_DOUBLE_EQ(p.inputOps, 1925.0);
    EXPECT_DOUBLE_EQ(p.modelOps, 400.0);
    EXPECT_DOUBLE_EQ(p.bytesA, 192.0);
    EXPECT_DOUBLE_EQ(p.bytesB, 1536.0);
    EXPECT_DOUBLE_EQ(p.bytesC, 3200.0);
    EXPECT_DOUBLE_EQ(p.bytesH, 768.0);
    EXPECT_DOUBLE_EQ(p.bytesI, 384.0);
}

TEST(DvbTest, MatchedSpeedCalibratesTauMOverTauC)
{
    DvbParams params;
    const TaskFlowGraph g = buildDvbTfg(params);
    TimingModel tm;
    tm.apSpeed = params.matchedApSpeed();
    tm.bandwidth = 64.0;
    EXPECT_NEAR(tm.tauM(g) / tm.tauC(g), 1.0, 1e-12);
    tm.bandwidth = 128.0;
    EXPECT_NEAR(tm.tauM(g) / tm.tauC(g), 0.5, 1e-12);
}

TEST(DvbTest, RejectsBadParameters)
{
    DvbParams p;
    p.numModels = 0;
    EXPECT_THROW(buildDvbTfg(p), FatalError);
    DvbParams q;
    q.chainOps = {1.0, 2.0};
    EXPECT_THROW(buildDvbTfg(q), FatalError);
}

TEST(RandomTfgTest, RejectsBadParameters)
{
    Rng rng(1);
    RandomTfgParams p;
    p.layers = 1;
    EXPECT_THROW(buildRandomTfg(p, rng), FatalError);
    RandomTfgParams q;
    q.minWidth = 3;
    q.maxWidth = 2;
    EXPECT_THROW(buildRandomTfg(q, rng), FatalError);
}

class RandomTfgProperty : public ::testing::TestWithParam<int>
{};

TEST_P(RandomTfgProperty, GeneratedGraphsAreWellFormed)
{
    Rng rng(static_cast<std::uint64_t>(GetParam()));
    RandomTfgParams p;
    p.layers = rng.uniformInt(2, 6);
    p.maxWidth = rng.uniformInt(1, 5);
    p.minWidth = 1;
    const TaskFlowGraph g = buildRandomTfg(p, rng);

    EXPECT_TRUE(g.isAcyclic());
    EXPECT_GE(g.numTasks(), p.layers);
    EXPECT_FALSE(g.inputTasks().empty());
    EXPECT_FALSE(g.outputTasks().empty());
    // Weights within the configured ranges.
    for (const Task &t : g.tasks()) {
        EXPECT_GE(t.operations, p.minOps);
        EXPECT_LE(t.operations, p.maxOps);
    }
    for (const Message &m : g.messages()) {
        EXPECT_GE(m.bytes, p.minBytes);
        EXPECT_LE(m.bytes, p.maxBytes);
    }
    // The window schedule dominates the eager one.
    TimingModel tm;
    tm.apSpeed = 10.0;
    tm.bandwidth = 64.0;
    const InvocationTiming t = computeInvocationTiming(g, tm);
    EXPECT_GE(t.windowLatency + 1e-9, t.criticalPath);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomTfgProperty,
                         ::testing::Range(1, 21));

} // namespace
} // namespace srsim
