/**
 * @file
 * Tests for the metrics registry: counters, gauges, fixed-bucket
 * histogram percentiles, the per-link utilization timeline, the
 * name-sorted counter snapshot, and the JSON export (validated with
 * the same mini-parser the trace tests use).
 */

#include <cmath>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "json_mini.hh"
#include "metrics/metrics.hh"
#include "util/logging.hh"

namespace srsim {
namespace {

class MetricsTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        metrics::Registry::setEnabled(false);
        metrics::Registry::global().clear();
    }

    void
    TearDown() override
    {
        metrics::Registry::setEnabled(false);
        metrics::Registry::global().clear();
    }
};

TEST_F(MetricsTest, DisabledByDefault)
{
    EXPECT_FALSE(SRSIM_METRICS_ENABLED());
    int ran = 0;
    SRSIM_METRICS_IF(++ran);
    EXPECT_EQ(ran, 0);
    metrics::Registry::setEnabled(true);
    SRSIM_METRICS_IF(++ran);
    EXPECT_EQ(ran, 1);
}

TEST_F(MetricsTest, CounterAccumulates)
{
    auto &reg = metrics::Registry::global();
    auto &c = reg.counter("test.counter");
    c.add();
    c.add(41);
    EXPECT_EQ(c.value(), 42u);
    // Same name resolves to the same counter.
    EXPECT_EQ(reg.counter("test.counter").value(), 42u);
}

TEST_F(MetricsTest, GaugeKeepsLastValue)
{
    auto &g = metrics::Registry::global().gauge("test.gauge");
    g.set(1.5);
    g.set(-3.25);
    EXPECT_DOUBLE_EQ(g.value(), -3.25);
}

TEST_F(MetricsTest, HistogramStatsAndPercentiles)
{
    auto &h = metrics::Registry::global().histogram(
        "test.hist", {1.0, 2.0, 4.0, 8.0, 16.0});
    for (int v = 1; v <= 10; ++v)
        h.add(static_cast<double>(v));
    EXPECT_EQ(h.count(), 10u);
    EXPECT_DOUBLE_EQ(h.min(), 1.0);
    EXPECT_DOUBLE_EQ(h.max(), 10.0);
    EXPECT_NEAR(h.mean(), 5.5, 1e-12);
    // Bucketed percentiles are approximate: p50 of 1..10 must land
    // in the (4, 8] bucket, p99 in the overflow-free top range.
    const double p50 = h.percentile(50.0);
    EXPECT_GE(p50, 4.0);
    EXPECT_LE(p50, 8.0);
    EXPECT_GE(h.percentile(99.0), 8.0);
    EXPECT_LE(h.percentile(99.0), 10.0);
    EXPECT_DOUBLE_EQ(h.percentile(0.0), 1.0);
    EXPECT_DOUBLE_EQ(h.percentile(100.0), 10.0);
}

TEST_F(MetricsTest, HistogramRejectsNanAndBadBounds)
{
    auto &h = metrics::Registry::global().histogram(
        "test.hist2", metrics::Histogram::timeBucketsMs());
    EXPECT_THROW(h.add(std::nan("")), PanicError);
    EXPECT_THROW(metrics::Histogram({2.0, 1.0}), PanicError);
    EXPECT_THROW(metrics::Histogram({}), PanicError);
}

TEST_F(MetricsTest, TimelineUtilization)
{
    auto &tl = metrics::Registry::global().timeline("test.links");
    tl.occupy(0, 0.0, 25.0);
    tl.occupy(0, 50.0, 75.0);
    tl.occupy(2, 0.0, 100.0);
    EXPECT_EQ(tl.numLinks(), 3u);
    EXPECT_DOUBLE_EQ(tl.horizon(), 100.0);
    const std::vector<double> u = tl.utilization();
    ASSERT_EQ(u.size(), 3u);
    EXPECT_NEAR(u[0], 0.5, 1e-12);
    EXPECT_NEAR(u[1], 0.0, 1e-12);
    EXPECT_NEAR(u[2], 1.0, 1e-12);
    // Explicit horizon overrides the observed one.
    EXPECT_NEAR(tl.utilization(200.0)[2], 0.5, 1e-12);
}

TEST_F(MetricsTest, CounterSnapshotIsNameSorted)
{
    auto &reg = metrics::Registry::global();
    reg.counter("zeta").add(3);
    reg.counter("alpha").add(1);
    reg.counter("mid").add(2);
    const auto snap = reg.counterSnapshot();
    ASSERT_EQ(snap.size(), 3u);
    EXPECT_EQ(snap[0].first, "alpha");
    EXPECT_EQ(snap[1].first, "mid");
    EXPECT_EQ(snap[2].first, "zeta");
    EXPECT_EQ(snap[2].second, 3u);
}

TEST_F(MetricsTest, JsonExportIsValidAndComplete)
{
    auto &reg = metrics::Registry::global();
    reg.counter("c.one").add(7);
    reg.gauge("g.one").set(2.5);
    auto &h = reg.histogram("h.one", {1.0, 10.0, 100.0});
    h.add(5.0);
    h.add(50.0);
    auto &tl = reg.timeline("t.one");
    tl.occupy(1, 0.0, 10.0);

    std::ostringstream oss;
    reg.exportJson(oss);
    const jsonmini::ValuePtr doc = jsonmini::parse(oss.str());

    EXPECT_EQ(doc->at("counters").at("c.one").number, 7.0);
    EXPECT_DOUBLE_EQ(doc->at("gauges").at("g.one").number, 2.5);

    const auto &hj = doc->at("histograms").at("h.one");
    EXPECT_EQ(hj.at("count").number, 2.0);
    EXPECT_DOUBLE_EQ(hj.at("min").number, 5.0);
    EXPECT_DOUBLE_EQ(hj.at("max").number, 50.0);
    EXPECT_TRUE(hj.has("p50"));
    EXPECT_TRUE(hj.has("p95"));
    EXPECT_TRUE(hj.has("p99"));

    const auto &tj = doc->at("timelines").at("t.one");
    EXPECT_DOUBLE_EQ(tj.at("horizon_us").number, 10.0);
    ASSERT_GE(tj.at("links").array.size(), 1u);
}

TEST_F(MetricsTest, ClearRemovesEverything)
{
    auto &reg = metrics::Registry::global();
    reg.counter("gone").add(5);
    reg.clear();
    EXPECT_EQ(reg.counter("gone").value(), 0u);
    EXPECT_EQ(reg.counterSnapshot().size(), 1u);
}

} // namespace
} // namespace srsim
