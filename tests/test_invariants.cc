/**
 * @file
 * Cross-cutting invariant suites that exercise the whole stack on
 * randomized workloads: wormhole conservation, schedule/printing
 * round trips, determinism of the seeded heuristics, and agreement
 * between the three schedule checkers (static verifier, analytic
 * executor, CP-level simulator).
 */

#include <sstream>

#include <gtest/gtest.h>

#include "core/coupled_allocation.hh"
#include "core/sr_compiler.hh"
#include "core/sr_executor.hh"
#include "cpsim/cp_simulator.hh"
#include "mapping/allocation.hh"
#include "tfg/random_tfg.hh"
#include "tfg/timing.hh"
#include "topology/generalized_hypercube.hh"
#include "topology/torus.hh"
#include "wormhole/wormhole.hh"

namespace srsim {
namespace {

/** Random mapped workload with tau_m <= tau_c guaranteed. */
struct RandomWorkload
{
    TaskFlowGraph g;
    TimingModel tm;
    TaskAllocation alloc{1, 1};

    RandomWorkload(Rng &rng, const Topology &topo)
    {
        RandomTfgParams rp;
        rp.layers = rng.uniformInt(2, 4);
        rp.maxWidth = rng.uniformInt(1, 4);
        rp.minOps = 400.0;
        rp.maxOps = 1600.0;
        rp.minBytes = 64.0;
        rp.maxBytes = 2048.0;
        g = buildRandomTfg(rp, rng);
        tm.apSpeed = 12.5;   // min task 32 us >= max message 32 us
        tm.bandwidth = 64.0;
        alloc = alloc::random(g, topo, rng);
    }
};

class WormholeInvariants : public ::testing::TestWithParam<int>
{};

TEST_P(WormholeInvariants, EveryInvocationCompletesUnlessDeadlock)
{
    Rng rng(static_cast<std::uint64_t>(GetParam()));
    const Torus topo({4, 4});
    RandomWorkload w(rng, topo);

    WormholeSimulator sim(w.g, topo, w.alloc, w.tm);
    WormholeConfig cfg;
    cfg.inputPeriod =
        w.tm.tauC(w.g) * rng.uniformReal(1.0, 3.0);
    cfg.invocations = 30;
    cfg.warmup = 5;
    const WormholeResult r = sim.run(cfg);

    if (r.deadlocked) {
        EXPECT_LT(r.completedInvocations, cfg.invocations);
        return;
    }
    // Conservation: every invocation produced exactly one record,
    // in order, with monotone completion times.
    ASSERT_EQ(r.records.size(),
              static_cast<std::size_t>(cfg.invocations));
    for (std::size_t j = 0; j < r.records.size(); ++j) {
        EXPECT_EQ(r.records[j].index, static_cast<int>(j));
        EXPECT_GE(r.records[j].latency(), 0.0);
        if (j > 0)
            EXPECT_GT(r.records[j].complete,
                      r.records[j - 1].complete);
    }
    // Throughput conservation: the mean output interval cannot
    // exceed... equal the input period over a long run unless work
    // queues unboundedly; allow a generous margin.
    const SeriesStats s = r.outputIntervals(cfg.warmup);
    EXPECT_NEAR(s.mean(), cfg.inputPeriod,
                0.25 * cfg.inputPeriod);
}

TEST_P(WormholeInvariants, VirtualChannelRunsAlsoConserve)
{
    Rng rng(static_cast<std::uint64_t>(GetParam()) + 1000);
    const GeneralizedHypercube topo =
        GeneralizedHypercube::binaryCube(4);
    RandomWorkload w(rng, topo);

    WormholeSimulator sim(w.g, topo, w.alloc, w.tm);
    WormholeConfig cfg;
    cfg.inputPeriod = 2.5 * w.tm.tauC(w.g);
    cfg.invocations = 20;
    cfg.warmup = 4;
    cfg.virtualChannels = 2;
    const WormholeResult r = sim.run(cfg);
    ASSERT_FALSE(r.deadlocked);
    EXPECT_EQ(r.records.size(),
              static_cast<std::size_t>(cfg.invocations));
}

INSTANTIATE_TEST_SUITE_P(Seeds, WormholeInvariants,
                         ::testing::Range(1, 11));

class CheckerAgreement : public ::testing::TestWithParam<int>
{};

TEST_P(CheckerAgreement, VerifierExecutorAndCpSimAgree)
{
    Rng rng(static_cast<std::uint64_t>(GetParam()) * 31);
    const GeneralizedHypercube topo =
        GeneralizedHypercube::binaryCube(4);
    RandomWorkload w(rng, topo);

    SrCompilerConfig cfg;
    cfg.inputPeriod =
        w.tm.tauC(w.g) * rng.uniformReal(1.2, 3.0);
    cfg.feedbackRounds = 1;
    const SrCompileResult r =
        compileScheduledRouting(w.g, topo, w.alloc, w.tm, cfg);
    if (!r.feasible)
        return; // nothing to cross-check

    // 1. Static verifier already ran inside the compiler.
    EXPECT_TRUE(r.verification.ok);

    // 2. Analytic executor.
    const SrExecutionResult ana = executeSchedule(
        w.g, w.alloc, w.tm, r.bounds, r.omega, 20);
    EXPECT_TRUE(ana.consistent(4));

    // 3. CP-hardware simulator, invocation-by-invocation equal to
    //    the analytic executor.
    CpSimConfig ccfg;
    ccfg.invocations = 20;
    ccfg.warmup = 4;
    const CpSimResult dyn = simulateCps(
        w.g, topo, w.alloc, w.tm, r.bounds, r.omega, ccfg);
    EXPECT_TRUE(dyn.ok()) << (dyn.violations.empty()
                                  ? ""
                                  : dyn.violations.front());
    ASSERT_EQ(dyn.completions.size(), ana.completions.size());
    for (std::size_t j = 0; j < dyn.completions.size(); ++j)
        EXPECT_NEAR(dyn.completions[j], ana.completions[j], 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CheckerAgreement,
                         ::testing::Range(1, 13));

TEST(DeterminismTest, CompilerIsDeterministicGivenSeed)
{
    Rng rng(5);
    const Torus topo({4, 4});
    RandomWorkload w(rng, topo);
    SrCompilerConfig cfg;
    cfg.inputPeriod = 2.0 * w.tm.tauC(w.g);
    cfg.assign.seed = 777;

    const SrCompileResult a =
        compileScheduledRouting(w.g, topo, w.alloc, w.tm, cfg);
    const SrCompileResult b =
        compileScheduledRouting(w.g, topo, w.alloc, w.tm, cfg);
    ASSERT_EQ(a.feasible, b.feasible);
    if (!a.feasible)
        return;
    ASSERT_EQ(a.omega.segments.size(), b.omega.segments.size());
    for (std::size_t i = 0; i < a.omega.segments.size(); ++i) {
        EXPECT_EQ(a.omega.paths.pathFor(i),
                  b.omega.paths.pathFor(i));
        ASSERT_EQ(a.omega.segments[i].size(),
                  b.omega.segments[i].size());
        for (std::size_t s = 0; s < a.omega.segments[i].size();
             ++s)
            EXPECT_TRUE(a.omega.segments[i][s] ==
                        b.omega.segments[i][s]);
    }
}

TEST(DeterminismTest, CoupledAllocationIsSeedDeterministic)
{
    const auto cube = GeneralizedHypercube::binaryCube(5);
    Rng mk(2);
    RandomWorkload w(mk, cube);
    const TaskAllocation seed = alloc::greedy(w.g, cube);
    const Time period = 2.0 * w.tm.tauC(w.g);

    Rng r1(42), r2(42);
    const auto a = coupleAllocationWithPaths(w.g, cube, w.tm,
                                             period, seed, r1);
    const auto b = coupleAllocationWithPaths(w.g, cube, w.tm,
                                             period, seed, r2);
    EXPECT_EQ(a.accepted, b.accepted);
    EXPECT_DOUBLE_EQ(a.peakUtilization, b.peakUtilization);
    for (TaskId t = 0; t < w.g.numTasks(); ++t)
        EXPECT_EQ(a.allocation.nodeOf(t), b.allocation.nodeOf(t));
}

TEST(PrintingTest, NodeSchedulePrintMentionsPortsAndMessages)
{
    Rng rng(9);
    const auto cube = GeneralizedHypercube::binaryCube(4);
    RandomWorkload w(rng, cube);
    SrCompilerConfig cfg;
    cfg.inputPeriod = 2.5 * w.tm.tauC(w.g);
    cfg.feedbackRounds = 2;
    const SrCompileResult r =
        compileScheduledRouting(w.g, cube, w.alloc, w.tm, cfg);
    if (!r.feasible)
        GTEST_SKIP() << "workload infeasible for this seed";

    const auto nodes = deriveNodeSchedules(w.g, cube, w.alloc,
                                           r.bounds, r.omega);
    std::size_t printed = 0;
    for (const NodeSchedule &ns : nodes) {
        if (ns.commands.empty())
            continue;
        std::ostringstream os;
        printNodeSchedule(os, ns, w.g);
        const std::string out = os.str();
        EXPECT_NE(out.find("switching schedule"),
                  std::string::npos);
        EXPECT_NE(out.find("->"), std::string::npos);
        ++printed;
    }
    EXPECT_GT(printed, 0u);
}

} // namespace
} // namespace srsim
