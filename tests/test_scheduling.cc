/**
 * @file
 * Tests for message-interval allocation (Sec. 5.2), interval
 * scheduling via link-feasible sets (Sec. 5.3), and the node
 * switching-schedule derivation (Sec. 5.4).
 */

#include <algorithm>
#include <memory>
#include <set>

#include <gtest/gtest.h>

#include "core/interval_allocation.hh"
#include "core/interval_scheduling.hh"
#include "core/schedule.hh"
#include "mapping/allocation.hh"
#include "tfg/dvb.hh"
#include "topology/generalized_hypercube.hh"
#include "topology/torus.hh"

namespace srsim {
namespace {

/** Shared pipeline pieces for a mapped TFG at one period. */
struct Pipeline
{
    TaskFlowGraph g;
    TimingModel tm;
    std::unique_ptr<Topology> topo;
    std::unique_ptr<TaskAllocation> alloc;
    std::unique_ptr<TimeBounds> bounds;
    std::unique_ptr<IntervalSet> ivs;
    PathAssignment pa;
    std::vector<MessageSubset> subsets;

    void
    finish(Time period)
    {
        bounds = std::make_unique<TimeBounds>(
            computeTimeBounds(g, *alloc, tm, period));
        ivs = std::make_unique<IntervalSet>(*bounds);
        const AssignPathsResult r =
            assignPaths(g, *topo, *alloc, *bounds, *ivs);
        pa = r.assignment;
        subsets = computeMaximalSubsets(*bounds, *ivs, pa);
    }
};

/** Two same-window messages 0 -> 3 on a 2-cube. */
Pipeline
contendedPair(Time period, double bytes = 384.0)
{
    Pipeline p;
    const TaskId s1 = p.g.addTask("s1", 100.0);
    const TaskId s2 = p.g.addTask("s2", 100.0);
    const TaskId d1 = p.g.addTask("d1", 100.0);
    const TaskId d2 = p.g.addTask("d2", 100.0);
    p.g.addMessage("m1", s1, d1, bytes);
    p.g.addMessage("m2", s2, d2, bytes);
    p.tm.apSpeed = 10.0; // tau_c = 10
    p.tm.bandwidth = 64.0;
    p.topo = std::make_unique<GeneralizedHypercube>(
        GeneralizedHypercube::binaryCube(2));
    p.alloc = std::make_unique<TaskAllocation>(4, 4);
    p.alloc->assign(0, 0);
    p.alloc->assign(1, 0);
    p.alloc->assign(2, 3);
    p.alloc->assign(3, 3);
    p.finish(period);
    return p;
}

/** The DVB pipeline mapped on a fabric at a load factor. */
Pipeline
dvbPipeline(double periodFactor, double bandwidth)
{
    Pipeline p;
    DvbParams dp;
    p.g = buildDvbTfg(dp);
    p.tm.apSpeed = dp.matchedApSpeed();
    p.tm.bandwidth = bandwidth;
    p.topo = std::make_unique<GeneralizedHypercube>(
        GeneralizedHypercube::binaryCube(6));
    p.alloc = std::make_unique<TaskAllocation>(
        alloc::roundRobin(p.g, *p.topo, 13));
    p.finish(periodFactor * p.tm.tauC(p.g));
    return p;
}

TEST(IntervalAllocationTest, TotalAllocationEqualsDuration)
{
    Pipeline p = contendedPair(40.0);
    const IntervalAllocation ia = allocateMessageIntervals(
        *p.bounds, *p.ivs, p.pa, p.subsets);
    ASSERT_TRUE(ia.feasible);
    for (std::size_t i = 0; i < p.bounds->messages.size(); ++i) {
        EXPECT_NEAR(ia.allocation.rowSum(i),
                    p.bounds->messages[i].duration, 1e-6);
        for (std::size_t k = 0; k < p.ivs->size(); ++k) {
            if (!p.ivs->active(i, k)) {
                EXPECT_NEAR(ia.allocation.at(i, k), 0.0, 1e-9);
            }
        }
    }
}

TEST(IntervalAllocationTest, LinkCapacityConstraintHolds)
{
    Pipeline p = contendedPair(40.0);
    const IntervalAllocation ia = allocateMessageIntervals(
        *p.bounds, *p.ivs, p.pa, p.subsets);
    ASSERT_TRUE(ia.feasible);
    // (4): per (link, interval), total allocation of messages using
    // the link fits the interval.
    for (LinkId l = 0; l < p.topo->numLinks(); ++l) {
        for (std::size_t k = 0; k < p.ivs->size(); ++k) {
            Time sum = 0.0;
            for (std::size_t i = 0; i < p.bounds->messages.size();
                 ++i) {
                const auto &links = p.pa.pathFor(i).links;
                if (std::find(links.begin(), links.end(), l) !=
                    links.end())
                    sum += ia.allocation.at(i, k);
            }
            EXPECT_LE(sum, p.ivs->interval(k).length() + 1e-6);
        }
    }
    EXPECT_LE(ia.peakLoad, 1.0 + 1e-6);
}

TEST(IntervalAllocationTest, OverloadedLinkInfeasible)
{
    // Three no-slack (10 us) messages forced through one 2-node
    // fabric link inside one 10 us window: 30 us of demand, 10 us
    // of capacity.
    Pipeline p;
    for (int i = 0; i < 3; ++i) {
        const TaskId s =
            p.g.addTask("s" + std::to_string(i), 100.0);
        const TaskId d =
            p.g.addTask("d" + std::to_string(i), 100.0);
        p.g.addMessage("m" + std::to_string(i), s, d, 640.0);
    }
    p.tm.apSpeed = 10.0;
    p.tm.bandwidth = 64.0;
    p.topo = std::make_unique<GeneralizedHypercube>(
        GeneralizedHypercube::binaryCube(1));
    p.alloc = std::make_unique<TaskAllocation>(6, 2);
    for (int i = 0; i < 3; ++i) {
        p.alloc->assign(2 * i, 0);
        p.alloc->assign(2 * i + 1, 1);
    }
    p.finish(60.0);
    const IntervalAllocation ia = allocateMessageIntervals(
        *p.bounds, *p.ivs, p.pa, p.subsets);
    EXPECT_FALSE(ia.feasible);
    EXPECT_GE(ia.failedSubset, 0);
}

TEST(IntervalAllocationTest, GreedyAgreesOnEasyInstances)
{
    Pipeline p = contendedPair(40.0);
    const IntervalAllocation greedy = allocateMessageIntervals(
        *p.bounds, *p.ivs, p.pa, p.subsets,
        AllocationMethod::Greedy);
    ASSERT_TRUE(greedy.feasible);
    for (std::size_t i = 0; i < p.bounds->messages.size(); ++i)
        EXPECT_NEAR(greedy.allocation.rowSum(i),
                    p.bounds->messages[i].duration, 1e-6);
}

TEST(FeasibleSetsTest, PairwiseLinkDisjointAndMaximal)
{
    Pipeline p = dvbPipeline(2.0, 128.0);
    // Pick the busiest interval of the largest subset.
    const MessageSubset *sub = &p.subsets[0];
    for (const auto &s : p.subsets)
        if (s.members.size() > sub->members.size())
            sub = &s;
    const auto sets = maximalLinkFeasibleSets(sub->members, p.pa);
    ASSERT_FALSE(sets.empty());

    auto share_link = [&](std::size_t a, std::size_t b) {
        const auto &la = p.pa.pathFor(a).links;
        const auto &lb = p.pa.pathFor(b).links;
        for (LinkId l : la)
            if (std::find(lb.begin(), lb.end(), l) != lb.end())
                return true;
        return false;
    };

    for (const auto &set : sets) {
        // Link-feasible: no two members share a link (Def. 5.5).
        for (std::size_t i = 0; i < set.size(); ++i)
            for (std::size_t j = i + 1; j < set.size(); ++j)
                EXPECT_FALSE(share_link(set[i], set[j]));
        // Maximal: no outside member can be added.
        for (std::size_t m : sub->members) {
            if (std::find(set.begin(), set.end(), m) != set.end())
                continue;
            bool compatible = true;
            for (std::size_t s : set)
                compatible = compatible && !share_link(m, s);
            EXPECT_FALSE(compatible)
                << "set missing compatible member " << m;
        }
    }

    // Every member appears in at least one set.
    for (std::size_t m : sub->members) {
        bool found = false;
        for (const auto &set : sets)
            found = found ||
                    std::find(set.begin(), set.end(), m) != set.end();
        EXPECT_TRUE(found);
    }
}

TEST(IntervalSchedulingTest, SegmentsMatchAllocations)
{
    Pipeline p = contendedPair(40.0);
    const IntervalAllocation ia = allocateMessageIntervals(
        *p.bounds, *p.ivs, p.pa, p.subsets);
    ASSERT_TRUE(ia.feasible);
    const IntervalScheduleResult sr = scheduleIntervals(
        *p.bounds, *p.ivs, p.pa, p.subsets, ia);
    ASSERT_TRUE(sr.feasible);
    for (std::size_t i = 0; i < p.bounds->messages.size(); ++i) {
        Time total = 0.0;
        for (const TimeWindow &w : sr.segments[i])
            total += w.length();
        EXPECT_NEAR(total, p.bounds->messages[i].duration, 1e-6);
    }
}

TEST(IntervalSchedulingTest, NoLinkCarriesTwoMessagesAtOnce)
{
    Pipeline p = dvbPipeline(2.0, 128.0);
    const IntervalAllocation ia = allocateMessageIntervals(
        *p.bounds, *p.ivs, p.pa, p.subsets);
    ASSERT_TRUE(ia.feasible);
    const IntervalScheduleResult sr = scheduleIntervals(
        *p.bounds, *p.ivs, p.pa, p.subsets, ia);
    ASSERT_TRUE(sr.feasible);

    for (LinkId l = 0; l < p.topo->numLinks(); ++l) {
        std::vector<TimeWindow> wins;
        for (std::size_t i = 0; i < p.bounds->messages.size();
             ++i) {
            const auto &links = p.pa.pathFor(i).links;
            if (std::find(links.begin(), links.end(), l) ==
                links.end())
                continue;
            wins.insert(wins.end(), sr.segments[i].begin(),
                        sr.segments[i].end());
        }
        std::sort(wins.begin(), wins.end(),
                  [](const TimeWindow &a, const TimeWindow &b) {
                      return a.start < b.start;
                  });
        for (std::size_t w = 1; w < wins.size(); ++w)
            EXPECT_TRUE(timeLe(wins[w - 1].end, wins[w].start));
    }
}

TEST(IntervalSchedulingTest, SegmentsRespectTimeBounds)
{
    Pipeline p = dvbPipeline(1.5, 128.0);
    const IntervalAllocation ia = allocateMessageIntervals(
        *p.bounds, *p.ivs, p.pa, p.subsets);
    ASSERT_TRUE(ia.feasible);
    const IntervalScheduleResult sr = scheduleIntervals(
        *p.bounds, *p.ivs, p.pa, p.subsets, ia);
    ASSERT_TRUE(sr.feasible);
    for (std::size_t i = 0; i < p.bounds->messages.size(); ++i) {
        for (const TimeWindow &w : sr.segments[i]) {
            bool inside = false;
            for (const TimeWindow &win :
                 p.bounds->messages[i].windows)
                inside = inside || win.covers(w.start, w.end);
            EXPECT_TRUE(inside)
                << "segment outside bounds for message " << i;
        }
    }
}

TEST(IntervalSchedulingTest, GreedyFallbackAlsoValid)
{
    Pipeline p = contendedPair(40.0);
    const IntervalAllocation ia = allocateMessageIntervals(
        *p.bounds, *p.ivs, p.pa, p.subsets);
    ASSERT_TRUE(ia.feasible);
    IntervalSchedulingOptions opts;
    opts.method = SchedulingMethod::ListScheduling;
    const IntervalScheduleResult sr = scheduleIntervals(
        *p.bounds, *p.ivs, p.pa, p.subsets, ia, opts);
    ASSERT_TRUE(sr.feasible);
    for (std::size_t i = 0; i < p.bounds->messages.size(); ++i) {
        Time total = 0.0;
        for (const TimeWindow &w : sr.segments[i])
            total += w.length();
        EXPECT_NEAR(total, p.bounds->messages[i].duration, 1e-6);
    }
}

TEST(IntervalSchedulingTest, OverfullIntervalReported)
{
    // Two no-slack messages that must share the only link: the
    // allocation stage already fails; drive the scheduler directly
    // with a hand-made (overfull) allocation to exercise its own
    // failure path.
    Pipeline p = contendedPair(40.0, 640.0); // 10 us each
    // Force both on the same path (binary 2-cube: 0-1-3).
    auto *cube =
        dynamic_cast<GeneralizedHypercube *>(p.topo.get());
    p.pa.paths[0] = cube->makePath({0, 1, 3});
    p.pa.paths[1] = cube->makePath({0, 1, 3});
    p.subsets = computeMaximalSubsets(*p.bounds, *p.ivs, p.pa);

    IntervalAllocation ia;
    ia.feasible = true;
    ia.allocation =
        Matrix<Time>(p.bounds->messages.size(), p.ivs->size(), 0.0);
    const std::size_t k =
        p.ivs->intervalAt(p.bounds->messages[0].release);
    ia.allocation.at(0, k) = 10.0;
    ia.allocation.at(1, k) = 10.0; // 20 us into a 10 us interval
    const IntervalScheduleResult sr = scheduleIntervals(
        *p.bounds, *p.ivs, p.pa, p.subsets, ia);
    EXPECT_FALSE(sr.feasible);
    EXPECT_EQ(sr.failedInterval, static_cast<int>(k));
    EXPECT_GT(sr.overrun, 1e-6);
}

TEST(NodeScheduleTest, CommandsWirePortsAlongThePath)
{
    Pipeline p = contendedPair(40.0);
    const IntervalAllocation ia = allocateMessageIntervals(
        *p.bounds, *p.ivs, p.pa, p.subsets);
    const IntervalScheduleResult sr = scheduleIntervals(
        *p.bounds, *p.ivs, p.pa, p.subsets, ia);
    ASSERT_TRUE(sr.feasible);
    GlobalSchedule omega;
    omega.period = p.bounds->inputPeriod;
    omega.segments = sr.segments;
    omega.paths = p.pa;

    const auto nodes = deriveNodeSchedules(p.g, *p.topo, *p.alloc,
                                           *p.bounds, omega);
    ASSERT_EQ(nodes.size(),
              static_cast<std::size_t>(p.topo->numNodes()));

    // Source node commands start at the AP buffer; destination
    // commands end at it; intermediate nodes connect link to link.
    for (std::size_t i = 0; i < p.bounds->messages.size(); ++i) {
        const Path &path = p.pa.pathFor(i);
        const MessageId mid = p.bounds->messages[i].msg;
        const std::size_t nsegs = sr.segments[i].size();
        std::size_t seen = 0;
        for (const NodeSchedule &ns : nodes) {
            for (const SwitchCommand &c : ns.commands) {
                if (c.msg != mid)
                    continue;
                ++seen;
                if (ns.node == path.source()) {
                    EXPECT_EQ(c.in.kind, PortRef::Kind::ApBuffer);
                }
                if (ns.node == path.destination()) {
                    EXPECT_EQ(c.out.kind, PortRef::Kind::ApBuffer);
                }
            }
        }
        // One command per path node per segment.
        EXPECT_EQ(seen, nsegs * path.nodes.size());
    }
}

} // namespace
} // namespace srsim
