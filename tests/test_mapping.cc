/**
 * @file
 * Tests for task allocation and the allocator heuristics.
 */

#include <set>

#include <gtest/gtest.h>

#include "mapping/allocation.hh"
#include "tfg/dvb.hh"
#include "topology/generalized_hypercube.hh"
#include "topology/torus.hh"
#include "util/rng.hh"

namespace srsim {
namespace {

TaskFlowGraph
chain3()
{
    TaskFlowGraph g;
    const TaskId a = g.addTask("a", 10.0);
    const TaskId b = g.addTask("b", 10.0);
    const TaskId c = g.addTask("c", 10.0);
    g.addMessage("ab", a, b, 100.0);
    g.addMessage("bc", b, c, 100.0);
    return g;
}

TEST(AllocationTest, AssignAndQuery)
{
    TaskAllocation a(3, 8);
    EXPECT_FALSE(a.complete());
    a.assign(0, 5);
    a.assign(1, 5);
    a.assign(2, 2);
    EXPECT_TRUE(a.complete());
    EXPECT_EQ(a.nodeOf(0), 5);
    EXPECT_EQ(a.tasksAt(5), (std::vector<TaskId>{0, 1}));
    EXPECT_TRUE(a.tasksAt(3).empty());
}

TEST(AllocationTest, UnassignedTaskIsFatal)
{
    TaskAllocation a(2, 4);
    a.assign(0, 1);
    EXPECT_THROW(a.nodeOf(1), FatalError);
}

TEST(AllocationTest, CoLocationAndNetworkMessages)
{
    const TaskFlowGraph g = chain3();
    TaskAllocation a(3, 4);
    a.assign(0, 0);
    a.assign(1, 0); // a,b co-located
    a.assign(2, 3);
    EXPECT_TRUE(a.coLocated(g, 0));
    EXPECT_FALSE(a.coLocated(g, 1));
    EXPECT_EQ(a.networkMessages(g), std::vector<MessageId>{1});
}

TEST(AllocatorTest, RoundRobinStride)
{
    const TaskFlowGraph g = chain3();
    const auto c = GeneralizedHypercube::binaryCube(3);
    const TaskAllocation a = alloc::roundRobin(g, c, 3);
    EXPECT_EQ(a.nodeOf(0), 0);
    EXPECT_EQ(a.nodeOf(1), 3);
    EXPECT_EQ(a.nodeOf(2), 6);
}

TEST(AllocatorTest, RoundRobinWrapsModNodes)
{
    TaskFlowGraph g;
    for (int i = 0; i < 10; ++i)
        g.addTask("t" + std::to_string(i), 1.0);
    const auto c = GeneralizedHypercube::binaryCube(3);
    const TaskAllocation a = alloc::roundRobin(g, c, 1);
    EXPECT_EQ(a.nodeOf(9), 1); // 9 mod 8
    EXPECT_TRUE(a.complete());
}

TEST(AllocatorTest, RandomUsesDistinctNodesWhenPossible)
{
    const TaskFlowGraph g = buildDvbTfg({});
    const auto c = GeneralizedHypercube::binaryCube(6);
    Rng rng(5);
    const TaskAllocation a = alloc::random(g, c, rng);
    EXPECT_TRUE(a.complete());
    std::set<NodeId> used;
    for (TaskId t = 0; t < g.numTasks(); ++t)
        used.insert(a.nodeOf(t));
    EXPECT_EQ(used.size(), static_cast<std::size_t>(g.numTasks()));
}

TEST(AllocatorTest, GreedyPlacesCommunicatingTasksClose)
{
    const TaskFlowGraph g = chain3();
    const auto c = GeneralizedHypercube::binaryCube(4);
    const TaskAllocation a = alloc::greedy(g, c);
    EXPECT_TRUE(a.complete());
    // Exclusive placement: all three tasks on distinct nodes...
    EXPECT_NE(a.nodeOf(0), a.nodeOf(1));
    EXPECT_NE(a.nodeOf(1), a.nodeOf(2));
    // ...and chain neighbours adjacent (plenty of free neighbours).
    EXPECT_EQ(c.distance(a.nodeOf(0), a.nodeOf(1)), 1);
    EXPECT_EQ(c.distance(a.nodeOf(1), a.nodeOf(2)), 1);
}

TEST(AllocatorTest, GreedySharesNodesWhenTasksExceedNodes)
{
    TaskFlowGraph g;
    const TaskId a = g.addTask("a", 1.0);
    for (int i = 0; i < 9; ++i) {
        const TaskId t = g.addTask("t" + std::to_string(i), 1.0);
        g.addMessage("m" + std::to_string(i), a, t, 10.0);
    }
    const Torus small({2, 2}); // 4 nodes, 10 tasks
    const TaskAllocation al = alloc::greedy(g, small);
    EXPECT_TRUE(al.complete());
}

class AllocatorProperty : public ::testing::TestWithParam<int>
{};

TEST_P(AllocatorProperty, AllAllocatorsProduceCompleteInRangeMaps)
{
    Rng rng(static_cast<std::uint64_t>(GetParam()));
    DvbParams dp;
    dp.numModels = rng.uniformInt(2, 16);
    const TaskFlowGraph g = buildDvbTfg(dp);
    const Torus topo({4, 4, 4});

    const TaskAllocation rr =
        alloc::roundRobin(g, topo, rng.uniformInt(1, 20));
    const TaskAllocation rd = alloc::random(g, topo, rng);
    const TaskAllocation gr = alloc::greedy(g, topo);
    for (const TaskAllocation *a : {&rr, &rd, &gr}) {
        EXPECT_TRUE(a->complete());
        for (TaskId t = 0; t < g.numTasks(); ++t) {
            EXPECT_GE(a->nodeOf(t), 0);
            EXPECT_LT(a->nodeOf(t), topo.numNodes());
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AllocatorProperty,
                         ::testing::Range(1, 13));

} // namespace
} // namespace srsim
