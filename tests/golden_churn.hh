/**
 * @file
 * Golden churn scenarios: pinned end states of the online
 * scheduling service on the paper's 4x4x4 torus figure
 * configuration (DVB TFG, bandwidth 128, round-robin stride 13,
 * period 2.4 * tau_c — the same recipe as the fig10 golden case).
 *
 * Each scenario feeds a request script to a freshly started
 * OnlineScheduler and pins the bytes of the final published
 * schedule in tests/golden/<name>.sched. Shared by
 * tests/test_online.cc (byte-diff + behavioral assertions) and
 * tools/regen_golden.cc (refresh after intentional changes).
 */

#ifndef SRSIM_TESTS_GOLDEN_CHURN_HH_
#define SRSIM_TESTS_GOLDEN_CHURN_HH_

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/schedule_io.hh"
#include "mapping/allocation.hh"
#include "online/script.hh"
#include "online/service.hh"
#include "tfg/dvb.hh"
#include "tfg/timing.hh"
#include "topology/factory.hh"
#include "util/logging.hh"

namespace srsim {
namespace golden {

/** One pinned churn scenario. */
struct ChurnCase
{
    const char *name;    ///< file stem under tests/golden/
    const char *script;  ///< request script (online/script.hh)
};

/** The churn table (order is the regeneration order). */
inline const std::vector<ChurnCase> &
churnCases()
{
    // The admitted edges skip one stage of the DVB recognition
    // chain, whose per-stage operations are strictly descending:
    // a skip message's window nests inside the chain's existing
    // precedence, so admitting one moves no other message's
    // bounds and only its own subsets re-solve.
    static const std::vector<ChurnCase> cases = {
        {"churn-admit",
         "admit x0 probe verify 256\n"},
        {"churn-remove",
         "admit x0 probe verify 256\n"
         "remove x0\n"},
        {"churn-readmit",
         "admit x0 probe verify 256\n"
         "remove x0\n"
         "admit x0 probe verify 256\n"},
        {"churn-batch5",
         "batch 5\n"
         "admit y0 match probe 256\n"
         "admit y1 hough extend 256\n"
         "admit y2 probe verify 256\n"
         "admit y3 extend filter 256\n"
         "admit y4 verify score 256\n"},
    };
    return cases;
}

/** A fresh service on the fig10 figure configuration. */
inline std::unique_ptr<online::OnlineScheduler>
makeChurnService()
{
    const DvbParams dvb;
    TaskFlowGraph g = buildDvbTfg(dvb);
    auto topo = makeTopology("torus:4,4,4");
    TimingModel tm;
    tm.apSpeed = dvb.matchedApSpeed();
    tm.bandwidth = 128.0;
    const TaskAllocation alloc = alloc::roundRobin(g, *topo, 13);
    online::OnlineSchedulerConfig cfg;
    cfg.compiler.inputPeriod = 2.4 * tm.tauC(g);
    return std::make_unique<online::OnlineScheduler>(
        std::move(g), std::move(topo), alloc, tm, cfg);
}

/** Everything one scenario run produced. */
struct ChurnRun
{
    online::RequestResult start;
    std::vector<online::RequestResult> results;
    /** Serialized final published schedule — the pinned bytes. */
    std::string scheduleText;
    std::shared_ptr<const online::PublishedState> final;
    std::uint64_t cacheHits = 0;
    std::uint64_t cacheMisses = 0;
};

/**
 * Run one scenario on a fresh service. Every request must be
 * accepted (the table pins success paths); FatalError otherwise.
 */
inline ChurnRun
runChurnCase(const ChurnCase &cc)
{
    ChurnRun run;
    const auto svc = makeChurnService();
    run.start = svc->start();
    if (!run.start.accepted)
        fatal("churn case '", cc.name,
              "': initial compile rejected: ", run.start.detail);

    std::istringstream is(cc.script);
    const online::ScriptParseResult script =
        online::parseRequestScript(is);
    if (!script.ok)
        fatal("churn case '", cc.name, "': bad script line ",
              script.errorLine, ": ", script.error);
    for (const online::Request &r : script.requests) {
        run.results.push_back(svc->process(r));
        if (!run.results.back().accepted)
            fatal("churn case '", cc.name, "': request ",
                  online::requestKindName(r.kind), " rejected: ",
                  run.results.back().detail);
    }

    run.final = svc->published();
    std::ostringstream os;
    writeSchedule(os, run.final->omega);
    run.scheduleText = os.str();
    run.cacheHits = svc->cache().hits();
    run.cacheMisses = svc->cache().misses();
    return run;
}

} // namespace golden
} // namespace srsim

#endif // SRSIM_TESTS_GOLDEN_CHURN_HH_
