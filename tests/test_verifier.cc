/**
 * @file
 * Tests for the independent schedule verifier: it must accept every
 * compiler-produced schedule and reject each specific corruption.
 */

#include <gtest/gtest.h>

#include "core/sr_compiler.hh"
#include "core/verifier.hh"
#include "fuzz/differential.hh"
#include "fuzz/generator.hh"
#include "mapping/allocation.hh"
#include "tfg/tfg.hh"
#include "tfg/timing.hh"
#include "topology/generalized_hypercube.hh"

namespace srsim {
namespace {

/** Compile a small feasible schedule to corrupt. */
struct VerifierFixture : public ::testing::Test
{
    TaskFlowGraph g;
    GeneralizedHypercube cube = GeneralizedHypercube::binaryCube(3);
    TimingModel tm;
    TaskAllocation alloc{4, 8};
    SrCompileResult sr;

    void
    SetUp() override
    {
        const TaskId a = g.addTask("A", 100.0);
        const TaskId b = g.addTask("B", 100.0);
        const TaskId c = g.addTask("C", 100.0);
        const TaskId d = g.addTask("D", 100.0);
        g.addMessage("ab", a, b, 384.0);
        g.addMessage("ac", a, c, 384.0);
        g.addMessage("bd", b, d, 384.0);
        g.addMessage("cd", c, d, 384.0);
        tm.apSpeed = 10.0;
        tm.bandwidth = 64.0;
        alloc.assign(0, 0);
        alloc.assign(1, 3);
        alloc.assign(2, 5);
        alloc.assign(3, 6);
        SrCompilerConfig cfg;
        cfg.inputPeriod = 50.0;
        sr = compileScheduledRouting(g, cube, alloc, tm, cfg);
        ASSERT_TRUE(sr.feasible) << sr.detail;
    }
};

TEST_F(VerifierFixture, AcceptsCompiledSchedule)
{
    const VerifyResult v =
        verifySchedule(g, cube, alloc, sr.bounds, sr.omega);
    EXPECT_TRUE(v.ok);
    EXPECT_TRUE(v.violations.empty());
}

TEST_F(VerifierFixture, RejectsShortDuration)
{
    GlobalSchedule bad = sr.omega;
    bad.segments[0].back().end -= 1.0;
    const VerifyResult v =
        verifySchedule(g, cube, alloc, sr.bounds, bad);
    EXPECT_FALSE(v.ok);
}

TEST_F(VerifierFixture, RejectsSegmentOutsideWindow)
{
    GlobalSchedule bad = sr.omega;
    // Move the first segment of message 0 well before its release.
    const MessageBounds &b = sr.bounds.messages[0];
    const Time len = bad.segments[0].front().length();
    (void)b;
    bad.segments[0].front().start = 0.0;
    bad.segments[0].front().end = len;
    const VerifyResult v =
        verifySchedule(g, cube, alloc, sr.bounds, bad);
    // Either a bounds violation or (if release is 0) a duration
    // mismatch must surface; for this fixture release > 0.
    EXPECT_FALSE(v.ok);
}

TEST_F(VerifierFixture, RejectsLinkContention)
{
    // Force both of A's outgoing messages onto the same path AND
    // the same time: contention on every shared link.
    GlobalSchedule bad = sr.omega;
    bad.paths.paths[1] = bad.paths.paths[0];
    bad.segments[1] = bad.segments[0];
    const VerifyResult v =
        verifySchedule(g, cube, alloc, sr.bounds, bad);
    EXPECT_FALSE(v.ok);
    bool contention = false;
    for (const std::string &s : v.violations)
        contention = contention ||
                     s.find("overlap") != std::string::npos;
    EXPECT_TRUE(contention);
}

TEST_F(VerifierFixture, RejectsWrongEndpoints)
{
    GlobalSchedule bad = sr.omega;
    // Path that ends at the wrong node.
    bad.paths.paths[0] = cube.routeLsdToMsd(0, 7);
    const VerifyResult v =
        verifySchedule(g, cube, alloc, sr.bounds, bad);
    EXPECT_FALSE(v.ok);
}

TEST_F(VerifierFixture, RejectsOverlappingSegmentsOfOneMessage)
{
    GlobalSchedule bad = sr.omega;
    const TimeWindow w = bad.segments[0].front();
    bad.segments[0].push_back(w); // duplicate -> self-overlap
    const VerifyResult v =
        verifySchedule(g, cube, alloc, sr.bounds, bad);
    EXPECT_FALSE(v.ok);
}

TEST_F(VerifierFixture, RejectsWrongPeriod)
{
    GlobalSchedule bad = sr.omega;
    bad.period += 5.0;
    const VerifyResult v =
        verifySchedule(g, cube, alloc, sr.bounds, bad);
    EXPECT_FALSE(v.ok);
}

TEST_F(VerifierFixture, RejectsEmptySegment)
{
    GlobalSchedule bad = sr.omega;
    const Time t = bad.segments[0].front().start;
    bad.segments[0].front().end = t; // zero-length
    const VerifyResult v =
        verifySchedule(g, cube, alloc, sr.bounds, bad);
    EXPECT_FALSE(v.ok);
}

// ---------------------------------------------------------------
// Seed-pinned mini fuzz: a fixed slice of the differential fuzzer's
// seed space runs on every test invocation, cross-checking the
// verifier against the CP-level simulation and the analytic
// executor. Divergences found by the long-running `srfuzz` tool
// land here (or in tests/corpus/) as pinned seeds once fixed.
// ---------------------------------------------------------------

class VerifierMiniFuzz : public ::testing::TestWithParam<int>
{};

TEST_P(VerifierMiniFuzz, OraclesAgreeOnSeed)
{
    const auto seed = static_cast<std::uint64_t>(GetParam());
    const fuzz::FuzzCase c = fuzz::generateCase(seed);
    fuzz::RunOptions opts;
    opts.invocations = 12; // keep the per-seed cost test-sized
    opts.warmup = 3;
    const fuzz::RunResult r = fuzz::runCase(c, opts);
    EXPECT_FALSE(r.failed())
        << "seed " << seed << ": " << r.report;
}

INSTANTIATE_TEST_SUITE_P(PinnedSeeds, VerifierMiniFuzz,
                         ::testing::Range(0, 20));

} // namespace
} // namespace srsim
