/**
 * @file
 * Engine-context suite: environment pinning (SRSIM_SOLVER is read
 * once, never per-solve), child-context overrides (solver kind,
 * warm-start policy, thread budget, seed), and the write-through
 * metrics contract that keeps parent aggregates exact while each
 * child registry shows only its own activity.
 */

#include <gtest/gtest.h>

#include <cstdlib>

#include "engine/context.hh"
#include "metrics/metrics.hh"
#include "solver/lp.hh"
#include "util/thread_pool.hh"

namespace srsim {
namespace {

using engine::ChildOptions;
using engine::EngineContext;

/** Restores (or unsets) an environment variable on scope exit. */
class ScopedEnv
{
  public:
    ScopedEnv(const char *name, const char *value) : name_(name)
    {
        const char *prev = std::getenv(name);
        hadPrev_ = prev != nullptr;
        if (hadPrev_)
            prev_ = prev;
        if (value != nullptr)
            ::setenv(name, value, 1);
        else
            ::unsetenv(name);
    }

    ~ScopedEnv()
    {
        if (hadPrev_)
            ::setenv(name_, prev_.c_str(), 1);
        else
            ::unsetenv(name_);
    }

  private:
    const char *name_;
    bool hadPrev_ = false;
    std::string prev_;
};

// Satellite pin for the env-hoist: the default context resolves
// SRSIM_SOLVER exactly once (first touch), so flipping the variable
// mid-run must NOT flip the solver kind of later solves. Before the
// refactor lp.cc consulted getenv on every solve.
TEST(EngineContextEnv, MidRunSolverEnvChangeDoesNotFlipKind)
{
    const lp::SolverKind pinned =
        EngineContext::processDefault().solver().kind;
    const char *other =
        pinned == lp::SolverKind::Dense ? "sparse" : "dense";
    ScopedEnv env("SRSIM_SOLVER", other);
    EXPECT_EQ(EngineContext::processDefault().solver().kind,
              pinned);
    EXPECT_EQ(EngineContext::processDefault().solveOptions().kind,
              pinned);
    // A child created *after* the env change inherits the pinned
    // kind too — the environment is dead once the root is built.
    ChildOptions co;
    co.name = "env-test";
    const auto child =
        EngineContext::processDefault().createChild(co);
    EXPECT_EQ(child->solver().kind, pinned);
}

TEST(EngineContextChild, SolverKindAndWarmStartOverride)
{
    EngineContext &root = EngineContext::processDefault();

    ChildOptions dense;
    dense.name = "dense";
    dense.solverKind = lp::SolverKind::Dense;
    const auto d = root.createChild(dense);
    EXPECT_EQ(d->solver().kind, lp::SolverKind::Dense);
    EXPECT_EQ(d->solveOptions().kind, lp::SolverKind::Dense);
    // Unset fields inherit.
    EXPECT_EQ(d->solver().warmStart, root.solver().warmStart);

    ChildOptions nowarm;
    nowarm.name = "nowarm";
    nowarm.warmStart = false;
    const auto w = root.createChild(nowarm);
    EXPECT_FALSE(w->solver().warmStart);
    EXPECT_EQ(w->solver().kind, root.solver().kind);

    // solveOptions points at the child's own registry.
    EXPECT_EQ(d->solveOptions().registry, &d->metricsRegistry());
    EXPECT_NE(&d->metricsRegistry(), &root.metricsRegistry());
}

TEST(EngineContextChild, RegistryWritesThroughAndIsolates)
{
    EngineContext &root = EngineContext::processDefault();
    ChildOptions ao, bo;
    ao.name = "a";
    bo.name = "b";
    const auto a = root.createChild(ao);
    const auto b = root.createChild(bo);

    const std::uint64_t rootBefore =
        root.metricsRegistry().counter("ctx.test.bumps").value();
    a->metricsRegistry().counter("ctx.test.bumps").add(3);
    b->metricsRegistry().counter("ctx.test.bumps").add(5);

    // Each child sees exactly its own activity...
    EXPECT_EQ(
        a->metricsRegistry().counter("ctx.test.bumps").value(), 3u);
    EXPECT_EQ(
        b->metricsRegistry().counter("ctx.test.bumps").value(), 5u);
    // ...and the parent aggregate is their exact sum.
    EXPECT_EQ(
        root.metricsRegistry().counter("ctx.test.bumps").value(),
        rootBefore + 8u);

    // Grandchildren chain the write-through to the top.
    ChildOptions go;
    go.name = "a.g";
    const auto g = a->createChild(go);
    g->metricsRegistry().counter("ctx.test.bumps").add(2);
    EXPECT_EQ(
        a->metricsRegistry().counter("ctx.test.bumps").value(), 5u);
    EXPECT_EQ(
        root.metricsRegistry().counter("ctx.test.bumps").value(),
        rootBefore + 10u);
}

TEST(EngineContextChild, PoolSharedUnlessBudgeted)
{
    EngineContext &root = EngineContext::processDefault();
    ChildOptions shared;
    shared.name = "shared";
    const auto s = root.createChild(shared);
    EXPECT_EQ(&s->pool(), &root.pool());

    ChildOptions budgeted;
    budgeted.name = "budgeted";
    budgeted.threads = 2;
    const auto b = root.createChild(budgeted);
    EXPECT_NE(&b->pool(), &root.pool());
    EXPECT_EQ(b->pool().size(), 2u);
    // A private pool is a resource budget, not a metrics boundary:
    // the child still shares the parent's tracer.
    EXPECT_EQ(&b->tracer(), &root.tracer());
}

TEST(EngineContextChild, DeriveSeedIsDeterministicAndStreamed)
{
    EngineContext &root = EngineContext::processDefault();
    ChildOptions co;
    co.name = "seeded";
    co.baseSeed = 777;
    const auto c = root.createChild(co);

    EXPECT_EQ(c->baseSeed(), 777u);
    EXPECT_EQ(c->deriveSeed(1), c->deriveSeed(1));
    EXPECT_NE(c->deriveSeed(1), c->deriveSeed(2));

    // Same base seed => same streams, regardless of context name.
    ChildOptions co2;
    co2.name = "seeded-again";
    co2.baseSeed = 777;
    const auto c2 = root.createChild(co2);
    EXPECT_EQ(c->deriveSeed(9), c2->deriveSeed(9));

    // baseSeed = 0 inherits the parent's.
    ChildOptions inh;
    inh.name = "inherit";
    const auto i = root.createChild(inh);
    EXPECT_EQ(i->baseSeed(), root.baseSeed());
    EXPECT_EQ(i->deriveSeed(4), root.deriveSeed(4));
}

TEST(EngineContextChild, SolveHonorsTheContextKind)
{
    // A tiny LP solved under both child kinds must agree — the kind
    // travels in SolveOptions now, not in any process global.
    lp::Problem p;
    p.addVariable(1.0);
    p.addVariable(2.0);
    p.addConstraint({{0, 1.0}, {1, 1.0}}, lp::Relation::GreaterEq,
                    4.0);

    EngineContext &root = EngineContext::processDefault();
    for (const lp::SolverKind kind :
         {lp::SolverKind::Dense, lp::SolverKind::Sparse}) {
        ChildOptions co;
        co.name = "solve-kind";
        co.solverKind = kind;
        const auto c = root.createChild(co);
        const lp::Solution s = lp::solve(p, c->solveOptions());
        ASSERT_EQ(s.status, lp::Status::Optimal);
        EXPECT_NEAR(s.objective, 4.0, 1e-9);
    }
}

} // namespace
} // namespace srsim
