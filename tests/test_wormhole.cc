/**
 * @file
 * Tests for the wormhole-routing simulator: FCFS link capture,
 * path-holding back-pressure, pipelined invocations, the Section-3
 * output-inconsistency claim, and deadlock detection.
 */

#include <gtest/gtest.h>

#include "mapping/allocation.hh"
#include "tfg/tfg.hh"
#include "tfg/timing.hh"
#include "topology/generalized_hypercube.hh"
#include "topology/mesh.hh"
#include "topology/torus.hh"
#include "wormhole/wormhole.hh"

namespace srsim {
namespace {

/** Two tasks, one message, endpoints adjacent. */
struct SingleMessageFixture
{
    TaskFlowGraph g;
    TimingModel tm;

    SingleMessageFixture()
    {
        const TaskId a = g.addTask("a", 100.0);
        const TaskId b = g.addTask("b", 100.0);
        g.addMessage("ab", a, b, 640.0);
        tm.apSpeed = 10.0;   // tasks take 10 us
        tm.bandwidth = 64.0; // message takes 10 us
    }
};

TEST(WormholeTest, SingleMessageEndToEndTiming)
{
    SingleMessageFixture f;
    const auto cube = GeneralizedHypercube::binaryCube(3);
    TaskAllocation a(f.g.numTasks(), cube.numNodes());
    a.assign(0, 0);
    a.assign(1, 1);
    WormholeSimulator sim(f.g, cube, a, f.tm);
    WormholeConfig cfg;
    cfg.inputPeriod = 100.0;
    cfg.invocations = 5;
    cfg.warmup = 1;
    const WormholeResult r = sim.run(cfg);
    ASSERT_FALSE(r.deadlocked);
    ASSERT_EQ(r.records.size(), 5u);
    // Invocation j: a [j*100, j*100+10], msg [.., +10], b [.., +10].
    for (const auto &rec : r.records) {
        EXPECT_DOUBLE_EQ(rec.latency(), 30.0);
        EXPECT_DOUBLE_EQ(rec.complete, rec.index * 100.0 + 30.0);
    }
    EXPECT_FALSE(r.outputInconsistent(cfg.warmup));
}

TEST(WormholeTest, CoLocatedMessageBypassesNetwork)
{
    SingleMessageFixture f;
    const auto cube = GeneralizedHypercube::binaryCube(3);
    TaskAllocation a(f.g.numTasks(), cube.numNodes());
    a.assign(0, 2);
    a.assign(1, 2);
    WormholeSimulator sim(f.g, cube, a, f.tm);
    WormholeConfig cfg;
    cfg.inputPeriod = 100.0;
    cfg.invocations = 3;
    cfg.warmup = 1;
    const WormholeResult r = sim.run(cfg);
    ASSERT_FALSE(r.deadlocked);
    // No transmission time; but b shares the AP with a, so b runs
    // right after a: latency 20.
    EXPECT_DOUBLE_EQ(r.records[0].latency(), 20.0);
}

TEST(WormholeTest, MultiHopPathHeldForWholeTransmission)
{
    // Two messages whose LSD-to-MSD paths share the middle link.
    // M1: 0 -> 3 via 0-1-3; M2: 1 -> 7 via 1-3-7. They share link
    // 1-3, so FCFS serializes them.
    TaskFlowGraph g;
    const TaskId s1 = g.addTask("s1", 100.0);
    const TaskId s2 = g.addTask("s2", 100.0);
    const TaskId d1 = g.addTask("d1", 100.0);
    const TaskId d2 = g.addTask("d2", 100.0);
    g.addMessage("m1", s1, d1, 640.0); // 10 us
    g.addMessage("m2", s2, d2, 640.0); // 10 us
    TimingModel tm;
    tm.apSpeed = 10.0;
    tm.bandwidth = 64.0;

    const auto cube = GeneralizedHypercube::binaryCube(3);
    TaskAllocation a(g.numTasks(), cube.numNodes());
    a.assign(s1, 0);
    a.assign(d1, 3);
    a.assign(s2, 1);
    a.assign(d2, 7);
    WormholeSimulator sim(g, cube, a, tm);
    EXPECT_EQ(sim.pathOf(0).nodes, (std::vector<NodeId>{0, 1, 3}));
    EXPECT_EQ(sim.pathOf(1).nodes, (std::vector<NodeId>{1, 3, 7}));

    WormholeConfig cfg;
    cfg.inputPeriod = 200.0;
    cfg.invocations = 3;
    cfg.warmup = 0;
    const WormholeResult r = sim.run(cfg);
    ASSERT_FALSE(r.deadlocked);
    // Both sources finish at t=10 and contend for link 1-3; one
    // message transmits [10,20], the other [20,30]; the slower
    // destination task ends at 40.
    EXPECT_DOUBLE_EQ(r.records[0].latency(), 40.0);
}

TEST(WormholeTest, SetPathValidatesEndpoints)
{
    SingleMessageFixture f;
    const auto cube = GeneralizedHypercube::binaryCube(3);
    TaskAllocation a(f.g.numTasks(), cube.numNodes());
    a.assign(0, 0);
    a.assign(1, 3);
    WormholeSimulator sim(f.g, cube, a, f.tm);
    EXPECT_THROW(sim.setPath(0, cube.makePath({0, 1})), FatalError);
    EXPECT_NO_THROW(sim.setPath(0, cube.makePath({0, 2, 3})));
    EXPECT_EQ(sim.pathOf(0).nodes, (std::vector<NodeId>{0, 2, 3}));
}

/**
 * The Section-3 claim: messages M1 (T1s -> T1d) and M2
 * (T2s -> T2d) with T1d preceding T2s, sharing a link, pipelined
 * with a period such that M2 of invocation j-1 still holds the
 * shared link when M1 of invocation j becomes ready. FCFS capture
 * then delays M1 in some invocations and not others: successive
 * outputs appear at unequal intervals (output inconsistency),
 * while the *average* interval still tracks the input period.
 */
class Section3Claim : public ::testing::TestWithParam<double>
{
  protected:
    /** A@0 --M1--> B@1 --M2--> C@0 on a 4-ring: M1 and M2 cross
     *  the same physical half-duplex link 0-1. */
    WormholeResult
    run(double tau_in, int invocations = 60, int warmup = 15)
    {
        TaskFlowGraph g;
        const TaskId A = g.addTask("A", 100.0);
        const TaskId B = g.addTask("B", 100.0);
        const TaskId C = g.addTask("C", 100.0);
        g.addMessage("M1", A, B, 3200.0); // 50 us at B = 64
        g.addMessage("M2", B, C, 3200.0); // 50 us
        TimingModel tm;
        tm.apSpeed = 10.0; // tasks take 10 us
        tm.bandwidth = 64.0;
        const Torus ring({4});
        TaskAllocation a(3, 4);
        a.assign(A, 0);
        a.assign(B, 1);
        a.assign(C, 0);
        WormholeSimulator sim(g, ring, a, tm);
        WormholeConfig cfg;
        cfg.inputPeriod = tau_in;
        cfg.invocations = invocations;
        cfg.warmup = warmup;
        warmup_ = warmup;
        return sim.run(cfg);
    }
    int warmup_ = 0;
};

TEST_P(Section3Claim, SharedLinkCausesOutputInconsistency)
{
    const double tau_in = GetParam();
    const WormholeResult r = run(tau_in);
    ASSERT_FALSE(r.deadlocked);
    EXPECT_TRUE(r.outputInconsistent(warmup_));
    const SeriesStats s = r.outputIntervals(warmup_);
    // Alternating delay: spikes well away from the mean...
    EXPECT_GT(s.spread(), 10.0);
    // ...but no unbounded accumulation: the mean interval tracks
    // the input period.
    EXPECT_NEAR(s.mean(), tau_in, 0.05 * tau_in);
}

INSTANTIATE_TEST_SUITE_P(Periods, Section3Claim,
                         ::testing::Values(101.0, 104.0, 107.0,
                                           109.0));

TEST(WormholeTest, LargePeriodRemovesInterInvocationContention)
{
    // Same scenario, but tau_in so large that invocations never
    // overlap: output intervals become constant.
    TaskFlowGraph g;
    const TaskId A = g.addTask("A", 100.0);
    const TaskId B = g.addTask("B", 100.0);
    const TaskId C = g.addTask("C", 100.0);
    g.addMessage("M1", A, B, 3200.0);
    g.addMessage("M2", B, C, 3200.0);
    TimingModel tm;
    tm.apSpeed = 10.0;
    tm.bandwidth = 64.0;
    const Torus ring({4});
    TaskAllocation a(3, 4);
    a.assign(A, 0);
    a.assign(B, 1);
    a.assign(C, 0);
    WormholeSimulator sim(g, ring, a, tm);
    WormholeConfig cfg;
    cfg.inputPeriod = 500.0;
    cfg.invocations = 20;
    cfg.warmup = 4;
    const WormholeResult r = sim.run(cfg);
    ASSERT_FALSE(r.deadlocked);
    EXPECT_FALSE(r.outputInconsistent(cfg.warmup));
}

TEST(WormholeTest, DeadlockDetectedOnCyclicHoldAndWait)
{
    // On a 6-ring, a blocker message occupies link 2-3 while mB
    // (1 -> 4, route 1-2-3-4) holds links 1-2 and 2-3's queue and
    // mA (4 -> 2, route 4-3-2) holds link 3-4 and queues on 2-3.
    // When the blocker releases, mB takes 2-3 and needs 3-4 (held
    // by mA) while mA needs 2-3 (now held by mB): a wait-for
    // cycle.
    TaskFlowGraph g;
    const TaskId blk_s = g.addTask("blk_s", 80.0);   // ends t=8
    const TaskId blk_d = g.addTask("blk_d", 10.0);
    const TaskId mb_s = g.addTask("mb_s", 100.0);    // ends t=10
    const TaskId mb_d = g.addTask("mb_d", 10.0);
    const TaskId ma_s = g.addTask("ma_s", 120.0);    // ends t=12
    const TaskId ma_d = g.addTask("ma_d", 10.0);
    g.addMessage("blk", blk_s, blk_d, 640.0); // 10 us
    g.addMessage("mB", mb_s, mb_d, 640.0);
    g.addMessage("mA", ma_s, ma_d, 640.0);
    TimingModel tm;
    tm.apSpeed = 10.0;
    tm.bandwidth = 64.0;

    const Torus ring({6});
    TaskAllocation a(g.numTasks(), ring.numNodes());
    a.assign(blk_s, 2);
    a.assign(blk_d, 3);
    a.assign(mb_s, 1);
    a.assign(mb_d, 4);
    a.assign(ma_s, 4);
    a.assign(ma_d, 2);
    WormholeSimulator sim(g, ring, a, tm);
    // Route checks: mB ties at half-ring and takes 1-2-3-4; mA
    // takes the short way 4-3-2.
    ASSERT_EQ(sim.pathOf(1).nodes, (std::vector<NodeId>{1, 2, 3, 4}));
    ASSERT_EQ(sim.pathOf(2).nodes, (std::vector<NodeId>{4, 3, 2}));

    WormholeConfig cfg;
    cfg.inputPeriod = 1000.0;
    cfg.invocations = 2;
    cfg.warmup = 0;
    const WormholeResult r = sim.run(cfg);
    EXPECT_TRUE(r.deadlocked);
    EXPECT_NE(r.deadlockInfo.find("cycle"), std::string::npos)
        << r.deadlockInfo;
    EXPECT_TRUE(r.outputInconsistent(cfg.warmup));
}

TEST(WormholeTest, ApQueuesSuccessiveInvocations)
{
    // One task only; invocations arrive faster than downstream
    // work would allow if the task were slower than the period --
    // here equal, so completions are exactly periodic.
    TaskFlowGraph g;
    g.addTask("only", 100.0);
    TimingModel tm;
    tm.apSpeed = 10.0; // 10 us per invocation
    const auto cube = GeneralizedHypercube::binaryCube(2);
    TaskAllocation a(1, cube.numNodes());
    a.assign(0, 0);
    WormholeSimulator sim(g, cube, a, tm);
    WormholeConfig cfg;
    cfg.inputPeriod = 10.0; // == task time
    cfg.invocations = 10;
    cfg.warmup = 2;
    const WormholeResult r = sim.run(cfg);
    ASSERT_FALSE(r.deadlocked);
    EXPECT_FALSE(r.outputInconsistent(cfg.warmup));
    EXPECT_DOUBLE_EQ(r.records.back().complete, 9 * 10.0 + 10.0);
}

TEST(WormholeTest, ConfigValidation)
{
    SingleMessageFixture f;
    const auto cube = GeneralizedHypercube::binaryCube(3);
    TaskAllocation a(f.g.numTasks(), cube.numNodes());
    a.assign(0, 0);
    a.assign(1, 1);
    WormholeSimulator sim(f.g, cube, a, f.tm);
    WormholeConfig bad;
    bad.inputPeriod = 0.0;
    EXPECT_THROW(sim.run(bad), FatalError);
    bad.inputPeriod = 10.0;
    bad.invocations = 5;
    bad.warmup = 5;
    EXPECT_THROW(sim.run(bad), FatalError);
}

TEST(WormholeTest, IncompleteAllocationIsFatal)
{
    SingleMessageFixture f;
    const auto cube = GeneralizedHypercube::binaryCube(3);
    TaskAllocation a(f.g.numTasks(), cube.numNodes());
    a.assign(0, 0); // task 1 unassigned
    EXPECT_THROW(WormholeSimulator(f.g, cube, a, f.tm), FatalError);
}

} // namespace
} // namespace srsim
