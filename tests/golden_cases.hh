/**
 * @file
 * The golden conformance corpus: one table of pinned compiler
 * outputs, shared by tests/test_golden.cc (byte-diffs recompiled
 * schedules against the checked-in .sched files) and
 * tools/regen_golden.cc (refreshes the files after an *intentional*
 * output change).
 *
 * Every case uses the same recipe as the paper's evaluation: the DVB
 * TFG at the matched AP speed, round-robin allocation with stride
 * 13, compiled on a Fig. 5-10 fabric. Fault cases additionally
 * degrade the fabric with a static fault spec and pin the *repaired*
 * (v2) schedule, covering the incremental path, the shedding
 * recompile, derating, and random multi-link damage.
 *
 * The pinned bytes are the conformance contract: an unintentional
 * diff anywhere in the compile or repair pipeline (routing order,
 * LP pivoting, subset merging, serialization) fails `ctest -L
 * golden` before it reaches a user.
 */

#ifndef SRSIM_TESTS_GOLDEN_CASES_HH_
#define SRSIM_TESTS_GOLDEN_CASES_HH_

#include <sstream>
#include <string>
#include <vector>

#include "core/schedule_io.hh"
#include "core/sr_compiler.hh"
#include "engine/context.hh"
#include "fault/fault.hh"
#include "fault/repair.hh"
#include "mapping/allocation.hh"
#include "tfg/dvb.hh"
#include "tfg/timing.hh"
#include "topology/factory.hh"
#include "util/logging.hh"

namespace srsim {
namespace golden {

/** One pinned conformance case. */
struct GoldenCase
{
    const char *name;       ///< file stem under tests/golden/
    const char *topoSpec;   ///< fabric factory spec
    double bandwidth;       ///< bytes/us
    double periodFactor;    ///< inputPeriod = factor * tau_c
    const char *faultSpec;  ///< "" = healthy compile
};

/** The conformance table (order is the regeneration order). */
inline const std::vector<GoldenCase> &
goldenCases()
{
    static const std::vector<GoldenCase> cases = {
        // Healthy compiles on the paper's evaluation fabrics.
        {"fig5-cube6-b128", "cube:6", 128.0, 2.0, ""},
        {"fig5-ghc444-b128", "ghc:4,4,4", 128.0, 2.0, ""},
        {"fig9-torus88-b128", "torus:8,8", 128.0, 3.2, ""},
        {"fig10-torus444-b128", "torus:4,4,4", 128.0, 2.4, ""},
        // Degraded-mode repairs on the 4x4x4 torus.
        {"fault-1link", "torus:4,4,4", 128.0, 2.4, "rand:1:1"},
        {"fault-2link", "torus:4,4,4", 128.0, 2.4, "rand:2:2"},
        {"fault-node", "torus:4,4,4", 128.0, 2.4, "node:13"},
        {"fault-derate", "torus:4,4,4", 128.0, 2.4,
         "derate:#40=0.5"},
        {"fault-mixed", "torus:4,4,4", 128.0, 2.4,
         "rand:2:5;derate:#40=0.5"},
        {"fault-rand", "torus:4,4,4", 128.0, 2.4, "rand:4:7"},
    };
    return cases;
}

/**
 * Compile one case and serialize the (possibly repaired) schedule —
 * exactly the bytes its tests/golden/<name>.sched must hold.
 * FatalError when the case is infeasible (the table itself is then
 * broken). `ctx` lets a caller pin the engine context (e.g. a
 * forced solver kind); nullptr uses the process default.
 */
inline std::string
compileGoldenCase(const GoldenCase &gc,
                  const engine::EngineContext *ctx = nullptr)
{
    const DvbParams dvb;
    const TaskFlowGraph g = buildDvbTfg(dvb);
    const auto topo = makeTopology(gc.topoSpec);
    TimingModel tm;
    tm.apSpeed = dvb.matchedApSpeed();
    tm.bandwidth = gc.bandwidth;
    const TaskAllocation alloc = alloc::roundRobin(g, *topo, 13);

    SrCompilerConfig cfg;
    cfg.ctx = ctx;
    cfg.inputPeriod = gc.periodFactor * tm.tauC(g);
    const SrCompileResult r =
        compileScheduledRouting(g, *topo, alloc, tm, cfg);
    if (!r.feasible)
        fatal("golden case '", gc.name, "' infeasible: ", r.detail);

    std::ostringstream os;
    if (gc.faultSpec[0] == '\0') {
        writeSchedule(os, r.omega);
        return os.str();
    }

    fault::applyFaultSpec(gc.faultSpec, *topo);
    fault::RepairOptions ropts;
    ropts.faultSpec = gc.faultSpec;
    const fault::RepairResult rep =
        fault::repairSchedule(g, *topo, alloc, tm, cfg, r, ropts);
    if (!rep.feasible)
        fatal("golden case '", gc.name,
              "' repair infeasible: ", rep.detail);
    if (!rep.verification.ok)
        fatal("golden case '", gc.name,
              "' repair failed verification");
    writeSchedule(os, rep.omega);
    return os.str();
}

} // namespace golden
} // namespace srsim

#endif // SRSIM_TESTS_GOLDEN_CASES_HH_
