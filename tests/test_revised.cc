/**
 * @file
 * Sparse revised simplex + warm-start suite (label: solver).
 *
 * Covers the two roles of src/solver/revised.cc:
 *
 *  - as the independent differential oracle: solveRevised must agree
 *    with the dense tableau on status and objective (alternate
 *    optimal vertices allowed) across random feasible, infeasible,
 *    and unbounded instances;
 *  - as the production warm-start path: a re-solve from a cached
 *    basis finishes in a handful of pivots, survives branch-row
 *    churn via dual-simplex steps, and falls back to the
 *    deterministic cold tableau (bit-identical values) whenever the
 *    basis is stale, foreign, or the instance turned infeasible.
 *
 * Plus the bookkeeping the bench and service summaries rely on:
 * cumulative Solution::pivots across phases and branch-and-bound
 * nodes, SolverStats warm-start accounting, and the single-working-
 * instance guarantee of solveMip (mipProblemCopies == 1).
 */

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "solver/lp.hh"
#include "solver/revised.hh"
#include "util/rng.hh"

namespace srsim {
namespace {

using lp::Basis;
using lp::Problem;
using lp::Relation;
using lp::Solution;
using lp::SolveOptions;
using lp::Status;

/** A small non-degenerate LP with a unique bounded optimum. */
Problem
sampleLp()
{
    // min -3x - 2y  s.t.  x + y <= 4, x + 3y <= 6.
    Problem p;
    const auto x = p.addVariable(-3.0, "x");
    const auto y = p.addVariable(-2.0, "y");
    p.addConstraint({{x, 1.0}, {y, 1.0}}, Relation::LessEq, 4.0);
    p.addConstraint({{x, 1.0}, {y, 3.0}}, Relation::LessEq, 6.0);
    return p;
}

/** Random bounded-feasible LP (mirrors the test_solver generator). */
Problem
randomFeasibleLp(Rng &rng)
{
    const int nvar = rng.uniformInt(3, 10);
    const int ncon = rng.uniformInt(2, 12);
    Problem p;
    std::vector<double> feas;
    for (int i = 0; i < nvar; ++i) {
        p.addVariable(rng.uniformReal(-2.0, 2.0));
        feas.push_back(rng.uniformReal(0.0, 5.0));
    }
    for (int c = 0; c < ncon; ++c) {
        lp::Constraint con;
        double lhs = 0.0;
        for (int i = 0; i < nvar; ++i) {
            if (rng.chance(0.6)) {
                const double a = rng.uniformReal(-3.0, 3.0);
                con.terms.emplace_back(static_cast<std::size_t>(i),
                                       a);
                lhs += a * feas[static_cast<std::size_t>(i)];
            }
        }
        if (con.terms.empty())
            continue;
        if (rng.chance(0.5)) {
            con.rel = Relation::LessEq;
            con.rhs = lhs + rng.uniformReal(0.0, 4.0);
        } else {
            con.rel = Relation::GreaterEq;
            con.rhs = lhs - rng.uniformReal(0.0, 4.0);
        }
        p.addConstraint(con);
    }
    for (int i = 0; i < nvar; ++i)
        p.addConstraint({{static_cast<std::size_t>(i), 1.0}},
                        Relation::LessEq, 50.0);
    return p;
}

/** Status + objective agreement (the --solver-diff contract). */
void
expectAgrees(const Solution &dense, const Solution &sparse,
             const char *what)
{
    ASSERT_EQ(dense.status, sparse.status) << what;
    if (dense.status == Status::Optimal) {
        const double scale =
            std::max({1.0, std::abs(dense.objective),
                      std::abs(sparse.objective)});
        EXPECT_NEAR(dense.objective, sparse.objective,
                    1e-6 * scale)
            << what;
    }
}

class RevisedRandomParity : public ::testing::TestWithParam<int>
{};

TEST_P(RevisedRandomParity, ColdAgreesWithDense)
{
    Rng rng(static_cast<std::uint64_t>(GetParam()));
    const Problem p = randomFeasibleLp(rng);
    const Solution dense = lp::solveDense(p);
    const Solution sparse = lp::solveRevised(p);
    expectAgrees(dense, sparse, "random feasible");
}

INSTANTIATE_TEST_SUITE_P(Seeds, RevisedRandomParity,
                         ::testing::Range(1, 41));

TEST(RevisedCold, InfeasibleAgreement)
{
    Problem p;
    const auto x = p.addVariable(1.0, "x");
    p.addConstraint({{x, 1.0}}, Relation::LessEq, 1.0);
    p.addConstraint({{x, 1.0}}, Relation::GreaterEq, 2.0);
    const Solution dense = lp::solveDense(p);
    const Solution sparse = lp::solveRevised(p);
    ASSERT_EQ(dense.status, Status::Infeasible);
    EXPECT_EQ(sparse.status, Status::Infeasible);
}

TEST(RevisedCold, UnboundedAgreement)
{
    Problem p;
    const auto x = p.addVariable(-1.0, "x");
    const auto y = p.addVariable(0.0, "y");
    p.addConstraint({{y, 1.0}}, Relation::LessEq, 1.0);
    (void)x;
    const Solution dense = lp::solveDense(p);
    const Solution sparse = lp::solveRevised(p);
    ASSERT_EQ(dense.status, Status::Unbounded);
    EXPECT_EQ(sparse.status, Status::Unbounded);
}

TEST(RevisedCold, ExportsBasisOnOptimal)
{
    const Problem p = sampleLp();
    const Solution dense = lp::solveDense(p);
    ASSERT_EQ(dense.status, Status::Optimal);
    EXPECT_EQ(dense.basis.rows.size(), p.numConstraints());
    EXPECT_EQ(dense.basis.structurals, p.numVariables());
    const Solution sparse = lp::solveRevised(p);
    ASSERT_EQ(sparse.status, Status::Optimal);
    EXPECT_EQ(sparse.basis.rows.size(), p.numConstraints());
}

/** Re-solving the identical problem from its own basis: 0 pivots. */
TEST(RevisedWarm, IdenticalResolveTakesNoPivots)
{
    const Problem p = sampleLp();
    const Solution cold = lp::solveDense(p);
    ASSERT_EQ(cold.status, Status::Optimal);
    ASSERT_GT(cold.pivots, 0u);

    SolveOptions opts;
    opts.warmStart = &cold.basis;
    Solution warm;
    ASSERT_TRUE(lp::solveRevisedWarm(p, opts, warm));
    EXPECT_EQ(warm.status, Status::Optimal);
    EXPECT_EQ(warm.pivots, 0u);
    EXPECT_NEAR(warm.objective, cold.objective, 1e-9);
}

/** RHS drift keeps the basis optimal: still 0 pivots, new values. */
TEST(RevisedWarm, RhsDriftReusesBasis)
{
    Problem p = sampleLp();
    const Solution cold = lp::solveDense(p);
    ASSERT_EQ(cold.status, Status::Optimal);

    // Same structure, slightly relaxed capacities.
    Problem p2;
    const auto x = p2.addVariable(-3.0, "x");
    const auto y = p2.addVariable(-2.0, "y");
    p2.addConstraint({{x, 1.0}, {y, 1.0}}, Relation::LessEq, 4.5);
    p2.addConstraint({{x, 1.0}, {y, 3.0}}, Relation::LessEq, 6.5);
    ASSERT_EQ(lp::structureSignature(p),
              lp::structureSignature(p2));

    SolveOptions opts;
    opts.warmStart = &cold.basis;
    Solution warm;
    ASSERT_TRUE(lp::solveRevisedWarm(p2, opts, warm));
    ASSERT_EQ(warm.status, Status::Optimal);
    expectAgrees(lp::solveDense(p2), warm, "rhs drift");
    EXPECT_LT(warm.pivots, lp::solveDense(p2).pivots);
}

/**
 * The branch-and-bound child case: one appended bound row cuts off
 * the cached optimum. Dual-simplex steps must restore feasibility
 * without a cold restart.
 */
TEST(RevisedWarm, StaleBasisAfterConstraintAddUsesDualSteps)
{
    Problem p = sampleLp();
    const Solution cold = lp::solveDense(p);
    ASSERT_EQ(cold.status, Status::Optimal);
    // Optimum is x=4, y=0; force x <= 2.
    p.addConstraint({{0, 1.0}}, Relation::LessEq, 2.0);

    SolveOptions opts;
    opts.warmStart = &cold.basis;
    Solution warm;
    ASSERT_TRUE(lp::solveRevisedWarm(p, opts, warm));
    ASSERT_EQ(warm.status, Status::Optimal);
    const Solution fresh = lp::solveDense(p);
    expectAgrees(fresh, warm, "appended branch row");
    EXPECT_LE(warm.values[0], 2.0 + 1e-6);
    // On this tiny LP the dual repair cannot beat a 2-pivot cold
    // solve outright; the bound that matters is "no worse".
    EXPECT_LE(warm.pivots, fresh.pivots);
}

/**
 * A basis from a problem with more rows than the target does not
 * fit: the warm attempt must fail and the dispatcher's fallback must
 * return the cold tableau result bit-for-bit.
 */
TEST(RevisedWarm, RemovedConstraintFallsBackCold)
{
    Problem big = sampleLp();
    big.addConstraint({{0, 1.0}}, Relation::LessEq, 3.0);
    const Solution cold = lp::solveDense(big);
    ASSERT_EQ(cold.status, Status::Optimal);
    ASSERT_EQ(cold.basis.rows.size(), 3u);

    const Problem small = sampleLp(); // 2 rows: dimension mismatch
    SolveOptions opts;
    opts.warmStart = &cold.basis;
    Solution warm;
    EXPECT_FALSE(lp::solveRevisedWarm(small, opts, warm));

    // Through the dispatcher: identical to a cold dense solve.
    const Solution viaDispatch = lp::solve(small, opts);
    const Solution dense = lp::solveDense(small);
    ASSERT_EQ(viaDispatch.status, dense.status);
    EXPECT_EQ(viaDispatch.objective, dense.objective);
    ASSERT_EQ(viaDispatch.values.size(), dense.values.size());
    for (std::size_t i = 0; i < dense.values.size(); ++i)
        EXPECT_EQ(viaDispatch.values[i], dense.values[i])
            << "value " << i << " not bit-identical to cold";
}

/** A warm basis on a now-infeasible instance: verdict Infeasible. */
TEST(RevisedWarm, InfeasibleAfterTighteningIsDetected)
{
    Problem p = sampleLp();
    const Solution cold = lp::solveDense(p);
    ASSERT_EQ(cold.status, Status::Optimal);
    // x + y <= 4 together with x + y >= 9: empty.
    p.addConstraint({{0, 1.0}, {1, 1.0}}, Relation::GreaterEq, 9.0);

    SolveOptions opts;
    opts.warmStart = &cold.basis;
    const Solution s = lp::solve(p, opts);
    EXPECT_EQ(s.status, Status::Infeasible);
    EXPECT_EQ(s.status, lp::solveDense(p).status);
}

/** Garbage bases (duplicates, bad dims) never poison the solve. */
TEST(RevisedWarm, GarbageBasisFallsBackCold)
{
    const Problem p = sampleLp();
    Basis junk;
    junk.structurals = p.numVariables();
    junk.rows.assign(p.numConstraints(),
                     {Basis::Kind::Structural, 0}); // duplicate var
    SolveOptions opts;
    opts.warmStart = &junk;
    Solution warm;
    EXPECT_FALSE(lp::solveRevisedWarm(p, opts, warm));
    const Solution s = lp::solve(p, opts);
    const Solution dense = lp::solveDense(p);
    ASSERT_EQ(s.status, Status::Optimal);
    EXPECT_EQ(s.objective, dense.objective);
}

/** Degenerate/hostile data under a warm basis stays a verdict. */
TEST(RevisedWarm, DegenerateResolveStaysSane)
{
    // Degenerate: several constraints active at the optimum.
    Problem p;
    const auto x = p.addVariable(-1.0, "x");
    const auto y = p.addVariable(-1.0, "y");
    p.addConstraint({{x, 1.0}}, Relation::LessEq, 1.0);
    p.addConstraint({{y, 1.0}}, Relation::LessEq, 1.0);
    p.addConstraint({{x, 1.0}, {y, 1.0}}, Relation::LessEq, 2.0);
    p.addConstraint({{x, 1.0}, {y, 1.0}}, Relation::GreaterEq, 2.0);
    const Solution cold = lp::solveDense(p);
    ASSERT_EQ(cold.status, Status::Optimal);

    SolveOptions opts;
    opts.warmStart = &cold.basis;
    const Solution s = lp::solve(p, opts);
    ASSERT_EQ(s.status, Status::Optimal);
    EXPECT_NEAR(s.objective, cold.objective, 1e-9);
}

/** Warm chains across RHS churn agree with dense on every step. */
TEST(RevisedWarm, ChurnChainAgreesWithDense)
{
    Rng rng(7);
    for (int seed = 1; seed <= 10; ++seed) {
        Rng gen(static_cast<std::uint64_t>(seed) * 977u);
        Problem p = randomFeasibleLp(gen);
        Solution prev = lp::solveDense(p);
        if (prev.status != Status::Optimal)
            continue;
        for (int step = 0; step < 4; ++step) {
            // Drift every RHS a little; structure unchanged.
            Problem q;
            for (std::size_t i = 0; i < p.numVariables(); ++i)
                q.addVariable(p.costs()[i]);
            for (const lp::Constraint &c : p.constraints()) {
                lp::Constraint c2 = c;
                c2.rhs += rng.uniformReal(0.0, 0.5);
                q.addConstraint(c2);
            }
            SolveOptions opts;
            opts.warmStart = &prev.basis;
            const Solution warm = lp::solve(q, opts);
            const Solution dense = lp::solveDense(q);
            expectAgrees(dense, warm, "churn step");
            p = q;
            if (warm.status == Status::Optimal &&
                !warm.basis.empty())
                prev = warm;
        }
    }
}

/** solveMip: cumulative pivots, one working copy, counted nodes. */
TEST(RevisedMip, CumulativePivotsSingleWorkingCopy)
{
    // max x + y over a fractional-vertex polytope (relaxation
    // optimum x = y = 11/6); integrality forces branching.
    Problem p;
    const auto x = p.addVariable(-1.0, "x");
    const auto y = p.addVariable(-1.0, "y");
    p.addConstraint({{x, 4.0}, {y, 2.0}}, Relation::LessEq, 11.0);
    p.addConstraint({{x, 2.0}, {y, 4.0}}, Relation::LessEq, 11.0);
    p.markInteger(x);
    p.markInteger(y);

    lp::resetSolverStats();
    const Solution root = lp::solveDense(p);
    ASSERT_EQ(root.status, Status::Optimal);
    const std::size_t rootPivots = root.pivots;

    lp::resetSolverStats();
    const Solution mip = lp::solveMip(p);
    ASSERT_EQ(mip.status, Status::Optimal);
    EXPECT_NEAR(mip.values[x] - std::round(mip.values[x]), 0.0,
                1e-6);
    EXPECT_NEAR(mip.values[y] - std::round(mip.values[y]), 0.0,
                1e-6);

    const lp::SolverStats st = lp::solverStats();
    EXPECT_GT(st.mipNodes, 1u) << "expected actual branching";
    EXPECT_EQ(st.mipProblemCopies, 1u)
        << "B&B must reuse one working instance";
    // Pivots accumulate across every explored node.
    EXPECT_GE(mip.pivots, rootPivots);
    EXPECT_EQ(st.pivots, mip.pivots);
}

TEST(RevisedSignature, CoversStructureNotData)
{
    const Problem a = sampleLp();
    Problem b = sampleLp();
    // Numeric drift only: same signature.
    {
        Problem c;
        const auto x = c.addVariable(-5.0, "x");
        const auto y = c.addVariable(-1.0, "y");
        c.addConstraint({{x, 2.0}, {y, 1.5}}, Relation::LessEq,
                        9.0);
        c.addConstraint({{x, 1.0}, {y, 4.0}}, Relation::LessEq,
                        7.0);
        EXPECT_EQ(lp::structureSignature(a),
                  lp::structureSignature(c));
    }
    // Extra row: different signature.
    b.addConstraint({{0, 1.0}}, Relation::LessEq, 2.0);
    EXPECT_NE(lp::structureSignature(a),
              lp::structureSignature(b));
    // Different relation: different signature.
    {
        Problem d;
        const auto x = d.addVariable(-3.0, "x");
        const auto y = d.addVariable(-2.0, "y");
        d.addConstraint({{x, 1.0}, {y, 1.0}}, Relation::GreaterEq,
                        4.0);
        d.addConstraint({{x, 1.0}, {y, 3.0}}, Relation::LessEq,
                        6.0);
        EXPECT_NE(lp::structureSignature(a),
                  lp::structureSignature(d));
    }
    // Different sparsity pattern: different signature.
    {
        Problem e;
        const auto x = e.addVariable(-3.0, "x");
        const auto y = e.addVariable(-2.0, "y");
        e.addConstraint({{x, 1.0}}, Relation::LessEq, 4.0);
        e.addConstraint({{x, 1.0}, {y, 3.0}}, Relation::LessEq,
                        6.0);
        EXPECT_NE(lp::structureSignature(a),
                  lp::structureSignature(e));
    }
}

TEST(RevisedCache, StoreLookupAndSignatureGate)
{
    const Problem p = sampleLp();
    const Solution cold = lp::solveDense(p);
    ASSERT_EQ(cold.status, Status::Optimal);
    const std::uint64_t sig = lp::structureSignature(p);

    lp::BasisCache cache;
    EXPECT_EQ(cache.size(), 0u);
    Basis out;
    EXPECT_FALSE(cache.lookup("k", sig, out));
    cache.store("k", sig, cold.basis);
    EXPECT_EQ(cache.size(), 1u);
    ASSERT_TRUE(cache.lookup("k", sig, out));
    EXPECT_EQ(out.rows.size(), cold.basis.rows.size());
    // A structural change gates the entry off.
    EXPECT_FALSE(cache.lookup("k", sig + 1, out));
    // Overwrite keeps one entry per key.
    cache.store("k", sig + 1, cold.basis);
    EXPECT_EQ(cache.size(), 1u);
    ASSERT_TRUE(cache.lookup("k", sig + 1, out));
}

TEST(RevisedStats, WarmAccounting)
{
    const Problem p = sampleLp();
    const Solution cold = lp::solveDense(p);
    ASSERT_EQ(cold.status, Status::Optimal);

    lp::resetSolverStats();
    SolveOptions opts;
    opts.warmStart = &cold.basis;
    const Solution hit = lp::solve(p, opts);
    ASSERT_EQ(hit.status, Status::Optimal);

    Basis junk;
    junk.structurals = p.numVariables();
    junk.rows.assign(p.numConstraints(),
                     {Basis::Kind::Structural, 0});
    SolveOptions bad;
    bad.warmStart = &junk;
    const Solution miss = lp::solve(p, bad);
    ASSERT_EQ(miss.status, Status::Optimal);

    const lp::SolverStats st = lp::solverStats();
    EXPECT_EQ(st.solves, 2u);
    EXPECT_EQ(st.warmAttempts, 2u);
    EXPECT_EQ(st.warmHits, 1u);
    EXPECT_EQ(st.warmMisses, 1u);
    EXPECT_GT(st.pivots, 0u);
}

TEST(RevisedDiff, OracleSeesNoDisagreements)
{
    lp::resetSolverDiffStats();
    lp::setSolverDiff(true);
    Rng rng(42);
    for (int seed = 0; seed < 20; ++seed) {
        Rng gen(static_cast<std::uint64_t>(seed) * 131u + 7u);
        const Problem p = randomFeasibleLp(gen);
        const Solution cold = lp::solve(p);
        if (cold.status == Status::Optimal) {
            SolveOptions opts;
            opts.warmStart = &cold.basis;
            (void)lp::solve(p, opts); // warm leg cross-checked too
        }
    }
    lp::setSolverDiff(false);
    const lp::SolverDiffStats ds = lp::solverDiffStats();
    EXPECT_GT(ds.solves, 0u);
    EXPECT_EQ(ds.disagreements, 0u) << ds.firstReport;
}

/** SRSIM_SOLVER=dense ignores warm bases entirely. */
TEST(RevisedKind, DenseKindIgnoresWarmStart)
{
    const Problem p = sampleLp();
    const Solution cold = lp::solveDense(p);
    ASSERT_EQ(cold.status, Status::Optimal);

    lp::resetSolverStats();
    SolveOptions opts;
    opts.kind = lp::SolverKind::Dense;
    opts.warmStart = &cold.basis;
    const Solution s = lp::solve(p, opts);
    const lp::SolverStats st = lp::solverStats();

    ASSERT_EQ(s.status, Status::Optimal);
    EXPECT_EQ(s.objective, cold.objective);
    EXPECT_EQ(st.warmAttempts, 0u);
    EXPECT_EQ(s.pivots, cold.pivots);
}

} // namespace
} // namespace srsim
