/**
 * @file
 * Tests for the discrete-event kernel and the statistics helpers.
 */

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "sim/event_queue.hh"
#include "sim/stats.hh"

namespace srsim {
namespace {

TEST(EventQueueTest, ExecutesInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(3.0, [&] { order.push_back(3); });
    eq.schedule(1.0, [&] { order.push_back(1); });
    eq.schedule(2.0, [&] { order.push_back(2); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_DOUBLE_EQ(eq.now(), 3.0);
}

TEST(EventQueueTest, FifoTieBreakAtSameInstant)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 5; ++i)
        eq.schedule(1.0, [&order, i] { order.push_back(i); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueueTest, EventsCanScheduleEvents)
{
    EventQueue eq;
    std::vector<double> times;
    eq.schedule(1.0, [&] {
        times.push_back(eq.now());
        eq.scheduleAfter(2.0, [&] { times.push_back(eq.now()); });
    });
    eq.run();
    ASSERT_EQ(times.size(), 2u);
    EXPECT_DOUBLE_EQ(times[1], 3.0);
}

TEST(EventQueueTest, SchedulingIntoThePastPanics)
{
    EventQueue eq;
    eq.schedule(5.0, [] {});
    eq.run();
    EXPECT_THROW(eq.schedule(4.0, [] {}), PanicError);
}

TEST(EventQueueTest, RunUntilStopsAtBoundary)
{
    EventQueue eq;
    int count = 0;
    for (double t : {1.0, 2.0, 3.0, 4.0})
        eq.schedule(t, [&] { ++count; });
    eq.runUntil(2.5);
    EXPECT_EQ(count, 2);
    EXPECT_EQ(eq.pending(), 2u);
    eq.run();
    EXPECT_EQ(count, 4);
}

TEST(EventQueueTest, RunWithLimit)
{
    EventQueue eq;
    int count = 0;
    for (int i = 0; i < 10; ++i)
        eq.schedule(i, [&] { ++count; });
    EXPECT_EQ(eq.run(3), 3u);
    EXPECT_EQ(count, 3);
}

TEST(SeriesStatsTest, MinMeanMax)
{
    SeriesStats s;
    s.add(2.0);
    s.add(6.0);
    s.add(4.0);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 6.0);
    EXPECT_DOUBLE_EQ(s.mean(), 4.0);
    EXPECT_DOUBLE_EQ(s.spread(), 4.0);
    EXPECT_EQ(s.count(), 3u);
}

TEST(SeriesStatsTest, ConstantDetection)
{
    SeriesStats s;
    s.add(5.0);
    s.add(5.0 + kTimeEps / 10);
    EXPECT_TRUE(s.constant());
    s.add(5.1);
    EXPECT_FALSE(s.constant());
}

TEST(SeriesStatsTest, EmptyStatsPanics)
{
    SeriesStats s;
    EXPECT_THROW(s.min(), PanicError);
    EXPECT_THROW(s.mean(), PanicError);
    EXPECT_THROW(s.variance(), PanicError);
}

TEST(SeriesStatsTest, VarianceAndStddev)
{
    SeriesStats s;
    for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(v);
    // Classic example: population variance 4, stddev 2.
    EXPECT_NEAR(s.variance(), 4.0, 1e-12);
    EXPECT_NEAR(s.stddev(), 2.0, 1e-12);
}

TEST(SeriesStatsTest, VarianceOfConstantSeriesIsZero)
{
    SeriesStats s;
    s.add(3.25);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
    s.add(3.25);
    s.add(3.25);
    EXPECT_NEAR(s.variance(), 0.0, 1e-15);
    EXPECT_NEAR(s.stddev(), 0.0, 1e-15);
}

TEST(SeriesStatsTest, WelfordIsStableForLargeOffsets)
{
    // Naive sum-of-squares cancels catastrophically here; Welford
    // keeps the full relative accuracy.
    SeriesStats s;
    const double base = 1e9;
    for (double v : {base + 4.0, base + 7.0, base + 13.0,
                     base + 16.0})
        s.add(v);
    EXPECT_NEAR(s.variance(), 22.5, 1e-6);
}

TEST(SeriesStatsTest, NanSamplePanics)
{
    SeriesStats s;
    s.add(1.0);
    EXPECT_THROW(s.add(std::nan("")), PanicError);
}

} // namespace
} // namespace srsim
