/**
 * @file
 * Tests for the branch-and-bound MIP layer and the exact-packet
 * interval-scheduling mode built on it.
 */

#include <gtest/gtest.h>

#include "core/sr_compiler.hh"
#include "core/sr_executor.hh"
#include "mapping/allocation.hh"
#include "solver/lp.hh"
#include "tfg/patterns.hh"
#include "topology/generalized_hypercube.hh"
#include "util/rng.hh"

namespace srsim {
namespace {

using lp::Problem;
using lp::Relation;
using lp::Solution;
using lp::Status;

TEST(MipTest, NoIntegerVariablesDelegatesToLp)
{
    Problem p;
    const auto x = p.addVariable(-1.0);
    p.addConstraint({{x, 1.0}}, Relation::LessEq, 2.5);
    const Solution s = lp::solveMip(p);
    ASSERT_EQ(s.status, Status::Optimal);
    EXPECT_NEAR(s.values[x], 2.5, 1e-6); // fractional is fine
}

TEST(MipTest, KnapsackLikeRounding)
{
    // max x (<= 2.5), x integer  ->  x = 2.
    Problem p;
    const auto x = p.addVariable(-1.0);
    p.markInteger(x);
    p.addConstraint({{x, 1.0}}, Relation::LessEq, 2.5);
    const Solution s = lp::solveMip(p);
    ASSERT_EQ(s.status, Status::Optimal);
    EXPECT_NEAR(s.values[x], 2.0, 1e-6);
    EXPECT_NEAR(s.objective, -2.0, 1e-6);
}

TEST(MipTest, IntegralityChangesTheOptimum)
{
    // max 5x + 4y s.t. 6x + 4y <= 24, x + 2y <= 6.
    // LP optimum (3, 1.5) -> 21; integer optimum (4, 0) -> 20.
    Problem p;
    const auto x = p.addVariable(-5.0, "x");
    const auto y = p.addVariable(-4.0, "y");
    p.markInteger(x);
    p.markInteger(y);
    p.addConstraint({{x, 6.0}, {y, 4.0}}, Relation::LessEq, 24.0);
    p.addConstraint({{x, 1.0}, {y, 2.0}}, Relation::LessEq, 6.0);

    const Solution relax = lp::solve(p);
    ASSERT_EQ(relax.status, Status::Optimal);
    EXPECT_NEAR(relax.objective, -21.0, 1e-6);

    const Solution mip = lp::solveMip(p);
    ASSERT_EQ(mip.status, Status::Optimal);
    EXPECT_NEAR(mip.objective, -20.0, 1e-6);
    EXPECT_NEAR(mip.values[x], 4.0, 1e-6);
    EXPECT_NEAR(mip.values[y], 0.0, 1e-6);
}

TEST(MipTest, InfeasibleIntegerDetected)
{
    // 0.4 <= x <= 0.6 has no integer point.
    Problem p;
    const auto x = p.addVariable(1.0);
    p.markInteger(x);
    p.addConstraint({{x, 1.0}}, Relation::GreaterEq, 0.4);
    p.addConstraint({{x, 1.0}}, Relation::LessEq, 0.6);
    EXPECT_EQ(lp::solveMip(p).status, Status::Infeasible);
}

TEST(MipTest, MixedIntegerContinuous)
{
    // min x + y s.t. x + y >= 3.7, x integer, y continuous <= 0.5.
    Problem p;
    const auto x = p.addVariable(1.0, "x");
    const auto y = p.addVariable(1.0, "y");
    p.markInteger(x);
    p.addConstraint({{x, 1.0}, {y, 1.0}}, Relation::GreaterEq,
                    3.7);
    p.addConstraint({{y, 1.0}}, Relation::LessEq, 0.5);
    const Solution s = lp::solveMip(p);
    ASSERT_EQ(s.status, Status::Optimal);
    // Best: x = 4 covers 3.7 alone (x = 3 would need y = 0.7 > 0.5),
    // so the optimum is (4, 0) with objective 4.
    EXPECT_NEAR(s.values[x], 4.0, 1e-6);
    EXPECT_NEAR(s.objective, 4.0, 1e-6);
}

TEST(MipTest, NodeCapReported)
{
    // A deliberately branchy instance with a tiny node budget.
    Problem p;
    Rng rng(3);
    std::vector<std::size_t> vars;
    for (int i = 0; i < 12; ++i) {
        vars.push_back(p.addVariable(-rng.uniformReal(1.0, 2.0)));
        p.markInteger(vars.back());
        p.addConstraint({{vars.back(), 1.0}}, Relation::LessEq,
                        1.0); // binary-ish
    }
    lp::Constraint budget;
    for (auto v : vars)
        budget.terms.emplace_back(v, rng.uniformReal(1.0, 3.0));
    budget.rel = Relation::LessEq;
    budget.rhs = 6.5;
    p.addConstraint(budget);

    lp::MipOptions opts;
    opts.maxNodes = 3;
    const Solution s = lp::solveMip(p, opts);
    EXPECT_EQ(s.status, Status::IterationLimit);
}

TEST(MipTest, RandomInstancesMatchBruteForce)
{
    // Small random 0/1 problems: compare against exhaustive
    // enumeration.
    for (int seed = 1; seed <= 8; ++seed) {
        Rng rng(static_cast<std::uint64_t>(seed));
        const int n = rng.uniformInt(3, 6);
        std::vector<double> cost(static_cast<std::size_t>(n));
        std::vector<double> weight(static_cast<std::size_t>(n));
        for (int i = 0; i < n; ++i) {
            cost[static_cast<std::size_t>(i)] =
                rng.uniformReal(1.0, 5.0);
            weight[static_cast<std::size_t>(i)] =
                rng.uniformReal(1.0, 4.0);
        }
        const double cap = rng.uniformReal(3.0, 8.0);

        Problem p;
        lp::Constraint knap;
        for (int i = 0; i < n; ++i) {
            const auto v = p.addVariable(
                -cost[static_cast<std::size_t>(i)]);
            p.markInteger(v);
            p.addConstraint({{v, 1.0}}, Relation::LessEq, 1.0);
            knap.terms.emplace_back(
                v, weight[static_cast<std::size_t>(i)]);
        }
        knap.rel = Relation::LessEq;
        knap.rhs = cap;
        p.addConstraint(knap);

        const Solution s = lp::solveMip(p);
        ASSERT_EQ(s.status, Status::Optimal) << "seed " << seed;

        double best = 0.0;
        for (int mask = 0; mask < (1 << n); ++mask) {
            double w = 0.0, c = 0.0;
            for (int i = 0; i < n; ++i) {
                if (mask & (1 << i)) {
                    w += weight[static_cast<std::size_t>(i)];
                    c += cost[static_cast<std::size_t>(i)];
                }
            }
            if (w <= cap)
                best = std::max(best, c);
        }
        EXPECT_NEAR(-s.objective, best, 1e-6) << "seed " << seed;
    }
}

TEST(MipTest, ExactPacketSchedulingCompilesAndAligns)
{
    // The aligned fork-join workload, scheduled with slot lengths
    // solved as the paper's integer program.
    TaskFlowGraph g = patterns::forkJoin(4, 1925.0, 1000.0,
                                         1925.0, 1536.0);
    TimingModel tm;
    tm.apSpeed = 25.0;
    tm.bandwidth = 64.0;
    tm.packetBytes = 64.0;
    const auto cube = GeneralizedHypercube::binaryCube(4);
    const TaskAllocation alloc = alloc::roundRobin(g, cube, 5);

    SrCompilerConfig cfg;
    cfg.inputPeriod = 2 * 77.0;
    cfg.scheduling.exactPacketMip = true;
    cfg.feedbackRounds = 1;
    const SrCompileResult r =
        compileScheduledRouting(g, cube, alloc, tm, cfg);
    ASSERT_TRUE(r.feasible) << r.detail;
    EXPECT_TRUE(r.verification.ok);
    EXPECT_TRUE(isPacketAligned(r.omega, tm.packetTime()));
    const SrExecutionResult ex =
        executeSchedule(g, alloc, tm, r.bounds, r.omega, 20);
    EXPECT_TRUE(ex.consistent(4));
}

} // namespace
} // namespace srsim
