/**
 * @file
 * Unit and property tests for the two-phase simplex LP solver.
 */

#include <gtest/gtest.h>

#include "solver/lp.hh"
#include "util/rng.hh"

namespace srsim {
namespace {

using lp::Problem;
using lp::Relation;
using lp::Solution;
using lp::Status;

TEST(LpTest, TrivialUnconstrainedMinimumIsZero)
{
    Problem p;
    p.addVariable(1.0);
    const Solution s = lp::solve(p);
    ASSERT_EQ(s.status, Status::Optimal);
    EXPECT_NEAR(s.objective, 0.0, 1e-9);
    EXPECT_NEAR(s.values[0], 0.0, 1e-9);
}

TEST(LpTest, SimpleMaximizationViaNegatedCosts)
{
    // max 3x + 2y s.t. x + y <= 4, x + 3y <= 6  ->  min -3x - 2y.
    Problem p;
    const auto x = p.addVariable(-3.0, "x");
    const auto y = p.addVariable(-2.0, "y");
    p.addConstraint({{x, 1.0}, {y, 1.0}}, Relation::LessEq, 4.0);
    p.addConstraint({{x, 1.0}, {y, 3.0}}, Relation::LessEq, 6.0);
    const Solution s = lp::solve(p);
    ASSERT_EQ(s.status, Status::Optimal);
    EXPECT_NEAR(s.objective, -12.0, 1e-6); // x=4, y=0
    EXPECT_NEAR(s.values[x], 4.0, 1e-6);
    EXPECT_NEAR(s.values[y], 0.0, 1e-6);
}

TEST(LpTest, EqualityConstraintRespected)
{
    // min x + 2y s.t. x + y = 3, y >= 1.
    Problem p;
    const auto x = p.addVariable(1.0, "x");
    const auto y = p.addVariable(2.0, "y");
    p.addConstraint({{x, 1.0}, {y, 1.0}}, Relation::Equal, 3.0);
    p.addConstraint({{y, 1.0}}, Relation::GreaterEq, 1.0);
    const Solution s = lp::solve(p);
    ASSERT_EQ(s.status, Status::Optimal);
    EXPECT_NEAR(s.values[x] + s.values[y], 3.0, 1e-6);
    EXPECT_NEAR(s.values[y], 1.0, 1e-6);
    EXPECT_NEAR(s.objective, 4.0, 1e-6);
}

TEST(LpTest, InfeasibleDetected)
{
    // x <= 1 and x >= 2 cannot both hold.
    Problem p;
    const auto x = p.addVariable(1.0, "x");
    p.addConstraint({{x, 1.0}}, Relation::LessEq, 1.0);
    p.addConstraint({{x, 1.0}}, Relation::GreaterEq, 2.0);
    EXPECT_EQ(lp::solve(p).status, Status::Infeasible);
}

TEST(LpTest, InfeasibleEqualitySystemDetected)
{
    // x + y = 1 and x + y = 2.
    Problem p;
    const auto x = p.addVariable(0.0);
    const auto y = p.addVariable(0.0);
    p.addConstraint({{x, 1.0}, {y, 1.0}}, Relation::Equal, 1.0);
    p.addConstraint({{x, 1.0}, {y, 1.0}}, Relation::Equal, 2.0);
    EXPECT_EQ(lp::solve(p).status, Status::Infeasible);
}

TEST(LpTest, UnboundedDetected)
{
    // min -x with only x >= 1: x can grow without bound.
    Problem p;
    const auto x = p.addVariable(-1.0);
    p.addConstraint({{x, 1.0}}, Relation::GreaterEq, 1.0);
    EXPECT_EQ(lp::solve(p).status, Status::Unbounded);
}

TEST(LpTest, NegativeRhsNormalized)
{
    // -x <= -2  <=>  x >= 2; min x -> 2.
    Problem p;
    const auto x = p.addVariable(1.0);
    p.addConstraint({{x, -1.0}}, Relation::LessEq, -2.0);
    const Solution s = lp::solve(p);
    ASSERT_EQ(s.status, Status::Optimal);
    EXPECT_NEAR(s.values[x], 2.0, 1e-6);
}

TEST(LpTest, RedundantConstraintsHandled)
{
    Problem p;
    const auto x = p.addVariable(1.0);
    p.addConstraint({{x, 1.0}}, Relation::GreaterEq, 1.0);
    p.addConstraint({{x, 2.0}}, Relation::GreaterEq, 2.0); // same
    p.addConstraint({{x, 1.0}}, Relation::LessEq, 5.0);
    const Solution s = lp::solve(p);
    ASSERT_EQ(s.status, Status::Optimal);
    EXPECT_NEAR(s.values[x], 1.0, 1e-6);
}

TEST(LpTest, DegenerateVertexTerminates)
{
    // Classic degeneracy: multiple constraints meet at the optimum.
    Problem p;
    const auto x = p.addVariable(-1.0);
    const auto y = p.addVariable(-1.0);
    p.addConstraint({{x, 1.0}}, Relation::LessEq, 1.0);
    p.addConstraint({{y, 1.0}}, Relation::LessEq, 1.0);
    p.addConstraint({{x, 1.0}, {y, 1.0}}, Relation::LessEq, 2.0);
    p.addConstraint({{x, 1.0}, {y, 2.0}}, Relation::LessEq, 3.0);
    const Solution s = lp::solve(p);
    ASSERT_EQ(s.status, Status::Optimal);
    EXPECT_NEAR(s.objective, -2.0, 1e-6);
}

TEST(LpTest, TransportationLikeProblem)
{
    // Two suppliers (cap 10, 20), two demands (8, 12); minimize
    // transport cost; classic LP with known optimum.
    Problem p;
    const auto x11 = p.addVariable(1.0);
    const auto x12 = p.addVariable(4.0);
    const auto x21 = p.addVariable(2.0);
    const auto x22 = p.addVariable(1.0);
    p.addConstraint({{x11, 1.0}, {x12, 1.0}}, Relation::LessEq, 10.0);
    p.addConstraint({{x21, 1.0}, {x22, 1.0}}, Relation::LessEq, 20.0);
    p.addConstraint({{x11, 1.0}, {x21, 1.0}}, Relation::Equal, 8.0);
    p.addConstraint({{x12, 1.0}, {x22, 1.0}}, Relation::Equal, 12.0);
    const Solution s = lp::solve(p);
    ASSERT_EQ(s.status, Status::Optimal);
    // Optimal: x11=8 (cost 8), x22=12 (cost 12) -> 20.
    EXPECT_NEAR(s.objective, 20.0, 1e-6);
}

TEST(LpTest, SolutionValuesNonNegative)
{
    Problem p;
    const auto x = p.addVariable(-1.0);
    const auto y = p.addVariable(1.0);
    p.addConstraint({{x, 1.0}, {y, -1.0}}, Relation::LessEq, 2.0);
    p.addConstraint({{x, 1.0}}, Relation::LessEq, 3.0);
    const Solution s = lp::solve(p);
    ASSERT_EQ(s.status, Status::Optimal);
    for (double v : s.values)
        EXPECT_GE(v, -1e-9);
}

TEST(LpTest, ConstraintWithUnknownVariablePanics)
{
    Problem p;
    p.addVariable(1.0);
    lp::Constraint c;
    c.terms.emplace_back(5, 1.0);
    EXPECT_THROW(p.addConstraint(std::move(c)), PanicError);
}

/**
 * Property suite: random feasibility problems built from a known
 * feasible point must be reported feasible, and the returned
 * solution must satisfy every constraint.
 */
class LpRandomFeasible : public ::testing::TestWithParam<int>
{};

TEST_P(LpRandomFeasible, SolutionSatisfiesAllConstraints)
{
    Rng rng(static_cast<std::uint64_t>(GetParam()));
    const int nvar = rng.uniformInt(3, 10);
    const int ncon = rng.uniformInt(2, 12);

    Problem p;
    std::vector<double> feas;
    for (int i = 0; i < nvar; ++i) {
        p.addVariable(rng.uniformReal(-2.0, 2.0));
        feas.push_back(rng.uniformReal(0.0, 5.0));
    }
    std::vector<lp::Constraint> cons;
    for (int c = 0; c < ncon; ++c) {
        lp::Constraint con;
        double lhs = 0.0;
        for (int i = 0; i < nvar; ++i) {
            if (rng.chance(0.6)) {
                const double a = rng.uniformReal(-3.0, 3.0);
                con.terms.emplace_back(static_cast<std::size_t>(i),
                                       a);
                lhs += a * feas[static_cast<std::size_t>(i)];
            }
        }
        if (con.terms.empty())
            continue;
        // Make the constraint hold at the feasible point.
        if (rng.chance(0.5)) {
            con.rel = Relation::LessEq;
            con.rhs = lhs + rng.uniformReal(0.0, 4.0);
        } else {
            con.rel = Relation::GreaterEq;
            con.rhs = lhs - rng.uniformReal(0.0, 4.0);
        }
        cons.push_back(con);
        p.addConstraint(con);
    }
    // Bound every variable so the LP cannot be unbounded.
    for (int i = 0; i < nvar; ++i) {
        lp::Constraint bound;
        bound.terms.emplace_back(static_cast<std::size_t>(i), 1.0);
        bound.rel = Relation::LessEq;
        bound.rhs = 50.0;
        cons.push_back(bound);
        p.addConstraint(bound);
    }

    const Solution s = lp::solve(p);
    ASSERT_EQ(s.status, Status::Optimal) << "seed " << GetParam();
    for (const auto &con : cons) {
        double lhs = 0.0;
        for (const auto &[idx, a] : con.terms)
            lhs += a * s.values[idx];
        if (con.rel == Relation::LessEq)
            EXPECT_LE(lhs, con.rhs + 1e-6);
        else if (con.rel == Relation::GreaterEq)
            EXPECT_GE(lhs, con.rhs - 1e-6);
        else
            EXPECT_NEAR(lhs, con.rhs, 1e-6);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LpRandomFeasible,
                         ::testing::Range(1, 26));

} // namespace
} // namespace srsim
