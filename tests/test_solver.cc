/**
 * @file
 * Unit and property tests for the two-phase simplex LP solver.
 */

#include <gtest/gtest.h>

#include "solver/lp.hh"
#include "util/rng.hh"

namespace srsim {
namespace {

using lp::Problem;
using lp::Relation;
using lp::Solution;
using lp::Status;

TEST(LpTest, TrivialUnconstrainedMinimumIsZero)
{
    Problem p;
    p.addVariable(1.0);
    const Solution s = lp::solve(p);
    ASSERT_EQ(s.status, Status::Optimal);
    EXPECT_NEAR(s.objective, 0.0, 1e-9);
    EXPECT_NEAR(s.values[0], 0.0, 1e-9);
}

TEST(LpTest, SimpleMaximizationViaNegatedCosts)
{
    // max 3x + 2y s.t. x + y <= 4, x + 3y <= 6  ->  min -3x - 2y.
    Problem p;
    const auto x = p.addVariable(-3.0, "x");
    const auto y = p.addVariable(-2.0, "y");
    p.addConstraint({{x, 1.0}, {y, 1.0}}, Relation::LessEq, 4.0);
    p.addConstraint({{x, 1.0}, {y, 3.0}}, Relation::LessEq, 6.0);
    const Solution s = lp::solve(p);
    ASSERT_EQ(s.status, Status::Optimal);
    EXPECT_NEAR(s.objective, -12.0, 1e-6); // x=4, y=0
    EXPECT_NEAR(s.values[x], 4.0, 1e-6);
    EXPECT_NEAR(s.values[y], 0.0, 1e-6);
}

TEST(LpTest, EqualityConstraintRespected)
{
    // min x + 2y s.t. x + y = 3, y >= 1.
    Problem p;
    const auto x = p.addVariable(1.0, "x");
    const auto y = p.addVariable(2.0, "y");
    p.addConstraint({{x, 1.0}, {y, 1.0}}, Relation::Equal, 3.0);
    p.addConstraint({{y, 1.0}}, Relation::GreaterEq, 1.0);
    const Solution s = lp::solve(p);
    ASSERT_EQ(s.status, Status::Optimal);
    EXPECT_NEAR(s.values[x] + s.values[y], 3.0, 1e-6);
    EXPECT_NEAR(s.values[y], 1.0, 1e-6);
    EXPECT_NEAR(s.objective, 4.0, 1e-6);
}

TEST(LpTest, InfeasibleDetected)
{
    // x <= 1 and x >= 2 cannot both hold.
    Problem p;
    const auto x = p.addVariable(1.0, "x");
    p.addConstraint({{x, 1.0}}, Relation::LessEq, 1.0);
    p.addConstraint({{x, 1.0}}, Relation::GreaterEq, 2.0);
    EXPECT_EQ(lp::solve(p).status, Status::Infeasible);
}

TEST(LpTest, InfeasibleEqualitySystemDetected)
{
    // x + y = 1 and x + y = 2.
    Problem p;
    const auto x = p.addVariable(0.0);
    const auto y = p.addVariable(0.0);
    p.addConstraint({{x, 1.0}, {y, 1.0}}, Relation::Equal, 1.0);
    p.addConstraint({{x, 1.0}, {y, 1.0}}, Relation::Equal, 2.0);
    EXPECT_EQ(lp::solve(p).status, Status::Infeasible);
}

TEST(LpTest, UnboundedDetected)
{
    // min -x with only x >= 1: x can grow without bound.
    Problem p;
    const auto x = p.addVariable(-1.0);
    p.addConstraint({{x, 1.0}}, Relation::GreaterEq, 1.0);
    EXPECT_EQ(lp::solve(p).status, Status::Unbounded);
}

TEST(LpTest, NegativeRhsNormalized)
{
    // -x <= -2  <=>  x >= 2; min x -> 2.
    Problem p;
    const auto x = p.addVariable(1.0);
    p.addConstraint({{x, -1.0}}, Relation::LessEq, -2.0);
    const Solution s = lp::solve(p);
    ASSERT_EQ(s.status, Status::Optimal);
    EXPECT_NEAR(s.values[x], 2.0, 1e-6);
}

TEST(LpTest, RedundantConstraintsHandled)
{
    Problem p;
    const auto x = p.addVariable(1.0);
    p.addConstraint({{x, 1.0}}, Relation::GreaterEq, 1.0);
    p.addConstraint({{x, 2.0}}, Relation::GreaterEq, 2.0); // same
    p.addConstraint({{x, 1.0}}, Relation::LessEq, 5.0);
    const Solution s = lp::solve(p);
    ASSERT_EQ(s.status, Status::Optimal);
    EXPECT_NEAR(s.values[x], 1.0, 1e-6);
}

TEST(LpTest, DegenerateVertexTerminates)
{
    // Classic degeneracy: multiple constraints meet at the optimum.
    Problem p;
    const auto x = p.addVariable(-1.0);
    const auto y = p.addVariable(-1.0);
    p.addConstraint({{x, 1.0}}, Relation::LessEq, 1.0);
    p.addConstraint({{y, 1.0}}, Relation::LessEq, 1.0);
    p.addConstraint({{x, 1.0}, {y, 1.0}}, Relation::LessEq, 2.0);
    p.addConstraint({{x, 1.0}, {y, 2.0}}, Relation::LessEq, 3.0);
    const Solution s = lp::solve(p);
    ASSERT_EQ(s.status, Status::Optimal);
    EXPECT_NEAR(s.objective, -2.0, 1e-6);
}

TEST(LpTest, TransportationLikeProblem)
{
    // Two suppliers (cap 10, 20), two demands (8, 12); minimize
    // transport cost; classic LP with known optimum.
    Problem p;
    const auto x11 = p.addVariable(1.0);
    const auto x12 = p.addVariable(4.0);
    const auto x21 = p.addVariable(2.0);
    const auto x22 = p.addVariable(1.0);
    p.addConstraint({{x11, 1.0}, {x12, 1.0}}, Relation::LessEq, 10.0);
    p.addConstraint({{x21, 1.0}, {x22, 1.0}}, Relation::LessEq, 20.0);
    p.addConstraint({{x11, 1.0}, {x21, 1.0}}, Relation::Equal, 8.0);
    p.addConstraint({{x12, 1.0}, {x22, 1.0}}, Relation::Equal, 12.0);
    const Solution s = lp::solve(p);
    ASSERT_EQ(s.status, Status::Optimal);
    // Optimal: x11=8 (cost 8), x22=12 (cost 12) -> 20.
    EXPECT_NEAR(s.objective, 20.0, 1e-6);
}

TEST(LpTest, SolutionValuesNonNegative)
{
    Problem p;
    const auto x = p.addVariable(-1.0);
    const auto y = p.addVariable(1.0);
    p.addConstraint({{x, 1.0}, {y, -1.0}}, Relation::LessEq, 2.0);
    p.addConstraint({{x, 1.0}}, Relation::LessEq, 3.0);
    const Solution s = lp::solve(p);
    ASSERT_EQ(s.status, Status::Optimal);
    for (double v : s.values)
        EXPECT_GE(v, -1e-9);
}

TEST(LpTest, ConstraintWithUnknownVariablePanics)
{
    Problem p;
    p.addVariable(1.0);
    lp::Constraint c;
    c.terms.emplace_back(5, 1.0);
    EXPECT_THROW(p.addConstraint(std::move(c)), PanicError);
}

/**
 * Property suite: random feasibility problems built from a known
 * feasible point must be reported feasible, and the returned
 * solution must satisfy every constraint.
 */
class LpRandomFeasible : public ::testing::TestWithParam<int>
{};

TEST_P(LpRandomFeasible, SolutionSatisfiesAllConstraints)
{
    Rng rng(static_cast<std::uint64_t>(GetParam()));
    const int nvar = rng.uniformInt(3, 10);
    const int ncon = rng.uniformInt(2, 12);

    Problem p;
    std::vector<double> feas;
    for (int i = 0; i < nvar; ++i) {
        p.addVariable(rng.uniformReal(-2.0, 2.0));
        feas.push_back(rng.uniformReal(0.0, 5.0));
    }
    std::vector<lp::Constraint> cons;
    for (int c = 0; c < ncon; ++c) {
        lp::Constraint con;
        double lhs = 0.0;
        for (int i = 0; i < nvar; ++i) {
            if (rng.chance(0.6)) {
                const double a = rng.uniformReal(-3.0, 3.0);
                con.terms.emplace_back(static_cast<std::size_t>(i),
                                       a);
                lhs += a * feas[static_cast<std::size_t>(i)];
            }
        }
        if (con.terms.empty())
            continue;
        // Make the constraint hold at the feasible point.
        if (rng.chance(0.5)) {
            con.rel = Relation::LessEq;
            con.rhs = lhs + rng.uniformReal(0.0, 4.0);
        } else {
            con.rel = Relation::GreaterEq;
            con.rhs = lhs - rng.uniformReal(0.0, 4.0);
        }
        cons.push_back(con);
        p.addConstraint(con);
    }
    // Bound every variable so the LP cannot be unbounded.
    for (int i = 0; i < nvar; ++i) {
        lp::Constraint bound;
        bound.terms.emplace_back(static_cast<std::size_t>(i), 1.0);
        bound.rel = Relation::LessEq;
        bound.rhs = 50.0;
        cons.push_back(bound);
        p.addConstraint(bound);
    }

    const Solution s = lp::solve(p);
    ASSERT_EQ(s.status, Status::Optimal) << "seed " << GetParam();
    for (const auto &con : cons) {
        double lhs = 0.0;
        for (const auto &[idx, a] : con.terms)
            lhs += a * s.values[idx];
        if (con.rel == Relation::LessEq)
            EXPECT_LE(lhs, con.rhs + 1e-6);
        else if (con.rel == Relation::GreaterEq)
            EXPECT_GE(lhs, con.rhs - 1e-6);
        else
            EXPECT_NEAR(lhs, con.rhs, 1e-6);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LpRandomFeasible,
                         ::testing::Range(1, 26));

// ---------------------------------------------------------------
// Numerical-hardening regressions. Each of these failed before the
// solver moved to scale-relative tolerances and the sticky Bland
// switch: the first was silently accepted, the second aborted the
// process, the third hit the iteration limit by cycling.
// ---------------------------------------------------------------

TEST(LpNumericsTest, TinyInfeasiblePairIsNotSwallowed)
{
    // x = 1e-7 and x = 2e-7 differ by less than the old *absolute*
    // phase-1 threshold (1e-6), which accepted this system as
    // feasible. The relative test must reject it.
    Problem p;
    const auto x = p.addVariable(1.0, "x");
    p.addConstraint({{x, 1.0}}, Relation::Equal, 1e-7);
    p.addConstraint({{x, 1.0}}, Relation::Equal, 2e-7);
    EXPECT_EQ(lp::solve(p).status, Status::Infeasible);
}

TEST(LpNumericsTest, DegeneratePivotReturnsStatusNotAbort)
{
    // A pivot column of magnitude 1e-13 under eps = 1e-15 used to
    // trip the absolute degenerate-pivot assertion and abort. Any
    // status is acceptable; escaping exceptions are not.
    Problem p;
    const auto x = p.addVariable(-1.0, "x");
    p.addConstraint({{x, 1e-13}}, Relation::LessEq, 1.0);
    lp::SolveOptions opts;
    opts.eps = 1e-15;
    Solution s;
    EXPECT_NO_THROW(s = lp::solve(p, opts));
    EXPECT_TRUE(s.status == Status::Optimal ||
                s.status == Status::Unbounded ||
                s.status == Status::NumericalFailure)
        << lp::statusName(s.status);
}

TEST(LpNumericsTest, BealeCycleSolvesUnderTightPivotBudget)
{
    // Beale's classic cycling instance. Dantzig pricing alone
    // cycles forever; a Bland switch that is not sticky re-enters
    // the cycle. With the sticky switch the optimum (-1/20) is
    // reached well within 16 pivots.
    Problem p;
    const auto x1 = p.addVariable(-0.75, "x1");
    const auto x2 = p.addVariable(150.0, "x2");
    const auto x3 = p.addVariable(-0.02, "x3");
    const auto x4 = p.addVariable(6.0, "x4");
    p.addConstraint({{x1, 0.25}, {x2, -60.0}, {x3, -0.04}, {x4, 9.0}},
                    Relation::LessEq, 0.0);
    p.addConstraint({{x1, 0.5}, {x2, -90.0}, {x3, -0.02}, {x4, 3.0}},
                    Relation::LessEq, 0.0);
    p.addConstraint({{x3, 1.0}}, Relation::LessEq, 1.0);
    lp::SolveOptions opts;
    opts.maxIterations = 16;
    const Solution s = lp::solve(p, opts);
    ASSERT_EQ(s.status, Status::Optimal) << lp::statusName(s.status);
    EXPECT_NEAR(s.objective, -0.05, 1e-9);
}

TEST(LpNumericsTest, LargeScaleFeasibleSystemNotMisclassified)
{
    // At rhs scale 1e12 the phase-1 residual after elimination is
    // far above the old absolute 1e-6 threshold even for a clean
    // feasible system; the relative test must accept it.
    Problem p;
    const auto x = p.addVariable(1.0, "x");
    const auto y = p.addVariable(1.0, "y");
    p.addConstraint({{x, 1.0}, {y, 1.0}}, Relation::Equal, 1e12);
    p.addConstraint({{x, 1.0}, {y, -1.0}}, Relation::Equal, 2e8);
    const Solution s = lp::solve(p);
    ASSERT_EQ(s.status, Status::Optimal) << lp::statusName(s.status);
    EXPECT_NEAR(s.values[x] + s.values[y], 1e12, 1.0);
}

TEST(LpNumericsTest, MixedScaleCoefficientsStayOptimal)
{
    // Columns spanning ~1e8 in magnitude: per-column relative
    // tolerances must neither reject the pivot nor misprice.
    Problem p;
    const auto x = p.addVariable(1.0, "x");
    const auto y = p.addVariable(1e-4, "y");
    p.addConstraint({{x, 1e8}, {y, 1.0}}, Relation::GreaterEq, 1e8);
    p.addConstraint({{x, 1.0}, {y, 1e-8}}, Relation::LessEq, 10.0);
    const Solution s = lp::solve(p);
    ASSERT_EQ(s.status, Status::Optimal) << lp::statusName(s.status);
}

TEST(LpNumericsTest, MipOnIllScaledRelaxationSurvives)
{
    // Branch and bound over a large-scale relaxation: the solver
    // must neither abort nor return a fractional incumbent.
    Problem p;
    const auto x = p.addVariable(-1.0, "x");
    const auto y = p.addVariable(-1.0, "y");
    p.markInteger(x);
    p.markInteger(y);
    p.addConstraint({{x, 1e6}, {y, 1e6}}, Relation::LessEq, 7.5e6);
    p.addConstraint({{x, 1.0}}, Relation::LessEq, 5.0);
    const Solution s = lp::solveMip(p);
    ASSERT_EQ(s.status, Status::Optimal) << lp::statusName(s.status);
    EXPECT_NEAR(s.values[x] + s.values[y], 7.0, 1e-6);
}

} // namespace
} // namespace srsim
