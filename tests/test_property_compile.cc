/**
 * @file
 * Property/fuzz suite for the full SR compiler: seeded random
 * layered TFGs on random fabrics from the topology factory, compiled
 * end to end. Properties pinned:
 *
 *  - every schedule the compiler reports feasible passes the
 *    *independent* verifier (the compiler's own gate is disabled so
 *    it cannot vouch for itself);
 *  - every infeasible report names the failing stage and carries a
 *    human-readable detail;
 *  - compilation is deterministic: serial (1 thread) and parallel
 *    (2, 8 threads) compiles of the same instance serialize to
 *    byte-identical schedules.
 */

#include <algorithm>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/schedule_io.hh"
#include "core/sr_compiler.hh"
#include "core/verifier.hh"
#include "mapping/allocation.hh"
#include "metrics/metrics.hh"
#include "tfg/random_tfg.hh"
#include "tfg/timing.hh"
#include "topology/factory.hh"
#include "trace/trace.hh"
#include "util/rng.hh"
#include "util/thread_pool.hh"

namespace srsim {
namespace {

/** One randomized compile instance, fully determined by its seed. */
struct Instance
{
    TaskFlowGraph g;
    std::unique_ptr<Topology> topo;
    TaskAllocation alloc{1, 1}; // placeholder until allocated
    TimingModel tm;
    SrCompilerConfig cfg;
};

Instance
makeInstance(std::uint64_t seed)
{
    Rng rng(deriveSeed(0xF00D, seed));

    RandomTfgParams p;
    p.layers = rng.uniformInt(3, 5);
    p.minWidth = 1;
    p.maxWidth = rng.uniformInt(2, 3);
    p.edgeProbability = rng.uniformReal(0.4, 0.9);
    p.skipProbability = rng.uniformReal(0.0, 0.2);
    p.minOps = 100.0;
    p.maxOps = 1500.0;
    p.minBytes = 64.0;
    p.maxBytes = 2048.0;

    Instance in;
    in.g = buildRandomTfg(p, rng);

    static const char *kSpecs[] = {
        "cube:3",    "cube:4",   "torus:4,4", "torus:8",
        "mesh:3,3",  "ghc:2,4",  "ghc:3,3",   "torus:2,2,2",
    };
    in.topo = makeTopology(
        kSpecs[rng.index(sizeof(kSpecs) / sizeof(kSpecs[0]))]);

    // The timing model requires tau_m <= tau_c (communication fits
    // inside one pipeline stage). Pick the bandwidth, then derive an
    // AP speed from the graph actually drawn so the largest message
    // never outlasts the largest task: with
    //   apSpeed = f * maxOps * bandwidth / maxBytes,  f <= 1,
    // tau_c = maxOps / apSpeed = maxBytes / (f * bandwidth) >= tau_m.
    in.tm.bandwidth = rng.chance(0.5) ? 64.0 : 128.0;
    double maxOps = 0.0, maxBytes = 0.0;
    for (TaskId t = 0; t < in.g.numTasks(); ++t)
        maxOps = std::max(maxOps, in.g.task(t).operations);
    for (MessageId m = 0; m < in.g.numMessages(); ++m)
        maxBytes = std::max(maxBytes, in.g.message(m).bytes);
    in.tm.apSpeed = rng.uniformReal(0.3, 1.0) * maxOps *
                    in.tm.bandwidth / maxBytes;

    in.alloc = rng.chance(0.5)
                   ? alloc::roundRobin(in.g, *in.topo,
                                       rng.uniformInt(1, 13))
                   : alloc::random(in.g, *in.topo, rng);

    in.cfg.inputPeriod =
        rng.uniformReal(1.0, 3.0) * in.tm.tauC(in.g);
    // The property below re-verifies independently; the compiler
    // must not get credit for its internal gate.
    in.cfg.verify = false;
    in.cfg.assign.maxRestarts = 2;
    in.cfg.assign.seed = deriveSeed(seed, 1);
    return in;
}

TEST(PropertyCompileTest, FeasibleImpliesVerifiedInfeasibleNamesStage)
{
    ThreadPool::setGlobalSize(ThreadPool::configuredSize());
    int feasible = 0, infeasible = 0;
    for (std::uint64_t seed = 0; seed < 50; ++seed) {
        const Instance in = makeInstance(seed);
        const SrCompileResult r = compileScheduledRouting(
            in.g, *in.topo, in.alloc, in.tm, in.cfg);

        if (r.feasible) {
            ++feasible;
            const VerifyResult v =
                verifySchedule(in.g, *in.topo, in.alloc, r.bounds,
                               r.omega);
            EXPECT_TRUE(v.ok)
                << "seed " << seed << " on " << in.topo->name()
                << ": "
                << (v.violations.empty() ? "?"
                                         : v.violations.front());
        } else {
            ++infeasible;
            EXPECT_NE(r.stage, SrFailureStage::None)
                << "seed " << seed;
            EXPECT_FALSE(r.detail.empty()) << "seed " << seed;
            const std::string name = srFailureStageName(r.stage);
            EXPECT_TRUE(name == "utilization" ||
                        name == "allocation" ||
                        name == "scheduling" ||
                        name == "verification")
                << "seed " << seed << " stage " << name;
        }
    }
    // The generator must exercise both outcomes, or the properties
    // above are vacuous.
    EXPECT_GT(feasible, 0);
    EXPECT_GT(infeasible, 0);
    ThreadPool::setGlobalSize(1);
}

/** Serialized schedule text, or the failure stage on infeasibility. */
std::string
compileFingerprint(const Instance &in)
{
    const SrCompileResult r = compileScheduledRouting(
        in.g, *in.topo, in.alloc, in.tm, in.cfg);
    if (!r.feasible)
        return std::string("infeasible:") +
               srFailureStageName(r.stage) + ":" + r.detail;
    std::ostringstream oss;
    writeSchedule(oss, r.omega);
    return oss.str();
}

TEST(PropertyCompileTest, SerialAndParallelCompilesAreByteIdentical)
{
    for (std::uint64_t seed : {3ull, 11ull, 27ull, 42ull}) {
        const Instance in = makeInstance(seed);

        ThreadPool::setGlobalSize(1);
        const std::string serial = compileFingerprint(in);
        for (std::size_t threads : {2u, 8u}) {
            ThreadPool::setGlobalSize(threads);
            EXPECT_EQ(compileFingerprint(in), serial)
                << "seed " << seed << " threads " << threads;
        }
        ThreadPool::setGlobalSize(1);
    }
}

/**
 * Observability must be pure observation: with tracing and metrics
 * switched on, every compile still serializes byte-identically to
 * the untraced serial baseline, at 1, 2, and 8 threads.
 */
TEST(PropertyCompileTest, ObservabilityDoesNotPerturbCompiles)
{
    for (std::uint64_t seed : {3ull, 27ull}) {
        const Instance in = makeInstance(seed);

        ThreadPool::setGlobalSize(1);
        const std::string baseline = compileFingerprint(in);

        trace::Tracer::setEnabled(true);
        metrics::Registry::setEnabled(true);
        for (std::size_t threads : {1u, 2u, 8u}) {
            ThreadPool::setGlobalSize(threads);
            trace::Tracer::instance().clear();
            EXPECT_EQ(compileFingerprint(in), baseline)
                << "seed " << seed << " threads " << threads;
            EXPECT_GT(trace::Tracer::instance().size(), 0u)
                << "tracing was supposed to be on";
        }
        trace::Tracer::setEnabled(false);
        metrics::Registry::setEnabled(false);
        trace::Tracer::instance().clear();
        metrics::Registry::global().clear();
        ThreadPool::setGlobalSize(1);
    }
}

} // namespace
} // namespace srsim
