/**
 * @file
 * Fig. 10: DVB on a 4x4x4 torus at B = 128 bytes/us. Scheduled
 * routing removes every instance of output inconsistency and
 * sustains the maximum throughput at the highest load, where
 * wormhole routing does not.
 */

#include "fig_common.hh"
#include "topology/torus.hh"

int
main()
{
    using namespace srsim;
    const Torus t444({4, 4, 4});
    bench::runThroughputPanel("Fig. 10 (context: B = 64)", t444,
                              64.0);
    bench::runThroughputPanel("Fig. 10", t444, 128.0);
    return 0;
}
