/**
 * @file
 * Solver warm-start benchmark: pivots and wall time, cold vs warm.
 *
 * Two scenarios where the revised solver's warm starts should pay:
 *
 *  - `churn`: admit/remove cycles of one skip-edge message through
 *    the online service on the fig10 workload (DVB TFG, 4x4x4
 *    torus, bandwidth 128), with the content-addressed schedule
 *    cache OFF so every request is a real dirty-subset re-solve.
 *    Under SRSIM_SOLVER=dense every re-solve is a cold two-phase
 *    run; under the default warm-start stack the recurring subsets
 *    hit the per-subset basis cache after the first cycle and
 *    resume in a handful of pivots.
 *
 *  - `mip`: branch-and-bound over packet-granular covering
 *    programs. Children warm-start from the parent node's optimal
 *    basis (one appended bound row, dual-simplex repair) instead of
 *    solving each node from scratch.
 *
 * Both run the identical request stream under SolverKind::Dense
 * (cold baseline) and SolverKind::Sparse (warm), reporting total
 * simplex pivots, warm-start hit rates, and wall time. Pivot counts
 * are deterministic; wall time is reported but not a gate. Prints a
 * human summary to stderr and JSON to stdout (or argv[1]).
 */

#include <chrono>
#include <cstdint>
#include <fstream>
#include <functional>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "engine/context.hh"
#include "mapping/allocation.hh"
#include "online/service.hh"
#include "solver/lp.hh"
#include "tfg/dvb.hh"
#include "tfg/timing.hh"
#include "topology/factory.hh"
#include "util/json.hh"

namespace {

using namespace srsim;

double
wallMs(const std::function<void()> &body)
{
    const auto t0 = std::chrono::steady_clock::now();
    body();
    const auto t1 = std::chrono::steady_clock::now();
    return std::chrono::duration<double, std::milli>(t1 - t0)
        .count();
}

/** One run's solver-side tally. */
struct Tally
{
    double wall_ms = 0.0;
    lp::SolverStats stats;
};

/**
 * Admit/remove churn on the fig10 workload with the schedule cache
 * off: every request re-solves the touched subsets for real.
 */
Tally
runChurn(int rounds, const engine::EngineContext *ctx)
{
    DvbParams dvb;
    TaskFlowGraph g = buildDvbTfg(dvb);
    TimingModel tm;
    tm.apSpeed = dvb.matchedApSpeed();
    tm.bandwidth = 128.0;
    const auto topo = makeTopology("torus:4,4,4");
    const TaskAllocation alloc = alloc::roundRobin(g, *topo, 13);

    online::OnlineSchedulerConfig scfg;
    scfg.compiler.ctx = ctx;
    scfg.compiler.inputPeriod = 2.4 * tm.tauC(g);
    scfg.cacheCapacity = 0;

    Tally t;
    lp::resetSolverStats();
    t.wall_ms = wallMs([&] {
        online::OnlineScheduler svc(g, makeTopology("torus:4,4,4"),
                                    alloc, tm, scfg);
        if (!svc.start().accepted) {
            std::cerr << "initial compile rejected\n";
            std::exit(1);
        }
        // Reset after start(): the initial full compile is cold
        // under both kinds and would dilute the churn comparison.
        lp::resetSolverStats();
        online::AdmitSpec spec;
        spec.name = "hot";
        spec.src = "probe";
        spec.dst = "verify";
        spec.bytes = 256.0;
        for (int r = 0; r < rounds; ++r) {
            if (!svc.admit(spec).accepted) {
                std::cerr << "admission rejected\n";
                std::exit(1);
            }
            svc.remove(spec.name);
        }
    });
    t.stats = lp::solverStats();
    return t;
}

/**
 * Branch-and-bound stress: integral covering programs whose LP
 * relaxations sit at fractional vertices, forcing deep trees.
 */
Tally
runMip(int instances, lp::SolverKind kind)
{
    Tally t;
    lp::resetSolverStats();
    t.wall_ms = wallMs([&] {
        for (int k = 0; k < instances; ++k) {
            // min sum x_i over {0,1,...}^n with pairwise covering
            // rows a*x_i + b*x_j >= r; odd cycles make the
            // relaxation fractional (x = r/(a+b) everywhere).
            lp::Problem p;
            const int n = 7 + (k % 3);
            for (int i = 0; i < n; ++i) {
                p.addVariable(1.0 + 0.01 * i);
                p.markInteger(static_cast<std::size_t>(i));
            }
            for (int i = 0; i < n; ++i) {
                const auto a = static_cast<std::size_t>(i);
                const auto b =
                    static_cast<std::size_t>((i + 1) % n);
                p.addConstraint({{a, 1.0}, {b, 1.0}},
                                lp::Relation::GreaterEq,
                                3.0 + 0.5 * (k % 4));
            }
            lp::MipOptions mo;
            mo.lp.kind = kind;
            const lp::Solution s = lp::solveMip(p, mo);
            if (s.status != lp::Status::Optimal) {
                std::cerr << "mip instance " << k << " not optimal\n";
                std::exit(1);
            }
        }
    });
    t.stats = lp::solverStats();
    return t;
}

void
report(std::ostream &os, const char *scenario, const Tally &cold,
       const Tally &warm)
{
    const double ratio =
        warm.stats.pivots > 0
            ? static_cast<double>(cold.stats.pivots) /
                  static_cast<double>(warm.stats.pivots)
            : 0.0;
    std::cerr << "#   " << scenario << ": cold "
              << cold.stats.pivots << " pivots / " << cold.wall_ms
              << " ms; warm " << warm.stats.pivots << " pivots / "
              << warm.wall_ms << " ms (" << ratio
              << "x fewer pivots; " << warm.stats.warmHits
              << " hits, " << warm.stats.warmMisses << " misses)\n";
    JsonWriter w(os);
    w.beginObject();
    w.kv("scenario", scenario);
    w.key("cold").beginObject();
    w.kv("pivots", cold.stats.pivots);
    w.kv("solves", cold.stats.solves);
    w.kv("wall_ms", cold.wall_ms);
    w.endObject();
    w.key("warm").beginObject();
    w.kv("pivots", warm.stats.pivots);
    w.kv("solves", warm.stats.solves);
    w.kv("warmstart_hits", warm.stats.warmHits);
    w.kv("warmstart_misses", warm.stats.warmMisses);
    w.kv("mip_nodes", warm.stats.mipNodes);
    w.kv("wall_ms", warm.wall_ms);
    w.endObject();
    w.kv("pivot_reduction", ratio);
    w.endObject();
    os << "\n";
}

} // namespace

int
main(int argc, char **argv)
{
    std::ofstream file;
    if (argc > 1) {
        file.open(argv[1]);
        if (!file) {
            std::cerr << "cannot open " << argv[1] << "\n";
            return 1;
        }
    }
    std::ostream &os = argc > 1 ? file : std::cout;

    std::cerr << "# solver_bench: cold (SRSIM_SOLVER=dense) vs "
                 "warm-started re-solves\n";

    // Solver kind is per-context now: pin each stack in its own
    // child context instead of flipping a process global.
    engine::ChildOptions dopts, sopts;
    dopts.name = "bench.dense";
    dopts.solverKind = lp::SolverKind::Dense;
    sopts.name = "bench.sparse";
    sopts.solverKind = lp::SolverKind::Sparse;
    const auto denseCtx =
        engine::EngineContext::processDefault().createChild(dopts);
    const auto sparseCtx =
        engine::EngineContext::processDefault().createChild(sopts);

    const Tally churn_cold = runChurn(10, denseCtx.get());
    const Tally mip_cold = runMip(6, lp::SolverKind::Dense);
    const Tally churn_warm = runChurn(10, sparseCtx.get());
    const Tally mip_warm = runMip(6, lp::SolverKind::Sparse);

    report(os, "online_churn", churn_cold, churn_warm);
    report(os, "mip_branch_and_bound", mip_cold, mip_warm);

    const bool churn_ok =
        churn_warm.stats.pivots * 2 <= churn_cold.stats.pivots;
    const bool mip_ok =
        mip_warm.stats.pivots * 2 <= mip_cold.stats.pivots;
    std::cerr << "#   2x pivot-reduction target: churn "
              << (churn_ok ? "met" : "MISSED") << ", mip "
              << (mip_ok ? "met" : "MISSED") << "\n";
    return 0;
}
