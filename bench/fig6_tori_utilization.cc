/**
 * @file
 * Fig. 6: peak utilization U versus normalized load for the DVB TFG
 * on 8x8 and 4x4x4 tori at B = 64 bytes/us, LSD-to-MSD versus
 * AssignPaths. With fewer alternative minimal paths than the GHCs,
 * the tori stay above U = 1 across the sweep (the paper's
 * observation that no feasible schedule exists for either torus at
 * this bandwidth).
 */

#include "fig_common.hh"
#include "topology/torus.hh"

int
main()
{
    using namespace srsim;
    const Torus t88({8, 8});
    const Torus t444({4, 4, 4});
    bench::runUtilizationPanel("Fig. 6 (top)", t88, 64.0);
    bench::runUtilizationPanel("Fig. 6 (bottom)", t444, 64.0);
    return 0;
}
