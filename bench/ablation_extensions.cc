/**
 * @file
 * Ablation of the Sec. 7 extensions implemented by srsim:
 *
 *  1. feedback between the Fig. 3 steps — extra feasible load
 *     points rescued by re-seeded path assignment;
 *  2. allocation-path coupling — peak utilization and feasibility
 *     when the task allocation itself is optimized for SR;
 *  3. CP-synchronization guards — how feasibility degrades as the
 *     per-slot margin grows;
 *  4. the stricter virtual-channel wormhole model — OI instances
 *     with 1 VC, static 2-VC (bandwidth halved unconditionally),
 *     and progressive-filling 2-VC (bandwidth split among actual
 *     sharers). The paper conjectures "the instances of OI are
 *     likely to increase"; the fair-share model bears that out
 *     while the static one trades blocking for uniform slowdown
 *     (see EXPERIMENTS.md).
 */

#include <iostream>

#include "core/coupled_allocation.hh"
#include "core/sr_compiler.hh"
#include "exp/experiment.hh"
#include "fig_common.hh"
#include "topology/generalized_hypercube.hh"
#include "topology/torus.hh"
#include "util/table.hh"
#include "wormhole/wormhole.hh"

namespace {

using namespace srsim;

void
feedbackPanel(const Topology &topo, double bandwidth)
{
    bench::FigureSetup setup;
    const TaskFlowGraph g = buildDvbTfg(setup.dvb);
    const TimingModel tm = setup.timing(bandwidth);
    const TaskAllocation alloc = setup.allocate(g, topo);
    const Time tau_c = tm.tauC(g);

    std::cout << "feedback ablation: DVB on " << topo.name()
              << ", B = " << bandwidth << " bytes/us\n";
    Table t({"load", "no feedback", "2 rounds", "rounds used"});
    for (Time period : loadSweepPeriods(tau_c, setup.cfg)) {
        SrCompilerConfig base;
        base.inputPeriod = period;
        const SrCompileResult r0 =
            compileScheduledRouting(g, topo, alloc, tm, base);
        SrCompilerConfig fb = base;
        fb.feedbackRounds = 2;
        const SrCompileResult r2 =
            compileScheduledRouting(g, topo, alloc, tm, fb);
        t.addRow({Table::num(tau_c / period, 4),
                  r0.feasible ? "feasible"
                              : srFailureStageName(r0.stage),
                  r2.feasible ? "feasible"
                              : srFailureStageName(r2.stage),
                  std::to_string(r2.feedbackRoundsUsed)});
    }
    t.print(std::cout);
    std::cout << "\n";
}

void
couplingPanel(const Topology &topo, double bandwidth)
{
    bench::FigureSetup setup;
    const TaskFlowGraph g = buildDvbTfg(setup.dvb);
    const TimingModel tm = setup.timing(bandwidth);
    const Time tau_c = tm.tauC(g);

    std::cout << "allocation-coupling ablation: DVB on "
              << topo.name() << ", B = " << bandwidth
              << " bytes/us (coupled search seeded from the greedy "
                 "allocation)\n";
    Table t({"load", "greedy alloc", "coupled alloc",
             "coupled U"});
    for (Time period : loadSweepPeriods(tau_c, setup.cfg)) {
        const TaskAllocation greedy = alloc::greedy(g, topo);
        SrCompilerConfig cfg;
        cfg.inputPeriod = period;
        cfg.feedbackRounds = 2; // same effort for both allocations
        const SrCompileResult g_res =
            compileScheduledRouting(g, topo, greedy, tm, cfg);

        Rng rng(99);
        const CoupledAllocationResult coupled =
            coupleAllocationWithPaths(g, topo, tm, period, greedy,
                                      rng);
        const SrCompileResult c_res = compileScheduledRouting(
            g, topo, coupled.allocation, tm, cfg);

        t.addRow({Table::num(tau_c / period, 4),
                  g_res.feasible ? "feasible"
                                 : srFailureStageName(g_res.stage),
                  c_res.feasible ? "feasible"
                                 : srFailureStageName(c_res.stage),
                  Table::num(coupled.peakUtilization, 3)});
    }
    t.print(std::cout);
    std::cout << "\n";
}

void
guardPanel(const Topology &topo, double bandwidth)
{
    bench::FigureSetup setup;
    const TaskFlowGraph g = buildDvbTfg(setup.dvb);
    const TimingModel tm = setup.timing(bandwidth);
    const TaskAllocation alloc = setup.allocate(g, topo);
    const Time tau_c = tm.tauC(g);

    std::cout << "guard-margin ablation: DVB on " << topo.name()
              << ", B = " << bandwidth
              << " bytes/us (CP clock-sync margin per slot)\n";
    Table t({"load", "guard 0", "guard 0.1us", "guard 0.5us",
             "guard 2us"});
    for (Time period : loadSweepPeriods(tau_c, setup.cfg)) {
        std::vector<std::string> row{
            Table::num(tau_c / period, 4)};
        for (double guard : {0.0, 0.1, 0.5, 2.0}) {
            SrCompilerConfig cfg;
            cfg.inputPeriod = period;
            cfg.scheduling.guardTime = guard;
            cfg.feedbackRounds = 1;
            const SrCompileResult r =
                compileScheduledRouting(g, topo, alloc, tm, cfg);
            row.push_back(r.feasible
                              ? "feasible"
                              : srFailureStageName(r.stage));
        }
        t.addRow(row);
    }
    t.print(std::cout);
    std::cout << "\n";
}

void
virtualChannelPanel(const Topology &topo, double bandwidth)
{
    bench::FigureSetup setup;
    const TaskFlowGraph g = buildDvbTfg(setup.dvb);
    const TimingModel tm = setup.timing(bandwidth);
    const TaskAllocation alloc = setup.allocate(g, topo);
    const Time tau_c = tm.tauC(g);

    std::cout << "virtual-channel wormhole model: DVB on "
              << topo.name() << ", B = " << bandwidth
              << " bytes/us\n(Sec. 6 conjectured more OI from the "
                 "halved per-message bandwidth; measured: doubled "
                 "link concurrency also removes blocking, so OI "
                 "can go either way)\n";
    Table t({"load", "1 VC (paper model)", "2 VCs (static)",
             "2 VCs (fair share)"});
    int oi[3] = {0, 0, 0};
    for (Time period : loadSweepPeriods(tau_c, setup.cfg)) {
        std::vector<std::string> row{
            Table::num(tau_c / period, 4)};
        const struct
        {
            int vc;
            bool fair;
        } modes[3] = {{1, false}, {2, false}, {2, true}};
        for (int m = 0; m < 3; ++m) {
            WormholeConfig cfg;
            cfg.inputPeriod = period;
            cfg.virtualChannels = modes[m].vc;
            cfg.fairShare = modes[m].fair;
            WormholeSimulator sim(g, topo, alloc, tm);
            const WormholeResult r = sim.run(cfg);
            std::string cell;
            if (r.deadlocked)
                cell = "deadlock";
            else if (r.outputInconsistent(cfg.warmup))
                cell = "OI";
            else
                cell = "consistent";
            if (cell != "consistent")
                ++oi[m];
            row.push_back(cell);
        }
        t.addRow(row);
    }
    t.print(std::cout);
    std::cout << "inconsistent/deadlocked load points: " << oi[0]
              << " with 1 VC, " << oi[1] << " static 2 VC, "
              << oi[2] << " fair-share 2 VC\n\n";
}

void
packetPanel(const Topology &topo, double bandwidth)
{
    bench::FigureSetup setup;
    const TaskFlowGraph g = buildDvbTfg(setup.dvb);
    const TaskAllocation alloc = setup.allocate(g, topo);

    std::cout << "packet-granularity ablation: DVB on "
              << topo.name() << ", B = " << bandwidth
              << " bytes/us (Sec. 4.1 packet time base; larger "
                 "packets round more capacity away)\n";
    Table t({"load", "continuous", "64 B packets",
             "256 B packets", "1024 B packets"});
    TimingModel tm = setup.timing(bandwidth);
    const Time tau_c = tm.tauC(g);
    for (Time period : loadSweepPeriods(tau_c, setup.cfg)) {
        std::vector<std::string> row{
            Table::num(tau_c / period, 4)};
        for (double pkt : {0.0, 64.0, 256.0, 1024.0}) {
            TimingModel ptm = tm;
            ptm.packetBytes = pkt;
            SrCompilerConfig cfg;
            cfg.inputPeriod = period;
            cfg.feedbackRounds = 1;
            const SrCompileResult r =
                compileScheduledRouting(g, topo, alloc, ptm, cfg);
            row.push_back(r.feasible
                              ? "feasible"
                              : srFailureStageName(r.stage));
        }
        t.addRow(row);
    }
    t.print(std::cout);
    std::cout << "\n";
}

} // namespace

int
main()
{
    const GeneralizedHypercube cube =
        GeneralizedHypercube::binaryCube(6);
    const Torus t88({8, 8});
    feedbackPanel(t88, 128.0);
    couplingPanel(cube, 64.0);
    guardPanel(cube, 128.0);
    virtualChannelPanel(cube, 128.0);
    packetPanel(cube, 128.0);
    return 0;
}
