/**
 * @file
 * Shared driver for the figure-reproduction benches.
 *
 * Each fig* binary reproduces one figure of the paper's evaluation:
 * it builds the DVB TFG, allocates it on the target fabric, sweeps
 * the twelve input periods, and prints the same series the paper
 * plots. The absolute numbers come from srsim's simulator rather
 * than the authors' testbed; the qualitative shape (where OI
 * appears, where SR is feasible, who sustains constant throughput)
 * is the reproduction target.
 */

#ifndef SRSIM_BENCH_FIG_COMMON_HH_
#define SRSIM_BENCH_FIG_COMMON_HH_

#include <cctype>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>

#include "exp/experiment.hh"
#include "mapping/allocation.hh"
#include "tfg/dvb.hh"
#include "tfg/timing.hh"
#include "topology/topology.hh"
#include "util/thread_pool.hh"

namespace srsim {
namespace bench {

/**
 * Wall-clock + thread-count note for one sweep, on stderr so the
 * deterministic table output on stdout stays byte-stable across
 * runs and thread counts (set SRSIM_THREADS to change the pool).
 */
class SweepTimer
{
  public:
    explicit SweepTimer(const std::string &what)
        : what_(what), start_(std::chrono::steady_clock::now())
    {}

    ~SweepTimer()
    {
        const auto dt =
            std::chrono::duration_cast<std::chrono::milliseconds>(
                std::chrono::steady_clock::now() - start_);
        std::cerr << "# " << what_ << ": "
                  << (dt.count() / 1000.0) << " s with "
                  << ThreadPool::global().size() << " thread(s)\n";
    }

  private:
    std::string what_;
    std::chrono::steady_clock::time_point start_;
};

/**
 * When SRSIM_JSON_DIR is set, open `<dir>/<slug(name)>.json` for
 * the machine-readable twin of a panel's table; otherwise return an
 * unopened stream (callers test is_open()). The slug keeps
 * [A-Za-z0-9]; every other run of characters becomes one '_'.
 */
inline std::ofstream
jsonSink(const std::string &name)
{
    std::ofstream out;
    const char *dir = std::getenv("SRSIM_JSON_DIR");
    if (!dir || !*dir)
        return out;
    std::string slug;
    for (char c : name) {
        if (std::isalnum(static_cast<unsigned char>(c)))
            slug += c;
        else if (!slug.empty() && slug.back() != '_')
            slug += '_';
    }
    while (!slug.empty() && slug.back() == '_')
        slug.pop_back();
    out.open(std::string(dir) + "/" + slug + ".json");
    if (!out)
        std::cerr << "# warning: cannot write JSON for '" << name
                  << "' under " << dir << "\n";
    return out;
}

/** Default DVB experiment setup for one fabric at one bandwidth. */
struct FigureSetup
{
    DvbParams dvb;
    ExperimentConfig cfg;
    /**
     * Task allocation: round-robin with a stride that spreads the
     * pipeline across the whole 64-node machine (the paper's
     * hand-made allocation from [Shu90] is not available; a spread
     * placement exercises multi-hop paths and cross-invocation link
     * sharing the way the paper's curves indicate).
     */
    int allocStride = 13;

    TimingModel
    timing(double bandwidth) const
    {
        TimingModel tm;
        tm.apSpeed = dvb.matchedApSpeed();
        tm.bandwidth = bandwidth;
        return tm;
    }

    TaskAllocation
    allocate(const TaskFlowGraph &g, const Topology &topo) const
    {
        return alloc::roundRobin(g, topo, allocStride);
    }
};

/** Run + print a Fig. 7-10 style panel (one fabric, one bandwidth). */
inline void
runThroughputPanel(const std::string &figure, const Topology &topo,
                   double bandwidth, const FigureSetup &setup = {})
{
    const TaskFlowGraph g = buildDvbTfg(setup.dvb);
    const TimingModel tm = setup.timing(bandwidth);
    const TaskAllocation alloc = setup.allocate(g, topo);
    SweepTimer timer(figure + " throughput sweep on " + topo.name());
    const auto points =
        runThroughputExperiment(g, topo, alloc, tm, setup.cfg);

    const std::string title =
        figure + ": DVB on " + topo.name() + ", B = " +
        std::to_string(static_cast<int>(bandwidth)) + " bytes/us" +
        "  (tau_m/tau_c = " +
        std::to_string(tm.tauM(g) / tm.tauC(g)) + ")";
    printThroughputSeries(std::cout, title, points);
    std::ofstream json = jsonSink(figure + " " + topo.name());
    if (json.is_open())
        writeThroughputJson(json, title, points);
}

/** Run + print a Fig. 5/6 style panel (utilization only). */
inline void
runUtilizationPanel(const std::string &figure, const Topology &topo,
                    double bandwidth, const FigureSetup &setup = {})
{
    const TaskFlowGraph g = buildDvbTfg(setup.dvb);
    const TimingModel tm = setup.timing(bandwidth);
    const TaskAllocation alloc = setup.allocate(g, topo);
    SweepTimer timer(figure + " utilization sweep on " +
                     topo.name());
    const auto points =
        runUtilizationExperiment(g, topo, alloc, tm, setup.cfg);

    const std::string title =
        figure + ": peak utilization, DVB on " + topo.name() +
        ", B = " + std::to_string(static_cast<int>(bandwidth)) +
        " bytes/us";
    printUtilizationSeries(std::cout, title, points);
    std::ofstream json = jsonSink(figure + " " + topo.name());
    if (json.is_open())
        writeUtilizationJson(json, title, points);
}

} // namespace bench
} // namespace srsim

#endif // SRSIM_BENCH_FIG_COMMON_HH_
