/**
 * @file
 * "SR enables pipelining at higher input arrival rates" (abstract),
 * quantified: for each fabric and bandwidth, binary-search the
 * smallest input period (highest normalized load) at which
 *   - wormhole routing still produces consistent output intervals,
 *   - scheduled routing still compiles a feasible, verified Omega,
 * and report both together with SR's advantage factor.
 */

#include <functional>
#include <iostream>

#include "core/sr_compiler.hh"
#include "fig_common.hh"
#include "topology/generalized_hypercube.hh"
#include "topology/torus.hh"
#include "util/table.hh"
#include "wormhole/wormhole.hh"

namespace {

using namespace srsim;

/** Highest load in [lo, hi] passing `ok`, by bisection on period. */
double
maxLoad(double lo_load, double hi_load, Time tau_c,
        const std::function<bool(Time)> &ok)
{
    // Loads below lo_load are assumed passing; returns 0 when even
    // lo_load fails.
    if (!ok(tau_c / lo_load))
        return 0.0;
    if (ok(tau_c / hi_load))
        return hi_load;
    for (int it = 0; it < 20; ++it) {
        const double mid = 0.5 * (lo_load + hi_load);
        if (ok(tau_c / mid))
            lo_load = mid;
        else
            hi_load = mid;
    }
    return lo_load;
}

void
runPanel(const Topology &topo, double bandwidth)
{
    bench::FigureSetup setup;
    const TaskFlowGraph g = buildDvbTfg(setup.dvb);
    const TimingModel tm = setup.timing(bandwidth);
    const TaskAllocation alloc = setup.allocate(g, topo);
    const Time tau_c = tm.tauC(g);

    auto wr_ok = [&](Time period) {
        WormholeSimulator sim(g, topo, alloc, tm);
        WormholeConfig cfg;
        cfg.inputPeriod = period;
        const WormholeResult r = sim.run(cfg);
        return !r.deadlocked && !r.outputInconsistent(cfg.warmup);
    };
    auto sr_ok = [&](Time period) {
        SrCompilerConfig cfg;
        cfg.inputPeriod = period;
        cfg.feedbackRounds = 1;
        return compileScheduledRouting(g, topo, alloc, tm, cfg)
            .feasible;
    };

    const double wr = maxLoad(0.05, 1.0, tau_c, wr_ok);
    const double sr = maxLoad(0.05, 1.0, tau_c, sr_ok);

    std::cout << topo.name() << ", B = " << bandwidth
              << " bytes/us:\n"
              << "  max consistent load, wormhole : "
              << Table::num(wr, 3) << "\n"
              << "  max feasible load, scheduled  : "
              << Table::num(sr, 3);
    if (wr > 0.0 && sr > 0.0)
        std::cout << "   (SR sustains " << Table::num(sr / wr, 2)
                  << "x the input rate)";
    std::cout << "\n\n";
}

} // namespace

int
main()
{
    const GeneralizedHypercube cube =
        GeneralizedHypercube::binaryCube(6);
    const GeneralizedHypercube ghc({4, 4, 4});
    const Torus t88({8, 8});
    const Torus t444({4, 4, 4});
    for (double bw : {64.0, 128.0}) {
        runPanel(cube, bw);
        runPanel(ghc, bw);
        runPanel(t88, bw);
        runPanel(t444, bw);
    }
    return 0;
}
