/**
 * @file
 * Microbenchmarks (google-benchmark) of srsim's building blocks:
 * minimal-path enumeration, utilization analysis, AssignPaths, the
 * LP solver, the wormhole simulator, and a full scheduled-routing
 * compile. These quantify the compile-time cost the paper trades
 * for zero run-time flow-control overhead.
 */

#include <benchmark/benchmark.h>

#include "core/sr_compiler.hh"
#include "exp/experiment.hh"
#include "mapping/allocation.hh"
#include "solver/lp.hh"
#include "tfg/dvb.hh"
#include "tfg/timing.hh"
#include "topology/generalized_hypercube.hh"
#include "topology/torus.hh"
#include "util/thread_pool.hh"
#include "wormhole/wormhole.hh"

namespace {

using namespace srsim;

struct DvbSetup
{
    DvbParams dp;
    TaskFlowGraph g = buildDvbTfg(dp);
    GeneralizedHypercube cube = GeneralizedHypercube::binaryCube(6);
    TimingModel tm;
    TaskAllocation alloc;

    DvbSetup() : alloc(alloc::roundRobin(g, cube, 13))
    {
        tm.apSpeed = dp.matchedApSpeed();
        tm.bandwidth = 128.0;
    }
};

void
BM_MinimalPathEnumeration(benchmark::State &state)
{
    const auto cube = GeneralizedHypercube::binaryCube(6);
    const std::size_t cap = static_cast<std::size_t>(state.range(0));
    for (auto _ : state) {
        benchmark::DoNotOptimize(cube.minimalPaths(0, 63, cap));
    }
}
BENCHMARK(BM_MinimalPathEnumeration)->Arg(24)->Arg(256)->Arg(720);

void
BM_UtilizationAnalyze(benchmark::State &state)
{
    DvbSetup s;
    const TimeBounds tb =
        computeTimeBounds(s.g, s.alloc, s.tm, 2.0 * s.tm.tauC(s.g));
    const IntervalSet ivs(tb);
    UtilizationAnalyzer ua(tb, ivs, s.cube);
    const PathAssignment pa =
        lsdToMsdAssignment(s.g, s.cube, s.alloc, tb);
    for (auto _ : state)
        benchmark::DoNotOptimize(ua.analyze(pa));
}
BENCHMARK(BM_UtilizationAnalyze);

void
BM_AssignPaths(benchmark::State &state)
{
    DvbSetup s;
    const TimeBounds tb =
        computeTimeBounds(s.g, s.alloc, s.tm, 2.0 * s.tm.tauC(s.g));
    const IntervalSet ivs(tb);
    AssignPathsOptions opts;
    opts.maxRestarts = static_cast<int>(state.range(0));
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            assignPaths(s.g, s.cube, s.alloc, tb, ivs, opts));
    }
}
BENCHMARK(BM_AssignPaths)->Arg(0)->Arg(4)->Arg(12);

void
BM_LpSolve(benchmark::State &state)
{
    // A transportation-style LP scaled by the range argument.
    const int n = static_cast<int>(state.range(0));
    lp::Problem p;
    std::vector<std::size_t> vars;
    for (int i = 0; i < n; ++i)
        for (int j = 0; j < n; ++j)
            vars.push_back(p.addVariable((i + 1) * (j + 2) % 7 + 1));
    for (int i = 0; i < n; ++i) {
        lp::Constraint supply;
        for (int j = 0; j < n; ++j)
            supply.terms.emplace_back(
                vars[static_cast<std::size_t>(i * n + j)], 1.0);
        supply.rel = lp::Relation::LessEq;
        supply.rhs = 10.0;
        p.addConstraint(supply);
        lp::Constraint demand;
        for (int j = 0; j < n; ++j)
            demand.terms.emplace_back(
                vars[static_cast<std::size_t>(j * n + i)], 1.0);
        demand.rel = lp::Relation::GreaterEq;
        demand.rhs = 5.0;
        p.addConstraint(demand);
    }
    for (auto _ : state)
        benchmark::DoNotOptimize(lp::solve(p));
}
BENCHMARK(BM_LpSolve)->Arg(4)->Arg(8)->Arg(16);

void
BM_WormholeSimulation(benchmark::State &state)
{
    DvbSetup s;
    WormholeConfig cfg;
    cfg.inputPeriod = s.tm.tauC(s.g);
    cfg.invocations = static_cast<int>(state.range(0));
    cfg.warmup = 5;
    for (auto _ : state) {
        WormholeSimulator sim(s.g, s.cube, s.alloc, s.tm);
        benchmark::DoNotOptimize(sim.run(cfg));
    }
}
BENCHMARK(BM_WormholeSimulation)->Arg(20)->Arg(60);

void
BM_SrCompile(benchmark::State &state)
{
    DvbSetup s;
    SrCompilerConfig cfg;
    cfg.inputPeriod =
        s.tm.tauC(s.g) * (state.range(0) / 10.0);
    for (auto _ : state) {
        benchmark::DoNotOptimize(compileScheduledRouting(
            s.g, s.cube, s.alloc, s.tm, cfg));
    }
}
BENCHMARK(BM_SrCompile)->Arg(10)->Arg(20)->Arg(40);

/**
 * Full SR compile at a fixed load with the global pool pinned to
 * Arg threads: the parallel-vs-serial wall-clock comparison of the
 * compiler (AssignPaths restarts + per-subset allocation LPs +
 * per-interval scheduling LPs all fan out).
 */
void
BM_SrCompileThreads(benchmark::State &state)
{
    ThreadPool::setGlobalSize(
        static_cast<std::size_t>(state.range(0)));
    DvbSetup s;
    SrCompilerConfig cfg;
    cfg.inputPeriod = 2.0 * s.tm.tauC(s.g);
    for (auto _ : state) {
        benchmark::DoNotOptimize(compileScheduledRouting(
            s.g, s.cube, s.alloc, s.tm, cfg));
    }
    ThreadPool::setGlobalSize(1);
}
BENCHMARK(BM_SrCompileThreads)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

/**
 * One figure-style load sweep (12 points, WR simulation + SR
 * compile + SR execution per point) with the pool pinned to Arg
 * threads — the experiment-layer parallelism acceptance benchmark.
 */
void
BM_FigureSweepThreads(benchmark::State &state)
{
    ThreadPool::setGlobalSize(
        static_cast<std::size_t>(state.range(0)));
    DvbSetup s;
    ExperimentConfig cfg;
    cfg.invocations = 30;
    cfg.warmup = 5;
    for (auto _ : state) {
        benchmark::DoNotOptimize(runThroughputExperiment(
            s.g, s.cube, s.alloc, s.tm, cfg));
    }
    ThreadPool::setGlobalSize(1);
}
BENCHMARK(BM_FigureSweepThreads)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

} // namespace

BENCHMARK_MAIN();
