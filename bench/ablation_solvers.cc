/**
 * @file
 * Ablation of the math-programming stages (Secs. 5.2/5.3): the
 * paper formulates message-interval allocation and interval
 * scheduling as mathematical programs; srsim solves them with an
 * LP. How much feasibility is lost by replacing either stage with
 * its cheap greedy counterpart?
 *
 * For each load point: compile with (LP, LP), (greedy, LP),
 * (LP, list-scheduling), (greedy, list-scheduling) and report
 * which combinations find a feasible, verified Omega.
 */

#include <iostream>

#include "core/sr_compiler.hh"
#include "exp/experiment.hh"
#include "fig_common.hh"
#include "topology/generalized_hypercube.hh"
#include "topology/torus.hh"
#include "util/table.hh"

namespace {

void
runPanel(const srsim::Topology &topo, double bandwidth)
{
    using namespace srsim;
    bench::FigureSetup setup;
    const TaskFlowGraph g = buildDvbTfg(setup.dvb);
    const TimingModel tm = setup.timing(bandwidth);
    const TaskAllocation alloc = setup.allocate(g, topo);
    const Time tau_c = tm.tauC(g);

    std::cout << "solver ablation: DVB on " << topo.name()
              << ", B = " << bandwidth << " bytes/us\n";
    Table t({"load", "lp+lp", "greedy+lp", "lp+list",
             "greedy+list"});

    auto status = [&](Time period, AllocationMethod am,
                      SchedulingMethod sm) -> std::string {
        SrCompilerConfig cfg;
        cfg.inputPeriod = period;
        cfg.allocMethod = am;
        cfg.scheduling.method = sm;
        const SrCompileResult r =
            compileScheduledRouting(g, topo, alloc, tm, cfg);
        if (r.feasible)
            return "feasible";
        return srFailureStageName(r.stage);
    };

    for (Time period : loadSweepPeriods(tau_c, setup.cfg)) {
        t.addRow({Table::num(tau_c / period, 4),
                  status(period, AllocationMethod::Lp,
                         SchedulingMethod::LpFeasibleSets),
                  status(period, AllocationMethod::Greedy,
                         SchedulingMethod::LpFeasibleSets),
                  status(period, AllocationMethod::Lp,
                         SchedulingMethod::ListScheduling),
                  status(period, AllocationMethod::Greedy,
                         SchedulingMethod::ListScheduling)});
    }
    t.print(std::cout);
    std::cout << "\n";
}

} // namespace

int
main()
{
    using namespace srsim;
    const GeneralizedHypercube cube =
        GeneralizedHypercube::binaryCube(6);
    const Torus torus({4, 4, 4});
    runPanel(cube, 128.0);
    runPanel(torus, 128.0);
    return 0;
}
