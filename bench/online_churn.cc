/**
 * @file
 * Online churn benchmark: incremental admission vs full recompile.
 *
 * The online service's pitch is that admitting one message into the
 * fig10 workload (DVB TFG on the 4x4x4 torus, bandwidth 128,
 * round-robin placement, period 2.4 tau_c) re-solves only the
 * maximal related subsets the new message touches. This benchmark
 * quantifies the pitch:
 *
 *  - `incremental`: N distinct skip-edge admissions through the
 *    service with the schedule cache OFF (every admission is a real
 *    incremental solve), reporting admissions/sec and the p50/p95
 *    admission latency;
 *  - `full-recompile`: the same N workloads compiled from scratch
 *    by the batch compiler — the latency an offline system would
 *    pay per admission;
 *  - `cache`: admit/remove cycles with the cache ON, reporting the
 *    hit rate once the workload starts revisiting states.
 *
 * Prints a human summary to stderr and a JSON document to stdout
 * (or to the file named by argv[1]). emit_bench_json runs the same
 * scenarios into BENCH_srsim.json for trend tracking.
 */

#include <algorithm>
#include <chrono>
#include <fstream>
#include <functional>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "core/sr_compiler.hh"
#include "mapping/allocation.hh"
#include "online/service.hh"
#include "tfg/dvb.hh"
#include "tfg/timing.hh"
#include "topology/factory.hh"
#include "util/json.hh"

namespace {

using namespace srsim;

/** Skip edges over the DVB recognition chain, reused round-robin. */
const std::vector<std::pair<const char *, const char *>> kSkipPairs =
    {{"match", "probe"},   {"hough", "extend"},
     {"probe", "verify"},  {"extend", "filter"},
     {"verify", "score"},  {"match", "extend"}};

struct Fig10
{
    DvbParams dvb;
    TaskFlowGraph g = buildDvbTfg(dvb);
    TimingModel tm;
    TaskAllocation alloc;
    Time period = 0.0;

    Fig10()
        : alloc(alloc::roundRobin(g, *makeTopology("torus:4,4,4"),
                                  13))
    {
        tm.apSpeed = dvb.matchedApSpeed();
        tm.bandwidth = 128.0;
        period = 2.4 * tm.tauC(g);
    }

    online::AdmitSpec spec(int r) const
    {
        online::AdmitSpec s;
        s.name = "bench" + std::to_string(r);
        s.src = kSkipPairs[static_cast<std::size_t>(r) %
                           kSkipPairs.size()]
                    .first;
        s.dst = kSkipPairs[static_cast<std::size_t>(r) %
                           kSkipPairs.size()]
                    .second;
        s.bytes = 128.0 + 16.0 * r;
        return s;
    }
};

double
percentile(std::vector<double> sorted, double p)
{
    if (sorted.empty())
        return 0.0;
    std::sort(sorted.begin(), sorted.end());
    const double rank =
        p / 100.0 * static_cast<double>(sorted.size() - 1);
    const std::size_t lo = static_cast<std::size_t>(rank);
    const std::size_t hi =
        std::min(lo + 1, sorted.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

double
wallMs(const std::function<void()> &body)
{
    const auto t0 = std::chrono::steady_clock::now();
    body();
    const auto t1 = std::chrono::steady_clock::now();
    return std::chrono::duration<double, std::milli>(t1 - t0)
        .count();
}

} // namespace

int
main(int argc, char **argv)
{
    const int rounds = 12;
    Fig10 f;

    // Incremental admissions, cache off: every admit is a real
    // dirty-subset re-solve; the remove returning to the base
    // workload is not measured.
    std::vector<double> incrMs;
    double incrTotalMs = 0.0;
    std::size_t copied = 0, resolved = 0;
    {
        online::OnlineSchedulerConfig scfg;
        scfg.compiler.inputPeriod = f.period;
        scfg.cacheCapacity = 0;
        online::OnlineScheduler svc(
            f.g, makeTopology("torus:4,4,4"), f.alloc, f.tm, scfg);
        if (!svc.start().accepted) {
            std::cerr << "initial compile rejected\n";
            return 1;
        }
        for (int r = 0; r < rounds; ++r) {
            const online::AdmitSpec s = f.spec(r);
            const online::RequestResult res = svc.admit(s);
            if (!res.accepted) {
                std::cerr << "admission '" << s.name
                          << "' rejected: " << res.detail << "\n";
                return 1;
            }
            incrMs.push_back(res.latencyMs);
            incrTotalMs += res.latencyMs;
            copied += res.subsetsCopied;
            resolved += res.subsetsResolved;
            svc.remove(s.name);
        }
    }

    // Full-recompile baseline: the same admitted workloads, from
    // scratch through the batch compiler.
    std::vector<double> fullMs;
    {
        const auto topo = makeTopology("torus:4,4,4");
        SrCompilerConfig cfg;
        cfg.inputPeriod = f.period;
        for (int r = 0; r < rounds; ++r) {
            const online::AdmitSpec s = f.spec(r);
            TaskFlowGraph g2 = f.g;
            TaskId src = kInvalidTask, dst = kInvalidTask;
            for (TaskId t = 0; t < g2.numTasks(); ++t) {
                if (g2.task(t).name == s.src)
                    src = t;
                if (g2.task(t).name == s.dst)
                    dst = t;
            }
            g2.addMessage(s.name, src, dst, s.bytes);
            fullMs.push_back(wallMs([&] {
                const SrCompileResult res = compileScheduledRouting(
                    g2, *topo, f.alloc, f.tm, cfg);
                if (!res.feasible)
                    std::cerr << "baseline compile " << r
                              << " infeasible\n";
            }));
        }
    }

    // Cache churn: admit/remove cycles revisit two workload states;
    // after the first cycle every solve is a lookup.
    std::uint64_t cacheHits = 0, cacheMisses = 0;
    {
        online::OnlineSchedulerConfig scfg;
        scfg.compiler.inputPeriod = f.period;
        online::OnlineScheduler svc(
            f.g, makeTopology("torus:4,4,4"), f.alloc, f.tm, scfg);
        svc.start();
        for (int r = 0; r < rounds; ++r) {
            svc.admit(f.spec(0));
            svc.remove(f.spec(0).name);
        }
        cacheHits = svc.cache().hits();
        cacheMisses = svc.cache().misses();
    }

    const double admitPerSec =
        incrTotalMs > 0.0 ? 1000.0 * rounds / incrTotalMs : 0.0;
    const double incrP50 = percentile(incrMs, 50.0);
    const double incrP95 = percentile(incrMs, 95.0);
    const double fullP50 = percentile(fullMs, 50.0);
    const double fullP95 = percentile(fullMs, 95.0);
    const double speedup =
        incrP95 > 0.0 ? fullP95 / incrP95 : 0.0;
    const double hitRate =
        cacheHits + cacheMisses > 0
            ? static_cast<double>(cacheHits) /
                  static_cast<double>(cacheHits + cacheMisses)
            : 0.0;
    const double copiedShare =
        copied + resolved > 0
            ? static_cast<double>(copied) /
                  static_cast<double>(copied + resolved)
            : 0.0;

    std::cerr << "# online_churn: " << rounds << " admissions\n"
              << "#   incremental: " << admitPerSec
              << " admits/s, p50 " << incrP50 << " ms, p95 "
              << incrP95 << " ms, " << 100.0 * copiedShare
              << "% subsets copied\n"
              << "#   full recompile: p50 " << fullP50
              << " ms, p95 " << fullP95 << " ms\n"
              << "#   speedup (p95 full / p95 incremental): "
              << speedup << "x\n"
              << "#   cache hit rate: " << hitRate << " ("
              << cacheHits << " hits, " << cacheMisses
              << " misses)\n";

    std::ofstream file;
    std::ostream *os = &std::cout;
    if (argc > 1) {
        file.open(argv[1]);
        if (!file) {
            std::cerr << "cannot write " << argv[1] << "\n";
            return 1;
        }
        os = &file;
    }
    JsonWriter w(*os);
    w.beginObject();
    w.kv("rounds", static_cast<std::uint64_t>(rounds));
    w.key("incremental").beginObject();
    w.kv("admissions_per_sec", admitPerSec);
    w.kv("p50_ms", incrP50);
    w.kv("p95_ms", incrP95);
    w.kv("subsets_copied_share", copiedShare);
    w.endObject();
    w.key("full_recompile").beginObject();
    w.kv("p50_ms", fullP50);
    w.kv("p95_ms", fullP95);
    w.endObject();
    w.kv("speedup_p95", speedup);
    w.key("cache").beginObject();
    w.kv("hits", cacheHits);
    w.kv("misses", cacheMisses);
    w.kv("hit_rate", hitRate);
    w.endObject();
    w.endObject();
    *os << "\n";
    return 0;
}
