/**
 * @file
 * Fig. 7: DVB on a binary 6-cube — throughput and latency of
 * wormhole routing (simulated, min/avg/max spikes mark output
 * inconsistency) versus scheduled routing (computed + executed), at
 * B = 64 and B = 128 bytes/us.
 */

#include "fig_common.hh"
#include "topology/generalized_hypercube.hh"

int
main()
{
    using namespace srsim;
    const GeneralizedHypercube cube =
        GeneralizedHypercube::binaryCube(6);
    bench::runThroughputPanel("Fig. 7 (top)", cube, 64.0);
    bench::runThroughputPanel("Fig. 7 (bottom)", cube, 128.0);
    return 0;
}
