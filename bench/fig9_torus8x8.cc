/**
 * @file
 * Fig. 9: DVB on an 8x8 torus at B = 128 bytes/us (at 64 bytes/us
 * the torus never reaches U <= 1, see Fig. 6). Scheduled routing is
 * feasible at most load points; a few high-load points fail in
 * message-interval allocation/scheduling, mirroring the three
 * arrow-marked points of the paper.
 */

#include "fig_common.hh"
#include "topology/torus.hh"

int
main()
{
    using namespace srsim;
    const Torus t88({8, 8});
    bench::runThroughputPanel("Fig. 9 (context: B = 64)", t88, 64.0);
    bench::runThroughputPanel("Fig. 9", t88, 128.0);
    return 0;
}
