/**
 * @file
 * Machine-readable benchmark emitter: runs the micro_perf scenarios
 * once each (no google-benchmark statistics — this is a CI artifact,
 * not a measurement paper) with the metrics registry enabled, and
 * writes `{"benchmarks": [{"name", "wall_ms", "counters": {...}}]}`
 * so `bench/` runs populate BENCH_srsim.json for trend tracking.
 *
 * Usage: emit_bench_json [out.json]   (default: BENCH_srsim.json)
 */

#include <chrono>
#include <filesystem>
#include <fstream>
#include <functional>
#include <future>
#include <iostream>
#include <string>
#include <vector>

#include <algorithm>

#include "core/sr_compiler.hh"
#include "cpsim/cp_simulator.hh"
#include "engine/context.hh"
#include "exp/experiment.hh"
#include "mapping/allocation.hh"
#include "metrics/metrics.hh"
#include "online/service.hh"
#include "server/daemon.hh"
#include "server/protocol.hh"
#include "solver/lp.hh"
#include "tfg/dvb.hh"
#include "tfg/timing.hh"
#include "topology/factory.hh"
#include "topology/generalized_hypercube.hh"
#include "util/json.hh"
#include "wormhole/wormhole.hh"

namespace {

using namespace srsim;

struct DvbSetup
{
    DvbParams dp;
    TaskFlowGraph g = buildDvbTfg(dp);
    GeneralizedHypercube cube = GeneralizedHypercube::binaryCube(6);
    TimingModel tm;
    TaskAllocation alloc;

    DvbSetup() : alloc(alloc::roundRobin(g, cube, 13))
    {
        tm.apSpeed = dp.matchedApSpeed();
        tm.bandwidth = 128.0;
    }
};

struct BenchRecord
{
    std::string name;
    double wallMs = 0.0;
    std::vector<std::pair<std::string, std::uint64_t>> counters;
};

BenchRecord
runScenario(const std::string &name,
            const std::function<void()> &body)
{
    auto &reg = metrics::Registry::global();
    reg.clear();
    const auto t0 = std::chrono::steady_clock::now();
    body();
    const auto t1 = std::chrono::steady_clock::now();
    BenchRecord rec;
    rec.name = name;
    rec.wallMs =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    rec.counters = reg.counterSnapshot();
    std::cerr << "# " << name << ": " << rec.wallMs << " ms\n";
    return rec;
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string out_path =
        argc > 1 ? argv[1] : "BENCH_srsim.json";
    metrics::Registry::setEnabled(true);

    DvbSetup s;
    const Time tau_c = s.tm.tauC(s.g);
    std::vector<BenchRecord> records;

    records.push_back(runScenario("sr_compile_load_1.0", [&] {
        SrCompilerConfig cfg;
        cfg.inputPeriod = tau_c;
        compileScheduledRouting(s.g, s.cube, s.alloc, s.tm, cfg);
    }));

    records.push_back(runScenario("sr_compile_load_0.5", [&] {
        SrCompilerConfig cfg;
        cfg.inputPeriod = 2.0 * tau_c;
        compileScheduledRouting(s.g, s.cube, s.alloc, s.tm, cfg);
    }));

    records.push_back(runScenario("wormhole_60inv", [&] {
        WormholeConfig cfg;
        cfg.inputPeriod = tau_c;
        cfg.invocations = 60;
        cfg.warmup = 5;
        WormholeSimulator sim(s.g, s.cube, s.alloc, s.tm);
        sim.run(cfg);
    }));

    records.push_back(runScenario("cpsim_30inv", [&] {
        SrCompilerConfig cfg;
        cfg.inputPeriod = 2.0 * tau_c;
        const SrCompileResult sr = compileScheduledRouting(
            s.g, s.cube, s.alloc, s.tm, cfg);
        if (sr.feasible)
            simulateCps(s.g, s.cube, s.alloc, s.tm, sr.bounds,
                        sr.omega);
    }));

    records.push_back(runScenario("assign_paths_12restarts", [&] {
        const TimeBounds tb = computeTimeBounds(
            s.g, s.alloc, s.tm, 2.0 * tau_c);
        const IntervalSet ivs(tb);
        AssignPathsOptions opts;
        opts.maxRestarts = 12;
        assignPaths(s.g, s.cube, s.alloc, tb, ivs, opts);
    }));

    records.push_back(runScenario("utilization_sweep", [&] {
        ExperimentConfig cfg;
        runUtilizationExperiment(s.g, s.cube, s.alloc, s.tm, cfg);
    }));

    // Online service: the fig10 torus workload absorbing skip-edge
    // admissions. The online.* counters (subsets copied vs
    // re-solved, cache hits) land in the snapshot automatically;
    // the derived latency percentiles are recorded as bench.*
    // counters in microseconds.
    const auto onlineSetup = [] {
        struct
        {
            DvbParams dvb;
            TaskFlowGraph g;
            TimingModel tm;
        } o;
        o.g = buildDvbTfg(o.dvb);
        o.tm.apSpeed = o.dvb.matchedApSpeed();
        o.tm.bandwidth = 128.0;
        return o;
    };
    const auto pctUs = [](std::vector<double> ms, double p) {
        std::sort(ms.begin(), ms.end());
        const double rank =
            p / 100.0 * static_cast<double>(ms.size() - 1);
        const std::size_t lo = static_cast<std::size_t>(rank);
        const std::size_t hi = std::min(lo + 1, ms.size() - 1);
        const double v = ms[lo] + (rank - static_cast<double>(lo)) *
                                      (ms[hi] - ms[lo]);
        return static_cast<std::uint64_t>(1000.0 * v);
    };
    const std::vector<std::pair<const char *, const char *>> skips =
        {{"match", "probe"},
         {"hough", "extend"},
         {"probe", "verify"},
         {"extend", "filter"}};

    records.push_back(runScenario("online_churn_incremental", [&] {
        auto o = onlineSetup();
        const auto topo = makeTopology("torus:4,4,4");
        const TaskAllocation alloc =
            alloc::roundRobin(o.g, *topo, 13);
        online::OnlineSchedulerConfig scfg;
        scfg.compiler.inputPeriod = 2.4 * o.tm.tauC(o.g);
        scfg.cacheCapacity = 0; // every admit is a real re-solve
        online::OnlineScheduler svc(o.g, makeTopology("torus:4,4,4"),
                                    alloc, o.tm, scfg);
        svc.start();
        std::vector<double> ms;
        for (std::size_t r = 0; r < 8; ++r) {
            online::AdmitSpec spec;
            spec.name = "bench" + std::to_string(r);
            spec.src = skips[r % skips.size()].first;
            spec.dst = skips[r % skips.size()].second;
            spec.bytes = 128.0 + 16.0 * static_cast<double>(r);
            const online::RequestResult res = svc.admit(spec);
            if (res.accepted)
                ms.push_back(res.latencyMs);
            svc.remove(spec.name);
        }
        auto &reg = metrics::Registry::global();
        if (!ms.empty()) {
            reg.counter("bench.online.admit_p50_us")
                .add(pctUs(ms, 50.0));
            reg.counter("bench.online.admit_p95_us")
                .add(pctUs(ms, 95.0));
        }
    }));

    records.push_back(
        runScenario("online_churn_full_recompile", [&] {
            auto o = onlineSetup();
            const auto topo = makeTopology("torus:4,4,4");
            const TaskAllocation alloc =
                alloc::roundRobin(o.g, *topo, 13);
            SrCompilerConfig cfg;
            cfg.inputPeriod = 2.4 * o.tm.tauC(o.g);
            for (std::size_t r = 0; r < 8; ++r) {
                TaskFlowGraph g2 = o.g;
                TaskId src = kInvalidTask, dst = kInvalidTask;
                for (TaskId t = 0; t < g2.numTasks(); ++t) {
                    if (g2.task(t).name == skips[r % skips.size()]
                                               .first)
                        src = t;
                    if (g2.task(t).name == skips[r % skips.size()]
                                               .second)
                        dst = t;
                }
                g2.addMessage("bench" + std::to_string(r), src,
                              dst,
                              128.0 + 16.0 * static_cast<double>(r));
                compileScheduledRouting(g2, *topo, alloc, o.tm,
                                        cfg);
            }
        }));

    records.push_back(runScenario("online_churn_cache", [&] {
        auto o = onlineSetup();
        const auto topo = makeTopology("torus:4,4,4");
        const TaskAllocation alloc =
            alloc::roundRobin(o.g, *topo, 13);
        online::OnlineSchedulerConfig scfg;
        scfg.compiler.inputPeriod = 2.4 * o.tm.tauC(o.g);
        online::OnlineScheduler svc(o.g, makeTopology("torus:4,4,4"),
                                    alloc, o.tm, scfg);
        svc.start();
        online::AdmitSpec spec;
        spec.name = "hot";
        spec.src = "probe";
        spec.dst = "verify";
        spec.bytes = 256.0;
        for (int r = 0; r < 8; ++r) {
            svc.admit(spec);
            svc.remove(spec.name);
        }
        auto &reg = metrics::Registry::global();
        const std::uint64_t total =
            svc.cache().hits() + svc.cache().misses();
        if (total > 0)
            reg.counter("bench.online.cache_hit_rate_pct")
                .add(100 * svc.cache().hits() / total);
    }));

    // Daemon throughput: 4 sessions of the fig10 workload through
    // the multi-tenant daemon, cache off so every admit is a real
    // solve. One scenario per sweep point (1 worker; 4 workers;
    // 4 workers + WAL with per-record fsync) — the server.*
    // counters land in the snapshot, the derived request rate and
    // p95 go in as bench.* counters.
    const auto daemonScenario = [&](std::size_t workers, bool wal) {
        const int sessions = 4, rounds = 2;
        const std::filesystem::path state =
            std::filesystem::temp_directory_path() /
            "srsim-emit-bench-daemon";
        std::filesystem::remove_all(state);
        server::DaemonConfig cfg;
        cfg.workers = workers;
        cfg.queueCap =
            static_cast<std::size_t>(sessions * rounds) * 2 + 16;
        cfg.cacheCapacity = 0;
        if (wal)
            cfg.stateDir = state.string();
        server::SchedulingDaemon daemon(cfg);
        for (int k = 0; k < sessions; ++k) {
            server::SessionConfig sc;
            sc.name = "s" + std::to_string(k);
            sc.topo = "torus:4,4,4";
            sc.period = 120.0;
            sc.bandwidth = 128.0;
            sc.alloc = "rr:13";
            daemon.open(sc);
        }
        std::vector<std::future<server::DaemonResponse>> futs;
        const auto t0 = std::chrono::steady_clock::now();
        for (int r = 0; r < rounds; ++r)
            for (int k = 0; k < sessions; ++k) {
                online::Request admit;
                admit.kind = online::RequestKind::AdmitMessage;
                online::AdmitSpec spec;
                spec.name = "bench" + std::to_string(r);
                spec.src = skips[static_cast<std::size_t>(r) %
                                 skips.size()]
                               .first;
                spec.dst = skips[static_cast<std::size_t>(r) %
                                 skips.size()]
                               .second;
                spec.bytes = 128.0 + 16.0 * static_cast<double>(r) +
                             static_cast<double>(k);
                admit.admits.push_back(std::move(spec));
                futs.push_back(daemon.submit(
                    "s" + std::to_string(k), std::move(admit)));
                online::Request remove;
                remove.kind = online::RequestKind::RemoveMessage;
                remove.name = "bench" + std::to_string(r);
                futs.push_back(daemon.submit(
                    "s" + std::to_string(k), std::move(remove)));
            }
        std::vector<double> ms;
        std::size_t served = 0;
        for (auto &f : futs) {
            const server::DaemonResponse r = f.get();
            ++served;
            if (r.outcome == server::DaemonOutcome::Ok &&
                r.result.accepted && r.kind == "admit")
                ms.push_back(r.result.latencyMs);
        }
        const auto t1 = std::chrono::steady_clock::now();
        const double wallMs =
            std::chrono::duration<double, std::milli>(t1 - t0)
                .count();
        auto &reg = metrics::Registry::global();
        if (wallMs > 0.0)
            reg.counter("bench.server.requests_per_sec")
                .add(static_cast<std::uint64_t>(
                    1000.0 * static_cast<double>(served) / wallMs));
        if (!ms.empty())
            reg.counter("bench.server.admit_p95_us")
                .add(pctUs(ms, 95.0));
        daemon.shutdown();
        std::filesystem::remove_all(state);
    };
    // Solver warm-start A/B: the identical admit/remove churn under
    // the cold dense stack and the warm-start stack, pivot totals
    // from lp::solverStats into bench.solver.* counters. Cache off
    // so every request is a real re-solve; see bench/solver_bench
    // for the standalone version.
    records.push_back(runScenario("solver_warm_churn", [&] {
        const auto churn = [&](const engine::EngineContext *ctx,
                               std::vector<double> *ms) {
            auto o = onlineSetup();
            const auto topo = makeTopology("torus:4,4,4");
            const TaskAllocation alloc =
                alloc::roundRobin(o.g, *topo, 13);
            online::OnlineSchedulerConfig scfg;
            scfg.compiler.ctx = ctx;
            scfg.compiler.inputPeriod = 2.4 * o.tm.tauC(o.g);
            scfg.cacheCapacity = 0;
            online::OnlineScheduler svc(
                o.g, makeTopology("torus:4,4,4"), alloc, o.tm,
                scfg);
            svc.start();
            lp::resetSolverStats(); // exclude the cold start()
            online::AdmitSpec spec;
            spec.name = "hot";
            spec.src = "probe";
            spec.dst = "verify";
            spec.bytes = 256.0;
            for (int r = 0; r < 8; ++r) {
                const online::RequestResult res = svc.admit(spec);
                if (res.accepted && ms != nullptr)
                    ms->push_back(res.latencyMs);
                svc.remove(spec.name);
            }
        };
        engine::ChildOptions dopts, sopts;
        dopts.name = "bench.dense";
        dopts.solverKind = lp::SolverKind::Dense;
        sopts.name = "bench.sparse";
        sopts.solverKind = lp::SolverKind::Sparse;
        const auto denseCtx =
            engine::EngineContext::processDefault().createChild(
                dopts);
        const auto sparseCtx =
            engine::EngineContext::processDefault().createChild(
                sopts);
        churn(denseCtx.get(), nullptr);
        const lp::SolverStats cold = lp::solverStats();
        std::vector<double> ms;
        churn(sparseCtx.get(), &ms);
        const lp::SolverStats warm = lp::solverStats();
        auto &reg = metrics::Registry::global();
        reg.counter("bench.solver.cold_pivots").add(cold.pivots);
        reg.counter("bench.solver.warm_pivots").add(warm.pivots);
        reg.counter("bench.solver.warmstart_hits")
            .add(warm.warmHits);
        reg.counter("bench.solver.warmstart_misses")
            .add(warm.warmMisses);
        if (warm.pivots > 0)
            reg.counter("bench.solver.pivot_reduction_pct")
                .add(100 * cold.pivots / warm.pivots);
        if (!ms.empty())
            reg.counter("bench.solver.warm_admit_p95_us")
                .add(pctUs(ms, 95.0));
    }));

    records.push_back(runScenario(
        "server_throughput_1w", [&] { daemonScenario(1, false); }));
    records.push_back(runScenario(
        "server_throughput_4w", [&] { daemonScenario(4, false); }));
    records.push_back(runScenario("server_throughput_4w_wal", [&] {
        daemonScenario(4, true);
    }));

    std::ofstream out(out_path);
    if (!out) {
        std::cerr << "cannot write " << out_path << "\n";
        return 1;
    }
    JsonWriter w(out);
    w.beginObject();
    w.key("benchmarks").beginArray();
    for (const BenchRecord &rec : records) {
        w.beginObject();
        w.kv("name", rec.name);
        w.kv("wall_ms", rec.wallMs);
        w.key("counters").beginObject();
        for (const auto &[name, v] : rec.counters)
            w.kv(name, v);
        w.endObject();
        w.endObject();
    }
    w.endArray();
    w.endObject();
    out << "\n";
    std::cerr << "# wrote " << out_path << "\n";
    return 0;
}
