/**
 * @file
 * Machine-readable benchmark emitter: runs the micro_perf scenarios
 * once each (no google-benchmark statistics — this is a CI artifact,
 * not a measurement paper) with the metrics registry enabled, and
 * writes `{"benchmarks": [{"name", "wall_ms", "counters": {...}}]}`
 * so `bench/` runs populate BENCH_srsim.json for trend tracking.
 *
 * Usage: emit_bench_json [out.json]   (default: BENCH_srsim.json)
 */

#include <chrono>
#include <fstream>
#include <functional>
#include <iostream>
#include <string>
#include <vector>

#include "core/sr_compiler.hh"
#include "cpsim/cp_simulator.hh"
#include "exp/experiment.hh"
#include "mapping/allocation.hh"
#include "metrics/metrics.hh"
#include "tfg/dvb.hh"
#include "tfg/timing.hh"
#include "topology/generalized_hypercube.hh"
#include "util/json.hh"
#include "wormhole/wormhole.hh"

namespace {

using namespace srsim;

struct DvbSetup
{
    DvbParams dp;
    TaskFlowGraph g = buildDvbTfg(dp);
    GeneralizedHypercube cube = GeneralizedHypercube::binaryCube(6);
    TimingModel tm;
    TaskAllocation alloc;

    DvbSetup() : alloc(alloc::roundRobin(g, cube, 13))
    {
        tm.apSpeed = dp.matchedApSpeed();
        tm.bandwidth = 128.0;
    }
};

struct BenchRecord
{
    std::string name;
    double wallMs = 0.0;
    std::vector<std::pair<std::string, std::uint64_t>> counters;
};

BenchRecord
runScenario(const std::string &name,
            const std::function<void()> &body)
{
    auto &reg = metrics::Registry::global();
    reg.clear();
    const auto t0 = std::chrono::steady_clock::now();
    body();
    const auto t1 = std::chrono::steady_clock::now();
    BenchRecord rec;
    rec.name = name;
    rec.wallMs =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    rec.counters = reg.counterSnapshot();
    std::cerr << "# " << name << ": " << rec.wallMs << " ms\n";
    return rec;
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string out_path =
        argc > 1 ? argv[1] : "BENCH_srsim.json";
    metrics::Registry::setEnabled(true);

    DvbSetup s;
    const Time tau_c = s.tm.tauC(s.g);
    std::vector<BenchRecord> records;

    records.push_back(runScenario("sr_compile_load_1.0", [&] {
        SrCompilerConfig cfg;
        cfg.inputPeriod = tau_c;
        compileScheduledRouting(s.g, s.cube, s.alloc, s.tm, cfg);
    }));

    records.push_back(runScenario("sr_compile_load_0.5", [&] {
        SrCompilerConfig cfg;
        cfg.inputPeriod = 2.0 * tau_c;
        compileScheduledRouting(s.g, s.cube, s.alloc, s.tm, cfg);
    }));

    records.push_back(runScenario("wormhole_60inv", [&] {
        WormholeConfig cfg;
        cfg.inputPeriod = tau_c;
        cfg.invocations = 60;
        cfg.warmup = 5;
        WormholeSimulator sim(s.g, s.cube, s.alloc, s.tm);
        sim.run(cfg);
    }));

    records.push_back(runScenario("cpsim_30inv", [&] {
        SrCompilerConfig cfg;
        cfg.inputPeriod = 2.0 * tau_c;
        const SrCompileResult sr = compileScheduledRouting(
            s.g, s.cube, s.alloc, s.tm, cfg);
        if (sr.feasible)
            simulateCps(s.g, s.cube, s.alloc, s.tm, sr.bounds,
                        sr.omega);
    }));

    records.push_back(runScenario("assign_paths_12restarts", [&] {
        const TimeBounds tb = computeTimeBounds(
            s.g, s.alloc, s.tm, 2.0 * tau_c);
        const IntervalSet ivs(tb);
        AssignPathsOptions opts;
        opts.maxRestarts = 12;
        assignPaths(s.g, s.cube, s.alloc, tb, ivs, opts);
    }));

    records.push_back(runScenario("utilization_sweep", [&] {
        ExperimentConfig cfg;
        runUtilizationExperiment(s.g, s.cube, s.alloc, s.tm, cfg);
    }));

    std::ofstream out(out_path);
    if (!out) {
        std::cerr << "cannot write " << out_path << "\n";
        return 1;
    }
    JsonWriter w(out);
    w.beginObject();
    w.key("benchmarks").beginArray();
    for (const BenchRecord &rec : records) {
        w.beginObject();
        w.kv("name", rec.name);
        w.kv("wall_ms", rec.wallMs);
        w.key("counters").beginObject();
        for (const auto &[name, v] : rec.counters)
            w.kv(name, v);
        w.endObject();
        w.endObject();
    }
    w.endArray();
    w.endObject();
    out << "\n";
    std::cerr << "# wrote " << out_path << "\n";
    return 0;
}
