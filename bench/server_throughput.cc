/**
 * @file
 * Daemon throughput benchmark: admits/sec and p95 admission latency
 * through the multi-tenant scheduling daemon, swept over worker
 * counts with the WAL on and off.
 *
 * Eight sessions each serve the fig10 workload (DVB TFG on the
 * 4x4x4 torus, bandwidth 128, round-robin placement, period
 * 2.4 tau_c) and absorb interleaved admit/remove rounds. The shared
 * cache is disabled so every request is a real incremental solve —
 * the sweep measures cross-session parallelism and WAL overhead,
 * not cache hits. Distinct sessions drain on distinct workers, so
 * on a multi-core host throughput scales with the worker count
 * until cores run out; on one core the sweep degenerates to the
 * dispatch overhead (recorded either way).
 *
 * Prints a human summary to stderr and a JSON document to stdout
 * (or to the file named by argv[1]). emit_bench_json runs reduced
 * variants of the same scenarios into BENCH_srsim.json.
 */

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <future>
#include <iostream>
#include <string>
#include <vector>

#include "online/requests.hh"
#include "server/daemon.hh"
#include "server/protocol.hh"
#include "util/json.hh"

namespace {

using namespace srsim;

/** Skip edges over the DVB recognition chain, reused round-robin. */
const std::vector<std::pair<const char *, const char *>> kSkipPairs =
    {{"match", "probe"},   {"hough", "extend"},
     {"probe", "verify"},  {"extend", "filter"},
     {"verify", "score"},  {"match", "extend"}};

server::SessionConfig
figSession(int k)
{
    server::SessionConfig sc;
    sc.name = "s" + std::to_string(k);
    sc.topo = "torus:4,4,4";
    sc.tfg = "dvb";
    sc.period = 120.0; // 2.4 tau_c at bandwidth 128, matched AP.
    sc.bandwidth = 128.0;
    sc.alloc = "rr:13";
    return sc;
}

double
percentile(std::vector<double> sorted, double p)
{
    if (sorted.empty())
        return 0.0;
    std::sort(sorted.begin(), sorted.end());
    const double rank =
        p / 100.0 * static_cast<double>(sorted.size() - 1);
    const std::size_t lo = static_cast<std::size_t>(rank);
    const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

struct SweepPoint
{
    std::size_t workers = 1;
    bool wal = false;
    std::size_t requests = 0;
    std::size_t accepted = 0;
    double wallMs = 0.0;
    double requestsPerSec = 0.0;
    double admitP50Ms = 0.0;
    double admitP95Ms = 0.0;
    std::uint64_t walRecords = 0;
    std::uint64_t walFsyncs = 0;
};

SweepPoint
runPoint(std::size_t workers, bool wal, int sessions, int rounds)
{
    SweepPoint pt;
    pt.workers = workers;
    pt.wal = wal;

    const std::filesystem::path state =
        std::filesystem::temp_directory_path() /
        ("srsim-bench-daemon-" + std::to_string(workers) +
         (wal ? "-wal" : "-nowal"));
    std::filesystem::remove_all(state);

    server::DaemonConfig cfg;
    cfg.workers = workers;
    cfg.queueCap =
        static_cast<std::size_t>(sessions * rounds) * 2 + 16;
    cfg.cacheCapacity = 0; // every admit is a real solve
    cfg.walSyncEvery = 1;  // pay the honest fsync per record
    if (wal)
        cfg.stateDir = state.string();

    server::SchedulingDaemon daemon(cfg);
    for (int k = 0; k < sessions; ++k) {
        const server::DaemonResponse r = daemon.open(figSession(k));
        if (r.outcome != server::DaemonOutcome::Ok ||
            !r.result.accepted) {
            std::cerr << "session open failed: " << r.detail
                      << r.result.detail << "\n";
            std::exit(1);
        }
    }

    // The timed window: every admit/remove round across every
    // session, submitted up front (the queue is sized to hold them
    // all) and drained by the worker pool.
    std::vector<std::future<server::DaemonResponse>> futs;
    const auto t0 = std::chrono::steady_clock::now();
    for (int r = 0; r < rounds; ++r) {
        for (int k = 0; k < sessions; ++k) {
            online::Request admit;
            admit.kind = online::RequestKind::AdmitMessage;
            online::AdmitSpec spec;
            spec.name = "bench" + std::to_string(r);
            spec.src =
                kSkipPairs[static_cast<std::size_t>(r) %
                           kSkipPairs.size()]
                    .first;
            spec.dst =
                kSkipPairs[static_cast<std::size_t>(r) %
                           kSkipPairs.size()]
                    .second;
            spec.bytes =
                128.0 + 16.0 * static_cast<double>(r) +
                static_cast<double>(k); // distinct per session
            admit.admits.push_back(std::move(spec));
            futs.push_back(daemon.submit("s" + std::to_string(k),
                                         std::move(admit)));

            online::Request remove;
            remove.kind = online::RequestKind::RemoveMessage;
            remove.name = "bench" + std::to_string(r);
            futs.push_back(daemon.submit("s" + std::to_string(k),
                                         std::move(remove)));
        }
    }
    std::vector<double> admitMs;
    for (auto &f : futs) {
        const server::DaemonResponse r = f.get();
        ++pt.requests;
        if (r.outcome == server::DaemonOutcome::Ok &&
            r.result.accepted) {
            ++pt.accepted;
            if (r.kind == "admit")
                admitMs.push_back(r.result.latencyMs);
        }
    }
    const auto t1 = std::chrono::steady_clock::now();

    pt.wallMs =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    pt.requestsPerSec =
        pt.wallMs > 0.0
            ? 1000.0 * static_cast<double>(pt.requests) / pt.wallMs
            : 0.0;
    pt.admitP50Ms = percentile(admitMs, 50.0);
    pt.admitP95Ms = percentile(admitMs, 95.0);
    pt.walRecords = daemon.walRecords();
    pt.walFsyncs = daemon.walFsyncs();

    daemon.shutdown();
    std::filesystem::remove_all(state);
    return pt;
}

} // namespace

int
main(int argc, char **argv)
{
    const int sessions = 8;
    const int rounds = 3;

    std::vector<SweepPoint> points;
    for (const std::size_t workers : {1u, 2u, 4u})
        for (const bool wal : {false, true})
            points.push_back(
                runPoint(workers, wal, sessions, rounds));

    std::cerr << "# server_throughput: " << sessions
              << " sessions x " << rounds
              << " admit/remove rounds, cache off\n";
    for (const SweepPoint &pt : points)
        std::cerr << "#   workers " << pt.workers << ", wal "
                  << (pt.wal ? "on " : "off") << ": "
                  << pt.requestsPerSec << " req/s, admit p50 "
                  << pt.admitP50Ms << " ms, p95 " << pt.admitP95Ms
                  << " ms (" << pt.accepted << "/" << pt.requests
                  << " accepted, " << pt.walFsyncs << " fsyncs)\n";

    const auto find = [&](std::size_t w, bool wal) -> const
        SweepPoint & {
            for (const SweepPoint &pt : points)
                if (pt.workers == w && pt.wal == wal)
                    return pt;
            return points.front();
        };
    const double scaling =
        find(1, false).requestsPerSec > 0.0
            ? find(4, false).requestsPerSec /
                  find(1, false).requestsPerSec
            : 0.0;
    const double walOverhead =
        find(1, false).requestsPerSec > 0.0
            ? 1.0 - find(1, true).requestsPerSec /
                        find(1, false).requestsPerSec
            : 0.0;
    std::cerr << "#   4-worker / 1-worker throughput (wal off): "
              << scaling << "x\n"
              << "#   wal overhead at 1 worker: "
              << 100.0 * walOverhead << "%\n";

    std::ofstream file;
    std::ostream *os = &std::cout;
    if (argc > 1) {
        file.open(argv[1]);
        if (!file) {
            std::cerr << "cannot write " << argv[1] << "\n";
            return 1;
        }
        os = &file;
    }
    JsonWriter w(*os);
    w.beginObject();
    w.kv("sessions", static_cast<std::uint64_t>(sessions));
    w.kv("rounds", static_cast<std::uint64_t>(rounds));
    w.key("points").beginArray();
    for (const SweepPoint &pt : points) {
        w.beginObject();
        w.kv("workers", static_cast<std::uint64_t>(pt.workers));
        w.kv("wal", pt.wal);
        w.kv("requests", static_cast<std::uint64_t>(pt.requests));
        w.kv("accepted", static_cast<std::uint64_t>(pt.accepted));
        w.kv("wall_ms", pt.wallMs);
        w.kv("requests_per_sec", pt.requestsPerSec);
        w.kv("admit_p50_ms", pt.admitP50Ms);
        w.kv("admit_p95_ms", pt.admitP95Ms);
        w.kv("wal_records", pt.walRecords);
        w.kv("wal_fsyncs", pt.walFsyncs);
        w.endObject();
    }
    w.endArray();
    w.kv("scaling_4w_over_1w_wal_off", scaling);
    w.kv("wal_overhead_1w", walOverhead);
    w.endObject();
    *os << "\n";
    return 0;
}
