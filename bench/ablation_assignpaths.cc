/**
 * @file
 * Ablation of the path-assignment stage (Sec. 5.1): how much of
 * scheduled routing's feasibility comes from AssignPaths?
 *
 * Compares, per fabric at B = 64 bytes/us across the load sweep:
 *   - the LSD-to-MSD routing-function assignment,
 *   - a random minimal-path assignment (AssignPaths' starting
 *     point, no improvement),
 *   - AssignPaths without random restarts (pure hill-climb),
 *   - full AssignPaths (Fig. 4, with restarts).
 */

#include <iostream>

#include "core/intervals.hh"
#include "core/path_assignment.hh"
#include "core/time_bounds.hh"
#include "exp/experiment.hh"
#include "fig_common.hh"
#include "topology/generalized_hypercube.hh"
#include "topology/torus.hh"
#include "util/rng.hh"
#include "util/table.hh"

namespace {

void
runPanel(const srsim::Topology &topo)
{
    using namespace srsim;
    bench::FigureSetup setup;
    const TaskFlowGraph g = buildDvbTfg(setup.dvb);
    const TimingModel tm = setup.timing(64.0);
    const TaskAllocation alloc = setup.allocate(g, topo);
    const Time tau_c = tm.tauC(g);

    std::cout << "AssignPaths ablation: DVB on " << topo.name()
              << ", B = 64 bytes/us\n";
    Table t({"load", "U lsd-to-msd", "U random", "U no-restart",
             "U full", "reroutes", "restarts"});
    for (Time period : loadSweepPeriods(tau_c, setup.cfg)) {
        const TimeBounds tb = computeTimeBounds(g, alloc, tm,
                                                period);
        const IntervalSet ivs(tb);
        UtilizationAnalyzer ua(tb, ivs, topo);

        const double lsd =
            ua.analyze(lsdToMsdAssignment(g, topo, alloc, tb)).peak;

        // Random assignment: the heuristic's starting point.
        Rng rng(12345);
        PathAssignment rnd;
        for (const MessageBounds &b : tb.messages) {
            const Message &m = g.message(b.msg);
            auto cands = topo.minimalPaths(alloc.nodeOf(m.src),
                                           alloc.nodeOf(m.dst),
                                           256);
            rnd.paths.push_back(cands[rng.index(cands.size())]);
        }
        const double random_u = ua.analyze(rnd).peak;

        AssignPathsOptions no_restart;
        no_restart.maxRestarts = 0;
        const double hill =
            assignPaths(g, topo, alloc, tb, ivs, no_restart)
                .report.peak;

        const AssignPathsResult full =
            assignPaths(g, topo, alloc, tb, ivs);

        t.addRow({Table::num(tau_c / period, 4), Table::num(lsd),
                  Table::num(random_u), Table::num(hill),
                  Table::num(full.report.peak),
                  std::to_string(full.reroutes),
                  std::to_string(full.restarts)});
    }
    t.print(std::cout);
    std::cout << "\n";
}

} // namespace

int
main()
{
    using namespace srsim;
    const GeneralizedHypercube cube =
        GeneralizedHypercube::binaryCube(6);
    const Torus torus({8, 8});
    runPanel(cube);
    runPanel(torus);
    return 0;
}
