/**
 * @file
 * Fig. 8: DVB on a 4x4x4 generalized hypercube. With more links
 * than the binary 6-cube, U reaches the feasible range at more load
 * points at B = 64 bytes/us; at B = 128 bytes/us output
 * inconsistency appears under wormhole routing and scheduled
 * routing removes it.
 */

#include "fig_common.hh"
#include "topology/generalized_hypercube.hh"

int
main()
{
    using namespace srsim;
    const GeneralizedHypercube ghc({4, 4, 4});
    bench::runThroughputPanel("Fig. 8 (top)", ghc, 64.0);
    bench::runThroughputPanel("Fig. 8 (bottom)", ghc, 128.0);
    return 0;
}
