/**
 * @file
 * Fig. 5: peak utilization U versus normalized load for the DVB TFG
 * on generalized hypercubes at B = 64 bytes/us — the LSD-to-MSD
 * routing-function assignment versus the final AssignPaths
 * assignment. AssignPaths should always be at least as low, and the
 * load at which U crosses 1.0 bounds where scheduled routing can be
 * attempted.
 */

#include "fig_common.hh"
#include "topology/generalized_hypercube.hh"

int
main()
{
    using namespace srsim;
    const GeneralizedHypercube cube =
        GeneralizedHypercube::binaryCube(6);
    const GeneralizedHypercube ghc({4, 4, 4});
    bench::runUtilizationPanel("Fig. 5 (top)", cube, 64.0);
    bench::runUtilizationPanel("Fig. 5 (bottom)", ghc, 64.0);
    return 0;
}
