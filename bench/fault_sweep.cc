/**
 * @file
 * Degraded-mode sweep: how much schedulable load survives link
 * failures, and how fast the repair pipeline restores a verified
 * schedule.
 *
 * Runs the DVB pipeline on a 4x4x4 torus at B = 128 bytes/us, then
 * for each fault count k = 1..3 injects `rand:k:<seed>` link
 * failures (plus one capacity-derating scenario) and repairs the
 * healthy schedule against the surviving fabric. The table reports
 * the before/after peak utilization, the repair mode (incremental
 * vs. full recompile, subsets re-solved), the degraded period, and
 * the per-message fates. Wall-clock repair latency goes to stderr so
 * stdout stays byte-stable across runs; the JSON twin (written when
 * SRSIM_JSON_DIR is set) carries the latency too.
 */

#include <chrono>
#include <iomanip>
#include <iostream>
#include <string>
#include <vector>

#include "core/sr_compiler.hh"
#include "fault/fault.hh"
#include "fault/repair.hh"
#include "fig_common.hh"
#include "mapping/allocation.hh"
#include "tfg/dvb.hh"
#include "topology/factory.hh"

namespace srsim {
namespace {

struct Scenario
{
    const char *name;
    const char *faultSpec; ///< empty = healthy baseline
};

int
run()
{
    const char *kTopo = "torus:4,4,4";
    const double kBandwidth = 128.0;
    const double kPeriodFactor = 2.4;

    const TaskFlowGraph g = buildDvbTfg({});
    const auto topo = makeTopology(kTopo);
    TimingModel tm;
    tm.apSpeed = DvbParams{}.matchedApSpeed();
    tm.bandwidth = kBandwidth;
    const TaskAllocation alloc = alloc::roundRobin(g, *topo, 13);
    SrCompilerConfig cfg;
    cfg.inputPeriod = kPeriodFactor * tm.tauC(g);

    const SrCompileResult healthy =
        compileScheduledRouting(g, *topo, alloc, tm, cfg);
    if (!healthy.feasible) {
        std::cerr << "fault_sweep: healthy baseline infeasible\n";
        return 1;
    }

    const std::vector<Scenario> scenarios = {
        {"healthy", ""},
        {"1-link", "rand:1:2"},
        {"2-link", "rand:2:9"},
        {"3-link", "rand:3:4"},
        {"node-down", "node:13"},
        {"derate-0.5", "derate:#40=0.5"},
    };

    std::cout << "fault sweep: DVB on " << topo->name()
              << ", B = " << static_cast<int>(kBandwidth)
              << " bytes/us, period = " << cfg.inputPeriod
              << " us (" << kPeriodFactor << " x tau_c)\n\n"
              << std::left << std::setw(12) << "scenario"
              << std::setw(10) << "peak U" << std::setw(14)
              << "mode" << std::setw(10) << "subsets"
              << std::setw(12) << "period us" << "fates\n";

    std::ofstream json = bench::jsonSink("fault sweep torus444");
    if (json.is_open())
        json << "{\n  \"scenarios\": [\n";
    bool firstJson = true;

    for (const Scenario &sc : scenarios) {
        topo->clearFaults();
        double peak = healthy.utilization.peak;
        std::string mode = "baseline";
        std::string subsets = "-";
        Time period = healthy.omega.period;
        std::string fates = "all survived";
        double repairMs = 0.0;

        if (*sc.faultSpec) {
            fault::applyFaultSpec(sc.faultSpec, *topo);
            fault::RepairOptions ropts;
            ropts.faultSpec = sc.faultSpec;
            const auto t0 = std::chrono::steady_clock::now();
            const fault::RepairResult rep = fault::repairSchedule(
                g, *topo, alloc, tm, cfg, healthy, ropts);
            repairMs =
                std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - t0)
                    .count();
            if (!rep.feasible) {
                std::cout << std::setw(12) << sc.name
                          << "repair FAILED: " << rep.detail
                          << "\n";
                continue;
            }
            if (rep.usedFullRecompile) {
                // The recompiled schedule indexes the (possibly
                // reduced) problem; its own gate has the right peak.
                peak = rep.compile.utilization.peak;
            } else {
                const UtilizationAnalyzer ua(
                    healthy.bounds, *healthy.intervals, *topo);
                peak = ua.analyze(rep.omega.paths).peak;
            }
            mode = rep.usedIncremental ? "incremental" : "full";
            subsets = std::to_string(rep.subsetsResolved) + "/" +
                      std::to_string(rep.subsetsTotal);
            period = rep.degradedPeriod;
            int nSurvived = 0, nRerouted = 0, nDegraded = 0,
                nShed = 0;
            for (fault::MessageFate f : rep.fates) {
                switch (f) {
                case fault::MessageFate::Survived: ++nSurvived; break;
                case fault::MessageFate::Rerouted: ++nRerouted; break;
                case fault::MessageFate::Degraded: ++nDegraded; break;
                case fault::MessageFate::Shed: ++nShed; break;
                }
            }
            std::ostringstream fs;
            fs << nSurvived << " survived, " << nRerouted
               << " rerouted, " << nDegraded << " degraded, "
               << nShed << " shed";
            fates = fs.str();
            std::cerr << "# " << sc.name << ": repair took "
                      << repairMs << " ms ("
                      << topo->numLiveLinks() << "/"
                      << topo->numLinks() << " links live)\n";
        }

        std::ostringstream u;
        u << std::fixed << std::setprecision(4) << peak;
        std::cout << std::setw(12) << sc.name << std::setw(10)
                  << u.str() << std::setw(14) << mode
                  << std::setw(10) << subsets << std::setw(12)
                  << period << fates << "\n";

        if (json.is_open()) {
            if (!firstJson)
                json << ",\n";
            firstJson = false;
            json << "    {\"name\": \"" << sc.name
                 << "\", \"fault_spec\": \"" << sc.faultSpec
                 << "\", \"peak_utilization\": " << peak
                 << ", \"mode\": \"" << mode
                 << "\", \"subsets\": \"" << subsets
                 << "\", \"period_us\": " << period
                 << ", \"repair_ms\": " << repairMs
                 << ", \"fates\": \"" << fates << "\"}";
        }
    }
    if (json.is_open())
        json << "\n  ]\n}\n";
    return 0;
}

} // namespace
} // namespace srsim

int
main()
{
    try {
        return srsim::run();
    } catch (const srsim::FatalError &e) {
        std::cerr << "fault_sweep: " << e.what() << "\n";
        return 1;
    }
}
