/**
 * @file
 * Quickstart: map a small pipeline onto a binary 3-cube, show that
 * wormhole routing produces output inconsistency while scheduled
 * routing sustains a constant throughput.
 *
 *   ./quickstart
 */

#include <iostream>

#include "core/sr_compiler.hh"
#include "core/sr_executor.hh"
#include "mapping/allocation.hh"
#include "tfg/tfg.hh"
#include "tfg/timing.hh"
#include "topology/generalized_hypercube.hh"
#include "wormhole/wormhole.hh"

int
main()
{
    using namespace srsim;

    // 1. Describe the application as a task-flow graph.
    TaskFlowGraph g;
    const TaskId grab = g.addTask("grab", 800.0);
    const TaskId edge = g.addTask("edges", 1000.0);
    const TaskId blob = g.addTask("blobs", 900.0);
    const TaskId fuse = g.addTask("fuse", 1000.0);
    g.addMessage("frame->edges", grab, edge, 2048.0);
    g.addMessage("frame->blobs", grab, blob, 2048.0);
    g.addMessage("edges->fuse", edge, fuse, 1024.0);
    g.addMessage("blobs->fuse", blob, fuse, 1024.0);

    // 2. Pick hardware: a binary 3-cube, 64 bytes/us links, APs at
    //    20 ops/us.
    GeneralizedHypercube cube = GeneralizedHypercube::binaryCube(3);
    TimingModel tm;
    tm.apSpeed = 20.0;
    tm.bandwidth = 64.0;

    // 3. Allocate tasks to nodes (communication-aware greedy).
    TaskAllocation alloc = alloc::greedy(g, cube);

    const Time tau_c = tm.tauC(g);
    const Time period = tau_c; // pipeline at maximum throughput
    std::cout << "tau_c = " << tau_c << " us, input period = "
              << period << " us\n\n";

    // 4. Simulate wormhole routing.
    WormholeSimulator wsim(g, cube, alloc, tm);
    WormholeConfig wcfg;
    wcfg.inputPeriod = period;
    const WormholeResult wr = wsim.run(wcfg);
    const SeriesStats wr_out = wr.outputIntervals(wcfg.warmup);
    std::cout << "wormhole routing: output interval min/avg/max = "
              << wr_out.min() << "/" << wr_out.mean() << "/"
              << wr_out.max() << " us"
              << (wr.outputInconsistent(wcfg.warmup)
                      ? "  (output inconsistency!)"
                      : "  (consistent)")
              << "\n";

    // 5. Compile a scheduled-routing Omega at the same period.
    SrCompilerConfig scfg;
    scfg.inputPeriod = period;
    const SrCompileResult sr =
        compileScheduledRouting(g, cube, alloc, tm, scfg);
    if (!sr.feasible) {
        std::cout << "scheduled routing infeasible at this period: "
                  << sr.detail << "\n";
        return 1;
    }

    // 6. Execute the schedule and confirm constant throughput.
    const SrExecutionResult ex =
        executeSchedule(g, alloc, tm, sr.bounds, sr.omega, 40);
    const SeriesStats sr_out = ex.outputIntervals(10);
    std::cout << "scheduled routing: output interval min/avg/max = "
              << sr_out.min() << "/" << sr_out.mean() << "/"
              << sr_out.max() << " us"
              << (ex.consistent(10) ? "  (constant throughput)"
                                    : "  (inconsistent?)")
              << "\n";
    std::cout << "peak utilization U = " << sr.utilization.peak
              << ", verified contention-free: "
              << (sr.verification.ok ? "yes" : "no") << "\n";
    return 0;
}
