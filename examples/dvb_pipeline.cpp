/**
 * @file
 * The paper's flagship workload end to end: the DARPA Vision
 * Benchmark TFG (Fig. 1) pipelined on a binary 6-cube.
 *
 * Prints the TFG (and its Graphviz form on request), compiles a
 * scheduled-routing Omega at a chosen load, shows one node's
 * switching schedule omega_i, and compares wormhole and scheduled
 * routing at that load.
 *
 *   ./dvb_pipeline [normalized_load] [--dot]   (default load 0.5)
 */

#include <cstdlib>
#include <cstring>
#include <iostream>

#include "core/sr_compiler.hh"
#include "core/sr_executor.hh"
#include "mapping/allocation.hh"
#include "tfg/dvb.hh"
#include "tfg/timing.hh"
#include "topology/generalized_hypercube.hh"
#include "wormhole/wormhole.hh"

int
main(int argc, char **argv)
{
    using namespace srsim;
    double load = 0.5;
    bool dot = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--dot") == 0)
            dot = true;
        else
            load = std::atof(argv[i]);
    }
    if (load <= 0.0 || load > 1.0) {
        std::cerr << "normalized load must be in (0, 1]\n";
        return 1;
    }

    DvbParams dp;
    const TaskFlowGraph g = buildDvbTfg(dp);
    if (dot) {
        g.writeDot(std::cout);
        return 0;
    }

    std::cout << "DARPA Vision Benchmark TFG: " << g.numTasks()
              << " tasks, " << g.numMessages() << " messages ("
              << dp.numModels << " object models)\n";

    const GeneralizedHypercube cube =
        GeneralizedHypercube::binaryCube(6);
    TimingModel tm;
    tm.apSpeed = dp.matchedApSpeed();
    tm.bandwidth = 128.0;
    const TaskAllocation alloc = alloc::roundRobin(g, cube, 13);

    const Time tau_c = tm.tauC(g);
    const Time period = tau_c / load;
    std::cout << "fabric: " << cube.name() << ", B = "
              << tm.bandwidth << " bytes/us, tau_c = " << tau_c
              << " us, tau_in = " << period << " us (load " << load
              << ")\n\n";

    // Wormhole routing at this load.
    WormholeSimulator wsim(g, cube, alloc, tm);
    WormholeConfig wcfg;
    wcfg.inputPeriod = period;
    const WormholeResult wr = wsim.run(wcfg);
    if (wr.deadlocked) {
        std::cout << "wormhole: DEADLOCK (" << wr.deadlockInfo
                  << ")\n";
    } else {
        const SeriesStats s = wr.outputIntervals(wcfg.warmup);
        std::cout << "wormhole:  output interval min/avg/max = "
                  << s.min() << "/" << s.mean() << "/" << s.max()
                  << " us"
                  << (wr.outputInconsistent(wcfg.warmup)
                          ? "  (output inconsistency)"
                          : "  (consistent)")
                  << "\n";
    }

    // Scheduled routing at the same load.
    SrCompilerConfig cfg;
    cfg.inputPeriod = period;
    const SrCompileResult sr =
        compileScheduledRouting(g, cube, alloc, tm, cfg);
    if (!sr.feasible) {
        std::cout << "scheduled: infeasible at this load -- "
                  << sr.detail << " (stage "
                  << srFailureStageName(sr.stage) << ")\n";
        return 0;
    }
    const SrExecutionResult ex =
        executeSchedule(g, alloc, tm, sr.bounds, sr.omega, 40);
    const SeriesStats s = ex.outputIntervals(8);
    std::cout << "scheduled: output interval min/avg/max = "
              << s.min() << "/" << s.mean() << "/" << s.max()
              << " us  (constant, verified contention-free)\n";
    std::cout << "           peak utilization U = "
              << sr.utilization.peak << ", " << sr.numSubsets
              << " maximal subsets, "
              << sr.intervals->size() << " frame intervals\n\n";

    // Show the switching schedule of the input task's node.
    const auto node_scheds = deriveNodeSchedules(
        g, cube, alloc, sr.bounds, sr.omega);
    const NodeId input_node = alloc.nodeOf(0);
    std::cout << "switching schedule of the input task's CP:\n";
    printNodeSchedule(std::cout,
                      node_scheds[static_cast<std::size_t>(
                          input_node)],
                      g);
    return 0;
}
