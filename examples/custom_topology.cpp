/**
 * @file
 * Using srsim beyond the paper's fabrics: a random layered TFG on a
 * 4x4 mesh (a topology the paper did not evaluate), swept across
 * loads to find the highest input rate each routing technique
 * sustains.
 *
 *   ./custom_topology [seed]   (default 7)
 */

#include <cstdlib>
#include <iostream>

#include "core/sr_compiler.hh"
#include "core/sr_executor.hh"
#include "mapping/allocation.hh"
#include "tfg/random_tfg.hh"
#include "tfg/timing.hh"
#include "topology/mesh.hh"
#include "util/table.hh"
#include "wormhole/wormhole.hh"

int
main(int argc, char **argv)
{
    using namespace srsim;
    const std::uint64_t seed =
        argc > 1 ? static_cast<std::uint64_t>(std::atoll(argv[1]))
                 : 7;

    Rng rng(seed);
    RandomTfgParams rp;
    rp.layers = 5;
    rp.minWidth = 2;
    rp.maxWidth = 4;
    rp.minOps = 500.0;
    rp.maxOps = 2000.0;
    rp.minBytes = 128.0;
    rp.maxBytes = 2000.0; // tau_m <= tau_c at the speeds below
    const TaskFlowGraph g = buildRandomTfg(rp, rng);

    const Mesh mesh({4, 4});
    TimingModel tm;
    tm.apSpeed = 16.0;
    tm.bandwidth = 64.0;
    const TaskAllocation alloc = alloc::greedy(g, mesh);

    std::cout << "random TFG (seed " << seed << "): "
              << g.numTasks() << " tasks, " << g.numMessages()
              << " messages on a " << mesh.name() << "\n";
    const Time tau_c = tm.tauC(g);
    std::cout << "tau_c = " << tau_c << " us, tau_m = "
              << tm.tauM(g) << " us\n\n";

    Table t({"load", "tau_in (us)", "wormhole", "scheduled"});
    for (double load : {0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9,
                        1.0}) {
        const Time period = tau_c / load;

        WormholeSimulator wsim(g, mesh, alloc, tm);
        WormholeConfig wcfg;
        wcfg.inputPeriod = period;
        const WormholeResult wr = wsim.run(wcfg);
        std::string wh;
        if (wr.deadlocked)
            wh = "deadlock";
        else if (wr.outputInconsistent(wcfg.warmup))
            wh = "inconsistent";
        else
            wh = "consistent";

        SrCompilerConfig cfg;
        cfg.inputPeriod = period;
        cfg.assign.seed = seed;
        const SrCompileResult sr =
            compileScheduledRouting(g, mesh, alloc, tm, cfg);
        std::string sch;
        if (sr.feasible) {
            const SrExecutionResult ex = executeSchedule(
                g, alloc, tm, sr.bounds, sr.omega, 30);
            sch = ex.consistent(5) ? "constant" : "violated?";
        } else {
            sch = std::string("fail:") +
                  srFailureStageName(sr.stage);
        }
        t.addRow({Table::num(load, 2), Table::num(period, 1), wh,
                  sch});
    }
    t.print(std::cout);
    std::cout << "\n'constant' = compiled, verified contention-"
                 "free, and executed with equal output intervals\n";
    return 0;
}
