/**
 * @file
 * Output-inconsistency demo: the two-message scenario of Sec. 3 of
 * the paper, reproduced on a 4-node ring.
 *
 * A@0 --M1--> B@1 --M2--> C@0. M1 and M2 cross the same physical
 * half-duplex link. Pipelined with a period slightly above the
 * shared link's total demand, wormhole routing's FCFS capture
 * delays M1 in some invocations and not others: successive outputs
 * appear at visibly unequal intervals, while the mean interval
 * still tracks the input period. Scheduled routing at the same
 * period is compiled, verified, and executed: every interval equals
 * the period exactly.
 *
 *   ./oi_demo [input_period_us]   (default 80)
 */

#include <cstdlib>
#include <iostream>

#include "core/sr_compiler.hh"
#include "core/sr_executor.hh"
#include "mapping/allocation.hh"
#include "tfg/tfg.hh"
#include "tfg/timing.hh"
#include "topology/torus.hh"
#include "util/table.hh"
#include "wormhole/wormhole.hh"

int
main(int argc, char **argv)
{
    using namespace srsim;
    const double period = argc > 1 ? std::atof(argv[1]) : 80.0;

    TaskFlowGraph g;
    const TaskId a = g.addTask("A", 500.0);
    const TaskId b = g.addTask("B", 500.0);
    const TaskId c = g.addTask("C", 500.0);
    g.addMessage("M1", a, b, 3200.0); // 25 us at 128 bytes/us
    g.addMessage("M2", b, c, 3200.0);
    TimingModel tm;
    tm.apSpeed = 10.0;    // 50 us tasks (tau_c = 50)
    tm.bandwidth = 128.0;

    const Torus ring({4});
    TaskAllocation alloc(3, 4);
    alloc.assign(a, 0);
    alloc.assign(b, 1);
    alloc.assign(c, 0);

    std::cout << "Sec. 3 scenario: A@0 -M1-> B@1 -M2-> C@0 on a "
                 "4-ring, tau_in = "
              << period << " us\n";
    std::cout << "M1 and M2 share the half-duplex link 0-1 (25 us "
                 "each, 50 us total demand per period)\n\n";

    WormholeSimulator wsim(g, ring, alloc, tm);
    WormholeConfig wcfg;
    wcfg.inputPeriod = period;
    wcfg.invocations = 28;
    wcfg.warmup = 4;
    const WormholeResult wr = wsim.run(wcfg);
    if (wr.deadlocked) {
        std::cout << "wormhole routing deadlocked: "
                  << wr.deadlockInfo << "\n";
    } else {
        Table t({"invocation", "output interval (us)",
                 "latency (us)"});
        for (std::size_t j = 1; j < wr.records.size(); ++j) {
            t.addRow({std::to_string(wr.records[j].index),
                      Table::num(wr.records[j].complete -
                                     wr.records[j - 1].complete,
                                 1),
                      Table::num(wr.records[j].latency(), 1)});
        }
        std::cout << "wormhole routing, per-invocation:\n";
        t.print(std::cout);
        const SeriesStats s = wr.outputIntervals(wcfg.warmup);
        std::cout << "\noutput interval min/avg/max = " << s.min()
                  << "/" << s.mean() << "/" << s.max() << " us -> "
                  << (wr.outputInconsistent(wcfg.warmup)
                          ? "OUTPUT INCONSISTENCY"
                          : "consistent")
                  << "\n\n";
    }

    SrCompilerConfig cfg;
    cfg.inputPeriod = period;
    const SrCompileResult sr =
        compileScheduledRouting(g, ring, alloc, tm, cfg);
    if (!sr.feasible) {
        std::cout << "scheduled routing infeasible at this period ("
                  << sr.detail << ")\n";
        return 1;
    }
    const SrExecutionResult ex =
        executeSchedule(g, alloc, tm, sr.bounds, sr.omega, 28);
    const SeriesStats s = ex.outputIntervals(4);
    std::cout << "scheduled routing: output interval min/avg/max = "
              << s.min() << "/" << s.mean() << "/" << s.max()
              << " us -> "
              << (ex.consistent(4) ? "constant throughput"
                                   : "inconsistent?")
              << "\n";
    return 0;
}
