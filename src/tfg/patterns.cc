#include "tfg/patterns.hh"

#include <string>
#include <vector>

#include "util/logging.hh"

namespace srsim {
namespace patterns {

TaskFlowGraph
chain(int stages, double opsPerTask, double bytesPerMessage)
{
    if (stages < 1)
        fatal("chain needs at least one stage");
    TaskFlowGraph g;
    TaskId prev = kInvalidTask;
    for (int s = 0; s < stages; ++s) {
        const TaskId t =
            g.addTask("stage" + std::to_string(s), opsPerTask);
        if (prev != kInvalidTask)
            g.addMessage("m" + std::to_string(s - 1), prev, t,
                         bytesPerMessage);
        prev = t;
    }
    return g;
}

TaskFlowGraph
forkJoin(int width, double sourceOps, double workerOps,
         double sinkOps, double bytesPerMessage)
{
    if (width < 1)
        fatal("forkJoin needs at least one worker");
    TaskFlowGraph g;
    const TaskId src = g.addTask("source", sourceOps);
    const TaskId sink = g.addTask("sink", sinkOps);
    for (int w = 0; w < width; ++w) {
        const TaskId worker =
            g.addTask("worker" + std::to_string(w), workerOps);
        g.addMessage("out" + std::to_string(w), src, worker,
                     bytesPerMessage);
        g.addMessage("in" + std::to_string(w), worker, sink,
                     bytesPerMessage);
    }
    return g;
}

TaskFlowGraph
butterfly(int stages, int width, double opsPerTask,
          double bytesPerMessage)
{
    if (stages < 1 || width < 1)
        fatal("butterfly needs positive stages and width");
    TaskFlowGraph g;
    const TaskId src = g.addTask("src", opsPerTask);
    std::vector<std::vector<TaskId>> layer(
        static_cast<std::size_t>(stages));
    int msg = 0;
    for (int l = 0; l < stages; ++l) {
        for (int i = 0; i < width; ++i) {
            layer[static_cast<std::size_t>(l)].push_back(g.addTask(
                "b" + std::to_string(l) + "_" + std::to_string(i),
                opsPerTask));
        }
    }
    for (int i = 0; i < width; ++i)
        g.addMessage("seed" + std::to_string(i), src,
                     layer[0][static_cast<std::size_t>(i)],
                     bytesPerMessage);
    for (int l = 0; l + 1 < stages; ++l) {
        for (int i = 0; i < width; ++i) {
            const TaskId from =
                layer[static_cast<std::size_t>(l)]
                     [static_cast<std::size_t>(i)];
            const int twiddle = (i ^ (1 << l)) % width;
            g.addMessage("s" + std::to_string(msg++), from,
                         layer[static_cast<std::size_t>(l + 1)]
                              [static_cast<std::size_t>(i)],
                         bytesPerMessage);
            if (twiddle != i) {
                g.addMessage(
                    "x" + std::to_string(msg++), from,
                    layer[static_cast<std::size_t>(l + 1)]
                         [static_cast<std::size_t>(twiddle)],
                    bytesPerMessage);
            }
        }
    }
    return g;
}

TaskFlowGraph
reduction(int leaves, double opsPerTask, double bytesPerMessage)
{
    if (leaves < 1)
        fatal("reduction needs at least one leaf");
    TaskFlowGraph g;
    const TaskId src = g.addTask("scatter", opsPerTask);
    std::vector<TaskId> level;
    for (int i = 0; i < leaves; ++i) {
        level.push_back(
            g.addTask("leaf" + std::to_string(i), opsPerTask));
        g.addMessage("seed" + std::to_string(i), src, level.back(),
                     bytesPerMessage);
    }
    int depth = 0;
    int msg = 0;
    while (level.size() > 1) {
        std::vector<TaskId> next;
        for (std::size_t i = 0; i < level.size(); i += 2) {
            if (i + 1 == level.size()) {
                next.push_back(level[i]); // odd one rides up
                continue;
            }
            const TaskId parent = g.addTask(
                "red" + std::to_string(depth) + "_" +
                    std::to_string(i / 2),
                opsPerTask);
            g.addMessage("r" + std::to_string(msg++), level[i],
                         parent, bytesPerMessage);
            g.addMessage("r" + std::to_string(msg++),
                         level[i + 1], parent, bytesPerMessage);
            next.push_back(parent);
        }
        level = std::move(next);
        ++depth;
    }
    return g;
}

} // namespace patterns
} // namespace srsim
