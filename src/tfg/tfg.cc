#include "tfg/tfg.hh"

#include <algorithm>
#include <deque>

#include "util/logging.hh"

namespace srsim {

TaskId
TaskFlowGraph::addTask(std::string name, double operations)
{
    if (operations <= 0.0)
        fatal("task '", name, "' must have positive operations");
    const TaskId id = static_cast<TaskId>(tasks_.size());
    tasks_.push_back(Task{id, std::move(name), operations});
    incoming_.emplace_back();
    outgoing_.emplace_back();
    return id;
}

MessageId
TaskFlowGraph::addMessage(std::string name, TaskId src, TaskId dst,
                          double bytes)
{
    checkTask(src);
    checkTask(dst);
    if (src == dst)
        fatal("message '", name, "' has identical source and dest");
    if (bytes <= 0.0)
        fatal("message '", name, "' must have positive bytes");
    const MessageId id = static_cast<MessageId>(messages_.size());
    messages_.push_back(Message{id, std::move(name), src, dst, bytes});
    outgoing_[static_cast<std::size_t>(src)].push_back(id);
    incoming_[static_cast<std::size_t>(dst)].push_back(id);
    return id;
}

const Task &
TaskFlowGraph::task(TaskId id) const
{
    checkTask(id);
    return tasks_[static_cast<std::size_t>(id)];
}

const Message &
TaskFlowGraph::message(MessageId id) const
{
    SRSIM_ASSERT(id >= 0 && id < numMessages(), "bad message id ", id);
    return messages_[static_cast<std::size_t>(id)];
}

const std::vector<MessageId> &
TaskFlowGraph::incoming(TaskId t) const
{
    checkTask(t);
    return incoming_[static_cast<std::size_t>(t)];
}

const std::vector<MessageId> &
TaskFlowGraph::outgoing(TaskId t) const
{
    checkTask(t);
    return outgoing_[static_cast<std::size_t>(t)];
}

std::vector<TaskId>
TaskFlowGraph::inputTasks() const
{
    std::vector<TaskId> out;
    for (const Task &t : tasks_)
        if (incoming(t.id).empty())
            out.push_back(t.id);
    return out;
}

std::vector<TaskId>
TaskFlowGraph::outputTasks() const
{
    std::vector<TaskId> out;
    for (const Task &t : tasks_)
        if (outgoing(t.id).empty())
            out.push_back(t.id);
    return out;
}

bool
TaskFlowGraph::isAcyclic() const
{
    // Kahn's algorithm: the graph is acyclic iff every task drains.
    std::vector<int> indeg(tasks_.size());
    for (std::size_t t = 0; t < tasks_.size(); ++t)
        indeg[t] = static_cast<int>(incoming_[t].size());
    std::deque<TaskId> ready;
    for (std::size_t t = 0; t < tasks_.size(); ++t)
        if (indeg[t] == 0)
            ready.push_back(static_cast<TaskId>(t));
    std::size_t seen = 0;
    while (!ready.empty()) {
        TaskId t = ready.front();
        ready.pop_front();
        ++seen;
        for (MessageId m : outgoing(t)) {
            TaskId d = message(m).dst;
            if (--indeg[static_cast<std::size_t>(d)] == 0)
                ready.push_back(d);
        }
    }
    return seen == tasks_.size();
}

std::vector<TaskId>
TaskFlowGraph::topologicalOrder() const
{
    std::vector<int> indeg(tasks_.size());
    for (std::size_t t = 0; t < tasks_.size(); ++t)
        indeg[t] = static_cast<int>(incoming_[t].size());
    std::deque<TaskId> ready;
    for (std::size_t t = 0; t < tasks_.size(); ++t)
        if (indeg[t] == 0)
            ready.push_back(static_cast<TaskId>(t));
    std::vector<TaskId> order;
    order.reserve(tasks_.size());
    while (!ready.empty()) {
        TaskId t = ready.front();
        ready.pop_front();
        order.push_back(t);
        for (MessageId m : outgoing(t)) {
            TaskId d = message(m).dst;
            if (--indeg[static_cast<std::size_t>(d)] == 0)
                ready.push_back(d);
        }
    }
    if (order.size() != tasks_.size())
        fatal("task-flow graph contains a cycle");
    return order;
}

double
TaskFlowGraph::maxOperations() const
{
    double mx = 0.0;
    for (const Task &t : tasks_)
        mx = std::max(mx, t.operations);
    return mx;
}

double
TaskFlowGraph::maxBytes() const
{
    double mx = 0.0;
    for (const Message &m : messages_)
        mx = std::max(mx, m.bytes);
    return mx;
}

void
TaskFlowGraph::writeDot(std::ostream &os) const
{
    os << "digraph tfg {\n";
    for (const Task &t : tasks_) {
        os << "  t" << t.id << " [label=\"" << t.name << "\\n"
           << t.operations << " ops\"];\n";
    }
    for (const Message &m : messages_) {
        os << "  t" << m.src << " -> t" << m.dst << " [label=\""
           << m.name << " (" << m.bytes << " B)\"];\n";
    }
    os << "}\n";
}

void
TaskFlowGraph::checkTask(TaskId t) const
{
    SRSIM_ASSERT(t >= 0 && t < numTasks(), "bad task id ", t);
}

} // namespace srsim
