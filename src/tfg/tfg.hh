/**
 * @file
 * Task-flow graph (TFG) model of Section 2 of the paper.
 *
 * A TFG is a directed acyclic graph {S_T, S_M}: vertices are tasks
 * (with operation counts C_i), edges are messages (with byte counts
 * m_i). Task-level pipelining invokes the whole TFG once per input
 * period tau_in; a task sends its messages at the end of its
 * execution, and a task starts once every incoming message of the
 * invocation has arrived.
 */

#ifndef SRSIM_TFG_TFG_HH_
#define SRSIM_TFG_TFG_HH_

#include <ostream>
#include <string>
#include <vector>

namespace srsim {

/** Index of a task in a TaskFlowGraph. */
using TaskId = int;
/** Index of a message in a TaskFlowGraph. */
using MessageId = int;

constexpr TaskId kInvalidTask = -1;
constexpr MessageId kInvalidMessage = -1;

/** One task: a sequential block of `operations` operations. */
struct Task
{
    TaskId id = kInvalidTask;
    std::string name;
    double operations = 0.0;
};

/** One inter-task message of `bytes` bytes from src to dst. */
struct Message
{
    MessageId id = kInvalidMessage;
    std::string name;
    TaskId src = kInvalidTask;
    TaskId dst = kInvalidTask;
    double bytes = 0.0;
};

/**
 * Directed acyclic task-flow graph.
 *
 * Identical payloads to different destinations are distinct messages
 * (the paper's application-level view). Construction is incremental;
 * validate() checks DAG-ness and must pass before the graph is used
 * by timing/scheduling code (the accessors that depend on structure
 * call it implicitly through topologicalOrder()).
 */
class TaskFlowGraph
{
  public:
    /**
     * Add a task.
     * @param name diagnostic label
     * @param operations operation count C_i (> 0)
     */
    TaskId addTask(std::string name, double operations);

    /**
     * Add a message between existing tasks.
     * @param bytes payload size m_i (> 0)
     */
    MessageId addMessage(std::string name, TaskId src, TaskId dst,
                         double bytes);

    int numTasks() const { return static_cast<int>(tasks_.size()); }
    int numMessages() const
    {
        return static_cast<int>(messages_.size());
    }

    const Task &task(TaskId id) const;
    const Message &message(MessageId id) const;
    const std::vector<Task> &tasks() const { return tasks_; }
    const std::vector<Message> &messages() const { return messages_; }

    /** Messages entering task t. */
    const std::vector<MessageId> &incoming(TaskId t) const;
    /** Messages leaving task t. */
    const std::vector<MessageId> &outgoing(TaskId t) const;

    /** Tasks with no incoming messages. */
    std::vector<TaskId> inputTasks() const;
    /** Tasks with no outgoing messages. */
    std::vector<TaskId> outputTasks() const;

    /** @return true iff the graph is a DAG (ignores isolated tasks). */
    bool isAcyclic() const;

    /**
     * Tasks in topological order.
     * Fatal error if the graph contains a cycle.
     */
    std::vector<TaskId> topologicalOrder() const;

    /** Largest operation count over all tasks. */
    double maxOperations() const;
    /** Largest byte count over all messages. */
    double maxBytes() const;

    /** Emit Graphviz DOT for inspection. */
    void writeDot(std::ostream &os) const;

  private:
    void checkTask(TaskId t) const;

    std::vector<Task> tasks_;
    std::vector<Message> messages_;
    std::vector<std::vector<MessageId>> incoming_;
    std::vector<std::vector<MessageId>> outgoing_;
};

} // namespace srsim

#endif // SRSIM_TFG_TFG_HH_
