#include "tfg/random_tfg.hh"

#include <string>
#include <vector>

#include "util/logging.hh"

namespace srsim {

TaskFlowGraph
buildRandomTfg(const RandomTfgParams &params, Rng &rng)
{
    if (params.layers < 2)
        fatal("random TFG needs at least two layers");
    if (params.minWidth < 1 || params.maxWidth < params.minWidth)
        fatal("bad random TFG width range");

    TaskFlowGraph g;
    std::vector<std::vector<TaskId>> layers;
    int counter = 0;
    for (int l = 0; l < params.layers; ++l) {
        const int width = rng.uniformInt(params.minWidth,
                                         params.maxWidth);
        std::vector<TaskId> layer;
        for (int w = 0; w < width; ++w) {
            layer.push_back(g.addTask(
                "t" + std::to_string(counter++),
                rng.uniformReal(params.minOps, params.maxOps)));
        }
        layers.push_back(std::move(layer));
    }

    int msg_counter = 0;
    auto connect = [&](TaskId s, TaskId d) {
        g.addMessage("m" + std::to_string(msg_counter++), s, d,
                     rng.uniformReal(params.minBytes,
                                     params.maxBytes));
    };

    for (int l = 0; l + 1 < params.layers; ++l) {
        const auto &cur = layers[static_cast<std::size_t>(l)];
        const auto &next = layers[static_cast<std::size_t>(l + 1)];
        for (TaskId s : cur)
            for (TaskId d : next)
                if (rng.chance(params.edgeProbability))
                    connect(s, d);
        if (l + 2 < params.layers) {
            const auto &skip = layers[static_cast<std::size_t>(l + 2)];
            for (TaskId s : cur)
                for (TaskId d : skip)
                    if (rng.chance(params.skipProbability))
                        connect(s, d);
        }
    }

    // Guarantee connectivity between layers: every non-first-layer
    // task has a predecessor, every non-last-layer task a successor.
    for (int l = 1; l < params.layers; ++l) {
        for (TaskId d : layers[static_cast<std::size_t>(l)]) {
            if (g.incoming(d).empty()) {
                const auto &prev =
                    layers[static_cast<std::size_t>(l - 1)];
                connect(prev[rng.index(prev.size())], d);
            }
        }
    }
    for (int l = 0; l + 1 < params.layers; ++l) {
        for (TaskId s : layers[static_cast<std::size_t>(l)]) {
            if (g.outgoing(s).empty()) {
                const auto &next =
                    layers[static_cast<std::size_t>(l + 1)];
                connect(s, next[rng.index(next.size())]);
            }
        }
    }

    SRSIM_ASSERT(g.isAcyclic(), "random TFG must be acyclic");
    return g;
}

} // namespace srsim
