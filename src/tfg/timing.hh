/**
 * @file
 * Execution/transmission timing of a TFG on a multicomputer.
 *
 * The paper assumes a link bandwidth B (bytes/us) and an application
 * processor speed (operations/us). From those it derives tau_c (the
 * longest task time), tau_m (the longest message time), the critical
 * path length Delta, and the canonical zeroth-invocation schedule
 * used to assign message release times and deadlines (Sec. 4).
 */

#ifndef SRSIM_TFG_TIMING_HH_
#define SRSIM_TFG_TIMING_HH_

#include <vector>

#include "tfg/tfg.hh"
#include "util/time.hh"

namespace srsim {

/** Hardware timing parameters. */
struct TimingModel
{
    /** Application-processor speed in operations per microsecond. */
    double apSpeed = 1.0;
    /** Link bandwidth in bytes per microsecond. */
    double bandwidth = 64.0;
    /**
     * Packet size in bytes (Sec. 4.1's time base). When positive,
     * messages occupy links for a whole number of packet times:
     * transmission time rounds up to ceil(bytes/packetBytes)
     * packets. 0 = continuous (byte-granular) transmission.
     */
    double packetBytes = 0.0;

    /** Execution time of task t. */
    Time taskTime(const TaskFlowGraph &g, TaskId t) const;
    /** Transmission time of message m over one clear path. */
    Time messageTime(const TaskFlowGraph &g, MessageId m) const;

    /** Transmission time of one packet (0 when packets disabled). */
    Time
    packetTime() const
    {
        return packetBytes > 0.0 ? packetBytes / bandwidth : 0.0;
    }

    /** tau_c: execution time of the longest task. */
    Time tauC(const TaskFlowGraph &g) const;
    /** tau_m: transmission time of the longest message. */
    Time tauM(const TaskFlowGraph &g) const;
};

/**
 * Canonical timing of one TFG invocation.
 *
 * Two flavours are computed:
 *  - "eager": each message takes exactly its transmission time; the
 *    resulting output completion time is the critical path length
 *    Delta (the minimum possible invocation latency).
 *  - "window": each message is granted a whole tau_c window (the
 *    paper's SR time-bound construction — latency may grow, maximum
 *    throughput is unchanged). Task starts/finishes from this
 *    flavour generate the SR release times and deadlines.
 */
struct InvocationTiming
{
    /** Task start times, eager message timing. */
    std::vector<Time> eagerStart;
    /** Task finish times, eager message timing. */
    std::vector<Time> eagerFinish;
    /** Critical path length Delta (max eager finish of output task). */
    Time criticalPath = 0.0;

    /** Task start times, tau_c-window message timing. */
    std::vector<Time> windowStart;
    /** Task finish times, tau_c-window message timing. */
    std::vector<Time> windowFinish;
    /** Invocation latency under SR window timing. */
    Time windowLatency = 0.0;

    /** tau_c used for the window flavour. */
    Time tauC = 0.0;
};

/**
 * Compute the canonical invocation timing of a TFG.
 *
 * Input tasks start at time zero; each other task starts when every
 * incoming message has arrived.
 */
InvocationTiming
computeInvocationTiming(const TaskFlowGraph &g, const TimingModel &tm);

} // namespace srsim

#endif // SRSIM_TFG_TIMING_HH_
