/**
 * @file
 * Serialization of task-flow graphs.
 *
 * A stable line-oriented text form so applications can be described
 * in files and fed to the srsimc command-line compiler:
 *
 *   srsim-tfg v1
 *   # comments and blank lines are allowed
 *   task <name> <operations>
 *   message <name> <src-task> <dst-task> <bytes>
 *   end
 *
 * Task references in message lines are by name; names must be
 * unique per kind.
 */

#ifndef SRSIM_TFG_TFG_IO_HH_
#define SRSIM_TFG_TFG_IO_HH_

#include <istream>
#include <ostream>

#include "tfg/tfg.hh"

namespace srsim {

/** Write g in the srsim-tfg v1 text format. */
void writeTfg(std::ostream &os, const TaskFlowGraph &g);

/**
 * Parse a TFG written by writeTfg() (or by hand).
 * Fatal on malformed input, duplicate names, unknown task
 * references, or a cyclic graph.
 */
TaskFlowGraph readTfg(std::istream &is);

} // namespace srsim

#endif // SRSIM_TFG_TFG_IO_HH_
