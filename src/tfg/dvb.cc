#include "tfg/dvb.hh"

#include <string>

#include "util/logging.hh"

namespace srsim {

TaskFlowGraph
buildDvbTfg(const DvbParams &params)
{
    if (params.numModels < 1)
        fatal("DVB needs at least one object model");
    if (params.chainOps.size() != 8)
        fatal("DVB recognition chain must have exactly 8 tasks, got ",
              params.chainOps.size());

    TaskFlowGraph g;
    const TaskId input = g.addTask("input", params.inputOps);

    std::vector<TaskId> models;
    for (int i = 0; i < params.numModels; ++i) {
        models.push_back(g.addTask("model" + std::to_string(i),
                                   params.modelOps));
        g.addMessage("a" + std::to_string(i), input, models.back(),
                     params.bytesA);
    }

    static const char *chain_names[8] = {
        "match",  "hough",  "probe", "extend",
        "verify", "filter", "score", "result",
    };
    std::vector<TaskId> chain;
    for (std::size_t i = 0; i < 8; ++i)
        chain.push_back(g.addTask(chain_names[i], params.chainOps[i]));

    for (int i = 0; i < params.numModels; ++i) {
        g.addMessage("b" + std::to_string(i), models[
                         static_cast<std::size_t>(i)],
                     chain[0], params.bytesB);
    }

    const double chain_bytes[7] = {
        params.bytesC, params.bytesD, params.bytesE, params.bytesF,
        params.bytesG, params.bytesH, params.bytesI,
    };
    static const char *chain_msg_names[7] = {"c", "d", "e", "f",
                                             "g", "h", "i"};
    for (std::size_t i = 0; i < 7; ++i) {
        g.addMessage(chain_msg_names[i], chain[i], chain[i + 1],
                     chain_bytes[i]);
    }

    SRSIM_ASSERT(g.isAcyclic(), "DVB TFG must be acyclic");
    return g;
}

} // namespace srsim
