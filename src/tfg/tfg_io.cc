#include "tfg/tfg_io.hh"

#include <iomanip>
#include <map>
#include <sstream>
#include <string>

#include "util/logging.hh"

namespace srsim {

namespace {

constexpr const char *kMagic = "srsim-tfg v1";

} // namespace

void
writeTfg(std::ostream &os, const TaskFlowGraph &g)
{
    os << kMagic << "\n";
    os << std::setprecision(17);
    for (const Task &t : g.tasks())
        os << "task " << t.name << " " << t.operations << "\n";
    for (const Message &m : g.messages()) {
        os << "message " << m.name << " " << g.task(m.src).name
           << " " << g.task(m.dst).name << " " << m.bytes << "\n";
    }
    os << "end\n";
}

TaskFlowGraph
readTfg(std::istream &is)
{
    std::string line;
    if (!std::getline(is, line) || line != kMagic)
        fatal("not an srsim-tfg v1 file");

    TaskFlowGraph g;
    std::map<std::string, TaskId> tasks;
    std::map<std::string, bool> message_names;
    bool ended = false;
    int lineno = 1;

    while (std::getline(is, line)) {
        ++lineno;
        std::istringstream ls(line);
        std::string kw;
        if (!(ls >> kw) || kw[0] == '#')
            continue;
        if (kw == "end") {
            ended = true;
            break;
        }
        if (kw == "task") {
            std::string name;
            double ops;
            if (!(ls >> name >> ops))
                fatal("line ", lineno, ": malformed task line");
            if (tasks.count(name))
                fatal("line ", lineno, ": duplicate task '", name,
                      "'");
            tasks[name] = g.addTask(name, ops);
        } else if (kw == "message") {
            std::string name, src, dst;
            double bytes;
            if (!(ls >> name >> src >> dst >> bytes))
                fatal("line ", lineno, ": malformed message line");
            if (message_names.count(name))
                fatal("line ", lineno, ": duplicate message '",
                      name, "'");
            auto si = tasks.find(src);
            auto di = tasks.find(dst);
            if (si == tasks.end())
                fatal("line ", lineno, ": unknown source task '",
                      src, "'");
            if (di == tasks.end())
                fatal("line ", lineno, ": unknown dest task '",
                      dst, "'");
            message_names[name] = true;
            g.addMessage(name, si->second, di->second, bytes);
        } else {
            fatal("line ", lineno, ": unknown keyword '", kw, "'");
        }
    }
    if (!ended)
        fatal("missing 'end' marker in TFG file");
    if (g.numTasks() == 0)
        fatal("TFG file declares no tasks");
    if (!g.isAcyclic())
        fatal("TFG file describes a cyclic graph");
    return g;
}

} // namespace srsim
