/**
 * @file
 * DARPA Vision Benchmark (DVB) task-flow graph, Fig. 1 of the paper.
 *
 * The paper's Fig. 1 shows, for n object models:
 *   - an input/preprocessing task of 1925 operations,
 *   - message `a` (192 bytes) fanned out to n model-matching tasks of
 *     400 operations each,
 *   - message `b` (1536 bytes) from every model task into a
 *     recognition chain,
 *   - a linear chain of tasks connected by messages
 *     c (3200 B), d (1536 B), e (1728 B), f (1536 B), g (1728 B),
 *     h (768 B), i (384 B).
 *
 * Every legible constant of the figure ("a = 192, b,d,f = 1536,
 * c = 3200, g(e) = 1728, h = 768, i = 384"; task sizes 1925 and 400)
 * is used verbatim. The operation counts of the chain tasks are not
 * legible in the available scan; the defaults below make the chain
 * strictly shorter than the 1925-operation input task so that tau_c
 * is set by the input task, matching the paper's normalization
 * (tau_m / tau_c = 1 at B = 64 bytes/us with the longest message
 * c = 3200 B; see DvbParams::matchedApSpeed()).
 */

#ifndef SRSIM_TFG_DVB_HH_
#define SRSIM_TFG_DVB_HH_

#include <vector>

#include "tfg/tfg.hh"

namespace srsim {

/** Parameters of the DVB TFG reconstruction. */
struct DvbParams
{
    /**
     * Number of object models (fan-out width of Fig. 1). The
     * paper's n is not legible; 12 loads the evaluation fabrics the
     * way the paper's utilization curves do (U crossing 1.0 near
     * load 0.36 on a binary 6-cube at B = 64 bytes/us).
     */
    int numModels = 12;
    /** Operation count of the input/preprocessing task. */
    double inputOps = 1925.0;
    /** Operation count of each model-matching task. */
    double modelOps = 400.0;
    /** Operation counts of the recognition-chain tasks (8 tasks). */
    std::vector<double> chainOps{1540.0, 1340.0, 1150.0, 960.0,
                                 770.0,  580.0,  390.0,  200.0};
    /** Byte sizes of messages a..i from Fig. 1. */
    double bytesA = 192.0;
    double bytesB = 1536.0;
    double bytesC = 3200.0;
    double bytesD = 1536.0;
    double bytesE = 1728.0;
    double bytesF = 1536.0;
    double bytesG = 1728.0;
    double bytesH = 768.0;
    double bytesI = 384.0;

    /**
     * AP speed (ops/us) that realizes the paper's calibration
     * tau_m / tau_c == 1 at B = 64 bytes/us: the longest message
     * (3200 B) takes 50 us there, so the longest task (1925 ops)
     * must also take 50 us -> 38.5 ops/us. At B = 128 bytes/us the
     * same speed yields tau_m / tau_c == 0.5, as in the paper.
     */
    double
    matchedApSpeed() const
    {
        return inputOps / (bytesC / 64.0);
    }
};

/**
 * Build the DVB task-flow graph.
 *
 * Structure: input --a--> Model_1..n --b--> chain of 8 tasks joined
 * by messages c..i; the last chain task is the output task.
 */
TaskFlowGraph buildDvbTfg(const DvbParams &params = {});

} // namespace srsim

#endif // SRSIM_TFG_DVB_HH_
