/**
 * @file
 * Canonical TFG shapes for tests, examples, and library users:
 * linear chains, fork-join fans, layered butterflies, and trees.
 * All generated graphs are acyclic by construction with exactly one
 * input task, which makes pipelining behaviour easy to reason
 * about.
 */

#ifndef SRSIM_TFG_PATTERNS_HH_
#define SRSIM_TFG_PATTERNS_HH_

#include "tfg/tfg.hh"

namespace srsim {
namespace patterns {

/**
 * A linear pipeline of `stages` tasks joined by `stages - 1`
 * messages.
 */
TaskFlowGraph
chain(int stages, double opsPerTask, double bytesPerMessage);

/**
 * Fork-join: source -> `width` parallel workers -> sink.
 */
TaskFlowGraph
forkJoin(int width, double sourceOps, double workerOps,
         double sinkOps, double bytesPerMessage);

/**
 * A butterfly of `stages` layers of `width` tasks: task (l, i)
 * sends to (l+1, i) and (l+1, i XOR 2^l mod width); width should
 * be a power of two for a true butterfly, but any width >= 1
 * works (indices wrap).
 */
TaskFlowGraph
butterfly(int stages, int width, double opsPerTask,
          double bytesPerMessage);

/**
 * A complete binary reduction tree with `leaves` inputs... folded
 * so the single source fans out to the leaves first (making the
 * graph single-input): source -> leaves -> pairwise reduction to
 * the root.
 */
TaskFlowGraph
reduction(int leaves, double opsPerTask, double bytesPerMessage);

} // namespace patterns
} // namespace srsim

#endif // SRSIM_TFG_PATTERNS_HH_
