#include "tfg/timing.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace srsim {

Time
TimingModel::taskTime(const TaskFlowGraph &g, TaskId t) const
{
    SRSIM_ASSERT(apSpeed > 0.0, "apSpeed must be positive");
    return g.task(t).operations / apSpeed;
}

Time
TimingModel::messageTime(const TaskFlowGraph &g, MessageId m) const
{
    SRSIM_ASSERT(bandwidth > 0.0, "bandwidth must be positive");
    double bytes = g.message(m).bytes;
    if (packetBytes > 0.0)
        bytes = std::ceil(bytes / packetBytes - 1e-12) *
                packetBytes;
    return bytes / bandwidth;
}

Time
TimingModel::tauC(const TaskFlowGraph &g) const
{
    return g.maxOperations() / apSpeed;
}

Time
TimingModel::tauM(const TaskFlowGraph &g) const
{
    Time mx = 0.0;
    for (const Message &m : g.messages())
        mx = std::max(mx, messageTime(g, m.id));
    return mx;
}

InvocationTiming
computeInvocationTiming(const TaskFlowGraph &g, const TimingModel &tm)
{
    InvocationTiming out;
    const std::size_t n = static_cast<std::size_t>(g.numTasks());
    out.eagerStart.assign(n, 0.0);
    out.eagerFinish.assign(n, 0.0);
    out.windowStart.assign(n, 0.0);
    out.windowFinish.assign(n, 0.0);
    out.tauC = tm.tauC(g);

    for (TaskId t : g.topologicalOrder()) {
        const std::size_t ti = static_cast<std::size_t>(t);
        Time eager = 0.0;
        Time window = 0.0;
        for (MessageId m : g.incoming(t)) {
            const TaskId s = g.message(m).src;
            const std::size_t si = static_cast<std::size_t>(s);
            eager = std::max(eager, out.eagerFinish[si] +
                                        tm.messageTime(g, m));
            window = std::max(window, out.windowFinish[si] + out.tauC);
        }
        const Time dur = tm.taskTime(g, t);
        out.eagerStart[ti] = eager;
        out.eagerFinish[ti] = eager + dur;
        out.windowStart[ti] = window;
        out.windowFinish[ti] = window + dur;
    }

    for (TaskId t : g.outputTasks()) {
        const std::size_t ti = static_cast<std::size_t>(t);
        out.criticalPath = std::max(out.criticalPath,
                                    out.eagerFinish[ti]);
        out.windowLatency = std::max(out.windowLatency,
                                     out.windowFinish[ti]);
    }
    return out;
}

} // namespace srsim
