/**
 * @file
 * Random layered task-flow graph generator.
 *
 * Used by property tests and extension experiments to exercise the
 * scheduler on TFG shapes beyond the DVB pipeline: random layer
 * widths, random fan-in/out, random task and message weights —
 * always acyclic by construction (edges only go to later layers).
 */

#ifndef SRSIM_TFG_RANDOM_TFG_HH_
#define SRSIM_TFG_RANDOM_TFG_HH_

#include "tfg/tfg.hh"
#include "util/rng.hh"

namespace srsim {

/** Parameters of the random layered TFG generator. */
struct RandomTfgParams
{
    int layers = 4;
    int minWidth = 1;
    int maxWidth = 4;
    /** Probability of an edge between tasks in adjacent layers. */
    double edgeProbability = 0.6;
    /** Probability of a skip edge across one layer. */
    double skipProbability = 0.1;
    double minOps = 100.0;
    double maxOps = 2000.0;
    double minBytes = 64.0;
    double maxBytes = 4096.0;
};

/**
 * Generate a random layered TFG.
 *
 * Every non-first-layer task is guaranteed at least one predecessor
 * and every non-last-layer task at least one successor, so the
 * graph's inputs are exactly layer 0.
 */
TaskFlowGraph buildRandomTfg(const RandomTfgParams &params, Rng &rng);

} // namespace srsim

#endif // SRSIM_TFG_RANDOM_TFG_HH_
