#include "engine/context.hh"

#include "metrics/metrics.hh"
#include "trace/trace.hh"
#include "util/env.hh"
#include "util/logging.hh"
#include "util/thread_pool.hh"

namespace srsim {
namespace engine {

namespace {

/**
 * SRSIM_SOLVER resolved exactly once per process. This is the hoist
 * of the old per-solve lp.cc lookup: after first touch, changing the
 * environment cannot flip the solver kind.
 */
lp::SolverKind
envSolverKind()
{
    static const lp::SolverKind kind = [] {
        const std::optional<std::string> v =
            envString("SRSIM_SOLVER");
        if (!v || *v == "sparse" || *v == "revised")
            return lp::SolverKind::Sparse;
        if (*v == "dense" || *v == "tableau")
            return lp::SolverKind::Dense;
        warn("ignoring unknown SRSIM_SOLVER='", *v,
             "' (expected dense or sparse)");
        return lp::SolverKind::Sparse;
    }();
    return kind;
}

} // namespace

EngineContext::~EngineContext() = default;

EngineContext &
EngineContext::processDefault()
{
    static EngineContext &ctx = []() -> EngineContext & {
        static EngineContext c;
        c.name_ = "process";
        c.solver_.kind = envSolverKind();
        return c;
    }();
    return ctx;
}

void
EngineContext::configureProcess(
    std::optional<std::size_t> threads,
    std::optional<lp::SolverKind> solverKind)
{
    EngineContext &ctx = processDefault();
    if (solverKind)
        ctx.solver_.kind = *solverKind;
    if (threads)
        ThreadPool::setGlobalSize(*threads);
}

metrics::Registry &
EngineContext::metricsRegistry() const
{
    if (ownedRegistry_)
        return *ownedRegistry_;
    if (parent_ != nullptr)
        return parent_->metricsRegistry();
    return metrics::Registry::global();
}

trace::Tracer &
EngineContext::tracer() const
{
    if (ownedTracer_)
        return *ownedTracer_;
    if (parent_ != nullptr)
        return parent_->tracer();
    return trace::Tracer::instance();
}

ThreadPool &
EngineContext::pool() const
{
    if (ownedPool_)
        return *ownedPool_;
    if (parent_ != nullptr)
        return parent_->pool();
    return ThreadPool::global();
}

std::uint64_t
EngineContext::deriveSeed(std::uint64_t stream) const
{
    // splitmix64 finalizer over (base, stream): deterministic,
    // well-mixed, and stable across platforms.
    std::uint64_t z =
        baseSeed_ + 0x9E3779B97F4A7C15ULL * (stream + 1);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
}

lp::SolveOptions
EngineContext::solveOptions() const
{
    lp::SolveOptions opts;
    opts.kind = solver_.kind;
    opts.registry = &metricsRegistry();
    return opts;
}

std::shared_ptr<EngineContext>
EngineContext::createChild(const ChildOptions &opts) const
{
    auto child = std::make_shared<EngineContext>();
    child->parent_ = this;
    child->name_ = opts.name;
    child->ownedRegistry_ =
        std::make_unique<metrics::Registry>(&metricsRegistry());
    if (opts.threads > 0)
        child->ownedPool_ =
            std::make_unique<ThreadPool>(opts.threads);
    child->solver_ = solver_;
    if (opts.solverKind)
        child->solver_.kind = *opts.solverKind;
    if (opts.warmStart)
        child->solver_.warmStart = *opts.warmStart;
    child->baseSeed_ =
        opts.baseSeed != 0 ? opts.baseSeed : baseSeed_;
    return child;
}

} // namespace engine
} // namespace srsim
