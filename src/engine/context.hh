/**
 * @file
 * The engine context: one explicit bundle of the cross-cutting
 * services every compile/simulate/serve path needs — metrics
 * registry, trace sink, thread pool, solver configuration, and seed
 * policy.
 *
 * Before this existed, each of those was a process-global reached
 * ambiently from ~15 files (`Registry::global()`,
 * `Tracer::instance()`, `setDefaultSolver()`, SRSIM_THREADS read
 * inside the pool), so concurrent daemon sessions could not be
 * observed, configured, or resource-budgeted independently. The
 * context inverts that: callers receive their services through an
 * `EngineContext` threaded down the call stack, and the daemon gives
 * each session a *child* context whose registry writes through to
 * the parent (aggregates stay exact) while exposing only that
 * session's activity.
 *
 * Ownership rules (DESIGN.md §14):
 *
 *  - the *process-default* context (processDefault()) owns nothing:
 *    it resolves to the process-wide registry / tracer / pool, so
 *    code that predates the refactor — and tests that pin those
 *    globals — behaves unchanged;
 *  - a *child* context always owns its registry (parented for
 *    write-through), shares its parent's tracer, and shares the
 *    parent's pool unless given a private thread budget;
 *  - a parent context must outlive its children.
 *
 * Environment policy: SRSIM_SOLVER / SRSIM_THREADS are parsed ONCE —
 * here (first processDefault() touch) or at the CLI entry layer via
 * configureProcess() — never per-solve. A mid-run environment change
 * is invisible by design (pinned by tests/test_engine_context.cc).
 */

#ifndef SRSIM_ENGINE_CONTEXT_HH_
#define SRSIM_ENGINE_CONTEXT_HH_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "solver/lp.hh"

namespace srsim {

class ThreadPool;

namespace metrics {
class Registry;
} // namespace metrics

namespace trace {
class Tracer;
} // namespace trace

namespace engine {

/** Solver policy carried by a context. */
struct SolverConfig
{
    /** Solver stack for every lp::solve issued under this context. */
    lp::SolverKind kind = lp::SolverKind::Sparse;
    /** Whether re-solves may warm-start from cached bases. */
    bool warmStart = true;
};

/** Per-child overrides for EngineContext::createChild(). */
struct ChildOptions
{
    /** Diagnostic name ("session.alpha"); also the metrics scope. */
    std::string name;
    /** Override the solver kind (inherits when unset). */
    std::optional<lp::SolverKind> solverKind;
    /** Override warm-start policy (inherits when unset). */
    std::optional<bool> warmStart;
    /**
     * Private thread budget: > 0 gives the child its own pool of
     * exactly that size; 0 shares the parent's pool.
     */
    std::size_t threads = 0;
    /** Base seed for derived RNG streams; 0 inherits the parent's. */
    std::uint64_t baseSeed = 0;
};

/**
 * The service bundle. Immutable after construction apart from
 * configureProcess(), which may only run at CLI entry before any
 * engine work starts.
 */
class EngineContext
{
  public:
    /** A context resolving to the process-wide services. */
    EngineContext() = default;

    ~EngineContext();
    EngineContext(const EngineContext &) = delete;
    EngineContext &operator=(const EngineContext &) = delete;

    /**
     * The process-default context. Its solver kind is resolved from
     * SRSIM_SOLVER exactly once, on first use; registry / tracer /
     * pool resolve dynamically to the process singletons so tests
     * that swap those (ThreadPool::setGlobalSize) stay coherent.
     */
    static EngineContext &processDefault();

    /**
     * CLI entry configuration: pin the default context's solver kind
     * and/or resize the shared pool (--threads beats SRSIM_THREADS
     * beats hardware concurrency). Call before any engine work.
     */
    static void
    configureProcess(std::optional<std::size_t> threads,
                     std::optional<lp::SolverKind> solverKind);

    metrics::Registry &metricsRegistry() const;
    trace::Tracer &tracer() const;
    ThreadPool &pool() const;

    const SolverConfig &solver() const { return solver_; }
    std::uint64_t baseSeed() const { return baseSeed_; }
    const std::string &name() const { return name_; }

    /**
     * A deterministic per-stream seed: the same (baseSeed, stream)
     * always yields the same value, and distinct streams decorrelate.
     */
    std::uint64_t deriveSeed(std::uint64_t stream) const;

    /**
     * lp::SolveOptions with this context's solver kind and metrics
     * registry pre-filled — the standard way LP call sites start.
     */
    lp::SolveOptions solveOptions() const;

    /**
     * Create a child context per the override rules above. The
     * returned context keeps a raw pointer to this parent; the
     * caller guarantees the parent outlives it.
     */
    std::shared_ptr<EngineContext>
    createChild(const ChildOptions &opts) const;

  private:
    /** Parent for service resolution; null = process singletons. */
    const EngineContext *parent_ = nullptr;

    /** Owned services (children); null slots resolve upward. */
    std::unique_ptr<metrics::Registry> ownedRegistry_;
    std::unique_ptr<trace::Tracer> ownedTracer_;
    std::unique_ptr<ThreadPool> ownedPool_;

    SolverConfig solver_;
    std::uint64_t baseSeed_ = 12345;
    std::string name_;
};

/**
 * The effective context for an optional config pointer: `ctx` when
 * given, the process default otherwise. Every subsystem whose config
 * struct carries `const engine::EngineContext *ctx` resolves it
 * through this helper, so "no context" keeps pre-refactor behavior.
 */
inline const EngineContext &
resolve(const EngineContext *ctx)
{
    return ctx != nullptr ? *ctx : EngineContext::processDefault();
}

} // namespace engine
} // namespace srsim

#endif // SRSIM_ENGINE_CONTEXT_HH_
