/**
 * @file
 * Text request scripts for the online scheduling service.
 *
 * `srsimc serve` drives the service from a plain-text script (a
 * file or stdin), one request per line:
 *
 *     # comment / blank lines ignored
 *     admit  <name> <srcTask> <dstTask> <bytes>
 *     remove <name>
 *     period <tau_in_us>
 *     fault  <fault-spec>          # src/fault grammar, rest of line
 *     batch  <N>                   # coalesce the next N admit
 *     admit  ...                   #   lines into one re-solve
 *
 * Parsing is total: malformed lines produce a structured error with
 * the 1-based line number, never an abort.
 */

#ifndef SRSIM_ONLINE_SCRIPT_HH_
#define SRSIM_ONLINE_SCRIPT_HH_

#include <istream>
#include <string>
#include <vector>

#include "online/requests.hh"

namespace srsim {
namespace online {

/** Outcome of parsing one request script. */
struct ScriptParseResult
{
    bool ok = false;
    std::vector<Request> requests;
    /** Parse failure, with the offending 1-based line. */
    std::string error;
    int errorLine = 0;
};

/** Parse a whole script; a `batch N` group becomes one Request. */
ScriptParseResult parseRequestScript(std::istream &is);

/** Parse one script line (no batch support); used by the REPL. */
ScriptParseResult parseRequestLine(const std::string &line);

} // namespace online
} // namespace srsim

#endif // SRSIM_ONLINE_SCRIPT_HH_
