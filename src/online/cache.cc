#include "online/cache.hh"

#include <iomanip>
#include <sstream>

namespace srsim {
namespace online {

std::string
canonicalWorkloadKey(const TaskFlowGraph &g, const Topology &topo,
                     const TaskAllocation &alloc,
                     const TimingModel &tm,
                     const SrCompilerConfig &cfg)
{
    std::ostringstream os;
    os << std::setprecision(17);

    // Fabric and its fault mask. Healthy resources are implicit so
    // the common (healthy) key stays short.
    os << "topo=" << topo.name() << ";";
    for (LinkId l = 0; l < topo.numLinks(); ++l)
        if (topo.linkCapacity(l) < 1.0)
            os << "l" << l << "=" << topo.linkCapacity(l) << ";";
    for (NodeId n = 0; n < topo.numNodes(); ++n)
        if (!topo.nodeUp(n))
            os << "n" << n << ";";

    // Timing model.
    os << "ap=" << tm.apSpeed << ";bw=" << tm.bandwidth
       << ";pkt=" << tm.packetBytes << ";";

    // Compiler knobs the schedule depends on.
    os << "period=" << cfg.inputPeriod
       << ";assign=" << (cfg.useAssignPaths ? 1 : 0)
       << ";seed=" << cfg.assign.seed
       << ";restarts=" << cfg.assign.maxRestarts
       << ";maxpaths=" << cfg.assign.maxPathsPerMessage
       << ";inner=" << cfg.assign.maxInnerIterations
       << ";alloc="
       << (cfg.allocMethod == AllocationMethod::Lp ? "lp"
                                                   : "greedy")
       << ";sched="
       << (cfg.scheduling.method == SchedulingMethod::LpFeasibleSets
               ? "lp"
               : "list")
       << ";sets=" << cfg.scheduling.maxFeasibleSets
       << ";ptime=" << cfg.scheduling.packetTime
       << ";mip=" << (cfg.scheduling.exactPacketMip ? 1 : 0)
       << ";guard=" << cfg.scheduling.guardTime
       << ";feedback=" << cfg.feedbackRounds << ";";

    // Tasks with placement, then messages in id order (segment row
    // i of the compiled schedule indexes the i-th network message
    // in this order, so order is part of the identity).
    for (const Task &t : g.tasks())
        os << "t:" << t.name << ":" << t.operations << ":"
           << alloc.nodeOf(t.id) << ";";
    for (const Message &m : g.messages())
        os << "m:" << m.name << ":" << g.task(m.src).name << ":"
           << g.task(m.dst).name << ":" << m.bytes << ";";
    return os.str();
}

std::uint64_t
fnv1a64(const std::string &s)
{
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (unsigned char c : s) {
        h ^= c;
        h *= 0x100000001b3ull;
    }
    return h;
}

ScheduleCache::ScheduleCache(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity)
{
}

const ScheduleCache::Entry *
ScheduleCache::lookup(const std::string &key)
{
    auto it = map_.find(key);
    if (it == map_.end()) {
        ++misses_;
        return nullptr;
    }
    ++hits_;
    lru_.splice(lru_.begin(), lru_, it->second);
    return &it->second->second;
}

void
ScheduleCache::insert(const std::string &key, Entry entry)
{
    auto it = map_.find(key);
    if (it != map_.end()) {
        it->second->second = std::move(entry);
        lru_.splice(lru_.begin(), lru_, it->second);
        return;
    }
    lru_.emplace_front(key, std::move(entry));
    map_[key] = lru_.begin();
    while (map_.size() > capacity_) {
        map_.erase(lru_.back().first);
        lru_.pop_back();
        ++evictions_;
    }
}

} // namespace online
} // namespace srsim
