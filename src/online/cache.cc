#include "online/cache.hh"

#include <iomanip>
#include <sstream>

#include "engine/context.hh"
#include "metrics/metrics.hh"

namespace srsim {
namespace online {

std::string
canonicalWorkloadKey(const TaskFlowGraph &g, const Topology &topo,
                     const TaskAllocation &alloc,
                     const TimingModel &tm,
                     const SrCompilerConfig &cfg)
{
    std::ostringstream os;
    os << std::setprecision(17);

    // Fabric identity: name alone is not enough — two fabrics can
    // share a name yet wire their nodes differently, and routing
    // (hence the schedule) depends on the wiring. Fold in the node
    // and link counts plus a digest of the endpoint adjacency.
    os << "topo=" << topo.name() << ";";
    {
        std::uint64_t wire = 0xcbf29ce484222325ull;
        const auto mix = [&wire](std::uint64_t v) {
            for (int i = 0; i < 8; ++i) {
                wire ^= (v >> (8 * i)) & 0xffu;
                wire *= 0x100000001b3ull;
            }
        };
        for (LinkId l = 0; l < topo.numLinks(); ++l) {
            const Link &lk = topo.link(l);
            mix(static_cast<std::uint64_t>(lk.id));
            mix(static_cast<std::uint64_t>(lk.a));
            mix(static_cast<std::uint64_t>(lk.b));
        }
        os << "wire=" << topo.numNodes() << ":" << topo.numLinks()
           << ":" << std::hex << wire << std::dec << ";";
    }
    // Fault mask. Healthy resources are implicit so the common
    // (healthy) key stays short.
    for (LinkId l = 0; l < topo.numLinks(); ++l)
        if (topo.linkCapacity(l) < 1.0)
            os << "l" << l << "=" << topo.linkCapacity(l) << ";";
    for (NodeId n = 0; n < topo.numNodes(); ++n)
        if (!topo.nodeUp(n))
            os << "n" << n << ";";

    // Timing model.
    os << "ap=" << tm.apSpeed << ";bw=" << tm.bandwidth
       << ";pkt=" << tm.packetBytes << ";";

    // Compiler knobs the schedule depends on.
    os << "period=" << cfg.inputPeriod
       << ";assign=" << (cfg.useAssignPaths ? 1 : 0)
       << ";seed=" << cfg.assign.seed
       << ";restarts=" << cfg.assign.maxRestarts
       << ";maxpaths=" << cfg.assign.maxPathsPerMessage
       << ";inner=" << cfg.assign.maxInnerIterations
       << ";alloc="
       << (cfg.allocMethod == AllocationMethod::Lp ? "lp"
                                                   : "greedy")
       << ";sched="
       << (cfg.scheduling.method == SchedulingMethod::LpFeasibleSets
               ? "lp"
               : "list")
       << ";sets=" << cfg.scheduling.maxFeasibleSets
       << ";ptime=" << cfg.scheduling.packetTime
       << ";mip=" << (cfg.scheduling.exactPacketMip ? 1 : 0)
       << ";guard=" << cfg.scheduling.guardTime
       << ";feedback=" << cfg.feedbackRounds << ";";

    // Tasks with placement, then messages in id order (segment row
    // i of the compiled schedule indexes the i-th network message
    // in this order, so order is part of the identity).
    for (const Task &t : g.tasks())
        os << "t:" << t.name << ":" << t.operations << ":"
           << alloc.nodeOf(t.id) << ";";
    for (const Message &m : g.messages())
        os << "m:" << m.name << ":" << g.task(m.src).name << ":"
           << g.task(m.dst).name << ":" << m.bytes << ";";
    return os.str();
}

std::uint64_t
fnv1a64(const std::string &s)
{
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (unsigned char c : s) {
        h ^= c;
        h *= 0x100000001b3ull;
    }
    return h;
}

ScheduleCache::ScheduleCache(std::size_t capacity,
                             metrics::Registry *registry)
    : capacity_(capacity == 0 ? 1 : capacity),
      registry_(registry != nullptr
                    ? registry
                    : &engine::resolve(nullptr).metricsRegistry())
{
}

std::uint64_t
ScheduleCache::entryBytes(const std::string &key, const Entry &entry)
{
    // Approximate resident size: the key string plus the schedule's
    // variable-length payload (path hops and segment windows). The
    // point is monotone accounting that eviction can subtract
    // exactly, not a malloc-accurate byte count.
    std::uint64_t n = key.size() + sizeof(Entry);
    for (const Path &p : entry.omega.paths.paths)
        n += p.nodes.size() * sizeof(NodeId) +
             p.links.size() * sizeof(LinkId);
    for (const auto &segs : entry.omega.segments)
        n += segs.size() * sizeof(TimeWindow);
    n += entry.omega.faultSpec.size();
    return n;
}

void
ScheduleCache::publishBytesGauge()
{
    if (SRSIM_METRICS_ENABLED())
        registry_->gauge("cache.bytes")
            .set(static_cast<double>(bytes_.load()));
}

std::size_t
ScheduleCache::size() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return map_.size();
}

std::shared_ptr<const ScheduleCache::Entry>
ScheduleCache::lookup(const std::string &key)
{
    std::lock_guard<std::mutex> lock(mu_);
    auto it = map_.find(key);
    if (it == map_.end()) {
        misses_.fetch_add(1);
        return nullptr;
    }
    hits_.fetch_add(1);
    lru_.splice(lru_.begin(), lru_, it->second);
    return it->second->second;
}

void
ScheduleCache::insert(const std::string &key, Entry entry)
{
    const std::uint64_t add = entryBytes(key, entry);
    auto node = std::make_shared<const Entry>(std::move(entry));
    std::lock_guard<std::mutex> lock(mu_);
    auto it = map_.find(key);
    if (it != map_.end()) {
        // Replace in place: subtract the old payload's bytes so the
        // accounting stays exact across refreshes.
        bytes_.fetch_sub(entryBytes(key, *it->second->second));
        bytes_.fetch_add(add);
        it->second->second = std::move(node);
        lru_.splice(lru_.begin(), lru_, it->second);
        publishBytesGauge();
        return;
    }
    lru_.emplace_front(key, std::move(node));
    map_[key] = lru_.begin();
    bytes_.fetch_add(add);
    while (map_.size() > capacity_) {
        const Node &victim = lru_.back();
        bytes_.fetch_sub(entryBytes(victim.first, *victim.second));
        map_.erase(victim.first);
        lru_.pop_back();
        evictions_.fetch_add(1);
        if (SRSIM_METRICS_ENABLED())
            registry_->counter("cache.evictions").add(1);
    }
    publishBytesGauge();
}

std::vector<ScheduleCache::DumpedEntry>
ScheduleCache::dumpForSnapshot() const
{
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<DumpedEntry> out;
    out.reserve(lru_.size());
    for (const Node &node : lru_)
        out.push_back({node.first, *node.second});
    return out;
}

} // namespace online
} // namespace srsim
