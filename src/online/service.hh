/**
 * @file
 * The online scheduling service: a long-lived owner of one compiled
 * schedule that absorbs workload churn incrementally.
 *
 * Where the batch compiler answers "is this workload schedulable?",
 * the service answers it *again and again* as the workload drifts:
 * admit a message, remove one, change the period, lose a link. The
 * expensive path — a full Fig. 3 recompilation — is the fallback,
 * not the norm:
 *
 *  - admission recomputes time bounds and the interval decomposition
 *    (cheap, route-independent), keeps every surviving message's
 *    route, greedily routes only the new messages, and re-solves
 *    only the maximal related subsets they touch; clean subsets keep
 *    their segments verbatim (the same invariant fault repair uses);
 *  - a content-addressed cache short-circuits revisited workload
 *    states (admit X, remove X, admit X again) to a lookup;
 *  - every candidate schedule is re-verified before the atomic
 *    publish — a published schedule is always verifier-certified;
 *  - rejections are structured: no route, utilization ceiling,
 *    infeasible subset, or "feasible at period p" (stretch probe).
 *
 * Thread-safety: request processing is externally serialized (one
 * writer), but published() may be called concurrently from any
 * thread and returns an immutable snapshot.
 */

#ifndef SRSIM_ONLINE_SERVICE_HH_
#define SRSIM_ONLINE_SERVICE_HH_

#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "core/sr_compiler.hh"
#include "fault/repair.hh"
#include "mapping/allocation.hh"
#include "online/cache.hh"
#include "online/requests.hh"
#include "tfg/tfg.hh"
#include "tfg/timing.hh"
#include "topology/topology.hh"

namespace srsim {
namespace online {

/** Service policy knobs. */
struct OnlineSchedulerConfig
{
    /** Compiler configuration (inputPeriod = initial period). */
    SrCompilerConfig compiler;
    /** Schedule cache capacity (entries); 0 disables the cache. */
    std::size_t cacheCapacity = 64;
    /**
     * When set, use this (thread-safe) cache instead of a private
     * one — the scheduling daemon shares one cache across sessions.
     * cacheCapacity still gates per-service use: 0 disables lookups
     * for this service even on a shared cache.
     */
    std::shared_ptr<ScheduleCache> sharedCache;
    /**
     * Probe stretched periods on rejection so the caller learns the
     * smallest feasible period (RejectReason::PeriodStretchRequired).
     */
    bool probeStretch = true;
    /** Stretch factors probed in order on the current period. */
    std::vector<double> stretchFactors = {1.25, 1.5, 2.0, 3.0, 4.0};
    /** Fault-repair policy for InjectFault requests. */
    fault::RepairOptions repair;
    /**
     * Warm-start the incremental re-solve LPs from a per-service
     * basis cache keyed by maximal subset. Hot admission/removal
     * churn then re-solves recurring subsets in a handful of dual
     * pivots instead of a cold two-phase solve. Published schedules
     * are unaffected byte-for-byte: a warm solve that cannot be
     * completed falls back to the deterministic cold path.
     */
    bool warmStartBasis = true;
};

/** One immutable published snapshot of the service's schedule. */
struct PublishedState
{
    /** Monotonic publish counter (1 = initial compile). */
    std::uint64_t version = 0;
    /** The workload this schedule serves. */
    TaskFlowGraph g;
    TimeBounds bounds;
    std::optional<IntervalSet> intervals;
    GlobalSchedule omega;
    /** Always ok — rejected candidates are never published. */
    VerifyResult verification;
    std::size_t numSubsets = 0;
    double peakUtilization = 0.0;
};

/**
 * The long-lived scheduling service.
 *
 * Construct with the initial workload, call start() to compile and
 * publish the first schedule, then feed requests through process()
 * (or the typed admit()/remove()/updatePeriod()/injectFault()).
 */
class OnlineScheduler
{
  public:
    OnlineScheduler(TaskFlowGraph g, std::unique_ptr<Topology> topo,
                    TaskAllocation alloc, TimingModel tm,
                    OnlineSchedulerConfig cfg = {});

    /** Compile + publish the initial schedule. */
    RequestResult start();

    /**
     * Publish a previously compiled schedule without recompiling:
     * re-apply the accumulated fault spec to the fabric, recompute
     * the (route-free) bounds and intervals for the constructed
     * workload, and re-verify `omega` against them. Used by crash
     * recovery to restore a snapshot; the caller then replays the
     * WAL suffix through process(). Rejects (VerificationFailed /
     * InvalidRequest) when the schedule does not certify against
     * this workload — recovery then falls back to a full replay.
     * Only valid before start(); on success the service behaves as
     * if it had compiled and published `omega` itself (version 1).
     */
    RequestResult restore(const GlobalSchedule &omega,
                          const std::string &faultSpecAccum);

    /** Dispatch on Request::kind. */
    RequestResult process(const Request &r);

    RequestResult admit(const AdmitSpec &spec);
    /** Admit a coalesced batch in one re-solve (all or nothing). */
    RequestResult admitBatch(const std::vector<AdmitSpec> &specs);
    RequestResult remove(const std::string &msgName);
    RequestResult updatePeriod(Time period);
    /** Degrade the fabric per `spec` and repair the schedule. */
    RequestResult injectFault(const std::string &spec);

    /** The current published snapshot (never null after start()). */
    std::shared_ptr<const PublishedState> published() const;

    bool started() const { return published() != nullptr; }

    const ScheduleCache &cache() const { return *cache_; }
    const Topology &topology() const { return *topo_; }
    const TaskAllocation &allocation() const { return alloc_; }
    const TimingModel &timing() const { return tm_; }
    /** Current input period (us). */
    Time currentPeriod() const { return cfg_.compiler.inputPeriod; }

  private:
    struct SolveOutcome;

    RequestResult finish(RequestResult res, const char *what,
                         double startUs, bool admission);
    SolveOutcome solveWorkload(const TaskFlowGraph &g2, Time period,
                               bool allowIncremental);
    void publish(std::shared_ptr<PublishedState> next, Time period);
    void classifyRejection(const SrCompileResult &compile,
                           const TaskFlowGraph &g2, Time period,
                           RequestResult &res);
    Time probeStretchedPeriods(const TaskFlowGraph &g2, Time period);

    TaskFlowGraph g_;
    std::unique_ptr<Topology> topo_;
    TaskAllocation alloc_;
    TimingModel tm_;
    OnlineSchedulerConfig cfg_;
    std::shared_ptr<ScheduleCache> cache_;
    /** Per-subset LP basis cache for warm-started re-solves. */
    std::shared_ptr<lp::BasisCache> basisCache_;
    /** Accumulated static fault specs applied so far (';'-joined). */
    std::string faultSpecAccum_;

    mutable std::mutex mu_;
    std::shared_ptr<const PublishedState> state_;
    std::uint64_t version_ = 0;
};

} // namespace online
} // namespace srsim

#endif // SRSIM_ONLINE_SERVICE_HH_
