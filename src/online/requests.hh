/**
 * @file
 * Request and result types of the online scheduling service.
 *
 * The service owns a compiled schedule and absorbs a stream of
 * workload-churn requests. Each request either publishes a new
 * verifier-certified schedule atomically or is rejected with a
 * structured reason — the caller always learns *why* (no route,
 * utilization ceiling, infeasible subset, period stretch required)
 * rather than just "no".
 */

#ifndef SRSIM_ONLINE_REQUESTS_HH_
#define SRSIM_ONLINE_REQUESTS_HH_

#include <cstddef>
#include <string>
#include <vector>

#include "util/time.hh"

namespace srsim {
namespace online {

/** One new message to admit into the running workload. */
struct AdmitSpec
{
    /** Message name; must be unique in the workload. */
    std::string name;
    /** Source task name (must exist; tasks are fixed online). */
    std::string src;
    /** Destination task name. */
    std::string dst;
    /** Payload size in bytes (> 0). */
    double bytes = 0.0;
};

/** What a request asks the service to do. */
enum class RequestKind
{
    /** Admit admits[] (one message, or a coalesced batch). */
    AdmitMessage,
    /** Remove the message named `name`. */
    RemoveMessage,
    /** Re-place the workload at input period `period`. */
    UpdatePeriod,
    /** Degrade the fabric per `faultSpec` and repair. */
    InjectFault,
};

/** @return human-readable request kind name. */
const char *requestKindName(RequestKind k);

/** One request of the online stream. */
struct Request
{
    RequestKind kind = RequestKind::AdmitMessage;
    /** AdmitMessage: the message(s); >1 entry = coalesced batch. */
    std::vector<AdmitSpec> admits;
    /** RemoveMessage: the message name. */
    std::string name;
    /** UpdatePeriod: the new input period (us). */
    Time period = 0.0;
    /** InjectFault: static fault spec (src/fault grammar). */
    std::string faultSpec;
};

/** Why a request was rejected (None when accepted). */
enum class RejectReason
{
    None,
    /** Malformed request: unknown task, duplicate name, ... */
    InvalidRequest,
    /** No surviving minimal path between the endpoints. */
    NoRoute,
    /** Peak utilization above 1 at the current period. */
    UtilizationCeiling,
    /** A maximal related subset has no feasible allocation or
        interval schedule at the current period. */
    InfeasibleSubset,
    /** Infeasible now, but feasible at a stretched period (see
        RequestResult::requiredPeriod). */
    PeriodStretchRequired,
    /** Re-verification rejected the candidate schedule. */
    VerificationFailed,
};

/** @return human-readable reject reason name. */
const char *rejectReasonName(RejectReason r);

/** Outcome of one request. */
struct RequestResult
{
    bool accepted = false;
    RejectReason reason = RejectReason::None;
    /** Human-readable explanation (rejections and fault repairs). */
    std::string detail;

    /** Subset bookkeeping of the re-solve behind this request. */
    std::size_t subsetsTotal = 0;
    std::size_t subsetsResolved = 0;
    std::size_t subsetsCopied = 0;

    /** How the result was produced. */
    bool usedCache = false;
    bool usedIncremental = false;
    bool usedFullCompile = false;

    /** Wall-clock service latency of this request (ms). */
    double latencyMs = 0.0;

    /** Published input period after the request (us). */
    Time period = 0.0;
    /** Peak utilization of the published schedule. */
    double peakUtilization = 0.0;
    /**
     * For PeriodStretchRequired: the smallest probed period at
     * which the workload is feasible (0 when unknown).
     */
    Time requiredPeriod = 0.0;
};

} // namespace online
} // namespace srsim

#endif // SRSIM_ONLINE_REQUESTS_HH_
