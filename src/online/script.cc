#include "online/script.hh"

#include <sstream>

namespace srsim {
namespace online {

namespace {

ScriptParseResult
failAt(int line, std::string why)
{
    ScriptParseResult res;
    res.error = std::move(why);
    res.errorLine = line;
    return res;
}

/**
 * Strip a trailing comment and surrounding whitespace. A '#' starts
 * a comment only at the beginning of the line or after whitespace —
 * mid-token it is payload (the fault grammar addresses links as
 * '#<index>', e.g. `fault derate:#3=0.5`).
 */
std::string
cleanLine(const std::string &raw)
{
    std::string s = raw;
    for (std::size_t i = 0; i < s.size(); ++i) {
        if (s[i] != '#')
            continue;
        if (i == 0 || s[i - 1] == ' ' || s[i - 1] == '\t') {
            s.erase(i);
            break;
        }
    }
    const std::size_t b = s.find_first_not_of(" \t\r\n");
    if (b == std::string::npos)
        return {};
    const std::size_t e = s.find_last_not_of(" \t\r\n");
    return s.substr(b, e - b + 1);
}

/** Parse `admit <name> <src> <dst> <bytes>` after the keyword. */
bool
parseAdmitArgs(std::istringstream &ls, AdmitSpec &spec,
               std::string &why)
{
    std::string extra;
    if (!(ls >> spec.name >> spec.src >> spec.dst >> spec.bytes)) {
        why = "expected: admit <name> <srcTask> <dstTask> <bytes>";
        return false;
    }
    if (ls >> extra) {
        why = "trailing tokens after admit: '" + extra + "'";
        return false;
    }
    return true;
}

} // namespace

ScriptParseResult
parseRequestLine(const std::string &line)
{
    ScriptParseResult res;
    const std::string s = cleanLine(line);
    if (s.empty()) {
        res.ok = true;
        return res;
    }
    std::istringstream ls(s);
    std::string verb;
    ls >> verb;
    Request r;
    std::string extra;
    if (verb == "admit") {
        r.kind = RequestKind::AdmitMessage;
        AdmitSpec spec;
        std::string why;
        if (!parseAdmitArgs(ls, spec, why))
            return failAt(0, why);
        r.admits.push_back(std::move(spec));
    } else if (verb == "remove") {
        r.kind = RequestKind::RemoveMessage;
        if (!(ls >> r.name))
            return failAt(0, "expected: remove <name>");
        if (ls >> extra)
            return failAt(0, "trailing tokens after remove: '" +
                                 extra + "'");
    } else if (verb == "period") {
        r.kind = RequestKind::UpdatePeriod;
        if (!(ls >> r.period))
            return failAt(0, "expected: period <tau_in_us>");
        if (ls >> extra)
            return failAt(0, "trailing tokens after period: '" +
                                 extra + "'");
    } else if (verb == "fault") {
        r.kind = RequestKind::InjectFault;
        std::getline(ls, r.faultSpec);
        const std::size_t b =
            r.faultSpec.find_first_not_of(" \t");
        r.faultSpec =
            b == std::string::npos ? "" : r.faultSpec.substr(b);
        if (r.faultSpec.empty())
            return failAt(0, "expected: fault <fault-spec>");
    } else {
        return failAt(0, "unknown request verb '" + verb + "'");
    }
    res.ok = true;
    res.requests.push_back(std::move(r));
    return res;
}

ScriptParseResult
parseRequestScript(std::istream &is)
{
    ScriptParseResult res;
    std::string raw;
    int lineNo = 0;
    int batchLeft = 0;
    Request batch;
    while (std::getline(is, raw)) {
        ++lineNo;
        const std::string s = cleanLine(raw);
        if (s.empty())
            continue;
        std::istringstream ls(s);
        std::string verb;
        ls >> verb;

        if (batchLeft > 0) {
            // Inside a batch group only admit lines are legal.
            if (verb != "admit")
                return failAt(lineNo,
                              "expected an admit line inside a "
                              "batch group, got '" +
                                  verb + "'");
            AdmitSpec spec;
            std::string why;
            if (!parseAdmitArgs(ls, spec, why))
                return failAt(lineNo, why);
            batch.admits.push_back(std::move(spec));
            if (--batchLeft == 0)
                res.requests.push_back(std::move(batch));
            continue;
        }

        if (verb == "batch") {
            long long n = 0;
            std::string extra;
            if (!(ls >> n) || n <= 0 || n > 100000)
                return failAt(lineNo,
                              "expected: batch <N> with N >= 1");
            if (ls >> extra)
                return failAt(lineNo,
                              "trailing tokens after batch: '" +
                                  extra + "'");
            batch = Request{};
            batch.kind = RequestKind::AdmitMessage;
            batchLeft = static_cast<int>(n);
            continue;
        }

        ScriptParseResult one = parseRequestLine(s);
        if (!one.ok)
            return failAt(lineNo, one.error);
        for (Request &r : one.requests)
            res.requests.push_back(std::move(r));
    }
    if (batchLeft > 0)
        return failAt(lineNo,
                      "script ended inside a batch group (" +
                          std::to_string(batchLeft) +
                          " admit lines missing)");
    res.ok = true;
    return res;
}

} // namespace online
} // namespace srsim
