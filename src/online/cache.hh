/**
 * @file
 * Content-addressed schedule cache.
 *
 * The online service sees churny workloads revisit earlier states
 * (admit X, remove X, admit X again). Compiling is expensive;
 * looking up is not. The cache maps a *canonical workload key* — a
 * deterministic serialization of everything the compiler's output
 * depends on (fabric + fault mask, timing model, compiler knobs,
 * tasks, placement, and messages in id order) — to the compiled,
 * verifier-certified schedule. Bounded LRU; hit/miss/eviction
 * counts feed the online.* / cache.* metrics.
 *
 * The key is order-sensitive on messages by design: segment row i of
 * a GlobalSchedule indexes the i-th *network* message in TFG id
 * order, so two workloads with the same message set but different
 * id order are different cache entries.
 *
 * Thread-safety: every method is safe to call concurrently. The
 * scheduling daemon shares one cache across many sessions, each
 * served by its own worker thread; lookups return an immutable
 * shared_ptr snapshot so an entry stays valid even if it is evicted
 * while the caller still holds it. Because the key serializes the
 * *entire* compile problem (including the fabric name and fault
 * mask) and the compiler is a deterministic function of the key, a
 * hit from any session republishes exactly the bytes a fresh
 * compile would have produced.
 */

#ifndef SRSIM_ONLINE_CACHE_HH_
#define SRSIM_ONLINE_CACHE_HH_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/schedule.hh"
#include "core/sr_compiler.hh"
#include "mapping/allocation.hh"
#include "tfg/tfg.hh"
#include "tfg/timing.hh"
#include "topology/topology.hh"

namespace srsim {

namespace metrics {
class Registry;
}

namespace online {

/**
 * Canonical serialization of one compile problem. Two problems with
 * equal keys produce byte-identical schedules (the compiler is a
 * deterministic function of exactly these inputs).
 */
std::string canonicalWorkloadKey(const TaskFlowGraph &g,
                                 const Topology &topo,
                                 const TaskAllocation &alloc,
                                 const TimingModel &tm,
                                 const SrCompilerConfig &cfg);

/** FNV-1a 64-bit hash (stable across platforms, for logging). */
std::uint64_t fnv1a64(const std::string &s);

/** LRU-bounded canonical-key -> compiled-schedule cache. */
class ScheduleCache
{
  public:
    /**
     * @param registry registry the cache.bytes gauge and
     *        cache.evictions counter land in; nullptr resolves the
     *        process default registry at construction time. The
     *        daemon's shared cross-session cache keeps the default
     *        (its traffic is aggregate by nature).
     */
    explicit ScheduleCache(std::size_t capacity = 64,
                           metrics::Registry *registry = nullptr);

    /** One cached, verifier-certified schedule. */
    struct Entry
    {
        GlobalSchedule omega;
        std::size_t numSubsets = 0;
        double peakUtilization = 0.0;
    };

    /**
     * @return the entry for `key` (bumped to most-recently-used),
     *         or nullptr on a miss. The returned snapshot stays
     *         valid even if the entry is evicted concurrently.
     */
    std::shared_ptr<const Entry> lookup(const std::string &key);

    /** Insert (or refresh) an entry, evicting the LRU tail. */
    void insert(const std::string &key, Entry entry);

    /** One dumped (key, entry) pair for snapshotting. */
    struct DumpedEntry
    {
        std::string key;
        Entry entry;
    };

    /**
     * Copy of the whole cache, most-recently-used first. The cache
     * image is part of a daemon's byte-level history: a WAL-suffix
     * replay reproduces the original run's published bytes only if
     * it also reproduces the original run's hits, so snapshots
     * persist the cache and recovery re-seeds it (LRU order and
     * all) before replaying.
     */
    std::vector<DumpedEntry> dumpForSnapshot() const;

    std::size_t size() const;
    std::size_t capacity() const { return capacity_; }
    std::uint64_t hits() const { return hits_.load(); }
    std::uint64_t misses() const { return misses_.load(); }
    std::uint64_t evictions() const { return evictions_.load(); }
    /** Approximate resident payload bytes (keys + schedules). */
    std::uint64_t bytes() const { return bytes_.load(); }

  private:
    /** Approximate payload size of one (key, entry) pair. */
    static std::uint64_t entryBytes(const std::string &key,
                                    const Entry &entry);
    /** Re-publish bytes_ to the cache.bytes gauge (mu_ held). */
    void publishBytesGauge();

    using Node = std::pair<std::string, std::shared_ptr<const Entry>>;

    const std::size_t capacity_;
    /** Destination of the cache.* metrics (never null). */
    metrics::Registry *registry_;
    mutable std::mutex mu_;
    /** Most-recently-used at the front. */
    std::list<Node> lru_;
    std::unordered_map<std::string, std::list<Node>::iterator> map_;
    std::atomic<std::uint64_t> hits_{0};
    std::atomic<std::uint64_t> misses_{0};
    std::atomic<std::uint64_t> evictions_{0};
    std::atomic<std::uint64_t> bytes_{0};
};

} // namespace online
} // namespace srsim

#endif // SRSIM_ONLINE_CACHE_HH_
