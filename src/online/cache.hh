/**
 * @file
 * Content-addressed schedule cache.
 *
 * The online service sees churny workloads revisit earlier states
 * (admit X, remove X, admit X again). Compiling is expensive;
 * looking up is not. The cache maps a *canonical workload key* — a
 * deterministic serialization of everything the compiler's output
 * depends on (fabric + fault mask, timing model, compiler knobs,
 * tasks, placement, and messages in id order) — to the compiled,
 * verifier-certified schedule. Bounded LRU; hit/miss/eviction
 * counts feed the online.* metrics.
 *
 * The key is order-sensitive on messages by design: segment row i of
 * a GlobalSchedule indexes the i-th *network* message in TFG id
 * order, so two workloads with the same message set but different
 * id order are different cache entries.
 */

#ifndef SRSIM_ONLINE_CACHE_HH_
#define SRSIM_ONLINE_CACHE_HH_

#include <cstdint>
#include <list>
#include <string>
#include <unordered_map>
#include <utility>

#include "core/schedule.hh"
#include "core/sr_compiler.hh"
#include "mapping/allocation.hh"
#include "tfg/tfg.hh"
#include "tfg/timing.hh"
#include "topology/topology.hh"

namespace srsim {
namespace online {

/**
 * Canonical serialization of one compile problem. Two problems with
 * equal keys produce byte-identical schedules (the compiler is a
 * deterministic function of exactly these inputs).
 */
std::string canonicalWorkloadKey(const TaskFlowGraph &g,
                                 const Topology &topo,
                                 const TaskAllocation &alloc,
                                 const TimingModel &tm,
                                 const SrCompilerConfig &cfg);

/** FNV-1a 64-bit hash (stable across platforms, for logging). */
std::uint64_t fnv1a64(const std::string &s);

/** LRU-bounded canonical-key -> compiled-schedule cache. */
class ScheduleCache
{
  public:
    explicit ScheduleCache(std::size_t capacity = 64);

    /** One cached, verifier-certified schedule. */
    struct Entry
    {
        GlobalSchedule omega;
        std::size_t numSubsets = 0;
        double peakUtilization = 0.0;
    };

    /**
     * @return the entry for `key` (bumped to most-recently-used),
     *         or nullptr on a miss. The pointer is valid until the
     *         next insert().
     */
    const Entry *lookup(const std::string &key);

    /** Insert (or refresh) an entry, evicting the LRU tail. */
    void insert(const std::string &key, Entry entry);

    std::size_t size() const { return map_.size(); }
    std::size_t capacity() const { return capacity_; }
    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }
    std::uint64_t evictions() const { return evictions_; }

  private:
    std::size_t capacity_;
    /** Most-recently-used at the front. */
    std::list<std::pair<std::string, Entry>> lru_;
    std::unordered_map<
        std::string,
        std::list<std::pair<std::string, Entry>>::iterator>
        map_;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
    std::uint64_t evictions_ = 0;
};

} // namespace online
} // namespace srsim

#endif // SRSIM_ONLINE_CACHE_HH_
