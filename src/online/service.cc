#include "online/service.hh"

#include <cmath>
#include <sstream>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "core/incremental.hh"
#include "core/subsets.hh"
#include "engine/context.hh"
#include "solver/revised.hh"
#include "core/verifier.hh"
#include "fault/fault.hh"
#include "metrics/metrics.hh"
#include "trace/trace.hh"
#include "util/logging.hh"

namespace srsim {
namespace online {

const char *
requestKindName(RequestKind k)
{
    switch (k) {
      case RequestKind::AdmitMessage: return "admit";
      case RequestKind::RemoveMessage: return "remove";
      case RequestKind::UpdatePeriod: return "period";
      case RequestKind::InjectFault: return "fault";
    }
    return "unknown";
}

const char *
rejectReasonName(RejectReason r)
{
    switch (r) {
      case RejectReason::None: return "none";
      case RejectReason::InvalidRequest: return "invalid-request";
      case RejectReason::NoRoute: return "no-route";
      case RejectReason::UtilizationCeiling:
          return "utilization-ceiling";
      case RejectReason::InfeasibleSubset:
          return "infeasible-subset";
      case RejectReason::PeriodStretchRequired:
          return "period-stretch-required";
      case RejectReason::VerificationFailed:
          return "verification-failed";
    }
    return "unknown";
}

namespace {

void
bump(metrics::Registry &reg, const char *name,
     std::uint64_t n = 1)
{
    if (SRSIM_METRICS_ENABLED())
        reg.counter(name).add(n);
}

Time
effectivePacketTime(const SrCompilerConfig &cfg,
                    const TimingModel &tm)
{
    if (cfg.scheduling.packetTime > 0.0)
        return cfg.scheduling.packetTime;
    return tm.packetBytes > 0.0 ? tm.packetTime() : 0.0;
}

bool
crossesDerated(const Topology &topo, const Path &p)
{
    for (LinkId l : p.links)
        if (topo.linkCapacity(l) < 1.0)
            return true;
    return false;
}

/**
 * Exact equality: the bounds computation is a deterministic
 * function of (TFG, allocation, timing, period), so a surviving
 * message whose inputs did not change reproduces bit-identical
 * bounds; any drift means its windows moved and its subsets must
 * be re-solved.
 */
bool
boundsEqual(const MessageBounds &a, const MessageBounds &b)
{
    if (a.duration != b.duration || a.release != b.release ||
        a.deadline != b.deadline ||
        a.absoluteRelease != b.absoluteRelease)
        return false;
    if (a.windows.size() != b.windows.size())
        return false;
    for (std::size_t i = 0; i < a.windows.size(); ++i)
        if (a.windows[i].start != b.windows[i].start ||
            a.windows[i].end != b.windows[i].end)
            return false;
    return true;
}

TaskId
findTask(const TaskFlowGraph &g, const std::string &name)
{
    for (const Task &t : g.tasks())
        if (t.name == name)
            return t.id;
    return kInvalidTask;
}

bool
hasMessage(const TaskFlowGraph &g, const std::string &name)
{
    for (const Message &m : g.messages())
        if (m.name == name)
            return true;
    return false;
}

} // namespace

struct OnlineScheduler::SolveOutcome
{
    bool ok = false;
    RequestResult res;
    std::shared_ptr<PublishedState> next;
};

OnlineScheduler::OnlineScheduler(TaskFlowGraph g,
                                 std::unique_ptr<Topology> topo,
                                 TaskAllocation alloc,
                                 TimingModel tm,
                                 OnlineSchedulerConfig cfg)
    : g_(std::move(g)),
      topo_(std::move(topo)),
      alloc_(std::move(alloc)),
      tm_(tm),
      cfg_(std::move(cfg)),
      cache_(cfg_.sharedCache
                 ? cfg_.sharedCache
                 : std::make_shared<ScheduleCache>(
                       cfg_.cacheCapacity == 0
                           ? 1
                           : cfg_.cacheCapacity,
                       &engine::resolve(cfg_.compiler.ctx)
                            .metricsRegistry())),
      basisCache_(cfg_.warmStartBasis
                      ? std::make_shared<lp::BasisCache>(
                            &engine::resolve(cfg_.compiler.ctx)
                                 .metricsRegistry())
                      : nullptr)
{
}

std::shared_ptr<const PublishedState>
OnlineScheduler::published() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return state_;
}

void
OnlineScheduler::publish(std::shared_ptr<PublishedState> next,
                         Time period)
{
    next->version = ++version_;
    g_ = next->g;
    cfg_.compiler.inputPeriod = period;
    std::lock_guard<std::mutex> lock(mu_);
    state_ = std::move(next);
}

RequestResult
OnlineScheduler::finish(RequestResult res, const char *what,
                        double startUs, bool admission)
{
    const double endUs = trace::Tracer::nowWallUs();
    res.latencyMs = (endUs - startUs) / 1000.0;
    const engine::EngineContext &ectx =
        engine::resolve(cfg_.compiler.ctx);
    metrics::Registry &reg = ectx.metricsRegistry();
    bump(reg, "online.requests");
    if (res.accepted) {
        bump(reg, "online.subsets_resolved",
             static_cast<std::uint64_t>(res.subsetsResolved));
        bump(reg, "online.subsets_copied",
             static_cast<std::uint64_t>(res.subsetsCopied));
        if (res.usedCache)
            bump(reg, "online.cache_served");
        if (res.usedIncremental)
            bump(reg, "online.incremental");
    } else {
        bump(reg, "online.rejected");
    }
    if (admission && SRSIM_METRICS_ENABLED())
        reg.histogram("online.admit_latency_us",
                      metrics::Histogram::timeBucketsUs())
            .add(endUs - startUs);
    if (SRSIM_TRACE_ENABLED()) {
        std::ostringstream oss;
        oss << what << " -> "
            << (res.accepted ? "accepted"
                             : rejectReasonName(res.reason));
        if (!res.accepted && !res.detail.empty())
            oss << ": " << res.detail;
        trace::onlineRequest(ectx.tracer(), oss.str(), endUs);
    }
    return res;
}

Time
OnlineScheduler::probeStretchedPeriods(const TaskFlowGraph &g2,
                                       Time period)
{
    const engine::EngineContext &ectx =
        engine::resolve(cfg_.compiler.ctx);
    trace::ScopedPhase phase("online_stretch_probe", ectx.tracer(),
                             ectx.metricsRegistry());
    for (double f : cfg_.stretchFactors) {
        SrCompilerConfig ccfg = cfg_.compiler;
        ccfg.inputPeriod = period * f;
        ccfg.verify = true;
        const SrCompileResult attempt = compileScheduledRouting(
            g2, *topo_, alloc_, tm_, ccfg);
        if (attempt.feasible)
            return ccfg.inputPeriod;
    }
    return 0.0;
}

void
OnlineScheduler::classifyRejection(const SrCompileResult &compile,
                                   const TaskFlowGraph &g2,
                                   Time period, RequestResult &res)
{
    switch (compile.stage) {
      case SrFailureStage::InvalidInput:
          res.reason = RejectReason::InvalidRequest;
          break;
      case SrFailureStage::Fault:
          res.reason = RejectReason::NoRoute;
          break;
      case SrFailureStage::Utilization:
          res.reason = RejectReason::UtilizationCeiling;
          break;
      case SrFailureStage::Verification:
          res.reason = RejectReason::VerificationFailed;
          break;
      default:
          res.reason = RejectReason::InfeasibleSubset;
          break;
    }
    res.detail = compile.detail;

    // An infeasible workload is often schedulable at a longer
    // period; probing turns a bare "no" into "yes at period p".
    if (cfg_.probeStretch &&
        (res.reason == RejectReason::UtilizationCeiling ||
         res.reason == RejectReason::InfeasibleSubset)) {
        const Time p = probeStretchedPeriods(g2, period);
        if (p > 0.0) {
            res.reason = RejectReason::PeriodStretchRequired;
            res.requiredPeriod = p;
            std::ostringstream oss;
            oss << res.detail << "; feasible at period " << p
                << " us";
            res.detail = oss.str();
        }
    }
}

OnlineScheduler::SolveOutcome
OnlineScheduler::solveWorkload(const TaskFlowGraph &g2, Time period,
                               bool allowIncremental)
{
    SolveOutcome out;
    RequestResult &res = out.res;
    res.period = period;
    const engine::EngineContext &ectx =
        engine::resolve(cfg_.compiler.ctx);
    metrics::Registry &reg = ectx.metricsRegistry();

    // Time bounds and the interval decomposition are route-free
    // (Sec. 4 / Sec. 5.1): recomputing them for the new workload is
    // cheap and exact.
    TimeBounds bounds2;
    try {
        bounds2 = computeTimeBounds(g2, alloc_, tm_, period);
    } catch (const FatalError &e) {
        res.reason = RejectReason::InvalidRequest;
        res.detail = e.what();
        return out;
    }

    SrCompilerConfig ccfg = cfg_.compiler;
    ccfg.inputPeriod = period;
    ccfg.verify = true;

    // Mirror the batch compiler's packet-grid gate so the
    // incremental path can never accept a problem the compiler
    // would reject as InvalidInput.
    const Time ptime = effectivePacketTime(ccfg, tm_);
    if (ptime > 0.0) {
        for (const MessageBounds &b : bounds2.messages) {
            const double q = b.duration / ptime;
            if (std::abs(q - std::round(q)) > 1e-6) {
                std::ostringstream oss;
                oss << "message duration " << b.duration
                    << " us is not a whole number of packets";
                res.reason = RejectReason::InvalidRequest;
                res.detail = oss.str();
                return out;
            }
        }
    }

    // Degenerate: all messages local, nothing to schedule.
    if (bounds2.messages.empty()) {
        auto next = std::make_shared<PublishedState>();
        next->g = g2;
        next->bounds = std::move(bounds2);
        next->omega.period = period;
        next->omega.faultSpec = faultSpecAccum_;
        next->verification.ok = true;
        out.ok = true;
        out.next = std::move(next);
        return out;
    }

    // Content-addressed cache: churny workloads revisit earlier
    // states (admit X, remove X, admit X again); a revisit is a
    // lookup, not a re-solve. Entries are only ever inserted after
    // verification, so a hit republishes a certified schedule.
    std::string key;
    if (cfg_.cacheCapacity > 0) {
        key = canonicalWorkloadKey(g2, *topo_, alloc_, tm_, ccfg);
        if (const auto e = cache_->lookup(key)) {
            bump(reg, "online.cache_hits");
            auto next = std::make_shared<PublishedState>();
            next->g = g2;
            next->bounds = std::move(bounds2);
            next->intervals.emplace(next->bounds);
            next->omega = e->omega;
            // Stamp this session's own provenance: on a shared
            // cache the entry may have been compiled by a session
            // whose fault-spec *string* (or stretch history)
            // differs even though the canonical key — and hence the
            // schedule — is identical. Republishing must serialize
            // exactly what a no-cache solve would have.
            next->omega.faultSpec = faultSpecAccum_;
            if (const auto prior = published())
                next->omega.degradedFrom =
                    prior->omega.degradedFrom;
            next->verification.ok = true;
            next->numSubsets = e->numSubsets;
            next->peakUtilization = e->peakUtilization;
            res.usedCache = true;
            res.subsetsTotal = e->numSubsets;
            res.subsetsCopied = e->numSubsets;
            res.peakUtilization = e->peakUtilization;
            out.ok = true;
            out.next = std::move(next);
            return out;
        }
        bump(reg, "online.cache_misses");
    }

    // Incremental path: keep every surviving message's route and
    // segments, route only the new (or fault-dirtied) messages,
    // re-solve only the maximal related subsets they touch.
    const std::shared_ptr<const PublishedState> prior = published();
    if (allowIncremental && prior &&
        period == prior->omega.period) {
        trace::ScopedPhase phase("online_incremental",
                                 ectx.tracer(),
                                 ectx.metricsRegistry());
        IntervalSet ivs2(bounds2);

        std::unordered_map<std::string, std::size_t> oldIdx;
        for (std::size_t j = 0; j < prior->bounds.messages.size();
             ++j)
            oldIdx[prior->g
                       .message(prior->bounds.messages[j].msg)
                       .name] = j;

        const std::size_t n2 = bounds2.messages.size();
        PathAssignment pa2;
        pa2.paths.resize(n2);
        std::vector<char> dirty(n2, 0);
        std::vector<std::vector<TimeWindow>> priorSegs(n2);
        std::vector<std::size_t> routeIdx;
        for (std::size_t i = 0; i < n2; ++i) {
            const MessageBounds &nb = bounds2.messages[i];
            const auto it =
                oldIdx.find(g2.message(nb.msg).name);
            if (it == oldIdx.end()) {
                // Brand new: needs a route and a fresh solve.
                dirty[i] = 1;
                routeIdx.push_back(i);
                continue;
            }
            const std::size_t j = it->second;
            pa2.paths[i] = prior->omega.paths.pathFor(j);
            priorSegs[i] = prior->omega.segments[j];
            if (!topo_->pathAlive(pa2.paths[i]) ||
                crossesDerated(*topo_, pa2.paths[i])) {
                // Route crosses a failed/derated resource:
                // reroute it like fault repair would.
                dirty[i] = 1;
                routeIdx.push_back(i);
            } else if (!boundsEqual(
                           nb, prior->bounds.messages[j])) {
                // Same route, moved windows: subsets re-solve.
                dirty[i] = 1;
            }
        }

        bool incrementalViable = true;
        if (!routeIdx.empty()) {
            const GreedyRouteResult gr = greedyRouteMessages(
                g2, *topo_, alloc_, bounds2, ivs2, routeIdx,
                ccfg.assign.maxPathsPerMessage, pa2);
            // On failure (disconnected endpoints, or greedy routes
            // bust the utilization ceiling where a global re-route
            // might not) fall back to the full compiler so the
            // accept/reject verdict matches a from-scratch compile.
            if (!gr.ok || gr.report.peak > 1.0 + 1e-9)
                incrementalViable = false;
        }

        if (incrementalViable) {
            IncrementalSolveOptions iopts;
            iopts.allocMethod = ccfg.allocMethod;
            iopts.scheduling = ccfg.scheduling;
            iopts.scheduling.packetTime = ptime;
            iopts.topo = topo_.get();
            iopts.tracePrefix = "online";
            iopts.basisCache = basisCache_.get();
            iopts.ctx = cfg_.compiler.ctx;
            const IncrementalSolveResult inc = resolveDirtySubsets(
                bounds2, ivs2, pa2, dirty, priorSegs, iopts);
            if (inc.feasible) {
                GlobalSchedule omega2;
                omega2.period = period;
                omega2.paths = pa2;
                omega2.segments = inc.segments;
                omega2.faultSpec = faultSpecAccum_;
                omega2.degradedFrom = prior->omega.degradedFrom;
                const VerifyResult ver = verifySchedule(
                    g2, *topo_, alloc_, bounds2, omega2);
                if (ver.ok) {
                    const double peak =
                        UtilizationAnalyzer(bounds2, ivs2, *topo_)
                            .analyze(pa2)
                            .peak;
                    auto next =
                        std::make_shared<PublishedState>();
                    next->g = g2;
                    next->bounds = std::move(bounds2);
                    next->intervals = std::move(ivs2);
                    next->omega = std::move(omega2);
                    next->verification = ver;
                    next->numSubsets = inc.subsetsTotal;
                    next->peakUtilization = peak;
                    res.usedIncremental = true;
                    res.subsetsTotal = inc.subsetsTotal;
                    res.subsetsResolved = inc.subsetsResolved;
                    res.subsetsCopied = inc.subsetsCopied;
                    res.peakUtilization = next->peakUtilization;
                    if (cfg_.cacheCapacity > 0)
                        cache_->insert(
                            key, {next->omega, next->numSubsets,
                                  next->peakUtilization});
                    out.ok = true;
                    out.next = std::move(next);
                    return out;
                }
            }
            // Incremental produced nothing publishable; the full
            // compiler gets the final word below.
        }
    }

    // Full compile: the fallback and the source of truth for
    // rejection classification.
    trace::ScopedPhase phase("online_full_compile", ectx.tracer(),
                             ectx.metricsRegistry());
    bump(reg, "online.full_compiles");
    SrCompileResult comp =
        compileScheduledRouting(g2, *topo_, alloc_, tm_, ccfg);
    if (!comp.feasible) {
        classifyRejection(comp, g2, period, res);
        return out;
    }

    auto next = std::make_shared<PublishedState>();
    next->g = g2;
    next->bounds = std::move(comp.bounds);
    if (comp.intervals)
        next->intervals = std::move(*comp.intervals);
    next->omega = std::move(comp.omega);
    next->omega.faultSpec = faultSpecAccum_;
    next->verification = comp.verification;
    next->numSubsets = comp.numSubsets;
    next->peakUtilization = comp.utilization.peak;
    res.usedFullCompile = true;
    res.subsetsTotal = comp.numSubsets;
    res.subsetsResolved = comp.numSubsets;
    res.peakUtilization = next->peakUtilization;
    if (cfg_.cacheCapacity > 0)
        cache_->insert(key, {next->omega, next->numSubsets,
                             next->peakUtilization});
    out.ok = true;
    out.next = std::move(next);
    return out;
}

RequestResult
OnlineScheduler::start()
{
    const double t0 = trace::Tracer::nowWallUs();
    RequestResult res;
    res.period = cfg_.compiler.inputPeriod;
    if (started()) {
        res.reason = RejectReason::InvalidRequest;
        res.detail = "service already started";
        return finish(res, "start", t0, false);
    }
    SolveOutcome out =
        solveWorkload(g_, cfg_.compiler.inputPeriod, false);
    res = out.res;
    if (out.ok) {
        publish(std::move(out.next), res.period);
        res.accepted = true;
    }
    return finish(res, "start", t0, false);
}

RequestResult
OnlineScheduler::restore(const GlobalSchedule &omega,
                         const std::string &faultSpecAccum)
{
    const double t0 = trace::Tracer::nowWallUs();
    RequestResult res;
    res.period = omega.period;
    const auto reject = [&](RejectReason r, std::string detail) {
        topo_->clearFaults();
        res.reason = r;
        res.detail = std::move(detail);
        return finish(res, "restore", t0, false);
    };
    if (started())
        return reject(RejectReason::InvalidRequest,
                      "service already started");
    if (!(omega.period > 0.0))
        return reject(RejectReason::InvalidRequest,
                      "restored schedule has no period");

    // Re-degrade the fabric exactly as the accumulated fault
    // history left it; the snapshot's schedule was compiled against
    // that mask, so verification below must see it too.
    if (!faultSpecAccum.empty()) {
        try {
            fault::applyFaultSpec(faultSpecAccum, *topo_);
        } catch (const FatalError &e) {
            return reject(RejectReason::InvalidRequest, e.what());
        }
    }

    TimeBounds bounds;
    try {
        bounds = computeTimeBounds(g_, alloc_, tm_, omega.period);
    } catch (const FatalError &e) {
        return reject(RejectReason::InvalidRequest, e.what());
    }

    auto next = std::make_shared<PublishedState>();
    next->g = g_;
    next->omega = omega;
    if (bounds.messages.empty()) {
        // Degenerate workload (no network messages): nothing to
        // verify, the schedule must be empty too.
        if (!omega.segments.empty())
            return reject(RejectReason::VerificationFailed,
                          "restored schedule has segments but the "
                          "workload has no network messages");
        next->bounds = std::move(bounds);
        next->verification.ok = true;
    } else {
        const VerifyResult ver =
            verifySchedule(g_, *topo_, alloc_, bounds, omega);
        if (!ver.ok)
            return reject(RejectReason::VerificationFailed,
                          ver.violations.empty()
                              ? "restored schedule failed "
                                "verification"
                              : ver.violations.front());
        IntervalSet ivs(bounds);
        next->numSubsets =
            computeMaximalSubsets(bounds, ivs, omega.paths).size();
        next->peakUtilization =
            UtilizationAnalyzer(bounds, ivs, *topo_)
                .analyze(omega.paths)
                .peak;
        next->bounds = std::move(bounds);
        next->intervals = std::move(ivs);
        next->verification = ver;
    }
    res.subsetsTotal = next->numSubsets;
    res.subsetsCopied = next->numSubsets;
    res.peakUtilization = next->peakUtilization;
    faultSpecAccum_ = faultSpecAccum;
    publish(std::move(next), omega.period);
    res.accepted = true;
    return finish(res, "restore", t0, false);
}

RequestResult
OnlineScheduler::process(const Request &r)
{
    switch (r.kind) {
      case RequestKind::AdmitMessage: return admitBatch(r.admits);
      case RequestKind::RemoveMessage: return remove(r.name);
      case RequestKind::UpdatePeriod: return updatePeriod(r.period);
      case RequestKind::InjectFault: return injectFault(r.faultSpec);
    }
    RequestResult res;
    res.reason = RejectReason::InvalidRequest;
    res.detail = "unknown request kind";
    return res;
}

RequestResult
OnlineScheduler::admit(const AdmitSpec &spec)
{
    return admitBatch({spec});
}

RequestResult
OnlineScheduler::admitBatch(const std::vector<AdmitSpec> &specs)
{
    const double t0 = trace::Tracer::nowWallUs();
    const char *what = specs.size() > 1 ? "admit-batch" : "admit";
    RequestResult res;
    res.period = cfg_.compiler.inputPeriod;
    const auto reject = [&](std::string detail) {
        res.reason = RejectReason::InvalidRequest;
        res.detail = std::move(detail);
        return finish(res, what, t0, true);
    };

    if (!started())
        return reject("service not started");
    if (specs.empty())
        return reject("empty admission batch");
    std::unordered_set<std::string> batchNames;
    for (const AdmitSpec &s : specs) {
        if (s.name.empty())
            return reject("message name is empty");
        if (hasMessage(g_, s.name))
            return reject("message '" + s.name +
                          "' already exists");
        if (!batchNames.insert(s.name).second)
            return reject("duplicate message '" + s.name +
                          "' in batch");
        if (findTask(g_, s.src) == kInvalidTask)
            return reject("unknown source task '" + s.src + "'");
        if (findTask(g_, s.dst) == kInvalidTask)
            return reject("unknown destination task '" + s.dst +
                          "'");
        if (s.src == s.dst)
            return reject("message '" + s.name +
                          "' has identical source and "
                          "destination task");
        if (!(s.bytes > 0.0))
            return reject("message '" + s.name +
                          "' must have positive bytes");
    }

    TaskFlowGraph g2 = g_;
    for (const AdmitSpec &s : specs)
        g2.addMessage(s.name, findTask(g2, s.src),
                      findTask(g2, s.dst), s.bytes);

    SolveOutcome out =
        solveWorkload(g2, cfg_.compiler.inputPeriod, true);
    res = out.res;
    if (out.ok) {
        publish(std::move(out.next), res.period);
        res.accepted = true;
        metrics::Registry &reg =
            engine::resolve(cfg_.compiler.ctx).metricsRegistry();
        bump(reg, "online.admitted");
        bump(reg, "online.messages_admitted",
             static_cast<std::uint64_t>(specs.size()));
    }
    return finish(res, what, t0, true);
}

RequestResult
OnlineScheduler::remove(const std::string &msgName)
{
    const double t0 = trace::Tracer::nowWallUs();
    RequestResult res;
    res.period = cfg_.compiler.inputPeriod;
    if (!started()) {
        res.reason = RejectReason::InvalidRequest;
        res.detail = "service not started";
        return finish(res, "remove", t0, false);
    }
    if (!hasMessage(g_, msgName)) {
        res.reason = RejectReason::InvalidRequest;
        res.detail = "no message named '" + msgName + "'";
        return finish(res, "remove", t0, false);
    }

    // Rebuild without the message; task ids are preserved because
    // addTask assigns them sequentially.
    TaskFlowGraph g2;
    for (const Task &t : g_.tasks())
        g2.addTask(t.name, t.operations);
    for (const Message &m : g_.messages())
        if (m.name != msgName)
            g2.addMessage(m.name, m.src, m.dst, m.bytes);

    SolveOutcome out =
        solveWorkload(g2, cfg_.compiler.inputPeriod, true);
    res = out.res;
    if (out.ok) {
        publish(std::move(out.next), res.period);
        res.accepted = true;
        bump(engine::resolve(cfg_.compiler.ctx).metricsRegistry(),
             "online.removed");
    }
    return finish(res, "remove", t0, false);
}

RequestResult
OnlineScheduler::updatePeriod(Time period)
{
    const double t0 = trace::Tracer::nowWallUs();
    RequestResult res;
    res.period = cfg_.compiler.inputPeriod;
    if (!started()) {
        res.reason = RejectReason::InvalidRequest;
        res.detail = "service not started";
        return finish(res, "period", t0, false);
    }
    if (!(period > 0.0)) {
        res.reason = RejectReason::InvalidRequest;
        res.detail = "period must be positive";
        return finish(res, "period", t0, false);
    }

    // A period change moves every message's windows, so there is
    // nothing to reuse: this is a full compile (or a cache hit).
    SolveOutcome out = solveWorkload(g_, period, false);
    res = out.res;
    if (out.ok) {
        publish(std::move(out.next), period);
        res.accepted = true;
        res.period = period;
        bump(engine::resolve(cfg_.compiler.ctx).metricsRegistry(),
             "online.period_updates");
    } else {
        res.period = cfg_.compiler.inputPeriod;
    }
    return finish(res, "period", t0, false);
}

RequestResult
OnlineScheduler::injectFault(const std::string &spec)
{
    const double t0 = trace::Tracer::nowWallUs();
    RequestResult res;
    res.period = cfg_.compiler.inputPeriod;
    const auto invalid = [&](std::string detail) {
        res.reason = RejectReason::InvalidRequest;
        res.detail = std::move(detail);
        return finish(res, "fault", t0, false);
    };
    if (!started())
        return invalid("service not started");

    fault::FaultSpec fs;
    try {
        fs = fault::parseFaultSpec(spec);
    } catch (const FatalError &e) {
        return invalid(e.what());
    }
    for (const fault::FaultEvent &ev : fs.events)
        if (ev.timed())
            return invalid(
                "timed fault events are not supported online");

    // InjectFault is transactional: apply the new mask, repair,
    // and on failure restore the fabric so the published schedule
    // stays valid for the hardware it describes.
    const auto restoreFabric = [&]() {
        topo_->clearFaults();
        if (!faultSpecAccum_.empty())
            fault::applyFaultSpec(faultSpecAccum_, *topo_);
    };
    try {
        fault::applyFaultSpec(spec, *topo_);
    } catch (const FatalError &e) {
        restoreFabric();
        return invalid(e.what());
    }

    const std::shared_ptr<const PublishedState> prior = published();
    SrCompileResult healthy;
    healthy.feasible = true;
    healthy.bounds = prior->bounds;
    if (prior->intervals)
        healthy.intervals.emplace(*prior->intervals);
    healthy.paths = prior->omega.paths;
    healthy.omega = prior->omega;
    healthy.verification = prior->verification;
    healthy.numSubsets = prior->numSubsets;

    SrCompilerConfig ccfg = cfg_.compiler;
    fault::RepairOptions ropts = cfg_.repair;
    const std::string accum2 =
        faultSpecAccum_.empty() ? spec
                                : faultSpecAccum_ + ";" + spec;
    ropts.faultSpec = accum2;

    const fault::RepairResult rep = fault::repairSchedule(
        prior->g, *topo_, alloc_, tm_, ccfg, healthy, ropts);
    res.subsetsTotal = rep.subsetsTotal;
    res.subsetsResolved = rep.subsetsResolved;
    res.subsetsCopied = rep.subsetsReused;
    res.usedIncremental = rep.usedIncremental;
    res.usedFullCompile = rep.usedFullRecompile;

    if (!rep.feasible) {
        restoreFabric();
        res.reason = RejectReason::InfeasibleSubset;
        res.detail = rep.detail.empty()
                         ? "repair found no feasible schedule"
                         : rep.detail;
        return finish(res, "fault", t0, false);
    }

    faultSpecAccum_ = accum2;
    auto next = std::make_shared<PublishedState>();
    if (rep.shedMessages.empty()) {
        next->g = prior->g;
    } else {
        // Shed messages leave the workload for good.
        for (const Task &t : prior->g.tasks())
            next->g.addTask(t.name, t.operations);
        for (const Message &m : prior->g.messages())
            if (std::find(rep.shedMessages.begin(),
                          rep.shedMessages.end(),
                          m.id) == rep.shedMessages.end())
                next->g.addMessage(m.name, m.src, m.dst, m.bytes);
    }
    if (rep.usedIncremental) {
        next->bounds = prior->bounds;
        if (prior->intervals)
            next->intervals.emplace(*prior->intervals);
        next->numSubsets = prior->numSubsets;
    } else {
        next->bounds = rep.compile.bounds;
        if (rep.compile.intervals)
            next->intervals.emplace(*rep.compile.intervals);
        next->numSubsets = rep.compile.numSubsets;
    }
    next->omega = rep.omega;
    next->verification = rep.verification;
    if (next->intervals) {
        UtilizationAnalyzer ua(next->bounds, *next->intervals,
                               *topo_);
        next->peakUtilization =
            ua.analyze(next->omega.paths).peak;
    }
    res.peakUtilization = next->peakUtilization;
    res.period = rep.degradedPeriod;

    publish(std::move(next), rep.degradedPeriod);
    res.accepted = true;
    bump(engine::resolve(cfg_.compiler.ctx).metricsRegistry(),
         "online.faults_injected");
    return finish(res, "fault", t0, false);
}

} // namespace online
} // namespace srsim
