#include "metrics/metrics.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/json.hh"
#include "util/logging.hh"

namespace srsim {
namespace metrics {

std::atomic<bool> Registry::enabled_{false};

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), buckets_(bounds_.size() + 1)
{
    SRSIM_ASSERT(!bounds_.empty(), "histogram needs bucket bounds");
    SRSIM_ASSERT(std::is_sorted(bounds_.begin(), bounds_.end()),
                 "histogram bounds must ascend");
    min_.store(std::numeric_limits<double>::infinity());
    max_.store(-std::numeric_limits<double>::infinity());
}

void
Histogram::add(double v)
{
    SRSIM_ASSERT(!std::isnan(v), "NaN histogram sample");
    if (parent_ != nullptr)
        parent_->add(v);
    const auto it =
        std::lower_bound(bounds_.begin(), bounds_.end(), v);
    const std::size_t i =
        static_cast<std::size_t>(it - bounds_.begin());
    buckets_[i].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    // fetch_add on atomic<double> requires C++20 but not all
    // libstdc++ versions provide it lock-free; CAS is portable.
    double s = sum_.load(std::memory_order_relaxed);
    while (!sum_.compare_exchange_weak(s, s + v,
                                       std::memory_order_relaxed)) {
    }
    {
        std::lock_guard<std::mutex> lock(extremaMu_);
        if (v < min_.load(std::memory_order_relaxed))
            min_.store(v, std::memory_order_relaxed);
        if (v > max_.load(std::memory_order_relaxed))
            max_.store(v, std::memory_order_relaxed);
    }
}

std::uint64_t
Histogram::count() const
{
    return count_.load(std::memory_order_relaxed);
}

double
Histogram::sum() const
{
    return sum_.load(std::memory_order_relaxed);
}

double
Histogram::mean() const
{
    const std::uint64_t n = count();
    return n == 0 ? 0.0 : sum() / static_cast<double>(n);
}

double
Histogram::min() const
{
    return min_.load(std::memory_order_relaxed);
}

double
Histogram::max() const
{
    return max_.load(std::memory_order_relaxed);
}

std::uint64_t
Histogram::bucketCount(std::size_t i) const
{
    SRSIM_ASSERT(i < buckets_.size(), "bucket index out of range");
    return buckets_[i].load(std::memory_order_relaxed);
}

double
Histogram::percentile(double p) const
{
    SRSIM_ASSERT(p >= 0.0 && p <= 100.0, "percentile out of range");
    const std::uint64_t n = count();
    if (n == 0)
        return 0.0;
    const double target = p / 100.0 * static_cast<double>(n);
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
        const std::uint64_t c = bucketCount(i);
        if (c == 0)
            continue;
        if (static_cast<double>(seen + c) >= target) {
            // Interpolate inside bucket i; clamp to the recorded
            // extrema so percentiles never leave [min, max].
            const double lo =
                i == 0 ? min() : bounds_[i - 1];
            const double hi = i < bounds_.size()
                                  ? bounds_[i]
                                  : max();
            const double frac =
                c == 0 ? 0.0
                       : (target - static_cast<double>(seen)) /
                             static_cast<double>(c);
            const double v =
                lo + (hi - lo) * std::clamp(frac, 0.0, 1.0);
            return std::clamp(v, min(), max());
        }
        seen += c;
    }
    return max();
}

std::vector<double>
Histogram::timeBucketsMs()
{
    std::vector<double> b;
    for (double v = 0.01; v <= 60000.0; v *= 2.0)
        b.push_back(v);
    return b;
}

std::vector<double>
Histogram::timeBucketsUs()
{
    std::vector<double> b;
    for (double v = 0.1; v <= 1e7; v *= 2.0)
        b.push_back(v);
    return b;
}

void
LinkTimeline::occupy(std::int32_t link, double start, double end)
{
    SRSIM_ASSERT(link >= 0, "negative link id");
    if (end <= start)
        return;
    if (parent_ != nullptr)
        parent_->occupy(link, start, end);
    std::lock_guard<std::mutex> lock(mu_);
    const std::size_t idx = static_cast<std::size_t>(link);
    if (idx >= busy_.size())
        busy_.resize(idx + 1, 0.0);
    busy_[idx] += end - start;
    horizon_ = std::max(horizon_, end);
}

std::size_t
LinkTimeline::numLinks() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return busy_.size();
}

double
LinkTimeline::busyTime(std::int32_t link) const
{
    std::lock_guard<std::mutex> lock(mu_);
    const std::size_t idx = static_cast<std::size_t>(link);
    return idx < busy_.size() ? busy_[idx] : 0.0;
}

double
LinkTimeline::horizon() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return horizon_;
}

std::vector<double>
LinkTimeline::utilization(double horizon) const
{
    std::lock_guard<std::mutex> lock(mu_);
    const double h = horizon > 0.0 ? horizon : horizon_;
    std::vector<double> out(busy_.size(), 0.0);
    if (h <= 0.0)
        return out;
    for (std::size_t i = 0; i < busy_.size(); ++i)
        out[i] = busy_[i] / h;
    return out;
}

Registry &
Registry::global()
{
    static Registry r;
    return r;
}

void
Registry::setEnabled(bool on)
{
    enabled_.store(on, std::memory_order_relaxed);
}

// Child lookups resolve the parent metric OUTSIDE the child lock:
// lock order is strictly child -> parent (a parent never reaches
// into a child), so nested acquisition cannot deadlock.
Counter &
Registry::counter(const std::string &name)
{
    Counter *up =
        parent_ != nullptr ? &parent_->counter(name) : nullptr;
    std::lock_guard<std::mutex> lock(mu_);
    auto &slot = counters_[name];
    if (!slot) {
        slot = std::make_unique<Counter>();
        slot->parent_ = up;
    }
    return *slot;
}

Gauge &
Registry::gauge(const std::string &name)
{
    Gauge *up =
        parent_ != nullptr ? &parent_->gauge(name) : nullptr;
    std::lock_guard<std::mutex> lock(mu_);
    auto &slot = gauges_[name];
    if (!slot) {
        slot = std::make_unique<Gauge>();
        slot->parent_ = up;
    }
    return *slot;
}

Histogram &
Registry::histogram(const std::string &name,
                    std::vector<double> bounds)
{
    Histogram *up = parent_ != nullptr
                        ? &parent_->histogram(name, bounds)
                        : nullptr;
    std::lock_guard<std::mutex> lock(mu_);
    auto &slot = histograms_[name];
    if (!slot) {
        slot = std::make_unique<Histogram>(std::move(bounds));
        slot->parent_ = up;
    }
    return *slot;
}

LinkTimeline &
Registry::timeline(const std::string &name)
{
    LinkTimeline *up =
        parent_ != nullptr ? &parent_->timeline(name) : nullptr;
    std::lock_guard<std::mutex> lock(mu_);
    auto &slot = timelines_[name];
    if (!slot) {
        slot = std::make_unique<LinkTimeline>();
        slot->parent_ = up;
    }
    return *slot;
}

void
Registry::clear()
{
    std::lock_guard<std::mutex> lock(mu_);
    counters_.clear();
    gauges_.clear();
    histograms_.clear();
    timelines_.clear();
}

std::vector<std::pair<std::string, std::uint64_t>>
Registry::counterSnapshot() const
{
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<std::pair<std::string, std::uint64_t>> out;
    out.reserve(counters_.size());
    for (const auto &[name, c] : counters_)
        out.emplace_back(name, c->value());
    return out;
}

void
Registry::exportJson(std::ostream &os) const
{
    std::lock_guard<std::mutex> lock(mu_);
    JsonWriter w(os);
    w.beginObject();

    w.key("counters").beginObject();
    for (const auto &[name, c] : counters_)
        w.kv(name, c->value());
    w.endObject();

    w.key("gauges").beginObject();
    for (const auto &[name, g] : gauges_)
        w.kv(name, g->value());
    w.endObject();

    w.key("histograms").beginObject();
    for (const auto &[name, h] : histograms_) {
        w.key(name).beginObject();
        w.kv("count", h->count());
        if (h->count() > 0) {
            w.kv("min", h->min());
            w.kv("max", h->max());
            w.kv("mean", h->mean());
            w.kv("p50", h->percentile(50.0));
            w.kv("p95", h->percentile(95.0));
            w.kv("p99", h->percentile(99.0));
        }
        w.key("buckets").beginArray();
        for (std::size_t i = 0; i <= h->bounds().size(); ++i) {
            if (h->bucketCount(i) == 0)
                continue; // sparse: skip empty buckets
            w.beginObject();
            w.kv("le", i < h->bounds().size()
                           ? h->bounds()[i]
                           : std::numeric_limits<double>::infinity());
            w.kv("count", h->bucketCount(i));
            w.endObject();
        }
        w.endArray();
        w.endObject();
    }
    w.endObject();

    w.key("timelines").beginObject();
    for (const auto &[name, t] : timelines_) {
        w.key(name).beginObject();
        w.kv("horizon_us", t->horizon());
        w.key("links").beginArray();
        const std::vector<double> util = t->utilization();
        for (std::size_t l = 0; l < util.size(); ++l) {
            w.beginObject();
            w.kv("link", l);
            w.kv("busy_us",
                 t->busyTime(static_cast<std::int32_t>(l)));
            w.kv("utilization", util[l]);
            w.endObject();
        }
        w.endArray();
        w.endObject();
    }
    w.endObject();

    w.endObject();
    os << "\n";
}

} // namespace metrics
} // namespace srsim
