/**
 * @file
 * Named metrics registry: counters, gauges, fixed-bucket histograms
 * (p50/p95/p99), and a per-link utilization timeline.
 *
 * Where src/trace answers "what happened when", metrics answer "how
 * much / how long overall": restart-walk counts, compiler phase
 * times, wormhole block counts, and — the Fig. 5/6 picture from an
 * *actual run* rather than the compiler's estimate — the fraction of
 * the simulated horizon each link actually carried data.
 *
 * Like the tracer, the registry is disabled by default; every
 * instrumentation site checks `Registry::enabled()` (an inlined
 * relaxed atomic load), so the disabled path does no allocation, no
 * locking, and no map lookups. Counter/gauge/histogram updates are
 * atomic, hence thread-safe under the experiment sweeps, and
 * commutative, so totals are thread-count-independent.
 */

#ifndef SRSIM_METRICS_METRICS_HH_
#define SRSIM_METRICS_METRICS_HH_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

namespace srsim {
namespace metrics {

/**
 * Monotonic event count. A counter created by a child registry
 * carries a pointer to the same-named counter of the parent and
 * writes through, so parent totals equal the sum over children plus
 * the parent's own direct bumps.
 */
class Counter
{
  public:
    void
    add(std::uint64_t n = 1)
    {
        v_.fetch_add(n, std::memory_order_relaxed);
        if (parent_ != nullptr)
            parent_->add(n);
    }

    std::uint64_t
    value() const
    {
        return v_.load(std::memory_order_relaxed);
    }

  private:
    friend class Registry;
    std::atomic<std::uint64_t> v_{0};
    Counter *parent_ = nullptr;
};

/** Last-written value; child gauges write through to the parent. */
class Gauge
{
  public:
    void
    set(double v)
    {
        v_.store(v, std::memory_order_relaxed);
        if (parent_ != nullptr)
            parent_->set(v);
    }

    double
    value() const
    {
        return v_.load(std::memory_order_relaxed);
    }

  private:
    friend class Registry;
    std::atomic<double> v_{0.0};
    Gauge *parent_ = nullptr;
};

/**
 * Fixed-bucket histogram. Bucket i counts samples v with
 * bounds[i-1] < v <= bounds[i]; one overflow bucket catches the
 * rest. Percentiles interpolate linearly inside the bucket.
 */
class Histogram
{
  public:
    explicit Histogram(std::vector<double> bounds);

    void add(double v);

    std::uint64_t count() const;
    double sum() const;
    double mean() const;
    double min() const;
    double max() const;

    /** @param p percentile in [0, 100]. */
    double percentile(double p) const;

    const std::vector<double> &bounds() const { return bounds_; }
    std::uint64_t bucketCount(std::size_t i) const;

    /** Default bounds for millisecond phase timings (0.01ms..60s). */
    static std::vector<double> timeBucketsMs();
    /** Default bounds for microsecond sim durations. */
    static std::vector<double> timeBucketsUs();

  private:
    friend class Registry;
    std::vector<double> bounds_;
    /** bounds_.size() + 1 buckets (last = overflow). */
    std::vector<std::atomic<std::uint64_t>> buckets_;
    std::atomic<std::uint64_t> count_{0};
    std::atomic<double> sum_{0.0};
    std::atomic<double> min_{0.0};
    std::atomic<double> max_{0.0};
    mutable std::mutex extremaMu_;
    Histogram *parent_ = nullptr;
};

/**
 * Per-link busy-time accumulator: the measured counterpart of the
 * compiler's spot-utilization estimate. occupy() adds one window of
 * actual data flow on a link; utilization() divides each link's busy
 * time by the observed horizon (or an explicit one).
 */
class LinkTimeline
{
  public:
    /** Record [start, end) of data flow on link l. */
    void occupy(std::int32_t link, double start, double end);

    std::size_t numLinks() const;
    double busyTime(std::int32_t link) const;
    /** Latest window end observed. */
    double horizon() const;

    /**
     * Busy fraction per link over `horizon` (defaults to the
     * observed horizon when <= 0).
     */
    std::vector<double> utilization(double horizon = 0.0) const;

  private:
    friend class Registry;
    mutable std::mutex mu_;
    std::vector<double> busy_;
    double horizon_ = 0.0;
    LinkTimeline *parent_ = nullptr;
};

/**
 * Named registry. The process-wide instance (global()) remains for
 * the default engine context; per-tenant isolation constructs child
 * registries parented to it. A child's metrics write through to the
 * same-named parent metric, so aggregates stay exact while each
 * child exposes only its own activity. A parent must outlive — and
 * must not be clear()ed under — its live children.
 */
class Registry
{
  public:
    /** A standalone (parent == nullptr) or child registry. */
    explicit Registry(Registry *parent = nullptr)
        : parent_(parent)
    {
    }

    static Registry &global();

    static bool
    enabled()
    {
        return enabled_.load(std::memory_order_relaxed);
    }

    static void setEnabled(bool on);

    Counter &counter(const std::string &name);
    Gauge &gauge(const std::string &name);
    Histogram &histogram(const std::string &name,
                         std::vector<double> bounds);
    LinkTimeline &timeline(const std::string &name);

    /** Remove every registered metric. */
    void clear();

    /** Name-sorted snapshot of every counter's value. */
    std::vector<std::pair<std::string, std::uint64_t>>
    counterSnapshot() const;

    /**
     * One JSON document: counters, gauges, histograms (with
     * p50/p95/p99 and buckets), and per-link utilization per
     * timeline — all sorted by name for deterministic output.
     */
    void exportJson(std::ostream &os) const;

  private:
    static std::atomic<bool> enabled_;

    Registry *parent_ = nullptr;
    mutable std::mutex mu_;
    std::map<std::string, std::unique_ptr<Counter>> counters_;
    std::map<std::string, std::unique_ptr<Gauge>> gauges_;
    std::map<std::string, std::unique_ptr<Histogram>> histograms_;
    std::map<std::string, std::unique_ptr<LinkTimeline>> timelines_;
};

} // namespace metrics
} // namespace srsim

#define SRSIM_METRICS_ENABLED() (::srsim::metrics::Registry::enabled())

/** Statement guard: runs stmt only when metrics are enabled. */
#define SRSIM_METRICS_IF(stmt)                                        \
    do {                                                              \
        if (SRSIM_METRICS_ENABLED()) {                                \
            stmt;                                                     \
        }                                                             \
    } while (0)

#endif // SRSIM_METRICS_METRICS_HH_
