/**
 * @file
 * Experiment harness for reproducing the paper's evaluation
 * (Sec. 6, Figs. 5-10).
 *
 * Methodology, exactly as in the paper:
 *  - workload: the DVB TFG, allocated once per fabric;
 *  - twelve input periods tau_in in [tau_c, 5 tau_c];
 *  - normalized load       = tau_c / tau_in,
 *    normalized throughput = tau_in / tau_out,
 *    normalized latency    = Lambda / Delta (Delta = critical path);
 *  - wormhole routing is *simulated* over many invocations; output
 *    inconsistency shows as min/avg/max spikes of the throughput and
 *    latency series;
 *  - scheduled routing is *computed*; where a feasible Omega exists
 *    its throughput is constant (verified by the executor) and its
 *    latency is the critical path of the tau_c-window schedule.
 */

#ifndef SRSIM_EXP_EXPERIMENT_HH_
#define SRSIM_EXP_EXPERIMENT_HH_

#include <ostream>
#include <string>
#include <vector>

#include "core/sr_compiler.hh"
#include "mapping/allocation.hh"
#include "tfg/tfg.hh"
#include "tfg/timing.hh"
#include "topology/topology.hh"
#include "wormhole/wormhole.hh"

namespace srsim {

namespace engine {
class EngineContext;
}

/** Shared experiment knobs. */
struct ExperimentConfig
{
    int numLoadPoints = 12;
    /** Largest period as a multiple of tau_c. */
    double maxPeriodFactor = 5.0;
    int invocations = 60;
    int warmup = 10;
    SrCompilerConfig sr;
    /**
     * Engine context the sweep runs under (thread pool, tracer,
     * metrics, solver kind); load points also compile and simulate
     * under it. nullptr uses the process default context.
     */
    const engine::EngineContext *ctx = nullptr;
};

/** One load point of a Fig. 7-10 style experiment. */
struct LoadPoint
{
    double load = 0.0;
    Time inputPeriod = 0.0;

    // Wormhole routing (simulated).
    bool wrDeadlocked = false;
    bool wrInconsistent = false;
    double wrThrMin = 0.0, wrThrAvg = 0.0, wrThrMax = 0.0;
    double wrLatMin = 0.0, wrLatAvg = 0.0, wrLatMax = 0.0;

    // Scheduled routing (computed).
    bool srFeasible = false;
    SrFailureStage srStage = SrFailureStage::None;
    double srPeakU = 0.0;
    double srThroughput = 0.0;
    double srLatency = 0.0;
};

/** One load point of a Fig. 5/6 style utilization experiment. */
struct UtilizationPoint
{
    double load = 0.0;
    Time inputPeriod = 0.0;
    /** Peak U of the LSD-to-MSD routing-function assignment. */
    double uLsdToMsd = 0.0;
    /** Peak U after AssignPaths. */
    double uAssignPaths = 0.0;
};

/** The twelve input periods of the paper's sweep. */
std::vector<Time>
loadSweepPeriods(Time tauC, const ExperimentConfig &cfg);

/**
 * Figs. 5/6: peak utilization versus load, LSD-to-MSD versus
 * AssignPaths, for one fabric at one bandwidth.
 */
std::vector<UtilizationPoint>
runUtilizationExperiment(const TaskFlowGraph &g, const Topology &topo,
                         const TaskAllocation &alloc,
                         const TimingModel &tm,
                         const ExperimentConfig &cfg);

/**
 * Figs. 7-10: throughput/latency of WR (simulated) and SR
 * (computed + executed) versus load for one fabric at one bandwidth.
 */
std::vector<LoadPoint>
runThroughputExperiment(const TaskFlowGraph &g, const Topology &topo,
                        const TaskAllocation &alloc,
                        const TimingModel &tm,
                        const ExperimentConfig &cfg);

/** Print a utilization series in the paper's terms. */
void
printUtilizationSeries(std::ostream &os, const std::string &title,
                       const std::vector<UtilizationPoint> &points);

/** Print a throughput/latency series in the paper's terms. */
void
printThroughputSeries(std::ostream &os, const std::string &title,
                      const std::vector<LoadPoint> &points);

/**
 * Machine-readable mirror of printUtilizationSeries: one JSON
 * object `{"title": ..., "points": [...]}` with every field of
 * every UtilizationPoint, for plotting pipelines.
 */
void
writeUtilizationJson(std::ostream &os, const std::string &title,
                     const std::vector<UtilizationPoint> &points);

/**
 * Machine-readable mirror of printThroughputSeries: one JSON
 * object with every field of every LoadPoint per load point.
 */
void
writeThroughputJson(std::ostream &os, const std::string &title,
                    const std::vector<LoadPoint> &points);

} // namespace srsim

#endif // SRSIM_EXP_EXPERIMENT_HH_
