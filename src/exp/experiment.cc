#include "exp/experiment.hh"

#include <algorithm>

#include "core/intervals.hh"
#include "core/sr_executor.hh"
#include "engine/context.hh"
#include "util/json.hh"
#include "util/logging.hh"
#include "util/table.hh"
#include "util/thread_pool.hh"

namespace srsim {

std::vector<Time>
loadSweepPeriods(Time tauC, const ExperimentConfig &cfg)
{
    SRSIM_ASSERT(cfg.numLoadPoints >= 2, "need at least two points");
    std::vector<Time> out;
    for (int i = 0; i < cfg.numLoadPoints; ++i) {
        const double f =
            1.0 + (cfg.maxPeriodFactor - 1.0) *
                      (static_cast<double>(i) /
                       (cfg.numLoadPoints - 1));
        out.push_back(tauC * f);
    }
    return out;
}

std::vector<UtilizationPoint>
runUtilizationExperiment(const TaskFlowGraph &g, const Topology &topo,
                         const TaskAllocation &alloc,
                         const TimingModel &tm,
                         const ExperimentConfig &cfg)
{
    const Time tau_c = tm.tauC(g);
    const std::vector<Time> periods = loadSweepPeriods(tau_c, cfg);

    // Load points are independent; evaluate them concurrently, each
    // into its own slot, so the (ascending-load) series is identical
    // for every thread count.
    std::vector<UtilizationPoint> out(periods.size());
    const engine::EngineContext &ectx = engine::resolve(cfg.ctx);
    ectx.pool().parallelFor(
        periods.size(), [&](std::size_t i) {
            const Time period = periods[i];
            UtilizationPoint pt;
            pt.inputPeriod = period;
            pt.load = tau_c / period;

            const TimeBounds bounds =
                computeTimeBounds(g, alloc, tm, period);
            const IntervalSet ivs(bounds);
            UtilizationAnalyzer ua(bounds, ivs, topo);

            AssignPathsOptions aopts = cfg.sr.assign;
            if (aopts.ctx == nullptr)
                aopts.ctx = &ectx;
            pt.uLsdToMsd =
                ua.analyze(
                      lsdToMsdAssignment(g, topo, alloc, bounds))
                    .peak;
            pt.uAssignPaths =
                assignPaths(g, topo, alloc, bounds, ivs, aopts)
                    .report.peak;
            out[i] = pt;
        });
    std::reverse(out.begin(), out.end()); // ascending load
    return out;
}

std::vector<LoadPoint>
runThroughputExperiment(const TaskFlowGraph &g, const Topology &topo,
                        const TaskAllocation &alloc,
                        const TimingModel &tm,
                        const ExperimentConfig &cfg)
{
    const Time tau_c = tm.tauC(g);
    const InvocationTiming canon = computeInvocationTiming(g, tm);
    const Time delta = canon.criticalPath;
    const std::vector<Time> periods = loadSweepPeriods(tau_c, cfg);

    // Each load point runs a full WR simulation plus an SR compile;
    // both are self-contained, so the sweep parallelizes across
    // points (and each SR compile parallelizes internally — the
    // pool's parallelFor nests without deadlock).
    std::vector<LoadPoint> out(periods.size());
    const engine::EngineContext &ectx = engine::resolve(cfg.ctx);
    ectx.pool().parallelFor(
        periods.size(), [&](std::size_t idx) {
        const Time period = periods[idx];
        LoadPoint pt;
        pt.inputPeriod = period;
        pt.load = tau_c / period;

        // --- Wormhole routing: simulate.
        WormholeSimulator wsim(g, topo, alloc, tm);
        WormholeConfig wcfg;
        wcfg.ctx = &ectx;
        wcfg.inputPeriod = period;
        wcfg.invocations = cfg.invocations;
        wcfg.warmup = cfg.warmup;
        const WormholeResult wr = wsim.run(wcfg);
        pt.wrDeadlocked = wr.deadlocked;
        pt.wrInconsistent = wr.outputInconsistent(cfg.warmup);
        if (!wr.deadlocked) {
            const SeriesStats thr = wr.outputIntervals(cfg.warmup);
            const SeriesStats lat = wr.latencies(cfg.warmup);
            // Normalized throughput tau_in / tau_out: the *min*
            // output interval yields the max throughput spike.
            pt.wrThrMin = period / thr.max();
            pt.wrThrAvg = period / thr.mean();
            pt.wrThrMax = period / thr.min();
            pt.wrLatMin = lat.min() / delta;
            pt.wrLatAvg = lat.mean() / delta;
            pt.wrLatMax = lat.max() / delta;
        }

        // --- Scheduled routing: compile (and execute if feasible).
        SrCompilerConfig scfg = cfg.sr;
        if (scfg.ctx == nullptr)
            scfg.ctx = &ectx;
        scfg.inputPeriod = period;
        const SrCompileResult sr = compileScheduledRouting(
            g, topo, alloc, tm, scfg);
        pt.srStage = sr.stage;
        pt.srPeakU = sr.utilization.peak;
        pt.srFeasible = sr.feasible;
        if (sr.feasible) {
            const SrExecutionResult ex = executeSchedule(
                g, alloc, tm, sr.bounds, sr.omega,
                cfg.invocations, &ectx);
            SRSIM_ASSERT(ex.consistent(cfg.warmup),
                         "verified schedule must give constant "
                         "throughput");
            pt.srThroughput =
                period / ex.outputIntervals(cfg.warmup).mean();
            pt.srLatency =
                ex.latencies(cfg.warmup).mean() / delta;
        }
        out[idx] = pt;
        });
    std::reverse(out.begin(), out.end()); // ascending load
    return out;
}

void
printUtilizationSeries(std::ostream &os, const std::string &title,
                       const std::vector<UtilizationPoint> &points)
{
    os << title << "\n";
    Table t({"load", "U (LSD to MSD)", "U (AssignPaths final)",
             "SR attemptable"});
    for (const UtilizationPoint &p : points) {
        t.addRow({Table::num(p.load), Table::num(p.uLsdToMsd),
                  Table::num(p.uAssignPaths),
                  p.uAssignPaths <= 1.0 + 1e-9 ? "yes" : "no"});
    }
    t.print(os);
    os << "\n";
}

void
printThroughputSeries(std::ostream &os, const std::string &title,
                      const std::vector<LoadPoint> &points)
{
    os << title << "\n";
    Table t({"load", "thr,wh min/avg/max", "lat,wh min/avg/max",
             "OI(wh)", "thr,sch", "lat,sch", "sch status"});
    for (const LoadPoint &p : points) {
        std::string wr_thr, wr_lat, oi;
        if (p.wrDeadlocked) {
            wr_thr = wr_lat = "deadlock";
            oi = "yes";
        } else {
            wr_thr = Table::num(p.wrThrMin, 3) + "/" +
                     Table::num(p.wrThrAvg, 3) + "/" +
                     Table::num(p.wrThrMax, 3);
            wr_lat = Table::num(p.wrLatMin, 3) + "/" +
                     Table::num(p.wrLatAvg, 3) + "/" +
                     Table::num(p.wrLatMax, 3);
            oi = p.wrInconsistent ? "yes" : "no";
        }
        std::string sthr, slat, status;
        if (p.srFeasible) {
            sthr = Table::num(p.srThroughput, 3);
            slat = Table::num(p.srLatency, 3);
            status = "feasible";
        } else {
            sthr = slat = "-";
            status = std::string("fail:") +
                     srFailureStageName(p.srStage);
        }
        t.addRow({Table::num(p.load, 4), wr_thr, wr_lat, oi, sthr,
                  slat, status});
    }
    t.print(os);
    os << "\n";
}

void
writeUtilizationJson(std::ostream &os, const std::string &title,
                     const std::vector<UtilizationPoint> &points)
{
    JsonWriter w(os);
    w.beginObject();
    w.kv("title", title);
    w.kv("kind", "utilization");
    w.key("points").beginArray();
    for (const UtilizationPoint &p : points) {
        w.beginObject();
        w.kv("load", p.load);
        w.kv("input_period_us", p.inputPeriod);
        w.kv("u_lsd_to_msd", p.uLsdToMsd);
        w.kv("u_assign_paths", p.uAssignPaths);
        w.kv("sr_attemptable", p.uAssignPaths <= 1.0 + 1e-9);
        w.endObject();
    }
    w.endArray();
    w.endObject();
    os << "\n";
}

void
writeThroughputJson(std::ostream &os, const std::string &title,
                    const std::vector<LoadPoint> &points)
{
    JsonWriter w(os);
    w.beginObject();
    w.kv("title", title);
    w.kv("kind", "throughput");
    w.key("points").beginArray();
    for (const LoadPoint &p : points) {
        w.beginObject();
        w.kv("load", p.load);
        w.kv("input_period_us", p.inputPeriod);
        w.key("wormhole").beginObject();
        w.kv("deadlocked", p.wrDeadlocked);
        w.kv("output_inconsistent", p.wrInconsistent);
        if (!p.wrDeadlocked) {
            w.key("throughput").beginObject();
            w.kv("min", p.wrThrMin);
            w.kv("avg", p.wrThrAvg);
            w.kv("max", p.wrThrMax);
            w.endObject();
            w.key("latency").beginObject();
            w.kv("min", p.wrLatMin);
            w.kv("avg", p.wrLatAvg);
            w.kv("max", p.wrLatMax);
            w.endObject();
        }
        w.endObject();
        w.key("scheduled").beginObject();
        w.kv("feasible", p.srFeasible);
        w.kv("stage", srFailureStageName(p.srStage));
        w.kv("peak_utilization", p.srPeakU);
        if (p.srFeasible) {
            w.kv("throughput", p.srThroughput);
            w.kv("latency", p.srLatency);
        }
        w.endObject();
        w.endObject();
    }
    w.endArray();
    w.endObject();
    os << "\n";
}

} // namespace srsim
