/**
 * @file
 * Wormhole-routing simulator for task-level pipelining (Sec. 3).
 *
 * Model (the paper's): each message follows the deterministic
 * LSD-to-MSD route; link arbitration is first-come-first-served; a
 * message acquires its links in path order, holds every acquired link
 * while blocked (wormhole back-pressure), transmits for m/B once the
 * whole path is set up (transmission time is insensitive to distance
 * after path setup), and releases all links on delivery. Links are
 * bidirectional half-duplex: one message at a time, either direction.
 *
 * The TFG is invoked every inputPeriod; an invocation's input tasks
 * become ready at j * inputPeriod, a task runs on its node's single
 * application processor (FCFS when instances of successive
 * invocations pile up), and sends its messages when it completes.
 * The simulator records per-invocation completion times, from which
 * the harness derives the output-interval/latency spikes of
 * Figs. 7-10 and the output-inconsistency verdict.
 *
 * Deadlock (possible on tori under pure path-holding) is detected via
 * a wait-for cycle check and reported, never silently ignored.
 */

#ifndef SRSIM_WORMHOLE_WORMHOLE_HH_
#define SRSIM_WORMHOLE_WORMHOLE_HH_

#include <map>
#include <string>
#include <vector>

#include "mapping/allocation.hh"
#include "sim/stats.hh"
#include "tfg/tfg.hh"
#include "tfg/timing.hh"
#include "topology/topology.hh"
#include "util/time.hh"

namespace srsim {

namespace engine {
class EngineContext;
}

/** Run parameters for a wormhole simulation. */
struct WormholeConfig
{
    /** Invocation period tau_in (microseconds). */
    Time inputPeriod = 0.0;
    /** Total invocations to simulate. */
    int invocations = 60;
    /** Leading invocations excluded from statistics (pipe fill). */
    int warmup = 10;
    /**
     * Virtual channels per physical link (the paper's "stricter
     * model", Sec. 6): each physical channel is multiplexed among
     * this many virtual channels, so a link admits that many
     * messages simultaneously but the bandwidth available to each
     * message is divided by the same factor. 1 = the paper's plain
     * capture model.
     */
    int virtualChannels = 1;
    /**
     * Progressive-filling refinement of the virtual-channel model:
     * instead of dividing the bandwidth by the channel count
     * unconditionally, a link's bandwidth is split evenly among
     * the messages *currently flowing* across it and a message's
     * rate is set by its most-contended link, recomputed whenever
     * the sharing pattern changes. Requires virtualChannels >= 2.
     */
    bool fairShare = false;
    /**
     * Engine context whose tracer receives the simulation events
     * and whose registry counts wormhole.* metrics. nullptr uses
     * the process default context.
     */
    const engine::EngineContext *ctx = nullptr;
};

/** Timing record of one TFG invocation. */
struct InvocationRecord
{
    int index = 0;
    /** Input arrival (start of the invocation). */
    Time start = 0.0;
    /** Completion of the last output task. */
    Time complete = 0.0;
    /** Latency Lambda_j = complete - start. */
    Time latency() const { return complete - start; }
};

/** Outcome of a wormhole simulation. */
struct WormholeResult
{
    std::vector<InvocationRecord> records;
    bool deadlocked = false;
    std::string deadlockInfo;
    /** Invocations completed before any deadlock. */
    int completedInvocations = 0;

    /**
     * Output-generation intervals tau_out over post-warmup
     * invocations.
     */
    SeriesStats outputIntervals(int warmup) const;

    /** Latencies over post-warmup invocations. */
    SeriesStats latencies(int warmup) const;

    /**
     * Output inconsistency verdict (Eq. (1) violated): intervals
     * between successive outputs differ beyond tolerance.
     */
    bool
    outputInconsistent(int warmup, double eps = 1e-3) const
    {
        return deadlocked ||
               !outputIntervals(warmup).constant(eps);
    }
};

/**
 * Discrete-event wormhole-routing simulator.
 *
 * The path of every network message defaults to the topology's
 * LSD-to-MSD route; setPath() overrides it (used by tests and by the
 * three-message adaptive-routing scenario of Sec. 3).
 */
class WormholeSimulator
{
  public:
    /**
     * @param g the task-flow graph (kept by reference)
     * @param topo the interconnect (kept by reference)
     * @param alloc complete task-to-node mapping (copied)
     * @param tm AP speed and link bandwidth
     */
    WormholeSimulator(const TaskFlowGraph &g, const Topology &topo,
                      TaskAllocation alloc, const TimingModel &tm);

    /** Override the route of message m. */
    void setPath(MessageId m, Path p);

    /** Path currently assigned to message m. */
    const Path &pathOf(MessageId m) const;

    /** Run one simulation. */
    WormholeResult run(const WormholeConfig &cfg);

  private:
    struct Impl;

    const TaskFlowGraph &g_;
    const Topology &topo_;
    TaskAllocation alloc_;
    TimingModel tm_;
    std::vector<Path> paths_;
};

} // namespace srsim

#endif // SRSIM_WORMHOLE_WORMHOLE_HH_
