#include "wormhole/wormhole.hh"

#include <algorithm>
#include <cstdint>
#include <deque>
#include <sstream>

#include "engine/context.hh"
#include "metrics/metrics.hh"
#include "sim/event_queue.hh"
#include "trace/trace.hh"
#include "util/logging.hh"

namespace srsim {

SeriesStats
WormholeResult::outputIntervals(int warmup) const
{
    SeriesStats s;
    for (std::size_t j = 1; j < records.size(); ++j) {
        if (records[j].index <= warmup)
            continue;
        s.add(records[j].complete - records[j - 1].complete);
    }
    return s;
}

SeriesStats
WormholeResult::latencies(int warmup) const
{
    SeriesStats s;
    for (const InvocationRecord &r : records)
        if (r.index >= warmup)
            s.add(r.latency());
    return s;
}

WormholeSimulator::WormholeSimulator(const TaskFlowGraph &g,
                                     const Topology &topo,
                                     TaskAllocation alloc,
                                     const TimingModel &tm)
    : g_(g), topo_(topo), alloc_(std::move(alloc)), tm_(tm)
{
    if (!alloc_.complete())
        fatal("wormhole simulation needs a complete allocation");
    paths_.resize(static_cast<std::size_t>(g_.numMessages()));
    for (const Message &m : g_.messages()) {
        const NodeId s = alloc_.nodeOf(m.src);
        const NodeId d = alloc_.nodeOf(m.dst);
        if (s != d)
            paths_[static_cast<std::size_t>(m.id)] =
                topo_.routeLsdToMsd(s, d);
    }
}

void
WormholeSimulator::setPath(MessageId m, Path p)
{
    SRSIM_ASSERT(m >= 0 && m < g_.numMessages(), "bad message id");
    const NodeId s = alloc_.nodeOf(g_.message(m).src);
    const NodeId d = alloc_.nodeOf(g_.message(m).dst);
    if (!topo_.validPath(p) || p.source() != s || p.destination() != d)
        fatal("setPath: invalid path for message ", m);
    paths_[static_cast<std::size_t>(m)] = std::move(p);
}

const Path &
WormholeSimulator::pathOf(MessageId m) const
{
    SRSIM_ASSERT(m >= 0 && m < g_.numMessages(), "bad message id");
    return paths_[static_cast<std::size_t>(m)];
}

/**
 * All mutable simulation state for one run().
 */
struct WormholeSimulator::Impl
{
    /** One in-flight message instance (message x invocation). */
    struct MsgInstance
    {
        MessageId msg = kInvalidMessage;
        int invocation = 0;
        /** Links already captured (prefix of the path). */
        std::size_t acquired = 0;
        /** Link this instance is queued on, or kInvalidLink. */
        LinkId waitingOn = kInvalidLink;
        bool transmitting = false;
        bool delivered = false;
        // Fair-share transfer progress.
        double remainingBytes = 0.0;
        double rate = 0.0;        ///< bytes per microsecond
        Time lastUpdate = 0.0;
        std::uint32_t gen = 0;    ///< invalidates stale events
        /**
         * Acquire instant per captured link (parallel to the
         * acquired prefix of the path); populated only while
         * tracing/metrics are on.
         */
        std::vector<Time> acquireTs;
    };

    /** FCFS state of one half-duplex link. */
    struct LinkState
    {
        /** Indices into instances_ currently holding a virtual
         *  channel of this link (size <= virtualChannels). */
        std::vector<std::size_t> occupants;
        std::deque<std::size_t> waiters;

        bool
        hasRoom(int capacity) const
        {
            return static_cast<int>(occupants.size()) < capacity;
        }
    };

    /** One task instance's dependence bookkeeping. */
    struct TaskInstance
    {
        int arrived = 0;
        bool started = false;
        bool finished = false;
    };

    /** Per-node application processor (single FCFS server). */
    struct ApState
    {
        bool busy = false;
        std::deque<std::pair<TaskId, int>> ready;
    };

    WormholeSimulator &sim;
    const WormholeConfig &cfg;
    const engine::EngineContext &ectx;
    trace::Tracer &tracer;
    EventQueue eq;
    std::vector<MsgInstance> instances;
    /** Instances currently flowing (fair-share mode only). */
    std::vector<std::size_t> flowing;
    std::vector<LinkState> links;
    std::vector<TaskInstance> taskInst;
    std::vector<ApState> aps;
    std::vector<Time> outputFinish;
    std::vector<int> outputsRemaining;
    std::vector<bool> isOutputTask;
    WormholeResult result;
    int recorded = 0;

    // Observability (all dormant unless the run is traced/metered).
    const bool tracing = SRSIM_TRACE_ENABLED();
    const bool metering = SRSIM_METRICS_ENABLED();
    metrics::Counter *injectedCtr = nullptr;
    metrics::Counter *blockCtr = nullptr;
    metrics::Counter *deadlockCtr = nullptr;
    metrics::LinkTimeline *timeline = nullptr;

    Impl(WormholeSimulator &s, const WormholeConfig &c)
        : sim(s), cfg(c), ectx(engine::resolve(c.ctx)),
          tracer(ectx.tracer())
    {
        if (metering) {
            auto &reg = ectx.metricsRegistry();
            injectedCtr =
                &reg.counter("wormhole.messages_injected");
            blockCtr = &reg.counter("wormhole.link_blocks");
            deadlockCtr = &reg.counter("wormhole.deadlocks");
            timeline = &reg.timeline("wormhole.links");
        }
        const std::size_t nmsg =
            static_cast<std::size_t>(sim.g_.numMessages());
        const std::size_t ninv =
            static_cast<std::size_t>(cfg.invocations);
        instances.resize(nmsg * ninv);
        links.resize(static_cast<std::size_t>(sim.topo_.numLinks()));
        taskInst.resize(
            static_cast<std::size_t>(sim.g_.numTasks()) * ninv);
        aps.resize(static_cast<std::size_t>(sim.topo_.numNodes()));
        outputFinish.assign(ninv, 0.0);
        outputsRemaining.assign(
            ninv,
            static_cast<int>(sim.g_.outputTasks().size()));
        isOutputTask.assign(
            static_cast<std::size_t>(sim.g_.numTasks()), false);
        for (TaskId t : sim.g_.outputTasks())
            isOutputTask[static_cast<std::size_t>(t)] = true;
    }

    /** Virtual channels per link (>= 1). */
    int vcs() const { return cfg.virtualChannels; }

    std::size_t
    instIdx(MessageId m, int j) const
    {
        return static_cast<std::size_t>(j) *
                   static_cast<std::size_t>(sim.g_.numMessages()) +
               static_cast<std::size_t>(m);
    }

    std::size_t
    taskIdx(TaskId t, int j) const
    {
        return static_cast<std::size_t>(j) *
                   static_cast<std::size_t>(sim.g_.numTasks()) +
               static_cast<std::size_t>(t);
    }

    const Path &path(std::size_t inst) const
    {
        return sim.paths_[static_cast<std::size_t>(
            instances[inst].msg)];
    }

    void
    start()
    {
        for (int j = 0; j < cfg.invocations; ++j) {
            const Time t = j * cfg.inputPeriod;
            for (TaskId task : sim.g_.inputTasks()) {
                eq.schedule(t, [this, task, j] {
                    taskReady(task, j);
                });
            }
        }
    }

    void
    taskReady(TaskId t, int j)
    {
        TaskInstance &ti = taskInst[taskIdx(t, j)];
        SRSIM_ASSERT(!ti.started, "task instance ready twice");
        const NodeId node = sim.alloc_.nodeOf(t);
        ApState &ap = aps[static_cast<std::size_t>(node)];
        if (ap.busy) {
            ap.ready.emplace_back(t, j);
        } else {
            startTask(t, j);
        }
    }

    void
    startTask(TaskId t, int j)
    {
        TaskInstance &ti = taskInst[taskIdx(t, j)];
        ti.started = true;
        const NodeId node = sim.alloc_.nodeOf(t);
        aps[static_cast<std::size_t>(node)].busy = true;
        if (tracing)
            trace::taskBegin(tracer, node, sim.g_.task(t).name,
                             j, eq.now());
        const Time dur = sim.tm_.taskTime(sim.g_, t);
        eq.scheduleAfter(dur, [this, t, j] { finishTask(t, j); });
    }

    void
    finishTask(TaskId t, int j)
    {
        TaskInstance &ti = taskInst[taskIdx(t, j)];
        ti.finished = true;
        if (tracing)
            trace::taskEnd(tracer, sim.alloc_.nodeOf(t), j,
                           eq.now());
        if (isOutputTask[static_cast<std::size_t>(t)])
            outputDone(t, j);

        // Inject outgoing messages before freeing the AP so that
        // messages precede any same-instant task start.
        for (MessageId m : sim.g_.outgoing(t))
            injectMessage(m, j);

        const NodeId node = sim.alloc_.nodeOf(t);
        ApState &ap = aps[static_cast<std::size_t>(node)];
        ap.busy = false;
        if (!ap.ready.empty()) {
            auto [nt, nj] = ap.ready.front();
            ap.ready.pop_front();
            startTask(nt, nj);
        }
    }

    void
    outputDone(TaskId, int j)
    {
        const std::size_t ji = static_cast<std::size_t>(j);
        outputFinish[ji] = std::max(outputFinish[ji], eq.now());
        if (--outputsRemaining[ji] == 0) {
            InvocationRecord rec;
            rec.index = j;
            rec.start = j * cfg.inputPeriod;
            rec.complete = outputFinish[ji];
            result.records.push_back(rec);
            ++recorded;
            if (tracing)
                trace::invocationComplete(tracer, j, eq.now());
        }
    }

    void
    injectMessage(MessageId m, int j)
    {
        const std::size_t idx = instIdx(m, j);
        MsgInstance &mi = instances[idx];
        mi.msg = m;
        mi.invocation = j;
        if (injectedCtr)
            injectedCtr->add();
        const Message &msg = sim.g_.message(m);
        if (sim.alloc_.nodeOf(msg.src) ==
            sim.alloc_.nodeOf(msg.dst)) {
            // Local delivery through the node's buffers: no network
            // resources, negligible time.
            deliver(idx);
            return;
        }
        requestNextLink(idx);
    }

    void
    requestNextLink(std::size_t idx)
    {
        MsgInstance &mi = instances[idx];
        const Path &p = path(idx);
        if (mi.acquired == p.links.size()) {
            // Whole path captured: transmit.
            mi.transmitting = true;
            if (tracing)
                trace::msgWindowBegin(
                    tracer, mi.msg, sim.g_.message(mi.msg).name,
                    mi.invocation, eq.now());
            if (cfg.fairShare) {
                // Progressive filling: rate depends on the sharing
                // pattern, recomputed as it changes.
                mi.remainingBytes = sim.g_.message(mi.msg).bytes;
                mi.lastUpdate = eq.now();
                flowing.push_back(idx);
                recomputeRates();
            } else {
                // Static model: bandwidth divided by the channel
                // count (Sec. 6's stricter model).
                const Time dur =
                    sim.tm_.messageTime(sim.g_, mi.msg) * vcs();
                const std::uint32_t gen = ++mi.gen;
                eq.scheduleAfter(dur, [this, idx, gen] {
                    completeTx(idx, gen);
                });
            }
            return;
        }
        const LinkId l = p.links[mi.acquired];
        LinkState &ls = links[static_cast<std::size_t>(l)];
        if (ls.hasRoom(vcs()) && ls.waiters.empty()) {
            ls.occupants.push_back(idx);
            ++mi.acquired;
            noteAcquire(mi, l);
            requestNextLink(idx);
        } else {
            mi.waitingOn = l;
            ls.waiters.push_back(idx);
            if (blockCtr)
                blockCtr->add();
            if (tracing)
                trace::linkBlocked(tracer, l,
                                   sim.g_.message(mi.msg).name,
                                   mi.msg, mi.invocation,
                                   eq.now());
        }
    }

    /** Record a successful link capture (trace + timeline). */
    void
    noteAcquire(MsgInstance &mi, LinkId l)
    {
        if (!tracing && !metering)
            return;
        mi.acquireTs.push_back(eq.now());
        if (tracing)
            trace::linkAcquire(tracer, l,
                               sim.g_.message(mi.msg).name,
                               mi.msg, mi.invocation, eq.now());
    }

    /**
     * Settle fair-share progress up to now and recompute every
     * flowing message's rate from the current sharing pattern;
     * reschedule the completion events.
     */
    void
    recomputeRates()
    {
        const Time now = eq.now();
        // Settle progress at the old rates.
        for (std::size_t idx : flowing) {
            MsgInstance &mi = instances[idx];
            mi.remainingBytes -= mi.rate * (now - mi.lastUpdate);
            mi.remainingBytes = std::max(0.0, mi.remainingBytes);
            mi.lastUpdate = now;
        }
        // Sharers per link (only flowing messages move flits).
        std::vector<int> sharers(links.size(), 0);
        for (std::size_t idx : flowing)
            for (LinkId l : path(idx).links)
                ++sharers[static_cast<std::size_t>(l)];
        // New rate = B / most contended link; reschedule.
        for (std::size_t idx : flowing) {
            MsgInstance &mi = instances[idx];
            int worst = 1;
            for (LinkId l : path(idx).links)
                worst = std::max(
                    worst, sharers[static_cast<std::size_t>(l)]);
            mi.rate = sim.tm_.bandwidth / worst;
            const Time eta = mi.remainingBytes / mi.rate;
            const std::uint32_t gen = ++mi.gen;
            eq.scheduleAfter(eta, [this, idx, gen] {
                completeTx(idx, gen);
            });
        }
    }

    void
    completeTx(std::size_t idx, std::uint32_t gen)
    {
        MsgInstance &mi = instances[idx];
        if (!mi.transmitting || gen != mi.gen)
            return; // superseded by a rate change
        const Path &p = path(idx);
        mi.transmitting = false;
        if (cfg.fairShare) {
            flowing.erase(
                std::find(flowing.begin(), flowing.end(), idx));
        }

        // Release every link, then hand each to its next waiter.
        // Two passes so a cascading re-acquire sees all releases.
        for (std::size_t k = 0; k < p.links.size(); ++k) {
            const LinkId l = p.links[k];
            LinkState &ls = links[static_cast<std::size_t>(l)];
            auto it = std::find(ls.occupants.begin(),
                                ls.occupants.end(), idx);
            SRSIM_ASSERT(it != ls.occupants.end(),
                         "release of foreign link");
            ls.occupants.erase(it);
            if (tracing)
                trace::linkRelease(tracer, l, mi.msg,
                                   mi.invocation, eq.now());
            if (timeline && k < mi.acquireTs.size())
                timeline->occupy(l, mi.acquireTs[k], eq.now());
        }
        if (tracing)
            trace::msgWindowEnd(tracer, mi.msg, mi.invocation,
                                eq.now());
        deliver(idx);
        for (LinkId l : p.links)
            grantNext(l);
        if (cfg.fairShare)
            recomputeRates();
    }

    void
    grantNext(LinkId l)
    {
        LinkState &ls = links[static_cast<std::size_t>(l)];
        while (ls.hasRoom(vcs()) && !ls.waiters.empty()) {
            const std::size_t next = ls.waiters.front();
            ls.waiters.pop_front();
            MsgInstance &mi = instances[next];
            SRSIM_ASSERT(mi.waitingOn == l, "waiter bookkeeping");
            mi.waitingOn = kInvalidLink;
            ls.occupants.push_back(next);
            ++mi.acquired;
            noteAcquire(mi, l);
            requestNextLink(next);
        }
    }

    void
    deliver(std::size_t idx)
    {
        MsgInstance &mi = instances[idx];
        mi.delivered = true;
        const Message &msg = sim.g_.message(mi.msg);
        TaskInstance &ti = taskInst[taskIdx(msg.dst, mi.invocation)];
        ++ti.arrived;
        const int need = static_cast<int>(
            sim.g_.incoming(msg.dst).size());
        if (ti.arrived == need)
            taskReady(msg.dst, mi.invocation);
    }

    /**
     * Wait-for cycle detection over blocked message instances.
     * With virtual channels a waiter depends on *every* occupant
     * of the link it waits on, so this is general DFS cycle
     * detection, not just functional-graph chasing.
     * @return human-readable cycle description, empty if none.
     */
    std::string
    findDeadlock() const
    {
        const std::size_t n = instances.size();
        // color: 0 = unvisited, 1 = on stack, 2 = done.
        std::vector<int> color(n, 0);
        std::vector<std::size_t> stack;

        auto successors = [&](std::size_t i)
            -> const std::vector<std::size_t> * {
            const MsgInstance &mi = instances[i];
            if (mi.waitingOn == kInvalidLink)
                return nullptr;
            return &links[static_cast<std::size_t>(mi.waitingOn)]
                        .occupants;
        };

        // Iterative DFS with an explicit edge cursor.
        std::vector<std::size_t> cursor(n, 0);
        for (std::size_t s0 = 0; s0 < n; ++s0) {
            if (color[s0] != 0 || !successors(s0))
                continue;
            stack.assign(1, s0);
            color[s0] = 1;
            while (!stack.empty()) {
                const std::size_t u = stack.back();
                const auto *succ = successors(u);
                if (!succ ||
                    cursor[u] >= succ->size()) {
                    color[u] = 2;
                    stack.pop_back();
                    continue;
                }
                const std::size_t v = (*succ)[cursor[u]++];
                if (color[v] == 1) {
                    // Found a cycle: report the stack from v.
                    std::ostringstream oss;
                    oss << "wait-for cycle:";
                    bool in_cycle = false;
                    for (std::size_t w : stack) {
                        if (w == v)
                            in_cycle = true;
                        if (in_cycle) {
                            const MsgInstance &mi = instances[w];
                            oss << " msg " << mi.msg << "@inv"
                                << mi.invocation;
                        }
                    }
                    return oss.str();
                }
                if (color[v] == 0 && successors(v)) {
                    color[v] = 1;
                    stack.push_back(v);
                }
            }
        }
        return {};
    }

    WormholeResult
    finish()
    {
        if (recorded < cfg.invocations) {
            const std::string cycle = findDeadlock();
            result.deadlocked = true;
            result.deadlockInfo =
                cycle.empty()
                    ? "simulation stalled before all invocations "
                      "completed"
                    : cycle;
            if (deadlockCtr)
                deadlockCtr->add();
            if (tracing)
                trace::deadlock(tracer, result.deadlockInfo,
                                eq.now());
        }
        std::sort(result.records.begin(), result.records.end(),
                  [](const InvocationRecord &a,
                     const InvocationRecord &b) {
                      return a.index < b.index;
                  });
        result.completedInvocations = recorded;
        return std::move(result);
    }
};

WormholeResult
WormholeSimulator::run(const WormholeConfig &cfg)
{
    if (cfg.inputPeriod <= 0.0)
        fatal("wormhole run needs a positive input period");
    if (cfg.virtualChannels < 1)
        fatal("need at least one virtual channel per link");
    if (cfg.fairShare && cfg.virtualChannels < 2)
        fatal("fair sharing needs at least two virtual channels");
    if (cfg.invocations <= cfg.warmup)
        fatal("need more invocations than warmup");

    Impl impl(*this, cfg);
    impl.start();
    impl.eq.run();
    return impl.finish();
}

} // namespace srsim
