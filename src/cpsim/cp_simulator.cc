#include "cpsim/cp_simulator.hh"

#include <algorithm>
#include <deque>
#include <limits>
#include <map>
#include <sstream>

#include "engine/context.hh"
#include "metrics/metrics.hh"
#include "sim/event_queue.hh"
#include "trace/trace.hh"
#include "util/logging.hh"

namespace srsim {

SeriesStats
CpSimResult::outputIntervals(int warmup) const
{
    SeriesStats s;
    for (std::size_t j = 1; j < completions.size(); ++j)
        if (static_cast<int>(j) > warmup && completions[j] > 0.0 &&
            completions[j - 1] > 0.0)
            s.add(completions[j] - completions[j - 1]);
    return s;
}

SeriesStats
CpSimResult::latencies(int warmup) const
{
    SeriesStats s;
    for (std::size_t j = 0; j < completions.size(); ++j)
        if (static_cast<int>(j) >= warmup && completions[j] > 0.0)
            s.add(completions[j] - starts[j]);
    return s;
}

namespace {

/** One scheduled transmission window, absolute time, one message
 *  instance. */
struct SegmentEvent
{
    std::size_t msgIdx;     ///< index into bounds.messages
    int invocation;
    Time start;
    Time end;
    bool last;              ///< final segment of the instance
    /** Schedule this window came from (primary or degraded). */
    const GlobalSchedule *sched;
};

/** Everything mutable during one simulateCps run. */
struct CpSimState
{
    const TaskFlowGraph &g;
    const Topology &topo;
    const TaskAllocation &alloc;
    const TimingModel &tm;
    const TimeBounds &bounds;
    const GlobalSchedule &omega;
    const CpSimConfig &cfg;
    const engine::EngineContext &ectx;
    trace::Tracer &tracer;

    EventQueue eq;
    CpSimResult result;
    bool aborted = false;

    /** Per link: current reservation [claim, until) and claimant. */
    struct LinkClaim
    {
        Time until = -1.0;
        std::size_t msgIdx = SIZE_MAX;
        int invocation = -1;
        /** Schedule the claimant executed (swap-transition id). */
        const GlobalSchedule *sched = nullptr;
    };
    std::vector<LinkClaim> linkClaims;

    /** Deposit time of (msgIdx, invocation) into the source CP's
     *  output buffer; +inf until the AP finishes the source task. */
    std::vector<Time> deposit;
    /** Bytes accumulated at the destination so far. */
    std::vector<double> bytesDone;

    /** Task-instance arrival bookkeeping. */
    std::vector<int> arrived;
    std::vector<Time> taskFinish;

    /** Per-node single-server AP. */
    struct ApState
    {
        bool busy = false;
        std::deque<std::pair<TaskId, int>> ready;
    };
    std::vector<ApState> aps;

    std::vector<Time> outputFinish;
    std::vector<int> outputsRemaining;
    std::vector<bool> isOutputTask;

    /** Dedup: violation key -> index into result.violations. */
    std::map<std::string, std::size_t> violationIdx;

    /** Per link: absolute failure instant (+inf = never fails). */
    std::vector<Time> linkFailAt;
    /** Invocations that lost a message instance to a fault. */
    std::vector<char> lostInv;

    // Observability (dormant unless the run is traced/metered).
    const bool tracing = SRSIM_TRACE_ENABLED();
    const bool metering = SRSIM_METRICS_ENABLED();
    metrics::Counter *violationCtr = nullptr;
    metrics::Counter *commandCtr = nullptr;
    metrics::LinkTimeline *timeline = nullptr;

    CpSimState(const TaskFlowGraph &g_, const Topology &topo_,
               const TaskAllocation &alloc_, const TimingModel &tm_,
               const TimeBounds &bounds_,
               const GlobalSchedule &omega_, const CpSimConfig &c)
        : g(g_), topo(topo_), alloc(alloc_), tm(tm_),
          bounds(bounds_), omega(omega_), cfg(c),
          ectx(engine::resolve(c.ctx)), tracer(ectx.tracer())
    {
        const std::size_t nmi =
            bounds.messages.size() *
            static_cast<std::size_t>(cfg.invocations);
        linkClaims.resize(
            static_cast<std::size_t>(topo.numLinks()));
        deposit.assign(nmi,
                       std::numeric_limits<Time>::infinity());
        bytesDone.assign(nmi, 0.0);
        arrived.assign(static_cast<std::size_t>(g.numTasks()) *
                           static_cast<std::size_t>(
                               cfg.invocations),
                       0);
        taskFinish.assign(arrived.size(), -1.0);
        aps.resize(static_cast<std::size_t>(topo.numNodes()));
        outputFinish.assign(
            static_cast<std::size_t>(cfg.invocations), 0.0);
        outputsRemaining.assign(
            static_cast<std::size_t>(cfg.invocations),
            static_cast<int>(g.outputTasks().size()));
        isOutputTask.assign(
            static_cast<std::size_t>(g.numTasks()), false);
        for (TaskId t : g.outputTasks())
            isOutputTask[static_cast<std::size_t>(t)] = true;
        result.starts.resize(
            static_cast<std::size_t>(cfg.invocations));
        result.completions.assign(
            static_cast<std::size_t>(cfg.invocations), 0.0);
        linkFailAt.assign(
            static_cast<std::size_t>(topo.numLinks()),
            std::numeric_limits<Time>::infinity());
        for (const auto &f : cfg.linkFailures)
            linkFailAt[static_cast<std::size_t>(f.first)] =
                std::min(
                    linkFailAt[static_cast<std::size_t>(f.first)],
                    f.second);
        lostInv.assign(
            static_cast<std::size_t>(cfg.invocations), 0);
        if (metering) {
            auto &reg = ectx.metricsRegistry();
            violationCtr = &reg.counter("cpsim.violations");
            commandCtr = &reg.counter("cpsim.commands_executed");
            timeline = &reg.timeline("cpsim.links");
        }
    }

    std::size_t
    miIdx(std::size_t msgIdx, int j) const
    {
        return static_cast<std::size_t>(j) *
                   bounds.messages.size() +
               msgIdx;
    }

    std::size_t
    tiIdx(TaskId t, int j) const
    {
        return static_cast<std::size_t>(j) *
                   static_cast<std::size_t>(g.numTasks()) +
               static_cast<std::size_t>(t);
    }

    /**
     * Record one invariant violation.
     *
     * @param key context-free identity of the failure (no times,
     * no invocation numbers); repeats under the same key collapse
     * into one reported message with a count.
     * @param why the full human-readable report (first occurrence
     * is the one kept).
     */
    void
    violation(const std::string &key, const std::string &why)
    {
        ++result.totalViolations;
        if (violationCtr)
            violationCtr->add();
        if (tracing)
            trace::violation(tracer, why, eq.now());
        auto [it, fresh] = violationIdx.emplace(
            key, result.violations.size());
        if (fresh) {
            result.violations.push_back(why);
            result.violationRepeats.push_back(1);
        } else {
            ++result.violationRepeats[it->second];
        }
        if (cfg.stopOnViolation)
            aborted = true;
    }

    // ----- schedule construction -------------------------------

    /**
     * Schedule governing invocation j: the degraded Omega once the
     * repaired node switching schedules have been distributed.
     */
    const GlobalSchedule &
    schedFor(int j) const
    {
        if (cfg.degradedOmega &&
            timeGe(j * omega.period, cfg.repairAt))
            return *cfg.degradedOmega;
        return omega;
    }

    /**
     * Mark an invocation as lost to an injected fault. Lost
     * invocations are expected damage: their remaining data checks
     * are suppressed and their non-completion is reported in
     * faultNotes rather than as a violation.
     */
    void
    loseInstance(int j, const std::string &note)
    {
        ++result.droppedSegments;
        if (tracing)
            trace::faultEvent(tracer, note, eq.now());
        if (lostInv[static_cast<std::size_t>(j)])
            return;
        lostInv[static_cast<std::size_t>(j)] = 1;
        ++result.lostInvocations;
        result.faultNotes.push_back(note);
    }

    /**
     * First link of the path failed by time t: at or before t
     * (window-start test), or strictly before t (window-end test —
     * a link failing exactly at the end carried the whole window).
     */
    LinkId
    deadLinkOn(const Path &p, Time t, bool strict = false) const
    {
        for (LinkId l : p.links) {
            const Time at = linkFailAt[static_cast<std::size_t>(l)];
            if (strict ? timeLt(at, t) : timeLe(at, t))
                return l;
        }
        return -1;
    }

    /** Absolute segment events of one message instance. */
    std::vector<SegmentEvent>
    instanceSegments(std::size_t msgIdx, int j) const
    {
        const GlobalSchedule &sched = schedFor(j);
        const MessageBounds &b = bounds.messages[msgIdx];
        const Time release =
            j * omega.period + b.absoluteRelease;
        std::vector<SegmentEvent> out;
        for (const TimeWindow &w : sched.segments[msgIdx]) {
            const Time off = timeGe(w.start, b.release)
                                 ? w.start - b.release
                                 : w.start - b.release +
                                       omega.period;
            SegmentEvent ev;
            ev.msgIdx = msgIdx;
            ev.invocation = j;
            ev.start = release + off;
            ev.end = ev.start + w.length();
            ev.last = false;
            ev.sched = &sched;
            out.push_back(ev);
        }
        std::sort(out.begin(), out.end(),
                  [](const SegmentEvent &a, const SegmentEvent &b2) {
                      return a.start < b2.start;
                  });
        if (!out.empty())
            out.back().last = true;
        return out;
    }

    void
    start()
    {
        // Input arrivals.
        for (int j = 0; j < cfg.invocations; ++j) {
            const Time t = j * omega.period;
            result.starts[static_cast<std::size_t>(j)] = t;
            for (TaskId task : g.inputTasks())
                eq.schedule(t, [this, task, j] {
                    taskReady(task, j);
                });
        }
        // CP controllers: every commanded transmission window of
        // every invocation, independently per node -- modelled by
        // the shared segment events (each checks the state all the
        // CPs on the path would see).
        for (std::size_t i = 0; i < bounds.messages.size(); ++i) {
            for (int j = 0; j < cfg.invocations; ++j) {
                for (const SegmentEvent &ev :
                     instanceSegments(i, j)) {
                    eq.schedule(ev.start, [this, ev] {
                        segmentStart(ev);
                    });
                    eq.schedule(ev.end, [this, ev] {
                        segmentEnd(ev);
                    });
                    result.commandsExecuted +=
                        ev.sched->paths.pathFor(i).nodes.size();
                }
            }
        }
        // Fault instants as visible events.
        for (const auto &f : cfg.linkFailures) {
            const LinkId l = f.first;
            const Time at = f.second;
            eq.schedule(at, [this, l, at] {
                if (tracing)
                    trace::faultEvent(
                        tracer,
                        "link " + std::to_string(l) + " failed",
                        at);
            });
        }
        if (cfg.degradedOmega) {
            for (int j = 0; j < cfg.invocations; ++j) {
                const Time t = j * omega.period;
                if (timeGe(t, cfg.repairAt)) {
                    std::ostringstream oss;
                    oss << "degraded schedule takes effect at "
                        << "invocation " << j << " (t=" << t
                        << ")";
                    result.faultNotes.push_back(oss.str());
                    eq.schedule(t, [this, note = oss.str()] {
                        if (tracing)
                            trace::faultEvent(tracer, note,
                                              eq.now());
                    });
                    break;
                }
            }
        }
    }

    // ----- AP model --------------------------------------------

    void
    taskReady(TaskId t, int j)
    {
        if (aborted)
            return;
        const NodeId node = alloc.nodeOf(t);
        ApState &ap = aps[static_cast<std::size_t>(node)];
        if (ap.busy)
            ap.ready.emplace_back(t, j);
        else
            startTask(t, j);
    }

    void
    startTask(TaskId t, int j)
    {
        const NodeId node = alloc.nodeOf(t);
        aps[static_cast<std::size_t>(node)].busy = true;
        if (tracing)
            trace::taskBegin(tracer, node, g.task(t).name, j,
                             eq.now());
        eq.scheduleAfter(tm.taskTime(g, t),
                         [this, t, j] { finishTask(t, j); });
    }

    void
    finishTask(TaskId t, int j)
    {
        if (aborted)
            return;
        taskFinish[tiIdx(t, j)] = eq.now();
        if (tracing)
            trace::taskEnd(tracer, alloc.nodeOf(t), j, eq.now());
        if (isOutputTask[static_cast<std::size_t>(t)])
            outputDone(j);

        for (MessageId m : g.outgoing(t)) {
            const int bi =
                bounds.indexOf[static_cast<std::size_t>(m)];
            if (bi < 0) {
                // Local delivery through the node's buffers.
                arriveAt(g.message(m).dst, j);
            } else {
                // Deposit into the CP output buffer.
                deposit[miIdx(static_cast<std::size_t>(bi), j)] =
                    eq.now();
            }
        }

        const NodeId node = alloc.nodeOf(t);
        ApState &ap = aps[static_cast<std::size_t>(node)];
        ap.busy = false;
        if (!ap.ready.empty()) {
            auto [nt, nj] = ap.ready.front();
            ap.ready.pop_front();
            startTask(nt, nj);
        }
    }

    void
    arriveAt(TaskId t, int j)
    {
        int &cnt = arrived[tiIdx(t, j)];
        ++cnt;
        if (cnt == static_cast<int>(g.incoming(t).size()))
            taskReady(t, j);
    }

    void
    outputDone(int j)
    {
        const std::size_t ji = static_cast<std::size_t>(j);
        outputFinish[ji] = std::max(outputFinish[ji], eq.now());
        if (--outputsRemaining[ji] == 0) {
            result.completions[ji] = outputFinish[ji];
            if (tracing)
                trace::invocationComplete(tracer, j, eq.now());
        }
    }

    // ----- CP / link model -------------------------------------

    void
    segmentStart(const SegmentEvent &ev)
    {
        if (aborted)
            return;
        const Path &p = ev.sched->paths.pathFor(ev.msgIdx);
        const Message &m =
            g.message(bounds.messages[ev.msgIdx].msg);
        const Time dur = ev.end - ev.start;
        // A window opening on a dead link is dropped whole: the CP
        // commands execute but the chain never closes end-to-end.
        if (const LinkId dead = deadLinkOn(p, ev.start);
            dead >= 0) {
            std::ostringstream oss;
            oss << "message '" << m.name << "'@inv"
                << ev.invocation << " dropped: link " << dead
                << " dead at window start t=" << ev.start;
            loseInstance(ev.invocation, oss.str());
            return;
        }
        if (tracing) {
            trace::msgWindowSpan(tracer, m.id, m.name,
                                 ev.invocation, ev.start, dur);
            // One crossbar command per CP on the path (the node
            // switching schedules omega_i of Sec. 4.1).
            for (NodeId n : p.nodes)
                trace::xbarExecute(tracer, n, m.name, m.id,
                                   ev.invocation, ev.start, dur);
        }
        if (commandCtr)
            commandCtr->add(p.nodes.size());
        for (LinkId l : p.links) {
            if (tracing)
                trace::linkOccupy(tracer, l, m.name, m.id,
                                  ev.invocation, ev.start, dur);
            if (timeline)
                timeline->occupy(l, ev.start, ev.end);
            LinkClaim &c = linkClaims[static_cast<std::size_t>(l)];
            if (timeLt(eq.now(), c.until) &&
                !(c.msgIdx == ev.msgIdx &&
                  c.invocation == ev.invocation)) {
                // Contention between an in-flight invocation of the
                // old schedule and one of the new is reconfiguration
                // damage, not a schedule bug: each schedule is only
                // contention-free against itself. The colliding
                // instance is lost, not a violation.
                if (c.sched && c.sched != ev.sched) {
                    std::ostringstream oss;
                    oss << "message '" << m.name << "'@inv"
                        << ev.invocation
                        << " lost to schedule-swap transition "
                        << "contention on link " << l << " at t="
                        << eq.now();
                    loseInstance(ev.invocation, oss.str());
                    return;
                }
                std::ostringstream key;
                key << "double-booked link " << l << " msg "
                    << ev.msgIdx << " vs " << c.msgIdx;
                std::ostringstream oss;
                oss << "link " << l << " double-booked at t="
                    << eq.now() << ": '" << m.name << "'@inv"
                    << ev.invocation << " vs message index "
                    << c.msgIdx << "@inv" << c.invocation;
                violation(key.str(), oss.str());
                if (aborted)
                    return;
                continue;
            }
            c.until = ev.end;
            c.msgIdx = ev.msgIdx;
            c.invocation = ev.invocation;
            c.sched = ev.sched;
        }
    }

    void
    segmentEnd(const SegmentEvent &ev)
    {
        if (aborted)
            return;
        const std::size_t mi = miIdx(ev.msgIdx, ev.invocation);
        const Message &m =
            g.message(bounds.messages[ev.msgIdx].msg);

        // A failure cutting through the window drops the in-flight
        // flits; the instance is lost, not a schedule bug.
        if (const LinkId dead =
                deadLinkOn(ev.sched->paths.pathFor(ev.msgIdx),
                           ev.end, /*strict=*/true);
            dead >= 0 &&
            !lostInv[static_cast<std::size_t>(ev.invocation)]) {
            std::ostringstream oss;
            oss << "message '" << m.name << "'@inv"
                << ev.invocation << " lost in flight: link "
                << dead << " failed during window ending t="
                << ev.end;
            loseInstance(ev.invocation, oss.str());
            return;
        }
        // Lost invocations transmit garbage downstream of the
        // break; suppress their data checks (expected damage).
        if (lostInv[static_cast<std::size_t>(ev.invocation)])
            return;

        // Premature-setup check: the data must have been in the
        // source CP's output buffer when the window opened.
        if (timeGt(deposit[mi], ev.start)) {
            std::ostringstream oss;
            oss << "message '" << m.name << "'@inv"
                << ev.invocation << " transmitted at t="
                << ev.start << " before its data was ready (AP "
                << "deposit at "
                << (deposit[mi] ==
                            std::numeric_limits<Time>::infinity()
                        ? -1.0
                        : deposit[mi])
                << ")";
            violation("premature msg " + std::to_string(ev.msgIdx),
                      oss.str());
            if (aborted)
                return;
        }

        bytesDone[mi] += (ev.end - ev.start) * tm.bandwidth;

        if (!ev.last)
            return;

        // Byte conservation at delivery. The schedule transfers the
        // *quantized* message (packet mode rounds the duration up to
        // whole packets, padding the payload), so the scheduled
        // bytes are duration * bandwidth, not the raw payload size.
        const double scheduledBytes =
            bounds.messages[ev.msgIdx].duration * tm.bandwidth;
        if (std::abs(bytesDone[mi] - scheduledBytes) >
            tm.bandwidth * kTimeEps * 10.0 + 1e-6) {
            std::ostringstream oss;
            oss << "message '" << m.name << "'@inv"
                << ev.invocation << " delivered "
                << bytesDone[mi] << " of " << scheduledBytes
                << " scheduled bytes (" << m.bytes << " payload)";
            violation("short-delivery msg " +
                          std::to_string(ev.msgIdx),
                      oss.str());
            if (aborted)
                return;
        }

        // Deadline check: delivery within tau_c of availability.
        const MessageBounds &b = bounds.messages[ev.msgIdx];
        const Time release =
            ev.invocation * omega.period + b.absoluteRelease;
        if (timeGt(eq.now(), release + bounds.tauC)) {
            std::ostringstream oss;
            oss << "message '" << m.name << "'@inv"
                << ev.invocation << " missed its deadline by "
                << eq.now() - (release + bounds.tauC) << " us";
            violation("deadline msg " + std::to_string(ev.msgIdx),
                      oss.str());
            if (aborted)
                return;
        }

        arriveAt(m.dst, ev.invocation);
    }
};

} // namespace

CpSimResult
simulateCps(const TaskFlowGraph &g, const Topology &topo,
            const TaskAllocation &alloc, const TimingModel &tm,
            const TimeBounds &bounds, const GlobalSchedule &omega,
            const CpSimConfig &cfg)
{
    if (cfg.invocations <= cfg.warmup)
        fatal("need more invocations than warmup");
    if (omega.segments.size() != bounds.messages.size())
        fatal("schedule does not match the time bounds");
    for (const auto &f : cfg.linkFailures) {
        if (f.first < 0 || f.first >= topo.numLinks())
            fatal("link failure on link ", f.first,
                  " outside the ", topo.numLinks(),
                  "-link fabric");
        if (f.second < 0.0)
            fatal("link failure at negative time ", f.second);
    }
    if (cfg.degradedOmega) {
        if (cfg.degradedOmega->segments.size() !=
            bounds.messages.size())
            fatal("degraded schedule does not match the time "
                  "bounds");
        if (timeLt(cfg.degradedOmega->period, omega.period) ||
            timeGt(cfg.degradedOmega->period, omega.period))
            fatal("degraded schedule period ",
                  cfg.degradedOmega->period,
                  " differs from the primary period ",
                  omega.period,
                  " (period-stretched swaps need a fresh run)");
    }

    CpSimState st(g, topo, alloc, tm, bounds, omega, cfg);
    st.start();
    st.eq.run();

    // Invocations that never completed (possible under injected
    // corruption) are reported, collapsed like any other repeated
    // violation. Invocations lost to an injected *fault* are
    // expected damage, already explained in faultNotes.
    for (int j = 0; j < cfg.invocations; ++j) {
        if (st.result.completions[static_cast<std::size_t>(j)] <=
                0.0 &&
            !st.aborted &&
            !st.lostInv[static_cast<std::size_t>(j)]) {
            std::ostringstream oss;
            oss << "invocation " << j << " never completed";
            st.violation("never-completed", oss.str());
        }
    }

    // Dedup finalization: annotate collapsed repeats.
    for (std::size_t i = 0; i < st.result.violations.size(); ++i) {
        if (st.result.violationRepeats[i] > 1)
            st.result.violations[i] +=
                " [x" +
                std::to_string(st.result.violationRepeats[i]) +
                "]";
    }
    return std::move(st.result);
}

} // namespace srsim
