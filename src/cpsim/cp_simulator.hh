/**
 * @file
 * Discrete-event simulation of the communication processors of
 * Fig. 2 executing their node switching schedules.
 *
 * Where core/sr_executor replays Omega analytically (closed-form
 * delivery times), this simulator actually *runs* the hardware
 * model: every node's CP executes its own omega_i command list
 * independently — setting up crossbar connections at the commanded
 * times with no knowledge of the other CPs — while the node's AP
 * executes tasks and exchanges messages with the CP through
 * per-channel input/output buffers. Data moves only while the
 * commanded crossbar chain happens to be closed end-to-end, exactly
 * as on the real machine.
 *
 * The simulator therefore checks dynamic invariants the analytic
 * executor cannot observe:
 *   - a CP never connects two commands to one port at once
 *     (crossbar double-booking);
 *   - a link never carries data in both directions at once;
 *   - transmission never starts before the message's data has been
 *     deposited in the source CP's output buffer (the AP finished);
 *   - every message accumulates exactly its byte count by the end
 *     of its scheduled windows and is delivered before the
 *     destination task is due.
 *
 * On a verified Omega all invariants hold and the observed output
 * intervals equal the input period; on a corrupted Omega the
 * violations are reported (used by the failure-injection tests).
 */

#ifndef SRSIM_CPSIM_CP_SIMULATOR_HH_
#define SRSIM_CPSIM_CP_SIMULATOR_HH_

#include <cstdint>
#include <string>
#include <vector>

#include "core/schedule.hh"
#include "core/time_bounds.hh"
#include "mapping/allocation.hh"
#include "sim/stats.hh"
#include "tfg/tfg.hh"
#include "tfg/timing.hh"
#include "topology/topology.hh"

namespace srsim {

namespace engine {
class EngineContext;
}

/** Run parameters for the CP-level simulation. */
struct CpSimConfig
{
    int invocations = 30;
    int warmup = 5;
    /**
     * Stop-and-report rather than continue when an invariant
     * breaks (continuing collects every violation).
     */
    bool stopOnViolation = false;

    // ----- fault injection -------------------------------------
    /**
     * Mid-run link deaths: link id -> absolute failure instant.
     * From that instant the link carries nothing: a scheduled
     * window starting on a dead link is dropped whole, and a
     * window the failure cuts through loses its in-flight flits.
     * Message instances touched either way are *lost*, not
     * violations — they are reported in faultNotes / counted in
     * lostInvocations so the run distinguishes injected damage
     * from genuine schedule bugs.
     */
    std::vector<std::pair<LinkId, Time>> linkFailures;
    /**
     * Degraded-mode schedule to swap to (same period and message
     * count as the primary Omega). Invocations whose release is at
     * or after repairAt execute this schedule's windows and routes
     * instead — modelling the moment the recompiled node switching
     * schedules are distributed to the CPs.
     */
    const GlobalSchedule *degradedOmega = nullptr;
    /** Absolute instant the degraded schedule takes effect. */
    Time repairAt = 0.0;
    /**
     * Engine context whose tracer receives the simulation events
     * and whose registry counts cpsim.* metrics. nullptr uses the
     * process default context.
     */
    const engine::EngineContext *ctx = nullptr;
};

/** Outcome of a CP-level run. */
struct CpSimResult
{
    /** Input arrival per invocation. */
    std::vector<Time> starts;
    /** Completion per invocation (0 when it never completed). */
    std::vector<Time> completions;
    /**
     * Dynamic invariant violations observed, deduplicated: repeats
     * of the same violation (same kind, link/message — differing
     * only in invocation or instant) collapse into the first
     * occurrence, suffixed with " [xN]" when N > 1, so a
     * corrupted-Omega run reports each distinct failure once
     * instead of flooding one line per invocation.
     */
    std::vector<std::string> violations;
    /** Occurrences behind each violations[i] (>= 1). */
    std::vector<std::size_t> violationRepeats;
    /** Violations observed before deduplication. */
    std::uint64_t totalViolations = 0;
    /** Crossbar commands executed across all CPs. */
    std::uint64_t commandsExecuted = 0;

    // ----- fault accounting ------------------------------------
    /** Scheduled windows dropped or cut short by link failures. */
    std::uint64_t droppedSegments = 0;
    /** Invocations that lost at least one message to a fault. */
    std::uint64_t lostInvocations = 0;
    /**
     * Human-readable fault consequences (first loss per
     * invocation, schedule swap). Expected damage from injected
     * faults lands here, never in violations.
     */
    std::vector<std::string> faultNotes;

    bool ok() const { return violations.empty(); }

    /** Output intervals over post-warmup invocations. */
    SeriesStats outputIntervals(int warmup) const;
    /** Latencies over post-warmup invocations. */
    SeriesStats latencies(int warmup) const;
};

/**
 * Execute Omega on the CP hardware model for several invocations.
 *
 * @param omega a compiled schedule for (g, topo, alloc, bounds)
 */
CpSimResult
simulateCps(const TaskFlowGraph &g, const Topology &topo,
            const TaskAllocation &alloc, const TimingModel &tm,
            const TimeBounds &bounds, const GlobalSchedule &omega,
            const CpSimConfig &cfg = {});

} // namespace srsim

#endif // SRSIM_CPSIM_CP_SIMULATOR_HH_
