/**
 * @file
 * Structured event tracing for srsim.
 *
 * The paper's whole argument is temporal — *when* a link is busy,
 * *when* a wormhole message blocks, *when* an output emerges — yet
 * end-of-run statistics flatten all of it. The tracer records typed
 * events against named tracks (one per link, per CP, per AP, plus a
 * simulation track and a compiler track) and exports them as Chrome
 * trace-event JSON (loadable in about:tracing / Perfetto) or flat
 * CSV, so a schedule or a wormhole run can be *seen*.
 *
 * Event taxonomy (DESIGN.md §8):
 *   - link acquire / release / blocked      (WR capture model)
 *   - link occupancy window                 (SR scheduled windows)
 *   - crossbar command execute              (CP switching schedules)
 *   - message window start / end
 *   - task start / finish                   (AP activity)
 *   - invocation complete
 *   - invariant violation / deadlock        (full context attached)
 *   - compiler phase enter / exit           (wall-clock)
 *
 * Disabled-path guarantee: tracing is off by default and every
 * instrumentation site is wrapped in `SRSIM_TRACE_ENABLED()`, an
 * inlined relaxed load of one atomic flag (or compiled out entirely
 * with -DSRSIM_TRACE_OFF). With tracing off, instrumented code paths
 * perform no allocation, no locking, and no I/O, and all simulator /
 * compiler outputs are byte-identical to the uninstrumented code
 * (pinned by tests/test_property_compile.cc and tests/test_trace.cc).
 *
 * Threading: events land in per-thread buffers (registered with the
 * tracer on first use, no locking on the record path after that) and
 * are merged at export time by a deterministic sort on
 * (timestamp, track, per-thread sequence). Every srsim track has a
 * single producer — a link/CP/AP track is written only by the thread
 * running that simulation, a compiler phase by the compiling thread —
 * so per-track order is exact program order.
 */

#ifndef SRSIM_TRACE_TRACE_HH_
#define SRSIM_TRACE_TRACE_HH_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

namespace srsim {

namespace metrics {
class Registry;
} // namespace metrics

namespace trace {

/** What a track represents; becomes a Chrome "process". */
enum class TrackKind : std::uint8_t
{
    Link = 0,     ///< one half-duplex channel (tid = link id)
    Cp,           ///< one communication processor (tid = node id)
    Ap,           ///< one application processor (tid = node id)
    Msg,          ///< one TFG message (tid = message id)
    Sim,          ///< run-level events (invocations, violations)
    Compiler,     ///< SR compiler phases (wall-clock timestamps)
};

/** @return stable human-readable track-kind name. */
const char *trackKindName(TrackKind k);

/** Chrome trace-event phase of one event. */
enum class EventType : std::uint8_t
{
    Begin = 0,    ///< duration start ("B")
    End,          ///< duration end ("E")
    Complete,     ///< self-contained span ("X", carries dur)
    Instant,      ///< point event ("i")
};

/** @return the Chrome "ph" letter for an event type. */
char eventTypeChar(EventType t);

/** One recorded event. */
struct Event
{
    EventType type = EventType::Instant;
    TrackKind track = TrackKind::Sim;
    std::int32_t trackId = 0;
    /** Stable category slug ("link", "xbar", "task", ...). */
    const char *category = "";
    std::string name;
    /** Timestamp in microseconds (sim time; wall time on Compiler). */
    double ts = 0.0;
    /** Span length for Complete events. */
    double dur = 0.0;
    /** Message id context, -1 when not applicable. */
    std::int32_t msg = -1;
    /** Invocation context, -1 when not applicable. */
    std::int32_t invocation = -1;
    /** Free-form extra context (violation text, cycle report). */
    std::string detail;
    /** Per-thread record order, assigned by the tracer. */
    std::uint64_t seq = 0;
};

/**
 * Event sink. All methods are thread-safe; record() is lock-free
 * after a thread's first event on a given tracer. The process-wide
 * instance() remains as the default engine context's sink; engine
 * contexts may own private tracers (each keeps its own per-thread
 * buffers — two tracers never share a buffer).
 */
class Tracer
{
  public:
    Tracer();

    static Tracer &instance();

    /** Fast inlined guard used by every instrumentation site. */
    static bool
    enabled()
    {
        return enabled_.load(std::memory_order_relaxed);
    }

    /** Turn the sink on/off (off discards nothing already buffered). */
    static void setEnabled(bool on);

    /** Drop all buffered events. */
    void clear();

    /** Append one event to the calling thread's buffer. */
    void record(Event e);

    /** Buffered event count across all threads. */
    std::size_t size() const;

    /**
     * All events merged in deterministic order:
     * (ts, track kind, track id, per-thread seq, type, name).
     */
    std::vector<Event> collect() const;

    /** Chrome trace-event JSON (about:tracing / Perfetto). */
    void exportChrome(std::ostream &os) const;

    /** Flat CSV, one event per row. */
    void exportCsv(std::ostream &os) const;

    /** Wall-clock microseconds since the process anchor. */
    static double nowWallUs();

  private:
    struct Buffer
    {
        std::vector<Event> events;
        std::uint64_t nextSeq = 0;
    };

    Buffer &threadBuffer();

    static std::atomic<bool> enabled_;

    /** Distinguishes this tracer's thread-local buffers. */
    const std::uint64_t id_;

    mutable std::mutex mu_;
    std::vector<std::shared_ptr<Buffer>> buffers_;
};

/**
 * RAII compiler-phase span: Begin on construction, End on
 * destruction, both on the Compiler track with wall-clock
 * timestamps; the elapsed milliseconds also feed the metrics
 * histogram "sr.phase_ms.<name>" when metrics are enabled.
 * Free when both tracing and metrics are off.
 */
class ScopedPhase
{
  public:
    /**
     * Record against an explicit sink and registry — callers reach
     * both through their engine context (EngineContext::tracer() /
     * metricsRegistry()), never through the process singletons.
     */
    ScopedPhase(const char *name, Tracer &tracer,
                metrics::Registry &registry);
    ~ScopedPhase();

    ScopedPhase(const ScopedPhase &) = delete;
    ScopedPhase &operator=(const ScopedPhase &) = delete;

  private:
    const char *name_;
    Tracer *tracer_;
    metrics::Registry *registry_;
    double startUs_ = 0.0;
    bool active_ = false;
};

// --- Typed recording helpers (no-ops when tracing is off) ---------
// All take the destination tracer explicitly; callers route through
// their engine context rather than the process-wide instance.

void linkAcquire(Tracer &t, std::int32_t link,
                 const std::string &msgName, std::int32_t msg,
                 std::int32_t inv, double ts);
void linkRelease(Tracer &t, std::int32_t link, std::int32_t msg,
                 std::int32_t inv, double ts);
void linkBlocked(Tracer &t, std::int32_t link,
                 const std::string &msgName, std::int32_t msg,
                 std::int32_t inv, double ts);
/** SR scheduled occupancy: a whole window, duration known upfront. */
void linkOccupy(Tracer &t, std::int32_t link,
                const std::string &msgName, std::int32_t msg,
                std::int32_t inv, double ts, double dur);
void xbarExecute(Tracer &t, std::int32_t node,
                 const std::string &msgName, std::int32_t msg,
                 std::int32_t inv, double ts, double dur);
void msgWindowBegin(Tracer &t, std::int32_t msg,
                    const std::string &msgName, std::int32_t inv,
                    double ts);
void msgWindowEnd(Tracer &t, std::int32_t msg, std::int32_t inv,
                  double ts);
/** Scheduled message window, duration known upfront (SR). */
void msgWindowSpan(Tracer &t, std::int32_t msg,
                   const std::string &msgName, std::int32_t inv,
                   double ts, double dur);
void taskBegin(Tracer &t, std::int32_t node,
               const std::string &taskName, std::int32_t inv,
               double ts);
void taskEnd(Tracer &t, std::int32_t node, std::int32_t inv,
             double ts);
void taskSpan(Tracer &t, std::int32_t node,
              const std::string &taskName, std::int32_t inv,
              double ts, double dur);
void invocationComplete(Tracer &t, std::int32_t inv, double ts);
void violation(Tracer &t, const std::string &what, double ts);
/** Injected fault taking effect (link death, schedule swap, drop). */
void faultEvent(Tracer &t, const std::string &what, double ts);
/**
 * Online scheduling service request (admit/remove/period/fault)
 * being processed or a new schedule being published.
 */
void onlineRequest(Tracer &t, const std::string &what, double ts);
void deadlock(Tracer &t, const std::string &cycle, double ts);

} // namespace trace
} // namespace srsim

/**
 * Statement guard: `SRSIM_TRACE_IF(stmt);` executes stmt only when
 * tracing is enabled; compiles to nothing with -DSRSIM_TRACE_OFF.
 */
#ifdef SRSIM_TRACE_OFF
#define SRSIM_TRACE_ENABLED() (false)
#else
#define SRSIM_TRACE_ENABLED() (::srsim::trace::Tracer::enabled())
#endif

#define SRSIM_TRACE_IF(stmt)                                          \
    do {                                                              \
        if (SRSIM_TRACE_ENABLED()) {                                  \
            stmt;                                                     \
        }                                                             \
    } while (0)

#endif // SRSIM_TRACE_TRACE_HH_
