#include "trace/trace.hh"

#include <algorithm>
#include <chrono>
#include <tuple>
#include <unordered_map>

#include "metrics/metrics.hh"
#include "util/json.hh"
#include "util/logging.hh"

namespace srsim {
namespace trace {

std::atomic<bool> Tracer::enabled_{false};

namespace {
std::atomic<std::uint64_t> g_nextTracerId{0};
} // namespace

Tracer::Tracer()
    : id_(g_nextTracerId.fetch_add(1, std::memory_order_relaxed))
{
}

const char *
trackKindName(TrackKind k)
{
    switch (k) {
      case TrackKind::Link: return "links";
      case TrackKind::Cp: return "cps";
      case TrackKind::Ap: return "aps";
      case TrackKind::Msg: return "messages";
      case TrackKind::Sim: return "sim";
      case TrackKind::Compiler: return "compiler";
    }
    return "unknown";
}

char
eventTypeChar(EventType t)
{
    switch (t) {
      case EventType::Begin: return 'B';
      case EventType::End: return 'E';
      case EventType::Complete: return 'X';
      case EventType::Instant: return 'i';
    }
    return '?';
}

Tracer &
Tracer::instance()
{
    static Tracer t;
    return t;
}

void
Tracer::setEnabled(bool on)
{
    enabled_.store(on, std::memory_order_relaxed);
}

Tracer::Buffer &
Tracer::threadBuffer()
{
    // Keyed by tracer id: distinct tracers (per-context sinks) must
    // never share one thread's buffer. Ids are not recycled, so a
    // stale entry for a dead tracer can never be resolved again.
    thread_local std::unordered_map<std::uint64_t,
                                    std::shared_ptr<Buffer>>
        bufs;
    std::shared_ptr<Buffer> &buf = bufs[id_];
    if (!buf) {
        buf = std::make_shared<Buffer>();
        std::lock_guard<std::mutex> lock(mu_);
        buffers_.push_back(buf);
    }
    return *buf;
}

void
Tracer::clear()
{
    std::lock_guard<std::mutex> lock(mu_);
    for (auto &b : buffers_) {
        b->events.clear();
        b->nextSeq = 0;
    }
}

void
Tracer::record(Event e)
{
    Buffer &b = threadBuffer();
    e.seq = b.nextSeq++;
    b.events.push_back(std::move(e));
}

std::size_t
Tracer::size() const
{
    std::lock_guard<std::mutex> lock(mu_);
    std::size_t n = 0;
    for (const auto &b : buffers_)
        n += b->events.size();
    return n;
}

std::vector<Event>
Tracer::collect() const
{
    std::vector<Event> out;
    {
        std::lock_guard<std::mutex> lock(mu_);
        for (const auto &b : buffers_)
            out.insert(out.end(), b->events.begin(),
                       b->events.end());
    }
    std::stable_sort(
        out.begin(), out.end(),
        [](const Event &a, const Event &b) {
            return std::tie(a.ts, a.track, a.trackId, a.seq, a.type,
                            a.name) < std::tie(b.ts, b.track,
                                               b.trackId, b.seq,
                                               b.type, b.name);
        });
    return out;
}

namespace {

int
chromePid(TrackKind k)
{
    return static_cast<int>(k) + 1;
}

std::string
trackLabel(TrackKind k, std::int32_t id)
{
    switch (k) {
      case TrackKind::Link: return "link " + std::to_string(id);
      case TrackKind::Cp: return "cp " + std::to_string(id);
      case TrackKind::Ap: return "ap " + std::to_string(id);
      case TrackKind::Msg: return "msg " + std::to_string(id);
      case TrackKind::Sim: return "sim";
      case TrackKind::Compiler: return "compiler";
    }
    return "?";
}

void
writeArgs(JsonWriter &w, const Event &e)
{
    w.key("args").beginObject();
    if (e.msg >= 0)
        w.kv("msg", static_cast<int>(e.msg));
    if (e.invocation >= 0)
        w.kv("inv", static_cast<int>(e.invocation));
    if (!e.detail.empty())
        w.kv("detail", e.detail);
    w.endObject();
}

} // namespace

void
Tracer::exportChrome(std::ostream &os) const
{
    const std::vector<Event> events = collect();

    JsonWriter w(os);
    w.beginObject();
    w.kv("displayTimeUnit", "ms");
    w.key("traceEvents").beginArray();

    // Metadata: one Chrome process per track kind, one thread per
    // track, emitted for every track that carries events, in
    // deterministic (kind, id) order.
    std::vector<std::pair<TrackKind, std::int32_t>> tracks;
    for (const Event &e : events)
        tracks.emplace_back(e.track, e.trackId);
    std::sort(tracks.begin(), tracks.end());
    tracks.erase(std::unique(tracks.begin(), tracks.end()),
                 tracks.end());

    std::uint8_t seenKind = 0xFF;
    for (const auto &[kind, id] : tracks) {
        if (static_cast<std::uint8_t>(kind) != seenKind) {
            seenKind = static_cast<std::uint8_t>(kind);
            w.beginObject();
            w.kv("name", "process_name");
            w.kv("ph", "M");
            w.kv("pid", chromePid(kind));
            w.key("args").beginObject();
            w.kv("name", trackKindName(kind));
            w.endObject();
            w.endObject();
        }
        w.beginObject();
        w.kv("name", "thread_name");
        w.kv("ph", "M");
        w.kv("pid", chromePid(kind));
        w.kv("tid", static_cast<int>(id));
        w.key("args").beginObject();
        w.kv("name", trackLabel(kind, id));
        w.endObject();
        w.endObject();
    }

    for (const Event &e : events) {
        w.beginObject();
        w.kv("name", e.name);
        w.kv("cat", std::string(e.category));
        w.kv("ph", std::string(1, eventTypeChar(e.type)));
        w.kv("ts", e.ts);
        if (e.type == EventType::Complete)
            w.kv("dur", e.dur);
        if (e.type == EventType::Instant)
            w.kv("s", "t"); // thread-scoped instant
        w.kv("pid", chromePid(e.track));
        w.kv("tid", static_cast<int>(e.trackId));
        writeArgs(w, e);
        w.endObject();
    }

    w.endArray();
    w.endObject();
    os << "\n";
}

void
Tracer::exportCsv(std::ostream &os) const
{
    os << "ts,dur,type,track,track_id,category,name,msg,"
          "invocation,detail\n";
    for (const Event &e : collect()) {
        std::string detail = e.detail;
        for (char &c : detail)
            if (c == ',' || c == '\n')
                c = ';';
        char buf[64];
        std::snprintf(buf, sizeof(buf), "%.12g,%.12g", e.ts, e.dur);
        os << buf << ',' << eventTypeChar(e.type) << ','
           << trackKindName(e.track) << ',' << e.trackId << ','
           << e.category << ',' << e.name << ',' << e.msg << ','
           << e.invocation << ',' << detail << "\n";
    }
}

double
Tracer::nowWallUs()
{
    using clock = std::chrono::steady_clock;
    static const clock::time_point anchor = clock::now();
    return std::chrono::duration<double, std::micro>(clock::now() -
                                                     anchor)
        .count();
}

ScopedPhase::ScopedPhase(const char *name, Tracer &tracer,
                         metrics::Registry &registry)
    : name_(name), tracer_(&tracer), registry_(&registry)
{
    active_ = SRSIM_TRACE_ENABLED() ||
              metrics::Registry::enabled();
    if (!active_)
        return;
    startUs_ = Tracer::nowWallUs();
    if (SRSIM_TRACE_ENABLED()) {
        Event e;
        e.type = EventType::Begin;
        e.track = TrackKind::Compiler;
        e.category = "phase";
        e.name = name_;
        e.ts = startUs_;
        tracer_->record(std::move(e));
    }
}

ScopedPhase::~ScopedPhase()
{
    if (!active_)
        return;
    const double endUs = Tracer::nowWallUs();
    if (SRSIM_TRACE_ENABLED()) {
        Event e;
        e.type = EventType::End;
        e.track = TrackKind::Compiler;
        e.category = "phase";
        e.name = name_;
        e.ts = std::max(endUs, startUs_);
        tracer_->record(std::move(e));
    }
    if (metrics::Registry::enabled()) {
        registry_
            ->histogram(std::string("sr.phase_ms.") + name_,
                        metrics::Histogram::timeBucketsMs())
            .add((endUs - startUs_) / 1000.0);
    }
}

namespace {

void
emit(Tracer &t, EventType type, TrackKind track,
     std::int32_t trackId, const char *category, std::string name,
     double ts, double dur, std::int32_t msg, std::int32_t inv,
     std::string detail = {})
{
    Event e;
    e.type = type;
    e.track = track;
    e.trackId = trackId;
    e.category = category;
    e.name = std::move(name);
    e.ts = ts;
    e.dur = dur;
    e.msg = msg;
    e.invocation = inv;
    e.detail = std::move(detail);
    t.record(std::move(e));
}

} // namespace

void
linkAcquire(Tracer &t, std::int32_t link, const std::string &msgName,
            std::int32_t msg, std::int32_t inv, double ts)
{
    emit(t, EventType::Begin, TrackKind::Link, link, "link", msgName,
         ts, 0.0, msg, inv);
}

void
linkRelease(Tracer &t, std::int32_t link, std::int32_t msg,
            std::int32_t inv, double ts)
{
    emit(t, EventType::End, TrackKind::Link, link, "link", {}, ts,
         0.0, msg, inv);
}

void
linkBlocked(Tracer &t, std::int32_t link, const std::string &msgName,
            std::int32_t msg, std::int32_t inv, double ts)
{
    emit(t, EventType::Instant, TrackKind::Link, link, "blocked",
         "blocked: " + msgName, ts, 0.0, msg, inv);
}

void
linkOccupy(Tracer &t, std::int32_t link, const std::string &msgName,
           std::int32_t msg, std::int32_t inv, double ts, double dur)
{
    emit(t, EventType::Complete, TrackKind::Link, link, "link",
         msgName, ts, dur, msg, inv);
}

void
xbarExecute(Tracer &t, std::int32_t node, const std::string &msgName,
            std::int32_t msg, std::int32_t inv, double ts,
            double dur)
{
    emit(t, EventType::Complete, TrackKind::Cp, node, "xbar",
         msgName, ts, dur, msg, inv);
}

void
msgWindowBegin(Tracer &t, std::int32_t msg,
               const std::string &msgName, std::int32_t inv,
               double ts)
{
    emit(t, EventType::Begin, TrackKind::Msg, msg, "window", msgName,
         ts, 0.0, msg, inv);
}

void
msgWindowEnd(Tracer &t, std::int32_t msg, std::int32_t inv,
             double ts)
{
    emit(t, EventType::End, TrackKind::Msg, msg, "window", {}, ts,
         0.0, msg, inv);
}

void
msgWindowSpan(Tracer &t, std::int32_t msg, const std::string &msgName,
              std::int32_t inv, double ts, double dur)
{
    emit(t, EventType::Complete, TrackKind::Msg, msg, "window",
         msgName, ts, dur, msg, inv);
}

void
taskBegin(Tracer &t, std::int32_t node, const std::string &taskName,
          std::int32_t inv, double ts)
{
    emit(t, EventType::Begin, TrackKind::Ap, node, "task", taskName,
         ts, 0.0, -1, inv);
}

void
taskEnd(Tracer &t, std::int32_t node, std::int32_t inv, double ts)
{
    emit(t, EventType::End, TrackKind::Ap, node, "task", {}, ts, 0.0,
         -1, inv);
}

void
taskSpan(Tracer &t, std::int32_t node, const std::string &taskName,
         std::int32_t inv, double ts, double dur)
{
    emit(t, EventType::Complete, TrackKind::Ap, node, "task",
         taskName, ts, dur, -1, inv);
}

void
invocationComplete(Tracer &t, std::int32_t inv, double ts)
{
    emit(t, EventType::Instant, TrackKind::Sim, 0, "invocation",
         "invocation complete", ts, 0.0, -1, inv);
}

void
violation(Tracer &t, const std::string &what, double ts)
{
    emit(t, EventType::Instant, TrackKind::Sim, 0, "violation",
         "invariant violation", ts, 0.0, -1, -1, what);
}

void
faultEvent(Tracer &t, const std::string &what, double ts)
{
    emit(t, EventType::Instant, TrackKind::Sim, 0, "fault", "fault",
         ts, 0.0, -1, -1, what);
}

void
onlineRequest(Tracer &t, const std::string &what, double ts)
{
    emit(t, EventType::Instant, TrackKind::Compiler, 0, "online",
         "online request", ts, 0.0, -1, -1, what);
}

void
deadlock(Tracer &t, const std::string &cycle, double ts)
{
    emit(t, EventType::Instant, TrackKind::Sim, 0, "deadlock",
         "deadlock", ts, 0.0, -1, -1, cycle);
}

} // namespace trace
} // namespace srsim
