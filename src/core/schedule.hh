/**
 * @file
 * The communication schedule Omega and per-node switching schedules
 * omega_i (Sec. 4.1, 5.4).
 *
 * A GlobalSchedule records, for every network message, the frame
 * time-windows in which it owns a clear path (its assigned links,
 * all simultaneously). From it, per-node switching schedules are
 * derived: each communication processor independently executes a
 * list of timed crossbar commands connecting an input port (an
 * incoming link, or the local AP's output buffer at the source) to
 * an output port (an outgoing link, or the AP's input buffer at the
 * destination).
 */

#ifndef SRSIM_CORE_SCHEDULE_HH_
#define SRSIM_CORE_SCHEDULE_HH_

#include <ostream>
#include <string>
#include <vector>

#include "core/path_assignment.hh"
#include "core/time_bounds.hh"
#include "mapping/allocation.hh"
#include "tfg/tfg.hh"
#include "topology/topology.hh"
#include "util/time.hh"

namespace srsim {

/** A crossbar port: a network link or the local AP buffer. */
struct PortRef
{
    enum class Kind { Link, ApBuffer };
    Kind kind = Kind::ApBuffer;
    LinkId link = kInvalidLink;

    static PortRef
    linkPort(LinkId l)
    {
        return PortRef{Kind::Link, l};
    }
    static PortRef ap() { return PortRef{}; }

    bool
    operator==(const PortRef &o) const
    {
        return kind == o.kind && (kind != Kind::Link ||
                                  link == o.link);
    }
};

/** One timed crossbar command of a node switching schedule. */
struct SwitchCommand
{
    TimeWindow span;
    MessageId msg = kInvalidMessage;
    PortRef in;
    PortRef out;
};

/** The switching schedule omega_i of one node's CP. */
struct NodeSchedule
{
    NodeId node = kInvalidNode;
    /** Commands sorted by start time. */
    std::vector<SwitchCommand> commands;
};

/** The complete communication schedule Omega. */
struct GlobalSchedule
{
    /** Frame length (the invocation period tau_in). */
    Time period = 0.0;
    /**
     * Per network message index: clear-path windows in frame
     * coordinates, sorted, non-overlapping.
     */
    std::vector<std::vector<TimeWindow>> segments;
    /** The path each message's windows apply to. */
    PathAssignment paths;

    // ---- degraded-mode provenance (empty/zero on healthy compiles)
    /** Fault spec this schedule was compiled against, if any. */
    std::string faultSpec;
    /**
     * Period of the healthy schedule this one replaced, when the
     * repair pipeline had to stretch the period; 0 otherwise.
     */
    Time degradedFrom = 0.0;

    /** Total scheduled transmission time of message index i. */
    Time
    scheduledTime(std::size_t msgIdx) const
    {
        Time s = 0.0;
        for (const TimeWindow &w : segments[msgIdx])
            s += w.length();
        return s;
    }
};

/**
 * Derive the per-node switching schedules omega_i from Omega.
 * Every node of the topology gets a NodeSchedule (possibly empty).
 */
std::vector<NodeSchedule>
deriveNodeSchedules(const TaskFlowGraph &g, const Topology &topo,
                    const TaskAllocation &alloc,
                    const TimeBounds &bounds,
                    const GlobalSchedule &omega);

/** Pretty-print one node schedule (for examples/debugging). */
void
printNodeSchedule(std::ostream &os, const NodeSchedule &ns,
                  const TaskFlowGraph &g);

/**
 * Check that every segment boundary of Omega lies on the packet
 * grid (Sec. 4.1's time base). Holds when the workload's task
 * times, message times, and the input period are packet multiples
 * and the scheduler ran with the matching packetTime.
 */
bool
isPacketAligned(const GlobalSchedule &omega, Time packetTime,
                Time eps = kTimeEps);

} // namespace srsim

#endif // SRSIM_CORE_SCHEDULE_HH_
