#include "core/verifier.hh"

#include <algorithm>
#include <map>
#include <sstream>

#include "util/logging.hh"

namespace srsim {

namespace {

std::string
str(const TimeWindow &w)
{
    std::ostringstream oss;
    oss << w;
    return oss.str();
}

} // namespace

VerifyResult
verifySchedule(const TaskFlowGraph &g, const Topology &topo,
               const TaskAllocation &alloc, const TimeBounds &bounds,
               const GlobalSchedule &omega)
{
    VerifyResult res;

    if (omega.segments.size() != bounds.messages.size()) {
        res.fail("schedule covers " +
                 std::to_string(omega.segments.size()) +
                 " messages, bounds have " +
                 std::to_string(bounds.messages.size()));
        return res;
    }
    if (!timeEq(omega.period, bounds.inputPeriod))
        res.fail("schedule period differs from input period");

    // Structural gate: the schedule must only reference resources
    // that exist in (and survive the fault mask of) this topology.
    // A schedule compiled for a different or healthier fabric fails
    // loudly with a structured error instead of tripping internal
    // assertions in the derived-schedule checks below.
    for (std::size_t i = 0; i < bounds.messages.size(); ++i) {
        const Message &m = g.message(bounds.messages[i].msg);
        for (LinkId l : omega.paths.pathFor(i).links) {
            if (l < 0 || l >= topo.numLinks()) {
                res.fail("message '" + m.name +
                         "': references link " + std::to_string(l) +
                         " absent from " + topo.name() + " (" +
                         std::to_string(topo.numLinks()) +
                         " links)");
                res.error.stage = SrFailureStage::Verification;
                res.error.message = m.id;
                res.error.detail = res.violations.back();
                return res;
            }
            if (!topo.linkUp(l)) {
                res.fail("message '" + m.name +
                         "': routed over failed link " +
                         std::to_string(l));
                res.error.stage = SrFailureStage::Fault;
                res.error.message = m.id;
                res.error.detail = res.violations.back();
                return res;
            }
        }
        for (NodeId n : omega.paths.pathFor(i).nodes) {
            if (n >= 0 && n < topo.numNodes() && !topo.nodeUp(n)) {
                res.fail("message '" + m.name +
                         "': routed through failed node " +
                         std::to_string(n));
                res.error.stage = SrFailureStage::Fault;
                res.error.message = m.id;
                res.error.detail = res.violations.back();
                return res;
            }
        }
    }

    // Per-message checks: path validity, duration, window fit.
    for (std::size_t i = 0; i < bounds.messages.size(); ++i) {
        const MessageBounds &b = bounds.messages[i];
        const Message &m = g.message(b.msg);
        const Path &p = omega.paths.pathFor(i);

        if (!topo.validPath(p)) {
            res.fail("message '" + m.name + "': invalid path");
            continue;
        }
        if (p.source() != alloc.nodeOf(m.src) ||
            p.destination() != alloc.nodeOf(m.dst)) {
            res.fail("message '" + m.name +
                     "': path endpoints disagree with allocation");
        }

        const Time scheduled = omega.scheduledTime(i);
        if (!timeEq(scheduled, b.duration)) {
            res.fail("message '" + m.name + "': scheduled " +
                     std::to_string(scheduled) + " us, needs " +
                     std::to_string(b.duration));
        }

        for (const TimeWindow &w : omega.segments[i]) {
            if (w.empty()) {
                res.fail("message '" + m.name +
                         "': empty segment " + str(w));
                continue;
            }
            if (timeLt(w.start, 0.0) ||
                timeGt(w.end, omega.period)) {
                res.fail("message '" + m.name + "': segment " +
                         str(w) + " outside frame");
            }
            bool inside = false;
            for (const TimeWindow &win : b.windows)
                inside = inside || win.covers(w.start, w.end);
            if (!inside) {
                res.fail("message '" + m.name + "': segment " +
                         str(w) + " violates its time bounds");
            }
        }

        // Segments of one message must not overlap each other.
        auto segs = omega.segments[i];
        std::sort(segs.begin(), segs.end(),
                  [](const TimeWindow &a, const TimeWindow &b2) {
                      return a.start < b2.start;
                  });
        for (std::size_t s = 1; s < segs.size(); ++s) {
            if (timeLt(segs[s].start, segs[s - 1].end)) {
                res.fail("message '" + m.name +
                         "': overlapping segments " +
                         str(segs[s - 1]) + " and " + str(segs[s]));
            }
        }
    }

    // Contention-freedom: per link, collect every (window, msg) and
    // check pairwise disjointness.
    std::map<LinkId, std::vector<std::pair<TimeWindow, MessageId>>>
        by_link;
    for (std::size_t i = 0; i < bounds.messages.size(); ++i) {
        for (LinkId l : omega.paths.pathFor(i).links)
            for (const TimeWindow &w : omega.segments[i])
                by_link[l].emplace_back(w, bounds.messages[i].msg);
    }
    for (auto &[l, wins] : by_link) {
        std::sort(wins.begin(), wins.end(),
                  [](const auto &a, const auto &b) {
                      return a.first.start < b.first.start;
                  });
        for (std::size_t s = 1; s < wins.size(); ++s) {
            if (timeLt(wins[s].first.start, wins[s - 1].first.end)) {
                res.fail(
                    "link " + std::to_string(l) + ": messages '" +
                    g.message(wins[s - 1].second).name + "' and '" +
                    g.message(wins[s].second).name +
                    "' overlap in " + str(wins[s - 1].first) +
                    " / " + str(wins[s].first));
            }
        }

        // Derated-link duty bound (frame-level necessary condition):
        // a link surviving at duty-cycle fraction f < 1 cannot be
        // busy for more than f of the frame.
        const double cap = topo.linkCapacity(l);
        if (cap < 1.0) {
            Time busy = 0.0;
            for (const auto &[w, msg] : wins)
                busy += w.length();
            if (timeGt(busy, cap * omega.period)) {
                std::ostringstream oss;
                oss << "link " << l << ": busy " << busy
                    << " us exceeds derated capacity " << cap
                    << " x period";
                res.fail(oss.str());
            }
        }
    }

    // Crossbar consistency on the derived node schedules: at any
    // node, commands whose spans overlap must use distinct input
    // ports and distinct output ports (AP buffers are per-channel,
    // so AP<->AP pairs are exempt).
    const auto node_scheds =
        deriveNodeSchedules(g, topo, alloc, bounds, omega);
    for (const NodeSchedule &ns : node_scheds) {
        for (std::size_t a = 0; a < ns.commands.size(); ++a) {
            for (std::size_t b2 = a + 1; b2 < ns.commands.size();
                 ++b2) {
                const SwitchCommand &ca = ns.commands[a];
                const SwitchCommand &cb = ns.commands[b2];
                if (!ca.span.overlaps(cb.span))
                    continue;
                if (ca.msg == cb.msg)
                    continue;
                const bool in_clash =
                    ca.in == cb.in &&
                    ca.in.kind == PortRef::Kind::Link;
                const bool out_clash =
                    ca.out == cb.out &&
                    ca.out.kind == PortRef::Kind::Link;
                if (in_clash || out_clash) {
                    res.fail("node " + std::to_string(ns.node) +
                             ": crossbar port conflict between "
                             "messages '" +
                             g.message(ca.msg).name + "' and '" +
                             g.message(cb.msg).name + "'");
                }
            }
        }
    }

    return res;
}

} // namespace srsim
