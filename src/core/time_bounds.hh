/**
 * @file
 * Message release-times and deadlines for scheduled routing (Sec. 4).
 *
 * For pipelining with period tau_in >= tau_c, every message M_i is
 * granted a transmission window as long as the longest task: it is
 * released when its source task completes (in the canonical
 * tau_c-window invocation schedule) and must be delivered within
 * tau_c. Because every message recurs with period tau_in, all
 * constraints are folded into the single frame [0, tau_in]: a window
 * that wraps past tau_in is split into [r, tau_in) and [0, d').
 */

#ifndef SRSIM_CORE_TIME_BOUNDS_HH_
#define SRSIM_CORE_TIME_BOUNDS_HH_

#include <vector>

#include "mapping/allocation.hh"
#include "tfg/tfg.hh"
#include "tfg/timing.hh"
#include "util/time.hh"

namespace srsim {

/** Folded time bounds of one network message. */
struct MessageBounds
{
    MessageId msg = kInvalidMessage;
    /** Transmission time over one clear path. */
    Time duration = 0.0;
    /** Release instant folded into [0, tau_in). */
    Time release = 0.0;
    /** Deadline folded into (0, tau_in]; < release means wrapped. */
    Time deadline = 0.0;
    /** Unfolded release (canonical zeroth-invocation time). */
    Time absoluteRelease = 0.0;
    /** Active windows inside the frame (one, or two if wrapped). */
    std::vector<TimeWindow> windows;

    /** Total active time across the frame windows. */
    Time
    activeTime() const
    {
        Time s = 0.0;
        for (const TimeWindow &w : windows)
            s += w.length();
        return s;
    }

    /** @return true if the message has no slack (Eq. (2) equality). */
    bool noSlack() const { return timeGe(duration, activeTime()); }

    /** @return true if frame instant t is inside an active window. */
    bool
    activeAt(Time t) const
    {
        for (const TimeWindow &w : windows)
            if (w.contains(t))
                return true;
        return false;
    }
};

/** Time bounds of every network message of a mapped TFG. */
struct TimeBounds
{
    Time inputPeriod = 0.0;
    Time tauC = 0.0;
    /** Critical path length Delta (eager timing). */
    Time criticalPath = 0.0;
    /** Invocation latency of the canonical window schedule. */
    Time windowLatency = 0.0;
    /** One entry per *network* message (co-located ones excluded). */
    std::vector<MessageBounds> messages;

    /** Index into messages for a MessageId, or -1 if local. */
    std::vector<int> indexOf;

    const MessageBounds *
    boundsFor(MessageId m) const
    {
        const int i = indexOf[static_cast<std::size_t>(m)];
        return i < 0 ? nullptr
                     : &messages[static_cast<std::size_t>(i)];
    }
};

/**
 * Compute folded time bounds for every network message.
 *
 * Fatal if inputPeriod < tau_c (the paper requires tau_in >= tau_c;
 * otherwise the slowest task accumulates input without bound).
 */
TimeBounds
computeTimeBounds(const TaskFlowGraph &g, const TaskAllocation &alloc,
                  const TimingModel &tm, Time inputPeriod);

} // namespace srsim

#endif // SRSIM_CORE_TIME_BOUNDS_HH_
