/**
 * @file
 * Path assignment for scheduled routing (Sec. 5.1, Fig. 4).
 *
 * Each network message is assigned one of the multiple equivalent
 * minimal paths between its endpoints. A candidate assignment is
 * scored by the peak utilization
 *     U = max( max_j U'_j , max_{j,k} U^s_jk )
 * where U'_j is link utilization (total transmission demand on link
 * L_j over the total time in which at least one message is active on
 * it, Def. 5.1) and U^s_jk is spot utilization (the number of
 * no-slack messages using L_j in interval A_k, Def. 5.2). U <= 1 is
 * necessary for a feasible flow-control schedule to exist.
 *
 * AssignPaths (Fig. 4) performs iterative improvement: repeatedly
 * reroute one multi-hop message on the peak link/spot, choosing the
 * alternative path with the largest peak reduction (or, failing
 * that, one that repositions the same peak value elsewhere in the
 * link-interval space), and restart randomly to escape local minima.
 */

#ifndef SRSIM_CORE_PATH_ASSIGNMENT_HH_
#define SRSIM_CORE_PATH_ASSIGNMENT_HH_

#include <cstdint>
#include <string>
#include <vector>

#include "core/intervals.hh"
#include "core/time_bounds.hh"
#include "mapping/allocation.hh"
#include "tfg/tfg.hh"
#include "topology/topology.hh"

namespace srsim {

/**
 * A complete path assignment: one route per network message, indexed
 * like TimeBounds::messages.
 */
struct PathAssignment
{
    std::vector<Path> paths;

    const Path &pathFor(std::size_t msgIdx) const
    {
        return paths[msgIdx];
    }
};

/** Where the peak utilization is attained. */
struct PeakPosition
{
    bool isSpot = false;
    LinkId link = kInvalidLink;
    /** Interval index; meaningful only when isSpot. */
    std::size_t interval = 0;

    bool
    operator==(const PeakPosition &o) const
    {
        return isSpot == o.isSpot && link == o.link &&
               (!isSpot || interval == o.interval);
    }
};

/** Peak utilization and its position. */
struct UtilizationReport
{
    double peak = 0.0;
    PeakPosition position;
};

/**
 * Computes link/spot utilizations of path assignments against fixed
 * time bounds and interval decomposition.
 */
class UtilizationAnalyzer
{
  public:
    UtilizationAnalyzer(const TimeBounds &bounds,
                        const IntervalSet &intervals,
                        const Topology &topo);

    /** Link utilization U'_j (Def. 5.1). */
    double linkUtilization(const PathAssignment &pa, LinkId j) const;

    /** Spot utilization U^s_jk (Def. 5.2): raw no-slack count. */
    double
    spotUtilization(const PathAssignment &pa, LinkId j,
                    std::size_t k) const;

    /**
     * Peak U over all links and spots, with its position.
     *
     * Spots contribute only when they are hot-spots (two or more
     * no-slack messages on one link in one interval); a lone
     * no-slack message satisfies U^s_jk <= 1 and is not contention.
     * This matches the paper's plotted curves, which drop below 1.0
     * even at tau_m == tau_c where a no-slack message always exists.
     */
    UtilizationReport analyze(const PathAssignment &pa) const;

    const TimeBounds &bounds() const { return bounds_; }
    const IntervalSet &intervals() const { return intervals_; }

  private:
    const TimeBounds &bounds_;
    const IntervalSet &intervals_;
    const Topology &topo_;

    // Precomputed per-message data.
    std::vector<Time> durations_;
    std::vector<bool> noSlack_;
    std::vector<std::vector<std::size_t>> activeIv_;

    // Reusable scratch for analyze(); makes the analyzer
    // single-threaded but keeps the hot path allocation-free.
    mutable std::vector<double> scratchDemand_;
    mutable std::vector<char> scratchUsed_;
    mutable std::vector<int> scratchSpot_;
    mutable std::vector<LinkId> scratchTouched_;
};

namespace engine {
class EngineContext;
}

/** Knobs of the AssignPaths heuristic. */
struct AssignPathsOptions
{
    /** Cap on enumerated minimal paths per message (0 = all). */
    std::size_t maxPathsPerMessage = 256;
    /**
     * Random restarts beyond the first walk. The maxRestarts + 1
     * improvement walks are independent (walk r seeds its RNG from
     * deriveSeed(seed, r)) and run concurrently on the context's
     * ThreadPool; the best result (lowest peak U, ties to the
     * lowest restart index) wins, so the outcome is identical for
     * every thread count including the serial pool.
     */
    int maxRestarts = 12;
    /** Safety bound on reroutes within one improvement sweep. */
    int maxInnerIterations = 2000;
    std::uint64_t seed = 12345;
    /**
     * Engine context supplying the thread pool the restart walks
     * run on. nullptr uses the process default context. The walk
     * outcome is thread-count independent, so the choice of pool
     * never changes the assignment.
     */
    const engine::EngineContext *ctx = nullptr;
};

/** Outcome of assignPaths(). */
struct AssignPathsResult
{
    PathAssignment assignment;
    UtilizationReport report;
    int restarts = 0;
    int reroutes = 0;
    /**
     * False when no candidate path exists for some message (e.g. a
     * disconnected fabric); the assignment is then unusable and
     * `error` / `failedMessage` describe the offender.
     */
    bool ok = true;
    MessageId failedMessage = kInvalidMessage;
    std::string error;
};

/** Outcome of greedyRouteMessages(). */
struct GreedyRouteResult
{
    /** False when some message has no surviving minimal path. */
    bool ok = false;
    MessageId failedMessage = kInvalidMessage;
    std::string error;
    /** Peak utilization of the final assignment. */
    UtilizationReport report;
};

/**
 * Route the given message indices greedily without a full compile:
 * every listed message first takes its first minimal path, then (in
 * list order) keeps the candidate minimizing the peak utilization
 * with all other routes fixed. All other rows of `pa` are left
 * untouched, so this is the single-message (and few-message) routing
 * entry point used by degraded-mode repair and by online admission.
 *
 * `pa` must be sized like bounds.messages; rows of the listed
 * indices may hold anything (they are overwritten).
 */
GreedyRouteResult
greedyRouteMessages(const TaskFlowGraph &g, const Topology &topo,
                    const TaskAllocation &alloc,
                    const TimeBounds &bounds,
                    const IntervalSet &intervals,
                    const std::vector<std::size_t> &indices,
                    std::size_t maxPathsPerMessage,
                    PathAssignment &pa);

/**
 * The deterministic-routing baseline: every message takes its
 * LSD-to-MSD path.
 */
PathAssignment
lsdToMsdAssignment(const TaskFlowGraph &g, const Topology &topo,
                   const TaskAllocation &alloc,
                   const TimeBounds &bounds);

/** Run the AssignPaths heuristic of Fig. 4. */
AssignPathsResult
assignPaths(const TaskFlowGraph &g, const Topology &topo,
            const TaskAllocation &alloc, const TimeBounds &bounds,
            const IntervalSet &intervals,
            const AssignPathsOptions &opts = {});

} // namespace srsim

#endif // SRSIM_CORE_PATH_ASSIGNMENT_HH_
