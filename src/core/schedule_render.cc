#include "core/schedule_render.hh"

#include <algorithm>
#include <iomanip>
#include <map>
#include <sstream>

#include "util/logging.hh"

namespace srsim {

namespace {

/** Stable, readable color per message index (golden-angle hues). */
std::string
messageColor(std::size_t idx)
{
    const double hue =
        std::fmod(static_cast<double>(idx) * 137.508, 360.0);
    std::ostringstream oss;
    oss << "hsl(" << std::fixed << std::setprecision(1) << hue
        << ", 65%, 55%)";
    return oss.str();
}

std::string
escape(const std::string &s)
{
    std::string out;
    for (char c : s) {
        switch (c) {
          case '&': out += "&amp;"; break;
          case '<': out += "&lt;"; break;
          case '>': out += "&gt;"; break;
          default: out += c;
        }
    }
    return out;
}

} // namespace

void
renderScheduleSvg(std::ostream &os, const TaskFlowGraph &g,
                  const Topology &topo, const TimeBounds &bounds,
                  const GlobalSchedule &omega,
                  const RenderOptions &opts)
{
    SRSIM_ASSERT(omega.period > 0.0, "schedule has no period");

    // Collect the links that carry traffic, in id order.
    std::map<LinkId, std::vector<std::pair<TimeWindow,
                                           std::size_t>>> rows;
    for (std::size_t i = 0; i < omega.segments.size(); ++i)
        for (LinkId l : omega.paths.pathFor(i).links)
            for (const TimeWindow &w : omega.segments[i])
                rows[l].emplace_back(w, i);

    const int label_w = 88;
    const int legend_h = 22 * (static_cast<int>(
                                   omega.segments.size() + 3) /
                               4) +
                         8;
    const int axis_h = 28;
    const int chart_w = opts.width - label_w - 10;
    const int chart_h =
        static_cast<int>(rows.size()) * opts.rowHeight;
    const int total_h = chart_h + axis_h + legend_h + 34;

    auto xpos = [&](Time t) {
        return label_w +
               t / omega.period * static_cast<double>(chart_w);
    };

    os << "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\""
       << opts.width << "\" height=\"" << total_h
       << "\" font-family=\"sans-serif\" font-size=\"11\">\n";
    os << "<rect width=\"100%\" height=\"100%\" fill=\"white\"/>\n";

    const std::string title =
        opts.title.empty()
            ? "scheduled routing: one frame of " +
                  std::to_string(omega.period) + " us"
            : opts.title;
    os << "<text x=\"" << label_w << "\" y=\"14\" "
       << "font-weight=\"bold\">" << escape(title) << "</text>\n";

    const int top = 24;
    int row = 0;
    for (const auto &[link, segs] : rows) {
        const int y = top + row * opts.rowHeight;
        const Link &lk = topo.link(link);
        os << "<text x=\"4\" y=\"" << y + opts.rowHeight - 5
           << "\">L" << link << " (" << lk.a << "-" << lk.b
           << ")</text>\n";
        os << "<rect x=\"" << label_w << "\" y=\"" << y
           << "\" width=\"" << chart_w << "\" height=\""
           << opts.rowHeight - 2
           << "\" fill=\"#f4f4f4\" stroke=\"#ddd\"/>\n";
        for (const auto &[w, msg] : segs) {
            const MessageBounds &b = bounds.messages[msg];
            os << "<rect x=\"" << xpos(w.start) << "\" y=\""
               << y + 1 << "\" width=\""
               << std::max(1.0, xpos(w.end) - xpos(w.start))
               << "\" height=\"" << opts.rowHeight - 4
               << "\" fill=\"" << messageColor(msg)
               << "\" stroke=\"#333\" stroke-width=\"0.4\">"
               << "<title>" << escape(g.message(b.msg).name)
               << " [" << w.start << ", " << w.end
               << ") us</title></rect>\n";
        }
        ++row;
    }

    // Time axis with ten ticks.
    const int ay = top + chart_h + 4;
    os << "<line x1=\"" << label_w << "\" y1=\"" << ay
       << "\" x2=\"" << label_w + chart_w << "\" y2=\"" << ay
       << "\" stroke=\"#333\"/>\n";
    for (int t = 0; t <= 10; ++t) {
        const Time tv = omega.period * t / 10.0;
        os << "<line x1=\"" << xpos(tv) << "\" y1=\"" << ay
           << "\" x2=\"" << xpos(tv) << "\" y2=\"" << ay + 4
           << "\" stroke=\"#333\"/>\n";
        os << "<text x=\"" << xpos(tv) << "\" y=\"" << ay + 16
           << "\" text-anchor=\"middle\">" << std::fixed
           << std::setprecision(0) << tv << "</text>\n";
    }

    // Legend, four entries per row.
    const int ly = ay + axis_h;
    for (std::size_t i = 0; i < omega.segments.size(); ++i) {
        const int cx = label_w +
                       static_cast<int>(i % 4) *
                           (chart_w / 4);
        const int cy = ly + static_cast<int>(i / 4) * 22;
        os << "<rect x=\"" << cx << "\" y=\"" << cy
           << "\" width=\"12\" height=\"12\" fill=\""
           << messageColor(i) << "\"/>\n";
        os << "<text x=\"" << cx + 16 << "\" y=\"" << cy + 10
           << "\">"
           << escape(g.message(bounds.messages[i].msg).name)
           << "</text>\n";
    }

    os << "</svg>\n";
}

} // namespace srsim
