/**
 * @file
 * The scheduled-routing compiler: the full Fig. 3 pipeline.
 *
 *   TFG + topology + allocation + period
 *     -> message time bounds (Sec. 4)
 *     -> interval decomposition + activity matrix (Sec. 5.1)
 *     -> path assignment (AssignPaths or LSD-to-MSD baseline)
 *     -> peak-utilization gate (U <= 1 necessary)
 *     -> maximal related subsets (Sec. 5.2)
 *     -> message-interval allocation (LP)
 *     -> interval scheduling (link-feasible sets, LP)
 *     -> Omega (global + per-node switching schedules)
 *     -> independent verification
 *
 * The result records the failing stage when no feasible Omega
 * exists at the requested input period, which is exactly the
 * information the paper reports per load point (utilization above
 * one, message-interval allocation failure, or unschedulable
 * interval).
 */

#ifndef SRSIM_CORE_SR_COMPILER_HH_
#define SRSIM_CORE_SR_COMPILER_HH_

#include <optional>
#include <string>

#include "core/compile_error.hh"
#include "core/interval_allocation.hh"
#include "core/interval_scheduling.hh"
#include "core/intervals.hh"
#include "core/path_assignment.hh"
#include "core/schedule.hh"
#include "core/subsets.hh"
#include "core/time_bounds.hh"
#include "core/verifier.hh"
#include "mapping/allocation.hh"
#include "solver/lp.hh"
#include "tfg/tfg.hh"
#include "tfg/timing.hh"
#include "topology/topology.hh"

namespace srsim {

/** Compiler configuration. */
struct SrCompilerConfig
{
    /** Invocation period tau_in (must be >= tau_c). */
    Time inputPeriod = 0.0;
    /** Use AssignPaths; false = LSD-to-MSD routing-function paths. */
    bool useAssignPaths = true;
    AssignPathsOptions assign;
    AllocationMethod allocMethod = AllocationMethod::Lp;
    IntervalSchedulingOptions scheduling;
    /** Run the independent verifier on success. */
    bool verify = true;
    /**
     * Feedback between the Fig. 3 steps (the paper's suggested
     * extension): when message-interval allocation or interval
     * scheduling fails, retry with a re-randomized path assignment
     * up to this many extra rounds. 0 = the paper's one-way
     * pipeline.
     */
    int feedbackRounds = 0;
    /**
     * Engine context the compile runs under: supplies the tracer and
     * metrics registry for the per-stage phases, the thread pool for
     * the parallel stages, and the solver configuration for every
     * LP. Propagated into the allocation and scheduling stages
     * unless those options name their own context. nullptr uses the
     * process default context.
     */
    const engine::EngineContext *ctx = nullptr;
};

/** Everything the compiler produced (partial on failure). */
struct SrCompileResult
{
    bool feasible = false;
    SrFailureStage stage = SrFailureStage::None;
    std::string detail;
    /** Structured failure description (stage == error.stage). */
    CompileError error;

    TimeBounds bounds;
    std::optional<IntervalSet> intervals;
    PathAssignment paths;
    UtilizationReport utilization;
    int assignRestarts = 0;
    int assignReroutes = 0;
    /** Feedback rounds actually consumed (0 = first try). */
    int feedbackRoundsUsed = 0;
    std::size_t numSubsets = 0;
    IntervalAllocation allocation;
    IntervalScheduleResult schedule;
    GlobalSchedule omega;
    VerifyResult verification;
};

/**
 * Compile a scheduled-routing communication schedule.
 *
 * Never aborts on user input: invalid problems (incomplete
 * allocation, period below tau_c, off-grid message times) come back
 * as stage InvalidInput, solver breakdowns as stage Numerical, and
 * ordinary infeasibility with the stage that proved it — always
 * with a populated CompileError.
 */
SrCompileResult
compileScheduledRouting(const TaskFlowGraph &g, const Topology &topo,
                        const TaskAllocation &alloc,
                        const TimingModel &tm,
                        const SrCompilerConfig &cfg);

} // namespace srsim

#endif // SRSIM_CORE_SR_COMPILER_HH_
