#include "core/schedule.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace srsim {

std::vector<NodeSchedule>
deriveNodeSchedules(const TaskFlowGraph &, const Topology &topo,
                    const TaskAllocation &alloc,
                    const TimeBounds &bounds,
                    const GlobalSchedule &omega)
{
    std::vector<NodeSchedule> out(
        static_cast<std::size_t>(topo.numNodes()));
    for (NodeId n = 0; n < topo.numNodes(); ++n)
        out[static_cast<std::size_t>(n)].node = n;

    for (std::size_t i = 0; i < bounds.messages.size(); ++i) {
        const MessageBounds &b = bounds.messages[i];
        const Path &p = omega.paths.pathFor(i);
        (void)alloc;
        SRSIM_ASSERT(topo.validPath(p), "invalid path in schedule");

        for (const TimeWindow &w : omega.segments[i]) {
            // Walk the path: every visited node contributes one
            // crossbar command per window.
            for (std::size_t hop = 0; hop < p.nodes.size(); ++hop) {
                const NodeId node = p.nodes[hop];
                SwitchCommand cmd;
                cmd.span = w;
                cmd.msg = b.msg;
                cmd.in = hop == 0
                             ? PortRef::ap()
                             : PortRef::linkPort(p.links[hop - 1]);
                cmd.out = hop + 1 == p.nodes.size()
                              ? PortRef::ap()
                              : PortRef::linkPort(p.links[hop]);
                out[static_cast<std::size_t>(node)]
                    .commands.push_back(cmd);
            }
        }
    }

    for (NodeSchedule &ns : out) {
        std::sort(ns.commands.begin(), ns.commands.end(),
                  [](const SwitchCommand &a, const SwitchCommand &b) {
                      if (a.span.start != b.span.start)
                          return a.span.start < b.span.start;
                      return a.msg < b.msg;
                  });
    }
    return out;
}

namespace {

void
printPort(std::ostream &os, const PortRef &p)
{
    if (p.kind == PortRef::Kind::ApBuffer)
        os << "AP";
    else
        os << "L" << p.link;
}

} // namespace

void
printNodeSchedule(std::ostream &os, const NodeSchedule &ns,
                  const TaskFlowGraph &g)
{
    os << "node " << ns.node << " switching schedule ("
       << ns.commands.size() << " commands)\n";
    for (const SwitchCommand &c : ns.commands) {
        os << "  t=" << c.span.start << ".." << c.span.end << "  ";
        printPort(os, c.in);
        os << " -> ";
        printPort(os, c.out);
        os << "  msg '" << g.message(c.msg).name << "'\n";
    }
}

bool
isPacketAligned(const GlobalSchedule &omega, Time packetTime,
                Time eps)
{
    SRSIM_ASSERT(packetTime > 0.0, "need a positive packet time");
    auto on_grid = [&](Time t) {
        const double q = t / packetTime;
        return std::abs(q - std::round(q)) * packetTime <= eps;
    };
    if (!on_grid(omega.period))
        return false;
    for (const auto &segs : omega.segments)
        for (const TimeWindow &w : segs)
            if (!on_grid(w.start) || !on_grid(w.end))
                return false;
    return true;
}

} // namespace srsim
