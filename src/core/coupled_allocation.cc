#include "core/coupled_allocation.hh"

#include <algorithm>
#include <cmath>

#include "core/intervals.hh"
#include "core/time_bounds.hh"
#include "util/logging.hh"

namespace srsim {

namespace {

/**
 * Cheap score of one allocation: peak utilization of the
 * LSD-to-MSD assignment at the reference period. Co-locating
 * every message scores 0 (no network traffic at all).
 */
double
quickScore(const TaskFlowGraph &g, const Topology &topo,
           const TimingModel &tm, Time period,
           const TaskAllocation &alloc)
{
    const TimeBounds tb = computeTimeBounds(g, alloc, tm, period);
    if (tb.messages.empty())
        return 0.0;
    const IntervalSet ivs(tb);
    UtilizationAnalyzer ua(tb, ivs, topo);
    return ua.analyze(lsdToMsdAssignment(g, topo, alloc, tb)).peak;
}

/** Thorough score: a short AssignPaths run. */
double
fullScore(const TaskFlowGraph &g, const Topology &topo,
          const TimingModel &tm, Time period,
          const TaskAllocation &alloc,
          const AssignPathsOptions &opts)
{
    const TimeBounds tb = computeTimeBounds(g, alloc, tm, period);
    if (tb.messages.empty())
        return 0.0;
    const IntervalSet ivs(tb);
    return assignPaths(g, topo, alloc, tb, ivs, opts).report.peak;
}

} // namespace

CoupledAllocationResult
coupleAllocationWithPaths(const TaskFlowGraph &g,
                          const Topology &topo,
                          const TimingModel &tm, Time inputPeriod,
                          const TaskAllocation &seedAllocation,
                          Rng &rng,
                          const CoupledAllocationOptions &opts)
{
    if (!seedAllocation.complete()) {
        CoupledAllocationResult bad{seedAllocation, 0.0, 0};
        bad.ok = false;
        bad.error = "coupled allocation needs a complete seed "
                    "allocation";
        return bad;
    }

    const int num_tasks = g.numTasks();
    const int num_nodes = topo.numNodes();

    TaskAllocation current = seedAllocation;
    double cur_score =
        quickScore(g, topo, tm, inputPeriod, current);
    TaskAllocation best = current;
    double best_quick = cur_score;

    double temperature = opts.initialTemperature;
    CoupledAllocationResult out{seedAllocation, 0.0, 0};

    for (int it = 0; it < opts.iterations; ++it) {
        TaskAllocation cand = current;
        const TaskId t = static_cast<TaskId>(
            rng.index(static_cast<std::size_t>(num_tasks)));
        if (num_tasks > 1 && rng.chance(0.5)) {
            // Swap the nodes of two tasks.
            TaskId u = t;
            while (u == t) {
                u = static_cast<TaskId>(rng.index(
                    static_cast<std::size_t>(num_tasks)));
            }
            const NodeId nt = cand.nodeOf(t);
            cand.assign(t, cand.nodeOf(u));
            cand.assign(u, nt);
        } else {
            // Relocate one task to a random node.
            cand.assign(t, static_cast<NodeId>(rng.index(
                               static_cast<std::size_t>(num_nodes))));
        }

        const double cand_score =
            quickScore(g, topo, tm, inputPeriod, cand);
        const double delta = cand_score - cur_score;
        if (delta <= 0.0 ||
            rng.chance(std::exp(-delta / std::max(temperature,
                                                  1e-6)))) {
            current = cand;
            cur_score = cand_score;
            ++out.accepted;
            if (cur_score < best_quick) {
                best = current;
                best_quick = cur_score;
            }
        }
        temperature *= opts.cooling;
    }

    out.allocation = best;
    out.peakUtilization = fullScore(g, topo, tm, inputPeriod, best,
                                    opts.scoring);
    return out;
}

} // namespace srsim
