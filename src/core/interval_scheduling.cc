#include "core/interval_scheduling.hh"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "engine/context.hh"
#include "solver/lp.hh"
#include "solver/revised.hh"
#include "util/logging.hh"
#include "util/thread_pool.hh"

namespace srsim {

namespace {

/** Conflict test: do two messages share a link? */
bool
conflict(const PathAssignment &pa, std::size_t a, std::size_t b)
{
    const auto &la = pa.pathFor(a).links;
    const auto &lb = pa.pathFor(b).links;
    for (LinkId l : la)
        if (std::find(lb.begin(), lb.end(), l) != lb.end())
            return true;
    return false;
}

/**
 * Bron-Kerbosch with pivoting over the *complement* of the conflict
 * graph: maximal cliques there are maximal link-feasible sets.
 * Vertices are positions into `members`.
 */
class FeasibleSetEnumerator
{
  public:
    FeasibleSetEnumerator(const std::vector<std::size_t> &members,
                          const PathAssignment &pa,
                          std::size_t maxSets)
        : members_(members), maxSets_(maxSets)
    {
        const std::size_t n = members_.size();
        compat_.assign(n, std::vector<bool>(n, false));
        for (std::size_t i = 0; i < n; ++i)
            for (std::size_t j = i + 1; j < n; ++j)
                compat_[i][j] = compat_[j][i] =
                    !conflict(pa, members_[i], members_[j]);
    }

    std::vector<std::vector<std::size_t>>
    run()
    {
        std::vector<std::size_t> r, p(members_.size()), x;
        for (std::size_t i = 0; i < members_.size(); ++i)
            p[i] = i;
        expand(r, p, x);
        return std::move(out_);
    }

  private:
    void
    expand(std::vector<std::size_t> &r, std::vector<std::size_t> p,
           std::vector<std::size_t> x)
    {
        if (out_.size() >= maxSets_)
            return;
        if (p.empty() && x.empty()) {
            std::vector<std::size_t> set;
            set.reserve(r.size());
            for (std::size_t v : r)
                set.push_back(members_[v]);
            out_.push_back(std::move(set));
            return;
        }

        // Pivot: vertex of P u X with most neighbours in P.
        std::size_t pivot = SIZE_MAX;
        std::size_t best = 0;
        auto count_nbrs = [&](std::size_t u) {
            std::size_t c = 0;
            for (std::size_t v : p)
                if (compat_[u][v])
                    ++c;
            return c;
        };
        for (std::size_t u : p) {
            const std::size_t c = count_nbrs(u);
            if (pivot == SIZE_MAX || c > best) {
                pivot = u;
                best = c;
            }
        }
        for (std::size_t u : x) {
            const std::size_t c = count_nbrs(u);
            if (pivot == SIZE_MAX || c > best) {
                pivot = u;
                best = c;
            }
        }

        std::vector<std::size_t> cands;
        for (std::size_t v : p)
            if (pivot == SIZE_MAX || !compat_[pivot][v])
                cands.push_back(v);

        for (std::size_t v : cands) {
            std::vector<std::size_t> np, nx;
            for (std::size_t w : p)
                if (compat_[v][w])
                    np.push_back(w);
            for (std::size_t w : x)
                if (compat_[v][w])
                    nx.push_back(w);
            r.push_back(v);
            expand(r, std::move(np), std::move(nx));
            r.pop_back();
            p.erase(std::find(p.begin(), p.end(), v));
            x.push_back(v);
            if (out_.size() >= maxSets_)
                return;
        }
    }

    const std::vector<std::size_t> &members_;
    std::size_t maxSets_;
    std::vector<std::vector<bool>> compat_;
    std::vector<std::vector<std::size_t>> out_;
};

/** Per-interval work item: message indices and their demands. */
struct IntervalWork
{
    std::vector<std::size_t> members;
    std::vector<Time> demand;
};

/** Round t up to a whole number of packet times (0 = identity). */
Time
packetCeil(Time t, Time packet)
{
    if (packet <= 0.0 || timeLe(t, 0.0))
        return t;
    const double q = std::ceil((t - kTimeEps) / packet);
    return q * packet;
}

/** Outcome of one interval's schedule synthesis. */
struct SlotSchedule
{
    bool ok = false;
    /** Makespan consumed (meaningful when ok). */
    double used = 0.0;
    lp::Status status = lp::Status::Optimal;
    /** Offending message index (into bounds), or SIZE_MAX. */
    std::size_t messageIndex = SIZE_MAX;
    std::string error;
};

/** LP scheduling of one interval. Appends segments on success. */
SlotSchedule
scheduleLp(const IntervalWork &work, const PathAssignment &pa,
           const TimeWindow &iv, std::size_t maxSets, Time guard,
           Time packet, bool exact_mip, lp::BasisCache *basisCache,
           const std::string &cacheKey,
           const engine::EngineContext &ectx,
           std::vector<std::vector<TimeWindow>> &segments)
{
    SlotSchedule res;
    const auto sets =
        maximalLinkFeasibleSets(work.members, pa, maxSets);
    if (sets.empty()) {
        res.messageIndex = work.members.front();
        res.error = "feasible-set enumeration produced no sets "
                    "for a non-empty interval";
        return res;
    }

    // In exact-packet mode the decision variables are *packet
    // counts* per slot (the paper's integer program); otherwise
    // they are continuous slot durations.
    const bool mip = exact_mip && packet > 0.0;
    const double unit = mip ? packet : 1.0;

    lp::Problem prob;
    std::vector<std::size_t> y;
    y.reserve(sets.size());
    for (std::size_t j = 0; j < sets.size(); ++j) {
        y.push_back(prob.addVariable(1.0, "y" + std::to_string(j)));
        if (mip)
            prob.markInteger(y.back());
    }

    for (std::size_t i = 0; i < work.members.size(); ++i) {
        lp::Constraint c;
        for (std::size_t j = 0; j < sets.size(); ++j) {
            if (std::find(sets[j].begin(), sets[j].end(),
                          work.members[i]) != sets[j].end())
                c.terms.emplace_back(y[j], 1.0);
        }
        if (c.terms.empty()) {
            // Cap truncation can drop every set containing a
            // message; the covering LP would be vacuously wrong.
            std::ostringstream oss;
            oss << "message " << work.members[i]
                << " appears in no enumerated link-feasible set "
                   "(enumeration capped at "
                << maxSets << ")";
            res.messageIndex = work.members[i];
            res.error = oss.str();
            return res;
        }
        c.rel = lp::Relation::GreaterEq;
        c.rhs = work.demand[i] / unit;
        prob.addConstraint(std::move(c));
    }

    // Warm-start the continuous covering LP from this work item's
    // last optimal basis (keyed with the structure signature, so
    // each structural variant keeps its own entry).
    lp::SolveOptions sopts = ectx.solveOptions();
    lp::Basis warmBasis;
    std::string key;
    std::uint64_t sig = 0;
    if (!mip && basisCache != nullptr) {
        sig = lp::structureSignature(prob);
        key = cacheKey + "#" + std::to_string(sig);
        if (basisCache->lookup(key, sig, warmBasis))
            sopts.warmStart = &warmBasis;
    }

    lp::MipOptions mopts;
    mopts.lp = ectx.solveOptions();
    lp::Solution sol =
        mip ? lp::solveMip(prob, mopts) : lp::solve(prob, sopts);
    if (!mip && basisCache != nullptr && sol.feasible() &&
        !sol.basis.empty())
        basisCache->store(key, sig, sol.basis);
    if (mip && sol.status == lp::Status::IterationLimit &&
        !sol.values.empty()) {
        warn("exact packet scheduling hit the node cap; using the "
             "incumbent");
    } else if (mip && !sol.feasible()) {
        // Fall back to the rounded relaxation.
        lp::Problem relax = prob;
        sol = lp::solve(relax, ectx.solveOptions());
    }
    if (!sol.feasible() &&
        sol.status != lp::Status::IterationLimit) {
        res.status = sol.status;
        res.error = std::string("interval covering LP ") +
                    lp::statusName(sol.status);
        return res;
    }

    // Synthesize the timeline: slots in set order; a message
    // transmits in a slot only while it still has remaining demand.
    std::vector<Time> remaining(work.members.size());
    for (std::size_t i = 0; i < work.members.size(); ++i)
        remaining[i] = work.demand[i];
    auto member_pos = [&](std::size_t msg) {
        return static_cast<std::size_t>(
            std::find(work.members.begin(), work.members.end(),
                      msg) -
            work.members.begin());
    };

    Time cursor = iv.start;
    for (std::size_t j = 0; j < sets.size(); ++j) {
        const Time slot =
            packetCeil(sol.values[y[j]] * unit, packet);
        if (timeLe(slot, 0.0))
            continue;
        cursor += packetCeil(guard, packet); // crossbar setup
        for (std::size_t msg : sets[j]) {
            const std::size_t i = member_pos(msg);
            const Time use = std::min(slot, remaining[i]);
            if (timeLe(use, 0.0))
                continue;
            segments[msg].push_back(
                TimeWindow{cursor, cursor + use});
            remaining[i] -= use;
        }
        cursor += slot;
    }

    for (std::size_t i = 0; i < work.members.size(); ++i) {
        if (!timeLe(remaining[i], 0.0)) {
            // The LP claimed coverage but the synthesized timeline
            // fell short: a numerical artifact, not infeasibility.
            std::ostringstream oss;
            oss << "LP coverage left message " << work.members[i]
                << " short by " << remaining[i] << " us";
            res.status = lp::Status::NumericalFailure;
            res.messageIndex = work.members[i];
            res.error = oss.str();
            return res;
        }
    }
    res.ok = true;
    res.used = cursor - iv.start;
    return res;
}

/**
 * Greedy list scheduling of one interval (ablation baseline):
 * repeatedly pick a maximal conflict-free set by longest remaining
 * demand and run it to the next completion.
 * @return makespan used.
 */
double
scheduleGreedy(const IntervalWork &work, const PathAssignment &pa,
               const TimeWindow &iv, Time guard, Time packet,
               std::vector<std::vector<TimeWindow>> &segments)
{
    std::vector<Time> remaining = work.demand;
    Time cursor = iv.start;

    while (true) {
        // Pick messages by remaining demand, greedily compatible.
        std::vector<std::size_t> order;
        for (std::size_t i = 0; i < work.members.size(); ++i)
            if (timeGt(remaining[i], 0.0))
                order.push_back(i);
        if (order.empty())
            break;
        std::sort(order.begin(), order.end(),
                  [&](std::size_t a, std::size_t b) {
                      return remaining[a] > remaining[b];
                  });
        std::vector<std::size_t> chosen;
        for (std::size_t i : order) {
            bool ok = true;
            for (std::size_t c : chosen)
                ok = ok && !conflict(pa, work.members[i],
                                     work.members[c]);
            if (ok)
                chosen.push_back(i);
        }
        Time slot = remaining[chosen.front()];
        for (std::size_t i : chosen)
            slot = std::min(slot, remaining[i]);
        slot = packetCeil(slot, packet);
        cursor += packetCeil(guard, packet); // crossbar setup
        for (std::size_t i : chosen) {
            segments[work.members[i]].push_back(
                TimeWindow{cursor, cursor + slot});
            remaining[i] -= slot;
        }
        cursor += slot;
    }
    return cursor - iv.start;
}

} // namespace

std::vector<std::vector<std::size_t>>
maximalLinkFeasibleSets(const std::vector<std::size_t> &members,
                        const PathAssignment &pa,
                        std::size_t maxSets)
{
    if (members.empty())
        return {};
    FeasibleSetEnumerator e(members, pa, maxSets);
    auto sets = e.run();
    if (sets.size() >= maxSets) {
        warn("feasible-set enumeration capped at ", maxSets,
             " sets; schedule may be conservative");
    }
    return sets;
}

IntervalScheduleResult
scheduleIntervals(const TimeBounds &bounds,
                  const IntervalSet &intervals,
                  const PathAssignment &pa,
                  const std::vector<MessageSubset> &subsets,
                  const IntervalAllocation &alloc,
                  const IntervalSchedulingOptions &opts)
{
    IntervalScheduleResult out;
    out.segments.assign(bounds.messages.size(), {});
    SRSIM_ASSERT(alloc.feasible,
                 "cannot schedule an infeasible allocation");

    // One work item per (subset, interval) with any allocated time.
    // After allocation the items are independent: intervals are
    // disjoint time windows and subsets share no link, so each item
    // schedules in isolation. Solve them concurrently into private
    // segment lists and merge in item order; the ordered merge stops
    // at the lowest failed item, reproducing the serial early-exit.
    struct Item
    {
        std::size_t s, k;
        IntervalWork work;
    };
    std::vector<Item> items;
    for (std::size_t s = 0; s < subsets.size(); ++s) {
        const MessageSubset &sub = subsets[s];
        for (std::size_t k : sub.intervals) {
            IntervalWork work;
            for (std::size_t h : sub.members) {
                const Time p = alloc.allocation.at(h, k);
                if (timeGt(p, 0.0)) {
                    work.members.push_back(h);
                    work.demand.push_back(p);
                }
            }
            if (!work.members.empty())
                items.push_back({s, k, std::move(work)});
        }
    }

    struct ItemResult
    {
        SlotSchedule slot;
        std::vector<std::vector<TimeWindow>> segments;
    };
    std::vector<ItemResult> results(items.size());
    const engine::EngineContext &ectx = engine::resolve(opts.ctx);
    ectx.pool().parallelFor(
        items.size(), [&](std::size_t i) {
            const Item &it = items[i];
            ItemResult &r = results[i];
            r.segments.assign(bounds.messages.size(), {});
            const TimeWindow &iv = intervals.interval(it.k);
            if (opts.method == SchedulingMethod::LpFeasibleSets) {
                std::string key;
                if (opts.basisCache != nullptr)
                    key = "s:" + std::to_string(it.s) + ":" +
                          std::to_string(it.k);
                r.slot = scheduleLp(it.work, pa, iv,
                                    opts.maxFeasibleSets,
                                    opts.guardTime, opts.packetTime,
                                    opts.exactPacketMip,
                                    opts.basisCache, key, ectx,
                                    r.segments);
            } else {
                r.slot.ok = true;
                r.slot.used = scheduleGreedy(it.work, pa, iv,
                                             opts.guardTime,
                                             opts.packetTime,
                                             r.segments);
            }
        });

    for (std::size_t i = 0; i < items.size(); ++i) {
        const Item &it = items[i];
        ItemResult &r = results[i];
        for (std::size_t h : it.work.members) {
            out.segments[h].insert(out.segments[h].end(),
                                   r.segments[h].begin(),
                                   r.segments[h].end());
        }
        if (!r.slot.ok) {
            out.feasible = false;
            out.failedSubset = static_cast<int>(it.s);
            out.failedInterval = static_cast<int>(it.k);
            out.solveStatus = r.slot.status;
            if (r.slot.messageIndex != SIZE_MAX)
                out.failedMessage =
                    bounds.messages[r.slot.messageIndex].msg;
            out.error = r.slot.error;
            return out;
        }
        const TimeWindow &iv = intervals.interval(it.k);
        if (timeGt(r.slot.used, iv.length())) {
            out.feasible = false;
            out.failedSubset = static_cast<int>(it.s);
            out.failedInterval = static_cast<int>(it.k);
            out.overrun = r.slot.used - iv.length();
            std::ostringstream oss;
            oss << "interval demand exceeds capacity by "
                << out.overrun << " us";
            out.error = oss.str();
            return out;
        }
    }

    for (auto &segs : out.segments) {
        std::sort(segs.begin(), segs.end(),
                  [](const TimeWindow &a, const TimeWindow &b) {
                      return a.start < b.start;
                  });
    }
    out.feasible = true;
    return out;
}

} // namespace srsim
