#include "core/sr_executor.hh"

#include <algorithm>
#include <sstream>

#include "engine/context.hh"
#include "metrics/metrics.hh"
#include "trace/trace.hh"
#include "util/logging.hh"

namespace srsim {

SeriesStats
SrExecutionResult::outputIntervals(int warmup) const
{
    SeriesStats s;
    for (std::size_t j = 1; j < completions.size(); ++j)
        if (static_cast<int>(j) > warmup)
            s.add(completions[j] - completions[j - 1]);
    return s;
}

SeriesStats
SrExecutionResult::latencies(int warmup) const
{
    SeriesStats s;
    for (std::size_t j = 0; j < completions.size(); ++j)
        if (static_cast<int>(j) >= warmup)
            s.add(completions[j] - starts[j]);
    return s;
}

SrExecutionResult
executeSchedule(const TaskFlowGraph &g, const TaskAllocation &alloc,
                const TimingModel &tm, const TimeBounds &bounds,
                const GlobalSchedule &omega, int invocations,
                const engine::EngineContext *ctx)
{
    SRSIM_ASSERT(invocations > 0, "need at least one invocation");
    const engine::EngineContext &ectx = engine::resolve(ctx);
    trace::Tracer &tracer = ectx.tracer();
    const Time period = omega.period;

    // Frame-relative first-transmission offset and delivery offset
    // of every network message, measured from the message's release.
    const std::size_t nmsg = bounds.messages.size();
    std::vector<Time> first_tx_off(nmsg, 0.0);
    std::vector<Time> delivery_off(nmsg, 0.0);
    for (std::size_t i = 0; i < nmsg; ++i) {
        const MessageBounds &b = bounds.messages[i];
        SRSIM_ASSERT(!omega.segments[i].empty(),
                     "message without schedule segments");
        Time first = -1.0;
        Time last = 0.0;
        for (const TimeWindow &w : omega.segments[i]) {
            // A frame segment before the release point belongs to
            // the next frame (wrapped deadline window).
            const Time off = timeGe(w.start, b.release)
                                 ? w.start - b.release
                                 : w.start - b.release + period;
            if (first < 0.0 || off < first)
                first = off;
            last = std::max(last, off + w.length());
        }
        first_tx_off[i] = first;
        delivery_off[i] = last;
    }

    SrExecutionResult res;
    const std::size_t nt = static_cast<std::size_t>(g.numTasks());
    const auto order = g.topologicalOrder();
    std::vector<Time> start(nt), finish(nt);
    std::vector<Time> prev_finish(nt, -1.0);

    const bool tracing = SRSIM_TRACE_ENABLED();
    metrics::Counter *premiseCtr =
        SRSIM_METRICS_ENABLED()
            ? &ectx.metricsRegistry().counter(
                  "sr_exec.premise_violations")
            : nullptr;

    for (int j = 0; j < invocations; ++j) {
        const Time arrival = j * period;
        for (TaskId t : order) {
            const std::size_t ti = static_cast<std::size_t>(t);
            Time s = g.incoming(t).empty() ? arrival : 0.0;
            for (MessageId m : g.incoming(t)) {
                const Message &msg = g.message(m);
                const std::size_t si =
                    static_cast<std::size_t>(msg.src);
                const int bi =
                    bounds.indexOf[static_cast<std::size_t>(m)];
                if (bi < 0) {
                    // Local message: arrives when the source ends.
                    s = std::max(s, finish[si]);
                    continue;
                }
                const MessageBounds &b =
                    bounds.messages[static_cast<std::size_t>(bi)];
                const Time release = j * period + b.absoluteRelease;
                const Time tx_start =
                    release +
                    first_tx_off[static_cast<std::size_t>(bi)];
                if (timeGt(finish[si], tx_start)) {
                    res.premiseViolated = true;
                    std::ostringstream oss;
                    oss << "invocation " << j << ": message '"
                        << msg.name << "' scheduled at " << tx_start
                        << " but data ready only at " << finish[si];
                    res.notes.push_back(oss.str());
                }
                s = std::max(
                    s, release + delivery_off[
                                     static_cast<std::size_t>(bi)]);
            }
            // The single AP per node is free by now because
            // dur <= tau_c <= period; assert rather than assume.
            if (prev_finish[ti] >= 0.0 &&
                timeGt(prev_finish[ti], s)) {
                res.premiseViolated = true;
                std::ostringstream oss;
                oss << "invocation " << j << ": task '"
                    << g.task(t).name
                    << "' not yet finished for previous invocation";
                res.notes.push_back(oss.str());
                s = prev_finish[ti];
            }
            start[ti] = s;
            finish[ti] = s + tm.taskTime(g, t);
            if (tracing)
                trace::taskSpan(tracer, alloc.nodeOf(t),
                                g.task(t).name, j, start[ti],
                                finish[ti] - start[ti]);
        }

        // The analytic model gives every task its own AP: it never
        // serializes two different tasks sharing a node. Detect the
        // out-of-premise case instead of silently returning times a
        // real machine could not achieve.
        for (TaskId a = 0; a < g.numTasks(); ++a) {
            for (TaskId b2 = a + 1; b2 < g.numTasks(); ++b2) {
                if (alloc.nodeOf(a) != alloc.nodeOf(b2))
                    continue;
                const std::size_t ai = static_cast<std::size_t>(a);
                const std::size_t bi2 = static_cast<std::size_t>(b2);
                if (timeLt(start[ai], finish[bi2]) &&
                    timeLt(start[bi2], finish[ai])) {
                    res.premiseViolated = true;
                    std::ostringstream oss;
                    oss << "invocation " << j << ": tasks '"
                        << g.task(a).name << "' and '"
                        << g.task(b2).name
                        << "' overlap on node " << alloc.nodeOf(a)
                        << "; the analytic model assumes a "
                           "dedicated AP per task";
                    res.notes.push_back(oss.str());
                }
            }
        }

        Time complete = 0.0;
        for (TaskId t : g.outputTasks())
            complete = std::max(
                complete, finish[static_cast<std::size_t>(t)]);
        res.starts.push_back(arrival);
        res.completions.push_back(complete);
        prev_finish = finish;
        if (tracing)
            trace::invocationComplete(tracer, j, complete);
    }
    if (res.premiseViolated) {
        if (premiseCtr)
            premiseCtr->add(res.notes.size());
        if (tracing)
            for (const std::string &n : res.notes)
                trace::violation(tracer, n, 0.0);
    }
    return res;
}

} // namespace srsim
