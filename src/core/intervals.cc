#include "core/intervals.hh"

#include <algorithm>

#include "util/logging.hh"

namespace srsim {

IntervalSet::IntervalSet(const TimeBounds &bounds)
{
    std::vector<Time> points{0.0, bounds.inputPeriod};
    for (const MessageBounds &b : bounds.messages) {
        for (const TimeWindow &w : b.windows) {
            points.push_back(w.start);
            points.push_back(w.end);
        }
    }
    std::sort(points.begin(), points.end());
    std::vector<Time> unique;
    for (Time t : points) {
        if (unique.empty() || !timeEq(unique.back(), t))
            unique.push_back(t);
    }
    SRSIM_ASSERT(unique.size() >= 2, "degenerate frame");

    for (std::size_t i = 0; i + 1 < unique.size(); ++i)
        intervals_.push_back(TimeWindow{unique[i], unique[i + 1]});

    activity_ = Matrix<int>(bounds.messages.size(), intervals_.size());
    for (std::size_t i = 0; i < bounds.messages.size(); ++i) {
        const MessageBounds &b = bounds.messages[i];
        for (std::size_t k = 0; k < intervals_.size(); ++k) {
            const TimeWindow &iv = intervals_[k];
            // Interval boundaries are window endpoints, so testing
            // the midpoint is exact.
            const Time mid = 0.5 * (iv.start + iv.end);
            activity_.at(i, k) = b.activeAt(mid) ? 1 : 0;
        }
    }
}

std::vector<std::size_t>
IntervalSet::activeIntervals(std::size_t msgIdx) const
{
    std::vector<std::size_t> out;
    for (std::size_t k = 0; k < intervals_.size(); ++k)
        if (active(msgIdx, k))
            out.push_back(k);
    return out;
}

std::vector<std::size_t>
IntervalSet::activeMessages(std::size_t k) const
{
    std::vector<std::size_t> out;
    for (std::size_t i = 0; i < activity_.rows(); ++i)
        if (active(i, k))
            out.push_back(i);
    return out;
}

std::size_t
IntervalSet::intervalAt(Time t) const
{
    for (std::size_t k = 0; k < intervals_.size(); ++k)
        if (intervals_[k].contains(t))
            return k;
    // t == frame end belongs to the last interval.
    if (timeEq(t, intervals_.back().end))
        return intervals_.size() - 1;
    panic("instant ", t, " outside frame");
}

} // namespace srsim
