/**
 * @file
 * Serialization of communication schedules.
 *
 * A computed Omega is a deployment artifact: the host compiles it
 * once and loads it into the communication processors. This module
 * writes and reads a stable, line-oriented text form so schedules
 * can be stored, diffed, and shipped independently of the compiler
 * run that produced them. Paths are stored as node sequences and
 * re-resolved against the topology on load, which re-validates
 * adjacency.
 */

#ifndef SRSIM_CORE_SCHEDULE_IO_HH_
#define SRSIM_CORE_SCHEDULE_IO_HH_

#include <istream>
#include <ostream>
#include <string>

#include "core/schedule.hh"
#include "topology/topology.hh"

namespace srsim {

/** Write omega in the srsim-schedule v1 text format. */
void writeSchedule(std::ostream &os, const GlobalSchedule &omega);

/** Structured outcome of tryReadSchedule(). */
struct ScheduleReadResult
{
    bool ok = false;
    GlobalSchedule omega;
    /** What is wrong with the file (non-empty exactly when !ok). */
    std::string error;
};

/**
 * Parse a schedule written by writeSchedule().
 *
 * Total on arbitrary bytes: truncated files, corrupt headers,
 * negative or allocation-bomb counts, off-fabric or non-contiguous
 * paths, and malformed segments all come back as a structured error
 * — never an assert, abort, or uncaught exception. Long-lived
 * services loading cached schedules from disk depend on this.
 */
ScheduleReadResult tryReadSchedule(std::istream &is,
                                   const Topology &topo);

/**
 * Parse a schedule written by writeSchedule().
 *
 * Fatal on malformed input or on paths that are not contiguous in
 * `topo` (throwing wrapper over tryReadSchedule()).
 */
GlobalSchedule readSchedule(std::istream &is, const Topology &topo);

} // namespace srsim

#endif // SRSIM_CORE_SCHEDULE_IO_HH_
