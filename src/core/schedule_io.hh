/**
 * @file
 * Serialization of communication schedules.
 *
 * A computed Omega is a deployment artifact: the host compiles it
 * once and loads it into the communication processors. This module
 * writes and reads a stable, line-oriented text form so schedules
 * can be stored, diffed, and shipped independently of the compiler
 * run that produced them. Paths are stored as node sequences and
 * re-resolved against the topology on load, which re-validates
 * adjacency.
 */

#ifndef SRSIM_CORE_SCHEDULE_IO_HH_
#define SRSIM_CORE_SCHEDULE_IO_HH_

#include <istream>
#include <ostream>

#include "core/schedule.hh"
#include "topology/topology.hh"

namespace srsim {

/** Write omega in the srsim-schedule v1 text format. */
void writeSchedule(std::ostream &os, const GlobalSchedule &omega);

/**
 * Parse a schedule written by writeSchedule().
 *
 * Fatal on malformed input or on paths that are not contiguous in
 * `topo`.
 */
GlobalSchedule readSchedule(std::istream &is, const Topology &topo);

} // namespace srsim

#endif // SRSIM_CORE_SCHEDULE_IO_HH_
