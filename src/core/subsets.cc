#include "core/subsets.hh"

#include <algorithm>
#include <map>
#include <set>

#include "util/union_find.hh"

namespace srsim {

std::vector<MessageSubset>
computeMaximalSubsets(const TimeBounds &bounds,
                      const IntervalSet &intervals,
                      const PathAssignment &pa)
{
    const std::size_t n = bounds.messages.size();
    UnionFind uf(n);

    // Bucket messages by (link, interval); co-occupants are related.
    std::map<std::pair<LinkId, std::size_t>, std::size_t> first_seen;
    for (std::size_t i = 0; i < n; ++i) {
        for (LinkId l : pa.pathFor(i).links) {
            for (std::size_t k : intervals.activeIntervals(i)) {
                const auto key = std::make_pair(l, k);
                auto [it, inserted] = first_seen.emplace(key, i);
                if (!inserted)
                    uf.unite(it->second, i);
            }
        }
    }

    std::vector<MessageSubset> out;
    for (const auto &group : uf.groups()) {
        MessageSubset s;
        s.members = group;
        std::set<LinkId> links;
        std::set<std::size_t> ivs;
        for (std::size_t i : group) {
            for (LinkId l : pa.pathFor(i).links)
                links.insert(l);
            for (std::size_t k : intervals.activeIntervals(i))
                ivs.insert(k);
        }
        s.links.assign(links.begin(), links.end());
        s.intervals.assign(ivs.begin(), ivs.end());
        out.push_back(std::move(s));
    }
    return out;
}

} // namespace srsim
