/**
 * @file
 * Structured failure descriptions shared by the SR compiler, the
 * verifier, and the fault-repair pipeline.
 */

#ifndef SRSIM_CORE_COMPILE_ERROR_HH_
#define SRSIM_CORE_COMPILE_ERROR_HH_

#include <string>

#include "solver/lp.hh"
#include "tfg/tfg.hh"

namespace srsim {

/** Stage at which compilation stopped. */
enum class SrFailureStage
{
    None,          ///< feasible schedule produced
    InvalidInput,  ///< malformed problem (bad period, allocation...)
    Utilization,   ///< peak utilization exceeds one
    Allocation,    ///< message-interval allocation infeasible
    Scheduling,    ///< an interval is unschedulable
    Numerical,     ///< a solver gave up numerically, not provably
    Verification,  ///< internal: verifier rejected the schedule
    Fault,         ///< faults disconnected or starved the problem
};

/** @return human-readable stage name. */
const char *srFailureStageName(SrFailureStage s);

/**
 * Structured description of a compilation failure.
 *
 * Every infeasible (or error) compile carries one of these instead
 * of panicking: the stage that failed, the solver verdict behind it
 * (when a mathematical program was involved), and the most specific
 * problem coordinates known — subset, interval, and message id.
 */
struct CompileError
{
    SrFailureStage stage = SrFailureStage::None;
    /** Solver verdict behind the failure (Optimal = no LP involved). */
    lp::Status solverStatus = lp::Status::Optimal;
    /** Failing maximal subset, or -1. */
    int subset = -1;
    /** Failing interval, or -1. */
    int interval = -1;
    /** Offending message, or kInvalidMessage. */
    MessageId message = kInvalidMessage;
    /** Human-readable description. */
    std::string detail;

    bool any() const { return stage != SrFailureStage::None; }
};

} // namespace srsim

#endif // SRSIM_CORE_COMPILE_ERROR_HH_
