/**
 * @file
 * Maximal related subsets of messages (Defs. 5.3/5.4).
 *
 * Two messages are related iff they share a link and are active in a
 * common interval, or are transitively related through a third
 * message. The relation's transitive closure partitions S_M into
 * disjoint maximal subsets; message-interval allocation and interval
 * scheduling are solved independently per subset, which keeps the
 * math programs small.
 */

#ifndef SRSIM_CORE_SUBSETS_HH_
#define SRSIM_CORE_SUBSETS_HH_

#include <vector>

#include "core/intervals.hh"
#include "core/path_assignment.hh"
#include "core/time_bounds.hh"

namespace srsim {

/** One maximal related subset and the resources its messages touch. */
struct MessageSubset
{
    /** Member message indices (into TimeBounds::messages). */
    std::vector<std::size_t> members;
    /** Union of links used by members. */
    std::vector<LinkId> links;
    /** Union of intervals in which members are active. */
    std::vector<std::size_t> intervals;
};

/**
 * Partition the network messages into maximal related subsets under
 * the given path assignment.
 */
std::vector<MessageSubset>
computeMaximalSubsets(const TimeBounds &bounds,
                      const IntervalSet &intervals,
                      const PathAssignment &pa);

} // namespace srsim

#endif // SRSIM_CORE_SUBSETS_HH_
