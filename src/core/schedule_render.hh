/**
 * @file
 * SVG rendering of communication schedules.
 *
 * Draws one frame [0, tau_in] of Omega as a Gantt chart: one row
 * per link that carries traffic, one colored block per transmission
 * segment (colored by message), with a time axis in microseconds
 * and a legend. The picture makes the paper's core property visible
 * at a glance — no two blocks overlap in any row — and shows how
 * AssignPaths spreads traffic over links and time.
 */

#ifndef SRSIM_CORE_SCHEDULE_RENDER_HH_
#define SRSIM_CORE_SCHEDULE_RENDER_HH_

#include <ostream>
#include <string>

#include "core/schedule.hh"
#include "core/time_bounds.hh"
#include "tfg/tfg.hh"
#include "topology/topology.hh"

namespace srsim {

/** Rendering knobs. */
struct RenderOptions
{
    /** Chart width in pixels (time axis). */
    int width = 960;
    /** Height of one link row in pixels. */
    int rowHeight = 18;
    /** Show message release/deadline windows as hatched bands. */
    bool showWindows = false;
    /** Chart title; empty derives one from the period. */
    std::string title;
};

/**
 * Write an SVG Gantt chart of omega's link occupancy to os.
 * Links that carry no traffic are omitted.
 */
void
renderScheduleSvg(std::ostream &os, const TaskFlowGraph &g,
                  const Topology &topo, const TimeBounds &bounds,
                  const GlobalSchedule &omega,
                  const RenderOptions &opts = {});

} // namespace srsim

#endif // SRSIM_CORE_SCHEDULE_RENDER_HH_
