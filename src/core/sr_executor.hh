/**
 * @file
 * Executor for scheduled routing: replays Omega over many
 * invocations and measures end-to-end pipeline behaviour.
 *
 * The CPs transmit each message at its *scheduled* frame times every
 * period (buffering early availability), so the executor
 * reconstructs, per invocation j:
 *   - the absolute delivery time of every network message,
 *   - the actual start/finish of every task (a task starts when all
 *     its messages of that invocation have arrived),
 *   - the completion time of the invocation,
 * and verifies the schedule's premise that a message's data is
 * available at its source CP no later than its first scheduled
 * transmission window.
 *
 * Under a verified Omega, output intervals equal the input period
 * exactly: the constant-throughput guarantee of Sec. 4.
 */

#ifndef SRSIM_CORE_SR_EXECUTOR_HH_
#define SRSIM_CORE_SR_EXECUTOR_HH_

#include <string>
#include <vector>

#include "core/schedule.hh"
#include "core/time_bounds.hh"
#include "mapping/allocation.hh"
#include "sim/stats.hh"
#include "tfg/tfg.hh"
#include "tfg/timing.hh"

namespace srsim {

namespace engine {
class EngineContext;
}

/** Result of executing a schedule for several invocations. */
struct SrExecutionResult
{
    /** Input arrival time of each invocation. */
    std::vector<Time> starts;
    /** Completion time of each invocation. */
    std::vector<Time> completions;
    /** True if a message was scheduled before its data was ready. */
    bool premiseViolated = false;
    std::vector<std::string> notes;

    /** Output-generation intervals over post-warmup invocations. */
    SeriesStats outputIntervals(int warmup) const;
    /** Latencies over post-warmup invocations. */
    SeriesStats latencies(int warmup) const;
    /** Eq. (1) holds: constant output interval. */
    bool
    consistent(int warmup, double eps = 1e-3) const
    {
        return !premiseViolated &&
               outputIntervals(warmup).constant(eps);
    }
};

/**
 * Execute Omega for `invocations` periods.
 *
 * @param ctx engine context whose tracer receives the task spans and
 *        whose registry counts premise violations; nullptr uses the
 *        process default context.
 */
SrExecutionResult
executeSchedule(const TaskFlowGraph &g, const TaskAllocation &alloc,
                const TimingModel &tm, const TimeBounds &bounds,
                const GlobalSchedule &omega, int invocations,
                const engine::EngineContext *ctx = nullptr);

} // namespace srsim

#endif // SRSIM_CORE_SR_EXECUTOR_HH_
