/**
 * @file
 * Incremental rescheduling: re-solve only dirty maximal subsets.
 *
 * Both degraded-mode repair (src/fault) and online admission control
 * (src/online) exploit the same two invariants of the Fig. 3
 * decomposition:
 *
 *  - message time bounds and the interval decomposition depend only
 *    on the TFG, the allocation, and the timing model — not on
 *    routes;
 *  - maximal related subsets share no (link, interval) pair, so a
 *    subset none of whose members changed (route, bounds, or link
 *    capacity) keeps its transmission segments verbatim.
 *
 * This module owns the shared mechanics: partition the messages into
 * maximal related subsets under a (possibly partially rerouted) path
 * assignment, mark the subsets touched by dirty messages or derated
 * links, run message-interval allocation and interval scheduling on
 * the dirty subsets only, and splice the fresh segments into the
 * prior schedule. Callers keep their own policy (what counts as
 * dirty, fallback strategy, metrics namespaces).
 */

#ifndef SRSIM_CORE_INCREMENTAL_HH_
#define SRSIM_CORE_INCREMENTAL_HH_

#include <string>
#include <vector>

#include "core/interval_allocation.hh"
#include "core/interval_scheduling.hh"
#include "core/intervals.hh"
#include "core/path_assignment.hh"
#include "core/time_bounds.hh"
#include "topology/topology.hh"
#include "util/time.hh"

namespace srsim {

/** Knobs of one incremental re-solve. */
struct IncrementalSolveOptions
{
    AllocationMethod allocMethod = AllocationMethod::Lp;
    /**
     * Scheduling options with packetTime already resolved (the
     * compiler's effective value, not the raw config).
     */
    IntervalSchedulingOptions scheduling;
    /**
     * When given, per-(link, interval) capacity honors
     * Topology::linkCapacity, and subsets touching a derated link
     * are re-solved even if none of their members is dirty.
     */
    const Topology *topo = nullptr;
    /**
     * Trace phase prefix: phases are named "<prefix>_allocation"
     * and "<prefix>_scheduling".
     */
    const char *tracePrefix = "incremental";
    /**
     * When given, the allocation and scheduling LPs of each dirty
     * subset warm-start from (and store back to) this basis cache,
     * so repeated re-solves of structurally unchanged subsets
     * resume in a handful of pivots. nullptr keeps solves cold.
     */
    lp::BasisCache *basisCache = nullptr;
    /**
     * Engine context the re-solve runs under (tracer, metrics,
     * thread pool, solver kind). Propagated into the scheduling
     * options unless those name their own context. nullptr uses the
     * process default context.
     */
    const engine::EngineContext *ctx = nullptr;
};

/** Outcome of one incremental re-solve. */
struct IncrementalSolveResult
{
    bool feasible = false;

    /** Subset bookkeeping. */
    std::size_t subsetsTotal = 0;
    std::size_t subsetsResolved = 0;
    std::size_t subsetsCopied = 0;

    /**
     * Per network-message transmission segments: fresh for members
     * of re-solved subsets, copied from the prior schedule
     * otherwise. Sized like bounds.messages.
     */
    std::vector<std::vector<TimeWindow>> segments;

    /** Stage that failed when !feasible. */
    enum class FailedStage { None, Allocation, Scheduling };
    FailedStage failedStage = FailedStage::None;
    lp::Status solveStatus = lp::Status::Optimal;
    /** Human-readable failure description (empty when feasible). */
    std::string detail;
};

/**
 * Re-solve the subsets touched by dirty messages.
 *
 * @param bounds   time bounds of the (new) workload
 * @param intervals interval decomposition of `bounds`
 * @param pa       complete path assignment for the workload
 * @param dirtyMessage per message index: true when the message's
 *        route, bounds, or existence changed — its subset must be
 *        re-solved
 * @param priorSegments per message index: the segments of the prior
 *        schedule (empty vectors for brand-new messages); rows of
 *        clean subsets are copied into the result verbatim
 */
IncrementalSolveResult
resolveDirtySubsets(const TimeBounds &bounds,
                    const IntervalSet &intervals,
                    const PathAssignment &pa,
                    const std::vector<char> &dirtyMessage,
                    const std::vector<std::vector<TimeWindow>>
                        &priorSegments,
                    const IncrementalSolveOptions &opts);

} // namespace srsim

#endif // SRSIM_CORE_INCREMENTAL_HH_
