/**
 * @file
 * Interval scheduling (Sec. 5.3): explicit preemptive schedules.
 *
 * Within one interval A_k, the messages with non-zero allocations
 * must be laid out on the timeline so that a message's entire link
 * set is free whenever it transmits (clear source-to-destination
 * path). This is preemptive scheduling of multiprocessor tasks
 * [Blazewicz-Drabowski-Weglarz 86]: links are processors, a message
 * needs all its links simultaneously.
 *
 * A *link-feasible set* (Def. 5.5) is a set of messages no two of
 * which share a link; its members can transmit simultaneously. The
 * solver enumerates the maximal link-feasible sets (Bron-Kerbosch on
 * the conflict graph's complement) and minimizes
 *     sum_j y_j   s.t.   sum_{j contains i} y_j >= p_i,  y >= 0,
 * where y_j is the time slice given to set j. The interval is
 * schedulable iff the optimum fits in |A_k|. (Covering a message
 * beyond p_i is harmless: it simply idles for the excess, so the
 * ">=" relaxation over *maximal* sets attains the same optimum as
 * the paper's "=" form over all sets.)
 *
 * A greedy list-scheduling fallback is provided for the ablation.
 */

#ifndef SRSIM_CORE_INTERVAL_SCHEDULING_HH_
#define SRSIM_CORE_INTERVAL_SCHEDULING_HH_

#include <string>
#include <vector>

#include "core/interval_allocation.hh"
#include "core/intervals.hh"
#include "core/path_assignment.hh"
#include "core/subsets.hh"
#include "core/time_bounds.hh"
#include "solver/lp.hh"
#include "tfg/tfg.hh"
#include "util/time.hh"

namespace srsim {

/** Scheduling strategy selector. */
enum class SchedulingMethod { LpFeasibleSets, ListScheduling };

/** Result of scheduling every interval of every subset. */
struct IntervalScheduleResult
{
    bool feasible = false;
    /**
     * Transmission segments per network message index, in frame
     * coordinates, non-overlapping and sorted by start.
     */
    std::vector<std::vector<TimeWindow>> segments;
    /** Interval index that failed, or -1. */
    int failedInterval = -1;
    /** Subset index that failed, or -1. */
    int failedSubset = -1;
    /** Demand minus capacity of the failing interval (if any). */
    double overrun = 0.0;
    /**
     * Solver verdict behind a failure: NumericalFailure /
     * IterationLimit when the covering LP gave up without a verdict,
     * Infeasible when it proved the interval over-committed,
     * Optimal otherwise (including a plain capacity overrun).
     */
    lp::Status solveStatus = lp::Status::Optimal;
    /** Offending message on a per-message failure, or invalid. */
    MessageId failedMessage = kInvalidMessage;
    /** Human-readable failure description (empty when feasible). */
    std::string error;
};

/** Knobs for the interval scheduler. */
struct IntervalSchedulingOptions
{
    SchedulingMethod method = SchedulingMethod::LpFeasibleSets;
    /** Cap on enumerated maximal link-feasible sets per interval. */
    std::size_t maxFeasibleSets = 4096;
    /**
     * Packet granularity (Sec. 4.1: "the basic time unit to be the
     * time for a single packet transmission"). When positive, every
     * transmission slot is rounded up to a whole number of packet
     * times, so segment boundaries land on the packet grid whenever
     * the interval boundaries do (i.e. when task times, message
     * times, and the input period are packet multiples -- the
     * paper's operating premise). 0 = continuous time.
     */
    Time packetTime = 0.0;
    /**
     * With packetTime > 0: solve the per-interval schedule as the
     * paper's *integer* program (slot lengths in whole packets, by
     * branch and bound) instead of rounding the LP relaxation up.
     * Exact but slower; falls back to the rounded LP if the
     * branch-and-bound node cap is hit.
     */
    bool exactPacketMip = false;
    /**
     * CP-synchronization guard (the paper's concluding remark): a
     * margin of at least twice the maximum clock difference
     * between CPs elapses before each transmission slot starts, so
     * every CP on the path has set up its crossbar. Charged once
     * per slot; tightens the schedulability test accordingly.
     */
    Time guardTime = 0.0;
    /**
     * When given, each (subset, interval) covering LP warm-starts
     * from the basis cached under its work item (and stores its
     * optimal basis back). Applies to the continuous formulation
     * only; the exact-packet MIP warm-starts internally from parent
     * branch-and-bound nodes instead. nullptr keeps solves cold.
     */
    lp::BasisCache *basisCache = nullptr;
    /**
     * Engine context supplying the thread pool, solver kind, and
     * metrics registry for the per-interval covering solves.
     * nullptr uses the process default context.
     */
    const engine::EngineContext *ctx = nullptr;
};

/**
 * Enumerate the maximal link-feasible sets among `members` (message
 * indices) under path assignment `pa`. Exposed for tests and for the
 * ablation bench.
 */
std::vector<std::vector<std::size_t>>
maximalLinkFeasibleSets(const std::vector<std::size_t> &members,
                        const PathAssignment &pa,
                        std::size_t maxSets = 4096);

/** Schedule every (subset, interval) pair; assemble frame segments. */
IntervalScheduleResult
scheduleIntervals(const TimeBounds &bounds,
                  const IntervalSet &intervals,
                  const PathAssignment &pa,
                  const std::vector<MessageSubset> &subsets,
                  const IntervalAllocation &alloc,
                  const IntervalSchedulingOptions &opts = {});

} // namespace srsim

#endif // SRSIM_CORE_INTERVAL_SCHEDULING_HH_
