#include "core/time_bounds.hh"

#include <cmath>

#include "util/logging.hh"

namespace srsim {

namespace {

/** Fold an absolute instant into [0, period). */
Time
foldIntoFrame(Time t, Time period)
{
    Time r = std::fmod(t, period);
    if (r < 0.0)
        r += period;
    // Snap near-period values to zero to keep windows canonical.
    if (timeEq(r, period))
        r = 0.0;
    return r;
}

} // namespace

TimeBounds
computeTimeBounds(const TaskFlowGraph &g, const TaskAllocation &alloc,
                  const TimingModel &tm, Time inputPeriod)
{
    const InvocationTiming inv = computeInvocationTiming(g, tm);
    if (timeLt(inputPeriod, inv.tauC)) {
        fatal("input period ", inputPeriod, " is below tau_c ",
              inv.tauC, "; the pipeline cannot keep up");
    }

    TimeBounds out;
    out.inputPeriod = inputPeriod;
    out.tauC = inv.tauC;
    out.criticalPath = inv.criticalPath;
    out.windowLatency = inv.windowLatency;
    out.indexOf.assign(static_cast<std::size_t>(g.numMessages()), -1);

    for (const Message &m : g.messages()) {
        if (alloc.coLocated(g, m.id))
            continue;

        MessageBounds b;
        b.msg = m.id;
        b.duration = tm.messageTime(g, m.id);
        b.absoluteRelease =
            inv.windowFinish[static_cast<std::size_t>(m.src)];
        b.release = foldIntoFrame(b.absoluteRelease, inputPeriod);

        const Time d_abs = b.release + inv.tauC;
        if (timeLe(d_abs, inputPeriod)) {
            b.deadline = d_abs;
            b.windows.push_back(TimeWindow{b.release, b.deadline});
        } else {
            // Wrapped window: [release, tau_in) and [0, d').
            b.deadline = d_abs - inputPeriod;
            SRSIM_ASSERT(timeLe(b.deadline, b.release),
                         "wrapped window overlaps itself; tau_c ",
                         inv.tauC, " > period ", inputPeriod, "?");
            b.windows.push_back(TimeWindow{b.release, inputPeriod});
            if (timeGt(b.deadline, 0.0))
                b.windows.push_back(TimeWindow{0.0, b.deadline});
        }

        if (!timeLe(b.duration, b.activeTime())) {
            fatal("message '", m.name, "' (", b.duration,
                  " us) exceeds its tau_c window (", b.activeTime(),
                  " us); the TFG violates tau_m <= tau_c");
        }

        out.indexOf[static_cast<std::size_t>(m.id)] =
            static_cast<int>(out.messages.size());
        out.messages.push_back(std::move(b));
    }
    return out;
}

} // namespace srsim
