/**
 * @file
 * Message-interval allocation (Sec. 5.2, constraints (3)-(4)).
 *
 * For each maximal subset, decide how much of each message is
 * transmitted in each of its active intervals: values X_hj >= 0 with
 *   (3)  sum_j X_hj = duration_h                      per message
 *   (4)  sum_{h uses link l} X_hj <= |A_j|            per (link, interval)
 *
 * srsim solves this as an LP that additionally minimizes the peak
 * per-(link, interval) load fraction Z (sum_h X_hj <= |A_j| * Z);
 * the allocation is feasible iff the optimum satisfies Z <= 1.
 * Spreading the load this way also eases the downstream interval
 * scheduling step. A first-fit greedy allocator is provided for the
 * solver ablation.
 */

#ifndef SRSIM_CORE_INTERVAL_ALLOCATION_HH_
#define SRSIM_CORE_INTERVAL_ALLOCATION_HH_

#include <string>
#include <vector>

#include "core/intervals.hh"
#include "core/path_assignment.hh"
#include "core/subsets.hh"
#include "core/time_bounds.hh"
#include "solver/lp.hh"
#include "util/matrix.hh"

namespace srsim {

namespace engine {
class EngineContext;
}

namespace lp {
class BasisCache;
}

/** Allocation outcome for the whole TFG. */
struct IntervalAllocation
{
    bool feasible = false;
    /** Peak link-interval load fraction achieved (LP objective Z). */
    double peakLoad = 0.0;
    /**
     * P matrix: time message index i transmits in interval k
     * (Nm x K; rows of local-only messages are absent because only
     * network messages are indexed).
     */
    Matrix<Time> allocation;
    /** Index of the subset that failed, or -1. */
    int failedSubset = -1;
    /**
     * Solver verdict behind a failure: Infeasible when the subset LP
     * proved the subset over-committed, NumericalFailure /
     * IterationLimit when the solver gave up without a verdict,
     * Optimal otherwise (including Z > 1, where the LP solved fine
     * but the load simply does not fit, and any greedy failure).
     */
    lp::Status solveStatus = lp::Status::Optimal;
    /** Human-readable failure description (empty when feasible). */
    std::string error;
};

/** Allocation strategy selector (LP is the paper's formulation). */
enum class AllocationMethod { Lp, Greedy };

/**
 * Allocate every message's transmission time to intervals, subset by
 * subset.
 *
 * @param guardTime CP-synchronization margin charged per
 *        transmission slot downstream (Sec. 7's suggested
 *        extension). The allocation conservatively reserves one
 *        guard per potentially-active message on each
 *        (link, interval), so the interval-scheduling stage has the
 *        headroom its guards will consume.
 * @param packetTime when positive, per-interval allocations are
 *        rounded to whole packets (largest-remainder rounding that
 *        preserves each message's total), matching Sec. 4.1's
 *        packet time base.
 * @param topo when given, per-(link, interval) capacity is scaled by
 *        Topology::linkCapacity so derated links only offer their
 *        surviving duty-cycle fraction of each interval.
 * @param basisCache when given, each subset LP warm-starts from the
 *        basis cached under its member set (and stores its optimal
 *        basis back), so re-solves of unchanged-structure subsets
 *        resume in a handful of pivots. nullptr keeps every solve
 *        cold.
 * @param ctx engine context supplying the thread pool, solver kind,
 *        and metrics registry; nullptr uses the process default.
 */
IntervalAllocation
allocateMessageIntervals(const TimeBounds &bounds,
                         const IntervalSet &intervals,
                         const PathAssignment &pa,
                         const std::vector<MessageSubset> &subsets,
                         AllocationMethod method =
                             AllocationMethod::Lp,
                         Time guardTime = 0.0,
                         Time packetTime = 0.0,
                         const Topology *topo = nullptr,
                         lp::BasisCache *basisCache = nullptr,
                         const engine::EngineContext *ctx = nullptr);

} // namespace srsim

#endif // SRSIM_CORE_INTERVAL_ALLOCATION_HH_
