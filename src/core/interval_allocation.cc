#include "core/interval_allocation.hh"

#include <algorithm>
#include <cmath>
#include <map>
#include <sstream>

#include "engine/context.hh"
#include "solver/lp.hh"
#include "solver/revised.hh"
#include "util/logging.hh"
#include "util/thread_pool.hh"

namespace srsim {

namespace {

/**
 * Guard-reserved capacity of (link, interval) for one subset,
 * scaled by the link's surviving duty-cycle fraction when the
 * topology is degraded.
 */
Time
guardedCapacity(const IntervalSet &ivs, const PathAssignment &pa,
                const MessageSubset &sub, LinkId l, std::size_t k,
                Time guard, const Topology *topo)
{
    const double cap = topo ? topo->linkCapacity(l) : 1.0;
    const Time len = ivs.interval(k).length() * cap;
    if (guard <= 0.0)
        return len;
    int active = 0;
    for (std::size_t h : sub.members) {
        const auto &links = pa.pathFor(h).links;
        if (std::find(links.begin(), links.end(), l) ==
            links.end())
            continue;
        // activeIntervals is sorted; linear scan is fine here.
        for (std::size_t ak : ivs.activeIntervals(h))
            if (ak == k) {
                ++active;
                break;
            }
    }
    return std::max(0.0, len - guard * active);
}

/**
 * LP allocation of one maximal subset. Returns false on
 * infeasibility (Z > 1 or LP failure); `status` and `error` then
 * say which of the two it was.
 */
bool
allocateSubsetLp(const TimeBounds &bounds, const IntervalSet &ivs,
                 const PathAssignment &pa, const MessageSubset &sub,
                 Time guard, const Topology *topo,
                 lp::BasisCache *basisCache,
                 const engine::EngineContext &ectx, Matrix<Time> &P,
                 double &peakLoad, lp::Status &status,
                 std::string &error)
{
    lp::Problem prob;

    // Variables: X_{hj} for every member h active in interval j,
    // plus the peak-load fraction Z (minimized).
    std::map<std::pair<std::size_t, std::size_t>, std::size_t> var;
    for (std::size_t h : sub.members) {
        for (std::size_t k : ivs.activeIntervals(h)) {
            var[{h, k}] = prob.addVariable(
                0.0, "X_" + std::to_string(h) + "_" +
                         std::to_string(k));
        }
    }
    const std::size_t z = prob.addVariable(1.0, "Z");

    // (3) total allocation equals the message duration.
    for (std::size_t h : sub.members) {
        lp::Constraint c;
        for (std::size_t k : ivs.activeIntervals(h))
            c.terms.emplace_back(var.at({h, k}), 1.0);
        c.rel = lp::Relation::Equal;
        c.rhs = bounds.messages[h].duration;
        prob.addConstraint(std::move(c));

        // A message cannot transmit longer than an interval lasts
        // (minus its own slot's guard).
        for (std::size_t k : ivs.activeIntervals(h)) {
            prob.addConstraint(
                {{var.at({h, k}), 1.0}}, lp::Relation::LessEq,
                std::max(0.0,
                         ivs.interval(k).length() - guard));
        }
    }

    // (4) per-(link, interval) capacity, tightened by Z:
    //     sum_h X_hj - |A_j| * Z <= 0.
    for (LinkId l : sub.links) {
        for (std::size_t k : sub.intervals) {
            lp::Constraint c;
            for (std::size_t h : sub.members) {
                const auto &links = pa.pathFor(h).links;
                if (std::find(links.begin(), links.end(), l) ==
                    links.end())
                    continue;
                auto it = var.find({h, k});
                if (it != var.end())
                    c.terms.emplace_back(it->second, 1.0);
            }
            if (c.terms.empty())
                continue;
            c.terms.emplace_back(
                z, -guardedCapacity(ivs, pa, sub, l, k, guard,
                                    topo));
            c.rel = lp::Relation::LessEq;
            c.rhs = 0.0;
            prob.addConstraint(std::move(c));
        }
    }

    // Warm-start from the last optimal basis of this subset's LP.
    // The key folds in the structure signature, so the cache keeps
    // one basis per structural variant of the subset (admission /
    // removal churn alternates between them).
    lp::SolveOptions sopts = ectx.solveOptions();
    lp::Basis warm;
    std::string cacheKey;
    std::uint64_t sig = 0;
    if (basisCache != nullptr) {
        sig = lp::structureSignature(prob);
        std::ostringstream key;
        key << "a";
        for (std::size_t h : sub.members)
            key << ":" << h;
        key << "#" << sig;
        cacheKey = key.str();
        if (basisCache->lookup(cacheKey, sig, warm))
            sopts.warmStart = &warm;
    }

    const lp::Solution sol = lp::solve(prob, sopts);
    if (basisCache != nullptr && sol.feasible() &&
        !sol.basis.empty())
        basisCache->store(cacheKey, sig, sol.basis);
    if (!sol.feasible()) {
        status = sol.status;
        error = std::string("subset LP ") + lp::statusName(status);
        return false;
    }
    const double zval = sol.values[z];
    peakLoad = std::max(peakLoad, zval);
    if (zval > 1.0 + 1e-6) {
        std::ostringstream oss;
        oss << "peak load Z = " << zval << " exceeds capacity";
        error = oss.str();
        return false;
    }

    for (const auto &[key, v] : var) {
        const auto &[h, k] = key;
        P.at(h, k) = std::max(0.0, sol.values[v]);
    }
    return true;
}

/**
 * Greedy first-fit allocation of one subset (solver ablation):
 * messages in decreasing-duration order fill their active intervals
 * earliest-first, respecting per-(link, interval) residual capacity.
 */
bool
allocateSubsetGreedy(const TimeBounds &bounds, const IntervalSet &ivs,
                     const PathAssignment &pa,
                     const MessageSubset &sub, Time guard,
                     const Topology *topo, Matrix<Time> &P,
                     double &peakLoad, std::string &error)
{
    // Residual capacity per (link, interval), guard-reserved.
    std::map<std::pair<LinkId, std::size_t>, Time> residual;
    for (LinkId l : sub.links)
        for (std::size_t k : sub.intervals)
            residual[{l, k}] =
                guardedCapacity(ivs, pa, sub, l, k, guard, topo);

    std::vector<std::size_t> order = sub.members;
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) {
                  return bounds.messages[a].duration >
                         bounds.messages[b].duration;
              });

    for (std::size_t h : order) {
        Time remaining = bounds.messages[h].duration;
        const auto &links = pa.pathFor(h).links;
        for (std::size_t k : ivs.activeIntervals(h)) {
            if (timeLe(remaining, 0.0))
                break;
            Time room = std::max(0.0, ivs.interval(k).length() -
                                          guard);
            for (LinkId l : links)
                room = std::min(room, residual.at({l, k}));
            const Time take = std::min(room, remaining);
            if (timeLe(take, 0.0))
                continue;
            P.at(h, k) += take;
            for (LinkId l : links)
                residual.at({l, k}) -= take;
            remaining -= take;
        }
        if (timeGt(remaining, 0.0)) {
            std::ostringstream oss;
            oss << "greedy allocation left message " << h
                << " short by " << remaining << " us";
            error = oss.str();
            return false;
        }
    }

    for (LinkId l : sub.links) {
        for (std::size_t k : sub.intervals) {
            const Time len = ivs.interval(k).length();
            if (len > 0.0) {
                peakLoad = std::max(
                    peakLoad, (len - residual.at({l, k})) / len);
            }
        }
    }
    return true;
}

/**
 * Round one message's per-interval allocations to whole packets,
 * preserving the row total (which is a packet multiple whenever
 * the message's transmission time is). Largest-remainder method;
 * extra packets go to the intervals with the most room.
 */
void
quantizeRow(Matrix<Time> &P, std::size_t h, const IntervalSet &ivs,
            const std::vector<std::size_t> &active, Time packet,
            Time guard)
{
    Time total = 0.0;
    for (std::size_t k : active)
        total += P.at(h, k);
    const long packets_total =
        std::lround(total / packet);

    struct Cell
    {
        std::size_t k;
        long floor_packets;
        double remainder;
        double cap_packets;
    };
    std::vector<Cell> cells;
    long assigned = 0;
    for (std::size_t k : active) {
        const double q = P.at(h, k) / packet;
        Cell c;
        c.k = k;
        c.floor_packets = static_cast<long>(std::floor(q + 1e-9));
        c.remainder = q - static_cast<double>(c.floor_packets);
        c.cap_packets = std::floor(
            std::max(0.0, ivs.interval(k).length() - guard) /
                packet +
            1e-9);
        cells.push_back(c);
        assigned += c.floor_packets;
    }
    long leftover = packets_total - assigned;
    std::sort(cells.begin(), cells.end(),
              [](const Cell &a, const Cell &b) {
                  return a.remainder > b.remainder;
              });
    for (Cell &c : cells) {
        while (leftover > 0 &&
               static_cast<double>(c.floor_packets) <
                   c.cap_packets) {
            ++c.floor_packets;
            --leftover;
            break; // one extra packet per cell per pass
        }
    }
    // Any stubborn leftovers: second pass ignoring the one-per-cell
    // rule (still capped by the interval length).
    for (Cell &c : cells) {
        while (leftover > 0 &&
               static_cast<double>(c.floor_packets) <
                   c.cap_packets) {
            ++c.floor_packets;
            --leftover;
        }
    }
    for (const Cell &c : cells)
        P.at(h, c.k) = static_cast<double>(c.floor_packets) *
                       packet;
    // If leftover packets could not be placed the totals no longer
    // match and the scheduling stage will reject the interval; that
    // is the correct failure path for an over-tight quantization.
}

} // namespace

namespace {

/** Outcome of one subset's (independent) allocation. */
struct SubsetAllocResult
{
    bool ok = false;
    double peakLoad = 0.0;
    lp::Status status = lp::Status::Optimal;
    std::string error;
    /** Cells (message row, interval, value) this subset wrote. */
    std::vector<std::tuple<std::size_t, std::size_t, Time>> cells;
};

} // namespace

IntervalAllocation
allocateMessageIntervals(const TimeBounds &bounds,
                         const IntervalSet &intervals,
                         const PathAssignment &pa,
                         const std::vector<MessageSubset> &subsets,
                         AllocationMethod method, Time guardTime,
                         Time packetTime, const Topology *topo,
                         lp::BasisCache *basisCache,
                         const engine::EngineContext *ctx)
{
    const engine::EngineContext &ectx = engine::resolve(ctx);
    IntervalAllocation out;
    out.allocation =
        Matrix<Time>(bounds.messages.size(), intervals.size(), 0.0);

    // Maximal subsets share no (link, interval) pair and partition
    // the messages, so their allocation problems are independent:
    // solve them concurrently, each into a private matrix, and merge
    // in subset order. The ordered merge stops at the lowest failed
    // subset, reproducing the serial early-exit byte for byte
    // (including a failed greedy subset's partial rows).
    std::vector<SubsetAllocResult> results(subsets.size());
    ectx.pool().parallelFor(
        subsets.size(), [&](std::size_t s) {
            SubsetAllocResult &r = results[s];
            Matrix<Time> local(bounds.messages.size(),
                               intervals.size(), 0.0);
            r.ok =
                method == AllocationMethod::Lp
                    ? allocateSubsetLp(bounds, intervals, pa,
                                       subsets[s], guardTime, topo,
                                       basisCache, ectx, local,
                                       r.peakLoad, r.status, r.error)
                    : allocateSubsetGreedy(bounds, intervals, pa,
                                           subsets[s], guardTime,
                                           topo, local, r.peakLoad,
                                           r.error);
            if (r.ok && packetTime > 0.0) {
                for (std::size_t h : subsets[s].members) {
                    quantizeRow(local, h, intervals,
                                intervals.activeIntervals(h),
                                packetTime, guardTime);
                }
            }
            for (std::size_t h : subsets[s].members)
                for (std::size_t k :
                     intervals.activeIntervals(h))
                    if (local.at(h, k) != 0.0)
                        r.cells.emplace_back(h, k,
                                             local.at(h, k));
        });

    for (std::size_t s = 0; s < subsets.size(); ++s) {
        out.peakLoad = std::max(out.peakLoad, results[s].peakLoad);
        for (const auto &[h, k, v] : results[s].cells)
            out.allocation.at(h, k) = v;
        if (!results[s].ok) {
            out.feasible = false;
            out.failedSubset = static_cast<int>(s);
            out.solveStatus = results[s].status;
            out.error = results[s].error;
            return out;
        }
    }
    out.feasible = true;
    return out;
}

} // namespace srsim
