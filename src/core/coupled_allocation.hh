/**
 * @file
 * Allocation-path coupling (the paper's suggested extension).
 *
 * "Since allocation determines the set of alternative paths for
 * each message, coupling it with path assignment so as to set up
 * less stringent constraints for SR computation should be
 * explored." (Sec. 7)
 *
 * This module explores exactly that: a simulated-annealing search
 * over task-to-node maps whose objective is the peak utilization U
 * the path-assignment stage can reach at a reference input period.
 * Moves relocate one task to a free node or swap two tasks; each
 * candidate is scored with a cheap path assignment (the LSD-to-MSD
 * baseline during the walk, a configurable short AssignPaths run
 * for the incumbent), so the search stays fast while still
 * optimizing the quantity that gates schedule feasibility.
 */

#ifndef SRSIM_CORE_COUPLED_ALLOCATION_HH_
#define SRSIM_CORE_COUPLED_ALLOCATION_HH_

#include <string>

#include "core/path_assignment.hh"
#include "mapping/allocation.hh"
#include "tfg/tfg.hh"
#include "tfg/timing.hh"
#include "topology/topology.hh"
#include "util/rng.hh"

namespace srsim {

/** Knobs of the coupled allocation search. */
struct CoupledAllocationOptions
{
    /** Annealing iterations. */
    int iterations = 400;
    /** Initial acceptance temperature (in units of U). */
    double initialTemperature = 0.3;
    /** Geometric cooling factor per iteration. */
    double cooling = 0.99;
    /** AssignPaths effort used to score accepted incumbents. */
    AssignPathsOptions scoring;

    CoupledAllocationOptions()
    {
        // Keep incumbent scoring cheap; the final caller-side
        // compile still runs a full AssignPaths.
        scoring.maxRestarts = 2;
        scoring.maxPathsPerMessage = 64;
    }
};

/** Outcome of the coupled search. */
struct CoupledAllocationResult
{
    TaskAllocation allocation;
    /** Peak utilization of the returned allocation (scored). */
    double peakUtilization = 0.0;
    /** Annealing moves accepted. */
    int accepted = 0;
    /** False when the search could not run (e.g. incomplete seed). */
    bool ok = true;
    /** Human-readable failure description (empty when ok). */
    std::string error;
};

/**
 * Search for a task allocation that minimizes the reachable peak
 * utilization at `inputPeriod`.
 *
 * @param seedAllocation starting point (must be complete)
 */
CoupledAllocationResult
coupleAllocationWithPaths(const TaskFlowGraph &g,
                          const Topology &topo,
                          const TimingModel &tm, Time inputPeriod,
                          const TaskAllocation &seedAllocation,
                          Rng &rng,
                          const CoupledAllocationOptions &opts = {});

} // namespace srsim

#endif // SRSIM_CORE_COUPLED_ALLOCATION_HH_
