#include "core/path_assignment.hh"

#include <algorithm>
#include <limits>
#include <set>
#include <string>

#include "engine/context.hh"
#include "util/logging.hh"
#include "util/rng.hh"
#include "util/thread_pool.hh"

namespace srsim {

UtilizationAnalyzer::UtilizationAnalyzer(const TimeBounds &bounds,
                                         const IntervalSet &intervals,
                                         const Topology &topo)
    : bounds_(bounds), intervals_(intervals), topo_(topo)
{
    const std::size_t nmsg = bounds_.messages.size();
    durations_.resize(nmsg);
    noSlack_.resize(nmsg);
    activeIv_.resize(nmsg);
    for (std::size_t i = 0; i < nmsg; ++i) {
        durations_[i] = bounds_.messages[i].duration;
        noSlack_[i] = bounds_.messages[i].noSlack();
        activeIv_[i] = intervals_.activeIntervals(i);
    }
}

double
UtilizationAnalyzer::linkUtilization(const PathAssignment &pa,
                                     LinkId j) const
{
    double demand = 0.0;
    std::vector<bool> used(intervals_.size(), false);
    for (std::size_t i = 0; i < bounds_.messages.size(); ++i) {
        const Path &p = pa.pathFor(i);
        if (std::find(p.links.begin(), p.links.end(), j) ==
            p.links.end())
            continue;
        demand += durations_[i];
        for (std::size_t k : activeIv_[i])
            used[k] = true;
    }
    double avail = 0.0;
    for (std::size_t k = 0; k < intervals_.size(); ++k)
        if (used[k])
            avail += intervals_.interval(k).length();
    // A derated link only offers its duty-cycle fraction of the
    // active time; a failed link offers none.
    avail *= topo_.linkCapacity(j);
    if (avail <= 0.0)
        return demand > 0.0
                   ? std::numeric_limits<double>::infinity()
                   : 0.0;
    return demand / avail;
}

double
UtilizationAnalyzer::spotUtilization(const PathAssignment &pa,
                                     LinkId j, std::size_t k) const
{
    double count = 0.0;
    for (std::size_t i = 0; i < bounds_.messages.size(); ++i) {
        if (!noSlack_[i] || !intervals_.active(i, k))
            continue;
        const Path &p = pa.pathFor(i);
        if (std::find(p.links.begin(), p.links.end(), j) !=
            p.links.end())
            count += 1.0;
    }
    return count;
}

UtilizationReport
UtilizationAnalyzer::analyze(const PathAssignment &pa) const
{
    const std::size_t nl = static_cast<std::size_t>(topo_.numLinks());
    const std::size_t kk = intervals_.size();

    // Scratch buffers, reused across calls (single-threaded).
    scratchDemand_.assign(nl, 0.0);
    scratchUsed_.assign(nl * kk, 0);
    scratchSpot_.assign(nl * kk, 0);
    scratchTouched_.clear();

    for (std::size_t i = 0; i < pa.paths.size(); ++i) {
        const bool ns = noSlack_[i];
        for (LinkId l : pa.paths[i].links) {
            const std::size_t lj = static_cast<std::size_t>(l);
            if (scratchDemand_[lj] == 0.0)
                scratchTouched_.push_back(l);
            scratchDemand_[lj] += durations_[i];
            for (std::size_t k : activeIv_[i]) {
                scratchUsed_[lj * kk + k] = 1;
                if (ns)
                    ++scratchSpot_[lj * kk + k];
            }
        }
    }

    UtilizationReport rep;
    for (LinkId j : scratchTouched_) {
        const std::size_t lj = static_cast<std::size_t>(j);
        double avail = 0.0;
        for (std::size_t k = 0; k < kk; ++k)
            if (scratchUsed_[lj * kk + k])
                avail += intervals_.interval(k).length();
        avail *= topo_.linkCapacity(j);
        const double u =
            avail > 0.0
                ? scratchDemand_[lj] / avail
                : (scratchDemand_[lj] > 0.0
                       ? std::numeric_limits<double>::infinity()
                       : 0.0);
        if (u > rep.peak) {
            rep.peak = u;
            rep.position = PeakPosition{false, j, 0};
        }
        for (std::size_t k = 0; k < kk; ++k) {
            // A spot contributes only when it is a *hot-spot*: two
            // or more no-slack messages pinned to one link in one
            // interval (Def. 5.2's condition U^s_jk <= 1 violated).
            // A single no-slack message is not contention, and
            // counting it would pin the reported peak at 1.0
            // whenever tau_m == tau_c.
            const double s =
                static_cast<double>(scratchSpot_[lj * kk + k]);
            if (s > 1.0 && s > rep.peak) {
                rep.peak = s;
                rep.position = PeakPosition{true, j, k};
            }
        }
    }
    return rep;
}

namespace {

/**
 * Candidate minimal paths for every network message. A message with
 * no path at all (disconnected fabric) gets an empty candidate list;
 * the caller turns that into a structured failure.
 */
std::vector<std::vector<Path>>
candidatePaths(const TaskFlowGraph &g, const Topology &topo,
               const TaskAllocation &alloc, const TimeBounds &bounds,
               std::size_t maxPaths)
{
    std::vector<std::vector<Path>> out;
    out.reserve(bounds.messages.size());
    for (const MessageBounds &b : bounds.messages) {
        const Message &m = g.message(b.msg);
        const NodeId s = alloc.nodeOf(m.src);
        const NodeId d = alloc.nodeOf(m.dst);
        out.push_back(topo.minimalPaths(s, d, maxPaths));
    }
    return out;
}

/** Message indices whose current path uses link j. */
std::vector<std::size_t>
messagesOnLink(const PathAssignment &pa, LinkId j)
{
    std::vector<std::size_t> out;
    for (std::size_t i = 0; i < pa.paths.size(); ++i) {
        const auto &links = pa.paths[i].links;
        if (std::find(links.begin(), links.end(), j) != links.end())
            out.push_back(i);
    }
    return out;
}

/** Outcome of one improvement walk (one restart). */
struct WalkResult
{
    PathAssignment assignment;
    UtilizationReport report;
    int reroutes = 0;
};

/**
 * One iterative-improvement walk of Fig. 4's inner loop: start from
 * a random assignment drawn from `seed`'s own RNG stream and reroute
 * peak-crossing messages until no move reduces (or usefully
 * repositions) the peak. Deterministic given (candidates, seed).
 */
WalkResult
improveWalk(const std::vector<std::vector<Path>> &candidates,
            const TimeBounds &bounds, const IntervalSet &intervals,
            const Topology &topo, const AssignPathsOptions &opts,
            std::uint64_t seed)
{
    // Per-walk analyzer: its scratch buffers make analyze()
    // single-threaded, so concurrent walks each get their own.
    UtilizationAnalyzer ua(bounds, intervals, topo);
    Rng rng(seed);

    WalkResult w;
    w.assignment.paths.reserve(candidates.size());
    for (const auto &cands : candidates)
        w.assignment.paths.push_back(cands[rng.index(cands.size())]);
    PathAssignment &current = w.assignment;
    UtilizationReport cur_rep = ua.analyze(current);

    // Iterative improvement: a sweep reroutes at most one message;
    // repositioning moves (same peak value, different link/spot) are
    // allowed a bounded number of times so the walk can escape
    // plateaus without oscillating forever.
    int inner = 0;
    int repositions = 0;
    const int repositionBudget =
        2 * static_cast<int>(bounds.messages.size()) + 4;
    bool iflag = true;
    while (iflag && inner < opts.maxInnerIterations) {
        iflag = false;
        ++inner;

        // Reroutable = multi-hop messages crossing the peak link
        // (restricted to the peak interval for spots).
        std::vector<std::size_t> reroutable;
        for (std::size_t i :
             messagesOnLink(current, cur_rep.position.link)) {
            if (current.paths[i].hops() < 2)
                continue;
            if (cur_rep.position.isSpot &&
                !intervals.active(i, cur_rep.position.interval))
                continue;
            if (candidates[i].size() < 2)
                continue;
            reroutable.push_back(i);
        }

        double best_new_peak = cur_rep.peak;
        std::size_t red_msg = SIZE_MAX, red_path = 0;
        std::size_t repos_msg = SIZE_MAX, repos_path = 0;
        UtilizationReport repos_rep;

        for (std::size_t i : reroutable) {
            const Path saved = current.paths[i];
            for (std::size_t c = 0; c < candidates[i].size(); ++c) {
                if (candidates[i][c] == saved)
                    continue;
                current.paths[i] = candidates[i][c];
                const UtilizationReport rep = ua.analyze(current);
                if (rep.peak < best_new_peak - 1e-12) {
                    best_new_peak = rep.peak;
                    red_msg = i;
                    red_path = c;
                } else if (repos_msg == SIZE_MAX &&
                           rep.peak <= cur_rep.peak + 1e-12 &&
                           !(rep.position == cur_rep.position)) {
                    repos_msg = i;
                    repos_path = c;
                    repos_rep = rep;
                }
            }
            current.paths[i] = saved;
        }

        if (red_msg != SIZE_MAX) {
            current.paths[red_msg] = candidates[red_msg][red_path];
            cur_rep = ua.analyze(current);
            ++w.reroutes;
            iflag = true;
        } else if (repos_msg != SIZE_MAX &&
                   repositions < repositionBudget) {
            current.paths[repos_msg] =
                candidates[repos_msg][repos_path];
            cur_rep = repos_rep;
            ++w.reroutes;
            ++repositions;
            iflag = true;
        }
    }

    w.report = cur_rep;
    return w;
}

} // namespace

PathAssignment
lsdToMsdAssignment(const TaskFlowGraph &g, const Topology &topo,
                   const TaskAllocation &alloc,
                   const TimeBounds &bounds)
{
    PathAssignment pa;
    pa.paths.reserve(bounds.messages.size());
    for (const MessageBounds &b : bounds.messages) {
        const Message &m = g.message(b.msg);
        pa.paths.push_back(topo.routeLsdToMsd(alloc.nodeOf(m.src),
                                              alloc.nodeOf(m.dst)));
    }
    return pa;
}

AssignPathsResult
assignPaths(const TaskFlowGraph &g, const Topology &topo,
            const TaskAllocation &alloc, const TimeBounds &bounds,
            const IntervalSet &intervals,
            const AssignPathsOptions &opts)
{
    const auto candidates = candidatePaths(g, topo, alloc, bounds,
                                           opts.maxPathsPerMessage);
    for (std::size_t i = 0; i < candidates.size(); ++i) {
        if (candidates[i].empty()) {
            const Message &m = g.message(bounds.messages[i].msg);
            AssignPathsResult bad;
            bad.ok = false;
            bad.failedMessage = m.id;
            bad.error = "no path between node " +
                        std::to_string(alloc.nodeOf(m.src)) +
                        " and node " +
                        std::to_string(alloc.nodeOf(m.dst)) +
                        " for message '" + m.name + "'";
            return bad;
        }
    }

    // Outer loop of Fig. 4, restructured for parallelism: restart
    // walks are *independent* (walk r draws its random start from
    // the RNG stream deriveSeed(opts.seed, r)), so they run
    // concurrently on the context's pool and the result is
    // bit-identical to the serial order for every thread count. The
    // reduction is a fixed-order scan: lowest peak U wins, ties go
    // to the lowest restart index.
    const std::size_t walks =
        static_cast<std::size_t>(opts.maxRestarts) + 1;
    std::vector<WalkResult> results(walks);
    engine::resolve(opts.ctx).pool().parallelFor(
        walks, [&](std::size_t r) {
            results[r] =
                improveWalk(candidates, bounds, intervals, topo,
                            opts, deriveSeed(opts.seed, r));
        });

    AssignPathsResult result;
    std::size_t best = 0;
    for (std::size_t r = 0; r < walks; ++r) {
        result.reroutes += results[r].reroutes;
        if (results[r].report.peak <
            results[best].report.peak - 1e-12)
            best = r;
    }
    result.restarts = static_cast<int>(walks) - 1;
    result.assignment = std::move(results[best].assignment);
    result.report = results[best].report;
    return result;
}

GreedyRouteResult
greedyRouteMessages(const TaskFlowGraph &g, const Topology &topo,
                    const TaskAllocation &alloc,
                    const TimeBounds &bounds,
                    const IntervalSet &intervals,
                    const std::vector<std::size_t> &indices,
                    std::size_t maxPathsPerMessage,
                    PathAssignment &pa)
{
    GreedyRouteResult out;
    UtilizationAnalyzer ua(bounds, intervals, topo);

    // Phase 1: every listed message takes its first surviving
    // minimal path, so phase 2 scores candidates against a complete
    // assignment.
    std::vector<std::vector<Path>> cands(indices.size());
    for (std::size_t j = 0; j < indices.size(); ++j) {
        const std::size_t i = indices[j];
        const Message &m = g.message(bounds.messages[i].msg);
        cands[j] = topo.minimalPaths(alloc.nodeOf(m.src),
                                     alloc.nodeOf(m.dst),
                                     maxPathsPerMessage);
        if (cands[j].empty()) {
            out.failedMessage = m.id;
            out.error = "no surviving minimal path between node " +
                        std::to_string(alloc.nodeOf(m.src)) +
                        " and node " +
                        std::to_string(alloc.nodeOf(m.dst)) +
                        " for message '" + m.name + "'";
            return out;
        }
        pa.paths[i] = cands[j].front();
    }

    // Phase 2: in list order, keep the candidate minimizing the
    // peak utilization with all other routes fixed.
    for (std::size_t j = 0; j < indices.size(); ++j) {
        const std::size_t i = indices[j];
        std::size_t best = 0;
        double best_peak = 0.0;
        for (std::size_t c = 0; c < cands[j].size(); ++c) {
            pa.paths[i] = cands[j][c];
            const double peak = ua.analyze(pa).peak;
            if (c == 0 || peak < best_peak - 1e-12) {
                best = c;
                best_peak = peak;
            }
        }
        pa.paths[i] = cands[j][best];
    }

    out.ok = true;
    out.report = ua.analyze(pa);
    return out;
}

} // namespace srsim
