#include "core/schedule_io.hh"

#include <iomanip>
#include <sstream>
#include <string>

#include "util/logging.hh"

namespace srsim {

namespace {

constexpr const char *kMagicV1 = "srsim-schedule v1";
constexpr const char *kMagicV2 = "srsim-schedule v2";

std::string
expectLine(std::istream &is, const char *what)
{
    std::string line;
    if (!std::getline(is, line))
        fatal("schedule file truncated while reading ", what);
    return line;
}

} // namespace

void
writeSchedule(std::ostream &os, const GlobalSchedule &omega)
{
    // Healthy schedules keep the v1 format byte for byte; the v2
    // header appears only when degraded-mode provenance is present,
    // so pre-fault readers keep working on pre-fault files.
    const bool v2 =
        !omega.faultSpec.empty() || omega.degradedFrom > 0.0;
    os << (v2 ? kMagicV2 : kMagicV1) << "\n";
    os << std::setprecision(17);
    os << "period " << omega.period << "\n";
    if (v2 && !omega.faultSpec.empty())
        os << "faults " << omega.faultSpec << "\n";
    if (v2 && omega.degradedFrom > 0.0)
        os << "degraded-from " << omega.degradedFrom << "\n";
    os << "messages " << omega.segments.size() << "\n";
    for (std::size_t i = 0; i < omega.segments.size(); ++i) {
        const Path &p = omega.paths.pathFor(i);
        os << "message " << i << " path";
        for (NodeId n : p.nodes)
            os << " " << n;
        os << "\n";
        os << "segments " << omega.segments[i].size() << "\n";
        for (const TimeWindow &w : omega.segments[i])
            os << "  " << w.start << " " << w.end << "\n";
    }
    os << "end\n";
}

GlobalSchedule
readSchedule(std::istream &is, const Topology &topo)
{
    GlobalSchedule omega;

    const std::string magic = expectLine(is, "magic");
    if (magic != kMagicV1 && magic != kMagicV2)
        fatal("not an srsim-schedule v1/v2 file");

    {
        std::istringstream ls(expectLine(is, "period"));
        std::string kw;
        ls >> kw >> omega.period;
        if (kw != "period" || !(omega.period > 0.0))
            fatal("bad period line in schedule file");
    }

    // v2 optional provenance lines, then the message count (also the
    // v1 next line, so v1 files take this loop zero times).
    std::size_t nmsg = 0;
    for (;;) {
        std::istringstream ls(expectLine(is, "header"));
        std::string kw;
        ls >> kw;
        if (kw == "messages") {
            ls >> nmsg;
            break;
        }
        if (magic != kMagicV2)
            fatal("bad messages line in schedule file");
        if (kw == "faults") {
            ls >> omega.faultSpec;
            if (omega.faultSpec.empty())
                fatal("empty faults line in schedule file");
        } else if (kw == "degraded-from") {
            ls >> omega.degradedFrom;
            if (ls.fail() || !(omega.degradedFrom > 0.0))
                fatal("bad degraded-from line in schedule file");
        } else {
            fatal("unknown schedule header line '", kw, "'");
        }
    }

    omega.segments.resize(nmsg);
    omega.paths.paths.resize(nmsg);
    for (std::size_t i = 0; i < nmsg; ++i) {
        {
            std::istringstream ls(expectLine(is, "message header"));
            std::string kw, pathkw;
            std::size_t idx;
            ls >> kw >> idx >> pathkw;
            if (kw != "message" || idx != i || pathkw != "path")
                fatal("bad message header for message ", i);
            std::vector<NodeId> nodes;
            NodeId n;
            while (ls >> n)
                nodes.push_back(n);
            if (nodes.empty())
                fatal("empty path for message ", i);
            // Validate before makePath: a file whose route does not
            // exist in this topology is bad *input*, not an internal
            // invariant violation.
            for (NodeId n2 : nodes)
                if (n2 < 0 || n2 >= topo.numNodes())
                    fatal("message ", i, ": node ", n2,
                          " outside the ", topo.numNodes(),
                          "-node fabric");
            for (std::size_t j = 0; j + 1 < nodes.size(); ++j) {
                if (!topo.adjacent(nodes[j], nodes[j + 1]))
                    fatal("message ", i, ": nodes ", nodes[j],
                          " and ", nodes[j + 1],
                          " are not adjacent in ", topo.name());
            }
            omega.paths.paths[i] = topo.makePath(nodes);
        }
        std::size_t nseg = 0;
        {
            std::istringstream ls(expectLine(is, "segment count"));
            std::string kw;
            ls >> kw >> nseg;
            if (kw != "segments")
                fatal("bad segments line for message ", i);
        }
        for (std::size_t s = 0; s < nseg; ++s) {
            std::istringstream ls(expectLine(is, "segment"));
            TimeWindow w;
            ls >> w.start >> w.end;
            if (ls.fail() || !timeLt(w.start, w.end))
                fatal("bad segment ", s, " for message ", i);
            omega.segments[i].push_back(w);
        }
    }
    if (expectLine(is, "trailer") != "end")
        fatal("missing end marker in schedule file");
    return omega;
}

} // namespace srsim
