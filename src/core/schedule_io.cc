#include "core/schedule_io.hh"

#include <iomanip>
#include <sstream>
#include <string>

#include "util/logging.hh"

namespace srsim {

namespace {

constexpr const char *kMagicV1 = "srsim-schedule v1";
constexpr const char *kMagicV2 = "srsim-schedule v2";

/**
 * Plausibility cap on on-disk counts. A truncated or corrupt header
 * can claim (say) 10^18 messages; resizing to that is an allocation
 * bomb, not a parse error, so counts above this bound are rejected
 * as corrupt before any allocation happens.
 */
constexpr long long kMaxCount = 1000000;

bool
nextLine(std::istream &is, std::string &line)
{
    return static_cast<bool>(std::getline(is, line));
}

} // namespace

void
writeSchedule(std::ostream &os, const GlobalSchedule &omega)
{
    // Healthy schedules keep the v1 format byte for byte; the v2
    // header appears only when degraded-mode provenance is present,
    // so pre-fault readers keep working on pre-fault files.
    const bool v2 =
        !omega.faultSpec.empty() || omega.degradedFrom > 0.0;
    os << (v2 ? kMagicV2 : kMagicV1) << "\n";
    os << std::setprecision(17);
    os << "period " << omega.period << "\n";
    if (v2 && !omega.faultSpec.empty())
        os << "faults " << omega.faultSpec << "\n";
    if (v2 && omega.degradedFrom > 0.0)
        os << "degraded-from " << omega.degradedFrom << "\n";
    os << "messages " << omega.segments.size() << "\n";
    for (std::size_t i = 0; i < omega.segments.size(); ++i) {
        const Path &p = omega.paths.pathFor(i);
        os << "message " << i << " path";
        for (NodeId n : p.nodes)
            os << " " << n;
        os << "\n";
        os << "segments " << omega.segments[i].size() << "\n";
        for (const TimeWindow &w : omega.segments[i])
            os << "  " << w.start << " " << w.end << "\n";
    }
    os << "end\n";
}

ScheduleReadResult
tryReadSchedule(std::istream &is, const Topology &topo)
{
    ScheduleReadResult res;
    GlobalSchedule &omega = res.omega;

    const auto fail = [&res](const std::string &why) {
        res.ok = false;
        res.error = why;
        res.omega = GlobalSchedule{};
        return res;
    };
    const auto truncated = [&fail](const char *what) {
        return fail(std::string(
                        "schedule file truncated while reading ") +
                    what);
    };

    std::string line;
    if (!nextLine(is, line))
        return truncated("magic");
    if (line != kMagicV1 && line != kMagicV2)
        return fail("not an srsim-schedule v1/v2 file");
    const bool isV2 = line == kMagicV2;

    if (!nextLine(is, line))
        return truncated("period");
    {
        std::istringstream ls(line);
        std::string kw;
        ls >> kw >> omega.period;
        if (kw != "period" || ls.fail() || !(omega.period > 0.0))
            return fail("bad period line in schedule file");
    }

    // v2 optional provenance lines, then the message count (also the
    // v1 next line, so v1 files take this loop zero times).
    long long nmsg = -1;
    for (;;) {
        if (!nextLine(is, line))
            return truncated("header");
        std::istringstream ls(line);
        std::string kw;
        ls >> kw;
        if (kw == "messages") {
            ls >> nmsg;
            if (ls.fail() || nmsg < 0)
                return fail("bad messages line in schedule file");
            if (nmsg > kMaxCount)
                return fail("implausible message count " +
                            std::to_string(nmsg) +
                            " in schedule file");
            break;
        }
        if (!isV2)
            return fail("bad messages line in schedule file");
        if (kw == "faults") {
            ls >> omega.faultSpec;
            if (omega.faultSpec.empty())
                return fail("empty faults line in schedule file");
        } else if (kw == "degraded-from") {
            ls >> omega.degradedFrom;
            if (ls.fail() || !(omega.degradedFrom > 0.0))
                return fail(
                    "bad degraded-from line in schedule file");
        } else {
            return fail("unknown schedule header line '" + kw +
                        "'");
        }
    }

    omega.segments.resize(static_cast<std::size_t>(nmsg));
    omega.paths.paths.resize(static_cast<std::size_t>(nmsg));
    for (std::size_t i = 0; i < static_cast<std::size_t>(nmsg);
         ++i) {
        const std::string ctx =
            " for message " + std::to_string(i);
        {
            if (!nextLine(is, line))
                return truncated("message header");
            std::istringstream ls(line);
            std::string kw, pathkw;
            std::size_t idx = 0;
            ls >> kw >> idx >> pathkw;
            if (ls.fail() || kw != "message" || idx != i ||
                pathkw != "path")
                return fail("bad message header" + ctx);
            std::vector<NodeId> nodes;
            NodeId n;
            while (ls >> n)
                nodes.push_back(n);
            if (nodes.empty())
                return fail("empty path" + ctx);
            // Validate before makePath: a file whose route does not
            // exist in this topology is bad *input*, not an internal
            // invariant violation.
            for (NodeId n2 : nodes)
                if (n2 < 0 || n2 >= topo.numNodes())
                    return fail(
                        "node " + std::to_string(n2) +
                        " outside the " +
                        std::to_string(topo.numNodes()) +
                        "-node fabric" + ctx);
            for (std::size_t j = 0; j + 1 < nodes.size(); ++j) {
                if (!topo.adjacent(nodes[j], nodes[j + 1]))
                    return fail(
                        "nodes " + std::to_string(nodes[j]) +
                        " and " + std::to_string(nodes[j + 1]) +
                        " are not adjacent in " + topo.name() +
                        ctx);
            }
            try {
                omega.paths.paths[i] = topo.makePath(nodes);
            } catch (const PanicError &e) {
                return fail(std::string("invalid path") + ctx +
                            ": " + e.what());
            } catch (const FatalError &e) {
                return fail(std::string("invalid path") + ctx +
                            ": " + e.what());
            }
        }
        long long nseg = -1;
        {
            if (!nextLine(is, line))
                return truncated("segment count");
            std::istringstream ls(line);
            std::string kw;
            ls >> kw >> nseg;
            if (kw != "segments" || ls.fail() || nseg < 0)
                return fail("bad segments line" + ctx);
            if (nseg > kMaxCount)
                return fail("implausible segment count " +
                            std::to_string(nseg) + ctx);
        }
        omega.segments[i].reserve(static_cast<std::size_t>(nseg));
        for (long long s = 0; s < nseg; ++s) {
            if (!nextLine(is, line))
                return truncated("segment");
            std::istringstream ls(line);
            TimeWindow w;
            ls >> w.start >> w.end;
            if (ls.fail() || !timeLt(w.start, w.end))
                return fail("bad segment " + std::to_string(s) +
                            ctx);
            omega.segments[i].push_back(w);
        }
    }
    if (!nextLine(is, line))
        return truncated("trailer");
    if (line != "end")
        return fail("missing end marker in schedule file");
    res.ok = true;
    return res;
}

GlobalSchedule
readSchedule(std::istream &is, const Topology &topo)
{
    ScheduleReadResult res = tryReadSchedule(is, topo);
    if (!res.ok)
        fatal(res.error);
    return std::move(res.omega);
}

} // namespace srsim
