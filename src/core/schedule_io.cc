#include "core/schedule_io.hh"

#include <iomanip>
#include <sstream>
#include <string>

#include "util/logging.hh"

namespace srsim {

namespace {

constexpr const char *kMagic = "srsim-schedule v1";

std::string
expectLine(std::istream &is, const char *what)
{
    std::string line;
    if (!std::getline(is, line))
        fatal("schedule file truncated while reading ", what);
    return line;
}

} // namespace

void
writeSchedule(std::ostream &os, const GlobalSchedule &omega)
{
    os << kMagic << "\n";
    os << std::setprecision(17);
    os << "period " << omega.period << "\n";
    os << "messages " << omega.segments.size() << "\n";
    for (std::size_t i = 0; i < omega.segments.size(); ++i) {
        const Path &p = omega.paths.pathFor(i);
        os << "message " << i << " path";
        for (NodeId n : p.nodes)
            os << " " << n;
        os << "\n";
        os << "segments " << omega.segments[i].size() << "\n";
        for (const TimeWindow &w : omega.segments[i])
            os << "  " << w.start << " " << w.end << "\n";
    }
    os << "end\n";
}

GlobalSchedule
readSchedule(std::istream &is, const Topology &topo)
{
    GlobalSchedule omega;

    if (expectLine(is, "magic") != kMagic)
        fatal("not an srsim-schedule v1 file");

    {
        std::istringstream ls(expectLine(is, "period"));
        std::string kw;
        ls >> kw >> omega.period;
        if (kw != "period" || !(omega.period > 0.0))
            fatal("bad period line in schedule file");
    }

    std::size_t nmsg = 0;
    {
        std::istringstream ls(expectLine(is, "message count"));
        std::string kw;
        ls >> kw >> nmsg;
        if (kw != "messages")
            fatal("bad messages line in schedule file");
    }

    omega.segments.resize(nmsg);
    omega.paths.paths.resize(nmsg);
    for (std::size_t i = 0; i < nmsg; ++i) {
        {
            std::istringstream ls(expectLine(is, "message header"));
            std::string kw, pathkw;
            std::size_t idx;
            ls >> kw >> idx >> pathkw;
            if (kw != "message" || idx != i || pathkw != "path")
                fatal("bad message header for message ", i);
            std::vector<NodeId> nodes;
            NodeId n;
            while (ls >> n)
                nodes.push_back(n);
            if (nodes.empty())
                fatal("empty path for message ", i);
            omega.paths.paths[i] = topo.makePath(nodes);
        }
        std::size_t nseg = 0;
        {
            std::istringstream ls(expectLine(is, "segment count"));
            std::string kw;
            ls >> kw >> nseg;
            if (kw != "segments")
                fatal("bad segments line for message ", i);
        }
        for (std::size_t s = 0; s < nseg; ++s) {
            std::istringstream ls(expectLine(is, "segment"));
            TimeWindow w;
            ls >> w.start >> w.end;
            if (ls.fail() || !timeLt(w.start, w.end))
                fatal("bad segment ", s, " for message ", i);
            omega.segments[i].push_back(w);
        }
    }
    if (expectLine(is, "trailer") != "end")
        fatal("missing end marker in schedule file");
    return omega;
}

} // namespace srsim
