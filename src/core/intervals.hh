/**
 * @file
 * Frame interval decomposition and the message activity matrix A
 * (Sec. 5.1 of the paper).
 *
 * The distinct release/deadline endpoints of all messages partition
 * the frame [0, tau_in] into K non-overlapping intervals
 * A_1..A_K; a message is "active" in A_k iff it is available for
 * transmission throughout [t_{k-1}, t_k]. Because the interval
 * boundaries are exactly the window endpoints, an interval is either
 * fully inside or fully outside every message window.
 */

#ifndef SRSIM_CORE_INTERVALS_HH_
#define SRSIM_CORE_INTERVALS_HH_

#include <vector>

#include "core/time_bounds.hh"
#include "util/matrix.hh"
#include "util/time.hh"

namespace srsim {

/** The interval decomposition of one frame plus activity matrix. */
class IntervalSet
{
  public:
    /** Build from message time bounds. */
    explicit IntervalSet(const TimeBounds &bounds);

    /** Number of intervals K. */
    std::size_t size() const { return intervals_.size(); }

    /** Interval A_k (0-based). */
    const TimeWindow &interval(std::size_t k) const
    {
        return intervals_[k];
    }

    const std::vector<TimeWindow> &intervals() const
    {
        return intervals_;
    }

    /**
     * Activity matrix entry a_ik: message index i (into
     * TimeBounds::messages) active in interval k.
     */
    bool
    active(std::size_t msgIdx, std::size_t k) const
    {
        return activity_.at(msgIdx, k) != 0;
    }

    /** Intervals in which message index i is active. */
    std::vector<std::size_t> activeIntervals(std::size_t msgIdx) const;

    /** Message indices active in interval k. */
    std::vector<std::size_t> activeMessages(std::size_t k) const;

    /** The interval containing frame instant t. */
    std::size_t intervalAt(Time t) const;

    /** The raw Nm x K activity matrix. */
    const Matrix<int> &activityMatrix() const { return activity_; }

  private:
    std::vector<TimeWindow> intervals_;
    Matrix<int> activity_;
};

} // namespace srsim

#endif // SRSIM_CORE_INTERVALS_HH_
