#include "core/incremental.hh"

#include <sstream>
#include <string>

#include "core/subsets.hh"
#include "engine/context.hh"
#include "metrics/metrics.hh"
#include "trace/trace.hh"

namespace srsim {

IncrementalSolveResult
resolveDirtySubsets(const TimeBounds &bounds,
                    const IntervalSet &intervals,
                    const PathAssignment &pa,
                    const std::vector<char> &dirtyMessage,
                    const std::vector<std::vector<TimeWindow>>
                        &priorSegments,
                    const IncrementalSolveOptions &opts)
{
    IncrementalSolveResult res;
    const engine::EngineContext &ectx = engine::resolve(opts.ctx);

    // Re-partition under the (possibly rerouted) assignment. Subsets
    // free of dirty members and derated links kept exactly their
    // prior relatedness, so their segments are reused verbatim.
    const std::vector<MessageSubset> subsets =
        computeMaximalSubsets(bounds, intervals, pa);
    std::vector<MessageSubset> dirtySubsets;
    std::vector<char> inDirtySubset(bounds.messages.size(), 0);
    for (const MessageSubset &sub : subsets) {
        bool isDirty = false;
        for (std::size_t h : sub.members)
            isDirty = isDirty || dirtyMessage[h] != 0;
        if (opts.topo)
            for (LinkId l : sub.links)
                isDirty = isDirty || opts.topo->linkCapacity(l) < 1.0;
        if (isDirty) {
            dirtySubsets.push_back(sub);
            for (std::size_t h : sub.members)
                inDirtySubset[h] = 1;
        }
    }

    res.subsetsTotal = subsets.size();
    res.subsetsResolved = dirtySubsets.size();
    res.subsetsCopied = subsets.size() - dirtySubsets.size();

    IntervalScheduleResult freshSched;
    if (!dirtySubsets.empty()) {
        IntervalAllocation fresh;
        {
            const std::string name =
                std::string(opts.tracePrefix) + "_allocation";
            trace::ScopedPhase phase(name.c_str(), ectx.tracer(),
                                     ectx.metricsRegistry());
            fresh = allocateMessageIntervals(
                bounds, intervals, pa, dirtySubsets,
                opts.allocMethod, opts.scheduling.guardTime,
                opts.scheduling.packetTime, opts.topo,
                opts.basisCache, opts.ctx);
        }
        if (!fresh.feasible) {
            res.failedStage =
                IncrementalSolveResult::FailedStage::Allocation;
            res.solveStatus = fresh.solveStatus;
            std::ostringstream oss;
            oss << "incremental allocation failed on subset "
                << fresh.failedSubset;
            if (!fresh.error.empty())
                oss << ": " << fresh.error;
            res.detail = oss.str();
            return res;
        }
        {
            const std::string name =
                std::string(opts.tracePrefix) + "_scheduling";
            trace::ScopedPhase phase(name.c_str(), ectx.tracer(),
                                     ectx.metricsRegistry());
            IntervalSchedulingOptions sopts = opts.scheduling;
            if (sopts.basisCache == nullptr)
                sopts.basisCache = opts.basisCache;
            if (sopts.ctx == nullptr)
                sopts.ctx = opts.ctx;
            freshSched = scheduleIntervals(bounds, intervals, pa,
                                           dirtySubsets, fresh,
                                           sopts);
        }
        if (!freshSched.feasible) {
            res.failedStage =
                IncrementalSolveResult::FailedStage::Scheduling;
            res.solveStatus = freshSched.solveStatus;
            std::ostringstream oss;
            oss << "incremental scheduling failed: interval "
                << freshSched.failedInterval << " of subset "
                << freshSched.failedSubset << " (overrun "
                << freshSched.overrun << " us)";
            if (!freshSched.error.empty())
                oss << ": " << freshSched.error;
            res.detail = oss.str();
            return res;
        }
    }

    // Splice: fresh rows for members of re-solved subsets, prior
    // rows for everything else.
    res.segments.assign(bounds.messages.size(), {});
    for (std::size_t h = 0; h < bounds.messages.size(); ++h)
        res.segments[h] = inDirtySubset[h]
                              ? freshSched.segments[h]
                              : priorSegments[h];
    res.feasible = true;
    return res;
}

} // namespace srsim
