#include "core/sr_compiler.hh"

#include <cmath>
#include <sstream>

#include "engine/context.hh"
#include "metrics/metrics.hh"
#include "trace/trace.hh"
#include "util/logging.hh"

namespace srsim {

const char *
srFailureStageName(SrFailureStage s)
{
    switch (s) {
      case SrFailureStage::None: return "none";
      case SrFailureStage::InvalidInput: return "invalid-input";
      case SrFailureStage::Utilization: return "utilization";
      case SrFailureStage::Allocation: return "allocation";
      case SrFailureStage::Scheduling: return "scheduling";
      case SrFailureStage::Numerical: return "numerical";
      case SrFailureStage::Verification: return "verification";
      case SrFailureStage::Fault: return "fault";
    }
    return "unknown";
}

namespace {

/** Record a failure on `res` in both legacy and structured form. */
void
fail(SrCompileResult &res, SrFailureStage stage, std::string detail,
     lp::Status solver = lp::Status::Optimal, int subset = -1,
     int interval = -1, MessageId msg = kInvalidMessage)
{
    res.stage = stage;
    res.detail = detail;
    res.error.stage = stage;
    res.error.solverStatus = solver;
    res.error.subset = subset;
    res.error.interval = interval;
    res.error.message = msg;
    res.error.detail = std::move(detail);
}

/** Did the solver give up without a verdict? */
bool
gaveUp(lp::Status s)
{
    return s == lp::Status::NumericalFailure ||
           s == lp::Status::IterationLimit;
}

/**
 * One pass of the Fig. 3 pipeline downstream of the time bounds:
 * path assignment -> utilization gate -> subsets -> allocation ->
 * scheduling. Fills `res` (overwriting any previous attempt) and
 * returns true when a schedule came out.
 */
bool
attemptCompile(const TaskFlowGraph &g, const Topology &topo,
               const TaskAllocation &alloc,
               const SrCompilerConfig &cfg,
               const AssignPathsOptions &assign_opts,
               SrCompileResult &res)
{
    const IntervalSet &ivs = *res.intervals;
    const engine::EngineContext &ectx = engine::resolve(cfg.ctx);
    trace::Tracer &tracer = ectx.tracer();
    metrics::Registry &reg = ectx.metricsRegistry();

    if (cfg.useAssignPaths) {
        trace::ScopedPhase phase("assign_paths", tracer, reg);
        AssignPathsResult ap = assignPaths(g, topo, alloc,
                                           res.bounds, ivs,
                                           assign_opts);
        if (!ap.ok) {
            // On a degraded fabric, "no path" means faults
            // disconnected the endpoints — a Fault failure, not a
            // malformed problem.
            fail(res,
                 topo.degraded() ? SrFailureStage::Fault
                                 : SrFailureStage::InvalidInput,
                 ap.error, lp::Status::Optimal, -1, -1,
                 ap.failedMessage);
            return false;
        }
        res.paths = std::move(ap.assignment);
        res.utilization = ap.report;
        res.assignRestarts = ap.restarts;
        res.assignReroutes = ap.reroutes;
    } else {
        trace::ScopedPhase phase("lsd_to_msd", tracer, reg);
        res.paths = lsdToMsdAssignment(g, topo, alloc, res.bounds);
        for (std::size_t i = 0; i < res.paths.paths.size(); ++i) {
            if (res.paths.paths[i].empty()) {
                fail(res, SrFailureStage::Fault,
                     "faults disconnected the LSD-to-MSD route of "
                     "message index " + std::to_string(i),
                     lp::Status::Optimal, -1, -1,
                     res.bounds.messages[i].msg);
                return false;
            }
        }
        UtilizationAnalyzer ua(res.bounds, ivs, topo);
        res.utilization = ua.analyze(res.paths);
    }

    // Gate: U <= 1 is necessary for any feasible Omega.
    if (res.utilization.peak > 1.0 + 1e-9) {
        std::ostringstream oss;
        oss << "peak utilization " << res.utilization.peak
            << " exceeds link capacity";
        fail(res, SrFailureStage::Utilization, oss.str());
        return false;
    }

    // Sec. 5.2: maximal subsets, then message-interval allocation.
    const auto subsets = [&] {
        trace::ScopedPhase phase("subsets", tracer, reg);
        return computeMaximalSubsets(res.bounds, ivs, res.paths);
    }();
    res.numSubsets = subsets.size();

    {
        trace::ScopedPhase phase("interval_allocation", tracer, reg);
        res.allocation = allocateMessageIntervals(
            res.bounds, ivs, res.paths, subsets, cfg.allocMethod,
            cfg.scheduling.guardTime, cfg.scheduling.packetTime,
            &topo, nullptr, cfg.ctx);
    }
    if (!res.allocation.feasible) {
        std::ostringstream oss;
        oss << "message-interval allocation failed on subset "
            << res.allocation.failedSubset;
        if (!res.allocation.error.empty())
            oss << ": " << res.allocation.error;
        fail(res,
             gaveUp(res.allocation.solveStatus)
                 ? SrFailureStage::Numerical
                 : SrFailureStage::Allocation,
             oss.str(), res.allocation.solveStatus,
             res.allocation.failedSubset);
        return false;
    }

    // Sec. 5.3: interval scheduling.
    {
        trace::ScopedPhase phase("interval_scheduling", tracer, reg);
        res.schedule = scheduleIntervals(res.bounds, ivs, res.paths,
                                         subsets, res.allocation,
                                         cfg.scheduling);
    }
    if (!res.schedule.feasible) {
        std::ostringstream oss;
        oss << "interval " << res.schedule.failedInterval
            << " of subset " << res.schedule.failedSubset
            << " unschedulable (overrun "
            << res.schedule.overrun << " us)";
        if (!res.schedule.error.empty())
            oss << ": " << res.schedule.error;
        fail(res,
             gaveUp(res.schedule.solveStatus)
                 ? SrFailureStage::Numerical
                 : SrFailureStage::Scheduling,
             oss.str(), res.schedule.solveStatus,
             res.schedule.failedSubset,
             res.schedule.failedInterval,
             res.schedule.failedMessage);
        return false;
    }

    res.stage = SrFailureStage::None;
    res.detail.clear();
    res.error = CompileError{};
    return true;
}

} // namespace

SrCompileResult
compileScheduledRouting(const TaskFlowGraph &g, const Topology &topo,
                        const TaskAllocation &alloc,
                        const TimingModel &tm,
                        const SrCompilerConfig &cfg)
{
    SrCompileResult res;
    const engine::EngineContext &ectx = engine::resolve(cfg.ctx);
    trace::Tracer &tracer = ectx.tracer();
    metrics::Registry &mreg = ectx.metricsRegistry();

    // Input validation up front: a compile must degrade into a
    // structured InvalidInput result, never abort the process, no
    // matter what problem the caller hands it.
    if (tm.apSpeed <= 0.0 || tm.bandwidth <= 0.0) {
        fail(res, SrFailureStage::InvalidInput,
             "timing model needs positive apSpeed and bandwidth");
        return res;
    }
    if (cfg.inputPeriod <= 0.0) {
        fail(res, SrFailureStage::InvalidInput,
             "input period must be positive");
        return res;
    }
    if (alloc.numTasks() != g.numTasks() || !alloc.complete()) {
        fail(res, SrFailureStage::InvalidInput,
             "task allocation is incomplete or sized for a "
             "different TFG");
        return res;
    }
    for (TaskId t = 0; t < g.numTasks(); ++t) {
        const NodeId n = alloc.nodeOf(t);
        if (n < 0 || n >= topo.numNodes()) {
            std::ostringstream oss;
            oss << "task " << t << " allocated to node " << n
                << " outside the " << topo.numNodes()
                << "-node fabric";
            fail(res, SrFailureStage::InvalidInput, oss.str());
            return res;
        }
    }
    const Time tau_c = tm.tauC(g);
    if (timeLt(cfg.inputPeriod, tau_c)) {
        std::ostringstream oss;
        oss << "input period " << cfg.inputPeriod
            << " is below tau_c " << tau_c
            << "; the pipeline cannot keep up";
        fail(res, SrFailureStage::InvalidInput, oss.str());
        return res;
    }
    // Sec. 4: message time bounds in the folded frame. The bounds
    // computation rejects messages whose transfer time cannot fit
    // their tau_c window (the tau_m <= tau_c premise); surface that
    // as a structured InvalidInput instead of aborting.
    try {
        trace::ScopedPhase phase("time_bounds", tracer, mreg);
        res.bounds = computeTimeBounds(g, alloc, tm, cfg.inputPeriod);
    } catch (const FatalError &e) {
        fail(res, SrFailureStage::InvalidInput, e.what());
        return res;
    }

    // Degenerate but legal: everything co-located.
    if (res.bounds.messages.empty()) {
        res.feasible = true;
        res.omega.period = cfg.inputPeriod;
        return res;
    }

    // Sec. 4.1 packet time base: derive the slot quantum from the
    // timing model when the caller did not set one explicitly, and
    // insist that message times are whole packets (set
    // TimingModel::packetBytes and the rounding is automatic).
    SrCompilerConfig eff = cfg;
    // Thread the compile's context into the downstream stage
    // options unless the caller pinned their own.
    if (eff.scheduling.ctx == nullptr)
        eff.scheduling.ctx = cfg.ctx;
    if (eff.assign.ctx == nullptr)
        eff.assign.ctx = cfg.ctx;
    if (eff.scheduling.packetTime <= 0.0 && tm.packetBytes > 0.0)
        eff.scheduling.packetTime = tm.packetTime();
    if (eff.scheduling.packetTime > 0.0) {
        for (const MessageBounds &b : res.bounds.messages) {
            const double q = b.duration / eff.scheduling.packetTime;
            if (std::abs(q - std::round(q)) > 1e-6) {
                std::ostringstream oss;
                oss << "message duration " << b.duration
                    << " us is not a whole number of packets; set "
                       "TimingModel::packetBytes to round message "
                       "times to the packet grid";
                fail(res, SrFailureStage::InvalidInput, oss.str(),
                     lp::Status::Optimal, -1, -1, b.msg);
                return res;
            }
        }
    }

    // Sec. 5.1: interval decomposition and activity matrix.
    {
        trace::ScopedPhase phase("intervals", tracer, mreg);
        res.intervals.emplace(res.bounds);
    }

    // The Fig. 3 pipeline, with optional feedback: a failed
    // allocation or scheduling (or utilization gate) retries with
    // a re-seeded path assignment, moving the walk to a different
    // region of the path space.
    bool ok = false;
    for (int round = 0; round <= cfg.feedbackRounds; ++round) {
        AssignPathsOptions opts = eff.assign;
        opts.seed = cfg.assign.seed +
                    static_cast<std::uint64_t>(round) * 7919;
        ok = attemptCompile(g, topo, alloc, eff, opts, res);
        res.feedbackRoundsUsed = round;
        if (ok)
            break;
        // LSD-to-MSD paths are deterministic: feedback cannot
        // change anything, so do not loop.
        if (!cfg.useAssignPaths)
            break;
    }
    if (SRSIM_METRICS_ENABLED()) {
        mreg.counter("sr.compiles").add();
        mreg.counter("sr.assign_restarts")
            .add(static_cast<std::uint64_t>(res.assignRestarts));
        mreg.counter("sr.assign_reroutes")
            .add(static_cast<std::uint64_t>(res.assignReroutes));
        mreg.counter("sr.feedback_rounds")
            .add(static_cast<std::uint64_t>(res.feedbackRoundsUsed));
    }
    if (!ok) {
        if (SRSIM_METRICS_ENABLED())
            mreg.counter(std::string("sr.failures.") +
                         srFailureStageName(res.stage))
                .add();
        return res;
    }

    // Sec. 5.4: assemble Omega.
    res.omega.period = cfg.inputPeriod;
    res.omega.segments = res.schedule.segments;
    res.omega.paths = res.paths;

    if (cfg.verify) {
        trace::ScopedPhase phase("verify", tracer, mreg);
        res.verification = verifySchedule(g, topo, alloc, res.bounds,
                                          res.omega);
        if (!res.verification.ok) {
            fail(res, SrFailureStage::Verification,
                 res.verification.violations.empty()
                     ? "verifier rejected schedule"
                     : res.verification.violations.front());
            if (SRSIM_METRICS_ENABLED())
                mreg.counter("sr.failures.verification").add();
            return res;
        }
    }

    res.feasible = true;
    return res;
}

} // namespace srsim
