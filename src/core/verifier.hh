/**
 * @file
 * Independent correctness checker for computed schedules.
 *
 * Every Omega produced by the compiler passes through this verifier
 * before being reported feasible. It re-checks, from first
 * principles, the properties scheduled routing promises:
 *
 *  1. completeness  - every network message is scheduled for exactly
 *                     its transmission duration;
 *  2. timeliness    - every transmission window lies inside the
 *                     message's release/deadline windows;
 *  3. contention-freedom - no half-duplex link carries two messages
 *                     at overlapping times (in frame coordinates,
 *                     which suffices because the schedule repeats
 *                     with the frame period);
 *  4. path validity - each message's route is a contiguous minimal-
 *                     hop-or-not but valid path from its source node
 *                     to its destination node;
 *  5. crossbar consistency - at no node and instant does a crossbar
 *                     input feed two outputs or an output listen to
 *                     two inputs (follows from 3 + per-channel AP
 *                     buffers, but is re-checked independently on
 *                     the derived omega_i).
 */

#ifndef SRSIM_CORE_VERIFIER_HH_
#define SRSIM_CORE_VERIFIER_HH_

#include <string>
#include <vector>

#include "core/compile_error.hh"
#include "core/schedule.hh"
#include "core/time_bounds.hh"
#include "mapping/allocation.hh"
#include "tfg/tfg.hh"
#include "topology/topology.hh"

namespace srsim {

/** Verification outcome. */
struct VerifyResult
{
    bool ok = true;
    std::vector<std::string> violations;

    /**
     * Structured description of the first *structural* failure: a
     * schedule referencing a link id outside the topology or a
     * resource removed by the fault mask. Such schedules cannot be
     * checked further; the verifier reports the error loudly here
     * instead of tripping an internal assertion downstream.
     */
    CompileError error;

    void
    fail(std::string why)
    {
        ok = false;
        violations.push_back(std::move(why));
    }
};

/** Run all schedule checks. */
VerifyResult
verifySchedule(const TaskFlowGraph &g, const Topology &topo,
               const TaskAllocation &alloc, const TimeBounds &bounds,
               const GlobalSchedule &omega);

} // namespace srsim

#endif // SRSIM_CORE_VERIFIER_HH_
