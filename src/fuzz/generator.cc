#include "fuzz/generator.hh"

#include <algorithm>
#include <string>

#include <vector>
#include "tfg/random_tfg.hh"
#include "topology/factory.hh"
#include "util/rng.hh"

namespace srsim {
namespace fuzz {

namespace {

/** Random fabric spec with at most 64 nodes. */
std::string
randomTopoSpec(Rng &rng)
{
    switch (rng.uniformInt(0, 3)) {
      case 0: // binary cube, 4..64 nodes
        return "cube:" + std::to_string(rng.uniformInt(2, 6));
      case 1: { // GHC, 2-3 dims, radix 2..4
        const int dims = rng.uniformInt(2, 3);
        std::string spec = "ghc:";
        int nodes = 1;
        for (int d = 0; d < dims; ++d) {
            int r = rng.uniformInt(2, 4);
            while (nodes * r > 64)
                --r;
            r = std::max(r, 2);
            nodes *= r;
            spec += (d ? "," : "") + std::to_string(r);
        }
        return spec;
      }
      case 2: { // torus, 1-3 dims, radix 2..8
        const int dims = rng.uniformInt(1, 3);
        std::string spec = "torus:";
        int nodes = 1;
        for (int d = 0; d < dims; ++d) {
            int r = rng.uniformInt(2, 8);
            while (nodes * r > 64)
                --r;
            r = std::max(r, 2);
            nodes *= r;
            spec += (d ? "," : "") + std::to_string(r);
        }
        return spec;
      }
      default: { // mesh, 2 dims, radix 2..6
        const int a = rng.uniformInt(2, 6);
        const int b = rng.uniformInt(2, 6);
        return "mesh:" + std::to_string(a) + "," +
               std::to_string(b);
      }
    }
}

} // namespace

FuzzCase
generateCase(std::uint64_t seed)
{
    Rng rng(deriveSeed(0x5EEDF00Dull, seed));
    FuzzCase c;
    c.seed = seed;

    RandomTfgParams p;
    p.layers = rng.uniformInt(2, 6);
    p.minWidth = 1;
    p.maxWidth = rng.uniformInt(1, 4);
    p.edgeProbability = rng.uniformReal(0.3, 0.95);
    p.skipProbability = rng.uniformReal(0.0, 0.3);
    p.minOps = 50.0;
    p.maxOps = 2000.0;
    p.minBytes = 32.0;
    p.maxBytes = 4096.0;
    c.g = buildRandomTfg(p, rng);

    // The fabric must have a node per task (see Placement below).
    // Re-draw a few times, then fall back to a cube that fits; the
    // random TFG has at most 24 tasks and cube:5 has 32 nodes.
    for (int attempt = 0;; ++attempt) {
        c.topoSpec = randomTopoSpec(rng);
        if (makeTopology(c.topoSpec)->numNodes() >= c.g.numTasks())
            break;
        if (attempt >= 15) {
            c.topoSpec = "cube:5";
            break;
        }
    }
    const auto topo = makeTopology(c.topoSpec);

    // Pick bandwidth, then derive an AP speed from the drawn graph:
    //   apSpeed = f * maxOps * bandwidth / maxBytes
    // gives tau_m <= tau_c exactly when f <= 1 (see
    // tests/test_property_compile.cc for the algebra). With small
    // probability pick f > 1 on purpose: the compiler must reject
    // tau_m > tau_c as structured InvalidInput, not crash.
    const double bws[] = {32.0, 64.0, 128.0};
    c.tm.bandwidth = bws[rng.index(3)];
    const double f = rng.chance(0.05)
                         ? rng.uniformReal(1.05, 1.5)
                         : rng.uniformReal(0.3, 1.0);
    c.tm.apSpeed = f * c.g.maxOperations() * c.tm.bandwidth /
                   c.g.maxBytes();

    // Packet quantization: off most of the time; when on, message
    // times round themselves to the packet grid inside TimingModel.
    if (rng.chance(0.25))
        c.tm.packetBytes = rng.chance(0.5) ? 16.0 : 32.0;

    // Placement: injective, at most one task per node. The three
    // oracles only agree under the paper's dedicated-AP premise:
    // cpsim serializes co-located tasks through the node's single
    // AP, while the analytic executor refuses to model that and
    // flags the overlap as a premise violation instead.
    std::vector<NodeId> nodes(
        static_cast<std::size_t>(topo->numNodes()));
    for (NodeId n = 0; n < topo->numNodes(); ++n)
        nodes[static_cast<std::size_t>(n)] = n;
    rng.shuffle(nodes);
    c.taskNode.assign(nodes.begin(),
                      nodes.begin() + c.g.numTasks());

    // Load point: mostly legal (>= tau_c), occasionally below it to
    // exercise the InvalidInput path.
    c.inputPeriod =
        rng.uniformReal(0.95, 3.0) * c.tm.tauC(c.g);

    // Guard time: small fraction of tau_c, off most of the time.
    if (rng.chance(0.2))
        c.guardTime = rng.uniformReal(0.001, 0.02) * c.tm.tauC(c.g);

    c.allocMethod = rng.chance(0.8) ? AllocationMethod::Lp
                                    : AllocationMethod::Greedy;
    c.schedMethod = rng.chance(0.85)
                        ? SchedulingMethod::LpFeasibleSets
                        : SchedulingMethod::ListScheduling;
    c.exactPacketMip = c.tm.packetBytes > 0.0 && rng.chance(0.25);
    c.useAssignPaths = rng.chance(0.85);
    c.assignSeed = deriveSeed(seed, 1);
    c.maxRestarts = rng.uniformInt(0, 3);
    c.feedbackRounds = rng.uniformInt(0, 2);

    // Fault dimension, drawn last so every healthy draw above is
    // identical to the pre-fault generator for the same seed. Most
    // cases stay healthy; faulted ones fail 1-2 links (and
    // occasionally derate a third) so the compiler must either
    // route around the damage or report a structured Fault/
    // Infeasible result -- never crash.
    if (rng.chance(0.3)) {
        const int nlinks = topo->numLinks();
        const int nfail = rng.uniformInt(1, 2);
        std::string spec;
        for (int i = 0; i < nfail; ++i) {
            if (i)
                spec += ";";
            spec += "link:#" +
                    std::to_string(rng.uniformInt(0, nlinks - 1));
        }
        if (rng.chance(0.2)) {
            spec += ";derate:#" +
                    std::to_string(
                        rng.uniformInt(0, nlinks - 1)) +
                    (rng.chance(0.5) ? "=0.5" : "=0.75");
        }
        c.faultSpec = spec;
    }

    // Churn dimension, drawn after faults so every pre-churn draw
    // above is identical to the earlier generator for the same
    // seed. A churny case replays admit/remove requests through the
    // online service (see fuzz/churn.hh) instead of the batch
    // three-oracle run; the drawn ops are always *well-formed*
    // (existing tasks, forward edges, no duplicate names) so every
    // rejection is a schedulability claim the from-scratch oracle
    // can cross-examine.
    if (rng.chance(0.35)) {
        const int nops = rng.uniformInt(1, 5);
        std::vector<std::string> live;
        for (MessageId m = 0; m < c.g.numMessages(); ++m)
            live.push_back(c.g.message(m).name);
        int next = 0;
        for (int i = 0; i < nops; ++i) {
            if (!live.empty() && rng.chance(0.35)) {
                const std::size_t k = rng.index(live.size());
                c.churnOps.push_back("remove " + live[k]);
                live.erase(live.begin() +
                           static_cast<std::ptrdiff_t>(k));
                continue;
            }
            // Task ids are in topological order (the random TFG
            // adds tasks layer by layer), so src < dst keeps the
            // admitted graph acyclic.
            const int a =
                rng.uniformInt(0, c.g.numTasks() - 2);
            const int b = rng.uniformInt(a + 1,
                                         c.g.numTasks() - 1);
            const std::string name =
                "zc" + std::to_string(next++);
            c.churnOps.push_back(
                "admit " + name + " " +
                c.g.task(static_cast<TaskId>(a)).name + " " +
                c.g.task(static_cast<TaskId>(b)).name + " " +
                std::to_string(rng.uniformInt(32, 4096)));
            live.push_back(name);
        }
    }
    return c;
}

FuzzCase
generateMultiCase(std::uint64_t seed)
{
    FuzzCase c = generateCase(seed);
    // The daemon lines run on the healthy fabric, replace the
    // single-service churn dimension, and use a timing model
    // without the packet grid (SessionConfig has no packet knob).
    c.faultSpec.clear();
    c.churnOps.clear();
    c.tm.packetBytes = 0.0;

    // Salted stream: the multi draws must not correlate with the
    // base case's draws for the same seed.
    Rng rng(seed ^ 0x9e3779b97f4a7c15ULL);
    c.numSessions = rng.uniformInt(2, 4);

    // Ops mirror the churn dimension's well-formedness rules per
    // session: existing tasks, forward edges (task ids are in
    // topological order), names unique within their session.
    std::vector<std::vector<std::string>> live(
        static_cast<std::size_t>(c.numSessions));
    for (auto &names : live)
        for (MessageId m = 0; m < c.g.numMessages(); ++m)
            names.push_back(c.g.message(m).name);
    const int nops = rng.uniformInt(2, 8);
    int next = 0;
    for (int i = 0; i < nops; ++i) {
        const int k = rng.uniformInt(0, c.numSessions - 1);
        auto &names = live[static_cast<std::size_t>(k)];
        if (!names.empty() && rng.chance(0.35)) {
            const std::size_t j = rng.index(names.size());
            c.multiOps.emplace_back(k, "remove " + names[j]);
            names.erase(names.begin() +
                        static_cast<std::ptrdiff_t>(j));
            continue;
        }
        const int a = rng.uniformInt(0, c.g.numTasks() - 2);
        const int b =
            rng.uniformInt(a + 1, c.g.numTasks() - 1);
        const std::string name = "zm" + std::to_string(next++);
        c.multiOps.emplace_back(
            k, "admit " + name + " " +
                   c.g.task(static_cast<TaskId>(a)).name + " " +
                   c.g.task(static_cast<TaskId>(b)).name + " " +
                   std::to_string(rng.uniformInt(32, 4096)));
        names.push_back(name);
    }
    return c;
}

} // namespace fuzz
} // namespace srsim
