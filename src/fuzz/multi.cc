#include "fuzz/multi.hh"

#include <unistd.h>

#include <atomic>
#include <cstdint>
#include <exception>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/schedule_io.hh"
#include "online/script.hh"
#include "server/daemon.hh"
#include "server/protocol.hh"
#include "tfg/tfg_io.hh"
#include "util/logging.hh"

namespace srsim {
namespace fuzz {

namespace {

RunResult
failure(std::string why)
{
    RunResult r;
    r.verdict = Verdict::Failure;
    r.report = std::move(why);
    return r;
}

RunResult
invalidCase(std::string why)
{
    RunResult r;
    r.verdict = Verdict::InvalidCase;
    r.report = std::move(why);
    return r;
}

/**
 * Self-cleaning scratch directory for the durable line's state.
 * Unique per run (pid + counter) so shrink candidates and parallel
 * fuzzers never share WAL files.
 */
struct ScratchDir
{
    std::filesystem::path path;

    explicit ScratchDir(std::uint64_t seed)
    {
        static std::atomic<std::uint64_t> counter{0};
        std::ostringstream name;
        name << "srsim-fuzz-multi-" << ::getpid() << "-" << seed
             << "-" << counter.fetch_add(1);
        path = std::filesystem::temp_directory_path() / name.str();
        std::error_code ec;
        std::filesystem::remove_all(path, ec);
        std::filesystem::create_directories(path);
    }

    ~ScratchDir()
    {
        std::error_code ec;
        std::filesystem::remove_all(path, ec);
    }
};

/** Comparable one-line summary of a daemon response. */
std::string
verdictLine(const server::DaemonResponse &r)
{
    std::string out = server::daemonOutcomeName(r.outcome);
    if (r.outcome == server::DaemonOutcome::Ok) {
        out += r.result.accepted ? "/accepted" : "/rejected:";
        if (!r.result.accepted)
            out += online::rejectReasonName(r.result.reason);
    }
    return out;
}

/** Published schedule bytes of every live session, by name. */
std::map<std::string, std::string>
publishedBytes(const server::SchedulingDaemon &d)
{
    std::map<std::string, std::string> out;
    for (const std::string &name : d.sessionNames()) {
        const auto pub = d.published(name);
        if (!pub)
            continue;
        std::ostringstream os;
        writeSchedule(os, pub->omega);
        out[name] = os.str();
    }
    return out;
}

/** First divergence between two published-bytes maps, or "". */
std::string
diffBytes(const std::map<std::string, std::string> &want,
          const std::map<std::string, std::string> &got,
          const std::string &ctx)
{
    for (const auto &[name, bytes] : want) {
        auto it = got.find(name);
        if (it == got.end())
            return "session '" + name + "' missing " + ctx;
        if (it->second != bytes)
            return "session '" + name +
                   "' published bytes diverge " + ctx;
    }
    for (const auto &[name, bytes] : got)
        if (!want.count(name))
            return "unexpected session '" + name + "' " + ctx;
    return {};
}

/** The throwing core of runMultiCase(). */
RunResult
runMultiInner(const FuzzCase &c, const RunOptions &opts)
{
    (void)opts; // No cpsim cross-execution on the daemon lines.

    if (c.numSessions < 1 || c.numSessions > 16)
        return invalidCase("numSessions must be in [1, 16]");
    if (!c.faultSpec.empty())
        return invalidCase(
            "multi-session cases run on the healthy fabric");

    // Validate and parse every op up front; a malformed line is a
    // bad case, not a daemon bug.
    std::vector<std::pair<int, online::Request>> ops;
    for (const auto &[k, line] : c.multiOps) {
        if (k < 0 || k >= c.numSessions)
            return invalidCase("mchurn session index " +
                               std::to_string(k) +
                               " out of range");
        const online::ScriptParseResult pr =
            online::parseRequestLine(line);
        if (!pr.ok || pr.requests.size() != 1)
            return invalidCase("malformed mchurn op '" + line +
                               "': " + pr.error);
        const online::Request &r = pr.requests[0];
        if (r.kind != online::RequestKind::AdmitMessage &&
            r.kind != online::RequestKind::RemoveMessage)
            return invalidCase(
                "mchurn ops are admit/remove only, got '" + line +
                "'");
        ops.emplace_back(k, r);
    }

    ScratchDir scratch(c.seed);

    // Every session serves this case's workload from one TFG file
    // (the daemon re-reads it on open and on recovery replay).
    const std::string tfgPath =
        (scratch.path / "workload.tfg").string();
    {
        std::ofstream out(tfgPath);
        writeTfg(out, c.g);
        if (!out)
            return invalidCase("cannot write '" + tfgPath + "'");
    }

    std::vector<server::SessionConfig> sessions;
    for (int k = 0; k < c.numSessions; ++k) {
        server::SessionConfig sc;
        sc.name = "s" + std::to_string(k);
        sc.topo = c.topoSpec;
        sc.tfg = tfgPath;
        sc.period = c.inputPeriod;
        sc.bandwidth = c.tm.bandwidth;
        sc.apSpeed = c.tm.apSpeed;
        // Stride differs across (some) sessions: distinct strides
        // make distinct cache keys, equal strides make cross-
        // session cache hits — both paths stay exercised.
        sc.alloc =
            "rr:" + std::to_string(1 + (c.seed + static_cast<
                                            std::uint64_t>(k)) %
                                           5);
        sc.seed = c.assignSeed + static_cast<std::uint64_t>(k);
        sessions.push_back(std::move(sc));
    }

    const auto openAll = [&](server::SchedulingDaemon &d,
                             std::vector<std::string> &verdicts) {
        std::string invalid;
        for (const server::SessionConfig &sc : sessions) {
            const server::DaemonResponse r = d.open(sc);
            if (r.outcome == server::DaemonOutcome::InvalidConfig &&
                invalid.empty())
                invalid = r.detail;
            verdicts.push_back(verdictLine(r));
        }
        return invalid;
    };
    const auto applyOps =
        [&](server::SchedulingDaemon &d, std::size_t lo,
            std::size_t hi, std::vector<std::string> &verdicts) {
            for (std::size_t i = lo; i < hi; ++i)
                verdicts.push_back(verdictLine(
                    d.submit(sessions[static_cast<std::size_t>(
                                          ops[i].first)]
                                 .name,
                             ops[i].second)
                        .get()));
        };

    server::DaemonConfig base;
    base.workers = 1; // Inline + deterministic on both lines.
    base.queueCap = ops.size() + 16;
    base.cacheCapacity = 64;

    const std::size_t half = ops.size() / 2;

    // ---- Straight line: one ephemeral daemon, start to finish.
    std::vector<std::string> refOpenV, refOpsV;
    std::map<std::string, std::string> refMid, refFinal;
    {
        server::SchedulingDaemon ref(base);
        if (std::string why = openAll(ref, refOpenV); !why.empty())
            return invalidCase("daemon cannot build the case: " +
                               why);
        if (ref.sessionNames().empty()) {
            RunResult out;
            out.verdict = Verdict::Infeasible;
            out.report =
                "every session open was rejected by the scheduler";
            return out;
        }
        applyOps(ref, 0, half, refOpsV);
        refMid = publishedBytes(ref);
        applyOps(ref, half, ops.size(), refOpsV);
        ref.drain();
        refFinal = publishedBytes(ref);
        ref.shutdown();
    }

    // ---- Recovered line, act 1: durable daemon serves the first
    // half, then crash-stops (drain() has synced the WAL, so the
    // crash only forfeits the final snapshot).
    server::DaemonConfig durable = base;
    durable.stateDir = (scratch.path / "state").string();
    durable.snapshotEvery = 1 + c.seed % 3;
    durable.walSyncEvery = 1 + c.seed % 2;
    {
        server::SchedulingDaemon a(durable);
        std::vector<std::string> openV, opsV;
        openAll(a, openV);
        if (openV != refOpenV)
            return failure("durable run's open verdicts diverge "
                           "from the ephemeral run's");
        applyOps(a, 0, half, opsV);
        if (opsV != std::vector<std::string>(refOpsV.begin(),
                                             refOpsV.begin() +
                                                 static_cast<
                                                     std::ptrdiff_t>(
                                                     half)))
            return failure("durable run's first-half verdicts "
                           "diverge from the ephemeral run's");
        a.drain();
        if (std::string why = diffBytes(refMid, publishedBytes(a),
                                        "before the crash");
            !why.empty())
            return failure(std::move(why));
        a.crashForTest();
    }

    // ---- Act 2: recover (newest snapshot + WAL suffix), serve the
    // remaining ops, shut down cleanly.
    {
        server::SchedulingDaemon b(durable);
        const server::RecoveryResult &rr = b.recovery();
        if (!rr.attempted)
            return failure("recovery did not run on a populated "
                           "state directory");
        if (!rr.rejectedSnapshots.empty())
            return failure("a daemon-written snapshot failed "
                           "verification: " +
                           rr.rejectedSnapshots.front());
        if (rr.replayRejected != 0)
            return failure(
                std::to_string(rr.replayRejected) +
                " WAL-logged (accepted) records replayed as "
                "rejected");
        if (std::string why = diffBytes(refMid, publishedBytes(b),
                                        "after crash recovery");
            !why.empty())
            return failure(std::move(why));

        std::vector<std::string> opsV(
            refOpsV.begin(),
            refOpsV.begin() + static_cast<std::ptrdiff_t>(half));
        applyOps(b, half, ops.size(), opsV);
        if (opsV != refOpsV)
            return failure("post-recovery verdicts diverge from "
                           "the ephemeral run's");
        b.drain();
        if (std::string why =
                diffBytes(refFinal, publishedBytes(b),
                          "after the recovered run finished");
            !why.empty())
            return failure(std::move(why));
        b.shutdown();
    }

    // ---- Act 3: a clean shutdown snapshots at the WAL tip, so a
    // third daemon must restore from the snapshot alone.
    {
        server::SchedulingDaemon cDaemon(durable);
        const server::RecoveryResult &rr = cDaemon.recovery();
        if (!rr.rejectedSnapshots.empty())
            return failure("the shutdown snapshot failed "
                           "verification: " +
                           rr.rejectedSnapshots.front());
        if (rr.snapshotPath.empty())
            return failure(
                "no snapshot found after a clean shutdown");
        if (rr.replayed != 0 || rr.replayRejected != 0)
            return failure("the shutdown snapshot does not cover "
                           "the WAL tip");
        if (std::string why =
                diffBytes(refFinal, publishedBytes(cDaemon),
                          "after snapshot-only recovery");
            !why.empty())
            return failure(std::move(why));
        cDaemon.shutdown();
    }

    RunResult out;
    out.verdict = Verdict::Feasible;
    return out;
}

} // namespace

RunResult
runMultiCase(const FuzzCase &c, const RunOptions &opts)
{
    // Same core contract as runCase(): nothing a case contains may
    // escape as an exception.
    try {
        return runMultiInner(c, opts);
    } catch (const PanicError &e) {
        return failure(std::string("panic: ") + e.what());
    } catch (const FatalError &e) {
        return failure(std::string("fatal: ") + e.what());
    } catch (const std::exception &e) {
        return failure(std::string("exception: ") + e.what());
    }
}

} // namespace fuzz
} // namespace srsim
