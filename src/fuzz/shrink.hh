/**
 * @file
 * Automatic shrinking of failing fuzz cases.
 *
 * Given a case and a predicate "does this case still fail?", the
 * shrinker greedily removes structure while the predicate holds:
 * first whole messages, then whole tasks (with their incident
 * messages), then fault events, then churn ops (the whole sequence
 * first, then one request at a time), then the multi-session daemon
 * dimension (whole dimension, then trailing sessions, then one op
 * at a time), then knob simplifications (feedback off, restarts
 * off, guard off, packet grid off, plain LP methods). Passes repeat
 * to a fixpoint under a budget on predicate
 * evaluations, so a corpus case is close to minimal and cheap to
 * re-run forever.
 */

#ifndef SRSIM_FUZZ_SHRINK_HH_
#define SRSIM_FUZZ_SHRINK_HH_

#include <cstddef>
#include <functional>

#include "fuzz/fuzz_case.hh"

namespace srsim {
namespace fuzz {

/** Returns true when the (candidate) case still exhibits the bug. */
using StillFails = std::function<bool(const FuzzCase &)>;

/** Statistics of one shrink run. */
struct ShrinkStats
{
    std::size_t evaluations = 0;
    int messagesRemoved = 0;
    int tasksRemoved = 0;
    int knobsSimplified = 0;
    int churnOpsRemoved = 0;
    int multiOpsRemoved = 0;
};

/** Copy of `c` without message `m` (ids renumbered). */
FuzzCase dropMessage(const FuzzCase &c, MessageId m);

/** Copy of `c` without task `t` and its incident messages. */
FuzzCase dropTask(const FuzzCase &c, TaskId t);

/**
 * Shrink `c` while `stillFails` holds.
 *
 * @param maxEvaluations budget on predicate calls
 * @param stats optional run statistics
 * @return the smallest failing case found (== c when nothing
 *         could be removed)
 */
FuzzCase shrinkCase(const FuzzCase &c, const StillFails &stillFails,
                    std::size_t maxEvaluations = 400,
                    ShrinkStats *stats = nullptr);

} // namespace fuzz
} // namespace srsim

#endif // SRSIM_FUZZ_SHRINK_HH_
