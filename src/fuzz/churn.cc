#include "fuzz/churn.hh"

#include <cmath>
#include <exception>
#include <sstream>
#include <string>
#include <vector>

#include "core/sr_executor.hh"
#include "core/verifier.hh"
#include "cpsim/cp_simulator.hh"
#include "fault/fault.hh"
#include "online/script.hh"
#include "online/service.hh"
#include "topology/factory.hh"
#include "util/logging.hh"

namespace srsim {
namespace fuzz {

namespace {

RunResult
failure(std::string why)
{
    RunResult r;
    r.verdict = Verdict::Failure;
    r.report = std::move(why);
    return r;
}

RunResult
invalidCase(std::string why)
{
    RunResult r;
    r.verdict = Verdict::InvalidCase;
    r.report = std::move(why);
    return r;
}

/** The churn mirror: the workload the service *should* be serving. */
struct MirrorMsg
{
    std::string name, src, dst;
    double bytes;
};

TaskFlowGraph
buildMirror(const TaskFlowGraph &base,
            const std::vector<MirrorMsg> &msgs)
{
    TaskFlowGraph g;
    for (const Task &t : base.tasks())
        g.addTask(t.name, t.operations);
    const auto idOf = [&](const std::string &name) {
        for (TaskId t = 0; t < g.numTasks(); ++t)
            if (g.task(t).name == name)
                return t;
        return kInvalidTask;
    };
    for (const MirrorMsg &m : msgs)
        g.addMessage(m.name, idOf(m.src), idOf(m.dst), m.bytes);
    return g;
}

/** The throwing core of runChurnCase(). */
RunResult
runChurnInner(const FuzzCase &c, const RunOptions &opts)
{
    auto topo = makeTopology(c.topoSpec);

    if (!c.faultSpec.empty()) {
        try {
            const fault::FaultSpec fs =
                fault::parseFaultSpec(c.faultSpec);
            for (const fault::FaultEvent &ev : fs.events)
                if (ev.timed())
                    return invalidCase(
                        "timed fault events are outside the "
                        "differential domain");
            fault::applyFaultSpec(c.faultSpec, *topo);
        } catch (const FatalError &e) {
            return invalidCase(
                std::string("fault spec rejected: ") + e.what());
        }
    }

    const TaskAllocation alloc = c.makeAllocation(*topo);
    const SrCompilerConfig cfg = c.makeConfig();

    // Same domain restriction as the batch runner: the final
    // cpsim/analytic cross-execution needs the dedicated-AP premise.
    for (TaskId a = 0; a < c.g.numTasks(); ++a)
        for (TaskId b = a + 1; b < c.g.numTasks(); ++b)
            if (alloc.nodeOf(a) == alloc.nodeOf(b))
                return invalidCase(
                    "case co-locates tasks '" + c.g.task(a).name +
                    "' and '" + c.g.task(b).name +
                    "'; outside the dedicated-AP differential "
                    "domain");

    // From-scratch oracle: compile the workload on a fresh,
    // identically degraded fabric. 1 = feasible, 0 = infeasible,
    // -1 = invalid input.
    const auto oracle = [&](const TaskFlowGraph &g2) {
        const auto t2 = makeTopology(c.topoSpec);
        if (!c.faultSpec.empty())
            fault::applyFaultSpec(c.faultSpec, *t2);
        const SrCompileResult r =
            compileScheduledRouting(g2, *t2, alloc, c.tm, cfg);
        if (r.feasible)
            return 1;
        return r.stage == SrFailureStage::InvalidInput ? -1 : 0;
    };

    online::OnlineSchedulerConfig scfg;
    scfg.compiler = cfg;
    // Stretch probing multiplies rejection cost by the factor list
    // and its classification detail is not under differential test.
    scfg.probeStretch = false;
    online::OnlineScheduler svc(c.g, std::move(topo), alloc, c.tm,
                                scfg);

    // Independent certification of the current published schedule.
    const auto certify = [&](const std::string &ctx) {
        const auto pub = svc.published();
        const VerifyResult v =
            verifySchedule(pub->g, svc.topology(), alloc,
                           pub->bounds, pub->omega);
        if (!v.ok)
            return "verifier rejected the published schedule " +
                   ctx + ": " +
                   (v.violations.empty() ? std::string("?")
                                         : v.violations.front());
        return std::string();
    };

    const online::RequestResult st = svc.start();
    if (!st.accepted) {
        if (oracle(c.g) == 1)
            return failure(
                std::string("service rejected the initial "
                            "workload (") +
                online::rejectReasonName(st.reason) + ": " +
                st.detail +
                ") but a from-scratch compile is feasible");
        RunResult out;
        out.verdict = st.reason ==
                              online::RejectReason::InvalidRequest
                          ? Verdict::InvalidCase
                          : Verdict::Infeasible;
        out.report = st.detail;
        return out;
    }
    if (std::string err = certify("after start()"); !err.empty())
        return failure(std::move(err));

    std::vector<MirrorMsg> msgs;
    for (const Message &m : c.g.messages())
        msgs.push_back({m.name, c.g.task(m.src).name,
                        c.g.task(m.dst).name, m.bytes});

    for (const std::string &op : c.churnOps) {
        const online::ScriptParseResult pr =
            online::parseRequestLine(op);
        if (!pr.ok || pr.requests.size() != 1)
            return invalidCase("malformed churn op '" + op +
                               "': " + pr.error);
        const online::Request &r = pr.requests[0];
        if (r.kind != online::RequestKind::AdmitMessage &&
            r.kind != online::RequestKind::RemoveMessage)
            return invalidCase(
                "churn ops are admit/remove only, got '" + op +
                "'");

        // The mirror after this op, had it been accepted.
        std::vector<MirrorMsg> msgs2 = msgs;
        if (r.kind == online::RequestKind::AdmitMessage) {
            for (const online::AdmitSpec &s : r.admits)
                msgs2.push_back({s.name, s.src, s.dst, s.bytes});
        } else {
            for (auto it = msgs2.begin(); it != msgs2.end(); ++it)
                if (it->name == r.name) {
                    msgs2.erase(it);
                    break;
                }
        }

        const online::RequestResult res = svc.process(r);
        if (res.accepted) {
            msgs = std::move(msgs2);
            if (std::string err = certify("after '" + op + "'");
                !err.empty())
                return failure(std::move(err));
            const auto pub = svc.published();
            if (pub->bounds.messages.size() !=
                [&] {
                    std::size_t n = 0;
                    const TaskFlowGraph g2 =
                        buildMirror(c.g, msgs);
                    for (const Message &m : g2.messages())
                        n += alloc.nodeOf(m.src) !=
                             alloc.nodeOf(m.dst);
                    return n;
                }())
                return failure(
                    "published workload diverged from the "
                    "request mirror after '" +
                    op + "'");
        } else if (res.reason !=
                   online::RejectReason::InvalidRequest) {
            // A structured infeasibility claim: the from-scratch
            // compiler must agree there is no schedule.
            if (oracle(buildMirror(c.g, msgs2)) == 1)
                return failure(
                    std::string("service rejected '") + op +
                    "' (" + online::rejectReasonName(res.reason) +
                    ": " + res.detail +
                    ") but a from-scratch compile is feasible");
        }
        // InvalidRequest rejections (unknown task, duplicate or
        // missing name, cyclic admit) are request validation, not
        // schedulability; there is nothing to cross-check.
    }

    // Final differential: the surviving published schedule must
    // execute. Both engines replay it and must agree.
    const auto pub = svc.published();
    if (!pub->bounds.messages.empty()) {
        CpSimConfig sim_cfg;
        sim_cfg.invocations = opts.invocations;
        sim_cfg.warmup = opts.warmup;
        const CpSimResult dyn =
            simulateCps(pub->g, svc.topology(), alloc, c.tm,
                        pub->bounds, pub->omega, sim_cfg);
        if (!dyn.ok())
            return failure(
                "cpsim violation on the final published "
                "schedule: " +
                dyn.violations.front());
        const SrExecutionResult ana =
            executeSchedule(pub->g, alloc, c.tm, pub->bounds,
                            pub->omega, opts.invocations);
        if (ana.premiseViolated)
            return failure(
                "analytic executor premise violated on the final "
                "published schedule: " +
                (ana.notes.empty() ? std::string("?")
                                   : ana.notes.front()));
        if (!ana.consistent(opts.warmup))
            return failure(
                "analytic executor output interval is not "
                "constant on the final published schedule");
        if (dyn.completions.size() != ana.completions.size())
            return failure(
                "cpsim and analytic executor replayed a "
                "different number of invocations");
        for (std::size_t j = 0; j < dyn.completions.size(); ++j)
            if (std::abs(dyn.completions[j] -
                         ana.completions[j]) > opts.agreementEps) {
                std::ostringstream oss;
                oss << "completion divergence at invocation " << j
                    << " on the final published schedule: cpsim "
                    << dyn.completions[j] << " vs analytic "
                    << ana.completions[j];
                return failure(oss.str());
            }
    }

    RunResult out;
    out.verdict = Verdict::Feasible;
    return out;
}

} // namespace

RunResult
runChurnCase(const FuzzCase &c, const RunOptions &opts)
{
    // Same core contract as runCase(): nothing a case contains may
    // escape as an exception.
    try {
        return runChurnInner(c, opts);
    } catch (const PanicError &e) {
        return failure(std::string("panic: ") + e.what());
    } catch (const FatalError &e) {
        return failure(std::string("fatal: ") + e.what());
    } catch (const std::exception &e) {
        return failure(std::string("exception: ") + e.what());
    }
}

} // namespace fuzz
} // namespace srsim
