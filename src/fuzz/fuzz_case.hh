/**
 * @file
 * A self-contained, replayable fuzz case for the SR compiler.
 *
 * A FuzzCase captures everything the differential harness needs to
 * reproduce one compile → verify → simulate run bit-for-bit: the
 * TFG, the fabric spec, the task placement, the timing model, and
 * every compiler knob the generator randomizes. Cases serialize to
 * a line-oriented `.srfuzz` text file (the TFG is embedded in its
 * own srsim-tfg v1 format), so a failure found by `srfuzz` can be
 * checked into tests/corpus/ and replayed forever.
 *
 *   srsim-fuzz v1
 *   seed 42
 *   topo torus:4,4
 *   ap-speed 1.25
 *   bandwidth 64
 *   packet-bytes 0
 *   period 37.5
 *   guard 0
 *   alloc-method lp
 *   sched-method lp
 *   exact-packet-mip 0
 *   use-assign-paths 1
 *   assign-seed 7
 *   max-restarts 2
 *   feedback-rounds 0
 *   faults link:#3;derate:#7=0.5     (optional; omitted = healthy)
 *   churn admit zc0 t2 t5 512        (optional; online request
 *   churn remove zc0                  lines, replayed in order)
 *   sessions 3                       (optional; daemon sessions)
 *   mchurn 1 admit zm0 t2 t5 512     (optional; per-session daemon
 *   mchurn 0 remove zm1               request lines, in order)
 *   tfg
 *   srsim-tfg v1
 *   ...
 *   end
 *   map <task-name> <node>
 *   ...
 *   end
 */

#ifndef SRSIM_FUZZ_FUZZ_CASE_HH_
#define SRSIM_FUZZ_FUZZ_CASE_HH_

#include <cstdint>
#include <istream>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "core/sr_compiler.hh"
#include "mapping/allocation.hh"
#include "tfg/tfg.hh"
#include "tfg/timing.hh"
#include "topology/topology.hh"

namespace srsim {
namespace fuzz {

/** One randomized compile instance, fully value-typed. */
struct FuzzCase
{
    /** Generator seed (provenance only; replay does not re-draw). */
    std::uint64_t seed = 0;
    /** Topology factory spec, e.g. "ghc:2,4". */
    std::string topoSpec = "cube:3";
    TaskFlowGraph g;
    /** Node of each task, indexed by TaskId. */
    std::vector<NodeId> taskNode;
    TimingModel tm;

    // Compiler knobs (mirrors SrCompilerConfig).
    Time inputPeriod = 0.0;
    Time guardTime = 0.0;
    AllocationMethod allocMethod = AllocationMethod::Lp;
    SchedulingMethod schedMethod = SchedulingMethod::LpFeasibleSets;
    bool exactPacketMip = false;
    bool useAssignPaths = true;
    std::uint64_t assignSeed = 1;
    int maxRestarts = 2;
    int feedbackRounds = 0;
    /**
     * Static fault spec (src/fault grammar) applied to the fabric
     * before compiling; empty = healthy fabric. Timed events are
     * outside the differential domain (InvalidCase).
     */
    std::string faultSpec;
    /**
     * Online churn sequence: admit/remove request lines in the
     * src/online script grammar (e.g. "admit zc0 t2 t5 512"),
     * replayed in order against an OnlineScheduler and
     * differentially checked against from-scratch recompiles.
     * Empty = batch case (the classic three-oracle run).
     */
    std::vector<std::string> churnOps;
    /**
     * Multi-session daemon dimension: when > 0 the case runs
     * through the scheduling daemon (fuzz/multi.hh) with this many
     * sessions, each serving this case's workload, instead of the
     * batch or churn runner.
     */
    int numSessions = 0;
    /**
     * Daemon request sequence: (session index, request line) pairs
     * in submission order. Lines use the src/online grammar
     * (admit/remove only); session indices are < numSessions.
     */
    std::vector<std::pair<int, std::string>> multiOps;

    /** Allocation object for this case's task placement. */
    TaskAllocation makeAllocation(const Topology &topo) const;

    /** Compiler configuration for this case. */
    SrCompilerConfig makeConfig() const;
};

/** Write c in the srsim-fuzz v1 text format. */
void writeFuzzCase(std::ostream &os, const FuzzCase &c);

/**
 * Parse a case written by writeFuzzCase() (or by hand).
 * Fatal on malformed input.
 */
FuzzCase readFuzzCase(std::istream &is);

} // namespace fuzz
} // namespace srsim

#endif // SRSIM_FUZZ_FUZZ_CASE_HH_
