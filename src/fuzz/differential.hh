/**
 * @file
 * The differential oracle: one fuzz case, three independent checks.
 *
 * A case is compiled with the compiler's own verification gate OFF,
 * then every successful compile is cross-checked by:
 *
 *  1. the static verifier (completeness, timeliness, contention
 *     freedom, path validity, crossbar consistency);
 *  2. the CP-level discrete-event simulator (crossbars actually
 *     executing omega_i command lists — zero dynamic violations);
 *  3. the analytic executor (closed-form replay — premise holds,
 *     output interval constant);
 *
 * and the two executions must report identical invocation
 * completion times (within 1e-6 us). Any disagreement, any
 * exception, and any infeasible result without a well-formed
 * structured CompileError is a Failure.
 */

#ifndef SRSIM_FUZZ_DIFFERENTIAL_HH_
#define SRSIM_FUZZ_DIFFERENTIAL_HH_

#include <string>

#include "core/sr_compiler.hh"
#include "fuzz/fuzz_case.hh"

namespace srsim {
namespace fuzz {

/** What a differential run concluded about one case. */
enum class Verdict
{
    /** Compiled; all three oracles agree the schedule is correct. */
    Feasible,
    /** Structured infeasibility with a well-formed CompileError. */
    Infeasible,
    /** Structured InvalidInput (generator strayed off-contract). */
    InvalidCase,
    /** Crash, solver abort, oracle divergence, malformed error. */
    Failure,
};

/** @return human-readable verdict name. */
const char *verdictName(Verdict v);

/** Outcome of one differential run. */
struct RunResult
{
    Verdict verdict = Verdict::Failure;
    /** Failing stage for Infeasible / InvalidCase. */
    SrFailureStage stage = SrFailureStage::None;
    /** What went wrong (non-empty exactly for Failure). */
    std::string report;

    bool failed() const { return verdict == Verdict::Failure; }
};

/** Run options for the differential oracles. */
struct RunOptions
{
    /** Invocations simulated/replayed per successful compile. */
    int invocations = 30;
    /** Warmup invocations excluded from interval statistics. */
    int warmup = 5;
    /** Tolerance on cpsim vs analytic completion agreement (us). */
    double agreementEps = 1e-6;
};

/** Compile `c` and cross-check the three oracles. Never throws. */
RunResult runCase(const FuzzCase &c, const RunOptions &opts = {});

} // namespace fuzz
} // namespace srsim

#endif // SRSIM_FUZZ_DIFFERENTIAL_HH_
