/**
 * @file
 * Seed-driven random case generator for the differential fuzzer.
 *
 * Every case is a pure function of its seed: the same seed always
 * yields byte-identical TFG, fabric, placement, and knobs, so a
 * failing seed is a complete bug report. The generator deliberately
 * strays outside the comfortable regime the unit tests cover —
 * occasional below-tau_c periods and tau_m > tau_c graphs (which
 * must come back as structured InvalidInput, never a crash), packet
 * quantization, guard times, greedy/list ablation methods, and
 * fabrics up to 64 nodes.
 */

#ifndef SRSIM_FUZZ_GENERATOR_HH_
#define SRSIM_FUZZ_GENERATOR_HH_

#include <cstdint>

#include "fuzz/fuzz_case.hh"

namespace srsim {
namespace fuzz {

/** Generate the case determined by `seed`. */
FuzzCase generateCase(std::uint64_t seed);

/**
 * Generate the multi-session daemon variant of `seed`'s case: the
 * same workload and knobs, served by 2..4 daemon sessions with a
 * random admit/remove sequence spread across them (fuzz/multi.hh's
 * crash-recovery oracle). Separate from generateCase() so the
 * default seed stream — and every pinned corpus verdict — is
 * untouched.
 */
FuzzCase generateMultiCase(std::uint64_t seed);

} // namespace fuzz
} // namespace srsim

#endif // SRSIM_FUZZ_GENERATOR_HH_
