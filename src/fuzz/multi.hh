/**
 * @file
 * Differential multi-session daemon runner with a recovery oracle.
 *
 * A multi case (numSessions > 0) replays its op sequence through
 * the scheduling daemon twice and demands byte-identical results:
 *
 *  - the *straight line*: one ephemeral daemon (no state directory)
 *    opens every session and serves every op start to finish;
 *  - the *recovered line*: a durable daemon serves the first half
 *    of the ops, crash-stops (unsynced WAL bytes dropped, no final
 *    snapshot), a second daemon recovers from the newest snapshot
 *    plus the WAL suffix and serves the remaining ops, and after a
 *    clean shutdown a third daemon restores from the final
 *    snapshot alone.
 *
 * The oracle: every per-op verdict (accept/reject and reason) and
 * every session's published schedule bytes must agree across the
 * lines at the matching points, no WAL-logged request may replay as
 * rejected, and no snapshot the daemon wrote may fail verification.
 * Both lines run with one worker, which the daemon serves inline
 * and deterministically, so any divergence is a durability bug,
 * not scheduling nondeterminism.
 *
 * Domain notes: multi cases run on the healthy fabric (the WAL
 * replays fault requests, but mid-sequence masks are outside this
 * oracle's scope), and the daemon's timing model has no packet
 * grid, so `packet-bytes` is ignored here. Placement comes from a
 * per-session round-robin stride derived from the seed — distinct
 * strides exercise distinct cache keys, equal strides exercise
 * cross-session cache hits — so the case's `map` lines only apply
 * to the batch/churn runners.
 */

#ifndef SRSIM_FUZZ_MULTI_HH_
#define SRSIM_FUZZ_MULTI_HH_

#include "fuzz/differential.hh"
#include "fuzz/fuzz_case.hh"

namespace srsim {
namespace fuzz {

/**
 * Run `c` through the daemon straight-line and crash-recovery
 * lines and cross-check them. Never throws.
 */
RunResult runMultiCase(const FuzzCase &c, const RunOptions &opts = {});

} // namespace fuzz
} // namespace srsim

#endif // SRSIM_FUZZ_MULTI_HH_
