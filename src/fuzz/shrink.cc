#include "fuzz/shrink.hh"

#include <vector>

namespace srsim {
namespace fuzz {

namespace {

/** Textual fault events of a spec (split on ';' / ','). */
std::vector<std::string>
splitFaultEvents(const std::string &spec)
{
    std::vector<std::string> out;
    std::string cur;
    for (char ch : spec) {
        if (ch == ';' || ch == ',') {
            if (!cur.empty())
                out.push_back(cur);
            cur.clear();
        } else {
            cur += ch;
        }
    }
    if (!cur.empty())
        out.push_back(cur);
    return out;
}

/** Rejoin events minus the one at `drop`. */
std::string
joinFaultEventsWithout(const std::vector<std::string> &events,
                       std::size_t drop)
{
    std::string out;
    for (std::size_t i = 0; i < events.size(); ++i) {
        if (i == drop)
            continue;
        if (!out.empty())
            out += ";";
        out += events[i];
    }
    return out;
}

/**
 * Rebuild `c`'s graph keeping only the flagged tasks/messages.
 * Task and message ids are renumbered densely; the placement
 * follows the kept tasks.
 */
FuzzCase
rebuild(const FuzzCase &c, const std::vector<bool> &keepTask,
        const std::vector<bool> &keepMsg)
{
    FuzzCase out = c;
    out.g = TaskFlowGraph{};
    out.taskNode.clear();

    std::vector<TaskId> newId(
        static_cast<std::size_t>(c.g.numTasks()), kInvalidTask);
    for (TaskId t = 0; t < c.g.numTasks(); ++t) {
        if (!keepTask[static_cast<std::size_t>(t)])
            continue;
        const Task &task = c.g.task(t);
        newId[static_cast<std::size_t>(t)] =
            out.g.addTask(task.name, task.operations);
        out.taskNode.push_back(
            c.taskNode[static_cast<std::size_t>(t)]);
    }
    for (MessageId m = 0; m < c.g.numMessages(); ++m) {
        if (!keepMsg[static_cast<std::size_t>(m)])
            continue;
        const Message &msg = c.g.message(m);
        out.g.addMessage(
            msg.name, newId[static_cast<std::size_t>(msg.src)],
            newId[static_cast<std::size_t>(msg.dst)], msg.bytes);
    }
    return out;
}

} // namespace

FuzzCase
dropMessage(const FuzzCase &c, MessageId m)
{
    std::vector<bool> keepTask(
        static_cast<std::size_t>(c.g.numTasks()), true);
    std::vector<bool> keepMsg(
        static_cast<std::size_t>(c.g.numMessages()), true);
    keepMsg[static_cast<std::size_t>(m)] = false;
    return rebuild(c, keepTask, keepMsg);
}

FuzzCase
dropTask(const FuzzCase &c, TaskId t)
{
    std::vector<bool> keepTask(
        static_cast<std::size_t>(c.g.numTasks()), true);
    std::vector<bool> keepMsg(
        static_cast<std::size_t>(c.g.numMessages()), true);
    keepTask[static_cast<std::size_t>(t)] = false;
    for (MessageId m = 0; m < c.g.numMessages(); ++m) {
        const Message &msg = c.g.message(m);
        if (msg.src == t || msg.dst == t)
            keepMsg[static_cast<std::size_t>(m)] = false;
    }
    return rebuild(c, keepTask, keepMsg);
}

FuzzCase
shrinkCase(const FuzzCase &c, const StillFails &stillFails,
           std::size_t maxEvaluations, ShrinkStats *stats)
{
    ShrinkStats local;
    ShrinkStats &st = stats ? *stats : local;

    FuzzCase best = c;
    auto tryCase = [&](const FuzzCase &cand) {
        if (st.evaluations >= maxEvaluations)
            return false;
        ++st.evaluations;
        if (!stillFails(cand))
            return false;
        best = cand;
        return true;
    };

    bool changed = true;
    while (changed && st.evaluations < maxEvaluations) {
        changed = false;

        // Pass 1: drop messages, highest id first (ids stay stable
        // below the dropped one, so one sweep can remove several).
        for (MessageId m = best.g.numMessages() - 1; m >= 0; --m) {
            if (tryCase(dropMessage(best, m))) {
                ++st.messagesRemoved;
                changed = true;
            }
        }

        // Pass 2: drop tasks with their incident messages.
        for (TaskId t = best.g.numTasks() - 1; t >= 0; --t) {
            if (best.g.numTasks() <= 1)
                break;
            if (tryCase(dropTask(best, t))) {
                ++st.tasksRemoved;
                changed = true;
            }
        }

        // Pass 3: fault minimization -- first the whole spec (a bug
        // that reproduces on the healthy fabric is not a fault
        // bug), then one event at a time.
        if (!best.faultSpec.empty()) {
            FuzzCase cand = best;
            cand.faultSpec.clear();
            if (tryCase(cand)) {
                ++st.knobsSimplified;
                changed = true;
            }
        }
        if (!best.faultSpec.empty()) {
            for (std::size_t i =
                     splitFaultEvents(best.faultSpec).size();
                 i-- > 0;) {
                const std::vector<std::string> events =
                    splitFaultEvents(best.faultSpec);
                if (events.size() <= 1 || i >= events.size())
                    continue;
                FuzzCase cand = best;
                cand.faultSpec = joinFaultEventsWithout(events, i);
                if (tryCase(cand)) {
                    ++st.knobsSimplified;
                    changed = true;
                }
            }
        }

        // Pass 4: churn minimization — the whole sequence first (a
        // bug that reproduces without churn is a batch-compiler
        // bug, and the case degrades to the three-oracle run),
        // then one request at a time from the end (later ops drop
        // first so removes keep their earlier admits).
        if (!best.churnOps.empty()) {
            FuzzCase cand = best;
            cand.churnOps.clear();
            if (tryCase(cand)) {
                st.churnOpsRemoved +=
                    static_cast<int>(best.churnOps.size());
                changed = true;
            }
        }
        for (std::size_t i = best.churnOps.size(); i-- > 0;) {
            if (i >= best.churnOps.size())
                continue;
            FuzzCase cand = best;
            cand.churnOps.erase(
                cand.churnOps.begin() +
                static_cast<std::ptrdiff_t>(i));
            if (tryCase(cand)) {
                ++st.churnOpsRemoved;
                changed = true;
            }
        }

        // Pass 5: multi-session minimization — the whole daemon
        // dimension first (a bug that reproduces without the
        // daemon is an online/compiler bug and the case degrades
        // to the batch or churn runner), then trailing sessions
        // (with their ops), then one op at a time from the end.
        if (best.numSessions > 0) {
            FuzzCase cand = best;
            const int had =
                static_cast<int>(best.multiOps.size());
            cand.numSessions = 0;
            cand.multiOps.clear();
            if (tryCase(cand)) {
                st.multiOpsRemoved += had;
                changed = true;
            }
        }
        while (best.numSessions > 1 &&
               st.evaluations < maxEvaluations) {
            FuzzCase cand = best;
            --cand.numSessions;
            std::erase_if(cand.multiOps, [&](const auto &op) {
                return op.first >= cand.numSessions;
            });
            if (!tryCase(cand))
                break;
            ++st.knobsSimplified;
            changed = true;
        }
        for (std::size_t i = best.multiOps.size(); i-- > 0;) {
            if (i >= best.multiOps.size())
                continue;
            FuzzCase cand = best;
            cand.multiOps.erase(
                cand.multiOps.begin() +
                static_cast<std::ptrdiff_t>(i));
            if (tryCase(cand)) {
                ++st.multiOpsRemoved;
                changed = true;
            }
        }

        // Pass 6: knob simplifications (each only if the bug
        // survives without it).
        auto simplify = [&](auto mutate) {
            FuzzCase cand = best;
            mutate(cand);
            if (tryCase(cand)) {
                ++st.knobsSimplified;
                changed = true;
            }
        };
        if (best.feedbackRounds > 0)
            simplify([](FuzzCase &x) { x.feedbackRounds = 0; });
        if (best.maxRestarts > 0)
            simplify([](FuzzCase &x) { x.maxRestarts = 0; });
        if (best.guardTime > 0.0)
            simplify([](FuzzCase &x) { x.guardTime = 0.0; });
        if (best.exactPacketMip)
            simplify([](FuzzCase &x) { x.exactPacketMip = false; });
        if (best.tm.packetBytes > 0.0)
            simplify([](FuzzCase &x) { x.tm.packetBytes = 0.0; });
        if (!best.useAssignPaths)
            simplify([](FuzzCase &x) { x.useAssignPaths = true; });
        if (best.allocMethod != AllocationMethod::Lp)
            simplify([](FuzzCase &x) {
                x.allocMethod = AllocationMethod::Lp;
            });
        if (best.schedMethod != SchedulingMethod::LpFeasibleSets)
            simplify([](FuzzCase &x) {
                x.schedMethod = SchedulingMethod::LpFeasibleSets;
            });
    }
    return best;
}

} // namespace fuzz
} // namespace srsim
