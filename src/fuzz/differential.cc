#include "fuzz/differential.hh"

#include <cmath>
#include <exception>
#include <sstream>

#include "core/sr_executor.hh"
#include "core/verifier.hh"
#include "cpsim/cp_simulator.hh"
#include "fault/fault.hh"
#include "fuzz/churn.hh"
#include "fuzz/multi.hh"
#include "topology/factory.hh"
#include "util/logging.hh"

namespace srsim {
namespace fuzz {

const char *
verdictName(Verdict v)
{
    switch (v) {
      case Verdict::Feasible: return "feasible";
      case Verdict::Infeasible: return "infeasible";
      case Verdict::InvalidCase: return "invalid-case";
      case Verdict::Failure: return "FAILURE";
    }
    return "unknown";
}

namespace {

RunResult
failure(std::string why)
{
    RunResult r;
    r.verdict = Verdict::Failure;
    r.report = std::move(why);
    return r;
}

/** The throwing core of runCase(). */
RunResult
runCaseInner(const FuzzCase &c, const RunOptions &opts)
{
    const auto topo = makeTopology(c.topoSpec);

    // Static faults degrade the fabric before compilation; all
    // three oracles then judge the degraded fabric. A spec the
    // fault layer rejects (or one with timed events, which need a
    // mid-run simulation story, not a static compile) is outside
    // the differential domain, not a harness failure.
    if (!c.faultSpec.empty()) {
        try {
            const fault::FaultSpec fs =
                fault::parseFaultSpec(c.faultSpec);
            for (const fault::FaultEvent &ev : fs.events)
                if (ev.timed()) {
                    RunResult out;
                    out.verdict = Verdict::InvalidCase;
                    out.report = "timed fault events are outside "
                                 "the differential domain";
                    return out;
                }
            fault::applyFaultSpec(c.faultSpec, *topo);
        } catch (const FatalError &e) {
            RunResult out;
            out.verdict = Verdict::InvalidCase;
            out.report =
                std::string("fault spec rejected: ") + e.what();
            return out;
        }
    }

    const TaskAllocation alloc = c.makeAllocation(*topo);
    const SrCompilerConfig cfg = c.makeConfig();

    // The differential domain requires the dedicated-AP premise: a
    // case that co-locates two tasks is legal input to the compiler
    // but outside what the analytic executor models (cpsim would
    // serialize the tasks through the shared AP, the executor
    // flags it), so it cannot be cross-checked.
    for (TaskId a = 0; a < c.g.numTasks(); ++a)
        for (TaskId b = a + 1; b < c.g.numTasks(); ++b)
            if (alloc.nodeOf(a) == alloc.nodeOf(b)) {
                RunResult out;
                out.verdict = Verdict::InvalidCase;
                out.report = "case co-locates tasks '" +
                             c.g.task(a).name + "' and '" +
                             c.g.task(b).name +
                             "'; outside the dedicated-AP "
                             "differential domain";
                return out;
            }

    const SrCompileResult r =
        compileScheduledRouting(c.g, *topo, alloc, c.tm, cfg);

    if (!r.feasible) {
        // An infeasible compile must explain itself: a stage, a
        // human-readable detail, and a structured error that agrees
        // with the legacy fields.
        if (r.stage == SrFailureStage::None)
            return failure("infeasible compile reports stage None");
        if (r.detail.empty())
            return failure("infeasible compile has empty detail");
        if (r.error.stage != r.stage)
            return failure(
                std::string("CompileError stage '") +
                srFailureStageName(r.error.stage) +
                "' disagrees with result stage '" +
                srFailureStageName(r.stage) + "'");
        RunResult out;
        out.verdict = r.stage == SrFailureStage::InvalidInput
                          ? Verdict::InvalidCase
                          : Verdict::Infeasible;
        out.stage = r.stage;
        return out;
    }

    // Oracle 1: the static verifier.
    const VerifyResult v =
        verifySchedule(c.g, *topo, alloc, r.bounds, r.omega);
    if (!v.ok)
        return failure(
            "verifier rejected a compiled schedule: " +
            (v.violations.empty() ? std::string("?")
                                  : v.violations.front()));

    // Oracle 2: the CP-level discrete-event simulation.
    CpSimConfig sim_cfg;
    sim_cfg.invocations = opts.invocations;
    sim_cfg.warmup = opts.warmup;
    const CpSimResult dyn = simulateCps(c.g, *topo, alloc, c.tm,
                                        r.bounds, r.omega, sim_cfg);
    if (!dyn.ok())
        return failure("cpsim violation on a verified schedule: " +
                       dyn.violations.front());

    // Oracle 3: the analytic executor.
    const SrExecutionResult ana = executeSchedule(
        c.g, alloc, c.tm, r.bounds, r.omega, opts.invocations);
    if (ana.premiseViolated)
        return failure(
            "analytic executor premise violated: " +
            (ana.notes.empty() ? std::string("?")
                               : ana.notes.front()));
    if (!ana.consistent(opts.warmup))
        return failure("analytic executor output interval is not "
                       "constant at the input period");

    // Differential: both executions must see the same completions.
    if (dyn.completions.size() != ana.completions.size())
        return failure("cpsim and analytic executor replayed a "
                       "different number of invocations");
    for (std::size_t j = 0; j < dyn.completions.size(); ++j) {
        if (std::abs(dyn.completions[j] - ana.completions[j]) >
            opts.agreementEps) {
            std::ostringstream oss;
            oss << "completion divergence at invocation " << j
                << ": cpsim " << dyn.completions[j]
                << " vs analytic " << ana.completions[j];
            return failure(oss.str());
        }
    }

    RunResult out;
    out.verdict = Verdict::Feasible;
    return out;
}

} // namespace

RunResult
runCase(const FuzzCase &c, const RunOptions &opts)
{
    // Multi-session cases exercise the scheduling daemon and its
    // crash-recovery oracle (fuzz/multi.hh).
    if (c.numSessions > 0 || !c.multiOps.empty())
        return runMultiCase(c, opts);
    // Churny cases exercise the online service against the
    // from-scratch oracle instead of the batch three-oracle run.
    if (!c.churnOps.empty())
        return runChurnCase(c, opts);
    // The harness's core contract: *nothing* a case contains may
    // escape as an exception — a throw is itself the bug being
    // hunted (the compiler must return structured errors).
    try {
        return runCaseInner(c, opts);
    } catch (const PanicError &e) {
        return failure(std::string("panic: ") + e.what());
    } catch (const FatalError &e) {
        return failure(std::string("fatal: ") + e.what());
    } catch (const std::exception &e) {
        return failure(std::string("exception: ") + e.what());
    }
}

} // namespace fuzz
} // namespace srsim
