/**
 * @file
 * Differential churn runner: replay a case's admit/remove sequence
 * on the online scheduling service against a from-scratch oracle.
 *
 * The online service promises two things the batch compiler does
 * not: (1) any published schedule is verifier-certified, and (2) a
 * rejection means the workload is infeasible *from scratch* — the
 * incremental path always falls back to a full compile before
 * saying no. Both promises are checkable, so both are fuzzed:
 *
 *  - every accepted request's published schedule is re-verified by
 *    the independent static verifier;
 *  - every rejection (other than request validation) is replayed
 *    against a from-scratch compile of the same workload on an
 *    identically degraded fabric — if the oracle compiles, the
 *    service wrongly turned away a feasible admission;
 *  - the final published schedule is cross-executed by the CP-level
 *    discrete-event simulator and the analytic executor, which must
 *    agree on every invocation completion time.
 */

#ifndef SRSIM_FUZZ_CHURN_HH_
#define SRSIM_FUZZ_CHURN_HH_

#include "fuzz/differential.hh"
#include "fuzz/fuzz_case.hh"

namespace srsim {
namespace fuzz {

/**
 * Replay `c.churnOps` through an OnlineScheduler and cross-check
 * accept/reject verdicts and published schedules against the
 * from-scratch compiler. Never throws. Cases without churn ops
 * degrade to checking start() against the oracle.
 */
RunResult runChurnCase(const FuzzCase &c, const RunOptions &opts = {});

} // namespace fuzz
} // namespace srsim

#endif // SRSIM_FUZZ_CHURN_HH_
