#include "fuzz/fuzz_case.hh"

#include <iomanip>
#include <limits>
#include <sstream>

#include "tfg/tfg_io.hh"
#include "util/logging.hh"

namespace srsim {
namespace fuzz {

TaskAllocation
FuzzCase::makeAllocation(const Topology &topo) const
{
    TaskAllocation alloc(g.numTasks(), topo.numNodes());
    for (TaskId t = 0;
         t < static_cast<TaskId>(taskNode.size()) &&
         t < g.numTasks();
         ++t)
        alloc.assign(t, taskNode[static_cast<std::size_t>(t)]);
    return alloc;
}

SrCompilerConfig
FuzzCase::makeConfig() const
{
    SrCompilerConfig cfg;
    cfg.inputPeriod = inputPeriod;
    cfg.useAssignPaths = useAssignPaths;
    cfg.assign.seed = assignSeed;
    cfg.assign.maxRestarts = maxRestarts;
    cfg.allocMethod = allocMethod;
    cfg.scheduling.method = schedMethod;
    cfg.scheduling.guardTime = guardTime;
    cfg.scheduling.exactPacketMip = exactPacketMip;
    cfg.feedbackRounds = feedbackRounds;
    // The harness re-verifies independently; the compiler's own
    // gate must not vouch for it.
    cfg.verify = false;
    return cfg;
}

void
writeFuzzCase(std::ostream &os, const FuzzCase &c)
{
    os << std::setprecision(
        std::numeric_limits<double>::max_digits10);
    os << "srsim-fuzz v1\n";
    os << "seed " << c.seed << "\n";
    os << "topo " << c.topoSpec << "\n";
    os << "ap-speed " << c.tm.apSpeed << "\n";
    os << "bandwidth " << c.tm.bandwidth << "\n";
    os << "packet-bytes " << c.tm.packetBytes << "\n";
    os << "period " << c.inputPeriod << "\n";
    os << "guard " << c.guardTime << "\n";
    os << "alloc-method "
       << (c.allocMethod == AllocationMethod::Lp ? "lp" : "greedy")
       << "\n";
    os << "sched-method "
       << (c.schedMethod == SchedulingMethod::LpFeasibleSets
               ? "lp"
               : "list")
       << "\n";
    os << "exact-packet-mip " << (c.exactPacketMip ? 1 : 0) << "\n";
    os << "use-assign-paths " << (c.useAssignPaths ? 1 : 0) << "\n";
    os << "assign-seed " << c.assignSeed << "\n";
    os << "max-restarts " << c.maxRestarts << "\n";
    os << "feedback-rounds " << c.feedbackRounds << "\n";
    if (!c.faultSpec.empty())
        os << "faults " << c.faultSpec << "\n";
    for (const std::string &op : c.churnOps)
        os << "churn " << op << "\n";
    if (c.numSessions > 0)
        os << "sessions " << c.numSessions << "\n";
    for (const auto &[k, op] : c.multiOps)
        os << "mchurn " << k << " " << op << "\n";
    os << "tfg\n";
    writeTfg(os, c.g);
    for (TaskId t = 0; t < c.g.numTasks(); ++t) {
        os << "map " << c.g.task(t).name << " "
           << c.taskNode[static_cast<std::size_t>(t)] << "\n";
    }
    os << "end\n";
}

FuzzCase
readFuzzCase(std::istream &is)
{
    // Skip leading comment and blank lines (failure dumps carry
    // the failure report as a '#' header above the document).
    std::string line;
    while (std::getline(is, line))
        if (!line.empty() && line[0] != '#')
            break;
    if (line != "srsim-fuzz v1")
        fatal("not an srsim-fuzz v1 file");

    FuzzCase c;
    bool have_tfg = false, ended = false;
    std::vector<std::pair<std::string, NodeId>> maps;
    while (std::getline(is, line)) {
        if (line.empty() || line[0] == '#')
            continue;
        std::istringstream ls(line);
        std::string key;
        ls >> key;
        if (key == "end") {
            ended = true;
            break;
        }
        if (key == "tfg") {
            c.g = readTfg(is);
            have_tfg = true;
            continue;
        }
        if (key == "seed") ls >> c.seed;
        else if (key == "topo") ls >> c.topoSpec;
        else if (key == "ap-speed") ls >> c.tm.apSpeed;
        else if (key == "bandwidth") ls >> c.tm.bandwidth;
        else if (key == "packet-bytes") ls >> c.tm.packetBytes;
        else if (key == "period") ls >> c.inputPeriod;
        else if (key == "guard") ls >> c.guardTime;
        else if (key == "alloc-method") {
            std::string v;
            ls >> v;
            if (v == "lp")
                c.allocMethod = AllocationMethod::Lp;
            else if (v == "greedy")
                c.allocMethod = AllocationMethod::Greedy;
            else
                fatal("unknown alloc-method '", v, "'");
        } else if (key == "sched-method") {
            std::string v;
            ls >> v;
            if (v == "lp")
                c.schedMethod = SchedulingMethod::LpFeasibleSets;
            else if (v == "list")
                c.schedMethod = SchedulingMethod::ListScheduling;
            else
                fatal("unknown sched-method '", v, "'");
        } else if (key == "exact-packet-mip") {
            int v = 0;
            ls >> v;
            c.exactPacketMip = v != 0;
        } else if (key == "use-assign-paths") {
            int v = 0;
            ls >> v;
            c.useAssignPaths = v != 0;
        } else if (key == "assign-seed") ls >> c.assignSeed;
        else if (key == "max-restarts") ls >> c.maxRestarts;
        else if (key == "feedback-rounds") ls >> c.feedbackRounds;
        else if (key == "faults") {
            ls >> c.faultSpec;
            if (c.faultSpec.empty())
                fatal("empty faults line in srsim-fuzz file");
        }
        else if (key == "churn") {
            std::string op;
            std::getline(ls, op);
            const std::size_t b = op.find_first_not_of(" \t");
            if (b == std::string::npos)
                fatal("empty churn line in srsim-fuzz file");
            c.churnOps.push_back(op.substr(b));
        }
        else if (key == "sessions") {
            ls >> c.numSessions;
            if (!ls.fail() && c.numSessions <= 0)
                fatal("sessions count must be positive");
        }
        else if (key == "mchurn") {
            int k = -1;
            ls >> k;
            std::string op;
            std::getline(ls, op);
            const std::size_t b = op.find_first_not_of(" \t");
            if (ls.fail() || k < 0 || b == std::string::npos)
                fatal("malformed mchurn line in srsim-fuzz file");
            c.multiOps.emplace_back(k, op.substr(b));
        }
        else if (key == "map") {
            std::string name;
            NodeId node = 0;
            ls >> name >> node;
            maps.emplace_back(name, node);
        } else {
            fatal("unknown srsim-fuzz key '", key, "'");
        }
        if (ls.fail())
            fatal("malformed srsim-fuzz line '", line, "'");
    }
    if (!ended)
        fatal("srsim-fuzz file missing 'end'");
    if (!have_tfg)
        fatal("srsim-fuzz file missing embedded TFG");

    c.taskNode.assign(static_cast<std::size_t>(c.g.numTasks()), 0);
    std::vector<bool> mapped(c.taskNode.size(), false);
    for (const auto &[name, node] : maps) {
        TaskId t = kInvalidTask;
        for (TaskId i = 0; i < c.g.numTasks(); ++i)
            if (c.g.task(i).name == name) {
                t = i;
                break;
            }
        if (t == kInvalidTask)
            fatal("map references unknown task '", name, "'");
        c.taskNode[static_cast<std::size_t>(t)] = node;
        mapped[static_cast<std::size_t>(t)] = true;
    }
    for (std::size_t i = 0; i < mapped.size(); ++i)
        if (!mapped[i])
            fatal("task '", c.g.task(static_cast<TaskId>(i)).name,
                  "' has no map line");
    return c;
}

} // namespace fuzz
} // namespace srsim
