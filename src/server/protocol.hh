/**
 * @file
 * Text protocol of the scheduling daemon.
 *
 * Where `srsimc serve` drives one OnlineScheduler from a request
 * script, the daemon multiplexes many named *sessions*, so its
 * script prefixes every data-plane line with the session name and
 * adds control-plane verbs to open and close sessions:
 *
 *     # comment / blank lines ignored
 *     open <session> topo=SPEC period=US tfg=dvb|FILE
 *          [bw=B] [ap=S] [alloc=greedy|random|rr:<stride>]
 *          [seed=N] [cache=0|1]
 *     close <session>
 *     <session> admit  <name> <srcTask> <dstTask> <bytes>
 *     <session> remove <name>
 *     <session> period <tau_in_us>
 *     <session> fault  <fault-spec>      # rest of line
 *     <session> batch  <N>               # coalesce the next N
 *     <session> admit  ...               #   "<session> admit" lines
 *
 * `tfg=dvb` builds the paper's DARPA Vision Benchmark workload
 * in-process (no file dependency — recovery can always replay it);
 * any other value is a TFG file path. `ap=0` (the default) picks the
 * DVB-matched AP speed for tfg=dvb and 1.0 otherwise. Parsing is
 * total: malformed lines produce a structured error with the
 * 1-based line number, never an abort.
 */

#ifndef SRSIM_SERVER_PROTOCOL_HH_
#define SRSIM_SERVER_PROTOCOL_HH_

#include <cstdint>
#include <istream>
#include <string>
#include <vector>

#include "online/requests.hh"

namespace srsim {
namespace server {

/** Everything an `open` line configures for one session. */
struct SessionConfig
{
    /** Session name (unique among live sessions). */
    std::string name;
    /** Topology spec (topology/factory grammar). */
    std::string topo;
    /** Workload source: "dvb" (builtin) or a TFG file path. */
    std::string tfg = "dvb";
    /** Initial input period tau_in (us); must be > 0. */
    double period = 0.0;
    /** Link bandwidth (bytes/us). */
    double bandwidth = 64.0;
    /** AP speed (ops/us); 0 = matched speed for dvb, else 1.0. */
    double apSpeed = 0.0;
    /** Allocation kind: greedy | random | rr:<stride>. */
    std::string alloc = "greedy";
    /** Seed for random allocation and path-assignment restarts. */
    std::uint64_t seed = 12345;
    /** Whether this session may use the shared schedule cache. */
    bool cache = true;
    /**
     * LP solver kind for this session's compiles: "dense",
     * "sparse", or "" to inherit the daemon's solver kind.
     */
    std::string solver;
    /**
     * Private thread budget for this session's engine context;
     * 0 shares the daemon's pool.
     */
    std::size_t threads = 0;
};

/** One parsed daemon-script operation. */
struct DaemonOp
{
    enum class Kind { Open, Close, Request };
    Kind kind = Kind::Request;
    /** Target session name (all kinds). */
    std::string session;
    /** Kind::Open: the session configuration. */
    SessionConfig open;
    /** Kind::Request: the per-session request. */
    online::Request request;
    /** 1-based script line (0 for synthesized ops). */
    int line = 0;
};

/** Outcome of parsing one daemon script. */
struct DaemonScriptParseResult
{
    bool ok = false;
    std::vector<DaemonOp> ops;
    /** Parse failure, with the offending 1-based line. */
    std::string error;
    int errorLine = 0;
};

/** Parse a whole daemon script; `batch N` becomes one Request. */
DaemonScriptParseResult parseDaemonScript(std::istream &is);

} // namespace server
} // namespace srsim

#endif // SRSIM_SERVER_PROTOCOL_HH_
