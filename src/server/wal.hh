/**
 * @file
 * Write-ahead log of the scheduling daemon.
 *
 * Durability contract: every *accepted* state-changing operation
 * (open, close, and each accepted request) is appended as one JSON
 * object per line, in commit order, tagged with a strictly
 * increasing sequence number. Records are buffered in user space
 * and made durable by sync() — write(2) + fsync(2) — so the daemon
 * can group-commit batches; anything not yet synced is exactly what
 * a crash may lose. Replaying the log from an empty daemon (or a
 * snapshot's walseq) deterministically reconstructs the state:
 * rejected requests never reach the log, and accepted requests
 * re-applied to the same prior state are accepted again with
 * byte-identical published schedules.
 *
 * The reader is tolerant of a torn tail: a truncated or malformed
 * final line (the classic crash-mid-write artifact) ends the replay
 * cleanly instead of failing recovery. Corruption *before* the tail
 * (a record that parses but breaks sequence monotonicity) is also
 * treated as the start of the tail. The first record fixes the
 * log's base sequence — it need not be 1: a log that continues
 * after a snapshot superseded its stale predecessor starts past it
 * (recovery then insists on a snapshot that bridges the gap).
 */

#ifndef SRSIM_SERVER_WAL_HH_
#define SRSIM_SERVER_WAL_HH_

#include <cstdint>
#include <string>
#include <vector>

#include "server/protocol.hh"

namespace srsim {

namespace metrics {
class Registry;
}

namespace server {

/** One durable log record: a sequenced daemon operation. */
struct WalRecord
{
    std::uint64_t seq = 0;
    DaemonOp op;
};

/** Serialize one record as a single JSON line (no newline). */
std::string encodeWalRecord(const WalRecord &rec);

/** Outcome of reading a WAL file. */
struct WalReadResult
{
    /** False only on I/O-level failure (missing file is ok=true). */
    bool ok = false;
    std::vector<WalRecord> records;
    /** True when a torn/corrupt tail was discarded. */
    bool tornTail = false;
    /** Diagnostic for !ok or for the discarded tail. */
    std::string error;
};

/** Read every intact record of `path` (missing file = 0 records). */
WalReadResult readWal(const std::string &path);

/** Append-only writer with explicit group commit. */
class WriteAheadLog
{
  public:
    WriteAheadLog() = default;
    ~WriteAheadLog();

    WriteAheadLog(const WriteAheadLog &) = delete;
    WriteAheadLog &operator=(const WriteAheadLog &) = delete;

    /**
     * Open `path` for appending; new records are numbered from
     * `nextSeq`. @return false (with *err set) on I/O failure.
     */
    bool open(const std::string &path, std::uint64_t nextSeq,
              std::string *err);

    bool isOpen() const { return fd_ >= 0; }

    /** Buffer one record; @return its sequence number. */
    std::uint64_t append(const DaemonOp &op);

    /**
     * Make every buffered record durable (write + fsync).
     * @return true iff every appended record is on disk. A short
     * write keeps the remainder pending (a later sync retries); a
     * failed fsync is sticky — the dirty pages' fate is unknown, so
     * the log can never again certify durability on this fd.
     */
    bool sync();

    /** Graceful close: sync (best effort), then close the fd. */
    void close();

    /**
     * Crash simulation for tests: drop the user-space buffer and
     * close the fd without syncing — on-disk state is exactly the
     * last sync()'d prefix, as after a real crash.
     */
    void crashForTest();

    /**
     * Registry the server.wal_* metrics land in; nullptr (the
     * default) resolves the process default registry. The daemon
     * points this at its root context's registry before opening.
     */
    void setRegistry(metrics::Registry *r) { registry_ = r; }

    /** Sequence number the next append() will use. */
    std::uint64_t nextSeq() const { return nextSeq_; }
    /** Records appended (buffered or synced) this run. */
    std::uint64_t recordsAppended() const { return appended_; }
    /** sync() calls that actually hit the disk. */
    std::uint64_t fsyncs() const { return fsyncs_; }

  private:
    /** Resolve the effective metrics registry (see setRegistry). */
    metrics::Registry &reg() const;

    metrics::Registry *registry_ = nullptr;
    int fd_ = -1;
    std::string pending_;
    std::uint64_t nextSeq_ = 1;
    std::uint64_t appended_ = 0;
    std::uint64_t fsyncs_ = 0;
    /** Set by a failed fsync; cleared only by open(). */
    bool failed_ = false;
};

} // namespace server
} // namespace srsim

#endif // SRSIM_SERVER_WAL_HH_
