#include "server/protocol.hh"

#include <cstdlib>
#include <sstream>

#include "online/script.hh"

namespace srsim {
namespace server {

namespace {

bool
parseNumber(const std::string &s, double *out)
{
    char *end = nullptr;
    const double v = std::strtod(s.c_str(), &end);
    if (!end || *end != '\0' || s.empty())
        return false;
    *out = v;
    return true;
}

bool
validAllocKind(const std::string &kind)
{
    if (kind == "greedy" || kind == "random")
        return true;
    if (kind.rfind("rr:", 0) == 0) {
        const std::string n = kind.substr(3);
        if (n.empty())
            return false;
        for (char c : n)
            if (c < '0' || c > '9')
                return false;
        return true;
    }
    return false;
}

/** Parse the key=value tail of an `open` line into `sc`. */
bool
parseOpenConfig(std::istringstream &ls, SessionConfig &sc,
                std::string *err)
{
    std::string tok;
    while (ls >> tok) {
        const std::size_t eq = tok.find('=');
        if (eq == std::string::npos || eq == 0) {
            *err = "expected key=value, got '" + tok + "'";
            return false;
        }
        const std::string key = tok.substr(0, eq);
        const std::string val = tok.substr(eq + 1);
        double num = 0.0;
        if (key == "topo") {
            sc.topo = val;
        } else if (key == "tfg") {
            sc.tfg = val;
        } else if (key == "period") {
            if (!parseNumber(val, &num) || num <= 0.0) {
                *err = "period must be a positive number, got '" +
                       val + "'";
                return false;
            }
            sc.period = num;
        } else if (key == "bw") {
            if (!parseNumber(val, &num) || num <= 0.0) {
                *err = "bw must be a positive number, got '" + val +
                       "'";
                return false;
            }
            sc.bandwidth = num;
        } else if (key == "ap") {
            if (!parseNumber(val, &num) || num < 0.0) {
                *err = "ap must be >= 0, got '" + val + "'";
                return false;
            }
            sc.apSpeed = num;
        } else if (key == "alloc") {
            if (!validAllocKind(val)) {
                *err = "unknown alloc kind '" + val +
                       "' (greedy | random | rr:<stride>)";
                return false;
            }
            sc.alloc = val;
        } else if (key == "seed") {
            if (!parseNumber(val, &num) || num < 0.0) {
                *err = "seed must be >= 0, got '" + val + "'";
                return false;
            }
            sc.seed = static_cast<std::uint64_t>(num);
        } else if (key == "cache") {
            if (val != "0" && val != "1") {
                *err = "cache must be 0 or 1, got '" + val + "'";
                return false;
            }
            sc.cache = val == "1";
        } else if (key == "solver") {
            if (val != "dense" && val != "sparse") {
                *err = "solver must be dense or sparse, got '" +
                       val + "'";
                return false;
            }
            sc.solver = val;
        } else if (key == "threads") {
            if (!parseNumber(val, &num) || num < 1.0 ||
                num != static_cast<double>(
                           static_cast<std::size_t>(num))) {
                *err = "threads must be a positive integer, got '" +
                       val + "'";
                return false;
            }
            sc.threads = static_cast<std::size_t>(num);
        } else {
            *err = "unknown open key '" + key + "'";
            return false;
        }
    }
    if (sc.topo.empty()) {
        *err = "open requires topo=SPEC";
        return false;
    }
    if (sc.tfg.empty()) {
        *err = "open requires a non-empty tfg source";
        return false;
    }
    if (sc.period <= 0.0) {
        *err = "open requires period=US (> 0)";
        return false;
    }
    return true;
}

} // namespace

DaemonScriptParseResult
parseDaemonScript(std::istream &is)
{
    DaemonScriptParseResult out;
    std::string line;
    int lineNo = 0;
    const auto fail = [&](int ln, std::string msg) {
        out.ok = false;
        out.error = std::move(msg);
        out.errorLine = ln;
        return out;
    };

    while (std::getline(is, line)) {
        ++lineNo;
        std::istringstream ls(line);
        std::string head;
        if (!(ls >> head) || head[0] == '#')
            continue;

        if (head == "open") {
            DaemonOp op;
            op.kind = DaemonOp::Kind::Open;
            op.line = lineNo;
            if (!(ls >> op.session))
                return fail(lineNo, "open requires a session name");
            if (op.session == "open" || op.session == "close" ||
                op.session.find('=') != std::string::npos)
                return fail(lineNo, "invalid session name '" +
                                        op.session + "'");
            op.open.name = op.session;
            std::string err;
            if (!parseOpenConfig(ls, op.open, &err))
                return fail(lineNo, err);
            out.ops.push_back(std::move(op));
            continue;
        }

        if (head == "close") {
            DaemonOp op;
            op.kind = DaemonOp::Kind::Close;
            op.line = lineNo;
            std::string extra;
            if (!(ls >> op.session))
                return fail(lineNo, "close requires a session name");
            if (ls >> extra)
                return fail(lineNo, "unexpected token '" + extra +
                                        "' after close");
            out.ops.push_back(std::move(op));
            continue;
        }

        // "<session> <verb> ..." — the verb grammar is exactly the
        // single-service script's, so reuse its parser.
        const std::string session = head;
        std::string rest;
        std::getline(ls, rest);
        std::istringstream vs(rest);
        std::string verb;
        if (!(vs >> verb))
            return fail(lineNo, "session '" + session +
                                    "' line has no request");

        if (verb == "batch") {
            int n = 0;
            std::string extra;
            if (!(vs >> n) || n <= 0)
                return fail(lineNo,
                            "batch requires a positive count");
            if (vs >> extra)
                return fail(lineNo, "unexpected token '" + extra +
                                        "' after batch count");
            DaemonOp op;
            op.kind = DaemonOp::Kind::Request;
            op.session = session;
            op.line = lineNo;
            op.request.kind = online::RequestKind::AdmitMessage;
            while (static_cast<int>(op.request.admits.size()) < n) {
                if (!std::getline(is, line))
                    return fail(lineNo,
                                "batch truncated by end of script");
                ++lineNo;
                std::istringstream bs(line);
                std::string bsession;
                if (!(bs >> bsession) || bsession[0] == '#')
                    continue;
                if (bsession != session)
                    return fail(lineNo,
                                "batch line must target session '" +
                                    session + "', got '" + bsession +
                                    "'");
                std::string brest;
                std::getline(bs, brest);
                const online::ScriptParseResult one =
                    online::parseRequestLine(brest);
                if (!one.ok)
                    return fail(lineNo, one.error);
                if (one.requests.size() != 1 ||
                    one.requests[0].kind !=
                        online::RequestKind::AdmitMessage)
                    return fail(lineNo,
                                "batch accepts only admit lines");
                for (const online::AdmitSpec &a :
                     one.requests[0].admits)
                    op.request.admits.push_back(a);
            }
            out.ops.push_back(std::move(op));
            continue;
        }

        const online::ScriptParseResult one =
            online::parseRequestLine(rest);
        if (!one.ok)
            return fail(lineNo, one.error);
        if (one.requests.size() != 1)
            return fail(lineNo, "expected exactly one request");
        DaemonOp op;
        op.kind = DaemonOp::Kind::Request;
        op.session = session;
        op.line = lineNo;
        op.request = one.requests[0];
        out.ops.push_back(std::move(op));
    }

    out.ok = true;
    return out;
}

} // namespace server
} // namespace srsim
