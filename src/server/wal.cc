#include "server/wal.hh"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>

#include "engine/context.hh"
#include "metrics/metrics.hh"
#include "trace/trace.hh"
#include "util/json.hh"
#include "util/json_read.hh"
#include "util/logging.hh"

namespace srsim {
namespace server {

std::string
encodeWalRecord(const WalRecord &rec)
{
    std::ostringstream os;
    JsonWriter w(os);
    // Replay recompiles from these numbers; byte-exact recovery
    // needs the exact doubles back (periods and byte counts are
    // arbitrary, not microsecond-grid values).
    w.fullPrecision();
    w.beginObject();
    w.kv("seq", rec.seq);
    const DaemonOp &op = rec.op;
    switch (op.kind) {
      case DaemonOp::Kind::Open: {
          const SessionConfig &sc = op.open;
          w.kv("op", "open");
          w.kv("session", op.session);
          w.kv("topo", sc.topo);
          w.kv("tfg", sc.tfg);
          w.kv("period", sc.period);
          w.kv("bw", sc.bandwidth);
          w.kv("ap", sc.apSpeed);
          w.kv("alloc", sc.alloc);
          // As a string: the decoder parses JSON numbers as
          // doubles, which cannot hold every 64-bit seed.
          w.kv("seed", std::to_string(sc.seed));
          w.kv("cache", sc.cache);
          if (!sc.solver.empty())
              w.kv("solver", sc.solver);
          if (sc.threads > 0)
              w.kv("threads",
                   static_cast<std::uint64_t>(sc.threads));
          break;
      }
      case DaemonOp::Kind::Close:
          w.kv("op", "close");
          w.kv("session", op.session);
          break;
      case DaemonOp::Kind::Request: {
          const online::Request &r = op.request;
          switch (r.kind) {
            case online::RequestKind::AdmitMessage:
                w.kv("op", "admit");
                w.kv("session", op.session);
                w.key("admits").beginArray();
                for (const online::AdmitSpec &a : r.admits) {
                    w.beginObject();
                    w.kv("name", a.name);
                    w.kv("src", a.src);
                    w.kv("dst", a.dst);
                    w.kv("bytes", a.bytes);
                    w.endObject();
                }
                w.endArray();
                break;
            case online::RequestKind::RemoveMessage:
                w.kv("op", "remove");
                w.kv("session", op.session);
                w.kv("name", r.name);
                break;
            case online::RequestKind::UpdatePeriod:
                w.kv("op", "period");
                w.kv("session", op.session);
                w.kv("period", r.period);
                break;
            case online::RequestKind::InjectFault:
                w.kv("op", "fault");
                w.kv("session", op.session);
                w.kv("spec", r.faultSpec);
                break;
          }
          break;
      }
    }
    w.endObject();
    return os.str();
}

namespace {

/** Decode one WAL line; throws std::runtime_error on mismatch. */
WalRecord
decodeWalRecord(const std::string &line)
{
    const jsonmini::ValuePtr v = jsonmini::parse(line);
    if (v->kind != jsonmini::Value::Kind::Object)
        throw std::runtime_error("record is not an object");
    WalRecord rec;
    rec.seq = static_cast<std::uint64_t>(v->at("seq").number);
    const std::string op = v->at("op").string;
    rec.op.session = v->at("session").string;
    if (op == "open") {
        rec.op.kind = DaemonOp::Kind::Open;
        SessionConfig &sc = rec.op.open;
        sc.name = rec.op.session;
        sc.topo = v->at("topo").string;
        sc.tfg = v->at("tfg").string;
        sc.period = v->at("period").number;
        sc.bandwidth = v->at("bw").number;
        sc.apSpeed = v->at("ap").number;
        sc.alloc = v->at("alloc").string;
        sc.seed = std::strtoull(v->at("seed").string.c_str(),
                                nullptr, 10);
        sc.cache = v->at("cache").boolean;
        // Absent on records written before sessions carried solver
        // and thread overrides: inherit-the-daemon defaults.
        if (v->has("solver"))
            sc.solver = v->at("solver").string;
        if (v->has("threads"))
            sc.threads = static_cast<std::size_t>(
                v->at("threads").number);
    } else if (op == "close") {
        rec.op.kind = DaemonOp::Kind::Close;
    } else if (op == "admit") {
        rec.op.kind = DaemonOp::Kind::Request;
        rec.op.request.kind = online::RequestKind::AdmitMessage;
        const jsonmini::Value &arr = v->at("admits");
        if (arr.kind != jsonmini::Value::Kind::Array)
            throw std::runtime_error("admits is not an array");
        for (const jsonmini::ValuePtr &e : arr.array) {
            online::AdmitSpec a;
            a.name = e->at("name").string;
            a.src = e->at("src").string;
            a.dst = e->at("dst").string;
            a.bytes = e->at("bytes").number;
            rec.op.request.admits.push_back(std::move(a));
        }
        if (rec.op.request.admits.empty())
            throw std::runtime_error("empty admit batch");
    } else if (op == "remove") {
        rec.op.kind = DaemonOp::Kind::Request;
        rec.op.request.kind = online::RequestKind::RemoveMessage;
        rec.op.request.name = v->at("name").string;
    } else if (op == "period") {
        rec.op.kind = DaemonOp::Kind::Request;
        rec.op.request.kind = online::RequestKind::UpdatePeriod;
        rec.op.request.period = v->at("period").number;
    } else if (op == "fault") {
        rec.op.kind = DaemonOp::Kind::Request;
        rec.op.request.kind = online::RequestKind::InjectFault;
        rec.op.request.faultSpec = v->at("spec").string;
    } else {
        throw std::runtime_error("unknown op '" + op + "'");
    }
    return rec;
}

} // namespace

WalReadResult
readWal(const std::string &path)
{
    WalReadResult out;
    std::ifstream in(path);
    if (!in) {
        // No log yet: an empty daemon, not an error.
        out.ok = true;
        return out;
    }
    std::string line;
    std::uint64_t lastSeq = 0;
    int lineNo = 0;
    while (std::getline(in, line)) {
        ++lineNo;
        if (line.empty())
            continue;
        WalRecord rec;
        try {
            rec = decodeWalRecord(line);
        } catch (const std::exception &e) {
            out.tornTail = true;
            out.error = "line " + std::to_string(lineNo) + ": " +
                        e.what();
            break;
        }
        // The first record's seq is the log's base (a log continued
        // after a snapshot superseded its stale predecessor starts
        // past 1); from there the sequence must be contiguous.
        if (!out.records.empty() && rec.seq != lastSeq + 1) {
            // A sequence break means everything from here on is
            // not the log the synced prefix promised.
            out.tornTail = true;
            out.error = "line " + std::to_string(lineNo) +
                        ": sequence break (expected " +
                        std::to_string(lastSeq + 1) + ", got " +
                        std::to_string(rec.seq) + ")";
            break;
        }
        lastSeq = rec.seq;
        out.records.push_back(std::move(rec));
    }
    out.ok = true;
    return out;
}

metrics::Registry &
WriteAheadLog::reg() const
{
    return registry_ != nullptr
               ? *registry_
               : engine::resolve(nullptr).metricsRegistry();
}

WriteAheadLog::~WriteAheadLog()
{
    close();
}

bool
WriteAheadLog::open(const std::string &path, std::uint64_t nextSeq,
                    std::string *err)
{
    close();
    fd_ = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
    if (fd_ < 0) {
        if (err)
            *err = "cannot open WAL '" + path + "' for append";
        return false;
    }
    nextSeq_ = nextSeq;
    failed_ = false;
    return true;
}

std::uint64_t
WriteAheadLog::append(const DaemonOp &op)
{
    WalRecord rec;
    rec.seq = nextSeq_++;
    rec.op = op;
    pending_ += encodeWalRecord(rec);
    pending_ += '\n';
    ++appended_;
    if (SRSIM_METRICS_ENABLED())
        reg().counter("server.wal_records").add(1);
    return rec.seq;
}

bool
WriteAheadLog::sync()
{
    if (failed_)
        return false;
    if (fd_ < 0 || pending_.empty())
        return true;
    const double t0 = trace::Tracer::nowWallUs();
    std::size_t off = 0;
    while (off < pending_.size()) {
        const ssize_t n = ::write(fd_, pending_.data() + off,
                                  pending_.size() - off);
        if (n < 0 && errno == EINTR)
            continue;
        if (n <= 0)
            break; // short device: records stay pending, retryable
        off += static_cast<std::size_t>(n);
    }
    if (off < pending_.size()) {
        pending_.erase(0, off);
        warn("WAL short write (", std::strerror(errno),
             "); records stay pending");
        return false;
    }
    pending_.clear();
    int rc;
    while ((rc = ::fsync(fd_)) != 0 && errno == EINTR) {
    }
    if (rc != 0) {
        // Dirty-page fate is unknown after a failed fsync; nothing
        // appended since the last good sync may be certified again.
        failed_ = true;
        warn("WAL fsync failed (", std::strerror(errno),
             "); log can no longer certify durability");
        return false;
    }
    ++fsyncs_;
    if (SRSIM_METRICS_ENABLED()) {
        metrics::Registry &r = reg();
        r.counter("server.wal_fsyncs").add(1);
        r.histogram("server.wal_fsync_us",
                    metrics::Histogram::timeBucketsUs())
            .add(trace::Tracer::nowWallUs() - t0);
    }
    return true;
}

void
WriteAheadLog::close()
{
    if (fd_ < 0)
        return;
    sync();
    ::close(fd_);
    fd_ = -1;
}

void
WriteAheadLog::crashForTest()
{
    if (fd_ < 0)
        return;
    pending_.clear();
    ::close(fd_);
    fd_ = -1;
}

} // namespace server
} // namespace srsim
