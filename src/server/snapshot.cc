#include "server/snapshot.hh"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iomanip>
#include <sstream>

#include "online/cache.hh"

namespace srsim {
namespace server {

namespace {

constexpr const char *kMagic = "srsim-daemon-snapshot v1";

/** Lines + an embedded raw block, with 17-digit double round-trip. */
class BodyWriter
{
  public:
    std::ostringstream os;

    BodyWriter() { os << std::setprecision(17); }

    template <typename... Ts>
    void
    line(Ts &&...parts)
    {
        (os << ... << parts);
        os << '\n';
    }
};

/** Cursor over the body; every getter reports failure via ok_. */
class BodyReader
{
  public:
    explicit BodyReader(const std::string &body) : body_(body) {}

    bool ok() const { return ok_; }
    const std::string &error() const { return error_; }

    /** Next line (without the newline); fails at end of body. */
    std::string
    nextLine()
    {
        if (!ok_)
            return {};
        const std::size_t nl = body_.find('\n', pos_);
        if (nl == std::string::npos) {
            fail("unexpected end of snapshot");
            return {};
        }
        std::string line = body_.substr(pos_, nl - pos_);
        pos_ = nl + 1;
        return line;
    }

    /** Raw block of exactly n bytes followed by a newline. */
    std::string
    rawBlock(std::size_t n)
    {
        if (!ok_)
            return {};
        if (pos_ + n + 1 > body_.size() || body_[pos_ + n] != '\n') {
            fail("truncated schedule block");
            return {};
        }
        std::string block = body_.substr(pos_, n);
        pos_ += n + 1;
        return block;
    }

    void
    fail(const std::string &what)
    {
        if (ok_) {
            ok_ = false;
            error_ = what;
        }
    }

  private:
    const std::string &body_;
    std::size_t pos_ = 0;
    bool ok_ = true;
    std::string error_;
};

/** Parse "<key> <payload...>"; fails on key mismatch. */
std::string
expectKey(BodyReader &r, const char *key)
{
    const std::string line = r.nextLine();
    if (!r.ok())
        return {};
    const std::string prefix = std::string(key) + " ";
    if (line.rfind(prefix, 0) != 0) {
        r.fail(std::string("expected '") + key + " ...', got '" +
               line + "'");
        return {};
    }
    return line.substr(prefix.size());
}

double
toNumber(BodyReader &r, const std::string &s)
{
    char *end = nullptr;
    const double v = std::strtod(s.c_str(), &end);
    if (!end || *end != '\0' || s.empty()) {
        r.fail("malformed number '" + s + "'");
        return 0.0;
    }
    return v;
}

/** Exact u64 parse — toNumber() would clip seeds above 2^53. */
std::uint64_t
toU64(BodyReader &r, const std::string &s)
{
    char *end = nullptr;
    const std::uint64_t v = std::strtoull(s.c_str(), &end, 10);
    if (!end || *end != '\0' || s.empty()) {
        r.fail("malformed integer '" + s + "'");
        return 0;
    }
    return v;
}

bool
writeFileDurably(const std::string &path, const std::string &bytes,
                 std::string *err)
{
    const int fd =
        ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd < 0) {
        *err = "cannot create '" + path + "'";
        return false;
    }
    std::size_t off = 0;
    while (off < bytes.size()) {
        const ssize_t n = ::write(fd, bytes.data() + off,
                                  bytes.size() - off);
        if (n <= 0) {
            ::close(fd);
            *err = "short write to '" + path + "'";
            return false;
        }
        off += static_cast<std::size_t>(n);
    }
    ::fsync(fd);
    ::close(fd);
    return true;
}

} // namespace

std::string
encodeSnapshot(const DaemonSnapshot &snap)
{
    BodyWriter w;
    w.line(kMagic);
    w.line("walseq ", snap.walSeq);
    w.line("sessions ", snap.sessions.size());
    for (const SessionSnapshot &s : snap.sessions) {
        const SessionConfig &c = s.cfg;
        w.line("session ", c.name);
        w.line("topo ", c.topo);
        w.line("tfgsrc ", c.tfg);
        w.line("openperiod ", c.period);
        w.line("bw ", c.bandwidth);
        w.line("ap ", c.apSpeed);
        w.line("alloc ", c.alloc);
        w.line("seed ", c.seed);
        w.line("cachesess ", c.cache ? 1 : 0);
        w.line("period ", s.period);
        w.line("tasks ", s.tasks.size());
        for (const SnapshotTask &t : s.tasks)
            w.line("task ", t.name, " ", t.operations, " ", t.node);
        w.line("messages ", s.messages.size());
        for (const SnapshotMessage &m : s.messages)
            w.line("message ", m.name, " ", m.src, " ", m.dst, " ",
                   m.bytes);
        w.line("schedule ", s.scheduleText.size());
        w.os << s.scheduleText;
        w.os << '\n';
    }
    w.line("cacheentries ", snap.cache.size());
    for (const SnapshotCacheEntry &e : snap.cache) {
        w.line("centry ", e.numSubsets, " ", e.peakUtilization,
               " ", e.key.size(), " ", e.scheduleText.size());
        w.os << e.key;
        w.os << '\n';
        w.os << e.scheduleText;
        w.os << '\n';
    }
    w.line("end");
    return w.os.str();
}

bool
decodeSnapshot(const std::string &body, DaemonSnapshot *snap,
               std::string *err)
{
    BodyReader r(body);
    const auto bail = [&]() {
        *err = r.error();
        return false;
    };

    if (r.nextLine() != kMagic) {
        r.fail("bad magic (expected '" + std::string(kMagic) + "')");
        return bail();
    }
    snap->walSeq = toU64(r, expectKey(r, "walseq"));
    const double nSessions = toNumber(r, expectKey(r, "sessions"));
    if (!r.ok() || nSessions < 0 || nSessions > 1e6) {
        r.fail("implausible session count");
        return bail();
    }
    snap->sessions.clear();
    for (int i = 0; i < static_cast<int>(nSessions); ++i) {
        SessionSnapshot s;
        s.cfg.name = expectKey(r, "session");
        s.cfg.topo = expectKey(r, "topo");
        s.cfg.tfg = expectKey(r, "tfgsrc");
        s.cfg.period = toNumber(r, expectKey(r, "openperiod"));
        s.cfg.bandwidth = toNumber(r, expectKey(r, "bw"));
        s.cfg.apSpeed = toNumber(r, expectKey(r, "ap"));
        s.cfg.alloc = expectKey(r, "alloc");
        s.cfg.seed = toU64(r, expectKey(r, "seed"));
        s.cfg.cache =
            toNumber(r, expectKey(r, "cachesess")) != 0.0;
        s.period = toNumber(r, expectKey(r, "period"));
        const double nTasks = toNumber(r, expectKey(r, "tasks"));
        if (!r.ok() || nTasks < 0 || nTasks > 1e6) {
            r.fail("implausible task count");
            return bail();
        }
        for (int t = 0; t < static_cast<int>(nTasks); ++t) {
            std::istringstream ls(expectKey(r, "task"));
            SnapshotTask st;
            if (!(ls >> st.name >> st.operations >> st.node)) {
                r.fail("malformed task row");
                return bail();
            }
            s.tasks.push_back(std::move(st));
        }
        const double nMsgs = toNumber(r, expectKey(r, "messages"));
        if (!r.ok() || nMsgs < 0 || nMsgs > 1e6) {
            r.fail("implausible message count");
            return bail();
        }
        for (int m = 0; m < static_cast<int>(nMsgs); ++m) {
            std::istringstream ls(expectKey(r, "message"));
            SnapshotMessage sm;
            if (!(ls >> sm.name >> sm.src >> sm.dst >> sm.bytes)) {
                r.fail("malformed message row");
                return bail();
            }
            s.messages.push_back(std::move(sm));
        }
        const double schedLen =
            toNumber(r, expectKey(r, "schedule"));
        if (!r.ok() || schedLen < 0 || schedLen > 1e9) {
            r.fail("implausible schedule length");
            return bail();
        }
        s.scheduleText =
            r.rawBlock(static_cast<std::size_t>(schedLen));
        if (!r.ok())
            return bail();
        snap->sessions.push_back(std::move(s));
    }
    const double nCache = toNumber(r, expectKey(r, "cacheentries"));
    if (!r.ok() || nCache < 0 || nCache > 1e6) {
        r.fail("implausible cache-entry count");
        return bail();
    }
    snap->cache.clear();
    for (int c = 0; c < static_cast<int>(nCache); ++c) {
        std::istringstream ls(expectKey(r, "centry"));
        SnapshotCacheEntry e;
        double keyLen = 0.0, schedLen = 0.0;
        if (!(ls >> e.numSubsets >> e.peakUtilization >> keyLen >>
              schedLen) ||
            keyLen < 0 || keyLen > 1e9 || schedLen < 0 ||
            schedLen > 1e9) {
            r.fail("malformed cache-entry header");
            return bail();
        }
        e.key = r.rawBlock(static_cast<std::size_t>(keyLen));
        e.scheduleText =
            r.rawBlock(static_cast<std::size_t>(schedLen));
        if (!r.ok())
            return bail();
        snap->cache.push_back(std::move(e));
    }
    if (r.nextLine() != "end") {
        r.fail("missing end trailer");
        return bail();
    }
    return r.ok() ? true : bail();
}

bool
writeSnapshotFile(const std::string &dir,
                  const DaemonSnapshot &snap, std::string *pathOut,
                  std::string *err)
{
    const std::string body = encodeSnapshot(snap);
    const std::uint64_t hash = online::fnv1a64(body);
    std::ostringstream name;
    name << "snap-" << snap.walSeq << "-" << std::hex
         << std::setw(16) << std::setfill('0') << hash << ".snap";
    const std::filesystem::path finalPath =
        std::filesystem::path(dir) / name.str();
    const std::filesystem::path tmpPath =
        std::filesystem::path(dir) / (name.str() + ".tmp");

    if (!writeFileDurably(tmpPath.string(), body, err))
        return false;
    std::error_code ec;
    std::filesystem::rename(tmpPath, finalPath, ec);
    if (ec) {
        *err = "cannot rename '" + tmpPath.string() + "': " +
               ec.message();
        return false;
    }
    // Make the rename itself durable.
    const int dfd = ::open(dir.c_str(), O_RDONLY);
    if (dfd >= 0) {
        ::fsync(dfd);
        ::close(dfd);
    }
    if (pathOut)
        *pathOut = finalPath.string();
    return true;
}

std::vector<SnapshotFileInfo>
listSnapshots(const std::string &dir)
{
    std::vector<SnapshotFileInfo> out;
    std::error_code ec;
    for (const auto &entry :
         std::filesystem::directory_iterator(dir, ec)) {
        const std::string fn = entry.path().filename().string();
        std::uint64_t seq = 0;
        char hashHex[17] = {0};
        // snap-<walseq>-<16-hex>.snap  (SCNu64: %lu would be UB on
        // LLP64/32-bit targets where unsigned long is 32 bits)
        if (std::sscanf(fn.c_str(),
                        "snap-%" SCNu64 "-%16[0-9a-f].snap", &seq,
                        hashHex) != 2)
            continue;
        if (fn != "snap-" + std::to_string(seq) + "-" +
                      std::string(hashHex) + ".snap")
            continue;
        SnapshotFileInfo info;
        info.path = entry.path().string();
        info.walSeq = seq;
        info.hash = std::strtoull(hashHex, nullptr, 16);
        out.push_back(std::move(info));
    }
    std::sort(out.begin(), out.end(),
              [](const SnapshotFileInfo &a,
                 const SnapshotFileInfo &b) {
                  return a.walSeq > b.walSeq;
              });
    return out;
}

bool
loadSnapshotFile(const SnapshotFileInfo &info, DaemonSnapshot *snap,
                 std::string *err)
{
    std::ifstream in(info.path, std::ios::binary);
    if (!in) {
        *err = "cannot open '" + info.path + "'";
        return false;
    }
    std::ostringstream os;
    os << in.rdbuf();
    const std::string body = os.str();
    if (online::fnv1a64(body) != info.hash) {
        *err = "content hash mismatch for '" + info.path + "'";
        return false;
    }
    if (!decodeSnapshot(body, snap, err)) {
        *err = "'" + info.path + "': " + *err;
        return false;
    }
    if (snap->walSeq != info.walSeq) {
        *err = "'" + info.path + "': walseq disagrees with name";
        return false;
    }
    return true;
}

} // namespace server
} // namespace srsim
