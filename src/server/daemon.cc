#include "server/daemon.hh"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <unordered_map>

#include "core/schedule_io.hh"
#include "engine/context.hh"
#include "metrics/metrics.hh"
#include "tfg/dvb.hh"
#include "tfg/tfg_io.hh"
#include "topology/factory.hh"
#include "trace/trace.hh"
#include "util/logging.hh"

namespace srsim {
namespace server {

namespace {

void
bump(metrics::Registry &reg, const char *name, std::uint64_t n = 1)
{
    if (SRSIM_METRICS_ENABLED())
        reg.counter(name).add(n);
}

std::string
walPath(const std::string &stateDir)
{
    return (std::filesystem::path(stateDir) / "wal.jsonl").string();
}

/** Workload of an open line: the dvb builtin or a TFG file. */
TaskFlowGraph
buildWorkload(const SessionConfig &sc)
{
    if (sc.tfg == "dvb")
        return buildDvbTfg(DvbParams{});
    std::ifstream in(sc.tfg);
    if (!in)
        fatal("cannot open TFG file '", sc.tfg, "'");
    return readTfg(in);
}

TimingModel
effectiveTiming(const SessionConfig &sc)
{
    TimingModel tm;
    tm.bandwidth = sc.bandwidth;
    if (sc.apSpeed > 0.0)
        tm.apSpeed = sc.apSpeed;
    else
        tm.apSpeed =
            sc.tfg == "dvb" ? DvbParams{}.matchedApSpeed() : 1.0;
    return tm;
}

TaskAllocation
buildAllocation(const SessionConfig &sc, const TaskFlowGraph &g,
                const Topology &topo)
{
    if (sc.alloc == "greedy")
        return alloc::greedy(g, topo);
    if (sc.alloc == "random") {
        Rng rng(sc.seed);
        return alloc::random(g, topo, rng);
    }
    if (sc.alloc.rfind("rr:", 0) == 0)
        return alloc::roundRobin(g, topo,
                                 std::stoi(sc.alloc.substr(3)));
    fatal("unknown alloc kind '", sc.alloc, "'");
}

} // namespace

std::shared_ptr<engine::EngineContext>
SchedulingDaemon::makeSessionContext(const SessionConfig &sc) const
{
    engine::ChildOptions co;
    co.name = "session." + sc.name;
    co.threads = sc.threads;
    co.baseSeed = sc.seed;
    if (sc.solver == "dense")
        co.solverKind = lp::SolverKind::Dense;
    else if (sc.solver == "sparse")
        co.solverKind = lp::SolverKind::Sparse;
    else if (!sc.solver.empty())
        fatal("unknown session solver kind '", sc.solver,
              "' (expected dense or sparse)");
    return root_->createChild(co);
}

void
SchedulingDaemon::registerSessionCtxLocked(
    const std::string &name,
    std::shared_ptr<engine::EngineContext> ctx)
{
    if (!sessionCtxs_.count(name))
        sessionCtxOrder_.push_back(name);
    sessionCtxs_[name] = std::move(ctx);
}

const char *
daemonOutcomeName(DaemonOutcome o)
{
    switch (o) {
      case DaemonOutcome::Ok: return "ok";
      case DaemonOutcome::Overloaded: return "overloaded";
      case DaemonOutcome::DeadlineExpired:
          return "deadline-expired";
      case DaemonOutcome::UnknownSession: return "unknown-session";
      case DaemonOutcome::DuplicateSession:
          return "duplicate-session";
      case DaemonOutcome::InvalidConfig: return "invalid-config";
      case DaemonOutcome::ShuttingDown: return "shutting-down";
    }
    return "unknown";
}

SchedulingDaemon::SchedulingDaemon(DaemonConfig cfg)
    : cfg_(std::move(cfg)),
      root_(&engine::resolve(cfg_.ctx)),
      cache_(std::make_shared<online::ScheduleCache>(
          cfg_.cacheCapacity == 0 ? 1 : cfg_.cacheCapacity,
          &root_->metricsRegistry()))
{
    if (cfg_.workers == 0)
        cfg_.workers = 1;
    if (cfg_.walSyncEvery == 0)
        cfg_.walSyncEvery = 1;
    wal_.setRegistry(&root_->metricsRegistry());
    if (!cfg_.stateDir.empty())
        runRecovery();
    // Workers exist only after recovery: recovery is deliberately
    // single-threaded so replay order equals WAL order.
    pool_ = std::make_unique<ThreadPool>(cfg_.workers);
}

SchedulingDaemon::~SchedulingDaemon()
{
    shutdown();
    // Join the workers before any other member is destroyed: a
    // drain task can still be between its last queue pop and its
    // final `sessions_` lookup after drain() saw the queues empty,
    // and members declared after pool_ would otherwise be freed
    // under it.
    pool_.reset();
}

std::unique_ptr<online::OnlineScheduler>
SchedulingDaemon::buildService(const SessionConfig &sc, Time period,
                               const engine::EngineContext *ctx) const
{
    TaskFlowGraph g = buildWorkload(sc);
    auto topo = makeTopology(sc.topo);
    const TimingModel tm = effectiveTiming(sc);
    const TaskAllocation alloc = buildAllocation(sc, g, *topo);
    online::OnlineSchedulerConfig ocfg;
    ocfg.compiler.ctx = ctx;
    ocfg.compiler.inputPeriod = period;
    ocfg.compiler.assign.seed = sc.seed;
    ocfg.cacheCapacity =
        (sc.cache && cfg_.cacheCapacity > 0) ? cfg_.cacheCapacity
                                             : 0;
    ocfg.sharedCache = cache_;
    return std::make_unique<online::OnlineScheduler>(
        std::move(g), std::move(topo), alloc, tm, ocfg);
}

// -- Durability ---------------------------------------------------

void
SchedulingDaemon::walAppend(const DaemonOp &op)
{
    std::lock_guard<std::mutex> lock(walMu_);
    if (!wal_.isOpen())
        return;
    wal_.append(op);
    ++acceptedSinceSnapshot_;
    // On a failed sync the records stay pending (or the log is
    // marked failed): keep counting so the next append retries.
    if (++unsynced_ >= cfg_.walSyncEvery && wal_.sync())
        unsynced_ = 0;
}

void
SchedulingDaemon::maybeSnapshotLocked()
{
    if (cfg_.stateDir.empty() || cfg_.snapshotEvery == 0)
        return;
    if (queued_ != 0 || executing_ != 0)
        return; // only quiescent states are snapshot-consistent
    {
        std::lock_guard<std::mutex> wlock(walMu_);
        if (acceptedSinceSnapshot_ < cfg_.snapshotEvery)
            return;
    }
    writeSnapshotLocked();
}

void
SchedulingDaemon::writeSnapshotLocked()
{
    if (cfg_.stateDir.empty())
        return;
    trace::ScopedPhase phase("server_snapshot", root_->tracer(),
                             root_->metricsRegistry());
    std::lock_guard<std::mutex> wlock(walMu_);
    if (!wal_.isOpen())
        return; // crashed or already shut down
    // The image must not be ahead of durable history: a snapshot
    // certifies every record up to its walSeq, so if the WAL cannot
    // be made durable the snapshot must not be taken (it would
    // certify records a crash can still lose, and the reopened log
    // would then carry a sequence gap).
    if (!wal_.sync()) {
        warn("snapshot skipped: WAL is not durable");
        return;
    }
    unsynced_ = 0;

    DaemonSnapshot snap;
    snap.walSeq = wal_.nextSeq() - 1;
    std::vector<const Session *> ordered;
    for (const auto &[name, s] : sessions_) {
        // An in-flight open() parks a placeholder with no service
        // (and no WAL record yet): not part of state at walSeq.
        if (!s.svc)
            continue;
        ordered.push_back(&s);
    }
    std::sort(ordered.begin(), ordered.end(),
              [](const Session *a, const Session *b) {
                  return a->openIndex < b->openIndex;
              });
    for (const Session *s : ordered) {
        const auto st = s->svc->published();
        SessionSnapshot ss;
        ss.cfg = s->cfg;
        ss.period = s->svc->currentPeriod();
        const TaskFlowGraph &g = st->g;
        const TaskAllocation &alloc = s->svc->allocation();
        for (const Task &t : g.tasks())
            ss.tasks.push_back(
                {t.name, t.operations, alloc.nodeOf(t.id)});
        for (const Message &m : g.messages())
            ss.messages.push_back({m.name, g.task(m.src).name,
                                   g.task(m.dst).name, m.bytes});
        std::ostringstream os;
        writeSchedule(os, st->omega);
        ss.scheduleText = os.str();
        snap.sessions.push_back(std::move(ss));
    }
    for (const online::ScheduleCache::DumpedEntry &de :
         cache_->dumpForSnapshot()) {
        SnapshotCacheEntry e;
        e.key = de.key;
        std::ostringstream os;
        writeSchedule(os, de.entry.omega);
        e.scheduleText = os.str();
        e.numSubsets = de.entry.numSubsets;
        e.peakUtilization = de.entry.peakUtilization;
        snap.cache.push_back(std::move(e));
    }

    std::string path, err;
    if (!writeSnapshotFile(cfg_.stateDir, snap, &path, &err)) {
        // A failed snapshot costs recovery time, not correctness:
        // the WAL still has everything.
        warn("snapshot failed: ", err);
        return;
    }
    acceptedSinceSnapshot_ = 0;
    ++snapshots_;
    bump(root_->metricsRegistry(), "server.snapshots");
}

// -- Recovery -----------------------------------------------------

bool
SchedulingDaemon::restoreFromSnapshot(const DaemonSnapshot &snap,
                                      std::string *why)
{
    std::map<std::string, Session> restored;
    // Fabrics by display name, for validating cache entries below
    // (cache keys carry the fabric's name, not its build spec).
    std::map<std::string, std::unique_ptr<Topology>> topoByName;
    std::uint64_t openIndex = 0;
    for (const SessionSnapshot &ss : snap.sessions) {
        auto topo = makeTopology(ss.cfg.topo);
        if (!topoByName.count(topo->name()))
            topoByName.emplace(topo->name(),
                               makeTopology(ss.cfg.topo));
        TaskFlowGraph g;
        std::unordered_map<std::string, TaskId> taskIds;
        TaskAllocation alloc(static_cast<int>(ss.tasks.size()),
                             topo->numNodes());
        for (const SnapshotTask &t : ss.tasks) {
            const TaskId id = g.addTask(t.name, t.operations);
            taskIds[t.name] = id;
            alloc.assign(id, t.node);
        }
        for (const SnapshotMessage &m : ss.messages) {
            const auto si = taskIds.find(m.src);
            const auto di = taskIds.find(m.dst);
            if (si == taskIds.end() || di == taskIds.end()) {
                *why = "session '" + ss.cfg.name +
                       "': message endpoints missing";
                return false;
            }
            g.addMessage(m.name, si->second, di->second, m.bytes);
        }
        std::istringstream sin(ss.scheduleText);
        const ScheduleReadResult sched =
            tryReadSchedule(sin, *topo);
        if (!sched.ok) {
            *why = "session '" + ss.cfg.name +
                   "': " + sched.error;
            return false;
        }

        std::shared_ptr<engine::EngineContext> sctx;
        try {
            sctx = makeSessionContext(ss.cfg);
        } catch (const FatalError &e) {
            *why = "session '" + ss.cfg.name + "': " + e.what();
            return false;
        }
        online::OnlineSchedulerConfig ocfg;
        ocfg.compiler.ctx = sctx.get();
        ocfg.compiler.inputPeriod = ss.period;
        ocfg.compiler.assign.seed = ss.cfg.seed;
        ocfg.cacheCapacity =
            (ss.cfg.cache && cfg_.cacheCapacity > 0)
                ? cfg_.cacheCapacity
                : 0;
        ocfg.sharedCache = cache_;
        auto svc = std::make_unique<online::OnlineScheduler>(
            std::move(g), std::move(topo), alloc,
            effectiveTiming(ss.cfg), ocfg);
        const online::RequestResult res =
            svc->restore(sched.omega, sched.omega.faultSpec);
        if (!res.accepted) {
            *why = "session '" + ss.cfg.name +
                   "': restore rejected (" +
                   online::rejectReasonName(res.reason) +
                   "): " + res.detail;
            return false;
        }
        Session s;
        s.cfg = ss.cfg;
        s.ctx = std::move(sctx);
        s.svc = std::move(svc);
        s.openIndex = openIndex++;
        restored.emplace(ss.cfg.name, std::move(s));
    }

    // Stage the cache image before touching the shared cache: a
    // rejected snapshot must not pollute the cache the next
    // candidate (or the full replay) runs against. Each entry is
    // validated against the fabric its key's `topo=<name>;` prefix
    // names; an entry whose fabric no restored session uses is
    // skipped (only a fabric some live session runs on can ever be
    // looked up again, short of replayed re-opens).
    std::vector<
        std::pair<std::string, online::ScheduleCache::Entry>>
        seeds;
    for (const SnapshotCacheEntry &e : snap.cache) {
        if (e.key.rfind("topo=", 0) != 0) {
            *why = "cache entry key lacks a topo prefix";
            return false;
        }
        const std::size_t semi = e.key.find(';');
        if (semi == std::string::npos) {
            *why = "malformed cache entry key";
            return false;
        }
        const auto ti = topoByName.find(e.key.substr(5, semi - 5));
        if (ti == topoByName.end())
            continue;
        std::istringstream sin(e.scheduleText);
        ScheduleReadResult sched =
            tryReadSchedule(sin, *ti->second);
        if (!sched.ok) {
            *why = "cache entry schedule: " + sched.error;
            return false;
        }
        online::ScheduleCache::Entry entry;
        entry.omega = std::move(sched.omega);
        entry.numSubsets =
            static_cast<std::size_t>(e.numSubsets);
        entry.peakUtilization = e.peakUtilization;
        seeds.emplace_back(e.key, std::move(entry));
    }

    sessions_ = std::move(restored);
    nextOpenIndex_ = openIndex;
    // Only a *committed* restore registers its contexts: a rejected
    // candidate must leave no per-session registries behind.
    for (auto &[name, s] : sessions_)
        registerSessionCtxLocked(name, s.ctx);
    // Re-seed least-recently-used first so the LRU order (and so
    // future evictions) match the image.
    for (auto it = seeds.rbegin(); it != seeds.rend(); ++it)
        cache_->insert(it->first, std::move(it->second));
    return true;
}

bool
SchedulingDaemon::replayOp(const DaemonOp &op, RecoveryResult &rr)
{
    switch (op.kind) {
      case DaemonOp::Kind::Open: {
          if (sessions_.count(op.session)) {
              ++rr.replayRejected;
              return false;
          }
          std::unique_ptr<online::OnlineScheduler> svc;
          std::shared_ptr<engine::EngineContext> sctx;
          try {
              sctx = makeSessionContext(op.open);
              svc = buildService(op.open, op.open.period,
                                 sctx.get());
          } catch (const FatalError &) {
              ++rr.replayRejected;
              return false;
          }
          if (!svc->start().accepted) {
              ++rr.replayRejected;
              return false;
          }
          Session s;
          s.cfg = op.open;
          s.ctx = sctx;
          s.svc = std::move(svc);
          s.openIndex = nextOpenIndex_++;
          registerSessionCtxLocked(op.session, std::move(sctx));
          sessions_.emplace(op.session, std::move(s));
          return true;
      }
      case DaemonOp::Kind::Close:
          if (sessions_.erase(op.session) == 0) {
              ++rr.replayRejected;
              return false;
          }
          return true;
      case DaemonOp::Kind::Request: {
          const auto it = sessions_.find(op.session);
          if (it == sessions_.end()) {
              ++rr.replayRejected;
              return false;
          }
          online::RequestResult res;
          try {
              res = it->second.svc->process(op.request);
          } catch (const FatalError &) {
              res.accepted = false;
          }
          if (!res.accepted) {
              ++rr.replayRejected;
              return false;
          }
          return true;
      }
    }
    return false;
}

void
SchedulingDaemon::runRecovery()
{
    recovery_.attempted = true;
    std::error_code ec;
    std::filesystem::create_directories(cfg_.stateDir, ec);
    if (ec)
        fatal("cannot create state dir '", cfg_.stateDir,
              "': ", ec.message());

    const std::string wpath = walPath(cfg_.stateDir);
    const WalReadResult wr = readWal(wpath);
    if (!wr.ok)
        fatal("cannot read WAL '", wpath, "': ", wr.error);
    recovery_.walRecords = wr.records.size();
    recovery_.walTornTail = wr.tornTail;

    // A torn tail means the file ends in garbage; appending after
    // it would corrupt the log, so rewrite the intact prefix first.
    if (wr.tornTail) {
        std::ostringstream body;
        for (const WalRecord &rec : wr.records)
            body << encodeWalRecord(rec) << '\n';
        std::string err;
        const std::string tmp = wpath + ".tmp";
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        out << body.str();
        out.close();
        std::filesystem::rename(tmp, wpath, ec);
        if (ec)
            fatal("cannot rewrite torn WAL '", wpath,
                  "': ", ec.message());
    }

    const std::uint64_t lastWalSeq =
        wr.records.empty() ? 0 : wr.records.back().seq;
    const std::uint64_t firstWalSeq =
        wr.records.empty() ? 0 : wr.records.front().seq;

    // Newest intact + certifying snapshot wins; anything less falls
    // back to the next one, and ultimately to a full replay. A log
    // whose first record is past seq 1 (its predecessor was retired
    // below) is only replayable on top of a snapshot that certifies
    // at least firstWalSeq-1 — older images cannot bridge the gap.
    std::uint64_t fromSeq = 0;
    for (const SnapshotFileInfo &info :
         listSnapshots(cfg_.stateDir)) {
        if (info.walSeq + 1 < firstWalSeq) {
            recovery_.rejectedSnapshots.push_back(
                info.path + ": certifies seq " +
                std::to_string(info.walSeq) +
                " but the WAL starts at seq " +
                std::to_string(firstWalSeq));
            continue;
        }
        DaemonSnapshot snap;
        std::string err;
        if (!loadSnapshotFile(info, &snap, &err) ||
            !restoreFromSnapshot(snap, &err)) {
            recovery_.rejectedSnapshots.push_back(info.path + ": " +
                                                  err);
            sessions_.clear();
            nextOpenIndex_ = 0;
            continue;
        }
        recovery_.snapshotPath = info.path;
        recovery_.snapshotSeq = snap.walSeq;
        fromSeq = snap.walSeq;
        break;
    }
    if (fromSeq + 1 < firstWalSeq)
        fatal("state dir '", cfg_.stateDir,
              "' is unrecoverable: the WAL starts at seq ",
              firstWalSeq, " and no intact snapshot certifies seq ",
              firstWalSeq - 1);

    for (const WalRecord &rec : wr.records) {
        if (rec.seq <= fromSeq)
            continue;
        ++recovery_.replayed;
        replayOp(rec.op, recovery_);
    }
    recovery_.sessionsRestored = sessions_.size();

    // A snapshot may certify records the log no longer has (a state
    // dir damaged after the fact). Appending at fromSeq+1 would
    // then write a sequence gap after lastWalSeq, and the *next*
    // recovery would discard everything past the gap as a torn
    // tail. Every certified record's effect lives in the restored
    // snapshot, so the stale log is redundant: retire it and let
    // the reopened log start fresh at the snapshot's sequence.
    if (fromSeq > lastWalSeq &&
        std::filesystem::exists(wpath)) {
        std::filesystem::rename(wpath, wpath + ".stale", ec);
        if (ec)
            fatal("cannot retire stale WAL '", wpath,
                  "': ", ec.message());
    }

    std::string err;
    if (!wal_.open(wpath, std::max(lastWalSeq, fromSeq) + 1, &err))
        fatal(err);
}

// -- Control plane ------------------------------------------------

DaemonResponse
SchedulingDaemon::open(const SessionConfig &sc)
{
    DaemonResponse resp;
    resp.session = sc.name;
    resp.kind = "open";
    {
        std::lock_guard<std::mutex> lock(mu_);
        resp.id = nextId_++;
        if (shutdown_) {
            resp.outcome = DaemonOutcome::ShuttingDown;
            return resp;
        }
        if (sessions_.count(sc.name)) {
            resp.outcome = DaemonOutcome::DuplicateSession;
            resp.detail =
                "session '" + sc.name + "' is already open";
            return resp;
        }
        // Reserve the name; active=true parks any request that is
        // submitted while the initial compile runs below.
        Session s;
        s.cfg = sc;
        s.active = true;
        s.openIndex = nextOpenIndex_++;
        sessions_.emplace(sc.name, std::move(s));
    }

    std::unique_ptr<online::OnlineScheduler> svc;
    std::shared_ptr<engine::EngineContext> sctx;
    online::RequestResult first;
    std::string configError;
    try {
        sctx = makeSessionContext(sc);
        svc = buildService(sc, sc.period, sctx.get());
        first = svc->start();
    } catch (const FatalError &e) {
        configError = e.what();
    }

    const bool ok = configError.empty() && first.accepted;
    bool kick = false;
    bool closedOut = false;
    {
        std::lock_guard<std::mutex> lock(mu_);
        closedOut = shutdown_;
        auto it = sessions_.find(sc.name);
        if (ok && !closedOut) {
            it->second.ctx = sctx;
            it->second.svc = std::move(svc);
            registerSessionCtxLocked(sc.name, std::move(sctx));
            // WAL order must equal publication order: append the
            // Open while the lock still parks this session's first
            // request (its worker only starts below) and blocks
            // snapshots, so no Request or image can be sequenced
            // ahead of it.
            DaemonOp op;
            op.kind = DaemonOp::Kind::Open;
            op.session = sc.name;
            op.open = sc;
            walAppend(op);
            it->second.active = false;
            kick = !it->second.pending.empty() && !paused_;
            if (kick)
                it->second.active = true;
        } else {
            // Failed opens leave no session (and no WAL record);
            // anything queued meanwhile dies with it.
            for (auto &job : it->second.pending) {
                DaemonResponse dead;
                dead.id = job->id;
                dead.session = sc.name;
                dead.kind = job->kind;
                dead.outcome = DaemonOutcome::UnknownSession;
                dead.detail = "session open failed";
                --queued_;
                job->promise.set_value(std::move(dead));
            }
            sessions_.erase(it);
            setQueueGaugeLocked();
        }
    }
    metrics::Registry &reg = root_->metricsRegistry();
    if (!configError.empty()) {
        resp.outcome = DaemonOutcome::InvalidConfig;
        resp.detail = configError;
        bump(reg, "server.rejected");
        return resp;
    }
    if (closedOut) {
        // Shutdown began while the initial compile ran: the final
        // snapshot has been (or is being) taken without this
        // session, so it must not come alive after it.
        resp.outcome = DaemonOutcome::ShuttingDown;
        bump(reg, "server.rejected");
        return resp;
    }
    resp.result = first;
    if (ok) {
        bump(reg, "server.opens");
        bump(reg, "server.accepted");
    } else {
        bump(reg, "server.rejected");
    }
    if (kick) {
        const std::string name = sc.name;
        pool_->submit([this, name] { drainSession(name); });
    }
    idleCv_.notify_all();
    return resp;
}

DaemonResponse
SchedulingDaemon::close(const std::string &session)
{
    DaemonResponse resp;
    resp.session = session;
    resp.kind = "close";
    {
        std::unique_lock<std::mutex> lock(mu_);
        resp.id = nextId_++;
        const auto it = sessions_.find(session);
        if (it == sessions_.end()) {
            resp.outcome = DaemonOutcome::UnknownSession;
            resp.detail = "session '" + session + "' is not open";
            return resp;
        }
        // Earlier requests keep their submission-order slot: wait
        // for this session's queue to drain before closing. (While
        // paused, parked requests would wait forever — resume
        // first.)
        idleCv_.wait(lock, [&] {
            const auto i2 = sessions_.find(session);
            return i2 == sessions_.end() ||
                   (i2->second.pending.empty() &&
                    !i2->second.active);
        });
        if (sessions_.erase(session) == 0) {
            resp.outcome = DaemonOutcome::UnknownSession;
            resp.detail = "session '" + session +
                          "' closed concurrently";
            return resp;
        }
        // Log the Close before releasing the lock: a concurrent
        // re-open of the same name must be sequenced after it.
        DaemonOp op;
        op.kind = DaemonOp::Kind::Close;
        op.session = session;
        walAppend(op);
    }
    bump(root_->metricsRegistry(), "server.closes");
    return resp;
}

// -- Data plane ---------------------------------------------------

void
SchedulingDaemon::setQueueGaugeLocked()
{
    if (SRSIM_METRICS_ENABLED())
        root_->metricsRegistry().gauge("server.queue_depth")
            .set(static_cast<double>(queued_));
}

std::future<DaemonResponse>
SchedulingDaemon::submit(const std::string &session,
                         online::Request r)
{
    auto job = std::make_unique<Job>();
    job->req = std::move(r);
    job->kind = online::requestKindName(job->req.kind);
    std::future<DaemonResponse> fut = job->promise.get_future();

    DaemonResponse reject;
    reject.session = session;
    reject.kind = job->kind;

    bool startWorker = false;
    {
        std::lock_guard<std::mutex> lock(mu_);
        reject.id = job->id = nextId_++;
        bump(root_->metricsRegistry(), "server.requests");
        if (shutdown_) {
            reject.outcome = DaemonOutcome::ShuttingDown;
            job->promise.set_value(std::move(reject));
            return fut;
        }
        const auto it = sessions_.find(session);
        if (it == sessions_.end()) {
            reject.outcome = DaemonOutcome::UnknownSession;
            reject.detail =
                "session '" + session + "' is not open";
            job->promise.set_value(std::move(reject));
            return fut;
        }
        if (queued_ >= cfg_.queueCap) {
            // Backpressure: never block, never abort — tell the
            // caller to retry later.
            reject.outcome = DaemonOutcome::Overloaded;
            reject.detail = "queue full (cap " +
                            std::to_string(cfg_.queueCap) + ")";
            bump(root_->metricsRegistry(), "server.overloaded");
            job->promise.set_value(std::move(reject));
            return fut;
        }
        job->enqueueUs = trace::Tracer::nowWallUs();
        if (cfg_.deadlineMs > 0.0)
            job->deadlineUs =
                job->enqueueUs + cfg_.deadlineMs * 1000.0;
        Session &s = it->second;
        s.pending.push_back(std::move(job));
        ++queued_;
        setQueueGaugeLocked();
        if (!s.active && !paused_) {
            s.active = true;
            startWorker = true;
        }
    }
    if (startWorker)
        pool_->submit([this, session] { drainSession(session); });
    return fut;
}

void
SchedulingDaemon::finishJob(Session &s, Job &job)
{
    DaemonResponse resp;
    resp.id = job.id;
    resp.session = s.cfg.name;
    resp.kind = job.kind;
    const engine::EngineContext &ectx = engine::resolve(s.ctx.get());
    const double pickedUs = trace::Tracer::nowWallUs();
    resp.queueMs = (pickedUs - job.enqueueUs) / 1000.0;
    if (SRSIM_METRICS_ENABLED())
        root_->metricsRegistry()
            .histogram("server.queue_wait_us",
                       metrics::Histogram::timeBucketsUs())
            .add(pickedUs - job.enqueueUs);

    if (job.deadlineUs > 0.0 && pickedUs > job.deadlineUs) {
        resp.outcome = DaemonOutcome::DeadlineExpired;
        resp.detail = "queued " + std::to_string(resp.queueMs) +
                      " ms past its deadline";
        bump(root_->metricsRegistry(), "server.deadline_expired");
        job.promise.set_value(std::move(resp));
        return;
    }

    trace::ScopedPhase phase("server_request", ectx.tracer(),
                             ectx.metricsRegistry());
    try {
        resp.result = s.svc->process(job.req);
    } catch (const FatalError &e) {
        resp.result.accepted = false;
        resp.result.reason = online::RejectReason::InvalidRequest;
        resp.result.detail = e.what();
    }
    if (resp.result.accepted) {
        DaemonOp op;
        op.kind = DaemonOp::Kind::Request;
        op.session = s.cfg.name;
        op.request = job.req;
        walAppend(op);
        bump(root_->metricsRegistry(), "server.accepted");
    } else {
        bump(root_->metricsRegistry(), "server.rejected");
    }
    // The session's registry writes through to the root aggregate,
    // so this per-session histogram lands in both.
    if (job.req.kind == online::RequestKind::AdmitMessage &&
        SRSIM_METRICS_ENABLED())
        ectx.metricsRegistry()
            .histogram("server.session." + s.cfg.name +
                           ".admit_latency_us",
                       metrics::Histogram::timeBucketsUs())
            .add(resp.result.latencyMs * 1000.0);
    job.promise.set_value(std::move(resp));
}

void
SchedulingDaemon::drainSession(const std::string &name)
{
    for (;;) {
        std::unique_ptr<Job> job;
        Session *s = nullptr;
        {
            std::lock_guard<std::mutex> lock(mu_);
            const auto it = sessions_.find(name);
            if (it == sessions_.end())
                return;
            s = &it->second;
            if (paused_ || s->pending.empty()) {
                s->active = false;
                idleCv_.notify_all();
                return;
            }
            job = std::move(s->pending.front());
            s->pending.pop_front();
            --queued_;
            ++executing_;
            setQueueGaugeLocked();
        }
        // Process outside the daemon lock: distinct sessions run
        // in parallel; this session stays serialized because only
        // this (active) worker pops its queue. `s` stays valid:
        // close() waits for active to clear.
        finishJob(*s, *job);
        {
            std::lock_guard<std::mutex> lock(mu_);
            --executing_;
            maybeSnapshotLocked();
            idleCv_.notify_all();
        }
    }
}

// -- Lifecycle ----------------------------------------------------

void
SchedulingDaemon::drain()
{
    {
        std::unique_lock<std::mutex> lock(mu_);
        idleCv_.wait(lock, [&] {
            return queued_ == 0 && executing_ == 0;
        });
    }
    std::lock_guard<std::mutex> wlock(walMu_);
    if (wal_.sync())
        unsynced_ = 0;
}

void
SchedulingDaemon::shutdown()
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        if (shutdown_)
            return;
        // Stop admission before draining: nothing may slip in
        // between the drain and the final snapshot.
        shutdown_ = true;
    }
    drain();
    std::lock_guard<std::mutex> lock(mu_);
    if (!cfg_.stateDir.empty())
        writeSnapshotLocked();
    std::lock_guard<std::mutex> wlock(walMu_);
    wal_.close();
}

void
SchedulingDaemon::crashForTest()
{
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
    for (auto &[name, s] : sessions_) {
        for (auto &job : s.pending) {
            DaemonResponse dead;
            dead.id = job->id;
            dead.session = name;
            dead.kind = job->kind;
            dead.outcome = DaemonOutcome::ShuttingDown;
            dead.detail = "daemon crashed";
            job->promise.set_value(std::move(dead));
        }
        s.pending.clear();
    }
    queued_ = 0;
    std::lock_guard<std::mutex> wlock(walMu_);
    wal_.crashForTest();
}

std::vector<DaemonResponse>
SchedulingDaemon::run(const std::vector<DaemonOp> &ops)
{
    std::vector<DaemonResponse> out(ops.size());
    std::vector<std::pair<std::size_t,
                          std::future<DaemonResponse>>>
        pending;
    for (std::size_t i = 0; i < ops.size(); ++i) {
        const DaemonOp &op = ops[i];
        switch (op.kind) {
          case DaemonOp::Kind::Open:
              out[i] = open(op.open);
              break;
          case DaemonOp::Kind::Close:
              out[i] = close(op.session);
              break;
          case DaemonOp::Kind::Request:
              pending.emplace_back(
                  i, submit(op.session, op.request));
              break;
        }
    }
    for (auto &[i, fut] : pending)
        out[i] = fut.get();
    return out;
}

// -- Introspection ------------------------------------------------

std::shared_ptr<const online::PublishedState>
SchedulingDaemon::published(const std::string &session) const
{
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = sessions_.find(session);
    if (it == sessions_.end() || !it->second.svc)
        return nullptr;
    return it->second.svc->published();
}

std::vector<std::string>
SchedulingDaemon::sessionNames() const
{
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<const Session *> ordered;
    for (const auto &[name, s] : sessions_)
        ordered.push_back(&s);
    std::sort(ordered.begin(), ordered.end(),
              [](const Session *a, const Session *b) {
                  return a->openIndex < b->openIndex;
              });
    std::vector<std::string> names;
    for (const Session *s : ordered)
        names.push_back(s->cfg.name);
    return names;
}

std::size_t
SchedulingDaemon::queueDepth() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return queued_;
}

std::vector<std::pair<std::string, const metrics::Registry *>>
SchedulingDaemon::sessionMetrics() const
{
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<std::pair<std::string, const metrics::Registry *>>
        out;
    for (const std::string &name : sessionCtxOrder_) {
        const auto it = sessionCtxs_.find(name);
        if (it != sessionCtxs_.end())
            out.emplace_back(name, &it->second->metricsRegistry());
    }
    return out;
}

std::uint64_t
SchedulingDaemon::walRecords() const
{
    std::lock_guard<std::mutex> lock(walMu_);
    return wal_.recordsAppended();
}

std::uint64_t
SchedulingDaemon::walFsyncs() const
{
    std::lock_guard<std::mutex> lock(walMu_);
    return wal_.fsyncs();
}

void
SchedulingDaemon::pauseForTest()
{
    std::lock_guard<std::mutex> lock(mu_);
    paused_ = true;
}

void
SchedulingDaemon::resumeForTest()
{
    std::vector<std::string> kick;
    {
        std::lock_guard<std::mutex> lock(mu_);
        paused_ = false;
        for (auto &[name, s] : sessions_) {
            if (!s.pending.empty() && !s.active && s.svc) {
                s.active = true;
                kick.push_back(name);
            }
        }
    }
    for (const std::string &name : kick)
        pool_->submit([this, name] { drainSession(name); });
}

} // namespace server
} // namespace srsim
