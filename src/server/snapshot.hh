/**
 * @file
 * Content-addressed daemon snapshots.
 *
 * A snapshot is a point-in-time image of every live session taken
 * at a quiescent WAL boundary: `walseq N` means the image reflects
 * exactly the effects of WAL records 1..N. Recovery restores the
 * newest intact snapshot and replays only the WAL suffix > N, so
 * the cost of recovery is bounded by the snapshot interval instead
 * of the full history.
 *
 * Per session the image stores the open-time configuration, the
 * *current* workload (tasks with their explicit placement, messages
 * in id order — the allocation is fixed at open but derived from
 * the message set then, so it is stored, never re-derived), and the
 * published schedule in the schedule_io v2 text form (which carries
 * the accumulated fault spec). Restoring re-applies the fault mask,
 * recomputes the route-free bounds, and re-verifies the schedule —
 * a snapshot is trusted only after it certifies.
 *
 * Files are content-addressed — `snap-<walseq>-<fnv1a64(body)>.snap`
 * — and written atomically (tmp + fsync + rename), so a crash while
 * snapshotting leaves either no new file or a verifiable one; a
 * corrupt file fails its hash and recovery falls back to the next
 * older snapshot, and ultimately to a full WAL replay. The format
 * is versioned ("srsim-daemon-snapshot v1"); readers reject
 * versions they do not understand.
 */

#ifndef SRSIM_SERVER_SNAPSHOT_HH_
#define SRSIM_SERVER_SNAPSHOT_HH_

#include <cstdint>
#include <string>
#include <vector>

#include "server/protocol.hh"
#include "topology/topology.hh"

namespace srsim {
namespace server {

/** One task row of a session image. */
struct SnapshotTask
{
    std::string name;
    double operations = 0.0;
    /** The node the (fixed) allocation placed this task on. */
    NodeId node = 0;
};

/** One message row of a session image (id order). */
struct SnapshotMessage
{
    std::string name;
    std::string src;
    std::string dst;
    double bytes = 0.0;
};

/** Point-in-time image of one live session. */
struct SessionSnapshot
{
    /** The session's open-time configuration. */
    SessionConfig cfg;
    /** Current input period (us) — drifts via period/fault. */
    double period = 0.0;
    std::vector<SnapshotTask> tasks;
    std::vector<SnapshotMessage> messages;
    /** writeSchedule() bytes (v2: includes the fault spec). */
    std::string scheduleText;
};

/** One shared-cache entry of the image. */
struct SnapshotCacheEntry
{
    /** Canonical workload key (online::canonicalWorkloadKey). */
    std::string key;
    /** writeSchedule() bytes of the cached schedule. */
    std::string scheduleText;
    std::uint64_t numSubsets = 0;
    double peakUtilization = 0.0;
};

/** Point-in-time image of the whole daemon. */
struct DaemonSnapshot
{
    /** WAL records 1..walSeq are reflected in this image. */
    std::uint64_t walSeq = 0;
    /** Live sessions in open order. */
    std::vector<SessionSnapshot> sessions;
    /**
     * Shared schedule-cache image, most-recently-used first. The
     * cache is part of the byte-level history: replaying the WAL
     * suffix republishes the original run's exact bytes only if
     * requests that hit the cache then hit the same entries now, so
     * recovery re-seeds the cache from this image before replaying.
     */
    std::vector<SnapshotCacheEntry> cache;
};

/** Serialize to the versioned text body. */
std::string encodeSnapshot(const DaemonSnapshot &snap);

/**
 * Parse a snapshot body. Total on arbitrary bytes: truncation,
 * version skew, and malformed rows come back as false + *err.
 */
bool decodeSnapshot(const std::string &body, DaemonSnapshot *snap,
                    std::string *err);

/**
 * Write `snap` into `dir` atomically (tmp + fsync + rename) under
 * its content-addressed name. @return false + *err on I/O failure;
 * on success *pathOut (if non-null) receives the final path.
 */
bool writeSnapshotFile(const std::string &dir,
                       const DaemonSnapshot &snap,
                       std::string *pathOut, std::string *err);

/** One snapshot file found in a state directory. */
struct SnapshotFileInfo
{
    std::string path;
    std::uint64_t walSeq = 0;
    /** Hash claimed by the file name (verified on load). */
    std::uint64_t hash = 0;
};

/** Snapshot files in `dir`, newest (highest walSeq) first. */
std::vector<SnapshotFileInfo> listSnapshots(const std::string &dir);

/**
 * Load + verify one snapshot file: the body must hash to the name's
 * claim and decode cleanly. @return false + *err otherwise.
 */
bool loadSnapshotFile(const SnapshotFileInfo &info,
                      DaemonSnapshot *snap, std::string *err);

} // namespace server
} // namespace srsim

#endif // SRSIM_SERVER_SNAPSHOT_HH_
