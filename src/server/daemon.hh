/**
 * @file
 * The concurrent multi-tenant scheduling daemon.
 *
 * One daemon owns many named *sessions* — each an OnlineScheduler
 * with its own fabric, workload, and fault mask — and dispatches
 * their requests from a bounded queue onto a worker pool. The
 * concurrency contract:
 *
 *  - per-session serialization: one session's requests apply in
 *    submission order, one at a time (each session has a pending
 *    deque drained by at most one worker);
 *  - cross-session parallelism: distinct sessions drain on distinct
 *    workers concurrently; they share only the thread-safe
 *    ScheduleCache (content-addressed, so a hit from any session is
 *    byte-identical to a fresh compile);
 *  - determinism: a session's final published schedule depends only
 *    on its own accepted-request sequence, so results are identical
 *    for any worker count (absent overload/deadline rejections,
 *    which admission ordering can change).
 *
 * Robustness: submit() never blocks — a full queue returns a
 * structured Overloaded rejection; a request older than its
 * deadline when a worker picks it up is rejected DeadlineExpired
 * without touching the scheduler; drain() waits for the queues to
 * empty and shutdown() then snapshots and closes the WAL.
 *
 * Durability (when a state directory is configured): every accepted
 * state change is appended to the WAL before the response is
 * delivered, group-committed every `walSyncEvery` records (and at
 * drain); snapshots are taken at quiescent points every
 * `snapshotEvery` accepted requests and at shutdown. Recovery =
 * newest intact snapshot + WAL suffix replay, re-verified on load,
 * falling back to older snapshots and ultimately a full WAL replay.
 */

#ifndef SRSIM_SERVER_DAEMON_HH_
#define SRSIM_SERVER_DAEMON_HH_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "engine/context.hh"
#include "online/cache.hh"
#include "online/service.hh"
#include "server/protocol.hh"
#include "server/snapshot.hh"
#include "server/wal.hh"
#include "util/thread_pool.hh"

namespace srsim {
namespace server {

/** Daemon policy knobs. */
struct DaemonConfig
{
    /** Worker-pool concurrency (>= 1; 1 = inline, deterministic). */
    std::size_t workers = 1;
    /** Max queued (not yet executing) requests across sessions. */
    std::size_t queueCap = 64;
    /**
     * State directory for WAL + snapshots; empty = ephemeral (no
     * durability, no recovery).
     */
    std::string stateDir;
    /** Accepted requests between snapshots; 0 = shutdown only. */
    std::size_t snapshotEvery = 0;
    /** Group-commit batch: fsync after this many WAL records. */
    std::size_t walSyncEvery = 1;
    /** Per-request deadline from submission (ms); 0 = none. */
    double deadlineMs = 0.0;
    /** Shared schedule-cache capacity (entries); 0 disables. */
    std::size_t cacheCapacity = 64;
    /**
     * Root engine context the daemon runs under; every session gets
     * a child of it (own metrics registry, optional private solver
     * kind / thread budget via the open line's solver= / threads=
     * keys). nullptr uses the process default context.
     */
    const engine::EngineContext *ctx = nullptr;
};

/** Daemon-level disposition of one operation. */
enum class DaemonOutcome
{
    /** Reached the scheduler; see RequestResult for its verdict. */
    Ok,
    /** Bounded queue full at submission (backpressure). */
    Overloaded,
    /** Deadline expired before a worker picked the request up. */
    DeadlineExpired,
    /** Request for a session that is not open. */
    UnknownSession,
    /** Open of a name that is already a live session. */
    DuplicateSession,
    /** Open could not build the fabric/workload it described. */
    InvalidConfig,
    /** Submitted after shutdown began. */
    ShuttingDown,
};

/** @return stable lowercase-dashed outcome name. */
const char *daemonOutcomeName(DaemonOutcome o);

/** One operation's full disposition. */
struct DaemonResponse
{
    /** Submission index (response order == submission order). */
    std::uint64_t id = 0;
    std::string session;
    /** open | close | admit | remove | period | fault. */
    std::string kind;
    DaemonOutcome outcome = DaemonOutcome::Ok;
    /** Daemon-level detail (empty when outcome == Ok). */
    std::string detail;
    /** Scheduler verdict (meaningful when outcome == Ok). */
    online::RequestResult result;
    /** Time spent queued before a worker picked it up (ms). */
    double queueMs = 0.0;
};

/** What recover() found and did. */
struct RecoveryResult
{
    bool attempted = false;
    /** WAL records found (intact prefix). */
    std::uint64_t walRecords = 0;
    bool walTornTail = false;
    /** Snapshot used (empty = full replay). */
    std::string snapshotPath;
    std::uint64_t snapshotSeq = 0;
    /** Sessions live after recovery. */
    std::size_t sessionsRestored = 0;
    /** WAL records replayed on top of the snapshot. */
    std::uint64_t replayed = 0;
    /** Replayed records whose re-execution was rejected (0 on a
        healthy log: accepted requests replay as accepted). */
    std::uint64_t replayRejected = 0;
    /** Snapshots that failed verification and were skipped. */
    std::vector<std::string> rejectedSnapshots;
};

/**
 * The daemon. Construction opens the state directory (if any) and
 * runs recovery; destruction drains and shuts down.
 */
class SchedulingDaemon
{
  public:
    explicit SchedulingDaemon(DaemonConfig cfg);
    ~SchedulingDaemon();

    SchedulingDaemon(const SchedulingDaemon &) = delete;
    SchedulingDaemon &operator=(const SchedulingDaemon &) = delete;

    /** Outcome of the construction-time recovery. */
    const RecoveryResult &recovery() const { return recovery_; }

    /**
     * Open a session: build its fabric + workload, compile + publish
     * the initial schedule. Synchronous (runs on the caller).
     */
    DaemonResponse open(const SessionConfig &sc);

    /**
     * Close a session. Synchronous; drains the session's queue
     * first so earlier requests keep their submission-order slot.
     */
    DaemonResponse close(const std::string &session);

    /**
     * Enqueue one request. Never blocks: a full queue or unknown
     * session resolves the future immediately with the structured
     * rejection.
     */
    std::future<DaemonResponse> submit(const std::string &session,
                                       online::Request r);

    /**
     * Execute a parsed script: open/close run inline, requests
     * stream through the queue. @return responses in op order.
     */
    std::vector<DaemonResponse>
    run(const std::vector<DaemonOp> &ops);

    /** Wait until every queued request has been served. */
    void drain();

    /**
     * Drain, take a final snapshot (when durable), sync + close the
     * WAL. Further submits reject with ShuttingDown. Idempotent;
     * the destructor calls it.
     */
    void shutdown();

    /** Crash simulation for tests: drop unsynced WAL bytes and cut
        the daemon off from disk — no final snapshot, no sync. */
    void crashForTest();

    // -- Introspection --------------------------------------------

    /** Published snapshot of one session (nullptr if not open). */
    std::shared_ptr<const online::PublishedState>
    published(const std::string &session) const;

    /** Live session names, in open order. */
    std::vector<std::string> sessionNames() const;

    /** Currently queued (not executing) requests. */
    std::size_t queueDepth() const;

    online::ScheduleCache &cache() { return *cache_; }

    /**
     * (name, registry) of every session that has opened, in
     * first-open order. A session's registry is its child context's
     * — it holds only that session's activity (the same updates
     * also wrote through to the daemon aggregate) — and survives
     * close() so a post-run summary can still report it. Reopening
     * a name starts that name's registry over. Pointers stay valid
     * for the daemon's lifetime.
     */
    std::vector<std::pair<std::string, const metrics::Registry *>>
    sessionMetrics() const;

    std::uint64_t walRecords() const;
    std::uint64_t walFsyncs() const;
    std::uint64_t snapshotsWritten() const { return snapshots_; }

    // -- Test hooks -----------------------------------------------

    /** Stop workers from picking up new requests (current request
        finishes). Queued requests park; submits still enqueue. */
    void pauseForTest();
    /** Resume draining after pauseForTest(). */
    void resumeForTest();

  private:
    struct Job
    {
        std::uint64_t id = 0;
        online::Request req;
        std::string kind;
        std::promise<DaemonResponse> promise;
        double enqueueUs = 0.0;
        /** Absolute deadline (wall us since epoch); 0 = none. */
        double deadlineUs = 0.0;
    };

    struct Session
    {
        SessionConfig cfg;
        /**
         * This session's engine context (child of the daemon's
         * root). Declared before svc, which holds a raw pointer to
         * it, so it is destroyed after svc; the daemon's
         * sessionCtxs_ map also keeps it alive across close().
         */
        std::shared_ptr<engine::EngineContext> ctx;
        std::unique_ptr<online::OnlineScheduler> svc;
        std::deque<std::unique_ptr<Job>> pending;
        /** True while a worker is draining this session. */
        bool active = false;
        /** Open order, for stable iteration. */
        std::uint64_t openIndex = 0;
    };

    /** Build fabric + workload + service for `sc`, running under
        `ctx`; throws FatalError on invalid config. */
    std::unique_ptr<online::OnlineScheduler>
    buildService(const SessionConfig &sc, Time period,
                 const engine::EngineContext *ctx) const;

    /** Child context for one session per its open-line overrides;
        throws FatalError on an unknown solver kind. */
    std::shared_ptr<engine::EngineContext>
    makeSessionContext(const SessionConfig &sc) const;

    /** Record `ctx` as session `name`'s context (caller holds
        mu_ or is in single-threaded recovery). */
    void registerSessionCtxLocked(
        const std::string &name,
        std::shared_ptr<engine::EngineContext> ctx);

    void runRecovery();
    /** Replay one WAL op inline during recovery. */
    bool replayOp(const DaemonOp &op, RecoveryResult &rr);
    /** Restore sessions from a snapshot; false = fall back. */
    bool restoreFromSnapshot(const DaemonSnapshot &snap,
                             std::string *why);

    void drainSession(const std::string &name);
    void finishJob(Session &s, Job &job);
    /** Log an accepted op; group-commit per walSyncEvery. */
    void walAppend(const DaemonOp &op);
    /** Snapshot if due and quiescent (daemon lock held). */
    void maybeSnapshotLocked();
    void writeSnapshotLocked();
    void setQueueGaugeLocked();

    DaemonConfig cfg_;
    /** Resolved root context (never null after construction). */
    const engine::EngineContext *root_ = nullptr;
    std::shared_ptr<online::ScheduleCache> cache_;
    std::unique_ptr<ThreadPool> pool_;

    mutable std::mutex mu_;
    std::condition_variable idleCv_;
    std::map<std::string, Session> sessions_;
    /**
     * Session contexts by name, kept past close() so per-session
     * metrics survive for the end-of-run summary (and so a child
     * context always outlives its scheduler). Reopening a name
     * replaces its context.
     */
    std::map<std::string, std::shared_ptr<engine::EngineContext>>
        sessionCtxs_;
    /** First-open order of sessionCtxs_ keys. */
    std::vector<std::string> sessionCtxOrder_;
    std::uint64_t nextOpenIndex_ = 0;
    std::uint64_t nextId_ = 1;
    std::size_t queued_ = 0;
    std::size_t executing_ = 0;
    bool paused_ = false;
    bool shutdown_ = false;

    /** Serializes WAL appends + snapshot writes. */
    mutable std::mutex walMu_;
    WriteAheadLog wal_;
    std::size_t unsynced_ = 0;
    std::size_t acceptedSinceSnapshot_ = 0;
    std::uint64_t snapshots_ = 0;

    RecoveryResult recovery_;
};

} // namespace server
} // namespace srsim

#endif // SRSIM_SERVER_DAEMON_HH_
