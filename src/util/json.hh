/**
 * @file
 * Minimal streaming JSON writer for srsim's machine-readable
 * outputs (trace exports, metrics dumps, per-load-point experiment
 * reports, BENCH_*.json).
 *
 * Deliberately tiny: a comma/nesting state machine over an ostream.
 * Strings are escaped per RFC 8259; doubles print with "%.12g" so
 * output is deterministic and round-trips the magnitudes srsim uses
 * (microsecond times well below 1e9); non-finite doubles become
 * null, which keeps every emitted document valid JSON.
 */

#ifndef SRSIM_UTIL_JSON_HH_
#define SRSIM_UTIL_JSON_HH_

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <ostream>
#include <string>
#include <vector>

#include "util/logging.hh"

namespace srsim {

/** Streaming writer for one JSON document. */
class JsonWriter
{
  public:
    explicit JsonWriter(std::ostream &os) : os_(os) {}

    JsonWriter(const JsonWriter &) = delete;
    JsonWriter &operator=(const JsonWriter &) = delete;

    /**
     * Print doubles with %.17g (exact double round-trip) instead
     * of the default %.12g. Documents that feed computation back
     * in — the daemon WAL, whose replay must recompile with
     * bit-identical inputs — need this; human-facing reports do
     * not.
     */
    JsonWriter &
    fullPrecision()
    {
        fullPrecision_ = true;
        return *this;
    }

    JsonWriter &
    beginObject()
    {
        element();
        os_ << '{';
        stack_.push_back({false, 0});
        return *this;
    }

    JsonWriter &
    endObject()
    {
        SRSIM_ASSERT(!stack_.empty() && !stack_.back().array,
                     "endObject outside an object");
        stack_.pop_back();
        os_ << '}';
        return *this;
    }

    JsonWriter &
    beginArray()
    {
        element();
        os_ << '[';
        stack_.push_back({true, 0});
        return *this;
    }

    JsonWriter &
    endArray()
    {
        SRSIM_ASSERT(!stack_.empty() && stack_.back().array,
                     "endArray outside an array");
        stack_.pop_back();
        os_ << ']';
        return *this;
    }

    /** Emit an object key; the next value/begin* is its value. */
    JsonWriter &
    key(const std::string &k)
    {
        SRSIM_ASSERT(!stack_.empty() && !stack_.back().array,
                     "key outside an object");
        comma();
        writeString(k);
        os_ << ':';
        pendingValue_ = true;
        return *this;
    }

    JsonWriter &
    value(const std::string &v)
    {
        element();
        writeString(v);
        return *this;
    }

    JsonWriter &
    value(const char *v)
    {
        return value(std::string(v));
    }

    JsonWriter &
    value(double v)
    {
        element();
        if (!std::isfinite(v)) {
            os_ << "null";
        } else {
            char buf[40];
            std::snprintf(buf, sizeof(buf),
                          fullPrecision_ ? "%.17g" : "%.12g", v);
            os_ << buf;
        }
        return *this;
    }

    JsonWriter &
    value(std::uint64_t v)
    {
        element();
        os_ << v;
        return *this;
    }

    JsonWriter &
    value(std::int64_t v)
    {
        element();
        os_ << v;
        return *this;
    }

    JsonWriter &
    value(int v)
    {
        return value(static_cast<std::int64_t>(v));
    }

    JsonWriter &
    value(bool v)
    {
        element();
        os_ << (v ? "true" : "false");
        return *this;
    }

    /** key(k) + value(v) in one call. */
    template <typename V>
    JsonWriter &
    kv(const std::string &k, V &&v)
    {
        key(k);
        return value(std::forward<V>(v));
    }

  private:
    struct Frame
    {
        bool array = false;
        std::size_t count = 0;
    };

    void
    comma()
    {
        if (!stack_.empty() && stack_.back().count++ > 0)
            os_ << ',';
    }

    /** Comma bookkeeping for a value/container element. */
    void
    element()
    {
        if (pendingValue_) {
            pendingValue_ = false; // value follows its key
            return;
        }
        comma();
    }

    void
    writeString(const std::string &s)
    {
        os_ << '"';
        for (const char c : s) {
            switch (c) {
              case '"': os_ << "\\\""; break;
              case '\\': os_ << "\\\\"; break;
              case '\n': os_ << "\\n"; break;
              case '\r': os_ << "\\r"; break;
              case '\t': os_ << "\\t"; break;
              default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof(buf), "\\u%04x",
                                  static_cast<unsigned>(
                                      static_cast<unsigned char>(c)));
                    os_ << buf;
                } else {
                    os_ << c;
                }
            }
        }
        os_ << '"';
    }

    std::ostream &os_;
    std::vector<Frame> stack_;
    bool pendingValue_ = false;
    bool fullPrecision_ = false;
};

} // namespace srsim

#endif // SRSIM_UTIL_JSON_HH_
