/**
 * @file
 * Minimal dense row-major matrix used by the activity/path-assignment
 * matrices (A, B, P of the paper) and by the simplex solver tableau.
 */

#ifndef SRSIM_UTIL_MATRIX_HH_
#define SRSIM_UTIL_MATRIX_HH_

#include <cstddef>
#include <ostream>
#include <vector>

#include "util/logging.hh"

namespace srsim {

/** Dense row-major matrix of T with bounds-checked access. */
template <typename T>
class Matrix
{
  public:
    Matrix() = default;

    Matrix(std::size_t rows, std::size_t cols, T init = T{})
        : rows_(rows), cols_(cols), data_(rows * cols, init)
    {}

    std::size_t rows() const { return rows_; }
    std::size_t cols() const { return cols_; }

    T &
    at(std::size_t r, std::size_t c)
    {
        SRSIM_ASSERT(r < rows_ && c < cols_,
                     "Matrix access (", r, ",", c, ") out of ",
                     rows_, "x", cols_);
        return data_[r * cols_ + c];
    }

    const T &
    at(std::size_t r, std::size_t c) const
    {
        SRSIM_ASSERT(r < rows_ && c < cols_,
                     "Matrix access (", r, ",", c, ") out of ",
                     rows_, "x", cols_);
        return data_[r * cols_ + c];
    }

    T &operator()(std::size_t r, std::size_t c) { return at(r, c); }
    const T &
    operator()(std::size_t r, std::size_t c) const
    {
        return at(r, c);
    }

    /** Fill every entry with v. */
    void
    fill(T v)
    {
        std::fill(data_.begin(), data_.end(), v);
    }

    /** Sum of the entries of row r. */
    T
    rowSum(std::size_t r) const
    {
        T s{};
        for (std::size_t c = 0; c < cols_; ++c)
            s += at(r, c);
        return s;
    }

    /** Sum of the entries of column c. */
    T
    colSum(std::size_t c) const
    {
        T s{};
        for (std::size_t r = 0; r < rows_; ++r)
            s += at(r, c);
        return s;
    }

    bool
    operator==(const Matrix &other) const
    {
        return rows_ == other.rows_ && cols_ == other.cols_ &&
               data_ == other.data_;
    }

  private:
    std::size_t rows_ = 0;
    std::size_t cols_ = 0;
    std::vector<T> data_;
};

template <typename T>
std::ostream &
operator<<(std::ostream &os, const Matrix<T> &m)
{
    for (std::size_t r = 0; r < m.rows(); ++r) {
        for (std::size_t c = 0; c < m.cols(); ++c)
            os << (c ? " " : "") << m.at(r, c);
        os << "\n";
    }
    return os;
}

} // namespace srsim

#endif // SRSIM_UTIL_MATRIX_HH_
