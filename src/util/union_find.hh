/**
 * @file
 * Disjoint-set forest with union by rank and path compression.
 *
 * Used to partition TFG messages into maximal related subsets
 * (Definitions 5.3/5.4 of the paper): messages that transitively share
 * a (link, interval) pair end up in one set.
 */

#ifndef SRSIM_UTIL_UNION_FIND_HH_
#define SRSIM_UTIL_UNION_FIND_HH_

#include <cstddef>
#include <numeric>
#include <vector>

#include "util/logging.hh"

namespace srsim {

/** Disjoint-set forest over the integers [0, n). */
class UnionFind
{
  public:
    explicit UnionFind(std::size_t n)
        : parent_(n), rank_(n, 0), numSets_(n)
    {
        std::iota(parent_.begin(), parent_.end(), 0);
    }

    /** @return canonical representative of x's set. */
    std::size_t
    find(std::size_t x)
    {
        SRSIM_ASSERT(x < parent_.size(), "UnionFind::find out of range");
        while (parent_[x] != x) {
            parent_[x] = parent_[parent_[x]];
            x = parent_[x];
        }
        return x;
    }

    /**
     * Merge the sets containing a and b.
     * @return true if a merge happened (they were distinct sets).
     */
    bool
    unite(std::size_t a, std::size_t b)
    {
        a = find(a);
        b = find(b);
        if (a == b)
            return false;
        if (rank_[a] < rank_[b])
            std::swap(a, b);
        parent_[b] = a;
        if (rank_[a] == rank_[b])
            ++rank_[a];
        --numSets_;
        return true;
    }

    /** @return true if a and b are in the same set. */
    bool same(std::size_t a, std::size_t b) { return find(a) == find(b); }

    /** @return current number of disjoint sets. */
    std::size_t numSets() const { return numSets_; }

    /** @return number of elements. */
    std::size_t size() const { return parent_.size(); }

    /**
     * Group element indices by set.
     * @return one vector of member indices per disjoint set, ordered by
     *         smallest member.
     */
    std::vector<std::vector<std::size_t>>
    groups()
    {
        std::vector<std::vector<std::size_t>> out;
        std::vector<long> slot(parent_.size(), -1);
        for (std::size_t i = 0; i < parent_.size(); ++i) {
            std::size_t root = find(i);
            if (slot[root] < 0) {
                slot[root] = static_cast<long>(out.size());
                out.emplace_back();
            }
            out[static_cast<std::size_t>(slot[root])].push_back(i);
        }
        return out;
    }

  private:
    std::vector<std::size_t> parent_;
    std::vector<std::size_t> rank_;
    std::size_t numSets_;
};

} // namespace srsim

#endif // SRSIM_UTIL_UNION_FIND_HH_
