/**
 * @file
 * Deterministic random-number utility used by heuristics.
 *
 * Every stochastic component in srsim (AssignPaths restarts, random
 * task allocation, random TFG generation) takes an explicit Rng so
 * experiments are reproducible from a single seed.
 */

#ifndef SRSIM_UTIL_RNG_HH_
#define SRSIM_UTIL_RNG_HH_

#include <algorithm>
#include <cstdint>
#include <random>
#include <vector>

#include "util/logging.hh"

namespace srsim {

/**
 * Derive the seed of an independent RNG stream from a base seed and
 * a stream index (splitmix64 finalizer). Parallel heuristics give
 * every work item (e.g. every AssignPaths restart) its own stream
 * seeded by its *index*, so results do not depend on how the items
 * are interleaved across threads.
 */
inline std::uint64_t
deriveSeed(std::uint64_t base, std::uint64_t stream)
{
    std::uint64_t z = base + 0x9E3779B97F4A7C15ull * (stream + 1);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
}

/** Seedable pseudo-random generator with convenience draws. */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 1) : engine_(seed) {}

    /** Uniform integer in [lo, hi] (inclusive). */
    int
    uniformInt(int lo, int hi)
    {
        SRSIM_ASSERT(lo <= hi, "bad uniformInt range");
        return std::uniform_int_distribution<int>(lo, hi)(engine_);
    }

    /** Uniform size_t index in [0, n). */
    std::size_t
    index(std::size_t n)
    {
        SRSIM_ASSERT(n > 0, "index() on empty range");
        return std::uniform_int_distribution<std::size_t>(0, n - 1)(engine_);
    }

    /** Uniform real in [lo, hi). */
    double
    uniformReal(double lo, double hi)
    {
        return std::uniform_real_distribution<double>(lo, hi)(engine_);
    }

    /** Bernoulli draw with probability p of true. */
    bool
    chance(double p)
    {
        return std::bernoulli_distribution(p)(engine_);
    }

    /** Fisher-Yates shuffle of a vector. */
    template <typename T>
    void
    shuffle(std::vector<T> &v)
    {
        std::shuffle(v.begin(), v.end(), engine_);
    }

    std::mt19937_64 &engine() { return engine_; }

  private:
    std::mt19937_64 engine_;
};

} // namespace srsim

#endif // SRSIM_UTIL_RNG_HH_
