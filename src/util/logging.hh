/**
 * @file
 * Diagnostic and status-message machinery for srsim.
 *
 * Follows the gem5 convention: panic() is for internal invariant
 * violations (a bug in srsim itself) and aborts; fatal() is for user
 * errors (bad configuration, infeasible input) and exits cleanly;
 * warn() and inform() provide non-fatal status.
 */

#ifndef SRSIM_UTIL_LOGGING_HH_
#define SRSIM_UTIL_LOGGING_HH_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <stdexcept>
#include <string>

namespace srsim {

/** Thrown by fatal() so that tests can observe user-level errors. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &msg)
        : std::runtime_error(msg)
    {}
};

/** Thrown by panic() so that tests can observe internal errors. */
class PanicError : public std::logic_error
{
  public:
    explicit PanicError(const std::string &msg)
        : std::logic_error(msg)
    {}
};

namespace detail {

/** Stream-compose a message from parts. */
template <typename... Args>
std::string
composeMessage(Args &&...args)
{
    std::ostringstream oss;
    (oss << ... << std::forward<Args>(args));
    return oss.str();
}

} // namespace detail

/**
 * Report an internal invariant violation (a bug in srsim) and throw
 * PanicError. Never returns normally.
 */
template <typename... Args>
[[noreturn]] void
panic(Args &&...args)
{
    std::string msg = detail::composeMessage(std::forward<Args>(args)...);
    std::cerr << "panic: " << msg << std::endl;
    throw PanicError(msg);
}

/**
 * Report an unrecoverable user-level error (bad configuration,
 * infeasible problem instance) and throw FatalError.
 */
template <typename... Args>
[[noreturn]] void
fatal(Args &&...args)
{
    std::string msg = detail::composeMessage(std::forward<Args>(args)...);
    std::cerr << "fatal: " << msg << std::endl;
    throw FatalError(msg);
}

/** Warn about suspicious but survivable conditions. */
template <typename... Args>
void
warn(Args &&...args)
{
    std::cerr << "warn: "
              << detail::composeMessage(std::forward<Args>(args)...)
              << std::endl;
}

/** Informational status message. */
template <typename... Args>
void
inform(Args &&...args)
{
    std::cout << "info: "
              << detail::composeMessage(std::forward<Args>(args)...)
              << std::endl;
}

/**
 * Internal-assumption check that is active in all build types.
 * @param cond condition that must hold
 */
#define SRSIM_ASSERT(cond, ...)                                             \
    do {                                                                    \
        if (!(cond)) {                                                      \
            ::srsim::panic("assertion '", #cond, "' failed at ", __FILE__,  \
                           ":", __LINE__, " ", ##__VA_ARGS__);              \
        }                                                                   \
    } while (0)

} // namespace srsim

#endif // SRSIM_UTIL_LOGGING_HH_
